(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (plus the ablations listed in DESIGN.md), printing
   paper-reported numbers next to measured ones.

   Usage:
     dune exec bench/main.exe                 -- all experiments
     dune exec bench/main.exe -- --quick      -- reduced budgets
     dune exec bench/main.exe -- e5 e7        -- selected experiments
     dune exec bench/main.exe -- timing       -- Bechamel timing benches only

   Iteration counts are the primary metric, as in the paper's Figures
   9 and 10 ("Iterations (runtime)"): they are machine-independent.
   Absolute wall-clock differs from a 2005 Pentium III, but who wins,
   by what rough factor, and how counts grow with depth should match. *)

let quick = ref false
let json_file : string option ref = ref None

(* ---- table printing -------------------------------------------------------- *)

let header title = Printf.printf "\n=== %s ===\n" title

(* Every printed row is also collected so --json can dump the whole
   bench result as a machine-readable artifact (CI uploads it). *)
let collected_rows : (string * string * string * string) list ref = ref []

let row ~id ~desc ~paper ~measured =
  collected_rows := (id, desc, paper, measured) :: !collected_rows;
  Printf.printf "%-22s %-48s | paper: %-32s | measured: %s\n" id desc paper measured

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json file =
  let rows = List.rev !collected_rows in
  let oc = open_out file in
  output_string oc "[\n";
  List.iteri
    (fun i (id, desc, paper, measured) ->
      Printf.fprintf oc "  {\"id\": \"%s\", \"desc\": \"%s\", \"paper\": \"%s\", \"measured\": \"%s\"}%s\n"
        (json_escape id) (json_escape desc) (json_escape paper) (json_escape measured)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let verdict_cell (r : Dart.Driver.report) seconds =
  match r.Dart.Driver.verdict with
  | Dart.Driver.Bug_found b ->
    Printf.sprintf "BUG on run %d (%.2fs, %s)" b.Dart.Driver.bug_run seconds
      (Machine.fault_to_string b.Dart.Driver.bug_fault)
  | Dart.Driver.Complete -> Printf.sprintf "complete, %d runs (%.2fs)" r.Dart.Driver.runs seconds
  | Dart.Driver.Budget_exhausted ->
    Printf.sprintf "no bug in %d runs (%.2fs)" r.Dart.Driver.runs seconds
  | Dart.Driver.Time_exhausted ->
    Printf.sprintf "time budget exhausted after %d runs (%.2fs)" r.Dart.Driver.runs seconds
  | Dart.Driver.Interrupted ->
    Printf.sprintf "interrupted after %d runs (%.2fs)" r.Dart.Driver.runs seconds

let dart ?(depth = 1) ?(max_runs = 20_000) ?(strategy = Dart.Strategy.Dfs)
    ?(symbolic_pointers = false) ~toplevel src =
  let options =
    Dart.Driver.Options.make ~depth ~max_runs ~strategy
      ~exec:{ Dart.Concolic.default_exec_options with symbolic_pointers } ()
  in
  time_it (fun () -> Dart.Driver.test_source ~options ~toplevel src)

let random_baseline ?(depth = 1) ~max_runs ~toplevel src =
  let ast = Minic.Parser.parse_program src in
  let prog = Dart.Driver.prepare ~toplevel ~depth ast in
  time_it (fun () -> Dart.Random_search.run ~seed:1 ~max_runs prog)

let random_cell (r : Dart.Random_search.report) seconds =
  match r.Dart.Random_search.verdict with
  | `Bug_found b -> Printf.sprintf "BUG on run %d (%.2fs)" b.Dart.Driver.bug_run seconds
  | `No_bug -> Printf.sprintf "no bug in %d runs (%.2fs)" r.Dart.Random_search.runs seconds
  | `Time_exhausted ->
    Printf.sprintf "time budget exhausted after %d runs (%.2fs)" r.Dart.Random_search.runs seconds
  | `Interrupted ->
    Printf.sprintf "interrupted after %d runs (%.2fs)" r.Dart.Random_search.runs seconds

(* ---- E1-E4, E11: the Section 2 example programs --------------------------- *)

let experiment_section2 () =
  header "E1-E4, E11: Section 2 example programs";
  let r, s =
    dart
      ~toplevel:(snd Workloads.Paper_examples.section_2_1)
      (fst Workloads.Paper_examples.section_2_1)
  in
  row ~id:"section2.1-h" ~desc:"h(x,y): abort behind f(x) == x+10"
    ~paper:"error on run 2 (x = 10)" ~measured:(verdict_cell r s);
  let r, s =
    dart
      ~toplevel:(snd Workloads.Paper_examples.section_2_4)
      (fst Workloads.Paper_examples.section_2_4)
  in
  row ~id:"section2.4-f" ~desc:"x==z, y==x+10 unsat: search terminates"
    ~paper:"complete, no error" ~measured:(verdict_cell r s);
  let r, s =
    dart
      ~toplevel:(snd Workloads.Paper_examples.section_2_5_cast)
      (fst Workloads.Paper_examples.section_2_5_cast)
  in
  row ~id:"section2.5-cast" ~desc:"char-cast aliasing (static analysis can't)"
    ~paper:"abort found easily" ~measured:(verdict_cell r s);
  let r, s =
    dart
      ~toplevel:(snd Workloads.Paper_examples.section_2_5_foobar)
      (fst Workloads.Paper_examples.section_2_5_foobar)
  in
  row ~id:"section2.5-foobar" ~desc:"non-linear x*x*x guard, graceful degradation"
    ~paper:"reachable abort found w.h.p." ~measured:(verdict_cell r s);
  let budget = if !quick then 10_000 else 100_000 in
  let r, s =
    dart ~toplevel:(snd Workloads.Paper_examples.eq_filter) (fst Workloads.Paper_examples.eq_filter)
  in
  row ~id:"eq-filter" ~desc:"if (x == 10): directed"
    ~paper:"~2 runs (prob. 0.5 per branch)" ~measured:(verdict_cell r s);
  let r, s =
    random_baseline ~max_runs:budget
      ~toplevel:(snd Workloads.Paper_examples.eq_filter)
      (fst Workloads.Paper_examples.eq_filter)
  in
  row ~id:"eq-filter-random" ~desc:"if (x == 10): random baseline"
    ~paper:"1 in 2^32 per run" ~measured:(random_cell r s)

(* ---- E5: AC-controller (Section 4.1) --------------------------------------- *)

let experiment_ac () =
  header "E5: AC-controller (Section 4.1)";
  let src, toplevel = Workloads.Paper_examples.ac_controller in
  let r, s = dart ~depth:1 ~toplevel src in
  row ~id:"ac-depth1" ~desc:"depth 1: all paths, no violation"
    ~paper:"6 iterations, <1s, no error" ~measured:(verdict_cell r s);
  let r, s = dart ~depth:2 ~toplevel src in
  row ~id:"ac-depth2" ~desc:"depth 2: violation at inputs (3, 0)"
    ~paper:"7 iterations, <1s" ~measured:(verdict_cell r s);
  let budget = if !quick then 20_000 else 200_000 in
  let r, s = random_baseline ~depth:2 ~max_runs:budget ~toplevel src in
  row ~id:"ac-random" ~desc:"depth 2: random baseline"
    ~paper:"hours, not found (1 in 2^64)" ~measured:(random_cell r s)

(* ---- E6: Needham-Schroeder, possibilistic intruder (Figure 9) -------------- *)

let experiment_ns_poss () =
  header "E6: Needham-Schroeder, possibilistic intruder (Figure 9)";
  let src = Workloads.Needham_schroeder.possibilistic ~fix:`None in
  let toplevel = Workloads.Needham_schroeder.possibilistic_toplevel in
  let r, s = dart ~depth:1 ~toplevel src in
  row ~id:"ns-poss-depth1" ~desc:"depth 1: exhaustive, no error"
    ~paper:"no error, 69 runs (<1s)" ~measured:(verdict_cell r s);
  let r, s = dart ~depth:2 ~max_runs:50_000 ~toplevel src in
  row ~id:"ns-poss-depth2" ~desc:"depth 2: attack projection (steps 2 and 6)"
    ~paper:"error, 664 runs (2s)" ~measured:(verdict_cell r s);
  let budget = if !quick then 5_000 else 50_000 in
  let r, s = random_baseline ~depth:2 ~max_runs:budget ~toplevel src in
  row ~id:"ns-poss-random" ~desc:"depth 2: random baseline" ~paper:"hours, not found"
    ~measured:(random_cell r s)

(* ---- E7: Needham-Schroeder, Dolev-Yao intruder (Figure 10) ----------------- *)

let experiment_ns_dy () =
  header "E7: Needham-Schroeder, Dolev-Yao intruder (Figure 10)";
  let src = Workloads.Needham_schroeder.dolev_yao ~fix:`None in
  let toplevel = Workloads.Needham_schroeder.dolev_yao_toplevel in
  let paper =
    [| "no error, 5 runs (<1s)"; "no error, 85 runs (<1s)"; "no error, 6,260 runs (22s)";
       "error, 328,459 runs (18min)" |]
  in
  let max_depth = if !quick then 3 else 4 in
  for depth = 1 to max_depth do
    let r, s = dart ~depth ~max_runs:500_000 ~toplevel src in
    row
      ~id:(Printf.sprintf "ns-dy-depth%d" depth)
      ~desc:(Printf.sprintf "depth %d" depth)
      ~paper:paper.(depth - 1) ~measured:(verdict_cell r s)
  done;
  if !quick then print_endline "(depth 4 skipped in --quick mode)"

(* ---- E8: Lowe's fix (Section 4.2 anecdote) ---------------------------------- *)

let experiment_lowe_fix () =
  header "E8: Lowe's fix (Section 4.2)";
  let toplevel = Workloads.Needham_schroeder.dolev_yao_toplevel in
  let depth = 4 and max_runs = if !quick then 50_000 else 500_000 in
  let r, s =
    dart ~depth ~max_runs ~toplevel (Workloads.Needham_schroeder.dolev_yao ~fix:`Buggy)
  in
  row ~id:"ns-fix-buggy" ~desc:"incomplete implementation of Lowe's fix"
    ~paper:"violation found (22min) - new bug" ~measured:(verdict_cell r s);
  let r, s =
    dart ~depth ~max_runs ~toplevel (Workloads.Needham_schroeder.dolev_yao ~fix:`Correct)
  in
  row ~id:"ns-fix-correct" ~desc:"corrected fix" ~paper:"no violation found"
    ~measured:(verdict_cell r s)

(* ---- E9: oSIP function sweep (Section 4.3) ---------------------------------- *)

let experiment_osip_sweep () =
  header "E9: oSIP simulacrum sweep (Section 4.3)";
  let n = if !quick then 40 else 120 in
  let per_function_budget = if !quick then 300 else 1_000 in
  let src, funcs = Workloads.Osip_sim.generate ~seed:7 ~n in
  let ast = Minic.Parser.parse_program src in
  let crashed = ref 0 and vulnerable = ref 0 and dart_tp = ref 0 in
  let random_crashed = ref 0 in
  let faults : (Machine.fault, int) Hashtbl.t = Hashtbl.create 8 in
  let (), seconds =
    time_it (fun () ->
        List.iter
          (fun (f : Workloads.Osip_sim.gen_func) ->
            if f.gf_vulnerable then incr vulnerable;
            let prog = Dart.Driver.prepare ~toplevel:f.gf_toplevel ~depth:1 ast in
            let options = Dart.Driver.Options.make ~max_runs:per_function_budget () in
            let r = Dart.Driver.run ~options prog in
            (match r.Dart.Driver.verdict with
             | Dart.Driver.Bug_found b ->
               incr crashed;
               if f.gf_vulnerable then incr dart_tp;
               Hashtbl.replace faults b.Dart.Driver.bug_fault
                 (1 + Option.value ~default:0 (Hashtbl.find_opt faults b.Dart.Driver.bug_fault))
             | Dart.Driver.Complete | Dart.Driver.Budget_exhausted
             | Dart.Driver.Time_exhausted | Dart.Driver.Interrupted -> ());
            let rr = Dart.Random_search.run ~seed:1 ~max_runs:per_function_budget prog in
            match rr.Dart.Random_search.verdict with
            | `Bug_found _ -> incr random_crashed
            | `No_bug | `Time_exhausted | `Interrupted -> ())
          funcs)
  in
  let pct a b = 100.0 *. float_of_int a /. float_of_int b in
  row ~id:"osip-sweep"
    ~desc:(Printf.sprintf "%d functions, <=%d runs each" n per_function_budget)
    ~paper:"65% of ~600 functions crash"
    ~measured:
      (Printf.sprintf "DART: %d/%d (%.0f%%) crash (%.0fs total)" !crashed n (pct !crashed n)
         seconds);
  row ~id:"osip-sweep-truth" ~desc:"against generator ground truth"
    ~paper:"n/a (real library)"
    ~measured:
      (Printf.sprintf "%d/%d vulnerable by construction; DART found %d (%.0f%%)" !vulnerable
         n !dart_tp (pct !dart_tp !vulnerable));
  row ~id:"osip-sweep-random" ~desc:"random baseline, same budgets" ~paper:"n/a"
    ~measured:(Printf.sprintf "random: %d/%d (%.0f%%) crash" !random_crashed n (pct !random_crashed n));
  print_string "  crash causes: ";
  Hashtbl.iter (fun f c -> Printf.printf "%s x%d;  " (Machine.fault_to_string f) c) faults;
  print_newline ()

(* ---- E10: the oSIP parser attack -------------------------------------------- *)

let experiment_parser_attack () =
  header "E10: osip_message_parse attack (Section 4.3)";
  let r, s =
    dart ~max_runs:2_000 ~toplevel:Workloads.Osip_sim.parser_toplevel
      Workloads.Osip_sim.parser_vulnerable
  in
  let extra =
    match r.Dart.Driver.verdict with
    | Dart.Driver.Bug_found b ->
      let len = Option.value ~default:0 (List.assoc_opt 0 b.Dart.Driver.bug_inputs) in
      Printf.sprintf " [Content-Length witness = %d]" len
    | Dart.Driver.Complete | Dart.Driver.Budget_exhausted
    | Dart.Driver.Time_exhausted | Dart.Driver.Interrupted -> ""
  in
  row ~id:"osip-parser-attack" ~desc:"unchecked alloca of attacker-controlled size"
    ~paper:">2.5MB message kills any oSIP app"
    ~measured:(verdict_cell r s ^ extra);
  let r, s =
    dart ~max_runs:2_000 ~toplevel:Workloads.Osip_sim.parser_toplevel
      Workloads.Osip_sim.parser_fixed
  in
  row ~id:"osip-parser-fixed" ~desc:"parser as fixed in oSIP 2.2.0"
    ~paper:"fixed in v2.2.0 ChangeLog" ~measured:(verdict_cell r s)

(* ---- A1: search-strategy ablation -------------------------------------------- *)

let experiment_strategy_ablation () =
  header "A1: search-strategy ablation (paper footnote 4)";
  let src, toplevel = Workloads.Paper_examples.ac_controller in
  List.iter
    (fun strategy ->
      let r, s = dart ~depth:2 ~max_runs:200_000 ~strategy ~toplevel src in
      row
        ~id:(Printf.sprintf "ablation-%s" (Dart.Strategy.to_string strategy))
        ~desc:"AC-controller depth 2, runs to violation"
        ~paper:"DFS is the paper's default" ~measured:(verdict_cell r s))
    [ Dart.Strategy.Dfs; Dart.Strategy.Random_branch; Dart.Strategy.Bfs ];
  let src, toplevel = Workloads.Paper_examples.list_example in
  let budget = if !quick then 50_000 else 200_000 in
  let r, s = dart ~max_runs:budget ~toplevel src in
  row ~id:"ablation-coins-random" ~desc:"sum3 list bug: random shapes (paper Fig. 8)"
    ~paper:"shapes from coin tosses" ~measured:(verdict_cell r s);
  let r, s = dart ~max_runs:budget ~symbolic_pointers:true ~toplevel src in
  row ~id:"ablation-coins-symbolic" ~desc:"sum3 list bug: symbolic coins (extension)"
    ~paper:"n/a (our extension)" ~measured:(verdict_cell r s)

(* ---- A3: string-directed packet construction ---------------------------------- *)

let experiment_packet_construction () =
  header "A3: packet construction through string routines (input filters, Section 4.1)";
  let budget = if !quick then 20_000 else 50_000 in
  let r, s =
    dart ~max_runs:budget ~toplevel:Workloads.Sip_parser.toplevel
      Workloads.Sip_parser.vulnerable
  in
  let extra =
    match r.Dart.Driver.verdict with
    | Dart.Driver.Bug_found b ->
      let char_at i = Option.value ~default:0 (List.assoc_opt i b.Dart.Driver.bug_inputs) in
      let packet =
        String.init 11 (fun i ->
            let c = char_at i land 255 in
            if c >= 32 && c < 127 then Char.chr c else '.')
      in
      Printf.sprintf " [packet %S]" packet
    | Dart.Driver.Complete | Dart.Driver.Budget_exhausted
    | Dart.Driver.Time_exhausted | Dart.Driver.Interrupted -> ""
  in
  row ~id:"packet-dart" ~desc:"SIP parser OOB behind strncmp/atoi filters"
    ~paper:"directed search passes input filters" ~measured:(verdict_cell r s ^ extra);
  let r, s =
    random_baseline ~max_runs:budget ~toplevel:Workloads.Sip_parser.toplevel
      Workloads.Sip_parser.vulnerable
  in
  row ~id:"packet-random" ~desc:"same parser, random testing"
    ~paper:"stuck in the filter (1 in 256^7)" ~measured:(random_cell r s);
  let r, s =
    dart ~max_runs:2_000 ~toplevel:Workloads.Sip_parser.toplevel Workloads.Sip_parser.fixed
  in
  row ~id:"packet-fixed" ~desc:"bounds-checked parser" ~paper:"n/a"
    ~measured:(verdict_cell r s)

(* ---- A2: solver ablation ------------------------------------------------------ *)

let experiment_solver_ablation () =
  header "A2: solver ablation (interval fast path vs simplex)";
  (* A workload whose path constraints defeat both the interval fast
     path and Gaussian elimination: non-unit coefficients force the
     rational relaxation + branch-and-bound. *)
  let src =
    {|
void f(int a, int b, int c) {
  if (2*a + 3*b == 10000)
    if (5*b + 7*c == 20000)
      if (a > 0 && b > 0 && c > 0)
        abort();
}
|}
  in
  let run_with use_simplex =
    let stats = Solver.create_stats () in
    let ast = Minic.Parser.parse_program src in
    let prog = Dart.Driver.prepare ~toplevel:"f" ~depth:1 ast in
    (* Drive the flip loop manually so the ablated solver can be
       injected (Driver always uses the full solver). *)
    let rng = Dart_util.Prng.create 42 in
    let im = Dart.Inputs.create () in
    let opts = Dart.Concolic.default_exec_options in
    let entry = Dart.Driver_gen.wrapper_name in
    let bug = ref false in
    let rec loop budget prev =
      if budget = 0 then ()
      else begin
        let d = Dart.Concolic.run_once ~opts ~rng ~im ~prev_stack:prev ~entry prog in
        match d.Dart.Concolic.outcome with
        | Dart.Concolic.Run_fault _ -> bug := true
        | Dart.Concolic.Run_prediction_failure -> ()
        | Dart.Concolic.Run_halted ->
          let rec try_flip j =
            if j < 0 then ()
            else if
              d.Dart.Concolic.stack.(j).Dart.Concolic.br_done
              || d.Dart.Concolic.path_constraint.(j) = None
            then try_flip (j - 1)
            else begin
              let pivot =
                Symbolic.Constr.negate (Option.get d.Dart.Concolic.path_constraint.(j))
              in
              let prefix =
                List.filter_map
                  (fun h -> d.Dart.Concolic.path_constraint.(h))
                  (List.init j Fun.id)
              in
              match Solver.solve ~stats ~use_simplex (pivot :: prefix) with
              | Solver.Sat model ->
                List.iter
                  (fun (v, z) ->
                    Dart.Inputs.set im ~id:v (Dart_util.Word32.of_zint_trunc z))
                  model;
                let stack' =
                  Array.init (j + 1) (fun i ->
                      if i = j then
                        { Dart.Concolic.br_branch =
                            not d.Dart.Concolic.stack.(j).Dart.Concolic.br_branch;
                          br_done = false }
                      else d.Dart.Concolic.stack.(i))
                in
                loop (budget - 1) stack'
              | Solver.Unsat | Solver.Unknown -> try_flip (j - 1)
            end
          in
          try_flip (Array.length d.Dart.Concolic.stack - 1)
      end
    in
    loop 100 [||];
    (!bug, stats)
  in
  let found, stats = run_with true in
  row ~id:"solver-full" ~desc:"simplex + branch-and-bound enabled"
    ~paper:"lp_solve (real+integer programming)"
    ~measured:
      (Printf.sprintf "bug=%b, %d queries (%d simplex, %d fast-path)" found
         (Solver.queries stats) (Solver.simplex_queries stats) (Solver.fast_path stats));
  let found, stats = run_with false in
  row ~id:"solver-intervals-only" ~desc:"interval fast path only (ablated)" ~paper:"n/a"
    ~measured:
      (Printf.sprintf "bug=%b, %d queries (%d unknown)" found (Solver.queries stats)
         (Solver.unknown_count stats))

(* ---- E12: parallel jobs scaling ------------------------------------------------ *)

(* A multi-path no-bug workload with genuine per-run cost: a deep
   conditional chain whose every run carries an N-deep stack, capped so
   the run budget (not completeness) ends the search. Budget sharding
   makes each of J workers do 1/J of the runs, so wall clock should
   shrink toward 1/min(J, cores). *)
let deep_chain_src n =
  Printf.sprintf
    {|
int deep(int x) {
  int acc = 0;
  int i = 0;
  while (i < %d) {
    if (x > i) acc = acc + 1;
    i = i + 1;
  }
  return acc;
}
|}
    n

let experiment_jobs_scaling () =
  header "E12: parallel jobs scaling (domain-sharded run budget)";
  Printf.printf "  cores available (Domain.recommended_domain_count): %d\n"
    (Domain.recommended_domain_count ());
  let chain = if !quick then 80 else 150 in
  let budget = if !quick then 60 else 120 in
  let prog =
    Dart.Driver.prepare ~toplevel:"deep" ~depth:1
      (Minic.Parser.parse_program (deep_chain_src chain))
  in
  let base = Dart.Driver.Options.make ~max_runs:budget () in
  let t1 = ref 1.0 in
  let bugs_at_1 = ref [] in
  let speedups = ref [] in
  List.iter
    (fun jobs ->
      let r, s =
        time_it (fun () -> Dart.Parallel.run ~options:(Dart.Parallel.options ~jobs base) prog)
      in
      let m = r.Dart.Parallel.merged in
      if jobs = 1 then begin
        t1 := s;
        bugs_at_1 := List.map Dart.Driver.bug_key m.Dart.Driver.bugs
      end;
      speedups := (jobs, !t1 /. s) :: !speedups;
      let same_bugs = List.map Dart.Driver.bug_key m.Dart.Driver.bugs = !bugs_at_1 in
      row
        ~id:(Printf.sprintf "jobs-%d" jobs)
        ~desc:
          (Printf.sprintf "%d-deep chain, %d total runs, %d workers" chain
             m.Dart.Driver.runs jobs)
        ~paper:"n/a (our extension)"
        ~measured:
          (Printf.sprintf
             "%.2fs (%.2fx vs jobs=1), bug set identical: %b, global hits %d (%d from \
              peers)"
             s (!t1 /. s) same_bugs
             (Solver.cache_hits m.Dart.Driver.solver_stats)
             (Solver.shared_hits m.Dart.Driver.solver_stats)))
    [ 1; 2; 4 ];
  let speedup j = try List.assoc j !speedups with Not_found -> 0.0 in
  row ~id:"jobs-scaling" ~desc:"speedup monotonicity across worker counts"
    ~paper:"n/a (target: jobs=4 >= jobs=2)"
    ~measured:
      (Printf.sprintf "jobs=2 %.2fx, jobs=4 %.2fx, monotone: %b" (speedup 2) (speedup 4)
         (speedup 4 >= speedup 2))

(* ---- E13: constraint slicing + solve cache ------------------------------------- *)

(* The two hot-path accelerations are exact, so every ablation combo
   must agree on verdict, bug set and coverage; the payoff is fewer
   solver/simplex queries on deep workloads, where sibling subtrees
   re-issue the same sliced sub-queries. *)
let experiment_accel_ablation () =
  header "E13: independence slicing + solve cache (depth >= 3 workloads)";
  let fingerprint (r : Dart.Driver.report) =
    ( (match r.Dart.Driver.verdict with
       | Dart.Driver.Bug_found _ -> "bug"
       | Dart.Driver.Complete -> "complete"
       | Dart.Driver.Budget_exhausted -> "budget"
       | Dart.Driver.Time_exhausted -> "time"
       | Dart.Driver.Interrupted -> "interrupted"),
      List.map Dart.Driver.bug_key r.Dart.Driver.bugs,
      List.sort compare r.Dart.Driver.coverage_sites )
  in
  let case ~id ~desc ~depth ~max_runs ~toplevel src =
    let run use_slicing use_cache =
      let options = Dart.Driver.Options.make ~depth ~max_runs ~use_slicing ~use_cache () in
      time_it (fun () -> Dart.Driver.test_source ~options ~toplevel src)
    in
    let accel, ta = run true true in
    let plain, tp = run false false in
    let sa = accel.Dart.Driver.solver_stats and sp = plain.Dart.Driver.solver_stats in
    let reduction a b =
      if b = 0 then 0.0 else 100.0 *. (1.0 -. (float_of_int a /. float_of_int b))
    in
    let identical = fingerprint accel = fingerprint plain in
    row ~id ~desc ~paper:"n/a (our extension; exactness required)"
      ~measured:
        (Printf.sprintf
           "queries %d -> %d (-%.0f%%), simplex %d -> %d (-%.0f%%), %d hits, %d sliced, \
            %.2fs -> %.2fs, identical: %b"
           (Solver.queries sp) (Solver.queries sa)
           (reduction (Solver.queries sa) (Solver.queries sp))
           (Solver.simplex_queries sp) (Solver.simplex_queries sa)
           (reduction (Solver.simplex_queries sa) (Solver.simplex_queries sp))
           (Solver.cache_hits sa)
           (Solver.constraints_sliced_away sa)
           tp ta identical);
    (* Machine-readable companion row: the full counter/timing vectors
       land in the --json artifact through the same row channel. *)
    row ~id:(id ^ "-counters") ~desc:"solver counters + phase seconds (accelerated run)"
      ~paper:"n/a"
      ~measured:
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) (Solver.to_assoc sa)
            @ [ Printf.sprintf "incremental_hits=%d" (Solver.incremental_hits sa);
                Printf.sprintf "pops_saved=%d" (Solver.pops_saved sa) ]
            @ List.map
                (fun (k, v) -> Printf.sprintf "%s=%.3f" k v)
                (Dart.Telemetry.metrics_to_assoc accel.Dart.Driver.metrics)))
  in
  let ac_src, ac_top = Workloads.Paper_examples.ac_controller in
  case ~id:"accel-ac-depth3" ~desc:"AC controller, depth 3" ~depth:3 ~max_runs:20_000
    ~toplevel:ac_top ac_src;
  case ~id:"accel-step-depth4"
    ~desc:"independent per-call branches, depth 4" ~depth:4 ~max_runs:20_000 ~toplevel:"step"
    "void step(int m) { if (m == 1) { m = 0; } }";
  if not !quick then begin
    let ns_src = Workloads.Needham_schroeder.possibilistic ~fix:`None in
    case ~id:"accel-ns-poss-depth3" ~desc:"NS possibilistic intruder, depth 3" ~depth:3
      ~max_runs:50_000 ~toplevel:Workloads.Needham_schroeder.possibilistic_toplevel ns_src
  end
  else print_endline "(NS depth 3 skipped in --quick mode)"

(* ---- E16: shared cross-worker solve store -------------------------------------- *)

(* Jobs scaling with globally counted cache hits: the shared store lets
   any worker answer any worker's query, so the merged hit counter is a
   fleet-wide number instead of a sum of private hoards, and the pooled
   run budget keeps every worker busy until the whole pool drains. The
   ablation (--no-shared-cache) must agree on verdict and bug set at
   every job count — the store is an acceleration, not a search change. *)
let experiment_shared_store () =
  header "E16: shared cross-worker solve store (pooled budget, global hit accounting)";
  let ac_src, ac_top = Workloads.Paper_examples.ac_controller in
  let prog =
    Dart.Driver.prepare ~toplevel:ac_top ~depth:3 (Minic.Parser.parse_program ac_src)
  in
  let budget = if !quick then 400 else 2_000 in
  let run ~jobs ~use_shared_cache =
    let base =
      Dart.Driver.Options.make ~depth:3 ~max_runs:budget ~stop_on_first_bug:false
        ~use_shared_cache ()
    in
    time_it (fun () -> Dart.Parallel.run ~options:(Dart.Parallel.options ~jobs base) prog)
  in
  let bug_keys (r : Dart.Parallel.report) =
    List.sort_uniq compare
      (List.map Dart.Driver.bug_key r.Dart.Parallel.merged.Dart.Driver.bugs)
  in
  List.iter
    (fun jobs ->
      let on, t_on = run ~jobs ~use_shared_cache:true in
      let off, t_off = run ~jobs ~use_shared_cache:false in
      let s_on = on.Dart.Parallel.merged.Dart.Driver.solver_stats in
      let s_off = off.Dart.Parallel.merged.Dart.Driver.solver_stats in
      row
        ~id:(Printf.sprintf "e16-jobs-%d" jobs)
        ~desc:(Printf.sprintf "AC controller depth 3, %d pooled runs, %d workers" budget jobs)
        ~paper:"n/a (our extension; exactness required)"
        ~measured:
          (Printf.sprintf
             "shared: %d queries, %d hits (%d from peers), %.2fs; private: %d queries, %d \
              hits, %.2fs; same bugs: %b"
             (Solver.queries s_on) (Solver.cache_hits s_on) (Solver.shared_hits s_on) t_on
             (Solver.queries s_off) (Solver.cache_hits s_off) t_off
             (bug_keys on = bug_keys off)))
    [ 1; 2; 4 ]

(* ---- E17: whole-library campaign (paper section 4.3 as a workflow) ------------- *)

(* The paper tested oSIP by looping an external script over every
   exported function; the campaign makes that one invocation. Measure
   discovery, detection against the generator's ground truth, crash
   dedup, and that jobs only buy wall clock — the aggregate JSON must
   be byte-identical at jobs 1 and 4. *)
let experiment_campaign () =
  header "E17: library campaign over the oSIP simulacrum";
  let n = if !quick then 20 else 60 in
  let source, funcs = Workloads.Osip_sim.generate ~seed:7 ~n in
  let vulnerable =
    List.filter (fun f -> f.Workloads.Osip_sim.gf_vulnerable) funcs
  in
  let options =
    Dart.Driver.Options.make ~seed:11 ~max_runs:600 ~per_function_runs:150 ()
  in
  let campaign ~jobs =
    time_it (fun () ->
        match Dart.Campaign.run ~jobs ~options source with
        | Ok r -> r
        | Error msg -> failwith ("campaign: " ^ msg))
  in
  let r1, t1 = campaign ~jobs:1 in
  let r4, t4 = campaign ~jobs:4 in
  let retired which =
    List.length
      (List.filter (fun tr -> tr.Dart.Campaign.tr_retired = which) r1.Dart.Campaign.cam_results)
  in
  row ~id:"e17-discovery"
    ~desc:(Printf.sprintf "targets discovered over %d generated functions" (List.length funcs))
    ~paper:"n/a (oSIP: ~600 externally visible)"
    ~measured:
      (Printf.sprintf "%d targets, %d skipped"
         (List.length r1.Dart.Campaign.cam_targets)
         (List.length r1.Dart.Campaign.cam_skipped));
  row ~id:"e17-detection" ~desc:"crashing targets vs generator ground truth"
    ~paper:"paper found one real oSIP crash"
    ~measured:
      (Printf.sprintf "%d vulnerable by construction, %d retired with a bug, %d deduped crashes"
         (List.length vulnerable) (retired Dart.Campaign.Bug)
         (List.length r1.Dart.Campaign.cam_crashes));
  row ~id:"e17-retirement" ~desc:"how the remaining targets retired"
    ~paper:"n/a (our extension)"
    ~measured:
      (Printf.sprintf "%d complete, %d saturated, %d budget-capped"
         (retired Dart.Campaign.Complete) (retired Dart.Campaign.Saturated)
         (retired Dart.Campaign.Budget_capped));
  (* The "phases" line is wall clock — the documented exception to
     to_json determinism — so the identity check drops it, exactly as
     CI's diffs use grep -v '"phases"'. *)
  let is_phases_line l =
    let t = String.trim l in
    String.length t >= 9 && String.sub t 0 9 = "\"phases\":"
  in
  let json_sans_phases r =
    String.split_on_char '\n' (Dart.Campaign.to_json r)
    |> List.filter (fun l -> not (is_phases_line l))
    |> String.concat "\n"
  in
  row ~id:"e17-determinism" ~desc:"aggregate JSON, jobs 1 vs jobs 4"
    ~paper:"byte-identical required"
    ~measured:
      (Printf.sprintf "%s; %.2fs at jobs 1, %.2fs at jobs 4"
         (if json_sans_phases r1 = json_sans_phases r4 then "identical"
          else "MISMATCH")
         t1 t4)

(* ---- E18: flight recorder (tracing overhead, latency attribution) -------------- *)

(* Observability must be pay-for-what-you-use. With the null sink the
   only recorder cost left in the hot path is two monotonic clock
   reads per run feeding the latency histograms, so untraced execs/sec
   is the baseline number — the traced run shows what a full ring
   recording costs relative to it, and pays for itself by also
   yielding the percentile lines and the profiler's attribution. *)
let experiment_observability () =
  header "E18: flight recorder (tracing overhead, latency histograms, profiler)";
  (* Five independent branches per call: the search consumes its whole
     run budget, so the measurement window is runs, not a quick
     completion (a short search would bill the ring's one-time buffer
     allocation as per-run overhead). *)
  let churn_src =
    "int acc;\n\
     void step(int a, int b, int c) {\n\
    \  if (a > b) { acc = acc + 1; } else { acc = acc - 1; }\n\
    \  if (b > c) { acc = acc + 2; } else { acc = acc - 2; }\n\
    \  if (c > a) { acc = acc + 3; } else { acc = acc - 3; }\n\
    \  if (a + b > c) { acc = acc + 4; } else { acc = acc - 4; }\n\
    \  if (b + c > a) { acc = acc + 5; } else { acc = acc - 5; }\n\
     }\n"
  in
  let depth = 4 in
  let max_runs = if !quick then 2_000 else 10_000 in
  let prog =
    Dart.Driver.prepare ~toplevel:"step" ~depth (Minic.Parser.parse_program churn_src)
  in
  let search sink () =
    let options =
      Dart.Driver.Options.make ~depth ~max_runs ~stop_on_first_bug:false
        ~telemetry:(Dart.Telemetry.with_sink sink) ()
    in
    Dart.Driver.search ~ctx:(Dart.Driver.make_ctx ~seed:42 ~max_runs ()) ~options prog
  in
  ignore (search Dart.Telemetry.null ()) (* warm-up *);
  let r_off, t_off = time_it (search Dart.Telemetry.null) in
  let ring = Dart.Telemetry.ring ~capacity:(1 lsl 20) in
  let r_on, t_on = time_it (search ring) in
  let eps (r : Dart.Driver.report) t = float_of_int r.Dart.Driver.runs /. t in
  row ~id:"e18-overhead"
    ~desc:(Printf.sprintf "branch churn depth %d, %d runs: untraced vs ring-traced" depth max_runs)
    ~paper:"n/a (tracing off must cost nothing)"
    ~measured:
      (Printf.sprintf
         "untraced %.0f execs/sec (the baseline), traced %.0f execs/sec (%.1f%% overhead, \
          %d events)"
         (eps r_off t_off) (eps r_on t_on)
         (100.0 *. (t_on -. t_off) /. t_off)
         (Dart.Telemetry.emitted ring));
  let m = r_on.Dart.Driver.metrics in
  row ~id:"e18-latency" ~desc:"latency histograms accumulated by the same search"
    ~paper:"n/a (our extension)"
    ~measured:
      (Printf.sprintf "solve p50 <=%s p99 <=%s (%d samples); run p50 <=%s p99 <=%s (%d samples)"
         (Dart.Telemetry.ns_to_string (Dart.Telemetry.Hist.p50 m.Dart.Telemetry.solve_hist))
         (Dart.Telemetry.ns_to_string (Dart.Telemetry.Hist.p99 m.Dart.Telemetry.solve_hist))
         (Dart.Telemetry.Hist.count m.Dart.Telemetry.solve_hist)
         (Dart.Telemetry.ns_to_string (Dart.Telemetry.Hist.p50 m.Dart.Telemetry.run_hist))
         (Dart.Telemetry.ns_to_string (Dart.Telemetry.Hist.p99 m.Dart.Telemetry.run_hist))
         (Dart.Telemetry.Hist.count m.Dart.Telemetry.run_hist));
  let p = Dart.Profile.of_events (Dart.Telemetry.events ring) in
  row ~id:"e18-profile" ~desc:"post-hoc attribution over the recorded ring"
    ~paper:"n/a (our extension)"
    ~measured:
      (match p.Dart.Profile.p_sites with
       | [] -> "no solver sites in trace"
       | s :: _ ->
         Printf.sprintf "hottest solver site %s:%d — %d queries, %s total"
           s.Dart.Profile.sp_fn s.Dart.Profile.sp_pc s.Dart.Profile.sp_queries
           (Dart.Telemetry.ns_to_string s.Dart.Profile.sp_total_ns))

(* ---- E19: chaos soak (graceful degradation under injected faults) -------------- *)

(* The campaign's fault-tolerance contract, measured: under injected
   worker crashes at increasing rates, the wall clock and the bug count
   may degrade, but every discovered target stays in the ledger
   (quarantined at worst, never lost) and no bug is invented that the
   fault-free run does not know. The chaos schedule is a pure function
   of (spec, seed), so the degradation numbers are reproducible. *)
let experiment_chaos_soak () =
  header "E19: chaos soak (campaign under injected worker crashes)";
  let n = if !quick then 12 else 30 in
  let source, _ = Workloads.Osip_sim.generate ~seed:7 ~n in
  let campaign ?faultsim () =
    time_it (fun () ->
        let options =
          Dart.Driver.Options.make ~seed:11 ~max_runs:600 ~per_function_runs:150
            ~retry_limit:2 ?faultsim ()
        in
        match Dart.Campaign.run ~options source with
        | Ok r -> r
        | Error msg -> failwith ("campaign: " ^ msg))
  in
  let clean, t_clean = campaign () in
  let clean_keys =
    List.map (fun (_, b) -> Dart.Driver.bug_key b) clean.Dart.Campaign.cam_crashes
  in
  let quarantined r =
    List.length
      (List.filter
         (fun tr ->
           match tr.Dart.Campaign.tr_retired with
           | Dart.Campaign.Quarantined _ -> true
           | _ -> false)
         r.Dart.Campaign.cam_results)
  in
  let describe r t =
    let keys = List.map (fun (_, b) -> Dart.Driver.bug_key b) r.Dart.Campaign.cam_crashes in
    let invented = List.filter (fun k -> not (List.mem k clean_keys)) keys in
    Printf.sprintf
      "%.2fs, %d bugs (%d lost, %d invented), %d quarantined, oracle %s"
      t (List.length keys)
      (List.length (List.filter (fun k -> not (List.mem k keys)) clean_keys))
      (List.length invented) (quarantined r)
      (if Dart.Campaign.no_lost_targets r && invented = [] then "PASS" else "VIOLATED")
  in
  row ~id:"e19-chaos-off"
    ~desc:(Printf.sprintf "oSIP simulacrum (%d functions), no injection: the baseline" n)
    ~paper:"n/a (our extension)"
    ~measured:(describe clean t_clean);
  List.iter
    (fun bp ->
      let fs = Dart_util.Faultsim.chaos ~seed:23 [ (Dart_util.Faultsim.Worker_crash, bp) ] in
      let r, t = campaign ~faultsim:fs () in
      row
        ~id:(Printf.sprintf "e19-chaos-%d" bp)
        ~desc:
          (Printf.sprintf "worker_crash at %.1f%% of slices, retry_limit 2, chaos-seed 23"
             (float_of_int bp /. 100.))
        ~paper:"no lost targets, no invented bugs"
        ~measured:(describe r t))
    [ 100; 500 ]

(* ---- E14: coverage over time (directed vs random) ------------------------------ *)

(* Sample the Cover_point stream of a directed and a random search on
   the same prepared program and compare how coverage accumulates. The
   compressed trajectory (run:directions pairs at every coverage gain)
   rides in the measured cell, so the --json artifact carries the whole
   curve for offline plotting. *)
let experiment_coverage_trajectory () =
  header "E14: coverage over time (directed vs random testing, depth >= 3)";
  let gains points =
    let _, rev =
      List.fold_left
        (fun (prev, acc) (p : Dart.Telemetry.cover_point) ->
          if p.Dart.Telemetry.cp_covered > prev then (p.Dart.Telemetry.cp_covered, p :: acc)
          else (prev, acc))
        (0, []) points
    in
    List.rev rev
  in
  let traj points =
    let gs = gains points in
    let shown, elided =
      if List.length gs <= 16 then (gs, 0)
      else (List.filteri (fun i _ -> i < 16) gs, List.length gs - 16)
    in
    String.concat " "
      (List.map
         (fun (p : Dart.Telemetry.cover_point) ->
           Printf.sprintf "%d:%d" p.Dart.Telemetry.cp_run p.Dart.Telemetry.cp_covered)
         shown)
    ^ if elided > 0 then Printf.sprintf " (+%d more gains)" elided else ""
  in
  let summary_of points total_runs possible =
    match List.rev points with
    | [] -> "no cover points"
    | (last : Dart.Telemetry.cover_point) :: _ ->
      Printf.sprintf "%d/%d dirs in %d runs (last gain at run %d): %s"
        last.Dart.Telemetry.cp_covered possible total_runs
        (match List.rev (gains points) with
         | g :: _ -> g.Dart.Telemetry.cp_run
         | [] -> 0)
        (traj points)
  in
  let case ~id ~desc ~depth ~max_runs ~toplevel src =
    let ast = Minic.Parser.parse_program src in
    let prog = Dart.Driver.prepare ~toplevel ~depth ast in
    let possible =
      2 * (Dart.Coverage.compute prog ~covered:[]).Dart.Coverage.total_sites
    in
    let sink = Dart.Telemetry.ring ~capacity:(1 lsl 20) in
    let options =
      Dart.Driver.Options.make ~depth ~max_runs ~stop_on_first_bug:false
        ~telemetry:(Dart.Telemetry.with_sink sink) ()
    in
    let ctx = Dart.Driver.make_ctx ~seed:42 ~max_runs () in
    let r, s = time_it (fun () -> Dart.Driver.search ~ctx ~options prog) in
    let points = Dart.Telemetry.timeline (Dart.Telemetry.events sink) in
    row ~id:(id ^ "-directed")
      ~desc:(desc ^ ", directed")
      ~paper:"coverage grows with directed flips"
      ~measured:(Printf.sprintf "%s (%.2fs)" (summary_of points r.Dart.Driver.runs possible) s);
    let sink = Dart.Telemetry.ring ~capacity:(1 lsl 20) in
    let rr, s =
      time_it (fun () -> Dart.Random_search.run ~seed:42 ~max_runs ~telemetry:sink prog)
    in
    let points = Dart.Telemetry.timeline (Dart.Telemetry.events sink) in
    row ~id:(id ^ "-random")
      ~desc:(desc ^ ", random testing")
      ~paper:"plateaus below directed"
      ~measured:
        (Printf.sprintf "%s (%.2fs)" (summary_of points rr.Dart.Random_search.runs possible) s)
  in
  let ac_src, ac_top = Workloads.Paper_examples.ac_controller in
  case ~id:"cover-ac-depth3" ~desc:"AC controller, depth 3" ~depth:3
    ~max_runs:(if !quick then 2_000 else 20_000)
    ~toplevel:ac_top ac_src;
  if not !quick then
    case ~id:"cover-ns-poss-depth3" ~desc:"NS possibilistic intruder, depth 3" ~depth:3
      ~max_runs:10_000 ~toplevel:Workloads.Needham_schroeder.possibilistic_toplevel
      (Workloads.Needham_schroeder.possibilistic ~fix:`None)
  else print_endline "(NS depth 3 skipped in --quick mode)"

(* ---- A4: deep-path regression guard -------------------------------------------- *)

let experiment_deep_path () =
  header "A4: deep-path sanity (candidate selection must stay O(1) per probe)";
  let chain = if !quick then 100 else 150 in
  let prog =
    Dart.Driver.prepare ~toplevel:"deep" ~depth:1
      (Minic.Parser.parse_program (deep_chain_src chain))
  in
  let options = Dart.Driver.Options.make ~max_runs:(2 * chain) () in
  let r, s = time_it (fun () -> Dart.Driver.run ~options prog) in
  let per_run = s /. float_of_int r.Dart.Driver.runs *. 1000.0 in
  (* Generous ceiling: a quadratic candidate representation pushes the
     full exploration of a 150-deep chain well past this. *)
  let ceiling = 30.0 in
  row ~id:"deep-path"
    ~desc:(Printf.sprintf "%d-deep chain, full exploration (%d runs)" chain r.Dart.Driver.runs)
    ~paper:"n/a (regression guard)"
    ~measured:
      (Printf.sprintf "%.2fs (%.1fms/run), %d solver queries [%s]" s per_run
         (Solver.queries r.Dart.Driver.solver_stats)
         (if s <= ceiling then "PASS" else Printf.sprintf "FAIL > %.0fs" ceiling))

(* ---- Bechamel timing benches -------------------------------------------------- *)

let timing_benches () =
  header "Timing (Bechamel; OLS estimate per operation)";
  let open Bechamel in
  let ac_src, ac_top = Workloads.Paper_examples.ac_controller in
  let ac_prog =
    Dart.Driver.prepare ~toplevel:ac_top ~depth:2 (Minic.Parser.parse_program ac_src)
  in
  let ns_src = Workloads.Needham_schroeder.possibilistic ~fix:`None in
  let ns_prog =
    Dart.Driver.prepare ~toplevel:Workloads.Needham_schroeder.possibilistic_toplevel ~depth:1
      (Minic.Parser.parse_program ns_src)
  in
  let run_prog prog symbolic rng () =
    let im = Dart.Inputs.create () in
    let opts = { Dart.Concolic.default_exec_options with symbolic } in
    Dart.Concolic.run_once ~opts ~rng ~im ~prev_stack:[||]
      ~entry:Dart.Driver_gen.wrapper_name prog
  in
  let parse_test =
    Test.make ~name:"e6 frontend: parse+typecheck+lower NS source"
      (Staged.stage (fun () -> Ram.Lower.lower_source ns_src))
  in
  let concrete_test =
    Test.make ~name:"e5 machine: one concrete AC run"
      (Staged.stage (run_prog ac_prog false (Dart_util.Prng.create 7)))
  in
  let concolic_test =
    Test.make ~name:"e5 concolic: one instrumented AC run"
      (Staged.stage (run_prog ac_prog true (Dart_util.Prng.create 7)))
  in
  let ns_run_test =
    Test.make ~name:"e6 concolic: one instrumented NS run"
      (Staged.stage (run_prog ns_prog true (Dart_util.Prng.create 7)))
  in
  let solver_fast_test =
    let open Symbolic in
    let z = Zarith_lite.Zint.of_int in
    let cs =
      [ Constr.make (Linexpr.add_const (z (-10)) (Linexpr.var 0)) Constr.Eq0;
        Constr.make (Linexpr.add_const (z 3) (Linexpr.neg (Linexpr.var 1))) Constr.Le0 ]
    in
    Test.make ~name:"a2 solver: univariate query (fast path)"
      (Staged.stage (fun () -> Solver.solve cs))
  in
  let solver_simplex_test =
    let open Symbolic in
    let z = Zarith_lite.Zint.of_int in
    let mk c terms =
      List.fold_left
        (fun acc (v, k) -> Linexpr.add acc (Linexpr.scale (z k) (Linexpr.var v)))
        (Linexpr.const (z c)) terms
    in
    let cs =
      [ Constr.make (mk (-1000) [ (0, 1); (1, 1) ]) Constr.Eq0;
        Constr.make (mk (-2000) [ (1, 2); (2, 1) ]) Constr.Le0;
        Constr.make (mk 0 [ (0, -1); (2, 1) ]) Constr.Le0 ]
    in
    Test.make ~name:"a2 solver: multivariate query (simplex)"
      (Staged.stage (fun () -> Solver.solve cs))
  in
  let osip_test =
    let src, funcs = Workloads.Osip_sim.generate ~seed:7 ~n:10 in
    let f = List.hd funcs in
    let prog =
      Dart.Driver.prepare ~toplevel:f.Workloads.Osip_sim.gf_toplevel ~depth:1
        (Minic.Parser.parse_program src)
    in
    Test.make ~name:"e9 concolic: one instrumented oSIP-function run"
      (Staged.stage (run_prog prog true (Dart_util.Prng.create 7)))
  in
  let tests =
    [ parse_test; concrete_test; concolic_test; ns_run_test; solver_fast_test;
      solver_simplex_test; osip_test ]
  in
  let quota = if !quick then 0.2 else 0.5 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"dart" ~fmt:"%s %s" tests) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some [ t ] -> (name, t) :: acc
        | Some _ | None -> (name, nan) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, t) ->
      if Float.is_nan t then Printf.printf "  %-55s (no estimate)\n" name
      else if t > 1_000_000.0 then Printf.printf "  %-55s %10.2f ms/op\n" name (t /. 1e6)
      else if t > 1_000.0 then Printf.printf "  %-55s %10.2f us/op\n" name (t /. 1e3)
      else Printf.printf "  %-55s %10.0f ns/op\n" name t)
    rows

(* ---- E15: compiled execution engine ---------------------------------------- *)

(* Our extension (ROADMAP item 2): the RAM machine compiled once to
   cached closures versus the tree-walking interpreter. Concrete runs
   (symbolic off) isolate machine throughput — the execute phase the
   directed search repeats thousands of times; the identity rows check
   that the end-to-end report does not change by a byte when the
   engine switches. *)
let experiment_exec_throughput () =
  header "E15: compiled execution engine (interpreter vs compiled closures)";
  (* One exec = machine load + concrete run — the unit the search's
     execute phase repeats thousands of times. The two engines run in
     interleaved batches (best of several rounds each) so CPU frequency
     drift hits both equally, and every batch re-seeds the same PRNG so
     both see identical external-input streams. *)
  let speed ~id ~desc ~depth ~toplevel src =
    let prog = Dart.Driver.prepare ~toplevel ~depth (Minic.Parser.parse_program src) in
    Machine.precompile prog;
    let entry = Dart.Driver_gen.wrapper_name in
    let iters = if !quick then 300 else 2_000 in
    let batch compile =
      let rng = Dart_util.Prng.create 42 in
      let listener =
        { Machine.null_listener with
          Machine.on_external =
            (fun m _ ~dst ->
              match dst with
              | Some d -> Machine.write_word m d (Dart_util.Prng.int_range rng (-100) 100)
              | None -> ()) }
      in
      let (), secs =
        time_it (fun () ->
            for _ = 1 to iters do
              let m = Machine.load ~compile prog in
              ignore (Machine.run ~listener m ~entry)
            done)
      in
      secs
    in
    (* Warm both paths (one-time compile, allocator state) off the clock. *)
    ignore (batch true);
    ignore (batch false);
    let bc = ref infinity and bi = ref infinity in
    for _ = 1 to 5 do
      bc := min !bc (batch true);
      bi := min !bi (batch false)
    done;
    let compiled = float_of_int iters /. !bc in
    let interp = float_of_int iters /. !bi in
    row ~id ~desc ~paper:"n/a (our extension; target >= 5x)"
      ~measured:
        (Printf.sprintf "interp %.0f execs/sec, compiled %.0f execs/sec, %.1fx" interp
           compiled (compiled /. interp))
  in
  let ac_src, ac_top = Workloads.Paper_examples.ac_controller in
  speed ~id:"e15-ns-depth4" ~desc:"NS protocol depth 4, concrete execs/sec" ~depth:4
    ~toplevel:Workloads.Needham_schroeder.possibilistic_toplevel
    (Workloads.Needham_schroeder.possibilistic ~fix:`None);
  speed ~id:"e15-ac-depth4" ~desc:"AC controller depth 4, concrete execs/sec" ~depth:4
    ~toplevel:ac_top ac_src;
  speed ~id:"e15-osip-depth4" ~desc:"oSIP message parse depth 4, concrete execs/sec" ~depth:4
    ~toplevel:Workloads.Osip_sim.parser_toplevel Workloads.Osip_sim.parser_vulnerable;
  let identity ~id ~desc ~depth ~max_runs ~toplevel src =
    let report compile =
      let exec = { Dart.Concolic.default_exec_options with compile } in
      let options = Dart.Driver.Options.make ~depth ~max_runs ~exec () in
      Dart.Driver.report_to_string (Dart.Driver.test_source ~options ~toplevel src)
    in
    row ~id ~desc ~paper:"byte-identical required"
      ~measured:(if report true = report false then "identical" else "MISMATCH")
  in
  identity ~id:"e15-id-ac" ~desc:"report identity: AC controller" ~depth:2 ~max_runs:2_000
    ~toplevel:ac_top ac_src;
  identity ~id:"e15-id-ns" ~desc:"report identity: NS protocol" ~depth:2 ~max_runs:2_000
    ~toplevel:Workloads.Needham_schroeder.possibilistic_toplevel
    (Workloads.Needham_schroeder.possibilistic ~fix:`None);
  identity ~id:"e15-id-osip" ~desc:"report identity: oSIP parser" ~depth:1 ~max_runs:2_000
    ~toplevel:Workloads.Osip_sim.parser_toplevel Workloads.Osip_sim.parser_vulnerable;
  identity ~id:"e15-id-sip" ~desc:"report identity: SIP parser" ~depth:1 ~max_runs:2_000
    ~toplevel:Workloads.Sip_parser.toplevel Workloads.Sip_parser.vulnerable

(* ---- main ----------------------------------------------------------------------- *)

let experiments =
  [ ("e1", experiment_section2);
    ("e5", experiment_ac);
    ("e6", experiment_ns_poss);
    ("e7", experiment_ns_dy);
    ("e8", experiment_lowe_fix);
    ("e9", experiment_osip_sweep);
    ("e10", experiment_parser_attack);
    ("e12", experiment_jobs_scaling);
    ("e13", experiment_accel_ablation);
    ("e14", experiment_coverage_trajectory);
    ("e15", experiment_exec_throughput);
    ("e16", experiment_shared_store);
    ("e17", experiment_campaign);
    ("e18", experiment_observability);
    ("e19", experiment_chaos_soak);
    ("a1", experiment_strategy_ablation);
    ("a2", experiment_solver_ablation);
    ("a3", experiment_packet_construction);
    ("a4", experiment_deep_path);
    ("timing", timing_benches) ]

let () =
  let rec parse = function
    | [] -> []
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--json" :: file :: rest ->
      json_file := Some file;
      parse rest
    | [ "--json" ] ->
      prerr_endline "dart-bench: --json requires a file argument";
      exit 2
    | a :: rest -> a :: parse rest
  in
  let args = parse (List.tl (Array.to_list Sys.argv)) in
  let selected = if args = [] then List.map fst experiments else args in
  print_endline "DART reproduction benchmarks (see DESIGN.md for the experiment index)";
  if !quick then print_endline "[--quick mode: reduced budgets]";
  List.iter
    (fun id ->
      match List.assoc_opt id experiments with
      | Some f -> f ()
      | None -> Printf.eprintf "unknown experiment id %s\n" id)
    selected;
  Option.iter write_json !json_file
