(** Word-addressed memory for the RAM machine.

    Cells are 32-bit words. The map distinguishes unmapped addresses
    (never allocated — reads and writes fault), allocated-but-undefined
    cells (reads fault, catching uninitialized and use-after-free
    accesses), and defined cells. *)

type t

type read_error =
  | Unmapped
  | Undefined

exception Unmapped_exn
exception Undefined_exn
exception Null_exn

(* Address-space bases shared with [Machine.layout]; the flat
   representation decodes addresses against them. *)
val globals_base : int
val heap_base : int
val stack_base : int

val create : unit -> t
(** Hashtbl-backed store: any address, no layout assumptions. The
    interpreter's representation. *)

val create_flat : unit -> t
(** Region-decoded store backed by flat growable arrays over the
    [globals/heap/stack] bases — the compiled engine's representation.
    Semantics (mapped/undefined/defined, faults, snapshots) are
    identical to {!create}; only the cost model differs. *)

val clone : t -> t
(** Deep copy. For a flat store this is a handful of array copies, so a
    pre-seeded initial image can be stamped out per load. *)

val alloc : t -> addr:int -> size:int -> unit
(** Mark [size] cells starting at [addr] as allocated and undefined. *)

val dealloc : t -> addr:int -> size:int -> unit
(** Unmap cells, so later access faults (dangling pointers). *)

val alloc_stack : t -> addr:int -> size:int -> unit
(** As {!alloc}, specialized for frame ranges at [>= stack_base]; the
    machine's per-call path. Falls back to {!alloc} when the range is
    not entirely in the stack region's window. *)

val dealloc_stack : t -> addr:int -> size:int -> unit
(** As {!dealloc}, the inverse of {!alloc_stack}. *)

val is_mapped : t -> int -> bool

val read : t -> int -> (int, read_error) result

val write : t -> int -> int -> (unit, read_error) result
(** [write mem addr v] stores [v]; fails with [Unmapped] if [addr] was
    never allocated. *)

val write_init : t -> int -> int -> unit
(** Allocate-and-write in one step (used for loading globals, strings,
    and machine-internal cells). *)

val read_exn : t -> int -> int
(** As {!read}, but raising [Unmapped_exn]/[Undefined_exn] instead of
    allocating a [result] — the compiled engine's hot path. Addresses in
    the null page [0, globals_base) raise [Null_exn] before any lookup,
    mirroring the interpreter's checked accessors, so callers need no
    null test of their own. *)

val write_exn : t -> int -> int -> unit
(** As {!write}, but raising [Unmapped_exn] (or [Null_exn]) on
    failure. *)

(** Region-specialized variants of the raising accessors, for callers
    that know the address's region at compile time: [..._local_...]
    for frame slots ([>= stack_base]), [..._static_...] for globals and
    strings ([globals_base, heap_base)). Behaviour is identical to
    {!read_exn}/{!write_exn}; only the decode work differs. *)

val read_local_exn : t -> int -> int

val write_local_exn : t -> int -> int -> unit

type region
(** Handle on a store's stack region. Region records are stable for the
    store's lifetime (growth swaps their backing array, never the
    record), so a handle obtained once at machine-load time stays
    valid. *)

val stack_region : t -> region
(** The store's stack region; for a Hashtbl store, an empty region
    whose accesses all fall back to the generic (and correct)
    accessors. *)

val stack_read_exn : t -> region -> int -> int
(** [stack_read_exn t r a] = [read_local_exn t a] with [r] =
    [stack_region t]: same semantics, one less pointer chase on the hit
    path. *)

val stack_write_exn : t -> region -> int -> int -> unit

val read_static_exn : t -> int -> int

val write_static_exn : t -> int -> int -> unit

val to_alist : t -> (int * int option) list
(** All mapped cells, sorted by address; [None] marks
    allocated-but-undefined cells. *)

val defined_count : t -> int
(** Number of cells currently holding a defined value (statistics). *)
