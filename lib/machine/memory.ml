type cell =
  | Undef
  | Val of int

type read_error =
  | Unmapped
  | Undefined

exception Unmapped_exn
exception Undefined_exn
exception Null_exn

(* Address-space layout, shared with [Machine.layout]: the flat
   representation decodes an address to its region with two compares,
   so the bases live here and the machine re-exports them. *)
let globals_base = 0x1000
let heap_base = 0x2000_0000
let stack_base = 0x4000_0000

(* ---- flat regions ----------------------------------------------------------
   The compiled engine's store. Each region is one growable int array
   indexed by [addr - base], each element encoding state and value
   together: [0] unmapped, [1] allocated-but-undefined, and a defined
   cell holding [v] as [(v lsl 2) lor 2] — values are 32-bit words, so
   the shift cannot overflow a native int. One array element per access
   (a single cache line touch), no hashing, no allocation. Cells a
   program somehow reaches outside any region's array window (negative
   addresses, offsets past [region_cap]) spill into [overflow]; the
   array wins whenever its element is non-zero, and the overflow is
   only consulted on zero/out-of-bounds misses, so each cell has
   exactly one home. *)

type region = {
  base : int;
  mutable cells : int array;
  mutable hi : int; (* exclusive upper offset ever touched; bounds scans *)
}

type flat = {
  r_static : region; (* globals and interned strings: [0, heap_base) *)
  r_heap : region; (* [heap_base, stack_base) *)
  r_stack : region; (* [stack_base, ...) *)
  overflow : (int, cell) Hashtbl.t;
}

let unmapped_cell = 0
let undef_cell = 1
let encode v = (v lsl 2) lor 2
let decode c = c asr 2

(* Largest offset the arrays may grow to cover (cells). Past this a
   cell lives in [overflow]; correctness is unaffected. *)
let region_cap = 1 lsl 22

type t =
  | Htbl of (int, cell) Hashtbl.t
  | Flat of flat

let create () = Htbl (Hashtbl.create 1024)

let make_region base = { base; cells = [||]; hi = 0 }

let create_flat () =
  (* The static region is based at [globals_base], not 0: offsets start
     at the first cell layout can actually place, and the never-mapped
     null page resolves to a negative offset, i.e. the overflow path. *)
  Flat
    { r_static = make_region globals_base;
      r_heap = make_region heap_base;
      r_stack = make_region stack_base;
      overflow = Hashtbl.create 4 }

let region_of f a = if a >= stack_base then f.r_stack else if a >= heap_base then f.r_heap else f.r_static

let grow r needed =
  let cur = Array.length r.cells in
  let n = ref (max 64 cur) in
  while !n < needed do
    n := !n * 2
  done;
  let cells = Array.make !n unmapped_cell in
  Array.blit r.cells 0 cells 0 cur;
  r.cells <- cells

let clone_region r =
  if r.hi = 0 then make_region r.base
  else begin
    (* Copy only the touched prefix (rounded up to a power of two), not
       whatever capacity growth doubling reached. *)
    let n = ref 64 in
    while !n < r.hi do
      n := !n * 2
    done;
    let len = min !n (Array.length r.cells) in
    { base = r.base; cells = Array.sub r.cells 0 len; hi = r.hi }
  end

let clone = function
  | Htbl h -> Htbl (Hashtbl.copy h)
  | Flat f ->
    Flat
      { r_static = clone_region f.r_static;
        r_heap = clone_region f.r_heap;
        r_stack = clone_region f.r_stack;
        overflow = Hashtbl.copy f.overflow }

(* Single-cell slow paths (overflow, region-spanning ranges). *)

let set_undef_cell f a =
  let r = region_of f a in
  let off = a - r.base in
  if off >= 0 && off < region_cap then begin
    if off >= Array.length r.cells then grow r (off + 1);
    Array.unsafe_set r.cells off undef_cell;
    if off + 1 > r.hi then r.hi <- off + 1
  end
  else Hashtbl.replace f.overflow a Undef

let unmap_cell f a =
  let r = region_of f a in
  let off = a - r.base in
  if off >= 0 && off < region_cap then begin
    if off < Array.length r.cells then Array.unsafe_set r.cells off unmapped_cell
  end
  else Hashtbl.remove f.overflow a

let read_overflow f a =
  match Hashtbl.find_opt f.overflow a with
  | None -> Error Unmapped
  | Some Undef -> Error Undefined
  | Some (Val v) -> Ok v

(* ---- the public operations ------------------------------------------------ *)

let alloc t ~addr ~size =
  match t with
  | Htbl cells ->
    for a = addr to addr + size - 1 do
      Hashtbl.replace cells a Undef
    done
  | Flat f ->
    if size > 0 then begin
      let r = region_of f addr in
      let off = addr - r.base in
      if off >= 0 && off + size <= region_cap && region_of f (addr + size - 1) == r then begin
        if off + size > Array.length r.cells then grow r (off + size);
        Array.fill r.cells off size undef_cell;
        if off + size > r.hi then r.hi <- off + size
      end
      else
        for a = addr to addr + size - 1 do
          set_undef_cell f a
        done
    end

let dealloc t ~addr ~size =
  match t with
  | Htbl cells ->
    for a = addr to addr + size - 1 do
      Hashtbl.remove cells a
    done
  | Flat f ->
    if size > 0 then begin
      let r = region_of f addr in
      let off = addr - r.base in
      if off >= 0 && off + size <= Array.length r.cells && region_of f (addr + size - 1) == r
      then Array.fill r.cells off size unmapped_cell
      else
        for a = addr to addr + size - 1 do
          unmap_cell f a
        done
    end

(* Frame-sized alloc/dealloc on the stack region — the per-call path.
   Identical to {!alloc}/{!dealloc} restricted to addresses the machine
   derives from its stack pointer (always [>= stack_base]); the generic
   entry points remain for everything else. *)

let alloc_stack t ~addr ~size =
  match t with
  | Flat f when addr >= stack_base && addr - stack_base + size <= region_cap ->
    if size > 0 then begin
      let r = f.r_stack in
      let off = addr - stack_base in
      if off + size > Array.length r.cells then grow r (off + size);
      Array.fill r.cells off size undef_cell;
      if off + size > r.hi then r.hi <- off + size
    end
  | t -> alloc t ~addr ~size

let dealloc_stack t ~addr ~size =
  match t with
  | Flat f when addr >= stack_base && size >= 0
                && size <= Array.length f.r_stack.cells - (addr - stack_base) ->
    if size > 0 then Array.fill f.r_stack.cells (addr - stack_base) size unmapped_cell
  | t -> dealloc t ~addr ~size

let is_mapped t a =
  match t with
  | Htbl cells -> Hashtbl.mem cells a
  | Flat f ->
    let r = region_of f a in
    let off = a - r.base in
    if off >= 0 && off < Array.length r.cells && Array.unsafe_get r.cells off <> unmapped_cell
    then true
    else Hashtbl.mem f.overflow a

let read t a =
  match t with
  | Htbl cells ->
    (match Hashtbl.find_opt cells a with
     | None -> Error Unmapped
     | Some Undef -> Error Undefined
     | Some (Val v) -> Ok v)
  | Flat f ->
    let r = region_of f a in
    let off = a - r.base in
    if off >= 0 && off < Array.length r.cells then begin
      let c = Array.unsafe_get r.cells off in
      if c land 2 <> 0 then Ok (decode c)
      else if c = undef_cell then Error Undefined
      else read_overflow f a
    end
    else read_overflow f a

(* Raising variants for the compiled engine's hot path: no [result]
   allocation per access; the exceptions propagate to [Machine.run],
   which translates them to faults. Unlike {!read}/{!write}, these also
   classify the null page ([0, globals_base)) — checked before any
   lookup, exactly as the interpreter's checked accessors do — so the
   machine's hot path needs no address test of its own. *)

let read_miss f a =
  if a >= 0 && a < globals_base then raise Null_exn
  else
    match read_overflow f a with
    | Ok v -> v
    | Error Unmapped -> raise Unmapped_exn
    | Error Undefined -> raise Undefined_exn

let[@inline] read_exn t a =
  match t with
  | Flat f ->
    let r = region_of f a in
    let off = a - r.base in
    if off >= 0 && off < Array.length r.cells then begin
      let c = Array.unsafe_get r.cells off in
      if c land 2 <> 0 then decode c
      else if c = undef_cell then raise Undefined_exn
      else read_miss f a
    end
    else read_miss f a
  | Htbl cells ->
    if a >= 0 && a < globals_base then raise Null_exn
    else (
      match Hashtbl.find_opt cells a with
      | None -> raise Unmapped_exn
      | Some Undef -> raise Undefined_exn
      | Some (Val v) -> v)

let write t a v =
  match t with
  | Htbl cells ->
    if Hashtbl.mem cells a then begin
      Hashtbl.replace cells a (Val v);
      Ok ()
    end
    else Error Unmapped
  | Flat f ->
    let r = region_of f a in
    let off = a - r.base in
    if off >= 0 && off < Array.length r.cells && Array.unsafe_get r.cells off <> unmapped_cell
    then begin
      Array.unsafe_set r.cells off (encode v);
      Ok ()
    end
    else if Hashtbl.mem f.overflow a then begin
      Hashtbl.replace f.overflow a (Val v);
      Ok ()
    end
    else Error Unmapped

let[@inline] write_exn t a v =
  match t with
  | Flat f ->
    let r = region_of f a in
    let off = a - r.base in
    if off >= 0 && off < Array.length r.cells && Array.unsafe_get r.cells off <> unmapped_cell
    then Array.unsafe_set r.cells off (encode v)
    else if a >= 0 && a < globals_base then raise Null_exn
    else if Hashtbl.mem f.overflow a then Hashtbl.replace f.overflow a (Val v)
    else raise Unmapped_exn
  | Htbl cells ->
    if a >= 0 && a < globals_base then raise Null_exn
    else if Hashtbl.mem cells a then Hashtbl.replace cells a (Val v)
    else raise Unmapped_exn

(* Specialized raising accessors for addresses whose region is known at
   compile time: frame slots (always >= stack_base) and globals (always
   in [globals_base, heap_base)). They skip the region decode — and the
   caller skips its null-page check — on the hit path; array misses
   fall back to the generic ops so overflow-resident cells and the
   Hashtbl representation stay fully supported. *)

let[@inline] read_local_exn t a =
  match t with
  | Flat f ->
    let r = f.r_stack in
    let off = a - stack_base in
    if off >= 0 && off < Array.length r.cells then begin
      let c = Array.unsafe_get r.cells off in
      if c land 2 <> 0 then decode c
      else if c = undef_cell then raise Undefined_exn
      else read_exn t a
    end
    else read_exn t a
  | Htbl _ -> read_exn t a

let[@inline] write_local_exn t a v =
  match t with
  | Flat f ->
    let r = f.r_stack in
    let off = a - stack_base in
    if off >= 0 && off < Array.length r.cells && Array.unsafe_get r.cells off <> unmapped_cell
    then Array.unsafe_set r.cells off (encode v)
    else write_exn t a v
  | Htbl _ -> write_exn t a v

let[@inline] read_static_exn t a =
  match t with
  | Flat f ->
    let r = f.r_static in
    let off = a - globals_base in
    if off >= 0 && off < Array.length r.cells then begin
      let c = Array.unsafe_get r.cells off in
      if c land 2 <> 0 then decode c
      else if c = undef_cell then raise Undefined_exn
      else read_exn t a
    end
    else read_exn t a
  | Htbl _ -> read_exn t a

let[@inline] write_static_exn t a v =
  match t with
  | Flat f ->
    let r = f.r_static in
    let off = a - globals_base in
    if off >= 0 && off < Array.length r.cells && Array.unsafe_get r.cells off <> unmapped_cell
    then Array.unsafe_set r.cells off (encode v)
    else write_exn t a v
  | Htbl _ -> write_exn t a v

(* Region handles. [Machine] caches the stack region record at load
   time and reads frame slots through it, skipping the variant and
   record chain above on every access. Region records are stable for
   the lifetime of a store — growth replaces their [cells] field, never
   the record — so a cached handle cannot dangle. A Hashtbl store gets
   a fresh empty region: every access through it misses and falls back
   to the generic accessors, which handle that representation. *)

let stack_region = function
  | Flat f -> f.r_stack
  | Htbl _ -> make_region stack_base

let[@inline] stack_read_exn t r a =
  let off = a - stack_base in
  if off >= 0 && off < Array.length r.cells then begin
    let c = Array.unsafe_get r.cells off in
    if c land 2 <> 0 then decode c
    else if c = undef_cell then raise Undefined_exn
    else read_exn t a
  end
  else read_exn t a

let[@inline] stack_write_exn t r a v =
  let off = a - stack_base in
  if off >= 0 && off < Array.length r.cells && Array.unsafe_get r.cells off <> unmapped_cell
  then Array.unsafe_set r.cells off (encode v)
  else write_exn t a v

let write_init t a v =
  match t with
  | Htbl cells -> Hashtbl.replace cells a (Val v)
  | Flat f ->
    let r = region_of f a in
    let off = a - r.base in
    if off >= 0 && off < region_cap then begin
      if off >= Array.length r.cells then grow r (off + 1);
      Array.unsafe_set r.cells off (encode v);
      if off + 1 > r.hi then r.hi <- off + 1
    end
    else Hashtbl.replace f.overflow a (Val v)

let to_alist t =
  match t with
  | Htbl cells ->
    Hashtbl.fold
      (fun a c acc -> (a, (match c with Undef -> None | Val v -> Some v)) :: acc)
      cells []
    |> List.sort compare
  | Flat f ->
    let scan r acc =
      let acc = ref acc in
      for off = r.hi - 1 downto 0 do
        let c = Array.unsafe_get r.cells off in
        if c land 2 <> 0 then acc := (r.base + off, Some (decode c)) :: !acc
        else if c = undef_cell then acc := (r.base + off, None) :: !acc
      done;
      !acc
    in
    Hashtbl.fold
      (fun a c acc -> (a, (match c with Undef -> None | Val v -> Some v)) :: acc)
      f.overflow []
    |> scan f.r_stack |> scan f.r_heap |> scan f.r_static |> List.sort compare

let defined_count t =
  match t with
  | Htbl cells ->
    Hashtbl.fold (fun _ c acc -> match c with Val _ -> acc + 1 | Undef -> acc) cells 0
  | Flat f ->
    let scan r acc =
      let n = ref acc in
      for off = 0 to r.hi - 1 do
        if Array.unsafe_get r.cells off land 2 <> 0 then incr n
      done;
      !n
    in
    Hashtbl.fold (fun _ c acc -> match c with Val _ -> acc + 1 | Undef -> acc) f.overflow 0
    |> scan f.r_static |> scan f.r_heap |> scan f.r_stack
