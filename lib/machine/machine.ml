open Ram

type fault =
  | Abort
  | Null_deref
  | Invalid_deref
  | Uninitialized_read
  | Div_by_zero
  | Step_limit
  | Call_depth
  | Missing_return
  | Bad_free

let fault_to_string = function
  | Abort -> "abort"
  | Null_deref -> "NULL dereference"
  | Invalid_deref -> "invalid dereference"
  | Uninitialized_read -> "read of uninitialized memory"
  | Div_by_zero -> "division by zero"
  | Step_limit -> "step limit exceeded (possible non-termination)"
  | Call_depth -> "call stack exhausted"
  | Missing_return -> "missing return value"
  | Bad_free -> "invalid free"

(* Short machine-readable names: the checkpoint codec needs a stable
   round-trippable spelling, which the human-facing strings above are
   not. *)
let fault_tag = function
  | Abort -> "abort"
  | Null_deref -> "null_deref"
  | Invalid_deref -> "invalid_deref"
  | Uninitialized_read -> "uninit_read"
  | Div_by_zero -> "div_by_zero"
  | Step_limit -> "step_limit"
  | Call_depth -> "call_depth"
  | Missing_return -> "missing_return"
  | Bad_free -> "bad_free"

let fault_of_tag = function
  | "abort" -> Some Abort
  | "null_deref" -> Some Null_deref
  | "invalid_deref" -> Some Invalid_deref
  | "uninit_read" -> Some Uninitialized_read
  | "div_by_zero" -> Some Div_by_zero
  | "step_limit" -> Some Step_limit
  | "call_depth" -> Some Call_depth
  | "missing_return" -> Some Missing_return
  | "bad_free" -> Some Bad_free
  | _ -> None

type site = { site_fn : string; site_pc : int; site_loc : Minic.Loc.t }

type outcome =
  | Halted
  | Faulted of fault * site

exception Fault_exn of fault

(* [Ihalt] in the compiled dispatch loop: normal termination expressed
   as an exception so fused sequences need no per-closure outcome
   plumbing. Never escapes [run]. *)
exception Halt_exn

(* Memory layout (cell addresses, all well below 2^31). The bases live
   in [Memory] so its flat representation can decode addresses into
   regions; they are re-bound here for readability. *)
let globals_base = Memory.globals_base
let heap_base = Memory.heap_base
let stack_base = Memory.stack_base

type config = {
  step_limit : int;
  stack_limit : int;
  max_call_depth : int;
}

let default_config = { step_limit = 2_000_000; stack_limit = 1 lsl 20; max_call_depth = 512 }

(* [frame] carries the compiled code of its function so the dispatch
   loop never looks functions up mid-run; interpreter frames carry
   [[||]]. The group is mutually recursive because compiled steps
   receive the machine, the listener and the current frame. *)
type frame = {
  func : Instr.func;
  base : int;
  mutable pc : int;
  ret_dst : int option;
  saved_stack_top : int; (* restore point: frees the frame and its allocas *)
  fr_steps : cstep array;
}

and t = {
  prog : Instr.program;
  config : config;
  mem : Memory.t;
  sreg : Memory.region; (* cached stack-region handle: frame-slot
                           accesses skip the store's variant/record
                           decode (see [Memory.stack_region]) *)
  global_addrs : (string, int) Hashtbl.t;
  string_addrs : int array;
  externals : (string, Minic.Tast.fsig) Hashtbl.t;
  library_impls : (string, t -> int list -> int) Hashtbl.t;
  malloc_blocks : (int, int) Hashtbl.t; (* block address -> size *)
  mutable frames : frame list;
  mutable call_depth : int; (* = List.length frames, maintained incrementally *)
  mutable heap_top : int;
  mutable stack_top : int;
  mutable step_count : int;
  mutable cond_count : int;
  lim : int; (* copy of [config.step_limit]: one load on the hot path *)
  (* Whether the run's listener actually observes stores/branches:
     [run] compares the hook fields against [null_listener]'s.
     Compiled code skips the (pure, effect-free) null hooks — a flag
     test instead of an indirect call on every store and branch. *)
  mutable notify_store : bool;
  mutable notify_branch : bool;
  scratch : int array; (* compiled calls marshal arguments through here
                          instead of allocating a list per call; sized
                          to the program's widest parameter list *)
  compiled : compiled option;
}

and listener = {
  on_store : t -> dst:int -> src:Instr.rexpr -> base:int -> unit;
  on_branch : t -> cond:Instr.rexpr -> base:int -> taken:bool -> site:site -> unit;
  on_external : t -> Minic.Tast.fsig -> dst:int option -> unit;
  on_library : t -> callee:string -> args:Instr.rexpr list -> base:int -> unit;
  on_entry : t -> entry:Instr.func -> base:int -> unit;
}

and cstep = t -> listener -> frame -> unit

(* Everything [load] would otherwise rebuild per machine is computed
   once at compile time: the code, the address tables, the external
   signature table, and a fully seeded initial memory image that each
   load clones (a few array copies) instead of re-placing globals and
   strings cell by cell. All of it is immutable after [compile], so
   machines — and Parallel worker domains — share it read-only. *)
and compiled = {
  cfuncs : (string, cstep array ref) Hashtbl.t;
  c_global_addrs : (string, int) Hashtbl.t;
  c_string_addrs : int array;
  c_externals : (string, Minic.Tast.fsig) Hashtbl.t;
  c_init_mem : Memory.t;
  c_max_params : int; (* widest parameter list; sizes [t.scratch] *)
}

let null_listener =
  { on_store = (fun _ ~dst:_ ~src:_ ~base:_ -> ());
    on_branch = (fun _ ~cond:_ ~base:_ ~taken:_ ~site:_ -> ());
    on_external =
      (fun t _ ~dst ->
        match dst with
        | Some d -> ignore (Memory.write t.mem d 0)
        | None -> ());
    on_library = (fun _ ~callee:_ ~args:_ ~base:_ -> ());
    on_entry = (fun _ ~entry:_ ~base:_ -> ()) }

type library_impl = t -> int list -> int

let program t = t.prog
let steps t = t.step_count
let branch_count t = t.cond_count

(* Layout is a pure function of the program: the compiler folds global
   and string addresses into closures shared by every machine loaded
   from the same [Instr.program], so [load] must place data at exactly
   the addresses computed here. *)
let layout (prog : Instr.program) =
  let global_addrs = Hashtbl.create 16 in
  let next = ref globals_base in
  let placed =
    List.map
      (fun (g : Minic.Tast.tglobal) ->
        let size = Minic.Ctype.sizeof prog.structs g.gl_ty in
        let addr = !next in
        Hashtbl.replace global_addrs g.gl_name addr;
        next := !next + size;
        (g, addr, size))
      prog.globals
  in
  let string_addrs =
    Array.map
      (fun s ->
        let addr = !next in
        next := !next + String.length s + 1;
        addr)
      prog.strings
  in
  (global_addrs, string_addrs, placed)

let global_addr t name =
  match Hashtbl.find_opt t.global_addrs name with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Machine.global_addr: unknown global %s" name)

(* Place globals and interned strings into [mem] at the addresses
   [layout] chose. Run per load for the interpreter; once per program
   for the compiled engine, whose loads clone the resulting image. *)
let seed_memory mem (prog : Instr.program) ~string_addrs placed =
  List.iter
    (fun ((g : Minic.Tast.tglobal), addr, size) ->
      match g.gl_init with
      | Some values ->
        (* Listed cells get their constants; the remainder is
           zero-filled, as C static storage would be. *)
        let values = Array.of_list values in
        for i = 0 to size - 1 do
          Memory.write_init mem (addr + i)
            (if i < Array.length values then Dart_util.Word32.norm values.(i) else 0)
        done
      | None ->
        (* Extern: allocated but undefined until the driver fills it. *)
        Memory.alloc mem ~addr ~size)
    placed;
  Array.iteri
    (fun i s ->
      let addr = string_addrs.(i) in
      String.iteri (fun j c -> Memory.write_init mem (addr + j) (Char.code c)) s;
      Memory.write_init mem (addr + String.length s) 0)
    prog.strings

let read_word t a = Memory.read t.mem a
let write_word t a v = Memory.write_init t.mem a (Dart_util.Word32.norm v)
let memory_snapshot t = Memory.to_alist t.mem

let alloc_heap t n =
  let addr = t.heap_top in
  Memory.alloc t.mem ~addr ~size:n;
  t.heap_top <- t.heap_top + n + 1; (* guard cell between blocks *)
  Hashtbl.replace t.malloc_blocks addr n;
  addr

let malloc_block_size t addr = Hashtbl.find_opt t.malloc_blocks addr

(* ---- concrete evaluation --------------------------------------------------- *)

let read_checked t addr =
  if addr >= 0 && addr < globals_base then raise (Fault_exn Null_deref);
  match Memory.read t.mem addr with
  | Ok v -> v
  | Error Memory.Unmapped -> raise (Fault_exn Invalid_deref)
  | Error Memory.Undefined -> raise (Fault_exn Uninitialized_read)

let write_checked t addr v =
  if addr >= 0 && addr < globals_base then raise (Fault_exn Null_deref);
  match Memory.write t.mem addr v with
  | Ok () -> ()
  | Error _ -> raise (Fault_exn Invalid_deref)

let unop_fn (op : Minic.Ast.unop) : int -> int =
  let module W = Dart_util.Word32 in
  match op with
  | Minic.Ast.Neg -> W.neg
  | Minic.Ast.Bitnot -> W.lognot
  | Minic.Ast.Lognot -> fun v -> W.of_bool (not (W.to_bool v))

let binop_fn (op : Minic.Ast.binop) : int -> int -> int =
  let module W = Dart_util.Word32 in
  match op with
  | Minic.Ast.Add -> W.add
  | Minic.Ast.Sub -> W.sub
  | Minic.Ast.Mul -> W.mul
  | Minic.Ast.Div ->
    fun a b -> (try W.div a b with Division_by_zero -> raise (Fault_exn Div_by_zero))
  | Minic.Ast.Mod ->
    fun a b -> (try W.rem a b with Division_by_zero -> raise (Fault_exn Div_by_zero))
  | Minic.Ast.Eq -> fun a b -> W.of_bool (a = b)
  | Minic.Ast.Ne -> fun a b -> W.of_bool (a <> b)
  | Minic.Ast.Lt -> fun a b -> W.of_bool (a < b)
  | Minic.Ast.Le -> fun a b -> W.of_bool (a <= b)
  | Minic.Ast.Gt -> fun a b -> W.of_bool (a > b)
  | Minic.Ast.Ge -> fun a b -> W.of_bool (a >= b)
  | Minic.Ast.Band -> W.logand
  | Minic.Ast.Bor -> W.logor
  | Minic.Ast.Bxor -> W.logxor
  | Minic.Ast.Shl -> W.shift_left
  | Minic.Ast.Shr -> W.shift_right

let rec eval_concrete t ~base (e : Instr.rexpr) : int =
  match e with
  | Instr.Const n -> n
  | Instr.Load a -> read_checked t (eval_concrete t ~base a)
  | Instr.Addr_global g -> global_addr t g
  | Instr.Addr_local off -> base + off
  | Instr.Addr_string i -> t.string_addrs.(i)
  | Instr.Unop (op, e1) -> unop_fn op (eval_concrete t ~base e1)
  | Instr.Binop (op, a, b) ->
    let va = eval_concrete t ~base a in
    let vb = eval_concrete t ~base b in
    binop_fn op va vb

(* ---- execution -------------------------------------------------------------- *)

let current_site t =
  match t.frames with
  | [] -> { site_fn = "<no frame>"; site_pc = 0; site_loc = Minic.Loc.dummy }
  | f :: _ ->
    let locs = f.func.Instr.locs in
    let loc =
      if f.pc >= 0 && f.pc < Array.length locs then locs.(f.pc) else Minic.Loc.dummy
    in
    { site_fn = f.func.Instr.fname; site_pc = f.pc; site_loc = loc }

let push_frame t (func : Instr.func) ~ret_dst ~steps =
  if t.call_depth >= t.config.max_call_depth then raise (Fault_exn Call_depth);
  if t.stack_top + func.Instr.frame_size - stack_base > t.config.stack_limit then
    raise (Fault_exn Call_depth);
  let base = t.stack_top in
  Memory.alloc_stack t.mem ~addr:base ~size:func.Instr.frame_size;
  let frame = { func; base; pc = 0; ret_dst; saved_stack_top = t.stack_top; fr_steps = steps } in
  t.stack_top <- t.stack_top + func.Instr.frame_size;
  t.frames <- frame :: t.frames;
  t.call_depth <- t.call_depth + 1;
  frame

let pop_frame t =
  match t.frames with
  | [] -> assert false
  | f :: rest ->
    Memory.dealloc_stack t.mem ~addr:f.saved_stack_top ~size:(t.stack_top - f.saved_stack_top);
    t.stack_top <- f.saved_stack_top;
    t.frames <- rest;
    t.call_depth <- t.call_depth - 1;
    f

let do_alloca t size =
  if size <= 0 then 0
  else if t.stack_top + size - stack_base > t.config.stack_limit then
    (* The paper's oSIP attack hinges on alloca failing and returning
       NULL when the request exceeds the available stack space. *)
    0
  else begin
    let addr = t.stack_top in
    Memory.alloc_stack t.mem ~addr ~size;
    t.stack_top <- t.stack_top + size;
    addr
  end

let do_malloc t size =
  if size < 0 then 0
  else if size = 0 then begin
    (* Unique non-NULL address with no cells: any dereference faults. *)
    let addr = t.heap_top in
    t.heap_top <- t.heap_top + 1;
    Hashtbl.replace t.malloc_blocks addr 0;
    addr
  end
  else alloc_heap t size

let do_free t p =
  if p <> 0 then begin
    match Hashtbl.find_opt t.malloc_blocks p with
    | None -> raise (Fault_exn Bad_free)
    | Some size ->
      Memory.dealloc t.mem ~addr:p ~size;
      Hashtbl.remove t.malloc_blocks p
  end

(* Figure 3 order: S is updated from the pre-store memory, then M is
   written — otherwise self-referential stores like [h <- *(h+2)]
   would evaluate their source against the already-updated cell. *)
let store t (listener : listener) ~dst ~src ~base v =
  listener.on_store t ~dst ~src ~base;
  write_checked t dst v

(* Compiled code goes through the raw, non-allocating memory ops;
   [Memory.Unmapped_exn]/[Undefined_exn]/[Null_exn] propagate out of
   the dispatch loop and [run] translates them to the same faults (at
   the same sites) the interpreter's checked accessors produce inline.
   The null page is classified inside [Memory]'s miss path, so the hot
   path carries no address test at all. *)

let cstore t (listener : listener) ~dst ~src ~base v =
  if t.notify_store then listener.on_store t ~dst ~src ~base;
  Memory.write_exn t.mem dst v

(* ---- the compiler ----------------------------------------------------------- *)

(* Expressions compile to value-producing closures. Subtrees made only
   of constants and pre-resolved addresses fold to [Kconst] at compile
   time, so e.g. [Load (Binop (Add, Addr_global g, Const k))] costs a
   single checked read at run time. Folding never raises: a constant
   division by zero becomes a closure raising the fault at run time,
   exactly where the interpreter would. *)
type cval =
  | Kconst of int
  | Kdyn of (t -> int -> int) (* machine -> frame base -> value *)

let cval_fn = function
  | Kconst n -> fun _ _ -> n
  | Kdyn f -> f

let rec compile_expr ~global_addrs ~string_addrs (e : Instr.rexpr) : cval =
  match e with
  | Instr.Const n -> Kconst n
  | Instr.Addr_global g ->
    (match Hashtbl.find_opt global_addrs g with
     | Some a -> Kconst a
     | None ->
       Kdyn (fun _ _ -> invalid_arg (Printf.sprintf "Machine.global_addr: unknown global %s" g)))
  | Instr.Addr_local off -> Kdyn (fun _ base -> base + off)
  | Instr.Addr_string i ->
    if i >= 0 && i < Array.length string_addrs then Kconst string_addrs.(i)
    else Kdyn (fun t _ -> t.string_addrs.(i)) (* same out-of-bounds exception as the interpreter *)
  | Instr.Load (Instr.Addr_local off) ->
    (* Frame-slot loads — the most common expression — skip the
       null-page check and region decode: [base + off >= stack_base]. *)
    Kdyn (fun t base -> Memory.stack_read_exn t.mem t.sreg (base + off))
  (* Superinstructions for the shapes lowering emits constantly —
     binary ops over frame slots and constants, and pointer-offset
     dereferences — collapse a nest of closure calls into one body.
     Order of effects (left before right, address before read) matches
     the generic path exactly. *)
  | Instr.Binop (op, Instr.Load (Instr.Addr_local o1), Instr.Load (Instr.Addr_local o2)) ->
    (* The hottest operators get direct bodies (the [Word32] ops inline
       into plain arithmetic); the rest keep the generic dispatch. *)
    let module W = Dart_util.Word32 in
    (match op with
     | Minic.Ast.Add ->
       Kdyn
         (fun t base ->
           let a = Memory.stack_read_exn t.mem t.sreg (base + o1) in
           let b = Memory.stack_read_exn t.mem t.sreg (base + o2) in
           W.add a b)
     | Minic.Ast.Sub ->
       Kdyn
         (fun t base ->
           let a = Memory.stack_read_exn t.mem t.sreg (base + o1) in
           let b = Memory.stack_read_exn t.mem t.sreg (base + o2) in
           W.sub a b)
     | Minic.Ast.Lt ->
       Kdyn
         (fun t base ->
           let a = Memory.stack_read_exn t.mem t.sreg (base + o1) in
           let b = Memory.stack_read_exn t.mem t.sreg (base + o2) in
           W.of_bool (a < b))
     | Minic.Ast.Eq ->
       Kdyn
         (fun t base ->
           let a = Memory.stack_read_exn t.mem t.sreg (base + o1) in
           let b = Memory.stack_read_exn t.mem t.sreg (base + o2) in
           W.of_bool (a = b))
     | Minic.Ast.Ne ->
       Kdyn
         (fun t base ->
           let a = Memory.stack_read_exn t.mem t.sreg (base + o1) in
           let b = Memory.stack_read_exn t.mem t.sreg (base + o2) in
           W.of_bool (a <> b))
     | _ ->
       let f = binop_fn op in
       Kdyn
         (fun t base ->
           let a = Memory.stack_read_exn t.mem t.sreg (base + o1) in
           let b = Memory.stack_read_exn t.mem t.sreg (base + o2) in
           f a b))
  | Instr.Binop (op, Instr.Load (Instr.Addr_local o1), Instr.Const k) ->
    let module W = Dart_util.Word32 in
    (match op with
     | Minic.Ast.Add -> Kdyn (fun t base -> W.add (Memory.stack_read_exn t.mem t.sreg (base + o1)) k)
     | Minic.Ast.Sub -> Kdyn (fun t base -> W.sub (Memory.stack_read_exn t.mem t.sreg (base + o1)) k)
     | Minic.Ast.Lt ->
       Kdyn (fun t base -> W.of_bool (Memory.stack_read_exn t.mem t.sreg (base + o1) < k))
     | Minic.Ast.Eq ->
       Kdyn (fun t base -> W.of_bool (Memory.stack_read_exn t.mem t.sreg (base + o1) = k))
     | Minic.Ast.Ne ->
       Kdyn (fun t base -> W.of_bool (Memory.stack_read_exn t.mem t.sreg (base + o1) <> k))
     | _ ->
       let f = binop_fn op in
       Kdyn (fun t base -> f (Memory.stack_read_exn t.mem t.sreg (base + o1)) k))
  | Instr.Binop (op, Instr.Const k, Instr.Load (Instr.Addr_local o2)) ->
    let f = binop_fn op in
    Kdyn (fun t base -> f k (Memory.stack_read_exn t.mem t.sreg (base + o2)))
  | Instr.Unop (op, Instr.Load (Instr.Addr_local o)) ->
    let f = unop_fn op in
    Kdyn (fun t base -> f (Memory.stack_read_exn t.mem t.sreg (base + o)))
  | Instr.Binop
      ( op,
        Instr.Load
          (Instr.Binop (Minic.Ast.Add, Instr.Load (Instr.Addr_local o1), Instr.Const fo)),
        Instr.Const k )
    when match op with
         | Minic.Ast.Lt | Minic.Ast.Le | Minic.Ast.Gt | Minic.Ast.Ge | Minic.Ast.Eq
         | Minic.Ast.Ne ->
           true
         | _ -> false ->
    (* Field-against-constant comparison in value position. *)
    let module W = Dart_util.Word32 in
    let deref t base =
      Memory.read_exn t.mem (W.add (Memory.stack_read_exn t.mem t.sreg (base + o1)) fo)
    in
    (match op with
     | Minic.Ast.Lt -> Kdyn (fun t base -> W.of_bool (deref t base < k))
     | Minic.Ast.Le -> Kdyn (fun t base -> W.of_bool (deref t base <= k))
     | Minic.Ast.Gt -> Kdyn (fun t base -> W.of_bool (deref t base > k))
     | Minic.Ast.Ge -> Kdyn (fun t base -> W.of_bool (deref t base >= k))
     | Minic.Ast.Eq -> Kdyn (fun t base -> W.of_bool (deref t base = k))
     | Minic.Ast.Ne -> Kdyn (fun t base -> W.of_bool (deref t base <> k))
     | _ -> assert false)
  | Instr.Load
      (Instr.Binop (Minic.Ast.Add, Instr.Load (Instr.Addr_local o1), Instr.Const k)) ->
    Kdyn
      (fun t base ->
        Memory.read_exn t.mem (Dart_util.Word32.add (Memory.stack_read_exn t.mem t.sreg (base + o1)) k))
  | Instr.Load
      (Instr.Binop
         (Minic.Ast.Add, Instr.Load (Instr.Addr_local o1), Instr.Load (Instr.Addr_local o2)))
    ->
    Kdyn
      (fun t base ->
        let a = Memory.stack_read_exn t.mem t.sreg (base + o1) in
        let b = Memory.stack_read_exn t.mem t.sreg (base + o2) in
        Memory.read_exn t.mem (Dart_util.Word32.add a b))
  | Instr.Load a ->
    (match compile_expr ~global_addrs ~string_addrs a with
     | Kconst addr ->
       if addr >= globals_base && addr < heap_base then
         Kdyn (fun t _ -> Memory.read_static_exn t.mem addr)
       else Kdyn (fun t _ -> Memory.read_exn t.mem addr)
     | Kdyn fa -> Kdyn (fun t base -> Memory.read_exn t.mem (fa t base)))
  | Instr.Unop (op, e1) ->
    let f = unop_fn op in
    (match compile_expr ~global_addrs ~string_addrs e1 with
     | Kconst v -> Kconst (f v)
     | Kdyn f1 -> Kdyn (fun t base -> f (f1 t base)))
  | Instr.Binop (op, a, b) ->
    let f = binop_fn op in
    let ca = compile_expr ~global_addrs ~string_addrs a in
    let cb = compile_expr ~global_addrs ~string_addrs b in
    (match (ca, cb) with
     | Kconst va, Kconst vb ->
       (match f va vb with
        | v -> Kconst v
        | exception Fault_exn fault -> Kdyn (fun _ _ -> raise (Fault_exn fault)))
     | Kconst va, Kdyn fb -> Kdyn (fun t base -> f va (fb t base))
     | Kdyn fa, Kconst vb -> Kdyn (fun t base -> f (fa t base) vb)
     | Kdyn fa, Kdyn fb ->
       (* left-to-right, as the interpreter evaluates; the hottest
          operators get direct bodies so the op itself inlines instead
          of going through the [binop_fn] indirection. *)
       let module W = Dart_util.Word32 in
       (match op with
        | Minic.Ast.Add ->
          Kdyn
            (fun t base ->
              let va = fa t base in
              W.add va (fb t base))
        | Minic.Ast.Sub ->
          Kdyn
            (fun t base ->
              let va = fa t base in
              W.sub va (fb t base))
        | Minic.Ast.Lt ->
          Kdyn
            (fun t base ->
              let va = fa t base in
              W.of_bool (va < fb t base))
        | Minic.Ast.Eq ->
          Kdyn
            (fun t base ->
              let va = fa t base in
              W.of_bool (va = fb t base))
        | Minic.Ast.Ne ->
          Kdyn
            (fun t base ->
              let va = fa t base in
              W.of_bool (va <> fb t base))
        | _ ->
          Kdyn
            (fun t base ->
              let va = fa t base in
              let vb = fb t base in
              f va vb)))

(* Branch conditions compile to boolean-producing closures directly:
   the comparison shapes lowering emits for [if]/[while] tests skip the
   [of_bool]/[to_bool] round trip and the value-closure call. Memory
   reads happen in the same order (left operand, then right) and
   through the same accessors as the expression path, so faults and
   values are identical. *)
let compile_cond ~global_addrs ~string_addrs (cond : Instr.rexpr) : t -> int -> bool =
  let module W = Dart_util.Word32 in
  let default () =
    let cc = cval_fn (compile_expr ~global_addrs ~string_addrs cond) in
    fun t base -> W.to_bool (cc t base)
  in
  match cond with
  | Instr.Load (Instr.Addr_local o) -> fun t base -> Memory.stack_read_exn t.mem t.sreg (base + o) <> 0
  | Instr.Binop (cmp, Instr.Load (Instr.Addr_local o1), Instr.Const k) ->
    (match cmp with
     | Minic.Ast.Lt -> fun t base -> Memory.stack_read_exn t.mem t.sreg (base + o1) < k
     | Minic.Ast.Le -> fun t base -> Memory.stack_read_exn t.mem t.sreg (base + o1) <= k
     | Minic.Ast.Gt -> fun t base -> Memory.stack_read_exn t.mem t.sreg (base + o1) > k
     | Minic.Ast.Ge -> fun t base -> Memory.stack_read_exn t.mem t.sreg (base + o1) >= k
     | Minic.Ast.Eq -> fun t base -> Memory.stack_read_exn t.mem t.sreg (base + o1) = k
     | Minic.Ast.Ne -> fun t base -> Memory.stack_read_exn t.mem t.sreg (base + o1) <> k
     | _ -> default ())
  | Instr.Binop (cmp, Instr.Load (Instr.Addr_local o1), Instr.Load (Instr.Addr_local o2)) ->
    (match cmp with
     | Minic.Ast.Lt ->
       fun t base ->
         let a = Memory.stack_read_exn t.mem t.sreg (base + o1) in
         a < Memory.stack_read_exn t.mem t.sreg (base + o2)
     | Minic.Ast.Le ->
       fun t base ->
         let a = Memory.stack_read_exn t.mem t.sreg (base + o1) in
         a <= Memory.stack_read_exn t.mem t.sreg (base + o2)
     | Minic.Ast.Gt ->
       fun t base ->
         let a = Memory.stack_read_exn t.mem t.sreg (base + o1) in
         a > Memory.stack_read_exn t.mem t.sreg (base + o2)
     | Minic.Ast.Ge ->
       fun t base ->
         let a = Memory.stack_read_exn t.mem t.sreg (base + o1) in
         a >= Memory.stack_read_exn t.mem t.sreg (base + o2)
     | Minic.Ast.Eq ->
       fun t base ->
         let a = Memory.stack_read_exn t.mem t.sreg (base + o1) in
         a = Memory.stack_read_exn t.mem t.sreg (base + o2)
     | Minic.Ast.Ne ->
       fun t base ->
         let a = Memory.stack_read_exn t.mem t.sreg (base + o1) in
         a <> Memory.stack_read_exn t.mem t.sreg (base + o2)
     | _ -> default ())
  | Instr.Binop
      ( cmp,
        Instr.Load
          (Instr.Binop (Minic.Ast.Add, Instr.Load (Instr.Addr_local o1), Instr.Const fo)),
        Instr.Const k ) ->
    (* Field tests — [while (h->name != k)], [if (p->len < k)] — are
       the walker loops' condition shape. *)
    let deref t base =
      Memory.read_exn t.mem (W.add (Memory.stack_read_exn t.mem t.sreg (base + o1)) fo)
    in
    (match cmp with
     | Minic.Ast.Lt -> fun t base -> deref t base < k
     | Minic.Ast.Le -> fun t base -> deref t base <= k
     | Minic.Ast.Gt -> fun t base -> deref t base > k
     | Minic.Ast.Ge -> fun t base -> deref t base >= k
     | Minic.Ast.Eq -> fun t base -> deref t base = k
     | Minic.Ast.Ne -> fun t base -> deref t base <> k
     | _ -> default ())
  | Instr.Binop
      ( cmp,
        Instr.Load
          (Instr.Binop
             (Minic.Ast.Add, Instr.Load (Instr.Addr_local o1), Instr.Load (Instr.Addr_local o2))),
        Instr.Const k ) ->
    (* Indexed-element tests — [while (buf[i] != 0)] — the scanner
       loops' condition shape. *)
    let deref t base =
      let a = Memory.stack_read_exn t.mem t.sreg (base + o1) in
      let b = Memory.stack_read_exn t.mem t.sreg (base + o2) in
      Memory.read_exn t.mem (W.add a b)
    in
    (match cmp with
     | Minic.Ast.Lt -> fun t base -> deref t base < k
     | Minic.Ast.Le -> fun t base -> deref t base <= k
     | Minic.Ast.Gt -> fun t base -> deref t base > k
     | Minic.Ast.Ge -> fun t base -> deref t base >= k
     | Minic.Ast.Eq -> fun t base -> deref t base = k
     | Minic.Ast.Ne -> fun t base -> deref t base <> k
     | _ -> default ())
  | _ -> default ()

(* A fused sequence burns one step per member instruction, exactly as
   the dispatch loop would; past the budget it raises, with [frame.pc]
   already pointing at the instruction the interpreter would have
   stopped on. *)
let fused_step_check t =
  if t.step_count >= t.lim then raise (Fault_exn Step_limit);
  t.step_count <- t.step_count + 1

(* How many consecutive [Iassign]s one fused closure may cover. *)
let max_fuse_run = 32

(* Fused-block driver: runs members [k .. last] of a block, checking
   the step budget before each member after the first (the caller
   checked the first). The last member is invoked in tail position, so
   a control tail that direct-threads onward (see [Iif]/[Igoto]) never
   grows the OCaml stack — program loops of any iteration count run in
   constant stack space. *)
let rec run_seq (seq : cstep array) t l frame k last =
  if k >= last then (Array.unsafe_get seq k) t l frame
  else begin
    (Array.unsafe_get seq k) t l frame;
    fused_step_check t;
    run_seq seq t l frame (k + 1) last
  end

(* As [run_seq], for blocks whose entry already established that no
   member's budget check can trip ([step_count + last <= lim]): the
   per-member check reduces to the bare increment. Counting still
   advances one step per member, so a fault at member [j] observes
   exactly the count the checked path would. *)
let rec run_seq_fast (seq : cstep array) t l frame k last =
  if k >= last then (Array.unsafe_get seq k) t l frame
  else begin
    (Array.unsafe_get seq k) t l frame;
    t.step_count <- t.step_count + 1;
    run_seq_fast seq t l frame (k + 1) last
  end

let compile_func ~global_addrs ~string_addrs ~externals ~cfuncs (prog : Instr.program)
    (f : Instr.func) : cstep array =
  let code = f.Instr.code in
  let n = Array.length code in
  let ce e = cval_fn (compile_expr ~global_addrs ~string_addrs e) in
  let site_of i =
    let locs = f.Instr.locs in
    { site_fn = f.Instr.fname;
      site_pc = i;
      site_loc = (if i >= 0 && i < Array.length locs then locs.(i) else Minic.Loc.dummy) }
  in
  let compile_one i (ins : Instr.instr) : cstep =
    let next = i + 1 in
    match ins with
    | Instr.Iassign (d, s) ->
      (match d with
       | Instr.Addr_local off ->
         (* Store to a frame slot: destination is pure arithmetic and
            the region is known, so no closure and no decode. The
            common source shapes get whole-instruction bodies — no
            value-closure call at all. *)
         let module W = Dart_util.Word32 in
         (match s with
          | Instr.Const k ->
            fun t l frame ->
              let base = frame.base in
              let dst = base + off in
              if t.notify_store then l.on_store t ~dst ~src:s ~base;
              Memory.stack_write_exn t.mem t.sreg dst k;
              frame.pc <- next
          | Instr.Load (Instr.Addr_local o1) ->
            fun t l frame ->
              let base = frame.base in
              let dst = base + off in
              let v = Memory.stack_read_exn t.mem t.sreg (base + o1) in
              if t.notify_store then l.on_store t ~dst ~src:s ~base;
              Memory.stack_write_exn t.mem t.sreg dst v;
              frame.pc <- next
          | Instr.Binop
              (Minic.Ast.Add, Instr.Load (Instr.Addr_local o1), Instr.Load (Instr.Addr_local o2))
            ->
            fun t l frame ->
              let base = frame.base in
              let dst = base + off in
              let a = Memory.stack_read_exn t.mem t.sreg (base + o1) in
              let b = Memory.stack_read_exn t.mem t.sreg (base + o2) in
              let v = W.add a b in
              if t.notify_store then l.on_store t ~dst ~src:s ~base;
              Memory.stack_write_exn t.mem t.sreg dst v;
              frame.pc <- next
          | Instr.Binop (Minic.Ast.Add, Instr.Load (Instr.Addr_local o1), Instr.Const k) ->
            fun t l frame ->
              let base = frame.base in
              let dst = base + off in
              let v = W.add (Memory.stack_read_exn t.mem t.sreg (base + o1)) k in
              if t.notify_store then l.on_store t ~dst ~src:s ~base;
              Memory.stack_write_exn t.mem t.sreg dst v;
              frame.pc <- next
          | Instr.Binop (Minic.Ast.Sub, Instr.Load (Instr.Addr_local o1), Instr.Const k) ->
            fun t l frame ->
              let base = frame.base in
              let dst = base + off in
              let v = W.sub (Memory.stack_read_exn t.mem t.sreg (base + o1)) k in
              if t.notify_store then l.on_store t ~dst ~src:s ~base;
              Memory.stack_write_exn t.mem t.sreg dst v;
              frame.pc <- next
          | Instr.Load
              (Instr.Binop (Minic.Ast.Add, Instr.Load (Instr.Addr_local o1), Instr.Const fo))
            ->
            (* Field load into a slot: [x = p->f]. *)
            fun t l frame ->
              let base = frame.base in
              let dst = base + off in
              let v =
                Memory.read_exn t.mem (W.add (Memory.stack_read_exn t.mem t.sreg (base + o1)) fo)
              in
              if t.notify_store then l.on_store t ~dst ~src:s ~base;
              Memory.stack_write_exn t.mem t.sreg dst v;
              frame.pc <- next
          | Instr.Load
              (Instr.Binop
                 ( Minic.Ast.Add,
                   Instr.Load (Instr.Addr_local o1),
                   Instr.Load (Instr.Addr_local o2) ))
            ->
            (* Indexed load into a slot: [x = buf[i]]. *)
            fun t l frame ->
              let base = frame.base in
              let dst = base + off in
              let a = Memory.stack_read_exn t.mem t.sreg (base + o1) in
              let b = Memory.stack_read_exn t.mem t.sreg (base + o2) in
              let v = Memory.read_exn t.mem (W.add a b) in
              if t.notify_store then l.on_store t ~dst ~src:s ~base;
              Memory.stack_write_exn t.mem t.sreg dst v;
              frame.pc <- next
          | Instr.Binop
              ( Minic.Ast.Add,
                Instr.Load (Instr.Addr_local o1),
                Instr.Load
                  (Instr.Binop
                     ( Minic.Ast.Add,
                       Instr.Load (Instr.Addr_local o2),
                       Instr.Load (Instr.Addr_local o3) )) ) ->
            (* Accumulate an indexed element: [s = s + buf[i]] — the
               checksum/scanner idiom. Left operand first, then the
               indexed load, as the generic path would. *)
            fun t l frame ->
              let base = frame.base in
              let dst = base + off in
              let a = Memory.stack_read_exn t.mem t.sreg (base + o1) in
              let p = Memory.stack_read_exn t.mem t.sreg (base + o2) in
              let i = Memory.stack_read_exn t.mem t.sreg (base + o3) in
              let v = W.add a (Memory.read_exn t.mem (W.add p i)) in
              if t.notify_store then l.on_store t ~dst ~src:s ~base;
              Memory.stack_write_exn t.mem t.sreg dst v;
              frame.pc <- next
          | _ ->
            let cs = ce s in
            fun t l frame ->
              let base = frame.base in
              let dst = base + off in
              let v = cs t base in
              if t.notify_store then l.on_store t ~dst ~src:s ~base;
              Memory.stack_write_exn t.mem t.sreg dst v;
              frame.pc <- next)
       | Instr.Binop (Minic.Ast.Add, Instr.Load (Instr.Addr_local o1), Instr.Const fo) ->
         (* Field store: [p->f = e]. Address first, then the source,
            exactly as the generic path evaluates. *)
         let module W = Dart_util.Word32 in
         let cs = ce s in
         fun t l frame ->
           let base = frame.base in
           let addr = W.add (Memory.stack_read_exn t.mem t.sreg (base + o1)) fo in
           let v = cs t base in
           if t.notify_store then l.on_store t ~dst:addr ~src:s ~base;
           Memory.write_exn t.mem addr v;
           frame.pc <- next
       | Instr.Binop
           (Minic.Ast.Add, Instr.Load (Instr.Addr_local o1), Instr.Load (Instr.Addr_local o2))
         ->
         (* Indexed store: [buf[i] = e]. *)
         let module W = Dart_util.Word32 in
         let cs = ce s in
         fun t l frame ->
           let base = frame.base in
           let a = Memory.stack_read_exn t.mem t.sreg (base + o1) in
           let b = Memory.stack_read_exn t.mem t.sreg (base + o2) in
           let addr = W.add a b in
           let v = cs t base in
           if t.notify_store then l.on_store t ~dst:addr ~src:s ~base;
           Memory.write_exn t.mem addr v;
           frame.pc <- next
       | _ ->
         let cs = ce s in
         (match compile_expr ~global_addrs ~string_addrs d with
          | Kconst addr when addr >= globals_base && addr < heap_base ->
            (* Store to a global resolved at compile time. *)
            fun t l frame ->
              let base = frame.base in
              let v = cs t base in
              if t.notify_store then l.on_store t ~dst:addr ~src:s ~base;
              Memory.write_static_exn t.mem addr v;
              frame.pc <- next
          | cd ->
            let cd = cval_fn cd in
            fun t l frame ->
              let base = frame.base in
              let addr = cd t base in
              let v = cs t base in
              cstore t l ~dst:addr ~src:s ~base v;
              frame.pc <- next))
    | Instr.Iif (cond, lbl) ->
      let ctaken = compile_cond ~global_addrs ~string_addrs cond in
      let site = site_of i in
      if lbl >= 0 && lbl < n && next < n then
        (* Direct threading: a branch transfers straight to its target's
           compiled block (via the current frame's code array) instead
           of bouncing through the dispatch loop. Branches never switch
           frames, so the loop's frame check is redundant here, and the
           step check before the tail call is exactly the one the loop
           would have performed. The tail call keeps the OCaml stack
           flat, so branch-to-branch chains of any length are safe. *)
        fun t l frame ->
          let base = frame.base in
          let taken = ctaken t base in
          t.cond_count <- t.cond_count + 1;
          if t.notify_branch then l.on_branch t ~cond ~base ~taken ~site;
          let target = if taken then lbl else next in
          frame.pc <- target;
          fused_step_check t;
          (Array.unsafe_get frame.fr_steps target) t l frame
      else
        (* An out-of-range label keeps the loop's diagnostics. *)
        fun t l frame ->
          let base = frame.base in
          let taken = ctaken t base in
          t.cond_count <- t.cond_count + 1;
          if t.notify_branch then l.on_branch t ~cond ~base ~taken ~site;
          frame.pc <- (if taken then lbl else next)
    | Instr.Igoto lbl ->
      (* Chase goto-to-goto chains at compile time; each hop still
         costs a step (a goto cycle must exhaust the budget, not
         hang). In-bounds final targets are direct-threaded like [Iif];
         out-of-range ones fall back to the loop for its diagnostics. *)
      let rec chase seen l acc =
        if l < 0 || l >= n || List.mem l seen then List.rev (l :: acc)
        else
          match code.(l) with
          | Instr.Igoto l' -> chase (l :: seen) l' (l :: acc)
          | _ -> List.rev (l :: acc)
      in
      (match chase [] lbl [] with
       | [ target ] when target >= 0 && target < n ->
         fun t l frame ->
           frame.pc <- target;
           fused_step_check t;
           (Array.unsafe_get frame.fr_steps target) t l frame
       | [ target ] -> fun _ _ frame -> frame.pc <- target
       | hops_list ->
         let hops = Array.of_list hops_list in
         let nhops = Array.length hops in
         let final = hops.(nhops - 1) in
         if final >= 0 && final < n then
           fun t l frame ->
             frame.pc <- Array.unsafe_get hops 0;
             for k = 1 to nhops - 1 do
               fused_step_check t;
               frame.pc <- Array.unsafe_get hops k
             done;
             fused_step_check t;
             (Array.unsafe_get frame.fr_steps final) t l frame
         else
           fun t _ frame ->
             frame.pc <- Array.unsafe_get hops 0;
             for k = 1 to nhops - 1 do
               fused_step_check t;
               frame.pc <- Array.unsafe_get hops k
             done)
    | Instr.Icall { dst; kind; callee; args } ->
      (* The destination's presence is a compile-time fact: each call
         kind gets a with-dst and a without-dst body, so the hot path
         never builds or matches an [option]. Order of effects matches
         the interpreter: destination address, then arguments, then the
         call. *)
      let eval_dst : t -> int -> int option =
        match dst with
        | None -> fun _ _ -> None
        | Some d ->
          let cd = ce d in
          fun t base -> Some (cd t base)
      in
      let cargs = List.map ce args in
      (match (kind : Minic.Tast.call_kind) with
       | Minic.Tast.Cbuiltin b ->
         let call_builtin : t -> int -> int =
           match (b, cargs) with
           | Minic.Tast.Bmalloc, [ ca ] -> fun t base -> do_malloc t (ca t base)
           | Minic.Tast.Balloca, [ ca ] -> fun t base -> do_alloca t (ca t base)
           | Minic.Tast.Bfree, [ ca ] ->
             fun t base ->
               do_free t (ca t base);
               0
           | Minic.Tast.Bmalloc, _ -> fun _ _ -> invalid_arg "malloc arity"
           | Minic.Tast.Balloca, _ -> fun _ _ -> invalid_arg "alloca arity"
           | Minic.Tast.Bfree, _ -> fun _ _ -> invalid_arg "free arity"
           | (Minic.Tast.Babort | Minic.Tast.Bassert | Minic.Tast.Bassume), _ ->
             (* Lowered to Iabort / branches; never reaches Icall. *)
             fun _ _ -> assert false
         in
         (match dst with
          | None ->
            fun t _ frame ->
              ignore (call_builtin t frame.base);
              frame.pc <- next
          | Some d ->
            let cd = ce d in
            fun t l frame ->
              let base = frame.base in
              let dst = cd t base in
              let result = call_builtin t base in
              cstore t l ~dst ~src:(Instr.Const result) ~base result;
              frame.pc <- next)
       | Minic.Tast.Cexternal ->
         (match Hashtbl.find_opt externals callee with
          | None ->
            fun t _ frame ->
              ignore (eval_dst t frame.base);
              invalid_arg (Printf.sprintf "external function %s has no signature" callee)
          | Some signature ->
            fun t l frame ->
              let base = frame.base in
              let dst_addr = eval_dst t base in
              (* Arguments are evaluated (for faults) and discarded:
                 external functions have no side effects on program
                 memory (paper §3.4). *)
              List.iter (fun ca -> ignore (ca t base)) cargs;
              l.on_external t signature ~dst:dst_addr;
              frame.pc <- next)
       | Minic.Tast.Clibrary ->
         (* The implementation table is per-machine, so resolution
            stays at run time. *)
         fun t l frame ->
           let base = frame.base in
           let dst_addr = eval_dst t base in
           let impl =
             match Hashtbl.find_opt t.library_impls callee with
             | Some impl -> impl
             | None ->
               invalid_arg (Printf.sprintf "library function %s has no implementation" callee)
           in
           l.on_library t ~callee ~args ~base;
           let vals = List.map (fun ca -> ca t base) cargs in
           let result = Dart_util.Word32.norm (impl t vals) in
           (match dst_addr with
            | Some d -> cstore t l ~dst:d ~src:(Instr.Const result) ~base result
            | None -> ());
           frame.pc <- next
       | Minic.Tast.Cprogram ->
         (match Instr.find_func prog callee with
          | None ->
            fun t _ frame ->
              ignore (eval_dst t frame.base);
              invalid_arg (Printf.sprintf "call to unknown function %s" callee)
          | Some func ->
            if List.compare_length_with args func.Instr.nparams <> 0 then
              fun t _ frame ->
                ignore (eval_dst t frame.base);
                invalid_arg (Printf.sprintf "arity mismatch calling %s" callee)
            else
              let srcs = Array.of_list args in
              let cargs = Array.of_list cargs in
              let nargs = Array.length srcs in
              let offsets = func.Instr.param_offsets in
              let callee_steps =
                match Hashtbl.find_opt cfuncs callee with
                | Some r -> r
                | None -> assert false (* every program function is compiled *)
              in
              (* Evaluate arguments in the caller's frame (through the
                 machine's scratch buffer — argument expressions contain
                 no calls, so no reentrancy), push, then seed the callee
                 frame. The source expression is evaluated in the
                 caller's base; on_store lets the symbolic layer track
                 arguments across the call boundary (interprocedural
                 tracing, paper §2.1). *)
              let enter =
                (* The common arities skip the scratch-buffer loop. *)
                match (srcs, cargs) with
                | [||], _ ->
                  fun t _l frame _base ret_dst ->
                    frame.pc <- next; (* return point *)
                    ignore (push_frame t func ~ret_dst ~steps:!callee_steps)
                | [| src0 |], [| ca0 |] ->
                  let off0 = offsets.(0) in
                  fun t l frame base ret_dst ->
                    let v = ca0 t base in
                    frame.pc <- next;
                    let callee_frame = push_frame t func ~ret_dst ~steps:!callee_steps in
                    let dst = callee_frame.base + off0 in
                    if t.notify_store then l.on_store t ~dst ~src:src0 ~base;
                    Memory.stack_write_exn t.mem t.sreg dst v
                | _ ->
                  fun t l frame base ret_dst ->
                    let scratch = t.scratch in
                    for k = 0 to nargs - 1 do
                      Array.unsafe_set scratch k ((Array.unsafe_get cargs k) t base)
                    done;
                    frame.pc <- next;
                    let callee_frame = push_frame t func ~ret_dst ~steps:!callee_steps in
                    for k = 0 to nargs - 1 do
                      let dst = callee_frame.base + Array.unsafe_get offsets k in
                      if t.notify_store then
                        l.on_store t ~dst ~src:(Array.unsafe_get srcs k) ~base;
                      Memory.stack_write_exn t.mem t.sreg dst (Array.unsafe_get scratch k)
                    done
              in
              (match dst with
               | None -> fun t l frame -> enter t l frame frame.base None
               | Some d ->
                 let cd = ce d in
                 fun t l frame ->
                   let base = frame.base in
                   enter t l frame base (Some (cd t base)))))
    | Instr.Ireturn e ->
      (match e with
       | None ->
         fun t _ frame ->
           (match frame.ret_dst with
            | Some _ -> raise (Fault_exn Missing_return)
            | None -> ());
           ignore (pop_frame t)
       | Some (Instr.Const k as src) ->
         fun t l frame ->
           (match frame.ret_dst with
            | Some d -> cstore t l ~dst:d ~src ~base:frame.base k
            | None -> ());
           ignore (pop_frame t)
       | Some (Instr.Load (Instr.Addr_local o) as src) ->
         fun t l frame ->
           (* Read before inspecting [ret_dst]: an undefined slot must
              fault even when the caller discards the value. *)
           let value = Memory.stack_read_exn t.mem t.sreg (frame.base + o) in
           (match frame.ret_dst with
            | Some d -> cstore t l ~dst:d ~src ~base:frame.base value
            | None -> ());
           ignore (pop_frame t)
       | Some src ->
         let cv = ce src in
         fun t l frame ->
           let value = cv t frame.base in
           (* The store (and its listener notification) must happen
              while the callee frame is still mapped: the symbolic layer
              may re-evaluate [src] in the callee's frame. *)
           (match frame.ret_dst with
            | Some d -> cstore t l ~dst:d ~src ~base:frame.base value
            | None -> ());
           ignore (pop_frame t))
    | Instr.Iabort -> fun _ _ _ -> raise (Fault_exn Abort)
    | Instr.Ihalt -> fun _ _ _ -> raise Halt_exn
  in
  let steps = Array.mapi compile_one code in
  (* Fuse straight-line blocks: a run of [Iassign]s plus, when present,
     the single instruction ending it (branch, jump, call, return,
     abort, halt) execute as one closure, re-entering the dispatch loop
     once per block instead of once per instruction. A jump landing
     anywhere in the run executes its suffix. Only assignments may be
     interior members — they always fall through and never switch
     frames; any instruction may be the tail, because control returns
     to the loop right after it. Each member burns one step, and a
     fault inside the block leaves [frame.pc] on the faulting member. *)
  let is_assign k = match code.(k) with Instr.Iassign _ -> true | _ -> false in
  let fused = Array.copy steps in
  for i = 0 to n - 1 do
    if is_assign i then begin
      let j = ref (i + 1) in
      while !j < n && is_assign !j && !j - i < max_fuse_run do incr j done;
      let stop = if !j < n && !j - i < max_fuse_run then !j + 1 else !j in
      if stop - i >= 2 then begin
        let seq = Array.sub steps i (stop - i) in
        let last = Array.length seq - 1 in
        fused.(i) <-
          (fun t l frame ->
            if t.step_count + last <= t.lim then run_seq_fast seq t l frame 0 last
            else run_seq seq t l frame 0 last)
      end
    end
  done;
  fused

let compile (prog : Instr.program) : compiled =
  let global_addrs, string_addrs, placed = layout prog in
  let externals = Hashtbl.create 8 in
  List.iter (fun (s : Minic.Tast.fsig) -> Hashtbl.replace externals s.sig_name s) prog.externals;
  (* Two passes so mutually recursive functions can resolve each other:
     allocate every function's slot first, then fill the bodies. *)
  let cfuncs : (string, cstep array ref) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter (fun name _ -> Hashtbl.replace cfuncs name (ref [||])) prog.funcs;
  Hashtbl.iter
    (fun name f ->
      let slot = Hashtbl.find cfuncs name in
      slot := compile_func ~global_addrs ~string_addrs ~externals ~cfuncs prog f)
    prog.funcs;
  let init_mem = Memory.create_flat () in
  seed_memory init_mem prog ~string_addrs placed;
  let max_params = Hashtbl.fold (fun _ f acc -> max acc f.Instr.nparams) prog.funcs 0 in
  { cfuncs;
    c_global_addrs = global_addrs;
    c_string_addrs = string_addrs;
    c_externals = externals;
    c_init_mem = init_mem;
    c_max_params = max_params }

(* A search loads thousands of machines from the same lowered program;
   compilation happens once per [Instr.program] value. The cache is
   keyed by physical identity (programs are immutable after lowering)
   and kept in an [Atomic] so Parallel workers on other domains share
   the read-only compiled form; a lost CAS race at worst compiles
   twice. *)
let cache_capacity = 8

let compiled_cache : (Instr.program * compiled) list Atomic.t = Atomic.make []

let compiled_for (prog : Instr.program) : compiled =
  let find entries =
    List.find_map (fun (p, c) -> if p == prog then Some c else None) entries
  in
  match find (Atomic.get compiled_cache) with
  | Some c -> c
  | None ->
    let c = compile prog in
    let rec publish () =
      let cur = Atomic.get compiled_cache in
      match find cur with
      | Some c' -> c' (* another domain won the race; use its copy *)
      | None ->
        let kept =
          if List.length cur >= cache_capacity then
            List.filteri (fun i _ -> i < cache_capacity - 1) cur
          else cur
        in
        if Atomic.compare_and_set compiled_cache cur ((prog, c) :: kept) then c else publish ()
    in
    publish ()

let precompile prog = ignore (compiled_for prog)

let load ?(config = default_config) ?(library = []) ?(compile = true) (prog : Instr.program) : t =
  let compiled = if compile then Some (compiled_for prog) else None in
  let mem, global_addrs, string_addrs, externals =
    match compiled with
    | Some c ->
      (* Everything position-dependent was computed once at compile
         time; stamping out a machine is a memory-image clone plus the
         mutable per-run state below. The shared tables are read-only. *)
      (Memory.clone c.c_init_mem, c.c_global_addrs, c.c_string_addrs, c.c_externals)
    | None ->
      let mem = Memory.create () in
      let global_addrs, string_addrs, placed = layout prog in
      seed_memory mem prog ~string_addrs placed;
      let externals = Hashtbl.create 8 in
      List.iter
        (fun (s : Minic.Tast.fsig) -> Hashtbl.replace externals s.sig_name s)
        prog.externals;
      (mem, global_addrs, string_addrs, externals)
  in
  let library_impls = Hashtbl.create 4 in
  List.iter (fun (name, impl) -> Hashtbl.replace library_impls name impl) library;
  { prog;
    config;
    mem;
    sreg = Memory.stack_region mem;
    global_addrs;
    string_addrs;
    externals;
    library_impls;
    malloc_blocks = Hashtbl.create 4;
    frames = [];
    call_depth = 0;
    heap_top = heap_base;
    stack_top = stack_base;
    step_count = 0;
    cond_count = 0;
    lim = config.step_limit;
    notify_store = true;
    notify_branch = true;
    scratch =
      (match compiled with
       | Some c when c.c_max_params > 0 -> Array.make c.c_max_params 0
       | _ -> [||]);
    compiled }

let is_compiled t =
  match t.compiled with
  | Some _ -> true
  | None -> false

let exec_call t listener frame ~dst ~kind ~callee ~args =
  let base = frame.base in
  let dst_addr = Option.map (fun d -> eval_concrete t ~base d) dst in
  match (kind : Minic.Tast.call_kind) with
  | Minic.Tast.Cbuiltin b ->
    let result =
      match b with
      | Minic.Tast.Bmalloc ->
        (match args with
         | [ a ] -> do_malloc t (eval_concrete t ~base a)
         | _ -> invalid_arg "malloc arity")
      | Minic.Tast.Balloca ->
        (match args with
         | [ a ] -> do_alloca t (eval_concrete t ~base a)
         | _ -> invalid_arg "alloca arity")
      | Minic.Tast.Bfree ->
        (match args with
         | [ a ] ->
           do_free t (eval_concrete t ~base a);
           0
         | _ -> invalid_arg "free arity")
      | Minic.Tast.Babort | Minic.Tast.Bassert | Minic.Tast.Bassume ->
        (* Lowered to Iabort / branches; never reaches Icall. *)
        assert false
    in
    (match dst_addr with
     | Some d -> store t listener ~dst:d ~src:(Instr.Const result) ~base result
     | None -> ());
    frame.pc <- frame.pc + 1
  | Minic.Tast.Cexternal ->
    let signature =
      match Hashtbl.find_opt t.externals callee with
      | Some s -> s
      | None -> invalid_arg (Printf.sprintf "external function %s has no signature" callee)
    in
    (* Arguments are evaluated (for faults) and discarded: external
       functions have no side effects on program memory (paper §3.4). *)
    List.iter (fun a -> ignore (eval_concrete t ~base a)) args;
    listener.on_external t signature ~dst:dst_addr;
    frame.pc <- frame.pc + 1
  | Minic.Tast.Clibrary ->
    let impl =
      match Hashtbl.find_opt t.library_impls callee with
      | Some impl -> impl
      | None -> invalid_arg (Printf.sprintf "library function %s has no implementation" callee)
    in
    listener.on_library t ~callee ~args ~base;
    let vals = List.map (fun a -> eval_concrete t ~base a) args in
    let result = Dart_util.Word32.norm (impl t vals) in
    (match dst_addr with
     | Some d -> store t listener ~dst:d ~src:(Instr.Const result) ~base result
     | None -> ());
    frame.pc <- frame.pc + 1
  | Minic.Tast.Cprogram ->
    let func =
      match Instr.find_func t.prog callee with
      | Some f -> f
      | None -> invalid_arg (Printf.sprintf "call to unknown function %s" callee)
    in
    if List.compare_length_with args func.Instr.nparams <> 0 then
      invalid_arg (Printf.sprintf "arity mismatch calling %s" callee);
    (* Evaluate arguments in the caller's frame before pushing. *)
    let arg_values = List.map (fun a -> eval_concrete t ~base a) args in
    frame.pc <- frame.pc + 1; (* return point *)
    let callee_frame = push_frame t func ~ret_dst:dst_addr ~steps:[||] in
    let offsets = func.Instr.param_offsets in
    let rec seed i values sources =
      match (values, sources) with
      | [], [] -> ()
      | v :: values, src :: sources ->
        (* The source expression is evaluated in the caller's base;
           on_store lets the symbolic layer track arguments across the
           call boundary (interprocedural tracing, paper §2.1). *)
        store t listener ~dst:(callee_frame.base + offsets.(i)) ~src ~base v;
        seed (i + 1) values sources
      | _ -> assert false (* lengths checked above *)
    in
    seed 0 arg_values args

let step t listener =
  (* Returns [Some outcome] when the run ends. *)
  match t.frames with
  | [] -> Some Halted
  | frame :: _ ->
    if t.step_count >= t.config.step_limit then Some (Faulted (Step_limit, current_site t))
    else begin
      t.step_count <- t.step_count + 1;
      let code = frame.func.Instr.code in
      if frame.pc < 0 || frame.pc >= Array.length code then
        invalid_arg
          (Printf.sprintf "pc out of range in %s: %d" frame.func.Instr.fname frame.pc)
      else begin
        let site = current_site t in
        match code.(frame.pc) with
        | Instr.Iassign (d, s) ->
          let base = frame.base in
          let addr = eval_concrete t ~base d in
          let v = eval_concrete t ~base s in
          store t listener ~dst:addr ~src:s ~base v;
          frame.pc <- frame.pc + 1;
          None
        | Instr.Iif (cond, l) ->
          let base = frame.base in
          let v = eval_concrete t ~base cond in
          let taken = Dart_util.Word32.to_bool v in
          t.cond_count <- t.cond_count + 1;
          listener.on_branch t ~cond ~base ~taken ~site;
          frame.pc <- (if taken then l else frame.pc + 1);
          None
        | Instr.Igoto l ->
          frame.pc <- l;
          None
        | Instr.Icall { dst; kind; callee; args } ->
          exec_call t listener frame ~dst ~kind ~callee ~args;
          None
        | Instr.Ireturn e ->
          let v = Option.map (eval_concrete t ~base:frame.base) e in
          (* The store (and its listener notification) must happen
             while the callee frame is still mapped: the symbolic layer
             may re-evaluate [src] in the callee's frame. *)
          (match (frame.ret_dst, v, e) with
           | Some d, Some value, Some src ->
             store t listener ~dst:d ~src ~base:frame.base value
           | Some _, None, _ -> raise (Fault_exn Missing_return)
           | None, _, _ -> ()
           | Some _, Some _, None -> assert false);
          let _popped = pop_frame t in
          if t.frames = [] then Some Halted else None
        | Instr.Iabort -> Some (Faulted (Abort, site))
        | Instr.Ihalt -> Some Halted
      end
    end

let irun t listener =
  let rec loop () =
    match step t listener with
    | Some outcome -> outcome
    | None -> loop ()
  in
  loop ()

(* The compiled dispatch loop. Frame pushes and pops surface as a
   changed list head; the loop then switches to that frame's compiled
   code without any lookup. *)
let crun t listener (entry_frame : frame) =
  let rec loop (frame : frame) (steps : cstep array) =
    if t.step_count >= t.lim then Faulted (Step_limit, current_site t)
    else begin
      t.step_count <- t.step_count + 1;
      let pc = frame.pc in
      if pc < 0 || pc >= Array.length steps then
        invalid_arg (Printf.sprintf "pc out of range in %s: %d" frame.func.Instr.fname pc);
      (Array.unsafe_get steps pc) t listener frame;
      match t.frames with
      | [] -> Halted
      | f :: _ -> if f == frame then loop frame steps else loop f f.fr_steps
    end
  in
  loop entry_frame entry_frame.fr_steps

let run ?args ?(listener = null_listener) t ~entry =
  let func =
    match Instr.find_func t.prog entry with
    | Some f -> f
    | None -> invalid_arg (Printf.sprintf "Machine.run: unknown entry %s" entry)
  in
  if t.frames <> [] || t.step_count > 0 then
    invalid_arg "Machine.run: machines are single-shot; load a fresh one";
  t.notify_store <- listener.on_store != null_listener.on_store;
  t.notify_branch <- listener.on_branch != null_listener.on_branch;
  let entry_steps =
    match t.compiled with
    | None -> [||]
    | Some c ->
      (match Hashtbl.find_opt c.cfuncs entry with
       | Some r -> !r
       | None -> assert false (* find_func succeeded above *))
  in
  let frame = push_frame t func ~ret_dst:None ~steps:entry_steps in
  (match args with
   | Some vs when List.compare_length_with vs func.Instr.nparams <> 0 ->
     invalid_arg "Machine.run: argument count mismatch"
   | _ -> ());
  let exec () =
    (match args with
     | None -> ()
     | Some vs ->
       List.iteri
         (fun i v ->
           let dst = frame.base + func.Instr.param_offsets.(i) in
           let v = Dart_util.Word32.norm v in
           (* Seed through [store]: the listener observes pre-store
              memory (Figure 3), as for every other program write. *)
           store t listener ~dst ~src:(Instr.Const v) ~base:frame.base v)
         vs);
    listener.on_entry t ~entry:func ~base:frame.base;
    match t.compiled with
    | Some _ -> crun t listener frame
    | None -> irun t listener
  in
  match exec () with
  | outcome -> outcome
  | exception Fault_exn f -> Faulted (f, current_site t)
  | exception Halt_exn -> Halted
  | exception Memory.Unmapped_exn -> Faulted (Invalid_deref, current_site t)
  | exception Memory.Undefined_exn -> Faulted (Uninitialized_read, current_site t)
  | exception Memory.Null_exn -> Faulted (Null_deref, current_site t)
