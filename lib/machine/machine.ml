open Ram

type fault =
  | Abort
  | Null_deref
  | Invalid_deref
  | Uninitialized_read
  | Div_by_zero
  | Step_limit
  | Call_depth
  | Missing_return
  | Bad_free

let fault_to_string = function
  | Abort -> "abort"
  | Null_deref -> "NULL dereference"
  | Invalid_deref -> "invalid dereference"
  | Uninitialized_read -> "read of uninitialized memory"
  | Div_by_zero -> "division by zero"
  | Step_limit -> "step limit exceeded (possible non-termination)"
  | Call_depth -> "call stack exhausted"
  | Missing_return -> "missing return value"
  | Bad_free -> "invalid free"

(* Short machine-readable names: the checkpoint codec needs a stable
   round-trippable spelling, which the human-facing strings above are
   not. *)
let fault_tag = function
  | Abort -> "abort"
  | Null_deref -> "null_deref"
  | Invalid_deref -> "invalid_deref"
  | Uninitialized_read -> "uninit_read"
  | Div_by_zero -> "div_by_zero"
  | Step_limit -> "step_limit"
  | Call_depth -> "call_depth"
  | Missing_return -> "missing_return"
  | Bad_free -> "bad_free"

let fault_of_tag = function
  | "abort" -> Some Abort
  | "null_deref" -> Some Null_deref
  | "invalid_deref" -> Some Invalid_deref
  | "uninit_read" -> Some Uninitialized_read
  | "div_by_zero" -> Some Div_by_zero
  | "step_limit" -> Some Step_limit
  | "call_depth" -> Some Call_depth
  | "missing_return" -> Some Missing_return
  | "bad_free" -> Some Bad_free
  | _ -> None

type site = { site_fn : string; site_pc : int; site_loc : Minic.Loc.t }

type outcome =
  | Halted
  | Faulted of fault * site

exception Fault_exn of fault

(* Memory layout (cell addresses, all well below 2^31): *)
let globals_base = 0x1000
let heap_base = 0x2000_0000
let stack_base = 0x4000_0000

type frame = {
  func : Instr.func;
  base : int;
  mutable pc : int;
  ret_dst : int option;
  saved_stack_top : int; (* restore point: frees the frame and its allocas *)
}

type config = {
  step_limit : int;
  stack_limit : int;
  max_call_depth : int;
}

let default_config = { step_limit = 2_000_000; stack_limit = 1 lsl 20; max_call_depth = 512 }

type t = {
  prog : Instr.program;
  config : config;
  mem : Memory.t;
  global_addrs : (string, int) Hashtbl.t;
  string_addrs : int array;
  externals : (string, Minic.Tast.fsig) Hashtbl.t;
  library_impls : (string, t -> int list -> int) Hashtbl.t;
  malloc_blocks : (int, int) Hashtbl.t; (* block address -> size *)
  mutable frames : frame list;
  mutable heap_top : int;
  mutable stack_top : int;
  mutable step_count : int;
  mutable cond_count : int;
}

type listener = {
  on_store : t -> dst:int -> src:Instr.rexpr -> base:int -> unit;
  on_branch : t -> cond:Instr.rexpr -> base:int -> taken:bool -> site:site -> unit;
  on_external : t -> Minic.Tast.fsig -> dst:int option -> unit;
  on_library : t -> callee:string -> args:Instr.rexpr list -> base:int -> unit;
  on_entry : t -> entry:Instr.func -> base:int -> unit;
}

let null_listener =
  { on_store = (fun _ ~dst:_ ~src:_ ~base:_ -> ());
    on_branch = (fun _ ~cond:_ ~base:_ ~taken:_ ~site:_ -> ());
    on_external =
      (fun t _ ~dst ->
        match dst with
        | Some d -> ignore (Memory.write t.mem d 0)
        | None -> ());
    on_library = (fun _ ~callee:_ ~args:_ ~base:_ -> ());
    on_entry = (fun _ ~entry:_ ~base:_ -> ()) }

type library_impl = t -> int list -> int

let program t = t.prog
let steps t = t.step_count
let branch_count t = t.cond_count

let load ?(config = default_config) ?(library = []) (prog : Instr.program) : t =
  let mem = Memory.create () in
  let global_addrs = Hashtbl.create 16 in
  let next = ref globals_base in
  List.iter
    (fun (g : Minic.Tast.tglobal) ->
      let size = Minic.Ctype.sizeof prog.structs g.gl_ty in
      Hashtbl.replace global_addrs g.gl_name !next;
      (match g.gl_init with
       | Some values ->
         (* Listed cells get their constants; the remainder is
            zero-filled, as C static storage would be. *)
         let values = Array.of_list values in
         for i = 0 to size - 1 do
           Memory.write_init mem (!next + i)
             (if i < Array.length values then Dart_util.Word32.norm values.(i) else 0)
         done
       | None ->
         (* Extern: allocated but undefined until the driver fills it. *)
         Memory.alloc mem ~addr:!next ~size);
      next := !next + size)
    prog.globals;
  let string_addrs =
    Array.map
      (fun s ->
        let addr = !next in
        String.iter
          (fun c ->
            Memory.write_init mem !next (Char.code c);
            incr next)
          s;
        Memory.write_init mem !next 0;
        incr next;
        addr)
      prog.strings
  in
  let externals = Hashtbl.create 8 in
  List.iter (fun (s : Minic.Tast.fsig) -> Hashtbl.replace externals s.sig_name s) prog.externals;
  let library_impls = Hashtbl.create 8 in
  List.iter (fun (name, impl) -> Hashtbl.replace library_impls name impl) library;
  { prog;
    config;
    mem;
    global_addrs;
    string_addrs;
    externals;
    library_impls;
    malloc_blocks = Hashtbl.create 16;
    frames = [];
    heap_top = heap_base;
    stack_top = stack_base;
    step_count = 0;
    cond_count = 0 }

let global_addr t name =
  match Hashtbl.find_opt t.global_addrs name with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Machine.global_addr: unknown global %s" name)

let read_word t a = Memory.read t.mem a
let write_word t a v = Memory.write_init t.mem a (Dart_util.Word32.norm v)

let alloc_heap t n =
  let addr = t.heap_top in
  Memory.alloc t.mem ~addr ~size:n;
  t.heap_top <- t.heap_top + n + 1; (* guard cell between blocks *)
  Hashtbl.replace t.malloc_blocks addr n;
  addr

let malloc_block_size t addr = Hashtbl.find_opt t.malloc_blocks addr

(* ---- concrete evaluation --------------------------------------------------- *)

let read_checked t addr =
  if addr >= 0 && addr < globals_base then raise (Fault_exn Null_deref);
  match Memory.read t.mem addr with
  | Ok v -> v
  | Error Memory.Unmapped -> raise (Fault_exn Invalid_deref)
  | Error Memory.Undefined -> raise (Fault_exn Uninitialized_read)

let write_checked t addr v =
  if addr >= 0 && addr < globals_base then raise (Fault_exn Null_deref);
  match Memory.write t.mem addr v with
  | Ok () -> ()
  | Error _ -> raise (Fault_exn Invalid_deref)

let rec eval_concrete t ~base (e : Instr.rexpr) : int =
  let module W = Dart_util.Word32 in
  match e with
  | Instr.Const n -> n
  | Instr.Load a -> read_checked t (eval_concrete t ~base a)
  | Instr.Addr_global g -> global_addr t g
  | Instr.Addr_local off -> base + off
  | Instr.Addr_string i -> t.string_addrs.(i)
  | Instr.Unop (op, e1) ->
    let v = eval_concrete t ~base e1 in
    (match op with
     | Minic.Ast.Neg -> W.neg v
     | Minic.Ast.Bitnot -> W.lognot v
     | Minic.Ast.Lognot -> W.of_bool (not (W.to_bool v)))
  | Instr.Binop (op, a, b) ->
    let va = eval_concrete t ~base a in
    let vb = eval_concrete t ~base b in
    (match op with
     | Minic.Ast.Add -> W.add va vb
     | Minic.Ast.Sub -> W.sub va vb
     | Minic.Ast.Mul -> W.mul va vb
     | Minic.Ast.Div -> (try W.div va vb with Division_by_zero -> raise (Fault_exn Div_by_zero))
     | Minic.Ast.Mod -> (try W.rem va vb with Division_by_zero -> raise (Fault_exn Div_by_zero))
     | Minic.Ast.Eq -> W.of_bool (va = vb)
     | Minic.Ast.Ne -> W.of_bool (va <> vb)
     | Minic.Ast.Lt -> W.of_bool (va < vb)
     | Minic.Ast.Le -> W.of_bool (va <= vb)
     | Minic.Ast.Gt -> W.of_bool (va > vb)
     | Minic.Ast.Ge -> W.of_bool (va >= vb)
     | Minic.Ast.Band -> W.logand va vb
     | Minic.Ast.Bor -> W.logor va vb
     | Minic.Ast.Bxor -> W.logxor va vb
     | Minic.Ast.Shl -> W.shift_left va vb
     | Minic.Ast.Shr -> W.shift_right va vb)

(* ---- execution -------------------------------------------------------------- *)

let current_site t =
  match t.frames with
  | [] -> { site_fn = "<no frame>"; site_pc = 0; site_loc = Minic.Loc.dummy }
  | f :: _ ->
    let locs = f.func.Instr.locs in
    let loc =
      if f.pc >= 0 && f.pc < Array.length locs then locs.(f.pc) else Minic.Loc.dummy
    in
    { site_fn = f.func.Instr.fname; site_pc = f.pc; site_loc = loc }

let push_frame t (func : Instr.func) ~ret_dst =
  if List.length t.frames >= t.config.max_call_depth then raise (Fault_exn Call_depth);
  if t.stack_top + func.Instr.frame_size - stack_base > t.config.stack_limit then
    raise (Fault_exn Call_depth);
  let base = t.stack_top in
  Memory.alloc t.mem ~addr:base ~size:func.Instr.frame_size;
  let frame = { func; base; pc = 0; ret_dst; saved_stack_top = t.stack_top } in
  t.stack_top <- t.stack_top + func.Instr.frame_size;
  t.frames <- frame :: t.frames;
  frame

let pop_frame t =
  match t.frames with
  | [] -> assert false
  | f :: rest ->
    Memory.dealloc t.mem ~addr:f.saved_stack_top ~size:(t.stack_top - f.saved_stack_top);
    t.stack_top <- f.saved_stack_top;
    t.frames <- rest;
    f

let do_alloca t size =
  if size <= 0 then 0
  else if t.stack_top + size - stack_base > t.config.stack_limit then
    (* The paper's oSIP attack hinges on alloca failing and returning
       NULL when the request exceeds the available stack space. *)
    0
  else begin
    let addr = t.stack_top in
    Memory.alloc t.mem ~addr ~size;
    t.stack_top <- t.stack_top + size;
    addr
  end

let do_malloc t size =
  if size < 0 then 0
  else if size = 0 then begin
    (* Unique non-NULL address with no cells: any dereference faults. *)
    let addr = t.heap_top in
    t.heap_top <- t.heap_top + 1;
    Hashtbl.replace t.malloc_blocks addr 0;
    addr
  end
  else alloc_heap t size

let do_free t p =
  if p <> 0 then begin
    match Hashtbl.find_opt t.malloc_blocks p with
    | None -> raise (Fault_exn Bad_free)
    | Some size ->
      Memory.dealloc t.mem ~addr:p ~size;
      Hashtbl.remove t.malloc_blocks p
  end

(* Figure 3 order: S is updated from the pre-store memory, then M is
   written — otherwise self-referential stores like [h <- *(h+2)]
   would evaluate their source against the already-updated cell. *)
let store t (listener : listener) ~dst ~src ~base v =
  listener.on_store t ~dst ~src ~base;
  write_checked t dst v

let exec_call t listener frame ~dst ~kind ~callee ~args =
  let base = frame.base in
  let dst_addr = Option.map (fun d -> eval_concrete t ~base d) dst in
  match (kind : Minic.Tast.call_kind) with
  | Minic.Tast.Cbuiltin b ->
    let result =
      match b with
      | Minic.Tast.Bmalloc ->
        (match args with
         | [ a ] -> do_malloc t (eval_concrete t ~base a)
         | _ -> invalid_arg "malloc arity")
      | Minic.Tast.Balloca ->
        (match args with
         | [ a ] -> do_alloca t (eval_concrete t ~base a)
         | _ -> invalid_arg "alloca arity")
      | Minic.Tast.Bfree ->
        (match args with
         | [ a ] ->
           do_free t (eval_concrete t ~base a);
           0
         | _ -> invalid_arg "free arity")
      | Minic.Tast.Babort | Minic.Tast.Bassert | Minic.Tast.Bassume ->
        (* Lowered to Iabort / branches; never reaches Icall. *)
        assert false
    in
    (match dst_addr with
     | Some d -> store t listener ~dst:d ~src:(Instr.Const result) ~base result
     | None -> ());
    frame.pc <- frame.pc + 1
  | Minic.Tast.Cexternal ->
    let signature =
      match Hashtbl.find_opt t.externals callee with
      | Some s -> s
      | None ->
        (* Evaluating args is still required for faults; then treat the
           result like an input of the declared type. *)
        invalid_arg (Printf.sprintf "external function %s has no signature" callee)
    in
    (* Arguments are evaluated (for faults) and discarded: external
       functions have no side effects on program memory (paper §3.4). *)
    List.iter (fun a -> ignore (eval_concrete t ~base a)) args;
    listener.on_external t signature ~dst:dst_addr;
    frame.pc <- frame.pc + 1
  | Minic.Tast.Clibrary ->
    let impl =
      match Hashtbl.find_opt t.library_impls callee with
      | Some impl -> impl
      | None -> invalid_arg (Printf.sprintf "library function %s has no implementation" callee)
    in
    listener.on_library t ~callee ~args ~base;
    let vals = List.map (fun a -> eval_concrete t ~base a) args in
    let result = Dart_util.Word32.norm (impl t vals) in
    (match dst_addr with
     | Some d -> store t listener ~dst:d ~src:(Instr.Const result) ~base result
     | None -> ());
    frame.pc <- frame.pc + 1
  | Minic.Tast.Cprogram ->
    let func =
      match Instr.find_func t.prog callee with
      | Some f -> f
      | None -> invalid_arg (Printf.sprintf "call to unknown function %s" callee)
    in
    if List.length args <> func.Instr.nparams then
      invalid_arg (Printf.sprintf "arity mismatch calling %s" callee);
    (* Evaluate arguments in the caller's frame before pushing. *)
    let arg_values = List.map (fun a -> eval_concrete t ~base a) args in
    frame.pc <- frame.pc + 1; (* return point *)
    let callee_frame = push_frame t func ~ret_dst:dst_addr in
    List.iteri
      (fun i (v, src) ->
        let dst = callee_frame.base + func.Instr.param_offsets.(i) in
        (* The source expression is evaluated in the caller's base;
           on_store lets the symbolic layer track arguments across the
           call boundary (interprocedural tracing, paper §2.1). *)
        store t listener ~dst ~src ~base v)
      (List.combine arg_values args)

let step t listener =
  (* Returns [Some outcome] when the run ends. *)
  match t.frames with
  | [] -> Some Halted
  | frame :: _ ->
    if t.step_count >= t.config.step_limit then Some (Faulted (Step_limit, current_site t))
    else begin
      t.step_count <- t.step_count + 1;
      let code = frame.func.Instr.code in
      if frame.pc < 0 || frame.pc >= Array.length code then
        invalid_arg
          (Printf.sprintf "pc out of range in %s: %d" frame.func.Instr.fname frame.pc)
      else begin
        let site = current_site t in
        match code.(frame.pc) with
        | Instr.Iassign (d, s) ->
          let base = frame.base in
          let addr = eval_concrete t ~base d in
          let v = eval_concrete t ~base s in
          store t listener ~dst:addr ~src:s ~base v;
          frame.pc <- frame.pc + 1;
          None
        | Instr.Iif (cond, l) ->
          let base = frame.base in
          let v = eval_concrete t ~base cond in
          let taken = Dart_util.Word32.to_bool v in
          t.cond_count <- t.cond_count + 1;
          listener.on_branch t ~cond ~base ~taken ~site;
          frame.pc <- (if taken then l else frame.pc + 1);
          None
        | Instr.Igoto l ->
          frame.pc <- l;
          None
        | Instr.Icall { dst; kind; callee; args } ->
          exec_call t listener frame ~dst ~kind ~callee ~args;
          None
        | Instr.Ireturn e ->
          let v = Option.map (eval_concrete t ~base:frame.base) e in
          (* The store (and its listener notification) must happen
             while the callee frame is still mapped: the symbolic layer
             may re-evaluate [src] in the callee's frame. *)
          (match (frame.ret_dst, v, e) with
           | Some d, Some value, Some src ->
             store t listener ~dst:d ~src ~base:frame.base value
           | Some _, None, _ -> raise (Fault_exn Missing_return)
           | None, _, _ -> ()
           | Some _, Some _, None -> assert false);
          let _popped = pop_frame t in
          if t.frames = [] then Some Halted else None
        | Instr.Iabort -> Some (Faulted (Abort, site))
        | Instr.Ihalt -> Some Halted
      end
    end

let run ?args ?(listener = null_listener) t ~entry =
  let func =
    match Instr.find_func t.prog entry with
    | Some f -> f
    | None -> invalid_arg (Printf.sprintf "Machine.run: unknown entry %s" entry)
  in
  if t.frames <> [] || t.step_count > 0 then
    invalid_arg "Machine.run: machines are single-shot; load a fresh one";
  let frame = push_frame t func ~ret_dst:None in
  (match args with
   | None -> ()
   | Some vs ->
     if List.length vs <> func.Instr.nparams then
       invalid_arg "Machine.run: argument count mismatch";
     List.iteri
       (fun i v ->
         let dst = frame.base + func.Instr.param_offsets.(i) in
         let v = Dart_util.Word32.norm v in
         write_word t dst v;
         listener.on_store t ~dst ~src:(Instr.Const v) ~base:frame.base)
       vs);
  listener.on_entry t ~entry:func ~base:frame.base;
  let rec loop () =
    match step t listener with
    | Some outcome -> outcome
    | None -> loop ()
    | exception Fault_exn f -> Faulted (f, current_site t)
  in
  loop ()
