(** Concrete execution of RAM-machine programs.

    The machine owns the memory layout (globals, interned strings, a
    bump-allocated heap, a stack of frames) and detects the standard
    errors DART reports: aborts, NULL and wild dereferences, reads of
    uninitialized or freed cells, division by zero, stack exhaustion
    via the [alloca] failure model, and non-termination via a step
    budget (paper §4.3 note 9).

    A {!listener} observes stores, branches and call boundaries; the
    concolic layer implements the paper's symbolic shadow execution on
    top of it without the machine knowing anything about symbols. *)

type fault =
  | Abort (* abort() or failed assert *)
  | Null_deref
  | Invalid_deref (* unmapped address: wild pointer, use-after-free *)
  | Uninitialized_read
  | Div_by_zero
  | Step_limit (* non-termination proxy *)
  | Call_depth
  | Missing_return (* caller uses the value of a function that fell off its end *)
  | Bad_free (* free of a non-malloc'd address or double free *)

val fault_to_string : fault -> string

val fault_tag : fault -> string
(** Short stable machine-readable name ([abort], [null_deref], ...),
    round-trippable through {!fault_of_tag}; used by the checkpoint
    codec. *)

val fault_of_tag : string -> fault option

type site = { site_fn : string; site_pc : int; site_loc : Minic.Loc.t }

type outcome =
  | Halted
  | Faulted of fault * site

type t

(** Observation points. Callbacks receive the machine, so they can read
    and write memory through the public API. [base] is the frame base
    address in which [src]/[cond]/argument expressions are to be
    evaluated. *)
type listener = {
  on_store : t -> dst:int -> src:Ram.Instr.rexpr -> base:int -> unit;
      (** Immediately {e before} every memory write that carries a
          program value (assignments, parameter passing, returned
          results, builtin and library results — the latter two with a
          [Const] source), so the listener sees pre-store memory, as in
          the paper's Figure 3. *)
  on_branch : t -> cond:Ram.Instr.rexpr -> base:int -> taken:bool -> site:site -> unit;
      (** At every conditional, after its concrete evaluation. *)
  on_external : t -> Minic.Tast.fsig -> dst:int option -> unit;
      (** When an external (interface) function is called: the listener
          must supply the result by writing to [dst] (when [Some]);
          the default listener writes 0. *)
  on_library : t -> callee:string -> args:Ram.Instr.rexpr list -> base:int -> unit;
      (** Before a black-box library function executes. *)
  on_entry : t -> entry:Ram.Instr.func -> base:int -> unit;
      (** After the entry frame is set up, before the first step; the
          test driver initializes parameters here. *)
}

val null_listener : listener

type config = {
  step_limit : int;
  stack_limit : int; (* cells of stack space; exceeded => alloca returns NULL,
                        frame pushes fault with Call_depth *)
  max_call_depth : int;
}

val default_config : config

type library_impl = t -> int list -> int

val load :
  ?config:config ->
  ?library:(string * library_impl) list ->
  ?compile:bool ->
  Ram.Instr.program ->
  t
(** Build a fresh machine: globals initialized (externs left
    undefined), strings interned. [library] supplies host
    implementations for {!Minic.Tast.Clibrary} calls; a library call
    with no implementation raises [Invalid_argument].

    [compile] (default [true]) selects the compiled execution engine:
    the program is translated once into OCaml closures (constants
    folded, global and string addresses resolved, straight-line runs
    fused) and cached per [Instr.program] value, shared read-only
    across machines and domains. Observable behaviour — outcomes, step
    counts, branch order, listener callbacks — is identical to the
    tree-walking interpreter selected by [~compile:false]. *)

val precompile : Ram.Instr.program -> unit
(** Populate the shared compile cache for [prog] ahead of time, so
    e.g. parallel workers spawned afterwards all reuse one compiled
    form instead of racing to build it. Loading a machine with
    [compile:true] does this implicitly. *)

val is_compiled : t -> bool
(** Whether this machine runs the compiled engine. *)

val program : t -> Ram.Instr.program

val run : ?args:int list -> ?listener:listener -> t -> entry:string -> outcome
(** Execute [entry]. When [args] is given, parameter cells are
    initialized with those words; otherwise the listener's [on_entry]
    is expected to initialize them (unread parameters may stay
    undefined). A machine is single-shot: load a fresh one per run.
    @raise Invalid_argument if [entry] is not a defined function or the
    argument count mismatches. *)

val steps : t -> int
(** Instructions executed so far. *)

val branch_count : t -> int
(** Conditionals executed so far. *)

(* -- memory and layout, for the test driver and random initializer -- *)

val global_addr : t -> string -> int
val read_word : t -> int -> (int, Memory.read_error) result
val write_word : t -> int -> int -> unit
(** Unchecked initializing write (allocates the cell if needed). *)

val alloc_heap : t -> int -> int
(** Allocate [n] fresh undefined heap cells, returning their address. *)

val malloc_block_size : t -> int -> int option
(** Size of the live malloc/heap block starting at the given address. *)

val memory_snapshot : t -> (int * int option) list
(** All mapped cells as a sorted [(address, value)] list, [None] for
    allocated-but-undefined cells; lets differential tests compare the
    final memory of two runs cell by cell. *)

val eval_concrete : t -> base:int -> Ram.Instr.rexpr -> int
(** Evaluate an expression concretely (paper's [evaluate_concrete]).
    May raise the machine's internal fault exception; only call from
    listener callbacks during a run. *)
