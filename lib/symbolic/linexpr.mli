(** Linear expressions [c0 + c1*x1 + ... + cn*xn] over symbolic input
    variables, the fragment DART's directed search reasons about
    (paper §2.3: "the theory of integer linear constraints").

    Variables are input identifiers (allocation order of inputs during
    a run). Coefficients are arbitrary-precision to survive solver
    pivoting. *)

type var = int

type t

val const : Zarith_lite.Zint.t -> t
val of_int : int -> t
val var : var -> t
val zero : t

val is_const : t -> Zarith_lite.Zint.t option
(** [Some c] when the expression has no variables. *)

val as_var : t -> var option
(** [Some x] when the expression is exactly [1*x + 0]. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Zarith_lite.Zint.t -> t -> t
val add_const : Zarith_lite.Zint.t -> t -> t

val constant_part : t -> Zarith_lite.Zint.t
val coeff : t -> var -> Zarith_lite.Zint.t
val terms : t -> (var * Zarith_lite.Zint.t) list
(** Sorted by variable, zero coefficients omitted. *)

val vars : t -> var list
val eval : (var -> Zarith_lite.Zint.t) -> t -> Zarith_lite.Zint.t
val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Structural hash consistent with {!equal} (expressions are kept in
    canonical form, so equal expressions hash identically). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
