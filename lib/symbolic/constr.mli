(** Atomic linear constraints, normalized as [lhs REL 0].

    These are the predicates DART collects into path constraints at
    conditional statements (paper §2.1) and negates to force new
    execution paths. *)

type rel =
  | Eq0 (* lhs =  0 *)
  | Ne0 (* lhs <> 0 *)
  | Le0 (* lhs <= 0 *)
  | Lt0 (* lhs <  0 *)

type t = { lhs : Linexpr.t; rel : rel }

val make : Linexpr.t -> rel -> t

val of_comparison : Minic.Ast.binop -> Linexpr.t -> Linexpr.t -> t option
(** [of_comparison op a b] is the constraint [a op b] for a comparison
    operator, [None] for non-comparison operators. *)

val truth : Linexpr.t -> bool -> t
(** The constraint for using a linear value as a condition: [e <> 0]
    when [taken], [e = 0] otherwise. *)

val negate : t -> t
(** Logical negation; exact over the integers
    (e.g. [not (l <= 0)] is [-l < 0]). *)

val holds : (Linexpr.var -> Zarith_lite.Zint.t) -> t -> bool
(** Evaluate under an assignment of variables. *)

val vars : t -> Linexpr.var list
val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order (relation, then expression) used to canonicalise
    constraint sets, e.g. for solver-cache keys. *)

val hash : t -> int
(** Structural hash consistent with {!equal}. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
