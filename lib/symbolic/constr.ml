open Zarith_lite

type rel =
  | Eq0
  | Ne0
  | Le0
  | Lt0

type t = { lhs : Linexpr.t; rel : rel }

let make lhs rel = { lhs; rel }

let of_comparison op a b =
  match (op : Minic.Ast.binop) with
  | Minic.Ast.Eq -> Some { lhs = Linexpr.sub a b; rel = Eq0 }
  | Minic.Ast.Ne -> Some { lhs = Linexpr.sub a b; rel = Ne0 }
  | Minic.Ast.Lt -> Some { lhs = Linexpr.sub a b; rel = Lt0 }
  | Minic.Ast.Le -> Some { lhs = Linexpr.sub a b; rel = Le0 }
  | Minic.Ast.Gt -> Some { lhs = Linexpr.sub b a; rel = Lt0 }
  | Minic.Ast.Ge -> Some { lhs = Linexpr.sub b a; rel = Le0 }
  | Minic.Ast.Add | Minic.Ast.Sub | Minic.Ast.Mul | Minic.Ast.Div | Minic.Ast.Mod
  | Minic.Ast.Band | Minic.Ast.Bor | Minic.Ast.Bxor | Minic.Ast.Shl | Minic.Ast.Shr ->
    None

let truth e taken = { lhs = e; rel = (if taken then Ne0 else Eq0) }

let negate c =
  match c.rel with
  | Eq0 -> { c with rel = Ne0 }
  | Ne0 -> { c with rel = Eq0 }
  | Le0 -> { lhs = Linexpr.neg c.lhs; rel = Lt0 } (* not (l <= 0)  <=>  -l < 0 *)
  | Lt0 -> { lhs = Linexpr.neg c.lhs; rel = Le0 } (* not (l < 0)   <=>  -l <= 0 *)

let holds env c =
  let v = Linexpr.eval env c.lhs in
  match c.rel with
  | Eq0 -> Zint.is_zero v
  | Ne0 -> not (Zint.is_zero v)
  | Le0 -> Zint.sign v <= 0
  | Lt0 -> Zint.sign v < 0

let vars c = Linexpr.vars c.lhs

let equal a b = a.rel = b.rel && Linexpr.equal a.lhs b.lhs

let rel_rank = function
  | Eq0 -> 0
  | Ne0 -> 1
  | Le0 -> 2
  | Lt0 -> 3

(* Total order used to canonicalise constraint sets for solve-cache
   keys: relation first, then the (already canonical) expression. *)
let compare a b =
  let c = Stdlib.compare (rel_rank a.rel) (rel_rank b.rel) in
  if c <> 0 then c else Linexpr.compare a.lhs b.lhs

let hash c = (rel_rank c.rel * 1000003) + Linexpr.hash c.lhs

let rel_to_string = function
  | Eq0 -> "= 0"
  | Ne0 -> "!= 0"
  | Le0 -> "<= 0"
  | Lt0 -> "< 0"

let to_string c = Printf.sprintf "%s %s" (Linexpr.to_string c.lhs) (rel_to_string c.rel)
let pp fmt c = Format.pp_print_string fmt (to_string c)
