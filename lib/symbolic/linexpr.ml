open Zarith_lite

type var = int

(* Terms sorted by variable id, zero coefficients never stored. *)
type t = { const : Zint.t; terms : (var * Zint.t) list }

let const c = { const = c; terms = [] }
let of_int n = const (Zint.of_int n)
let zero = const Zint.zero
let var x = { const = Zint.zero; terms = [ (x, Zint.one) ] }

let is_const e = if e.terms = [] then Some e.const else None

let as_var e =
  match (Zint.is_zero e.const, e.terms) with
  | true, [ (x, c) ] when Zint.is_one c -> Some x
  | _ -> None

(* Merge sorted term lists, combining coefficients with [sign] applied
   to the right operand's. *)
let rec merge_terms ~sign a b =
  match (a, b) with
  | [], rest -> List.filter_map (fun (x, c) -> let c = sign c in if Zint.is_zero c then None else Some (x, c)) rest
  | rest, [] -> rest
  | (xa, ca) :: ta, (xb, cb) :: tb ->
    if xa < xb then (xa, ca) :: merge_terms ~sign ta b
    else if xa > xb then (xb, sign cb) :: merge_terms ~sign a tb
    else begin
      let c = Zint.add ca (sign cb) in
      if Zint.is_zero c then merge_terms ~sign ta tb else (xa, c) :: merge_terms ~sign ta tb
    end

let add a b =
  { const = Zint.add a.const b.const; terms = merge_terms ~sign:Fun.id a.terms b.terms }

let sub a b =
  { const = Zint.sub a.const b.const; terms = merge_terms ~sign:Zint.neg a.terms b.terms }

let neg e =
  { const = Zint.neg e.const; terms = List.map (fun (x, c) -> (x, Zint.neg c)) e.terms }

let scale k e =
  if Zint.is_zero k then zero
  else { const = Zint.mul k e.const; terms = List.map (fun (x, c) -> (x, Zint.mul k c)) e.terms }

let add_const k e = { e with const = Zint.add k e.const }

let constant_part e = e.const

let coeff e x =
  match List.assoc_opt x e.terms with
  | Some c -> c
  | None -> Zint.zero

let terms e = e.terms
let vars e = List.map fst e.terms

let eval env e =
  List.fold_left (fun acc (x, c) -> Zint.add acc (Zint.mul c (env x))) e.const e.terms

let equal a b = Zint.equal a.const b.const && List.equal (fun (xa, ca) (xb, cb) -> xa = xb && Zint.equal ca cb) a.terms b.terms

let compare a b =
  let c = Zint.compare a.const b.const in
  if c <> 0 then c
  else
    List.compare (fun (xa, ca) (xb, cb) ->
        let c = Stdlib.compare xa xb in
        if c <> 0 then c else Zint.compare ca cb)
      a.terms b.terms

(* Terms are kept sorted with no zero coefficients, so the structural
   fold is a sound hash for the canonical form. *)
let hash e =
  List.fold_left
    (fun acc (x, c) -> (acc * 31) + (x * 7) + Zint.hash c)
    (Zint.hash e.const) e.terms

let to_string e =
  let term_str (x, c) =
    if Zint.is_one c then Printf.sprintf "x%d" x
    else if Zint.equal c Zint.minus_one then Printf.sprintf "-x%d" x
    else Printf.sprintf "%s*x%d" (Zint.to_string c) x
  in
  match e.terms with
  | [] -> Zint.to_string e.const
  | ts ->
    let body = String.concat " + " (List.map term_str ts) in
    if Zint.is_zero e.const then body
    else Printf.sprintf "%s + %s" body (Zint.to_string e.const)

let pp fmt e = Format.pp_print_string fmt (to_string e)
