(* Post-hoc time attribution over a recorded trace ([dartc profile]).
   Everything here is a pure function of the event list, so the output
   is deterministic for a deterministic trace — the histograms are
   rebuilt from per-event durations rather than wall clock. *)

type site_prof = {
  sp_fn : string;
  sp_pc : int;
  sp_queries : int;
  sp_total_ns : int64;
  sp_mean_ns : int64;
}

type target_prof = {
  tp_name : string;
  tp_slices : int;
  tp_runs : int;
  tp_total_ns : int64;
  tp_retired : string option; (* retire reason, None if never retired *)
}

type t = {
  p_events : int;
  p_phase_ns : (Telemetry.phase * int64) list; (* summed Phase_total *)
  p_run_hist : Telemetry.Hist.t; (* from Run_end durations *)
  p_solve_hist : Telemetry.Hist.t; (* from Solve_query durations *)
  p_sites : site_prof list; (* by total solver time, descending *)
  p_targets : target_prof list; (* campaign slices, by total time, descending *)
  p_rounds : int; (* Round_end events *)
}

let of_events evs =
  let phase_tbl : (Telemetry.phase, int64) Hashtbl.t = Hashtbl.create 4 in
  let run_hist = Telemetry.Hist.create () in
  let solve_hist = Telemetry.Hist.create () in
  let site_tbl : (string * int, int * int64) Hashtbl.t = Hashtbl.create 64 in
  let target_tbl : (string, int * int * int64 * string option) Hashtbl.t =
    Hashtbl.create 32
  in
  (* Preserve first-seen order of targets so ties sort stably. *)
  let target_order = ref [] in
  let rounds = ref 0 in
  let count = ref 0 in
  List.iter
    (fun ev ->
      incr count;
      match ev with
      | Telemetry.Phase_total { phase; dur_ns } ->
        let prev = Option.value ~default:0L (Hashtbl.find_opt phase_tbl phase) in
        Hashtbl.replace phase_tbl phase (Int64.add prev dur_ns)
      | Telemetry.Run_end { dur_ns; _ } -> Telemetry.Hist.add run_hist dur_ns
      | Telemetry.Solve_query { fn; pc; dur_ns; _ } ->
        Telemetry.Hist.add solve_hist dur_ns;
        let n, ns =
          Option.value ~default:(0, 0L) (Hashtbl.find_opt site_tbl (fn, pc))
        in
        Hashtbl.replace site_tbl (fn, pc) (n + 1, Int64.add ns dur_ns)
      | Telemetry.Slice_end { target; runs; dur_ns; _ } ->
        if not (Hashtbl.mem target_tbl target) then target_order := target :: !target_order;
        let slices, truns, tns, retired =
          Option.value ~default:(0, 0, 0L, None) (Hashtbl.find_opt target_tbl target)
        in
        Hashtbl.replace target_tbl target
          (slices + 1, truns + runs, Int64.add tns dur_ns, retired)
      | Telemetry.Target_retired { target; reason } ->
        if not (Hashtbl.mem target_tbl target) then target_order := target :: !target_order;
        let slices, truns, tns, _ =
          Option.value ~default:(0, 0, 0L, None) (Hashtbl.find_opt target_tbl target)
        in
        Hashtbl.replace target_tbl target (slices, truns, tns, Some reason)
      | Telemetry.Round_end _ -> incr rounds
      | _ -> ())
    evs;
  let phase_ns =
    List.map
      (fun p -> (p, Option.value ~default:0L (Hashtbl.find_opt phase_tbl p)))
      Telemetry.phases
  in
  let sites =
    Hashtbl.fold
      (fun (fn, pc) (n, ns) acc ->
        { sp_fn = fn;
          sp_pc = pc;
          sp_queries = n;
          sp_total_ns = ns;
          sp_mean_ns = (if n = 0 then 0L else Int64.div ns (Int64.of_int n)) }
        :: acc)
      site_tbl []
    |> List.sort (fun a b ->
           match Int64.compare b.sp_total_ns a.sp_total_ns with
           | 0 -> compare (a.sp_fn, a.sp_pc) (b.sp_fn, b.sp_pc)
           | c -> c)
  in
  let order = List.rev !target_order in
  let index_of name =
    let rec go i = function
      | [] -> max_int
      | x :: _ when x = name -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 order
  in
  let targets =
    Hashtbl.fold
      (fun name (slices, runs, ns, retired) acc ->
        { tp_name = name; tp_slices = slices; tp_runs = runs; tp_total_ns = ns;
          tp_retired = retired }
        :: acc)
      target_tbl []
    |> List.sort (fun a b ->
           match Int64.compare b.tp_total_ns a.tp_total_ns with
           | 0 -> compare (index_of a.tp_name) (index_of b.tp_name)
           | c -> c)
  in
  { p_events = !count;
    p_phase_ns = phase_ns;
    p_run_hist = run_hist;
    p_solve_hist = solve_hist;
    p_sites = sites;
    p_targets = targets;
    p_rounds = !rounds }

let pct part total =
  if Int64.compare total 0L > 0 then
    100.0 *. Int64.to_float part /. Int64.to_float total
  else 0.0

let hist_dump buf name h =
  Buffer.add_string buf
    (Printf.sprintf "%s latency (%d samples, mean %s, max %s):\n" name
       (Telemetry.Hist.count h)
       (Telemetry.ns_to_string (Telemetry.Hist.mean_ns h))
       (Telemetry.ns_to_string (Telemetry.Hist.max_ns h)));
  if Telemetry.Hist.count h = 0 then Buffer.add_string buf "  (empty)\n"
  else begin
    Buffer.add_string buf
      (Printf.sprintf "  p50 <=%s  p90 <=%s  p99 <=%s\n"
         (Telemetry.ns_to_string (Telemetry.Hist.p50 h))
         (Telemetry.ns_to_string (Telemetry.Hist.p90 h))
         (Telemetry.ns_to_string (Telemetry.Hist.p99 h)));
    let total = Telemetry.Hist.count h in
    List.iter
      (fun (lo, hi, n) ->
        let bar = String.make (max 1 (40 * n / total)) '#' in
        Buffer.add_string buf
          (Printf.sprintf "  %10s..%-10s %7d  %s\n" (Telemetry.ns_to_string lo)
             (Telemetry.ns_to_string (Int64.sub hi 1L))
             n bar))
      (Telemetry.Hist.buckets h)
  end

let to_string ?(top = 10) p =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "profile: %d events\n" p.p_events);
  let total = List.fold_left (fun acc (_, ns) -> Int64.add acc ns) 0L p.p_phase_ns in
  Buffer.add_string buf "phases:\n";
  List.iter
    (fun (ph, ns) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-8s %12s  (%5.1f%%)\n"
           (Telemetry.phase_to_string ph)
           (Telemetry.ns_to_string ns) (pct ns total)))
    p.p_phase_ns;
  hist_dump buf "run" p.p_run_hist;
  hist_dump buf "solve" p.p_solve_hist;
  (match p.p_sites with
   | [] -> ()
   | sites ->
     let shown = List.filteri (fun i _ -> i < top) sites in
     Buffer.add_string buf
       (Printf.sprintf "hottest solver sites (top %d of %d, by total time):\n"
          (List.length shown) (List.length sites));
     List.iter
       (fun s ->
         Buffer.add_string buf
           (Printf.sprintf "  %-28s %6d queries  total %10s  mean %10s\n"
              (Printf.sprintf "%s:%d" s.sp_fn s.sp_pc)
              s.sp_queries
              (Telemetry.ns_to_string s.sp_total_ns)
              (Telemetry.ns_to_string s.sp_mean_ns)))
       shown);
  (match p.p_targets with
   | [] -> ()
   | targets ->
     let ttotal =
       List.fold_left (fun acc t -> Int64.add acc t.tp_total_ns) 0L targets
     in
     Buffer.add_string buf
       (Printf.sprintf "campaign targets (%d, %d rounds, by total time):\n"
          (List.length targets) p.p_rounds);
     List.iter
       (fun t ->
         Buffer.add_string buf
           (Printf.sprintf "  %-28s %3d slices %6d runs  %10s  (%5.1f%%)  %s\n" t.tp_name
              t.tp_slices t.tp_runs
              (Telemetry.ns_to_string t.tp_total_ns)
              (pct t.tp_total_ns ttotal)
              (match t.tp_retired with
               | Some reason -> "retired: " ^ reason
               | None -> "unfinished")))
       targets);
  Buffer.contents buf
