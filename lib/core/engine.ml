type outcome =
  | Directed_report of Driver.report
  | Random_report of Random_search.report
  | Parallel_report of Parallel.report

let effective_options session (target : Target.t) =
  let base = Session.options session in
  let budget = base.Driver.Options.budget in
  let budget =
    match target.Target.tg_max_runs with
    | Some m -> { budget with Driver.Options.max_runs = m }
    | None -> budget
  in
  let budget =
    match target.Target.tg_time_budget_ns with
    | Some t -> { budget with Driver.Options.time_budget_ns = Some t }
    | None -> budget
  in
  let telemetry =
    match target.Target.tg_sink with
    | None -> base.Driver.Options.telemetry
    | Some sink ->
      (* A target-private sink (campaign slice ring) also takes over
         status reporting: the campaign aggregates across targets and
         writes the status file itself, so the slice must not. *)
      { base.Driver.Options.telemetry with Telemetry.sink; status_path = None }
  in
  { base with Driver.Options.budget; telemetry }

let run ?(mode = `Directed) ?resume ?on_checkpoint ?checkpoint_every ?metrics session
    target =
  let has_checkpointing =
    resume <> None || on_checkpoint <> None || checkpoint_every <> None
  in
  if has_checkpointing && mode = `Random then
    invalid_arg "Engine.run: checkpoint/resume describe a directed search";
  if has_checkpointing && Session.jobs session <> 1 then
    invalid_arg "Engine.run: checkpoint/resume require a sequential session (jobs = 1)";
  let metrics = match metrics with Some m -> m | None -> Telemetry.create_metrics () in
  let prog = Session.prepare ~metrics session target in
  let options = effective_options session target in
  let sink = options.Driver.Options.telemetry.Telemetry.sink in
  match mode with
  | `Random ->
    let deadline =
      Option.map
        (fun ns -> Int64.add (Telemetry.now ()) ns)
        options.Driver.Options.budget.Driver.Options.time_budget_ns
    in
    let report =
      Random_search.run ~seed:options.Driver.Options.search.Driver.Options.seed
        ~max_runs:options.Driver.Options.budget.Driver.Options.max_runs ?deadline
        ~exec:options.Driver.Options.exec ~telemetry:sink ~metrics prog
    in
    if Telemetry.enabled sink then begin
      Telemetry.emit_phase_totals sink metrics;
      Telemetry.flush sink
    end;
    Random_report report
  | `Directed ->
    if Session.jobs session = 1 then begin
      (* Sequential: the search shares the caller's metrics record, so
         a preparation performed just above (cache miss) lands in the
         same phase totals the report carries. *)
      let ctx =
        Driver.make_ctx ~should_stop:(Session.should_stop session) ~metrics
          ?deadline:(Driver.deadline_of_options options)
          ~incremental:options.Driver.Options.accel.Driver.Options.use_incremental
          ~use_breaker:options.Driver.Options.accel.Driver.Options.use_breaker
          ?breaker:target.Target.tg_breaker
          ~seed:options.Driver.Options.search.Driver.Options.seed
          ~max_runs:options.Driver.Options.budget.Driver.Options.max_runs ()
      in
      Directed_report
        (Driver.search ?resume ?on_checkpoint ?checkpoint_every ~ctx ~options prog)
    end
    else begin
      let popts =
        Parallel.options ~jobs:(Session.jobs session)
          ~portfolio:(Session.portfolio session) options
      in
      let r = Parallel.run ~options:popts prog in
      (* Workers never see preparation time: fold it into the merged
         metrics (and the trace) here. *)
      Telemetry.add_metrics ~into:r.Parallel.merged.Driver.metrics metrics;
      if Telemetry.enabled sink then begin
        Telemetry.emit sink
          (Telemetry.Phase_total
             { phase = Telemetry.Lower; dur_ns = metrics.Telemetry.lower_ns });
        Telemetry.flush sink
      end;
      Parallel_report r
    end

let exit_code = function
  | Directed_report r | Parallel_report { Parallel.merged = r; _ } -> (
    match r.Driver.verdict with
    | Driver.Bug_found _ -> 1
    | Driver.Complete | Driver.Budget_exhausted -> 0
    | Driver.Time_exhausted | Driver.Interrupted -> 3)
  | Random_report r -> (
    match r.Random_search.verdict with
    | `Bug_found _ -> 1
    | `No_bug -> 0
    | `Time_exhausted | `Interrupted -> 3)
