(** Which pending branch the directed search flips next (paper
    footnote 4: "a depth-first search is used for exposition, but the
    next branch to be forced could be selected using a different
    strategy, e.g., randomly or in a breadth-first manner"). *)

type t =
  | Dfs (* deepest pending branch: the paper's default *)
  | Bfs (* shallowest pending branch *)
  | Random_branch

let to_string = function
  | Dfs -> "dfs"
  | Bfs -> "bfs"
  | Random_branch -> "random-branch"

let of_string = function
  | "dfs" -> Some Dfs
  | "bfs" -> Some Bfs
  | "random" | "random-branch" -> Some Random_branch
  | _ -> None

(* The candidate set is an ascending array of pending branch indices
   with an active window [lo, hi).  Every strategy only ever shrinks
   the window from one end (Dfs from the top, Bfs from the bottom) or
   swap-removes an interior element (Random_branch, which does not
   need the order), so [choose] and [remove] are O(1) — the previous
   list representation cost O(n) per pick (List.nth) and O(n) per
   Unsat re-filter, quadratic over a deep stack. *)
type candidates = {
  arr : int array;
  mutable lo : int;
  mutable hi : int; (* active window is arr.[lo, hi) *)
  mutable last_pos : int; (* position of the last [choose] result *)
}

let candidates arr = { arr; lo = 0; hi = Array.length arr; last_pos = -1 }
let candidates_of_list l = candidates (Array.of_list l)
let cardinal c = c.hi - c.lo
let to_list c = Array.to_list (Array.sub c.arr c.lo (c.hi - c.lo))

let choose t rng c =
  if c.lo >= c.hi then None
  else begin
    let pos =
      match t with
      | Dfs -> c.hi - 1
      | Bfs -> c.lo
      | Random_branch -> c.lo + Dart_util.Prng.int_below rng (c.hi - c.lo)
    in
    c.last_pos <- pos;
    Some c.arr.(pos)
  end

(* Discard candidates after the solver failed (Unsat/Unknown) on the
   branch last returned by [choose].  Figure 5 recurses with ktry = j:
   depth-first discards the failed branch and everything deeper; the
   other strategies just drop the one candidate. *)
let remove_failed t c =
  if c.last_pos < c.lo || c.last_pos >= c.hi then
    invalid_arg "Strategy.remove_failed: no preceding choose";
  (match t with
   | Dfs -> c.hi <- c.last_pos
   | Bfs -> c.lo <- c.last_pos + 1
   | Random_branch ->
     c.arr.(c.last_pos) <- c.arr.(c.hi - 1);
     c.hi <- c.hi - 1);
  c.last_pos <- -1
