let flag = Atomic.make false
let request () = Atomic.set flag true
let requested () = Atomic.get flag
let reset () = Atomic.set flag false
