(** Multi-domain directed search.

    The paper's outer loop (§2.6, Figure 2) restarts the directed
    search from fresh random seed points whenever incompleteness forces
    a restart; restarts are independent, hence embarrassingly parallel.
    [run] shards the run budget across [jobs] worker domains, each
    executing an independent {!Driver.search} with its own PRNG stream,
    input vector and solver stats — optionally with a different
    {!Strategy.t} drawn from a portfolio — and merges the worker
    reports.

    Determinism contract:
    - [jobs = 1] reproduces {!Driver.run} bit for bit (same seed, same
      budget, no merge pass).
    - For any [jobs = N], each worker's search is a deterministic
      function of [(base seed, worker index, budget share)]. The
      merged *set* of deduped bugs, the coverage union and the verdict
      constructor are reproducible across runs on no-bug workloads;
      with [stop_on_first_bug] cancellation, late workers may drain at
      different run counts across executions, but any bug reported is
      always a real, replayable witness and single-defect workloads
      yield the same verdict and deduped bug set as [jobs = 1]. *)

type options = {
  base : Driver.options;
      (** [base.budget.max_runs] is the {e total} budget, sharded
          across workers; [base.search.seed] seeds worker 0 directly
          and derives the other workers' streams.
          [base.telemetry.sink] receives the merged trace: with more
          than one worker each domain traces into a private ring of
          [base.telemetry.worker_buffer] events, replayed into the main
          sink in worker order at join (bracketed by [Worker_spawn] /
          [Worker_drain] events). *)
  jobs : int; (* 0 = [Domain.recommended_domain_count ()] *)
  portfolio : Strategy.t list;
      (** Cycled across workers ([worker i] gets [i mod length]);
          empty = every worker uses [base.search.strategy]. *)
}

val options : ?jobs:int -> ?portfolio:Strategy.t list -> Driver.options -> options
(** [options base] defaults to [jobs = 1] and an empty portfolio. *)

type worker_report = {
  w_id : int;
  w_seed : int;
  w_strategy : Strategy.t;
  w_report : Driver.report;
}

type report = {
  jobs : int; (* actual worker count after resolving [jobs = 0] *)
  merged : Driver.report;
  workers : worker_report list; (* in worker-id order *)
}

val worker_seeds : base_seed:int -> int -> int array
(** Per-worker PRNG seeds: worker 0 gets [base_seed] itself, the rest
    get splitmix-derived values — a pure function of the base seed. *)

val budget_shares : total:int -> int -> int array
(** Shard [total] runs over [n] workers; shares sum to exactly
    [total], first workers taking the remainder. *)

val merge : Driver.report list -> Driver.report
(** Merge worker reports: bugs deduped by {!Driver.bug_key} (keeping
    the cheapest witness, ordered by key), branch-direction coverage
    unioned and sorted, run/step/restart/path counters, solver stats
    and phase metrics summed (so merged timings read as CPU time, not
    wall clock), completeness flags conjoined. The verdict is
    [Bug_found] if any worker found a bug, else [Complete] if any
    worker's DFS search finished exhaustively, else
    [Budget_exhausted].
    @raise Invalid_argument on the empty list. *)

val run : ?options:options -> Ram.Instr.program -> report
(** Run the parallel search on a prepared program (entry point
    {!Driver_gen.wrapper_name}). With [stop_on_first_bug], the first
    worker to find a bug flags a shared atomic and the others drain at
    their next run boundary.
    @raise Invalid_argument if [jobs < 0]. *)

val report_to_string : report -> string
(** The merged report followed by a one-line per-worker summary. *)
