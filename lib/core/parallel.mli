(** Multi-domain directed search.

    The paper's outer loop (§2.6, Figure 2) restarts the directed
    search from fresh random seed points whenever incompleteness forces
    a restart; restarts are independent, hence embarrassingly parallel.
    [run] shards the run budget across [jobs] worker domains, each
    executing an independent {!Driver.search} with its own PRNG stream,
    input vector and solver stats — optionally with a different
    {!Strategy.t} drawn from a portfolio — and merges the worker
    reports.

    Determinism contract:
    - [jobs = 1] reproduces {!Driver.run} bit for bit (same seed, same
      budget, no merge pass).
    - For any [jobs = N], each worker's search is a deterministic
      function of [(base seed, worker index, budget share)]. The
      merged *set* of deduped bugs, the coverage union and the verdict
      constructor are reproducible across runs on no-bug workloads;
      with [stop_on_first_bug] cancellation, late workers may drain at
      different run counts across executions, but any bug reported is
      always a real, replayable witness and single-defect workloads
      yield the same verdict and deduped bug set as [jobs = 1]. *)

type options = {
  base : Driver.options;
      (** [base.budget.max_runs] is the {e total} budget, sharded
          across workers; [base.search.seed] seeds worker 0 directly
          and derives the other workers' streams.
          [base.telemetry.sink] receives the merged trace: with more
          than one worker each domain traces into a private ring of
          [base.telemetry.worker_buffer] events, replayed into the main
          sink in worker order at join (bracketed by [Worker_spawn] /
          [Worker_drain] events). *)
  jobs : int; (* 0 = [Domain.recommended_domain_count ()] *)
  portfolio : Strategy.t list;
      (** Cycled across workers ([worker i] gets [i mod length]);
          empty = every worker uses [base.search.strategy]. *)
}

val options : ?jobs:int -> ?portfolio:Strategy.t list -> Driver.options -> options
(** [options base] defaults to [jobs = 1] and an empty portfolio. *)

type worker_report = {
  w_id : int;
  w_seed : int;
  w_strategy : Strategy.t;
  w_report : Driver.report;
}

type crash = {
  c_worker : int; (* worker slot that died *)
  c_seed : int; (* the seed of the attempt that crashed *)
  c_reason : string; (* printed exception *)
  c_respawned : bool;
      (* [true]: the supervisor restarted the slot once with a fresh
         derived seed and its full budget share; [false]: the respawn
         itself crashed and the share was abandoned *)
}

type report = {
  jobs : int; (* actual worker count after resolving [jobs = 0] *)
  merged : Driver.report;
  workers : worker_report list;
      (* surviving workers (respawns included), in worker-id order *)
  crashes : crash list; (* in worker-id order; [] on a healthy run *)
}

val worker_seeds : base_seed:int -> int -> int array
(** Per-worker PRNG seeds: worker 0 gets [base_seed] itself, the rest
    get splitmix-derived values — a pure function of the base seed. *)

val budget_shares : total:int -> int -> int array
(** Shard [total] runs over [n] workers; shares sum to exactly
    [total], first workers taking the remainder. *)

val merge : Driver.report list -> Driver.report
(** Merge worker reports: bugs deduped by {!Driver.bug_key} (keeping
    the cheapest witness, ordered by key), branch-direction coverage
    unioned and sorted, run/step/restart/path counters, solver stats
    and phase metrics summed (so merged timings read as CPU time, not
    wall clock), completeness flags conjoined. The verdict is
    [Bug_found] if any worker found a bug, else [Complete] if any
    worker's DFS search finished exhaustively, else the most
    informative partial cause across workers ([Interrupted], then
    [Time_exhausted], then [Budget_exhausted]).
    @raise Invalid_argument on the empty list. *)

val run : ?options:options -> Ram.Instr.program -> report
(** Run the parallel search on a prepared program (entry point
    {!Driver_gen.wrapper_name}). With [stop_on_first_bug], the first
    worker to find a bug flags a shared atomic and the others drain at
    their next run boundary. [base.budget.time_budget_ns] is turned
    into one absolute deadline shared by every worker.

    Crash supervision: a worker whose search raises never takes the
    join down — the failure is recorded as a {!crash} (and a
    [Telemetry.Worker_crash] event), every domain is still joined, the
    surviving workers' rings are replayed and the sink flushed. Each
    crashed slot is respawned exactly once with a deterministically
    derived fresh seed and the slot's full budget share; if the respawn
    crashes too, the share is abandoned and the merge proceeds over the
    survivors (an all-crashed run merges to an empty
    [Budget_exhausted] report).
    @raise Invalid_argument if [jobs < 0]. *)

val report_to_string : report -> string
(** The merged report followed by a one-line per-worker summary. *)
