(* Checkpoint files: a line-based, versioned text codec for
   Driver.snapshot. See checkpoint.mli for the contract. The format is
   deliberately boring — one space-separated record per line, strings
   percent-escaped — so a checkpoint survives inspection with a pager
   and diffs meaningfully in CI artifacts. *)

let magic = "dart-checkpoint"
let version = 2

type meta = {
  m_seed : int;
  m_depth : int;
  m_max_runs : int;
  m_strategy : Strategy.t;
  m_incremental : bool;
  m_shared_cache : bool;
}

module O = Driver.Options

let meta_of_options (options : Driver.options) =
  { m_seed = options.O.search.O.seed;
    m_depth = options.O.search.O.depth;
    m_max_runs = options.O.budget.O.max_runs;
    m_strategy = options.O.search.O.strategy;
    m_incremental = options.O.accel.O.use_incremental;
    m_shared_cache = options.O.accel.O.use_shared_cache }

let check_meta ~expected ~found =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let onoff b = if b then "on" else "off" in
  if found.m_seed <> expected.m_seed then
    fail "checkpoint was taken with --seed %d, not %d" found.m_seed expected.m_seed
  else if found.m_depth <> expected.m_depth then
    fail "checkpoint was taken with --depth %d, not %d" found.m_depth expected.m_depth
  else if found.m_strategy <> expected.m_strategy then
    fail "checkpoint was taken with --strategy %s, not %s"
      (Strategy.to_string found.m_strategy)
      (Strategy.to_string expected.m_strategy)
  else if found.m_incremental <> expected.m_incremental then
    fail "checkpoint was taken with incremental solving %s, not %s"
      (onoff found.m_incremental)
      (onoff expected.m_incremental)
  else if found.m_shared_cache <> expected.m_shared_cache then
    fail "checkpoint was taken with the shared solve store %s, not %s"
      (onoff found.m_shared_cache)
      (onoff expected.m_shared_cache)
  else Ok ()

(* Strings (function names, file paths) are %-escaped so every record
   stays one line of space-separated tokens. *)
let esc s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' | '%' | '\n' | '\t' | '\r' ->
        Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

exception Bad of string

let unesc s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
     | '%' ->
       if !i + 2 >= n then raise (Bad "truncated %-escape");
       (match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
        | Some code -> Buffer.add_char buf (Char.chr (code land 0xff))
        | None -> raise (Bad "bad %-escape"));
       i := !i + 2
     | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let escape = esc
let unescape s = match unesc s with v -> Ok v | exception Bad msg -> Error msg

let bool_tag b = if b then "1" else "0"

let to_string (meta : meta) (s : Driver.snapshot) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "%s v%d" magic version;
  line "meta seed=%d depth=%d max_runs=%d strategy=%s incremental=%s shared_cache=%s"
    meta.m_seed meta.m_depth meta.m_max_runs
    (Strategy.to_string meta.m_strategy)
    (bool_tag meta.m_incremental)
    (bool_tag meta.m_shared_cache);
  line "pending_restart %s" (bool_tag s.Driver.sn_pending_restart);
  line "rng %Ld" s.Driver.sn_rng;
  line "counters runs=%d restarts=%d total_steps=%d paths=%d resource_limited=%d"
    s.Driver.sn_runs s.Driver.sn_restarts s.Driver.sn_total_steps s.Driver.sn_paths
    s.Driver.sn_resource_limited;
  line "flags all_linear=%s all_locs_definite=%s"
    (bool_tag s.Driver.sn_all_linear)
    (bool_tag s.Driver.sn_all_locs_definite);
  let stack = s.Driver.sn_stack in
  Buffer.add_string buf (Printf.sprintf "stack %d" (Array.length stack));
  Array.iter
    (fun (br : Concolic.branch_record) ->
      Buffer.add_string buf
        (Printf.sprintf " %s:%s" (bool_tag br.Concolic.br_branch)
           (bool_tag br.Concolic.br_done)))
    stack;
  Buffer.add_char buf '\n';
  line "im %d" (List.length s.Driver.sn_im);
  List.iter
    (fun (id, value, kind) -> line "input %d %d %s" id value (Inputs.kind_tag kind))
    s.Driver.sn_im;
  line "coverage %d" (List.length s.Driver.sn_coverage);
  List.iter
    (fun (fn, pc, dir) -> line "cover %s %d %s" (esc fn) pc (bool_tag dir))
    s.Driver.sn_coverage;
  line "stats %d" (List.length s.Driver.sn_stats);
  List.iter (fun (k, v) -> line "stat %s %d" (esc k) v) s.Driver.sn_stats;
  line "bugs %d" (List.length s.Driver.sn_bugs);
  List.iter
    (fun (b : Driver.bug) ->
      let loc = b.Driver.bug_site.Machine.site_loc in
      Buffer.add_string buf
        (Printf.sprintf "bug %s %s %d %s %d %d %d %d"
           (Machine.fault_tag b.Driver.bug_fault)
           (esc b.Driver.bug_site.Machine.site_fn)
           b.Driver.bug_site.Machine.site_pc (esc loc.Minic.Loc.file)
           loc.Minic.Loc.line loc.Minic.Loc.col b.Driver.bug_run
           (List.length b.Driver.bug_inputs));
      List.iter
        (fun (id, v) -> Buffer.add_string buf (Printf.sprintf " %d:%d" id v))
        b.Driver.bug_inputs;
      Buffer.add_char buf '\n')
    s.Driver.sn_bugs;
  line "end";
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let lines = ref (List.filter (fun l -> l <> "") lines) in
  let next what =
    match !lines with
    | [] -> raise (Bad (Printf.sprintf "unexpected end of file, wanted %s" what))
    | l :: rest ->
      lines := rest;
      l
  in
  let tokens l = String.split_on_char ' ' l in
  let int_tok what t =
    match int_of_string_opt t with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "bad integer in %s: %S" what t))
  in
  let bool_tok what = function
    | "0" -> false
    | "1" -> true
    | t -> raise (Bad (Printf.sprintf "bad boolean in %s: %S" what t))
  in
  (* "k=v" fields in a fixed order, as written by [to_string]. *)
  let kv what key t =
    match String.index_opt t '=' with
    | Some i when String.sub t 0 i = key ->
      String.sub t (i + 1) (String.length t - i - 1)
    | _ -> raise (Bad (Printf.sprintf "expected %s=... in %s, got %S" key what t))
  in
  let expect_counted what =
    match tokens (next what) with
    | [ tag; count ] when tag = what -> int_tok what count
    | _ -> raise (Bad (Printf.sprintf "expected %S record" what))
  in
  try
    (match tokens (next "magic") with
     | [ m; v ] when m = magic ->
       if v <> Printf.sprintf "v%d" version then
         raise (Bad (Printf.sprintf "unsupported checkpoint version %s (this build reads v%d)" v version))
     | m :: _ when m = "dart-campaign" ->
       (* The sibling format: campaigns checkpoint finished targets, not
          one search's snapshot. Point the caller at the right door. *)
       raise (Bad "this is a campaign checkpoint; resume it with `dartc campaign --resume`")
     | _ -> raise (Bad "not a dart checkpoint file"));
    let meta =
      match tokens (next "meta") with
      | [ "meta"; seed; depth; max_runs; strategy; incremental; shared_cache ] ->
        let strategy_name = kv "meta" "strategy" strategy in
        let m_strategy =
          match Strategy.of_string strategy_name with
          | Some s -> s
          | None -> raise (Bad (Printf.sprintf "unknown strategy %S" strategy_name))
        in
        { m_seed = int_tok "meta" (kv "meta" "seed" seed);
          m_depth = int_tok "meta" (kv "meta" "depth" depth);
          m_max_runs = int_tok "meta" (kv "meta" "max_runs" max_runs);
          m_strategy;
          m_incremental = bool_tok "meta" (kv "meta" "incremental" incremental);
          m_shared_cache = bool_tok "meta" (kv "meta" "shared_cache" shared_cache) }
      | _ -> raise (Bad "expected \"meta\" record")
    in
    let sn_pending_restart =
      match tokens (next "pending_restart") with
      | [ "pending_restart"; b ] -> bool_tok "pending_restart" b
      | _ -> raise (Bad "expected \"pending_restart\" record")
    in
    let sn_rng =
      match tokens (next "rng") with
      | [ "rng"; v ] ->
        (match Int64.of_string_opt v with
         | Some v -> v
         | None -> raise (Bad "bad rng state"))
      | _ -> raise (Bad "expected \"rng\" record")
    in
    let sn_runs, sn_restarts, sn_total_steps, sn_paths, sn_resource_limited =
      match tokens (next "counters") with
      | [ "counters"; a; b; c; d; e ] ->
        ( int_tok "counters" (kv "counters" "runs" a),
          int_tok "counters" (kv "counters" "restarts" b),
          int_tok "counters" (kv "counters" "total_steps" c),
          int_tok "counters" (kv "counters" "paths" d),
          int_tok "counters" (kv "counters" "resource_limited" e) )
      | _ -> raise (Bad "expected \"counters\" record")
    in
    let sn_all_linear, sn_all_locs_definite =
      match tokens (next "flags") with
      | [ "flags"; a; b ] ->
        ( bool_tok "flags" (kv "flags" "all_linear" a),
          bool_tok "flags" (kv "flags" "all_locs_definite" b) )
      | _ -> raise (Bad "expected \"flags\" record")
    in
    let sn_stack =
      match tokens (next "stack") with
      | "stack" :: count :: entries ->
        let count = int_tok "stack" count in
        if List.length entries <> count then raise (Bad "stack length mismatch");
        Array.of_list
          (List.map
             (fun e ->
               match String.split_on_char ':' e with
               | [ branch; don ] ->
                 { Concolic.br_branch = bool_tok "stack" branch;
                   br_done = bool_tok "stack" don }
               | _ -> raise (Bad (Printf.sprintf "bad stack entry %S" e)))
             entries)
      | _ -> raise (Bad "expected \"stack\" record")
    in
    let n_im = expect_counted "im" in
    let sn_im =
      List.init n_im (fun _ ->
          match tokens (next "input") with
          | [ "input"; id; value; kind ] ->
            let kind =
              match Inputs.kind_of_tag kind with
              | Some k -> k
              | None -> raise (Bad (Printf.sprintf "unknown input kind %S" kind))
            in
            (int_tok "input" id, int_tok "input" value, kind)
          | _ -> raise (Bad "expected \"input\" record"))
    in
    let n_cov = expect_counted "coverage" in
    let sn_coverage =
      List.init n_cov (fun _ ->
          match tokens (next "cover") with
          | [ "cover"; fn; pc; dir ] ->
            (unesc fn, int_tok "cover" pc, bool_tok "cover" dir)
          | _ -> raise (Bad "expected \"cover\" record"))
    in
    let n_stats = expect_counted "stats" in
    let sn_stats =
      List.init n_stats (fun _ ->
          match tokens (next "stat") with
          | [ "stat"; k; v ] -> (unesc k, int_tok "stat" v)
          | _ -> raise (Bad "expected \"stat\" record"))
    in
    let n_bugs = expect_counted "bugs" in
    let sn_bugs =
      List.init n_bugs (fun _ ->
          match tokens (next "bug") with
          | "bug" :: fault :: fn :: pc :: file :: lno :: col :: run :: n_inputs :: inputs ->
            let bug_fault =
              match Machine.fault_of_tag fault with
              | Some f -> f
              | None -> raise (Bad (Printf.sprintf "unknown fault %S" fault))
            in
            let n_inputs = int_tok "bug" n_inputs in
            if List.length inputs <> n_inputs then raise (Bad "bug input count mismatch");
            { Driver.bug_fault;
              bug_site =
                { Machine.site_fn = unesc fn;
                  site_pc = int_tok "bug" pc;
                  site_loc =
                    { Minic.Loc.file = unesc file;
                      line = int_tok "bug" lno;
                      col = int_tok "bug" col } };
              bug_run = int_tok "bug" run;
              bug_inputs =
                List.map
                  (fun e ->
                    match String.split_on_char ':' e with
                    | [ id; v ] -> (int_tok "bug" id, int_tok "bug" v)
                    | _ -> raise (Bad (Printf.sprintf "bad bug input %S" e)))
                  inputs }
          | _ -> raise (Bad "expected \"bug\" record"))
    in
    (match tokens (next "end") with
     | [ "end" ] -> ()
     | _ -> raise (Bad "expected \"end\" record"));
    Ok
      ( meta,
        { Driver.sn_pending_restart;
          sn_stack;
          sn_im;
          sn_rng;
          sn_runs;
          sn_restarts;
          sn_total_steps;
          sn_paths;
          sn_resource_limited;
          sn_all_linear;
          sn_all_locs_definite;
          sn_coverage;
          sn_stats;
          sn_bugs } )
  with Bad msg -> Error msg

let save ~path ~meta snapshot =
  (* Write-then-rename in the target directory: the rename is atomic on
     POSIX, so a crash mid-save never corrupts an existing checkpoint. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string meta snapshot);
      flush oc);
  Sys.rename tmp path

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> of_string text
