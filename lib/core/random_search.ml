type report = {
  verdict : [ `Bug_found of Driver.bug | `No_bug ];
  runs : int;
  total_steps : int;
  branches_covered : int;
  coverage_sites : (string * int * bool) list;
}

let run ?(seed = 42) ?(max_runs = 10_000) ?(exec = Concolic.default_exec_options)
    ?(telemetry = Telemetry.null) ?metrics prog =
  let exec = { exec with Concolic.symbolic = false } in
  let rng = Dart_util.Prng.create seed in
  let im = Inputs.create () in
  let coverage : (string * int * bool, unit) Hashtbl.t = Hashtbl.create 256 in
  let total_steps = ref 0 in
  let entry = Driver_gen.wrapper_name in
  let tracing = Telemetry.enabled telemetry in
  let search_start = Telemetry.now () in
  let rec loop run_index =
    if run_index > max_runs then
      { verdict = `No_bug;
        runs = max_runs;
        total_steps = !total_steps;
        branches_covered = Hashtbl.length coverage;
        coverage_sites = Hashtbl.fold (fun site () acc -> site :: acc) coverage [] }
    else begin
      Inputs.clear im; (* fresh random inputs every run *)
      if tracing then Telemetry.emit telemetry (Telemetry.Run_start { run = run_index });
      let t0 = Telemetry.now () in
      let data = Concolic.run_once ~opts:exec ~rng ~im ~prev_stack:[||] ~entry prog in
      let dur = Int64.sub (Telemetry.now ()) t0 in
      Option.iter (fun m -> Telemetry.add_phase m Telemetry.Execute dur) metrics;
      if tracing then
        Telemetry.emit telemetry
          (Telemetry.Run_end
             { run = run_index;
               outcome =
                 (match data.Concolic.outcome with
                  | Concolic.Run_fault _ -> "fault"
                  | Concolic.Run_prediction_failure -> "prediction_failure"
                  | Concolic.Run_halted -> "halted");
               steps = data.Concolic.steps;
               dur_ns = dur });
      total_steps := !total_steps + data.Concolic.steps;
      (* Same filtering as Driver.search: driver-internal sites are not
         program coverage. *)
      List.iter
        (fun ((fn, _, _) as site) ->
          if not (Coverage.is_driver_function fn) then Hashtbl.replace coverage site ())
        data.Concolic.branch_sites;
      (* Same coverage-over-time sample the directed search emits, so
         directed-vs-random trajectories are comparable per trace. *)
      if tracing then
        Telemetry.emit telemetry
          (Telemetry.Cover_point
             { run = run_index;
               covered = Hashtbl.length coverage;
               elapsed_ns = Int64.sub (Telemetry.now ()) search_start });
      match data.Concolic.outcome with
      | Concolic.Run_fault (fault, site) ->
        if tracing then
          Telemetry.emit telemetry
            (Telemetry.Bug_found
               { fn = site.Machine.site_fn;
                 pc = site.Machine.site_pc;
                 fault = Machine.fault_to_string fault;
                 run = run_index });
        let bug =
          { Driver.bug_fault = fault;
            bug_site = site;
            bug_run = run_index;
            bug_inputs = Inputs.to_alist im }
        in
        { verdict = `Bug_found bug;
          runs = run_index;
          total_steps = !total_steps;
          branches_covered = Hashtbl.length coverage;
          coverage_sites = Hashtbl.fold (fun site () acc -> site :: acc) coverage [] }
      | Concolic.Run_prediction_failure ->
        (* Impossible with an empty prediction stack. *)
        assert false
      | Concolic.Run_halted -> loop (run_index + 1)
    end
  in
  loop 1

let test_source ?seed ?max_runs ?(depth = 1) ?(library_sigs = []) ?telemetry ?metrics
    ~toplevel src =
  let ast = Minic.Parser.parse_program src in
  let prog = Driver.prepare ?metrics ~library_sigs ~toplevel ~depth ast in
  run ?seed ?max_runs ?telemetry ?metrics prog

let report_to_string r =
  let v =
    match r.verdict with
    | `Bug_found b ->
      Printf.sprintf "BUG FOUND: %s in %s (line %d) (run %d)"
        (Machine.fault_to_string b.Driver.bug_fault)
        b.Driver.bug_site.Machine.site_fn
        b.Driver.bug_site.Machine.site_loc.Minic.Loc.line b.Driver.bug_run
    | `No_bug -> "NO BUG within budget"
  in
  Printf.sprintf "%s\nruns: %d  steps: %d  branch-dirs covered: %d" v r.runs r.total_steps
    r.branches_covered
