type report = {
  verdict : [ `Bug_found of Driver.bug | `No_bug | `Time_exhausted | `Interrupted ];
  runs : int;
  total_steps : int;
  branches_covered : int;
  resource_limited : int;
  coverage_sites : (string * int * bool) list;
}

let run ?(seed = 42) ?(max_runs = 10_000) ?deadline ?(exec = Concolic.default_exec_options)
    ?(telemetry = Telemetry.null) ?metrics prog =
  let exec = { exec with Concolic.symbolic = false } in
  let rng = Dart_util.Prng.create seed in
  let im = Inputs.create () in
  let coverage : (string * int * bool, unit) Hashtbl.t = Hashtbl.create 256 in
  let total_steps = ref 0 in
  let resource_limited = ref 0 in
  let entry = Driver_gen.wrapper_name in
  let tracing = Telemetry.enabled telemetry in
  let search_start = Telemetry.now () in
  let finish verdict runs =
    { verdict;
      runs;
      total_steps = !total_steps;
      branches_covered = Hashtbl.length coverage;
      resource_limited = !resource_limited;
      coverage_sites = Hashtbl.fold (fun site () acc -> site :: acc) coverage [] }
  in
  let rec loop run_index =
    (* Same run-boundary stop discipline as [Driver.search]: interrupt
       first, then the wall-clock budget, then the run budget. *)
    if Cancel.requested () then finish `Interrupted (run_index - 1)
    else if
      match deadline with
      | None -> false
      | Some d -> Int64.compare (Telemetry.now ()) d >= 0
    then finish `Time_exhausted (run_index - 1)
    else if run_index > max_runs then finish `No_bug max_runs
    else begin
      Inputs.clear im; (* fresh random inputs every run *)
      if tracing then Telemetry.emit telemetry (Telemetry.Run_start { run = run_index });
      let t0 = Telemetry.now () in
      let data = Concolic.run_once ~opts:exec ~rng ~im ~prev_stack:[||] ~entry prog in
      let dur = Int64.sub (Telemetry.now ()) t0 in
      Option.iter
        (fun m ->
          Telemetry.add_phase m Telemetry.Execute dur;
          Telemetry.Hist.add m.Telemetry.run_hist dur)
        metrics;
      if tracing then
        Telemetry.emit telemetry
          (Telemetry.Run_end
             { run = run_index;
               outcome =
                 (match data.Concolic.outcome with
                  | Concolic.Run_fault _ -> "fault"
                  | Concolic.Run_prediction_failure -> "prediction_failure"
                  | Concolic.Run_halted -> "halted");
               steps = data.Concolic.steps;
               dur_ns = dur });
      total_steps := !total_steps + data.Concolic.steps;
      (* Same filtering as Driver.search: harness-internal sites
         ([__dart_*], [__coin]) are not program coverage. *)
      List.iter
        (fun ((fn, _, _) as site) ->
          if not (Driver_gen.is_harness_site fn) then Hashtbl.replace coverage site ())
        data.Concolic.branch_sites;
      (* Same coverage-over-time sample the directed search emits, so
         directed-vs-random trajectories are comparable per trace. *)
      if tracing then
        Telemetry.emit telemetry
          (Telemetry.Cover_point
             { run = run_index;
               covered = Hashtbl.length coverage;
               elapsed_ns = Int64.sub (Telemetry.now ()) search_start });
      match data.Concolic.outcome with
      | Concolic.Run_fault ((Machine.Step_limit | Machine.Call_depth), _) ->
        (* Resource-limited run (possible non-termination): not a bug;
           the next run's fresh random inputs are the restart. *)
        incr resource_limited;
        loop (run_index + 1)
      | Concolic.Run_fault (fault, site) ->
        if tracing then
          Telemetry.emit telemetry
            (Telemetry.Bug_found
               { fn = site.Machine.site_fn;
                 pc = site.Machine.site_pc;
                 fault = Machine.fault_to_string fault;
                 run = run_index });
        let bug =
          { Driver.bug_fault = fault;
            bug_site = site;
            bug_run = run_index;
            bug_inputs = Inputs.to_alist im }
        in
        finish (`Bug_found bug) run_index
      | Concolic.Run_prediction_failure ->
        (* Impossible with an empty prediction stack. *)
        assert false
      | Concolic.Run_halted -> loop (run_index + 1)
    end
  in
  loop 1

let test_source ?seed ?max_runs ?deadline ?(depth = 1) ?(library_sigs = []) ?telemetry
    ?metrics ~toplevel src =
  let ast = Minic.Parser.parse_program src in
  let prog = Driver.prepare ?metrics ~library_sigs ~toplevel ~depth ast in
  run ?seed ?max_runs ?deadline ?telemetry ?metrics prog

let report_to_string r =
  let v =
    match r.verdict with
    | `Bug_found b ->
      Printf.sprintf "BUG FOUND: %s in %s (line %d) (run %d)"
        (Machine.fault_to_string b.Driver.bug_fault)
        b.Driver.bug_site.Machine.site_fn
        b.Driver.bug_site.Machine.site_loc.Minic.Loc.line b.Driver.bug_run
    | `No_bug -> "NO BUG within budget"
    | `Time_exhausted -> "TIME EXHAUSTED: no bug found within the time budget"
    | `Interrupted -> "INTERRUPTED: search stopped at a run boundary"
  in
  let base =
    Printf.sprintf "%s\nruns: %d  steps: %d  branch-dirs covered: %d" v r.runs
      r.total_steps r.branches_covered
  in
  if r.resource_limited > 0 then
    base ^ Printf.sprintf "\nresource-limited runs: %d" r.resource_limited
  else base
