(** solve_path_constraint (paper Figure 5).

    Given the stack and path constraint of a completed run, pick the
    next pending branch according to the search strategy, negate its
    predicate, and solve the resulting constraint prefix. On success
    the input vector is updated in place ([IM + IM']) and the truncated
    stack for the next run is returned; on UNSAT the search backtracks
    to an earlier pending branch.

    Accelerations on the paper's Figure 5 (all exact):
    - {b independence slicing} ([slicing], default on): only the
      pivot's variable-connected component of the constraint prefix is
      sent to the solver; unrelated components stay satisfied by the
      current IM, preserving the IM + IM' update semantics.
    - {b solve caching} ([cache]): Sat models and Unsat verdicts are
      memoised per canonical constraint set in a private per-worker
      table; a worker's hit sequence depends only on its own queries.
    - {b shared solve store} ([store], a {!Solver.Store.t} plus this
      worker's id): the cross-worker alternative to [cache] — verdicts
      published by any worker answer every worker's queries, and a
      miss doubles as a claim on that frontier branch. Pass [store]
      or [cache], not both (store wins if both are given).
    - {b incremental solving} ([incr]): real solver calls go through a
      {!Solver.Incr} push/pop context that keeps the shared constraint
      prefix asserted and memoises prepared pipeline states; results
      are identical to one-shot solving by construction. One context
      per worker — contexts never cross domains.

    [deadline_ns] bounds each real solver call (cache hits are free):
    a query still running after that many nanoseconds degrades to
    [Solver.Unknown] — counted in [Solver.deadline_overruns], never
    cached, and treated like any other unknown (the branch stays
    unexpanded but retriable, completeness is voided). [faultsim] can
    inject such an overrun deterministically ({!Dart_util.Faultsim}
    point [Solver_deadline]).

    [breaker] attaches a per-site circuit breaker ({!Solver.Breaker}):
    consecutive deadline-overrun Unknowns at one branch site open it,
    after which queries at that site short-circuit to an immediate
    Unknown (counted in [Solver.breaker_skips], not in
    [Solver.queries], never cached, no histogram sample) until the
    breaker's cooldown half-opens the site again. Structural Unknowns
    never trip it, so a breaker-enabled run without deadline overruns
    is byte-identical to one without the breaker. Transitions emit
    {!Telemetry.Breaker_open} / {!Telemetry.Breaker_close} when
    tracing.

    When [telemetry] is an enabled sink, every pivot-solve attempt
    emits a {!Telemetry.Solve_query} event (result, duration, cache
    hit, sliced-away count) attributed to the flipped branch's site
    from [sites] (same indexing as [stack] — pass
    {!Concolic.run_data.cond_sites}), and every IM + IM' write emits an
    {!Telemetry.Input_update}. *)

type next =
  | Next_run of Concolic.branch_record array
      (** Stack to pass to the next instrumented run (prefix up to and
          including the flipped branch). *)
  | Exhausted of { solver_incomplete : bool }
      (** No pending branch can be forced. [solver_incomplete] reports
          whether any solver query came back unknown, which voids the
          completeness claim (Theorem 1(b)). *)

val domain_constraints :
  Inputs.t -> Symbolic.Linexpr.var list -> Symbolic.Constr.t list
(** Input-kind boxing sent alongside every query: chars are constrained
    to 0..255 and pointer coins to 0..1; ints carry no extra atoms (the
    solver boxes them to 32 bits itself). *)

val slice :
  pivot:Symbolic.Constr.t ->
  prefix:Symbolic.Constr.t list ->
  Symbolic.Constr.t list * int
(** [slice ~pivot ~prefix] is [(kept, dropped)]: the pivot's
    variable-connected component of [pivot :: prefix] (pivot first),
    and how many prefix constraints were eliminated as unrelated. *)

val solve :
  ?cache:Solver.Cache.t ->
  ?store:Solver.Store.t * int ->
  ?incr:Solver.Incr.t ->
  ?breaker:Solver.Breaker.t ->
  ?slicing:bool ->
  ?deadline_ns:int64 ->
  ?faultsim:Dart_util.Faultsim.t ->
  ?telemetry:Telemetry.sink ->
  ?hist:Telemetry.Hist.t ->
  ?sites:(string * int) array ->
  strategy:Strategy.t ->
  rng:Dart_util.Prng.t ->
  stats:Solver.stats ->
  im:Inputs.t ->
  stack:Concolic.branch_record array ->
  path_constraint:Symbolic.Constr.t option array ->
  unit ->
  next
