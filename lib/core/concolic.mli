(** One instrumented run (paper Figures 1, 3 and 4).

    Executes the program concretely on the machine while maintaining
    the symbolic memory S, collecting the path constraint at every
    conditional, checking the branch predictions recorded in the stack
    from the previous run, and randomly initializing whatever the
    external interface supplies (toplevel arguments via the generated
    driver's argument functions, external variables, external function
    results) following Figure 8. *)

type branch_record = {
  br_branch : bool; (* 1 = then branch taken (paper's branch bit) *)
  br_done : bool; (* both directions explored at this history? *)
}

type run_outcome =
  | Run_fault of Machine.fault * Machine.site (* a bug: paper's "exception" *)
  | Run_prediction_failure (* forcing_ok went to 0; restart *)
  | Run_halted (* normal termination *)

type run_data = {
  outcome : run_outcome;
  stack : branch_record array; (* every conditional executed, in order *)
  path_constraint : Symbolic.Constr.t option array;
      (* same indexing as [stack]; [None] for conditions outside the
         linear theory or without symbolic variables *)
  cond_sites : (string * int) array;
      (* (function, pc) of each conditional, same indexing as [stack];
         symbolic-pointer coins get the synthetic site ("__coin", id).
         Lets telemetry attribute solver queries to branch sites. *)
  conditionals : int; (* the paper's k *)
  steps : int;
  inputs_read : int;
      (* inputs consumed by this run: ids 0 .. inputs_read - 1 (input
         numbering is creation order, so the read set is a prefix).
         Entries of IM at or beyond this id were left behind by earlier
         runs and never influenced this one. *)
  all_linear : bool; (* flags *cleared during this run* are false *)
  all_locs_definite : bool;
  branch_sites : (string * int * bool) list; (* coverage: fn, pc, direction *)
}

type exec_options = {
  machine_config : Machine.config;
  library : (string * Machine.library_impl) list;
  symbolic_pointers : bool;
      (* extension: make the NULL/non-NULL coin of Figure 8 a
         directable branch instead of pure randomness *)
  max_ptr_depth : int; (* cap on recursive data-structure depth *)
  symbolic : bool; (* false = plain random testing execution *)
  compile : bool;
      (* true (default) = run the machine's compiled closure engine;
         false = tree-walking interpreter (ablation, [--no-compile]) *)
}

val default_exec_options : exec_options

val run_once :
  opts:exec_options ->
  rng:Dart_util.Prng.t ->
  im:Inputs.t ->
  prev_stack:branch_record array ->
  entry:string ->
  Ram.Instr.program ->
  run_data
