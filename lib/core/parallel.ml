(* Multi-domain directed search (paper §2.6: restarts of the outer
   loop are independent, hence embarrassingly parallel).  Each worker
   domain runs a full [Driver.search] over a private [search_ctx] —
   its own PRNG stream, input vector, solver stats and budget share —
   so the domains share nothing but one cancellation atomic and the
   immutable program.  Telemetry follows the same discipline: each
   worker traces into a private ring buffer, replayed into the main
   sink in worker order at join, so the merged trace is deterministic
   and the main sink is only ever written from the joining domain. *)

module O = Driver.Options

type options = {
  base : Driver.options;
  jobs : int;
  portfolio : Strategy.t list;
}

let options ?(jobs = 1) ?(portfolio = []) base = { base; jobs; portfolio }

type worker_report = {
  w_id : int;
  w_seed : int;
  w_strategy : Strategy.t;
  w_report : Driver.report;
}

type report = {
  jobs : int;
  merged : Driver.report;
  workers : worker_report list;
}

let effective_jobs jobs =
  if jobs < 0 then invalid_arg "Parallel.run: jobs < 0"
  else if jobs = 0 then Domain.recommended_domain_count ()
  else jobs

(* Worker 0 inherits the base seed (so a one-worker run replays the
   sequential search exactly); the rest get a splitmix-derived stream
   that is a pure function of (base seed, worker index). *)
let worker_seeds ~base_seed n =
  let rng = Dart_util.Prng.create base_seed in
  Array.init n (fun i ->
      if i = 0 then base_seed else Int64.to_int (Dart_util.Prng.next_int64 rng))

(* Shard [total] runs over [n] workers, first shards taking the
   remainder: the shares sum to exactly [total]. *)
let budget_shares ~total n =
  Array.init n (fun i -> (total / n) + if i < total mod n then 1 else 0)

let worker_strategy t i =
  match t.portfolio with
  | [] -> t.base.O.search.O.strategy
  | p -> List.nth p (i mod List.length p)

let sum_stats (per_worker : Solver.stats list) =
  let s = Solver.create_stats () in
  List.iter (fun w -> Solver.add_stats ~into:s w) per_worker;
  s

let merge (reports : Driver.report list) : Driver.report =
  if reports = [] then invalid_arg "Parallel.merge: empty report list";
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
  let forall f = List.for_all f reports in
  (* Branch-direction coverage: union of the per-worker sets, sorted so
     the merged report is deterministic regardless of worker order. *)
  let coverage : (string * int * bool, unit) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (r : Driver.report) ->
      List.iter (fun site -> Hashtbl.replace coverage site ()) r.Driver.coverage_sites)
    reports;
  let coverage_sites =
    List.sort compare (Hashtbl.fold (fun site () acc -> site :: acc) coverage [])
  in
  (* Bugs: dedupe by (site_fn, site_pc, fault) and order by that key,
     so the merged bug *set* does not depend on which worker raced to a
     shared defect first. *)
  let bug_sites : (string * int * Machine.fault, Driver.bug) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (r : Driver.report) ->
      List.iter
        (fun (b : Driver.bug) ->
          let key = Driver.bug_key b in
          match Hashtbl.find_opt bug_sites key with
          | None -> Hashtbl.replace bug_sites key b
          | Some prev ->
            (* Keep the cheapest witness for a deterministic merge. *)
            if b.Driver.bug_run < prev.Driver.bug_run then Hashtbl.replace bug_sites key b)
        r.Driver.bugs)
    reports;
  let bugs =
    Hashtbl.fold (fun _ b acc -> b :: acc) bug_sites []
    |> List.sort (fun a b -> compare (Driver.bug_key a) (Driver.bug_key b))
  in
  let verdict =
    match bugs with
    | b :: _ -> Driver.Bug_found b
    | [] ->
      (* One worker finishing a DFS search with completeness flags
         intact proves no bug exists at this depth, whatever the other
         budget shares managed. *)
      if List.exists (fun (r : Driver.report) -> r.Driver.verdict = Driver.Complete) reports
      then Driver.Complete
      else Driver.Budget_exhausted
  in
  (* Phase timings are CPU-time-like under parallelism: the sum over
     workers, not the wall clock of the slowest one. *)
  let metrics = Telemetry.create_metrics () in
  List.iter
    (fun (r : Driver.report) -> Telemetry.add_metrics ~into:metrics r.Driver.metrics)
    reports;
  { Driver.verdict;
    runs = sum (fun r -> r.Driver.runs);
    restarts = sum (fun r -> r.Driver.restarts);
    total_steps = sum (fun r -> r.Driver.total_steps);
    branches_covered = Hashtbl.length coverage;
    coverage_sites;
    paths_explored = sum (fun r -> r.Driver.paths_explored);
    all_linear = forall (fun r -> r.Driver.all_linear);
    all_locs_definite = forall (fun r -> r.Driver.all_locs_definite);
    solver_stats = sum_stats (List.map (fun r -> r.Driver.solver_stats) reports);
    metrics;
    bugs }

let run ?(options = options O.default) (prog : Ram.Instr.program) : report =
  let t = options in
  let n = effective_jobs t.jobs in
  let seeds = worker_seeds ~base_seed:t.base.O.search.O.seed n in
  let shares = budget_shares ~total:t.base.O.budget.O.max_runs n in
  let stop_on_first_bug = t.base.O.budget.O.stop_on_first_bug in
  let base_sink = t.base.O.telemetry.Telemetry.sink in
  let tracing = Telemetry.enabled base_sink in
  let cancel = Atomic.make false in
  let should_stop =
    if stop_on_first_bug && n > 1 then fun () -> Atomic.get cancel
    else fun () -> false
  in
  let worker i sink () =
    let strategy = worker_strategy t i in
    let ctx = Driver.make_ctx ~should_stop ~seed:seeds.(i) ~max_runs:shares.(i) () in
    let options =
      { t.base with
        O.search = { t.base.O.search with O.strategy };
        O.telemetry = { t.base.O.telemetry with Telemetry.sink } }
    in
    let r = Driver.search ~ctx ~options prog in
    (* First finder flags the others; they drain at their next run
       boundary (the [should_stop] poll in [Driver.search]). *)
    if stop_on_first_bug && r.Driver.bugs <> [] then Atomic.set cancel true;
    { w_id = i; w_seed = seeds.(i); w_strategy = strategy; w_report = r }
  in
  if n = 1 then begin
    (* Single worker: no merge pass and the main sink is handed straight
       to the search, so report and trace — field order of
       coverage_sites included — are identical to [Driver.run]. *)
    let w = worker 0 base_sink () in
    { jobs = 1; merged = w.w_report; workers = [ w ] }
  end
  else begin
    (* Each worker traces into a private ring: domains never contend on
       the main sink, and replaying the rings in worker order at join
       makes the merged trace deterministic. *)
    let wsinks =
      Array.init n (fun _ ->
          if tracing then
            Telemetry.ring ~capacity:t.base.O.telemetry.Telemetry.worker_buffer
          else Telemetry.null)
    in
    if tracing then
      Array.iteri
        (fun i seed ->
          Telemetry.emit base_sink (Telemetry.Worker_spawn { worker = i; seed }))
        seeds;
    let domains = Array.init n (fun i -> Domain.spawn (worker i wsinks.(i))) in
    let workers = Array.to_list (Array.map Domain.join domains) in
    let t0 = Telemetry.now () in
    if tracing then
      List.iter
        (fun w ->
          Telemetry.replay wsinks.(w.w_id) ~into:base_sink;
          Telemetry.emit base_sink
            (Telemetry.Worker_drain { worker = w.w_id; runs = w.w_report.Driver.runs }))
        workers;
    let merged = merge (List.map (fun w -> w.w_report) workers) in
    let merge_ns = Int64.sub (Telemetry.now ()) t0 in
    Telemetry.add_phase merged.Driver.metrics Telemetry.Merge merge_ns;
    if tracing then begin
      Telemetry.emit base_sink
        (Telemetry.Phase_total { phase = Telemetry.Merge; dur_ns = merge_ns });
      Telemetry.flush base_sink
    end;
    { jobs = n; merged; workers }
  end

let report_to_string r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Driver.report_to_string r.merged);
  Buffer.add_string buf (Printf.sprintf "\njobs: %d" r.jobs);
  List.iter
    (fun w ->
      Buffer.add_string buf
        (Printf.sprintf "\n  worker %d [%s, seed %d]: %s, %d runs, %d paths" w.w_id
           (Strategy.to_string w.w_strategy)
           w.w_seed
           (match w.w_report.Driver.verdict with
            | Driver.Bug_found _ -> "bug"
            | Driver.Complete -> "complete"
            | Driver.Budget_exhausted -> "budget")
           w.w_report.Driver.runs w.w_report.Driver.paths_explored))
    r.workers;
  Buffer.contents buf
