(* Multi-domain directed search (paper §2.6: restarts of the outer
   loop are independent, hence embarrassingly parallel).  Each worker
   domain runs a full [Driver.search] over a private [search_ctx] —
   its own PRNG stream, input vector, solver stats and budget share —
   so the domains share nothing but one cancellation atomic and the
   immutable program.  Telemetry follows the same discipline: each
   worker traces into a private ring buffer, replayed into the main
   sink in worker order at join, so the merged trace is deterministic
   and the main sink is only ever written from the joining domain. *)

module O = Driver.Options

type options = {
  base : Driver.options;
  jobs : int;
  portfolio : Strategy.t list;
}

let options ?(jobs = 1) ?(portfolio = []) base = { base; jobs; portfolio }

type worker_report = {
  w_id : int;
  w_seed : int;
  w_strategy : Strategy.t;
  w_report : Driver.report;
}

type crash = {
  c_worker : int;
  c_seed : int;
  c_reason : string;
  c_respawned : bool;
}

type report = {
  jobs : int;
  merged : Driver.report;
  workers : worker_report list;
  crashes : crash list;
}

let effective_jobs jobs =
  if jobs < 0 then invalid_arg "Parallel.run: jobs < 0"
  else if jobs = 0 then Domain.recommended_domain_count ()
  else jobs

(* Worker 0 inherits the base seed (so a one-worker run replays the
   sequential search exactly); the rest get a splitmix-derived stream
   that is a pure function of (base seed, worker index). *)
let worker_seeds ~base_seed n =
  let rng = Dart_util.Prng.create base_seed in
  Array.init n (fun i ->
      if i = 0 then base_seed else Int64.to_int (Dart_util.Prng.next_int64 rng))

(* Shard [total] runs over [n] workers, first shards taking the
   remainder: the shares sum to exactly [total]. *)
let budget_shares ~total n =
  Array.init n (fun i -> (total / n) + if i < total mod n then 1 else 0)

let worker_strategy t i =
  match t.portfolio with
  | [] -> t.base.O.search.O.strategy
  | p -> List.nth p (i mod List.length p)

let sum_stats (per_worker : Solver.stats list) =
  let s = Solver.create_stats () in
  List.iter (fun w -> Solver.add_stats ~into:s w) per_worker;
  s

let merge (reports : Driver.report list) : Driver.report =
  if reports = [] then invalid_arg "Parallel.merge: empty report list";
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
  let forall f = List.for_all f reports in
  (* Branch-direction coverage: union of the per-worker sets, sorted so
     the merged report is deterministic regardless of worker order. *)
  let coverage : (string * int * bool, unit) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (r : Driver.report) ->
      List.iter (fun site -> Hashtbl.replace coverage site ()) r.Driver.coverage_sites)
    reports;
  let coverage_sites =
    List.sort compare (Hashtbl.fold (fun site () acc -> site :: acc) coverage [])
  in
  (* Bugs: dedupe by (site_fn, site_pc, fault) and order by that key,
     so the merged bug *set* does not depend on which worker raced to a
     shared defect first. *)
  let bug_sites : (string * int * Machine.fault, Driver.bug) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (r : Driver.report) ->
      List.iter
        (fun (b : Driver.bug) ->
          let key = Driver.bug_key b in
          match Hashtbl.find_opt bug_sites key with
          | None -> Hashtbl.replace bug_sites key b
          | Some prev ->
            (* Keep the cheapest witness for a deterministic merge. *)
            if b.Driver.bug_run < prev.Driver.bug_run then Hashtbl.replace bug_sites key b)
        r.Driver.bugs)
    reports;
  let bugs =
    Hashtbl.fold (fun _ b acc -> b :: acc) bug_sites []
    |> List.sort (fun a b -> compare (Driver.bug_key a) (Driver.bug_key b))
  in
  let verdict =
    match bugs with
    | b :: _ -> Driver.Bug_found b
    | [] ->
      (* One worker finishing a DFS search with completeness flags
         intact proves no bug exists at this depth, whatever the other
         budget shares managed. Otherwise the most informative partial
         cause wins: an interrupt or an expired time budget explains
         the early stop better than "budget exhausted". *)
      let any v = List.exists (fun (r : Driver.report) -> r.Driver.verdict = v) reports in
      if any Driver.Complete then Driver.Complete
      else if any Driver.Interrupted then Driver.Interrupted
      else if any Driver.Time_exhausted then Driver.Time_exhausted
      else Driver.Budget_exhausted
  in
  (* Phase timings are CPU-time-like under parallelism: the sum over
     workers, not the wall clock of the slowest one. *)
  let metrics = Telemetry.create_metrics () in
  List.iter
    (fun (r : Driver.report) -> Telemetry.add_metrics ~into:metrics r.Driver.metrics)
    reports;
  { Driver.verdict;
    runs = sum (fun r -> r.Driver.runs);
    restarts = sum (fun r -> r.Driver.restarts);
    total_steps = sum (fun r -> r.Driver.total_steps);
    branches_covered = Hashtbl.length coverage;
    coverage_sites;
    paths_explored = sum (fun r -> r.Driver.paths_explored);
    resource_limited = sum (fun r -> r.Driver.resource_limited);
    all_linear = forall (fun r -> r.Driver.all_linear);
    all_locs_definite = forall (fun r -> r.Driver.all_locs_definite);
    solver_stats = sum_stats (List.map (fun r -> r.Driver.solver_stats) reports);
    metrics;
    bugs }

(* Merged stand-in when every worker (and its respawn) died: no
   coverage, no completeness claim, budget spent without an answer. *)
let empty_report () =
  { Driver.verdict = Driver.Budget_exhausted;
    runs = 0;
    restarts = 0;
    total_steps = 0;
    branches_covered = 0;
    coverage_sites = [];
    paths_explored = 0;
    resource_limited = 0;
    all_linear = false;
    all_locs_definite = false;
    solver_stats = Solver.create_stats ();
    metrics = Telemetry.create_metrics ();
    bugs = [] }

let run ?(options = options O.default) (prog : Ram.Instr.program) : report =
  let t = options in
  let n = effective_jobs t.jobs in
  (* Compile once before spawning: workers on other domains then find
     the shared read-only compiled program in the cache instead of
     racing to build their own. *)
  if t.base.O.exec.Concolic.compile then Machine.precompile prog;
  (* Seeds [0, n): primary workers; seeds [n, 2n): the respawn stream,
     so a supervisor restart is as deterministic as the first spawn. *)
  let seeds = worker_seeds ~base_seed:t.base.O.search.O.seed (2 * n) in
  let shares = budget_shares ~total:t.base.O.budget.O.max_runs n in
  let stop_on_first_bug = t.base.O.budget.O.stop_on_first_bug in
  let base_sink = t.base.O.telemetry.Telemetry.sink in
  let tracing = Telemetry.enabled base_sink in
  let fs = t.base.O.fault in
  let deadline = Driver.deadline_of_options t.base in
  let cancel = Atomic.make false in
  let should_stop =
    if stop_on_first_bug && n > 1 then fun () -> Atomic.get cancel
    else fun () -> false
  in
  (* Cross-worker sharing (default on, [--no-shared-cache] restores the
     shared-nothing layout): one lock-free solve store answers every
     worker's queries and claims frontier branches, and the run budget
     becomes a single CAS-claimed pool instead of static per-worker
     shards — a worker that drains its subtree early hands its leftover
     budget to the others. A single worker keeps the private-cache
     fixed-share path, which stays byte-identical to [Driver.run]. *)
  let shared_on =
    n > 1 && t.base.O.accel.O.use_shared_cache && t.base.O.accel.O.use_cache
  in
  let store = if shared_on then Some (Solver.Store.create ()) else None in
  let pool =
    if shared_on then Some (Atomic.make t.base.O.budget.O.max_runs) else None
  in
  (* A worker body never lets an exception reach [Domain.join]: it
     returns [Error reason] instead, so the supervisor always joins
     every domain, replays the surviving rings and flushes the sink. *)
  let worker ~slot ~seed sink () =
    let strategy = worker_strategy t slot in
    let should_stop =
      (* Crash injection rides the run-boundary poll: the injected
         exception surfaces mid-search exactly where a real defect in
         the search loop would. *)
      if Dart_util.Faultsim.is_on fs then (fun () ->
        if Dart_util.Faultsim.fire ~key:slot fs Dart_util.Faultsim.Worker_crash then
          Dart_util.Faultsim.inject_crash Dart_util.Faultsim.Worker_crash
        else should_stop ())
      else should_stop
    in
    let ctx =
      Driver.make_ctx ~should_stop ?deadline ?pool
        ?store:(Option.map (fun st -> (st, slot)) store)
        ~incremental:t.base.O.accel.O.use_incremental
        ~use_breaker:t.base.O.accel.O.use_breaker ~seed ~max_runs:shares.(slot) ()
    in
    let options =
      { t.base with
        O.search = { t.base.O.search with O.strategy };
        O.telemetry =
          { t.base.O.telemetry with
            Telemetry.sink;
            (* Only a lone worker may own the status file: concurrent
               domains each writing tmp+rename would race on it. The
               CLI already rejects --status with --jobs > 1. *)
            status_path =
              (if n = 1 then t.base.O.telemetry.Telemetry.status_path else None) } }
    in
    match Driver.search ~ctx ~options prog with
    | r ->
      (* First finder flags the others; they drain at their next run
         boundary (the [should_stop] poll in [Driver.search]). *)
      if stop_on_first_bug && r.Driver.bugs <> [] then Atomic.set cancel true;
      Ok { w_id = slot; w_seed = seed; w_strategy = strategy; w_report = r }
    | exception e -> Error (Printexc.to_string e)
  in
  if n = 1 then begin
    (* Single worker: no merge pass and the main sink is handed straight
       to the search, so report and trace — field order of
       coverage_sites included — are identical to [Driver.run]. *)
    match worker ~slot:0 ~seed:seeds.(0) base_sink () with
    | Ok w -> { jobs = 1; merged = w.w_report; workers = [ w ]; crashes = [] }
    | Error reason ->
      let crash1 =
        { c_worker = 0; c_seed = seeds.(0); c_reason = reason; c_respawned = true }
      in
      if tracing then begin
        Telemetry.emit base_sink
          (Telemetry.Worker_crash { worker = 0; reason; respawned = true });
        Telemetry.emit base_sink (Telemetry.Worker_spawn { worker = 0; seed = seeds.(1) })
      end;
      (match worker ~slot:0 ~seed:seeds.(1) base_sink () with
       | Ok w -> { jobs = 1; merged = w.w_report; workers = [ w ]; crashes = [ crash1 ] }
       | Error reason2 ->
         if tracing then begin
           Telemetry.emit base_sink
             (Telemetry.Worker_crash { worker = 0; reason = reason2; respawned = false });
           Telemetry.flush base_sink
         end;
         { jobs = 1;
           merged = empty_report ();
           workers = [];
           crashes =
             [ crash1;
               { c_worker = 0; c_seed = seeds.(1); c_reason = reason2; c_respawned = false }
             ] })
  end
  else begin
    (* Each worker traces into a private ring: domains never contend on
       the main sink, and replaying the rings in worker order at join
       makes the merged trace deterministic. *)
    let ring () =
      if tracing then Telemetry.ring ~capacity:t.base.O.telemetry.Telemetry.worker_buffer
      else Telemetry.null
    in
    let wsinks = Array.init n (fun _ -> ring ()) in
    if tracing then
      Array.iteri
        (fun i seed ->
          if i < n then
            Telemetry.emit base_sink (Telemetry.Worker_spawn { worker = i; seed }))
        seeds;
    let domains =
      Array.init n (fun i -> Domain.spawn (worker ~slot:i ~seed:seeds.(i) wsinks.(i)))
    in
    let primary = Array.map Domain.join domains in
    (* Supervision pass: every crashed slot is respawned exactly once,
       with a fresh derived seed, a fresh ring and the slot's full
       budget share — the crashed attempt's runs died with its domain,
       so the share is re-run rather than lost. *)
    let rsinks = Array.make n Telemetry.null in
    let respawns =
      Array.init n (fun i ->
          match primary.(i) with
          | Ok _ -> None
          | Error _ ->
            rsinks.(i) <- ring ();
            Some (Domain.spawn (worker ~slot:i ~seed:seeds.(n + i) rsinks.(i))))
    in
    let respawns = Array.map (Option.map Domain.join) respawns in
    let t0 = Telemetry.now () in
    let workers = ref [] in
    let crashes = ref [] in
    let drain i (w : worker_report) sink =
      if tracing then begin
        Telemetry.replay sink ~into:base_sink;
        Telemetry.emit base_sink
          (Telemetry.Worker_drain { worker = i; runs = w.w_report.Driver.runs })
      end;
      workers := w :: !workers
    in
    Array.iteri
      (fun i result ->
        match result with
        | Ok w -> drain i w wsinks.(i)
        | Error reason ->
          crashes :=
            { c_worker = i; c_seed = seeds.(i); c_reason = reason; c_respawned = true }
            :: !crashes;
          if tracing then begin
            Telemetry.emit base_sink
              (Telemetry.Worker_crash { worker = i; reason; respawned = true });
            Telemetry.emit base_sink
              (Telemetry.Worker_spawn { worker = i; seed = seeds.(n + i) })
          end;
          (match respawns.(i) with
           | Some (Ok w) -> drain i w rsinks.(i)
           | Some (Error reason2) ->
             crashes :=
               { c_worker = i;
                 c_seed = seeds.(n + i);
                 c_reason = reason2;
                 c_respawned = false }
               :: !crashes;
             if tracing then
               Telemetry.emit base_sink
                 (Telemetry.Worker_crash { worker = i; reason = reason2; respawned = false })
           | None -> assert false))
      primary;
    let workers = List.rev !workers in
    let crashes = List.rev !crashes in
    let merged =
      match List.map (fun w -> w.w_report) workers with
      | [] -> empty_report ()
      | reports -> merge reports
    in
    let merge_ns = Int64.sub (Telemetry.now ()) t0 in
    Telemetry.add_phase merged.Driver.metrics Telemetry.Merge merge_ns;
    if tracing then begin
      Telemetry.emit base_sink
        (Telemetry.Phase_total { phase = Telemetry.Merge; dur_ns = merge_ns });
      Telemetry.flush base_sink
    end;
    { jobs = n; merged; workers; crashes }
  end

let report_to_string r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Driver.report_to_string r.merged);
  Buffer.add_string buf (Printf.sprintf "\njobs: %d" r.jobs);
  List.iter
    (fun w ->
      Buffer.add_string buf
        (Printf.sprintf "\n  worker %d [%s, seed %d]: %s, %d runs, %d paths" w.w_id
           (Strategy.to_string w.w_strategy)
           w.w_seed
           (match w.w_report.Driver.verdict with
            | Driver.Bug_found _ -> "bug"
            | Driver.Complete -> "complete"
            | Driver.Budget_exhausted -> "budget"
            | Driver.Time_exhausted -> "time"
            | Driver.Interrupted -> "interrupted")
           w.w_report.Driver.runs w.w_report.Driver.paths_explored))
    r.workers;
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "\n  worker %d crashed [seed %d]: %s%s" c.c_worker c.c_seed
           c.c_reason
           (if c.c_respawned then "; respawned with a fresh seed, budget re-run"
            else "; not respawned, budget share lost")))
    r.crashes;
  Buffer.contents buf
