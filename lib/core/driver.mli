(** run_DART (paper Figure 2): the outer random-restart loop and the
    inner directed-search loop, plus program preparation (driver
    generation, typechecking, lowering). *)

(** Search configuration, grouped by concern so new knobs widen one
    sub-record instead of a flat options type: [budget] (how much work),
    [search] (where randomness and direction come from), [accel] (the
    exact accelerations of the solve path), [exec] (the instrumented
    machine), [telemetry] (tracing sinks and buffers). Build with
    {!Options.make}, which defaults every field to {!Options.default}'s
    value. *)
module Options : sig
  type budget = {
    max_runs : int; (* overall budget of instrumented runs *)
    stop_on_first_bug : bool;
    time_budget_ns : int64 option;
        (* wall-clock budget for the whole search; [None] = unbounded.
           Checked at run boundaries: an over-budget search drains with
           the [Time_exhausted] verdict and a complete partial report *)
    solver_deadline_ns : int64 option;
        (* per-solver-query deadline; an overrunning query degrades to
           [Solver.Unknown] (counted in [Solver.deadline_overruns]) *)
  }

  type search = {
    seed : int;
    depth : int; (* iterations of the toplevel function per run (paper §3.2) *)
    strategy : Strategy.t;
  }

  type accel = {
    use_slicing : bool; (* independence slicing of path constraints (default on) *)
    use_cache : bool; (* solve caching (default on) *)
    use_incremental : bool;
        (* push/pop incremental solving through a per-worker
           {!Solver.Incr} context (default on; results identical) *)
    use_shared_cache : bool;
        (* with jobs > 1: one cross-worker {!Solver.Store} plus a
           pooled run budget instead of private caches and budget
           shards (default on; no effect at jobs = 1 or with
           [use_cache] off) *)
    use_breaker : bool;
        (* per-site solver circuit breaker ({!Solver.Breaker}):
           consecutive deadline-overrun Unknowns at one branch site
           short-circuit further queries there (default on; inert —
           byte-identical output — unless a solver deadline overruns) *)
  }

  (** How a campaign orders the next scheduler round's slices. Results
      (retired set, deduped crashes, aggregate coverage) are the same
      under either policy — per-target searches are independent and
      deterministic — so priority only decides which targets finish
      first under a wall-clock budget. *)
  type priority =
    | Frontier_first
        (* targets with the most frontier sites (one direction still
           missing) after their last slice run first: they are where a
           budget refill is most likely to buy new coverage *)
    | Declaration_order (* the order the library declares its functions *)

  type campaign = {
    per_function_runs : int;
        (* the slice of instrumented runs a target gets per scheduler
           round; frontier-rich targets keep getting refills, one
           slice at a time *)
    priority : priority;
    retire_after : int;
        (* consecutive slices without a new branch direction before a
           target is retired as saturated *)
    retry_limit : int;
        (* consecutive faulted slices (worker crash or other escaped
           exception) before a target is retired as quarantined;
           faults below the limit back off exponentially *)
  }

  type t = {
    budget : budget;
    search : search;
    accel : accel;
    campaign : campaign; (* read only by {!Campaign}; inert elsewhere *)
    exec : Concolic.exec_options;
    telemetry : Telemetry.config;
    fault : Dart_util.Faultsim.t;
        (* deterministic fault injection ({!Dart_util.Faultsim}); the
           default [Faultsim.off] costs one pattern match per
           injection point *)
  }

  val default : t
  (** seed 42, depth 1, 10_000 runs, DFS, stop on first bug, both
      accelerations on, default machine, tracing off, no time budget,
      no solver deadline, fault injection off; campaign: 200 runs per
      slice, frontier-first priority, retire after 2 stale slices,
      quarantine after 3 consecutive faults. *)

  val make :
    ?seed:int ->
    ?depth:int ->
    ?max_runs:int ->
    ?strategy:Strategy.t ->
    ?stop_on_first_bug:bool ->
    ?time_budget_ns:int64 ->
    ?solver_deadline_ns:int64 ->
    ?use_slicing:bool ->
    ?use_cache:bool ->
    ?use_incremental:bool ->
    ?use_shared_cache:bool ->
    ?use_breaker:bool ->
    ?per_function_runs:int ->
    ?priority:priority ->
    ?retire_after:int ->
    ?retry_limit:int ->
    ?exec:Concolic.exec_options ->
    ?telemetry:Telemetry.config ->
    ?faultsim:Dart_util.Faultsim.t ->
    unit ->
    t
  (** Smart constructor: every omitted argument takes {!default}'s
      value. *)

  val priority_to_string : priority -> string
  val priority_of_string : string -> priority option
  (** ["frontier"] / ["order"]. *)
end

type options = Options.t

type bug = {
  bug_fault : Machine.fault;
  bug_site : Machine.site;
  bug_run : int; (* 1-based index of the run that found it *)
  bug_inputs : (int * int) list;
      (* input id -> value: exactly the inputs the faulting run read, a
         minimal replayable witness (stale IM entries from earlier
         solver iterations are excluded) *)
}

val bug_key : bug -> string * int * Machine.fault
(** Dedup identity of a bug: [(site_fn, site_pc, fault)]. Two bugs with
    equal keys are the same defect found along different paths. *)

type verdict =
  | Bug_found of bug
  | Complete
      (** Directed search exhausted with all completeness flags intact:
          Theorem 1(b) — every feasible path was exercised, no bug
          exists (within [depth]). *)
  | Budget_exhausted (* max_runs reached, or incompleteness forced restarts *)
  | Time_exhausted (* the wall-clock budget expired at a run boundary *)
  | Interrupted
      (** {!Cancel.request} (SIGINT/SIGTERM in dartc) was observed at a
          run boundary; the report is complete for the work done. *)

type report = {
  verdict : verdict;
  runs : int; (* instrumented runs ("iterations" in the paper's tables) *)
  restarts : int; (* fresh random restarts of the outer loop *)
  total_steps : int;
  branches_covered : int;
      (* distinct (function, pc, direction), driver-internal functions
         excluded — consistent with [Coverage.compute] *)
  coverage_sites : (string * int * bool) list; (* the triples themselves *)
  paths_explored : int; (* completed runs, i.e. distinct execution paths *)
  resource_limited : int;
      (* runs that died on [Step_limit] or [Call_depth]: counted as
         possibly-non-terminating executions (paper §3), each triggering
         a fresh random restart, never reported as bugs. Nonzero voids
         the [Complete] claim. *)
  all_linear : bool;
  all_locs_definite : bool;
  solver_stats : Solver.stats;
  metrics : Telemetry.metrics;
      (* per-phase wall clock (execute/solve, plus lower when prepared
         through [test_source] or [prepare ~metrics]); always
         collected, never printed by [report_to_string] *)
  bugs : bug list; (* every distinct bug site seen (>= 1 when Bug_found) *)
}

type snapshot = {
  sn_pending_restart : bool;
      (* the budget denied a restart: on resume, perform the restart
         (and its telemetry event) before the first run *)
  sn_stack : Concolic.branch_record array; (* pending stack for the next run *)
  sn_im : (int * int * Inputs.kind) list; (* full input vector, id-sorted *)
  sn_rng : int64; (* PRNG state — the whole randomness stream *)
  sn_runs : int;
  sn_restarts : int;
  sn_total_steps : int;
  sn_paths : int;
  sn_resource_limited : int;
  sn_all_linear : bool;
  sn_all_locs_definite : bool;
  sn_coverage : (string * int * bool) list; (* sorted, deterministic *)
  sn_stats : (string * int) list; (* Solver.to_assoc view *)
  sn_bugs : bug list; (* chronological *)
}
(** A run-boundary checkpoint of everything {!search} mutates. The run
    boundary fully determines the continuation: resuming from a
    snapshot replays the exact run sequence the uninterrupted search
    would have performed (same PRNG stream, same IM, same pending
    stack), so the final coverage is identical. Serialized by
    {!Checkpoint}. *)

(** A worker's claim on the run budget: a fixed private share, or a
    CAS-claimed reservation against a pool shared by all workers of a
    parallel search (a worker that exhausts its subtree early leaves
    the remaining budget to its peers). *)
type run_budget =
  | Fixed_budget of int
  | Pooled_budget of pooled_budget

and pooled_budget = { pb_pool : int Atomic.t; mutable pb_claimed : int }

val pooled_budget : int Atomic.t -> run_budget

type search_ctx = {
  sc_rng : Dart_util.Prng.t; (* private randomness stream *)
  sc_im : Inputs.t; (* private input vector *)
  sc_stats : Solver.stats; (* private solver counters *)
  sc_cache : Solver.Cache.t;
      (* private solve cache (shared-nothing across domains, so hits
         and misses are deterministic per worker) *)
  sc_store : (Solver.Store.t * int) option;
      (* shared cross-worker solve store and this worker's id; when
         present (and caching is on) it replaces [sc_cache] *)
  sc_incr : Solver.Incr.t option;
      (* per-worker incremental solving context (never shared) *)
  sc_metrics : Telemetry.metrics; (* private phase timers *)
  sc_budget : run_budget; (* this search's claim on the run budget *)
  sc_deadline : int64 option;
      (* absolute monotonic deadline ({!Telemetry.now} scale); checked
         at run boundaries, [None] = no time budget *)
  sc_should_stop : unit -> bool;
      (* polled at every run boundary; [true] drains the search (used
         for cross-worker cancellation — see {!Parallel}) *)
  sc_breaker : Solver.Breaker.t option;
      (* per-context solver circuit breaker; [None] disables it *)
}
(** Everything mutable a single directed search touches, made explicit
    so independent searches can run concurrently on separate domains
    without sharing state (the shared store and pooled budget are the
    two deliberate, lock-free exceptions). *)

val make_ctx :
  ?should_stop:(unit -> bool) ->
  ?metrics:Telemetry.metrics ->
  ?deadline:int64 ->
  ?pool:int Atomic.t ->
  ?store:Solver.Store.t * int ->
  ?incremental:bool ->
  ?use_breaker:bool ->
  ?breaker:Solver.Breaker.t ->
  seed:int ->
  max_runs:int ->
  unit ->
  search_ctx
(** Fresh context: new PRNG from [seed], empty input vector, zeroed
    solver stats. [should_stop] defaults to never; [metrics] defaults
    to a fresh record (pass one to fold preparation time measured by
    {!prepare} into the search's report); [deadline] defaults to
    unbounded. [pool] switches the budget from a fixed [max_runs] share
    to a shared pool; [store] attaches the cross-worker solve store;
    [incremental] (default true) controls the push/pop context.
    [use_breaker] (default true) creates a fresh circuit breaker;
    [breaker] overrides it with a caller-owned one (a campaign shares
    one breaker across all slices of a target). *)

val deadline_of_options : options -> int64 option
(** The absolute monotonic deadline [now + time_budget_ns], or [None]
    when the options carry no time budget. Compute it once and share it
    across worker contexts so every worker stops at the same instant. *)

val prepare :
  ?metrics:Telemetry.metrics ->
  ?library_sigs:Minic.Tast.fsig list ->
  toplevel:string ->
  depth:int ->
  Minic.Ast.program ->
  Ram.Instr.program
(** Synthesize the test driver, typecheck and lower. The resulting
    entry point is {!Driver_gen.wrapper_name}. When [metrics] is given,
    the elapsed wall clock is attributed to its [Lower] phase. *)

val search :
  ?resume:snapshot ->
  ?on_checkpoint:(snapshot -> unit) ->
  ?checkpoint_every:int ->
  ctx:search_ctx ->
  options:options ->
  Ram.Instr.program ->
  report
(** One directed search driven entirely by [ctx]'s mutable state:
    [options.search.seed] and [options.budget.max_runs] are ignored in
    favour of the context's PRNG and budget cell. {!run} is [search]
    over a fresh context; {!Parallel.run} calls it once per worker
    domain. Events flow into [options.telemetry.sink]; with the null
    sink the instrumentation allocates nothing.

    [resume] restores a {!snapshot} into [ctx] (which must be fresh)
    and continues exactly where it was taken. [on_checkpoint] is called
    with a consistent snapshot every [checkpoint_every] runs (default
    256) and once more at the end when the verdict is partial
    ([Budget_exhausted], [Time_exhausted] or [Interrupted]); it is
    never called after [Complete] or a stop-on-first-bug verdict. *)

val run :
  ?resume:snapshot ->
  ?on_checkpoint:(snapshot -> unit) ->
  ?checkpoint_every:int ->
  ?options:options ->
  Ram.Instr.program ->
  report
(** Run DART on a prepared program (fresh context honouring the
    options' seed, budget and time budget). *)

val test_source :
  ?options:options ->
  ?library_sigs:Minic.Tast.fsig list ->
  toplevel:string ->
  string ->
  report
(** Parse MiniC source, prepare it with [options.search.depth], and
    run. Preparation time lands in the report's [Lower] phase. *)

val report_to_string : report -> string
(** Byte-stable end-of-run summary (phase metrics are deliberately
    excluded: print them with {!Telemetry.metrics_to_string}). *)
