(** A unit of testable work: one entry function of one program, plus
    the per-target overrides of the session-wide budgets.

    {!Session.t} holds the long-lived engine state (base options,
    compiled-program cache, telemetry); a [Target.t] names what to
    test. Single-shot [dartc] builds exactly one target; [dartc
    campaign] builds one per discovered library function and reuses
    the same session across all of them, so the compiled program,
    option plumbing and telemetry sink are shared instead of
    re-created per entry point. *)

(** The program under test, in whichever form the caller already has.
    [Text] and [Parsed] are prepared (driver generation, typecheck,
    lowering) through the session's compiled-program cache; [Prepared]
    bypasses preparation entirely — the program must already contain
    the generated driver and is entered at {!Driver_gen.wrapper_name}
    (its [toplevel] is informational). *)
type source =
  | Text of { file : string option; text : string } (* MiniC source *)
  | Parsed of Minic.Ast.program
  | Prepared of Ram.Instr.program

type t = {
  tg_source : source;
  tg_toplevel : string; (* entry function under test *)
  tg_library_sigs : Minic.Tast.fsig list;
  tg_depth : int option; (* overrides [options.search.depth] *)
  tg_max_runs : int option; (* overrides [options.budget.max_runs] *)
  tg_time_budget_ns : int64 option; (* overrides the session time budget *)
  tg_priority : int;
      (* campaign scheduling hint, higher first; ignored by
         single-shot runs *)
  tg_sink : Telemetry.sink option;
      (* overrides [options.telemetry.sink] for this target's search.
         The campaign uses private per-slice rings here so worker
         domains never contend on the session's main sink. *)
  tg_breaker : Solver.Breaker.t option;
      (* caller-owned solver circuit breaker for this target's search;
         the campaign threads one per target across its slices so
         open sites stay open between scheduler rounds. [None] lets
         the engine create (or omit) one per [options.accel]. *)
  tg_key : string;
      (* preparation-cache identity of [tg_source]: equal keys mean
         equal source. Computed by {!make}. *)
}

val make :
  ?depth:int ->
  ?max_runs:int ->
  ?time_budget_ns:int64 ->
  ?priority:int ->
  ?library_sigs:Minic.Tast.fsig list ->
  ?sink:Telemetry.sink ->
  ?breaker:Solver.Breaker.t ->
  toplevel:string ->
  source ->
  t
(** Every omitted override falls back to the session's base options at
    {!Engine.run} time. *)

val of_text : ?file:string -> toplevel:string -> string -> t
(** [make ~toplevel (Text …)] with no overrides. *)

val of_ast : toplevel:string -> Minic.Ast.program -> t
val of_prepared : Ram.Instr.program -> t
(** A prepared program's entry is always {!Driver_gen.wrapper_name}. *)

val describe : t -> string
(** ["<toplevel> (text|ast|prepared)"], for logs and errors. *)
