(** Versioned on-disk serialization of {!Driver.snapshot}.

    A checkpoint file is a self-describing text format (one record per
    line, [dart-checkpoint v2] magic) carrying the search meta
    (seed/depth/strategy/run budget/acceleration config — everything
    the snapshot's determinism depends on) plus the snapshot itself. Writes are atomic
    (temp file + rename in the target directory), so a SIGKILL mid-save
    leaves the previous checkpoint intact; loads validate the magic,
    the version and every field, and {!check_meta} refuses to resume a
    snapshot under options it was not taken under — resuming with a
    different seed or strategy would silently diverge from the
    interrupted search instead of continuing it. The run budget is
    recorded but not compared: it bounds the trajectory rather than
    shaping it, so resuming with a larger [--max-runs] extends an
    exhausted search.

    The solve cache — private or shared ({!Solver.Store}) — is
    deliberately not checkpointed (it is a pure accelerator and can be
    arbitrarily large); a resumed search always starts cold. Because
    the solver prefers current IM values when picking among equally
    valid models, a warm cache can return a model a fresh solve would
    not, so a resumed search with caching enabled may take a different
    — equally valid — trajectory after a restart while still converging
    to the same coverage. With [--no-cache] (or on restart-free
    searches) resume is exact: every counter of the resumed run equals
    the uninterrupted one. Incremental solving ({!Solver.Incr}) is
    result-exact, so it never perturbs resume; its configuration is
    still recorded and checked because flipping it between save and
    resume would change the hit/miss counters a report prints. *)

type meta = {
  m_seed : int;
  m_depth : int;
  m_max_runs : int;
  m_strategy : Strategy.t;
  m_incremental : bool; (* accel.use_incremental at save time *)
  m_shared_cache : bool; (* accel.use_shared_cache at save time *)
}

val meta_of_options : Driver.options -> meta

val check_meta : expected:meta -> found:meta -> (unit, string) result
(** [Error] names the first mismatching field (seed, depth, strategy,
    incremental or shared-cache config; [m_max_runs] is informational
    only). *)

val save : path:string -> meta:meta -> Driver.snapshot -> unit
(** Atomic: writes [path ^ ".tmp"], then renames over [path].
    @raise Sys_error when the directory is not writable. *)

val load : path:string -> (meta * Driver.snapshot, string) result
(** [Error] describes the first syntax or schema violation (including a
    version this build does not understand). *)

val to_string : meta -> Driver.snapshot -> string
val of_string : string -> (meta * Driver.snapshot, string) result
(** The codec itself, exposed for tests (and [load]/[save] are
    [of_string]/[to_string] plus file I/O). [of_string] recognizes the
    {!Campaign} checkpoint magic and fails with a message naming
    [dartc campaign --resume], so feeding the wrong kind of checkpoint
    to [--resume] is a usage error, not a parse mystery. *)

val escape : string -> string
val unescape : string -> (string, string) result
(** The %-escaping the line records use for strings, shared with the
    {!Campaign} codec so both formats stay greppable one-record-per-line
    texts with identical quoting. *)
