(* Source-level coverage explorer: per-site direction status mapped
   back to MiniC source lines, rendered as an annotated listing, an
   lcov tracefile and a single-file HTML report. See cover_report.mli
   for the contract; the one invariant every renderer must keep is
   that its totals are the [Coverage.compute] totals — the reports
   are views of the same data, never a recount. *)

type status =
  | Full
  | Taken_only
  | Fall_only
  | Unreached

type site = {
  cs_fn : string;
  cs_pc : int;
  cs_loc : Minic.Loc.t;
  cs_status : status;
}

type t = {
  sites : site list;
  coverage : Coverage.t;
}

let status_of_dirs = function
  | true, true -> Full
  | true, false -> Taken_only
  | false, true -> Fall_only
  | false, false -> Unreached

let compute (prog : Ram.Instr.program) ~covered =
  let by_site : (string * int, bool * bool) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (fn, pc, dir) ->
      let taken, fallthrough =
        Option.value ~default:(false, false) (Hashtbl.find_opt by_site (fn, pc))
      in
      Hashtbl.replace by_site (fn, pc)
        (if dir then (true, fallthrough) else (taken, true)))
    covered;
  let sites =
    Hashtbl.fold
      (fun name (f : Ram.Instr.func) acc ->
        if Coverage.is_driver_function name then acc
        else begin
          let acc = ref acc in
          Array.iteri
            (fun pc instr ->
              match instr with
              | Ram.Instr.Iif _ ->
                let loc =
                  if pc < Array.length f.Ram.Instr.locs then f.Ram.Instr.locs.(pc)
                  else Minic.Loc.dummy
                in
                let dirs =
                  Option.value ~default:(false, false)
                    (Hashtbl.find_opt by_site (name, pc))
                in
                acc :=
                  { cs_fn = name; cs_pc = pc; cs_loc = loc; cs_status = status_of_dirs dirs }
                  :: !acc
              | _ -> ())
            f.Ram.Instr.code;
          !acc
        end)
      prog.Ram.Instr.funcs []
    |> List.sort (fun a b ->
           compare
             (a.cs_loc.Minic.Loc.file, a.cs_loc.Minic.Loc.line, a.cs_loc.Minic.Loc.col,
              a.cs_fn, a.cs_pc)
             (b.cs_loc.Minic.Loc.file, b.cs_loc.Minic.Loc.line, b.cs_loc.Minic.Loc.col,
              b.cs_fn, b.cs_pc))
  in
  { sites; coverage = Coverage.compute prog ~covered }

let frontier t =
  List.filter (fun s -> s.cs_status = Taken_only || s.cs_status = Fall_only) t.sites

let unreached t = List.filter (fun s -> s.cs_status = Unreached) t.sites

let marker = function
  | Full -> "\u{2713}\u{2713}"
  | Taken_only -> "\u{2713}\u{00b7}"
  | Fall_only -> "\u{00b7}\u{2713}"
  | Unreached -> "\u{00b7}\u{00b7}"

let status_to_string = function
  | Full -> "full"
  | Taken_only -> "fall-through missing"
  | Fall_only -> "taken missing"
  | Unreached -> "unreached"

(* ---- shared line grouping ---------------------------------------------------- *)

let split_lines source =
  let lines = String.split_on_char '\n' source in
  match List.rev lines with
  | "" :: rest -> List.rev rest (* drop the empty tail of a final newline *)
  | _ -> lines

(* Sites grouped by 1-based source line, in site order within a line. *)
let sites_by_line t =
  let tbl : (int, site list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun s ->
      let line = s.cs_loc.Minic.Loc.line in
      Hashtbl.replace tbl line (s :: Option.value ~default:[] (Hashtbl.find_opt tbl line)))
    t.sites;
  Hashtbl.iter (fun line sites -> Hashtbl.replace tbl line (List.rev sites)) tbl;
  tbl

let site_id s =
  Printf.sprintf "%s:%d %s" s.cs_fn s.cs_pc (Minic.Loc.to_string s.cs_loc)

(* ---- annotated source -------------------------------------------------------- *)

let annotate t ~source =
  let lines = split_lines source in
  let nlines = List.length lines in
  let by_line = sites_by_line t in
  (* The gutter width is in glyphs, not bytes: each marker is two
     glyphs, markers on the same line are space-separated. *)
  let gutter_glyphs n = if n = 0 then 0 else (2 * n) + (n - 1) in
  let width =
    Hashtbl.fold (fun _ sites acc -> max acc (gutter_glyphs (List.length sites))) by_line 2
  in
  let buf = Buffer.create (String.length source * 2) in
  Buffer.add_string buf
    "annotated source (one two-glyph marker per branch site, taken direction first):\n";
  Buffer.add_string buf
    "  \u{2713}\u{2713} full   \u{2713}\u{00b7} fall-through missing (frontier)   \
     \u{00b7}\u{2713} taken missing (frontier)   \u{00b7}\u{00b7} unreached\n\n";
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let sites = Option.value ~default:[] (Hashtbl.find_opt by_line lineno) in
      let gutter = String.concat " " (List.map (fun s -> marker s.cs_status) sites) in
      let pad = String.make (width - gutter_glyphs (List.length sites)) ' ' in
      Buffer.add_string buf (Printf.sprintf " %s%s | %4d | %s\n" gutter pad lineno line))
    lines;
  let out_of_range =
    List.filter (fun s -> s.cs_loc.Minic.Loc.line < 1 || s.cs_loc.Minic.Loc.line > nlines)
      t.sites
  in
  if out_of_range <> [] then begin
    Buffer.add_string buf "\nsites outside the source listing:\n";
    List.iter
      (fun s ->
        Buffer.add_string buf
          (Printf.sprintf "  %s  %s\n" (site_id s) (status_to_string s.cs_status)))
      out_of_range
  end;
  (match frontier t with
   | [] -> ()
   | sites ->
     Buffer.add_string buf "\nfrontier sites (one direction missing):\n";
     List.iter
       (fun s ->
         Buffer.add_string buf
           (Printf.sprintf "  %s  %s\n" (site_id s) (status_to_string s.cs_status)))
       sites);
  (match unreached t with
   | [] -> ()
   | sites ->
     Buffer.add_string buf "\nunreached sites:\n";
     List.iter (fun s -> Buffer.add_string buf (Printf.sprintf "  %s\n" (site_id s))) sites);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Coverage.to_string t.coverage);
  Buffer.contents buf

(* ---- lcov export ------------------------------------------------------------- *)

let dirs_of_status = function
  | Full -> (true, true)
  | Taken_only -> (true, false)
  | Fall_only -> (false, true)
  | Unreached -> (false, false)

let covered_at_all s = s.cs_status <> Unreached

let to_lcov t =
  let buf = Buffer.create 1024 in
  (* One SF block per distinct file, in sorted site order (sites are
     already file-major). *)
  let files =
    List.sort_uniq compare (List.map (fun s -> s.cs_loc.Minic.Loc.file) t.sites)
  in
  List.iter
    (fun file ->
      let sites = List.filter (fun s -> s.cs_loc.Minic.Loc.file = file) t.sites in
      Buffer.add_string buf "TN:dart\n";
      Buffer.add_string buf (Printf.sprintf "SF:%s\n" file);
      (* Functions: those with at least one site in this file; the
         entry line is the first site's (branch coverage is all the
         engine records — a branchless function has no evidence either
         way, so it gets no FN record). *)
      let fns =
        List.fold_left
          (fun acc s ->
            match List.assoc_opt s.cs_fn acc with
            | Some _ -> acc
            | None -> (s.cs_fn, s) :: acc)
          [] sites
        |> List.rev
      in
      List.iter
        (fun (fn, first) ->
          Buffer.add_string buf
            (Printf.sprintf "FN:%d,%s\n" first.cs_loc.Minic.Loc.line fn))
        fns;
      let executed_fns =
        List.filter
          (fun (fn, _) ->
            List.exists (fun s -> s.cs_fn = fn && covered_at_all s) sites)
          fns
      in
      List.iter
        (fun (fn, _) ->
          let hit = List.mem_assoc fn executed_fns in
          Buffer.add_string buf (Printf.sprintf "FNDA:%d,%s\n" (if hit then 1 else 0) fn))
        fns;
      Buffer.add_string buf (Printf.sprintf "FNF:%d\n" (List.length fns));
      Buffer.add_string buf (Printf.sprintf "FNH:%d\n" (List.length executed_fns));
      (* Branch records: two per site, block = pc so several sites on
         one source line stay distinct. "-" means the enclosing block
         never executed, 0 means executed but the direction never
         taken — exactly our Unreached vs frontier distinction. *)
      let brh = ref 0 in
      List.iter
        (fun s ->
          let taken, fall = dirs_of_status s.cs_status in
          let cell d = if not (covered_at_all s) then "-" else if d then "1" else "0" in
          if taken then incr brh;
          if fall then incr brh;
          Buffer.add_string buf
            (Printf.sprintf "BRDA:%d,%d,0,%s\n" s.cs_loc.Minic.Loc.line s.cs_pc (cell taken));
          Buffer.add_string buf
            (Printf.sprintf "BRDA:%d,%d,1,%s\n" s.cs_loc.Minic.Loc.line s.cs_pc (cell fall)))
        sites;
      Buffer.add_string buf (Printf.sprintf "BRF:%d\n" (2 * List.length sites));
      Buffer.add_string buf (Printf.sprintf "BRH:%d\n" !brh);
      (* Line records for the lines bearing sites: hit when any site on
         the line executed in any direction. *)
      let lines =
        List.sort_uniq compare (List.map (fun s -> s.cs_loc.Minic.Loc.line) sites)
      in
      let line_hit l =
        List.exists (fun s -> s.cs_loc.Minic.Loc.line = l && covered_at_all s) sites
      in
      List.iter
        (fun l ->
          Buffer.add_string buf (Printf.sprintf "DA:%d,%d\n" l (if line_hit l then 1 else 0)))
        lines;
      Buffer.add_string buf (Printf.sprintf "LF:%d\n" (List.length lines));
      Buffer.add_string buf
        (Printf.sprintf "LH:%d\n" (List.length (List.filter line_hit lines)));
      Buffer.add_string buf "end_of_record\n")
    files;
  Buffer.contents buf

(* ---- lcov re-parser ---------------------------------------------------------- *)

type lcov_totals = {
  lt_files : int;
  lt_functions : int;
  lt_brda : int;
  lt_branches_hit : int;
  lt_brf : int;
  lt_brh : int;
  lt_da : int;
  lt_lines_hit : int;
}

exception Lcov_error of string

let parse_lcov text =
  let totals =
    ref
      { lt_files = 0; lt_functions = 0; lt_brda = 0; lt_branches_hit = 0; lt_brf = 0;
        lt_brh = 0; lt_da = 0; lt_lines_hit = 0 }
  in
  let in_block = ref false in
  let fail lineno msg = raise (Lcov_error (Printf.sprintf "line %d: %s" lineno msg)) in
  let int_of lineno what s =
    match int_of_string_opt s with
    | Some v when v >= 0 -> v
    | Some _ | None -> fail lineno (Printf.sprintf "bad %s %S" what s)
  in
  let require_block lineno record =
    if not !in_block then fail lineno (Printf.sprintf "%s outside an SF block" record)
  in
  try
    let lines = String.split_on_char '\n' text in
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        let prefixed p = String.length line >= String.length p
                         && String.sub line 0 (String.length p) = p in
        let after p = String.sub line (String.length p)
                        (String.length line - String.length p) in
        if line = "" then () (* blank lines: tolerated at the tail *)
        else if prefixed "TN:" then ()
        else if prefixed "SF:" then begin
          if !in_block then fail lineno "SF inside an open block";
          if after "SF:" = "" then fail lineno "empty SF path";
          in_block := true;
          totals := { !totals with lt_files = !totals.lt_files + 1 }
        end
        else if line = "end_of_record" then begin
          require_block lineno "end_of_record";
          in_block := false
        end
        else begin
          require_block lineno (String.sub line 0 (min 8 (String.length line)));
          if prefixed "FN:" then begin
            match String.index_opt (after "FN:") ',' with
            | None -> fail lineno "FN needs line,name"
            | Some c ->
              let body = after "FN:" in
              ignore (int_of lineno "FN line" (String.sub body 0 c));
              if String.length body = c + 1 then fail lineno "FN needs a name";
              totals := { !totals with lt_functions = !totals.lt_functions + 1 }
          end
          else if prefixed "FNDA:" then begin
            match String.index_opt (after "FNDA:") ',' with
            | None -> fail lineno "FNDA needs count,name"
            | Some c -> ignore (int_of lineno "FNDA count" (String.sub (after "FNDA:") 0 c))
          end
          else if prefixed "FNF:" then ignore (int_of lineno "FNF" (after "FNF:"))
          else if prefixed "FNH:" then ignore (int_of lineno "FNH" (after "FNH:"))
          else if prefixed "BRDA:" then begin
            match String.split_on_char ',' (after "BRDA:") with
            | [ l; b; br; taken ] ->
              ignore (int_of lineno "BRDA line" l);
              ignore (int_of lineno "BRDA block" b);
              ignore (int_of lineno "BRDA branch" br);
              let hit =
                if taken = "-" then 0 else int_of lineno "BRDA taken" taken
              in
              totals :=
                { !totals with
                  lt_brda = !totals.lt_brda + 1;
                  lt_branches_hit = (!totals.lt_branches_hit + if hit > 0 then 1 else 0) }
            | _ -> fail lineno "BRDA needs line,block,branch,taken"
          end
          else if prefixed "BRF:" then
            totals := { !totals with lt_brf = !totals.lt_brf + int_of lineno "BRF" (after "BRF:") }
          else if prefixed "BRH:" then
            totals := { !totals with lt_brh = !totals.lt_brh + int_of lineno "BRH" (after "BRH:") }
          else if prefixed "DA:" then begin
            match String.split_on_char ',' (after "DA:") with
            | [ l; count ] ->
              ignore (int_of lineno "DA line" l);
              let hits = int_of lineno "DA count" count in
              totals :=
                { !totals with
                  lt_da = !totals.lt_da + 1;
                  lt_lines_hit = (!totals.lt_lines_hit + if hits > 0 then 1 else 0) }
            | _ -> fail lineno "DA needs line,count"
          end
          else if prefixed "LF:" then ignore (int_of lineno "LF" (after "LF:"))
          else if prefixed "LH:" then ignore (int_of lineno "LH" (after "LH:"))
          else fail lineno (Printf.sprintf "unknown record %S" line)
        end)
      lines;
    if !in_block then raise (Lcov_error "unterminated SF block at end of input");
    Ok !totals
  with Lcov_error msg -> Error msg

(* ---- HTML report ------------------------------------------------------------- *)

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let line_class sites =
  if sites = [] then "plain"
  else if List.exists (fun s -> s.cs_status = Unreached) sites then "unreached"
  else if List.exists (fun s -> s.cs_status <> Full) sites then "frontier"
  else "full"

let css =
  {|
body { font-family: -apple-system, "Segoe UI", Roboto, sans-serif; margin: 2em auto;
       max-width: 70em; color: #1a1a2e; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
.tiles { display: flex; gap: 1em; flex-wrap: wrap; }
.tile { border: 1px solid #d0d0da; border-radius: 6px; padding: 0.6em 1.2em; }
.tile .num { font-size: 1.5em; font-weight: 600; display: block; }
.tile .label { font-size: 0.8em; color: #555; }
table { border-collapse: collapse; margin-top: 0.8em; }
th, td { border: 1px solid #d0d0da; padding: 0.3em 0.8em; font-size: 0.9em; }
th { background: #f2f2f7; text-align: left; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
pre.source { border: 1px solid #d0d0da; border-radius: 6px; padding: 0; overflow-x: auto;
             font-size: 0.85em; line-height: 1.45; }
pre.source span { display: block; padding: 0 0.8em; white-space: pre; }
.gut { color: #777; user-select: none; }
.full { background: #e7f6e7; }
.frontier { background: #fdf3d7; }
.unreached { background: #fbe3e4; }
.legend span { padding: 0.1em 0.6em; border-radius: 4px; margin-right: 0.8em;
               font-size: 0.85em; }
|}

let to_html ?(extra = "") t ~source ~title =
  let lines = split_lines source in
  let by_line = sites_by_line t in
  let cov = t.coverage in
  let buf = Buffer.create (String.length source * 3) in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n";
  add "<title>DART coverage — %s</title>\n<style>%s</style>\n</head>\n<body>\n"
    (html_escape title) css;
  add "<h1>DART branch coverage — %s</h1>\n" (html_escape title);
  let pct = Coverage.percent cov in
  add "<div class=\"tiles\">\n";
  add "<div class=\"tile\"><span class=\"num\">%.1f%%</span><span class=\"label\">directions \
       covered</span></div>\n" pct;
  add "<div class=\"tile\"><span class=\"num\">%d / %d</span><span class=\"label\">directions \
       / possible</span></div>\n"
    cov.Coverage.total_directions (2 * cov.Coverage.total_sites);
  add "<div class=\"tile\"><span class=\"num\">%d</span><span class=\"label\">frontier \
       sites</span></div>\n" (List.length (frontier t));
  add "<div class=\"tile\"><span class=\"num\">%d</span><span class=\"label\">unreached \
       sites</span></div>\n" (List.length (unreached t));
  add "</div>\n";
  add "<h2>per function</h2>\n<table>\n<tr><th>function</th><th>directions</th>\
       <th>possible</th><th>sites fully covered</th><th>%%</th></tr>\n";
  List.iter
    (fun (e : Coverage.entry) ->
      if e.Coverage.cov_sites > 0 then begin
        let fpct =
          100.0 *. float_of_int e.Coverage.cov_directions
          /. float_of_int (2 * e.Coverage.cov_sites)
        in
        add
          "<tr><td>%s</td><td class=\"num\">%d</td><td class=\"num\">%d</td>\
           <td class=\"num\">%d</td><td class=\"num\">%.1f</td></tr>\n"
          (html_escape e.Coverage.cov_fn) e.Coverage.cov_directions
          (2 * e.Coverage.cov_sites) e.Coverage.cov_full fpct
      end)
    cov.Coverage.entries;
  add "</table>\n";
  add "<h2>annotated source</h2>\n";
  add "<p class=\"legend\"><span class=\"full\">both directions</span>\
       <span class=\"frontier\">frontier (one direction missing)</span>\
       <span class=\"unreached\">unreached</span></p>\n";
  add "<pre class=\"source\">";
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let sites = Option.value ~default:[] (Hashtbl.find_opt by_line lineno) in
      let gutter = String.concat " " (List.map (fun s -> marker s.cs_status) sites) in
      add "<span class=\"%s\"><span class=\"gut\">%4d %-5s|</span> %s</span>"
        (line_class sites) lineno gutter (html_escape line))
    lines;
  add "</pre>\n";
  (match frontier t with
   | [] -> ()
   | sites ->
     add "<h2>frontier sites</h2>\n<table>\n<tr><th>site</th><th>location</th>\
          <th>missing direction</th></tr>\n";
     List.iter
       (fun s ->
         add "<tr><td>%s:%d</td><td>%s</td><td>%s</td></tr>\n" (html_escape s.cs_fn)
           s.cs_pc
           (html_escape (Minic.Loc.to_string s.cs_loc))
           (html_escape (status_to_string s.cs_status)))
       sites;
     add "</table>\n");
  (* Caller-supplied panel (campaign heatmap): already-rendered HTML,
     spliced verbatim before the close. Empty by default, so
     single-target reports stay byte-identical. *)
  Buffer.add_string buf extra;
  add "</body>\n</html>\n";
  Buffer.contents buf

(* Campaign per-target time/outcome heatmap: one cell per tested
   target, opacity by share of total slice time, border color by
   retirement outcome. [cells] is (target, retire_tag, total_ns, runs,
   overruns) in the order the campaign reports them; [overruns] counts
   solver deadline overruns and rides in the cell title when nonzero. *)
let campaign_heatmap cells =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "<h2>per-target time</h2>\n";
  if cells = [] then add "<p>no per-target timing recorded.</p>\n"
  else begin
    let total = List.fold_left (fun acc (_, _, ns, _, _) -> Int64.add acc ns) 0L cells in
    add
      "<p class=\"legend\"><span class=\"hm-bug\">bug</span>\
       <span class=\"hm-complete\">complete</span>\
       <span class=\"hm-saturated\">saturated</span>\
       <span class=\"hm-capped\">capped</span>\
       <span class=\"hm-quarantined\">quarantined</span>\
       <span class=\"hm-other\">other</span></p>\n";
    add "<div class=\"heatmap\">\n";
    List.iter
      (fun (name, tag, ns, runs, overruns) ->
        let share =
          if Int64.compare total 0L > 0 then
            Int64.to_float ns /. Int64.to_float total
          else 0.0
        in
        (* Opacity floor keeps sub-percent targets visible. *)
        let opacity = 0.15 +. (0.85 *. share) in
        let cls =
          match tag with
          | "bug" -> "hm-bug"
          | "complete" -> "hm-complete"
          | "saturated" -> "hm-saturated"
          | "capped" -> "hm-capped"
          | "quarantined" -> "hm-quarantined"
          | _ -> "hm-other"
        in
        add
          "<div class=\"hm-cell %s\" style=\"--heat:%.3f\" title=\"%s: %s, %d runs, \
           %.1f%% of slice time%s\"><span class=\"hm-name\">%s</span>\
           <span class=\"hm-time\">%s</span></div>\n"
          cls opacity (html_escape name) (html_escape tag) runs (100.0 *. share)
          (if overruns > 0 then Printf.sprintf " + %d solver overruns" overruns else "")
          (html_escape name)
          (html_escape (Telemetry.ns_to_string ns)))
      cells;
    add "</div>\n";
    add
      "<style>.heatmap { display: flex; flex-wrap: wrap; gap: 4px; }\n\
       .hm-cell { border-radius: 4px; padding: 0.3em 0.5em; font-size: 0.8em;\n\
       \          background: rgba(70, 110, 180, var(--heat)); border: 2px solid #ccc; }\n\
       .hm-cell span { display: block; }\n\
       .hm-name { font-weight: 600; }\n\
       .hm-bug { border-color: #c0392b; }\n\
       .hm-complete { border-color: #27ae60; }\n\
       .hm-saturated { border-color: #d9a62e; }\n\
       .hm-capped { border-color: #7f8c8d; }\n\
       .hm-quarantined { border-color: #8e44ad; }\n\
       .hm-other { border-color: #aaa; }\n\
       span.hm-bug { border: 2px solid #c0392b; }\n\
       span.hm-complete { border: 2px solid #27ae60; }\n\
       span.hm-saturated { border: 2px solid #d9a62e; }\n\
       span.hm-capped { border: 2px solid #7f8c8d; }\n\
       span.hm-quarantined { border: 2px solid #8e44ad; }\n\
       span.hm-other { border: 2px solid #aaa; }\n\
       </style>\n"
  end;
  Buffer.contents buf
