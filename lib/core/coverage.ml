type entry = {
  cov_fn : string;
  cov_sites : int;
  cov_directions : int;
  cov_full : int;
}

type t = {
  entries : entry list;
  total_sites : int;
  total_directions : int;
}

let is_driver_function = Driver_gen.is_driver_function

let compute (prog : Ram.Instr.program) ~covered =
  let by_site : (string * int, bool * bool) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (fn, pc, dir) ->
      let taken, fallthrough =
        Option.value ~default:(false, false) (Hashtbl.find_opt by_site (fn, pc))
      in
      Hashtbl.replace by_site (fn, pc)
        (if dir then (true, fallthrough) else (taken, true)))
    covered;
  let entries =
    Hashtbl.fold
      (fun name (f : Ram.Instr.func) acc ->
        if is_driver_function name then acc
        else begin
          let sites = ref 0 and dirs = ref 0 and full = ref 0 in
          Array.iteri
            (fun pc instr ->
              match instr with
              | Ram.Instr.Iif _ ->
                incr sites;
                (match Hashtbl.find_opt by_site (name, pc) with
                 | Some (true, true) ->
                   dirs := !dirs + 2;
                   incr full
                 | Some (true, false) | Some (false, true) -> incr dirs
                 | Some (false, false) | None -> ())
              | _ -> ())
            f.Ram.Instr.code;
          { cov_fn = name; cov_sites = !sites; cov_directions = !dirs; cov_full = !full }
          :: acc
        end)
      prog.Ram.Instr.funcs []
    |> List.sort (fun a b -> compare a.cov_fn b.cov_fn)
  in
  let total_sites = List.fold_left (fun acc e -> acc + e.cov_sites) 0 entries in
  let total_directions = List.fold_left (fun acc e -> acc + e.cov_directions) 0 entries in
  { entries; total_sites; total_directions }

let percent t =
  if t.total_sites = 0 then 100.0
  else 100.0 *. float_of_int t.total_directions /. float_of_int (2 * t.total_sites)

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "branch coverage (directions taken / possible):\n";
  (* Columns sized from the data (functions with hundreds of sites
     overflow fixed widths); the historical minima keep small reports
     byte-stable. *)
  let shown = List.filter (fun e -> e.cov_sites > 0) t.entries in
  let digits n = String.length (string_of_int n) in
  let name_w =
    List.fold_left (fun acc e -> max acc (String.length e.cov_fn)) 30 shown
  in
  let num_w = List.fold_left (fun acc e -> max acc (digits (2 * e.cov_sites))) 3 shown in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  %-*s %*d/%*d  (%d sites fully covered)\n" name_w e.cov_fn num_w
           e.cov_directions num_w (2 * e.cov_sites) e.cov_full))
    shown;
  Buffer.add_string buf (Printf.sprintf "  total: %.1f%%\n" (percent t));
  Buffer.contents buf
