(* Structured tracing and phase metrics. See telemetry.mli for the
   contract; the only subtlety here is that the null sink must keep the
   disabled path allocation-free, which is why every instrumentation
   point in the search guards event construction behind [enabled]. *)

type phase =
  | Execute
  | Solve
  | Lower
  | Merge

let phases = [ Execute; Solve; Lower; Merge ]

let phase_to_string = function
  | Execute -> "execute"
  | Solve -> "solve"
  | Lower -> "lower"
  | Merge -> "merge"

let phase_of_string = function
  | "execute" -> Some Execute
  | "solve" -> Some Solve
  | "lower" -> Some Lower
  | "merge" -> Some Merge
  | _ -> None

type solve_result =
  | R_sat
  | R_unsat
  | R_unknown

let solve_result_to_string = function
  | R_sat -> "sat"
  | R_unsat -> "unsat"
  | R_unknown -> "unknown"

let solve_result_of_string = function
  | "sat" -> Some R_sat
  | "unsat" -> Some R_unsat
  | "unknown" -> Some R_unknown
  | _ -> None

type event =
  | Run_start of { run : int }
  | Run_end of { run : int; outcome : string; steps : int; dur_ns : int64 }
  | Branch_taken of { fn : string; pc : int; dir : bool }
  | Solve_query of {
      fn : string;
      pc : int;
      result : solve_result;
      dur_ns : int64;
      cache_hit : bool;
      sliced : int;
    }
  | Input_update of { id : int; value : int }
  | Restart of { restarts : int }
  | Bug_found of { fn : string; pc : int; fault : string; run : int }
  | Worker_spawn of { worker : int; seed : int }
  | Worker_drain of { worker : int; runs : int }
  | Worker_crash of { worker : int; reason : string; respawned : bool }
  | Checkpoint_saved of { run : int }
  | Phase_total of { phase : phase; dur_ns : int64 }
  | Cover_point of { run : int; covered : int; elapsed_ns : int64 }
  | Target_scheduled of { target : string; round : int }
  | Slice_end of {
      target : string;
      round : int;
      outcome : string;
      runs : int;
      dur_ns : int64;
    }
  | Target_retired of { target : string; reason : string }
  | Round_end of { round : int; active : int; dur_ns : int64 }
  | Breaker_open of { fn : string; pc : int }
  | Breaker_close of { fn : string; pc : int }

(* Branch sites that belong to the harness rather than the program
   under test: the synthesized [__dart_*] driver functions and the
   synthetic [__coin] sites of symbolic pointer shapes. Both are
   excluded from [Coverage.compute] and [branches_covered], so trace
   summaries must count them apart to agree with the report. *)
let is_harness_site = Driver_gen.is_harness_site

(* ---- monotonic clock -------------------------------------------------------- *)

let now () = Monotonic_clock.now ()

(* ---- latency histograms ------------------------------------------------------- *)

module Hist = struct
  (* Log2-bucketed duration histogram: bucket [b] holds samples whose
     nanosecond duration lies in [2^b, 2^(b+1)) (bucket 0 additionally
     absorbs 0ns and 1ns). 63 buckets cover the whole non-negative
     Int64 range, so [add] never has to range-check twice. *)

  let nbuckets = 63

  type t = {
    mutable h_count : int;
    mutable h_sum_ns : int64;
    mutable h_max_ns : int64;
    h_buckets : int array;
  }

  let create () =
    { h_count = 0; h_sum_ns = 0L; h_max_ns = 0L; h_buckets = Array.make nbuckets 0 }

  let bucket_of_ns ns =
    if Int64.compare ns 2L < 0 then 0
    else begin
      let b = ref 0 in
      let v = ref ns in
      while Int64.compare !v 1L > 0 do
        incr b;
        v := Int64.shift_right_logical !v 1
      done;
      min !b (nbuckets - 1)
    end

  (* [lo, hi): the half-open nanosecond range of a bucket. *)
  let bucket_bounds b =
    if b < 0 || b >= nbuckets then invalid_arg "Telemetry.Hist.bucket_bounds";
    if b = 0 then (0L, 2L) else (Int64.shift_left 1L b, Int64.shift_left 1L (b + 1))

  let add t ns =
    let ns = if Int64.compare ns 0L < 0 then 0L else ns in
    t.h_count <- t.h_count + 1;
    t.h_sum_ns <- Int64.add t.h_sum_ns ns;
    if Int64.compare ns t.h_max_ns > 0 then t.h_max_ns <- ns;
    let b = bucket_of_ns ns in
    t.h_buckets.(b) <- t.h_buckets.(b) + 1

  let count t = t.h_count
  let sum_ns t = t.h_sum_ns
  let max_ns t = t.h_max_ns

  let mean_ns t =
    if t.h_count = 0 then 0L else Int64.div t.h_sum_ns (Int64.of_int t.h_count)

  (* Bucketwise addition: commutative and associative, so merging
     worker histograms in any order yields identical counts — the
     property the jobs=1 vs jobs=N determinism tests rely on. *)
  let merge ~into src =
    into.h_count <- into.h_count + src.h_count;
    into.h_sum_ns <- Int64.add into.h_sum_ns src.h_sum_ns;
    if Int64.compare src.h_max_ns into.h_max_ns > 0 then into.h_max_ns <- src.h_max_ns;
    Array.iteri (fun i c -> into.h_buckets.(i) <- into.h_buckets.(i) + c) src.h_buckets

  (* Upper bound of the first bucket whose cumulative count reaches
     [p] percent of the samples, clamped to the observed maximum so the
     reported value is a tight "p% of samples took at most this long".
     Deterministic given the bucket counts. *)
  let percentile t p =
    if t.h_count = 0 then 0L
    else begin
      let p = if p < 0.0 then 0.0 else if p > 100.0 then 100.0 else p in
      let need =
        max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int t.h_count)))
      in
      let rec go b acc =
        if b >= nbuckets then t.h_max_ns
        else begin
          let acc = acc + t.h_buckets.(b) in
          if acc >= need then begin
            let _, hi = bucket_bounds b in
            let v = Int64.sub hi 1L in
            if Int64.compare v t.h_max_ns > 0 then t.h_max_ns else v
          end
          else go (b + 1) acc
        end
      in
      go 0 0
    end

  let p50 t = percentile t 50.0
  let p90 t = percentile t 90.0
  let p99 t = percentile t 99.0

  (* Non-empty buckets as [(lo, hi, count)], ascending. *)
  let buckets t =
    let acc = ref [] in
    for b = nbuckets - 1 downto 0 do
      if t.h_buckets.(b) > 0 then begin
        let lo, hi = bucket_bounds b in
        acc := (lo, hi, t.h_buckets.(b)) :: !acc
      end
    done;
    !acc
end

(* Compact human rendering of a nanosecond duration, used by status
   views and the profiler (not by any byte-diffed default output). *)
let ns_to_string ns =
  let f = Int64.to_float ns in
  if f < 1e3 then Printf.sprintf "%.0fns" f
  else if f < 1e6 then Printf.sprintf "%.1fus" (f /. 1e3)
  else if f < 1e9 then Printf.sprintf "%.2fms" (f /. 1e6)
  else Printf.sprintf "%.2fs" (f /. 1e9)

(* ---- JSONL codec ------------------------------------------------------------- *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let event_to_json ev =
  let buf = Buffer.create 96 in
  let field_sep () = Buffer.add_char buf ',' in
  let key k =
    add_json_string buf k;
    Buffer.add_char buf ':'
  in
  let str k v =
    field_sep ();
    key k;
    add_json_string buf v
  in
  let int k v =
    field_sep ();
    key k;
    Buffer.add_string buf (string_of_int v)
  in
  let i64 k v =
    field_sep ();
    key k;
    Buffer.add_string buf (Int64.to_string v)
  in
  let bool k v =
    field_sep ();
    key k;
    Buffer.add_string buf (if v then "true" else "false")
  in
  let tag name =
    Buffer.add_char buf '{';
    key "ev";
    add_json_string buf name
  in
  (match ev with
   | Run_start { run } ->
     tag "run_start";
     int "run" run
   | Run_end { run; outcome; steps; dur_ns } ->
     tag "run_end";
     int "run" run;
     str "outcome" outcome;
     int "steps" steps;
     i64 "ns" dur_ns
   | Branch_taken { fn; pc; dir } ->
     tag "branch";
     str "fn" fn;
     int "pc" pc;
     bool "dir" dir
   | Solve_query { fn; pc; result; dur_ns; cache_hit; sliced } ->
     tag "solve";
     str "fn" fn;
     int "pc" pc;
     str "result" (solve_result_to_string result);
     i64 "ns" dur_ns;
     bool "cache_hit" cache_hit;
     int "sliced" sliced
   | Input_update { id; value } ->
     tag "input";
     int "id" id;
     int "value" value
   | Restart { restarts } ->
     tag "restart";
     int "restarts" restarts
   | Bug_found { fn; pc; fault; run } ->
     tag "bug";
     str "fn" fn;
     int "pc" pc;
     str "fault" fault;
     int "run" run
   | Worker_spawn { worker; seed } ->
     tag "worker_spawn";
     int "worker" worker;
     int "seed" seed
   | Worker_drain { worker; runs } ->
     tag "worker_drain";
     int "worker" worker;
     int "runs" runs
   | Worker_crash { worker; reason; respawned } ->
     tag "worker_crash";
     int "worker" worker;
     str "reason" reason;
     bool "respawned" respawned
   | Checkpoint_saved { run } ->
     tag "checkpoint";
     int "run" run
   | Phase_total { phase; dur_ns } ->
     tag "phase";
     str "phase" (phase_to_string phase);
     i64 "ns" dur_ns
   | Cover_point { run; covered; elapsed_ns } ->
     tag "cover";
     int "run" run;
     int "covered" covered;
     i64 "ns" elapsed_ns
   | Target_scheduled { target; round } ->
     tag "target_scheduled";
     str "target" target;
     int "round" round
   | Slice_end { target; round; outcome; runs; dur_ns } ->
     tag "slice_end";
     str "target" target;
     int "round" round;
     str "outcome" outcome;
     int "runs" runs;
     i64 "ns" dur_ns
   | Target_retired { target; reason } ->
     tag "target_retired";
     str "target" target;
     str "reason" reason
   | Round_end { round; active; dur_ns } ->
     tag "round_end";
     int "round" round;
     int "active" active;
     i64 "ns" dur_ns
   | Breaker_open { fn; pc } ->
     tag "breaker_open";
     str "fn" fn;
     int "pc" pc
   | Breaker_close { fn; pc } ->
     tag "breaker_close";
     str "fn" fn;
     int "pc" pc);
  Buffer.add_char buf '}';
  Buffer.contents buf

(* Minimal parser for the flat objects emitted above: string, integer
   and boolean values only, no nesting. *)

exception Bad of string

type jval =
  | Jstr of string
  | Jint of int64
  | Jbool of bool

let parse_flat_object s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\r') do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> raise (Bad (Printf.sprintf "expected %C at offset %d" c !pos))
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then raise (Bad "unterminated string")
      else begin
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
          (if !pos >= n then raise (Bad "unterminated escape");
           let e = s.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | 'r' -> Buffer.add_char buf '\r'
           | 'u' ->
             if !pos + 4 > n then raise (Bad "truncated \\u escape");
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 256 -> Buffer.add_char buf (Char.chr code)
              | Some _ -> Buffer.add_char buf '?'
              | None -> raise (Bad "bad \\u escape"))
           | _ -> raise (Bad (Printf.sprintf "bad escape \\%c" e)));
          go ()
        | c ->
          Buffer.add_char buf c;
          go ()
      end
    in
    go ()
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some 't' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "true" then begin
        pos := !pos + 4;
        Jbool true
      end
      else raise (Bad "bad literal")
    | Some 'f' ->
      if !pos + 5 <= n && String.sub s !pos 5 = "false" then begin
        pos := !pos + 5;
        Jbool false
      end
      else raise (Bad "bad literal")
    | Some ('-' | '0' .. '9') ->
      let start = !pos in
      if peek () = Some '-' then advance ();
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      (match Int64.of_string_opt (String.sub s start (!pos - start)) with
       | Some v -> Jint v
       | None -> raise (Bad "bad integer"))
    | _ -> raise (Bad (Printf.sprintf "unexpected value at offset %d" !pos))
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if peek () = Some '}' then advance ()
  else begin
    let rec members () =
      skip_ws ();
      let k = parse_string () in
      expect ':';
      let v = parse_value () in
      fields := (k, v) :: !fields;
      skip_ws ();
      match peek () with
      | Some ',' ->
        advance ();
        members ()
      | Some '}' -> advance ()
      | _ -> raise (Bad "expected ',' or '}'")
    in
    members ()
  end;
  skip_ws ();
  if !pos <> n then raise (Bad "trailing garbage after object");
  List.rev !fields

let event_of_json line =
  try
    let fields = parse_flat_object line in
    let str k =
      match List.assoc_opt k fields with
      | Some (Jstr s) -> s
      | _ -> raise (Bad (Printf.sprintf "missing string field %S" k))
    in
    let i64 k =
      match List.assoc_opt k fields with
      | Some (Jint v) -> v
      | _ -> raise (Bad (Printf.sprintf "missing integer field %S" k))
    in
    let int k = Int64.to_int (i64 k) in
    let bool k =
      match List.assoc_opt k fields with
      | Some (Jbool b) -> b
      | _ -> raise (Bad (Printf.sprintf "missing boolean field %S" k))
    in
    let ev =
      match str "ev" with
      | "run_start" -> Run_start { run = int "run" }
      | "run_end" ->
        Run_end
          { run = int "run"; outcome = str "outcome"; steps = int "steps"; dur_ns = i64 "ns" }
      | "branch" -> Branch_taken { fn = str "fn"; pc = int "pc"; dir = bool "dir" }
      | "solve" ->
        let result =
          match solve_result_of_string (str "result") with
          | Some r -> r
          | None -> raise (Bad "bad solve result")
        in
        Solve_query
          { fn = str "fn";
            pc = int "pc";
            result;
            dur_ns = i64 "ns";
            cache_hit = bool "cache_hit";
            sliced = int "sliced" }
      | "input" -> Input_update { id = int "id"; value = int "value" }
      | "restart" -> Restart { restarts = int "restarts" }
      | "bug" ->
        Bug_found { fn = str "fn"; pc = int "pc"; fault = str "fault"; run = int "run" }
      | "worker_spawn" -> Worker_spawn { worker = int "worker"; seed = int "seed" }
      | "worker_drain" -> Worker_drain { worker = int "worker"; runs = int "runs" }
      | "worker_crash" ->
        Worker_crash
          { worker = int "worker"; reason = str "reason"; respawned = bool "respawned" }
      | "checkpoint" -> Checkpoint_saved { run = int "run" }
      | "phase" ->
        let phase =
          match phase_of_string (str "phase") with
          | Some p -> p
          | None -> raise (Bad "bad phase name")
        in
        Phase_total { phase; dur_ns = i64 "ns" }
      | "cover" ->
        Cover_point { run = int "run"; covered = int "covered"; elapsed_ns = i64 "ns" }
      | "target_scheduled" ->
        Target_scheduled { target = str "target"; round = int "round" }
      | "slice_end" ->
        Slice_end
          { target = str "target";
            round = int "round";
            outcome = str "outcome";
            runs = int "runs";
            dur_ns = i64 "ns" }
      | "target_retired" -> Target_retired { target = str "target"; reason = str "reason" }
      | "round_end" ->
        Round_end { round = int "round"; active = int "active"; dur_ns = i64 "ns" }
      | "breaker_open" -> Breaker_open { fn = str "fn"; pc = int "pc" }
      | "breaker_close" -> Breaker_close { fn = str "fn"; pc = int "pc" }
      | other -> raise (Bad (Printf.sprintf "unknown event kind %S" other))
    in
    Ok ev
  with Bad msg -> Error msg

(* ---- sinks -------------------------------------------------------------------- *)

type ring_state = {
  cap : int;
  mutable arr : event array; (* allocated lazily on the first emit *)
  mutable next : int; (* next write slot *)
  mutable len : int; (* filled slots, <= cap *)
  mutable total : int;
  mutable lost : int; (* events overwritten after the ring filled *)
}

type sink =
  | Null
  | Ring of ring_state
  | Jsonl of { oc : out_channel; mutable written : int }

let null = Null

let ring ~capacity =
  if capacity < 1 then invalid_arg "Telemetry.ring: capacity < 1";
  Ring { cap = capacity; arr = [||]; next = 0; len = 0; total = 0; lost = 0 }

let jsonl oc = Jsonl { oc; written = 0 }

let enabled = function
  | Null -> false
  | Ring _ | Jsonl _ -> true

let emit sink ev =
  match sink with
  | Null -> ()
  | Ring r ->
    if Array.length r.arr = 0 then r.arr <- Array.make r.cap ev;
    r.arr.(r.next) <- ev;
    r.next <- (r.next + 1) mod r.cap;
    if r.len < r.cap then r.len <- r.len + 1 else r.lost <- r.lost + 1;
    r.total <- r.total + 1
  | Jsonl j ->
    output_string j.oc (event_to_json ev);
    output_char j.oc '\n';
    j.written <- j.written + 1

let emitted = function
  | Null -> 0
  | Ring r -> r.total
  | Jsonl j -> j.written

let dropped = function
  | Null | Jsonl _ -> 0
  | Ring r -> r.lost

let events = function
  | Null | Jsonl _ -> []
  | Ring r ->
    List.init r.len (fun i ->
        (* Oldest event first: when the ring has wrapped, the oldest
           slot is the next write position. *)
        let start = if r.len < r.cap then 0 else r.next in
        r.arr.((start + i) mod r.cap))

let replay src ~into = List.iter (emit into) (events src)

let flush = function
  | Null | Ring _ -> ()
  | Jsonl j -> Stdlib.flush j.oc

(* ---- phase metrics ------------------------------------------------------------- *)

type metrics = {
  mutable execute_ns : int64;
  mutable solve_ns : int64;
  mutable lower_ns : int64;
  mutable merge_ns : int64;
  solve_hist : Hist.t; (* per-query solve latency, cache hits included *)
  run_hist : Hist.t; (* per-run execution latency *)
}

let create_metrics () =
  { execute_ns = 0L;
    solve_ns = 0L;
    lower_ns = 0L;
    merge_ns = 0L;
    solve_hist = Hist.create ();
    run_hist = Hist.create () }

let phase_ns m = function
  | Execute -> m.execute_ns
  | Solve -> m.solve_ns
  | Lower -> m.lower_ns
  | Merge -> m.merge_ns

let add_phase m phase ns =
  match phase with
  | Execute -> m.execute_ns <- Int64.add m.execute_ns ns
  | Solve -> m.solve_ns <- Int64.add m.solve_ns ns
  | Lower -> m.lower_ns <- Int64.add m.lower_ns ns
  | Merge -> m.merge_ns <- Int64.add m.merge_ns ns

let add_metrics ~into m =
  List.iter (fun p -> add_phase into p (phase_ns m p)) phases;
  Hist.merge ~into:into.solve_hist m.solve_hist;
  Hist.merge ~into:into.run_hist m.run_hist

let total_ns m =
  List.fold_left (fun acc p -> Int64.add acc (phase_ns m p)) 0L phases

let timed m phase f =
  let t0 = now () in
  let r = f () in
  add_phase m phase (Int64.sub (now ()) t0);
  r

let seconds ns = Int64.to_float ns /. 1e9

let metrics_to_assoc m =
  List.map (fun p -> (phase_to_string p ^ "_s", seconds (phase_ns m p))) phases
  @ [ ("total_s", seconds (total_ns m)) ]

let metrics_to_string m =
  Printf.sprintf
    "phase timings: execute %.3fs  solve %.3fs  lower %.3fs  merge %.3fs  (total %.3fs)"
    (seconds m.execute_ns) (seconds m.solve_ns) (seconds m.lower_ns) (seconds m.merge_ns)
    (seconds (total_ns m))

let emit_phase_totals sink m =
  List.iter (fun p -> emit sink (Phase_total { phase = p; dur_ns = phase_ns m p })) phases

let hist_line name h =
  Printf.sprintf "%s latency: p50 <=%s  p90 <=%s  p99 <=%s  max %s  (%d samples)" name
    (ns_to_string (Hist.p50 h))
    (ns_to_string (Hist.p90 h))
    (ns_to_string (Hist.p99 h))
    (ns_to_string (Hist.max_ns h))
    (Hist.count h)

let latency_to_string m =
  hist_line "solve" m.solve_hist ^ "\n" ^ hist_line "run" m.run_hist

(* ---- trace summaries ------------------------------------------------------------ *)

type site_agg = {
  s_count : int;
  s_sat : int;
  s_unsat : int;
  s_unknown : int;
  s_hits : int;
  s_sliced : int;
  s_ns : int64;
}

type summary = {
  total_events : int;
  runs : int;
  branches : int;
  driver_branches : int;
  solves : int;
  solve_hits : int;
  solve_sat : int;
  solve_unsat : int;
  solve_unknown : int;
  solve_site_ns : int64;
  exec_run_ns : int64;
  inputs_updated : int;
  restarts : int;
  bugs : int;
  workers : int;
  crashes : int;
  phase_ns : (phase * int64) list;
  sites : ((string * int) * site_agg) list;
  timeline : cover_point list;
  site_dirs : ((string * int) * (bool * bool)) list;
}

and cover_point = {
  cp_run : int;
  cp_covered : int;
  cp_ns : int64;
}

let empty_agg =
  { s_count = 0; s_sat = 0; s_unsat = 0; s_unknown = 0; s_hits = 0; s_sliced = 0; s_ns = 0L }

let summarize evs =
  let runs = ref 0 and branches = ref 0 and solves = ref 0 and hits = ref 0 in
  let driver_branches = ref 0 in
  let sat = ref 0 and unsat = ref 0 and unknown = ref 0 in
  let solve_ns = ref 0L and exec_ns = ref 0L in
  let inputs = ref 0 and restarts = ref 0 and bugs = ref 0 and workers = ref 0 in
  let crashes = ref 0 in
  let phase_tbl : (phase, int64) Hashtbl.t = Hashtbl.create 4 in
  let site_tbl : (string * int, site_agg) Hashtbl.t = Hashtbl.create 32 in
  let dir_tbl : (string * int, bool * bool) Hashtbl.t = Hashtbl.create 32 in
  let points = ref [] in
  let count = ref 0 in
  List.iter
    (fun ev ->
      incr count;
      match ev with
      | Run_start _ -> incr runs
      | Run_end { dur_ns; _ } -> exec_ns := Int64.add !exec_ns dur_ns
      | Branch_taken { fn; pc; dir } ->
        if is_harness_site fn then incr driver_branches
        else begin
          incr branches;
          let taken, fallthrough =
            Option.value ~default:(false, false) (Hashtbl.find_opt dir_tbl (fn, pc))
          in
          Hashtbl.replace dir_tbl (fn, pc)
            (if dir then (true, fallthrough) else (taken, true))
        end
      | Solve_query { fn; pc; result; dur_ns; cache_hit; sliced } ->
        incr solves;
        if cache_hit then incr hits;
        (match result with
         | R_sat -> incr sat
         | R_unsat -> incr unsat
         | R_unknown -> incr unknown);
        solve_ns := Int64.add !solve_ns dur_ns;
        let prev = Option.value ~default:empty_agg (Hashtbl.find_opt site_tbl (fn, pc)) in
        Hashtbl.replace site_tbl (fn, pc)
          { s_count = prev.s_count + 1;
            s_sat = (prev.s_sat + if result = R_sat then 1 else 0);
            s_unsat = (prev.s_unsat + if result = R_unsat then 1 else 0);
            s_unknown = (prev.s_unknown + if result = R_unknown then 1 else 0);
            s_hits = (prev.s_hits + if cache_hit then 1 else 0);
            s_sliced = prev.s_sliced + sliced;
            s_ns = Int64.add prev.s_ns dur_ns }
      | Input_update _ -> incr inputs
      | Restart _ -> incr restarts
      | Bug_found _ -> incr bugs
      | Worker_spawn _ -> incr workers
      | Worker_drain _ -> ()
      | Worker_crash _ -> incr crashes
      | Checkpoint_saved _ -> ()
      | Phase_total { phase; dur_ns } ->
        let prev = Option.value ~default:0L (Hashtbl.find_opt phase_tbl phase) in
        Hashtbl.replace phase_tbl phase (Int64.add prev dur_ns)
      | Cover_point { run; covered; elapsed_ns } ->
        points := { cp_run = run; cp_covered = covered; cp_ns = elapsed_ns } :: !points
      | Target_scheduled _ | Slice_end _ | Target_retired _ | Round_end _ ->
        (* Campaign-scope events: aggregated by [Profile], not here. *)
        ()
      | Breaker_open _ | Breaker_close _ ->
        (* Breaker transitions: surfaced via [Solver.stats], not here. *)
        ())
    evs;
  let phase_ns =
    List.map
      (fun p -> (p, Option.value ~default:0L (Hashtbl.find_opt phase_tbl p)))
      phases
  in
  let sites =
    Hashtbl.fold (fun site agg acc -> (site, agg) :: acc) site_tbl []
    |> List.sort (fun (sa, a) (sb, b) ->
           match Int64.compare b.s_ns a.s_ns with 0 -> compare sa sb | c -> c)
  in
  let site_dirs =
    Hashtbl.fold (fun site dirs acc -> (site, dirs) :: acc) dir_tbl []
    |> List.sort compare
  in
  { total_events = !count;
    runs = !runs;
    branches = !branches;
    driver_branches = !driver_branches;
    solves = !solves;
    solve_hits = !hits;
    solve_sat = !sat;
    solve_unsat = !unsat;
    solve_unknown = !unknown;
    solve_site_ns = !solve_ns;
    exec_run_ns = !exec_ns;
    inputs_updated = !inputs;
    restarts = !restarts;
    bugs = !bugs;
    workers = !workers;
    crashes = !crashes;
    phase_ns;
    sites;
    timeline = List.rev !points;
    site_dirs }

(* ---- coverage-over-time views ------------------------------------------------- *)

let timeline evs =
  List.rev
    (List.fold_left
       (fun acc ev ->
         match ev with
         | Cover_point { run; covered; elapsed_ns } ->
           { cp_run = run; cp_covered = covered; cp_ns = elapsed_ns } :: acc
         | _ -> acc)
       [] evs)

let plateau s =
  match s.timeline with
  | [] -> None
  | points ->
    let last_run = ref 0 and last_gain = ref 0 and prev = ref 0 in
    List.iter
      (fun p ->
        last_run := p.cp_run;
        if p.cp_covered > !prev then last_gain := p.cp_run;
        prev := p.cp_covered)
      points;
    Some (!last_run, !last_run - !last_gain)

let frontier_sites s =
  List.filter_map
    (fun (site, (taken, fallthrough)) ->
      match (taken, fallthrough) with
      | true, true | false, false -> None
      | one_dir_taken, _ ->
        let attempts =
          match List.assoc_opt site s.sites with
          | Some a -> a.s_count
          | None -> 0
        in
        (* The missing direction is the one not yet seen. *)
        Some (site, not one_dir_taken, attempts))
    s.site_dirs
  |> List.sort (fun (sa, _, a) (sb, _, b) ->
         match compare b a with 0 -> compare sa sb | c -> c)

let distinct_branch_dirs s =
  List.fold_left
    (fun acc (_, (taken, fallthrough)) ->
      acc + (if taken then 1 else 0) + if fallthrough then 1 else 0)
    0 s.site_dirs

let summary_to_string s =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "trace: %d events (%d runs, %d branches + %d driver branches, %d solver queries, %d \
        inputs updated, %d restarts, %d bugs, %d workers)\n"
       s.total_events s.runs s.branches s.driver_branches s.solves s.inputs_updated
       s.restarts s.bugs s.workers);
  (* Crash count only appears when something actually crashed, keeping
     crash-free trace summaries byte-identical to earlier builds. *)
  if s.crashes > 0 then
    Buffer.add_string buf (Printf.sprintf "worker crashes: %d\n" s.crashes);
  Buffer.add_string buf
    (Printf.sprintf "solver: %d real queries + %d cache hits (%d sat, %d unsat, %d unknown)\n"
       (s.solves - s.solve_hits) s.solve_hits s.solve_sat s.solve_unsat s.solve_unknown);
  let total = List.fold_left (fun acc (_, ns) -> Int64.add acc ns) 0L s.phase_ns in
  Buffer.add_string buf "phases:\n";
  List.iter
    (fun (p, ns) ->
      let pct =
        if Int64.compare total 0L > 0 then
          100.0 *. Int64.to_float ns /. Int64.to_float total
        else 0.0
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-8s %10.3fms  (%5.1f%%)\n" (phase_to_string p) (seconds ns *. 1e3)
           pct))
    s.phase_ns;
  Buffer.add_string buf
    (Printf.sprintf "per-run execution time (from run_end): %.3fms\n"
       (seconds s.exec_run_ns *. 1e3));
  if s.sites <> [] then begin
    Buffer.add_string buf "solve sites (by total solver time):\n";
    List.iter
      (fun ((fn, pc), a) ->
        Buffer.add_string buf
          (Printf.sprintf
             "  %-28s %5d queries (%d sat, %d unsat, %d unknown), %d hits, %d sliced, \
              %.3fms\n"
             (Printf.sprintf "%s:%d" fn pc)
             a.s_count a.s_sat a.s_unsat a.s_unknown a.s_hits a.s_sliced
             (seconds a.s_ns *. 1e3)))
      s.sites
  end;
  (match plateau s with
   | None -> ()
   | Some (last_run, stale) ->
     (* Directed (and parallel) traces carry Branch_taken events, whose
        distinct-direction count is the merged coverage; random-testing
        traces run uninstrumented and carry only the Cover_point curve,
        so fall back to its final sample there. *)
     let covered =
       if s.site_dirs <> [] then distinct_branch_dirs s
       else match List.rev s.timeline with p :: _ -> p.cp_covered | [] -> 0
     in
     Buffer.add_string buf
       (Printf.sprintf
          "coverage: %d branch directions after %d runs (%d cover points); plateau: %d \
           runs since the last new direction\n"
          covered last_run (List.length s.timeline) stale));
  (match frontier_sites s with
   | [] -> ()
   | frontier ->
     Buffer.add_string buf "frontier sites (one direction missing, by solver attempts):\n";
     List.iter
       (fun ((fn, pc), missing_taken, attempts) ->
         Buffer.add_string buf
           (Printf.sprintf "  %-28s missing %s, %d solve attempts\n"
              (Printf.sprintf "%s:%d" fn pc)
              (if missing_taken then "taken-dir" else "fall-dir")
              attempts))
       frontier);
  Buffer.contents buf

(* ---- configuration --------------------------------------------------------------- *)

type config = {
  sink : sink;
  worker_buffer : int;
  status_path : string option;
  status_every : int;
}

let default_config =
  { sink = null; worker_buffer = 1 lsl 20; status_path = None; status_every = 100 }

let with_sink sink = { default_config with sink }

(* Re-exported flat-object parser so [Status] (and tests) can read the
   status-file schema without a second JSON parser. *)
let parse_flat line = try Ok (parse_flat_object line) with Bad msg -> Error msg
