module Options = struct
  type budget = {
    max_runs : int;
    stop_on_first_bug : bool;
  }

  type search = {
    seed : int;
    depth : int;
    strategy : Strategy.t;
  }

  type accel = {
    use_slicing : bool;
    use_cache : bool;
  }

  type t = {
    budget : budget;
    search : search;
    accel : accel;
    exec : Concolic.exec_options;
    telemetry : Telemetry.config;
  }

  let default =
    { budget = { max_runs = 10_000; stop_on_first_bug = true };
      search = { seed = 42; depth = 1; strategy = Strategy.Dfs };
      accel = { use_slicing = true; use_cache = true };
      exec = Concolic.default_exec_options;
      telemetry = Telemetry.default_config }

  let make ?(seed = default.search.seed) ?(depth = default.search.depth)
      ?(max_runs = default.budget.max_runs) ?(strategy = default.search.strategy)
      ?(stop_on_first_bug = default.budget.stop_on_first_bug)
      ?(use_slicing = default.accel.use_slicing) ?(use_cache = default.accel.use_cache)
      ?(exec = default.exec) ?(telemetry = default.telemetry) () =
    { budget = { max_runs; stop_on_first_bug };
      search = { seed; depth; strategy };
      accel = { use_slicing; use_cache };
      exec;
      telemetry }
end

type options = Options.t

type bug = {
  bug_fault : Machine.fault;
  bug_site : Machine.site;
  bug_run : int;
  bug_inputs : (int * int) list;
}

let bug_key b = (b.bug_site.Machine.site_fn, b.bug_site.Machine.site_pc, b.bug_fault)

type verdict =
  | Bug_found of bug
  | Complete
  | Budget_exhausted

type report = {
  verdict : verdict;
  runs : int;
  restarts : int;
  total_steps : int;
  branches_covered : int;
  coverage_sites : (string * int * bool) list;
  paths_explored : int;
  all_linear : bool;
  all_locs_definite : bool;
  solver_stats : Solver.stats;
  metrics : Telemetry.metrics;
  bugs : bug list;
}

type search_ctx = {
  sc_rng : Dart_util.Prng.t;
  sc_im : Inputs.t;
  sc_stats : Solver.stats;
  sc_cache : Solver.Cache.t;
  sc_metrics : Telemetry.metrics;
  sc_max_runs : int;
  sc_should_stop : unit -> bool;
}

let make_ctx ?(should_stop = fun () -> false)
    ?(metrics = Telemetry.create_metrics ()) ~seed ~max_runs () =
  { sc_rng = Dart_util.Prng.create seed;
    sc_im = Inputs.create ();
    sc_stats = Solver.create_stats ();
    sc_cache = Solver.Cache.create ();
    sc_metrics = metrics;
    sc_max_runs = max_runs;
    sc_should_stop = should_stop }

let prepare ?metrics ?(library_sigs = []) ~toplevel ~depth (ast : Minic.Ast.program) =
  let lower () =
    let ast = Driver_gen.generate ast ~toplevel ~depth in
    let tp = Minic.Typecheck.check ~library:library_sigs ast in
    Ram.Lower.lower_program tp
  in
  match metrics with
  | None -> lower ()
  | Some m -> Telemetry.timed m Telemetry.Lower lower

let outcome_to_string = function
  | Concolic.Run_fault _ -> "fault"
  | Concolic.Run_prediction_failure -> "prediction_failure"
  | Concolic.Run_halted -> "halted"

let search ~ctx ~(options : options) (prog : Ram.Instr.program) : report =
  let rng = ctx.sc_rng in
  let stats = ctx.sc_stats in
  let im = ctx.sc_im in
  let metrics = ctx.sc_metrics in
  let sink = options.Options.telemetry.Telemetry.sink in
  let tracing = Telemetry.enabled sink in
  let search_start = Telemetry.now () in
  let coverage : (string * int * bool, unit) Hashtbl.t = Hashtbl.create 256 in
  let bug_sites : (string * int * Machine.fault, unit) Hashtbl.t = Hashtbl.create 16 in
  let runs = ref 0 in
  let restarts = ref 0 in
  let total_steps = ref 0 in
  let paths = ref 0 in
  let all_linear = ref true in
  let all_locs_definite = ref true in
  let bugs = ref [] in
  let first_bug = ref None in
  let entry = Driver_gen.wrapper_name in
  let record_run (data : Concolic.run_data) =
    incr runs;
    total_steps := !total_steps + data.Concolic.steps;
    if not data.Concolic.all_linear then all_linear := false;
    if not data.Concolic.all_locs_definite then all_locs_definite := false;
    (* Driver-internal branch sites are excluded, keeping
       [branches_covered] consistent with [Coverage.compute] (which
       filters the same functions) for the same run. *)
    List.iter
      (fun ((fn, _, _) as site) ->
        if not (Coverage.is_driver_function fn) then Hashtbl.replace coverage site ())
      data.Concolic.branch_sites;
    (* One coverage-over-time sample per run: cumulative distinct user
       branch directions (the same set [branches_covered] reports) and
       wall clock since the search started. *)
    if tracing then
      Telemetry.emit sink
        (Telemetry.Cover_point
           { run = !runs;
             covered = Hashtbl.length coverage;
             elapsed_ns = Int64.sub (Telemetry.now ()) search_start })
  in
  let record_bug fault site (data : Concolic.run_data) =
    let bug =
      { bug_fault = fault;
        bug_site = site;
        bug_run = !runs;
        (* Only the inputs the faulting run actually read: IM may hold
           values set by earlier solver iterations along paths this run
           never took, and including them would make [bug_inputs] a
           non-minimal (and misleading) witness. *)
        bug_inputs =
          List.filter
            (fun (id, _) -> id < data.Concolic.inputs_read)
            (Inputs.to_alist im) }
    in
    if tracing then
      Telemetry.emit sink
        (Telemetry.Bug_found
           { fn = site.Machine.site_fn;
             pc = site.Machine.site_pc;
             fault = Machine.fault_to_string fault;
             run = !runs });
    let key = bug_key bug in
    if not (Hashtbl.mem bug_sites key) then begin
      Hashtbl.replace bug_sites key ();
      bugs := bug :: !bugs
    end;
    if !first_bug = None then first_bug := Some bug
  in
  (* One instrumented run, bracketed with Run_start/Run_end and timed
     into the Execute phase. *)
  let instrumented_run prev_stack =
    if tracing then Telemetry.emit sink (Telemetry.Run_start { run = !runs + 1 });
    let t0 = Telemetry.now () in
    let data = Concolic.run_once ~opts:options.Options.exec ~rng ~im ~prev_stack ~entry prog in
    let dur = Int64.sub (Telemetry.now ()) t0 in
    Telemetry.add_phase metrics Telemetry.Execute dur;
    if tracing then begin
      Array.iteri
        (fun i (fn, pc) ->
          Telemetry.emit sink
            (Telemetry.Branch_taken
               { fn; pc; dir = data.Concolic.stack.(i).Concolic.br_branch }))
        data.Concolic.cond_sites;
      Telemetry.emit sink
        (Telemetry.Run_end
           { run = !runs + 1;
             outcome = outcome_to_string data.Concolic.outcome;
             steps = data.Concolic.steps;
             dur_ns = dur })
    end;
    data
  in
  (* Run boundary: out of sharded budget, or an external cancellation
     (another worker found a bug) — in both cases the search drains. *)
  let budget_left () = !runs < ctx.sc_max_runs && not (ctx.sc_should_stop ()) in
  (* Inner loop: directed search from a fresh random seed point. Returns
     [`Bug], [`Exhausted] (directed search over) or [`Restart]. *)
  let directed_search () =
    let rec loop prev_stack =
      if not (budget_left ()) then `Budget
      else begin
        let data = instrumented_run prev_stack in
        record_run data;
        match data.Concolic.outcome with
        | Concolic.Run_fault (fault, site) ->
          record_bug fault site data;
          if options.Options.budget.Options.stop_on_first_bug then `Bug
          else begin
            (* Keep searching: treat the faulting path as fully
               explored and force the next branch. *)
            incr paths;
            continue_solving data
          end
        | Concolic.Run_prediction_failure ->
          (* forcing_ok = 0: caused by an earlier incompleteness; the
             outer loop restarts with fresh random inputs. *)
          all_linear := false;
          `Restart
        | Concolic.Run_halted ->
          incr paths;
          continue_solving data
      end
    and continue_solving data =
      let t0 = Telemetry.now () in
      let next =
        Solve_pc.solve
          ?cache:
            (if options.Options.accel.Options.use_cache then Some ctx.sc_cache else None)
          ~slicing:options.Options.accel.Options.use_slicing ~telemetry:sink
          ~sites:data.Concolic.cond_sites ~strategy:options.Options.search.Options.strategy
          ~rng ~stats ~im ~stack:data.Concolic.stack
          ~path_constraint:data.Concolic.path_constraint ()
      in
      Telemetry.add_phase metrics Telemetry.Solve (Int64.sub (Telemetry.now ()) t0);
      match next with
      | Solve_pc.Next_run stack' -> loop stack'
      | Solve_pc.Exhausted { solver_incomplete } ->
        if solver_incomplete then all_linear := false;
        `Exhausted
    in
    loop [||]
  in
  (* Theorem 1(b)'s completeness argument relies on the depth-first
     discipline: flipping a shallow branch discards the pending work
     beneath it, so BFS/random exhaustion does not imply full path
     coverage and only triggers a restart. *)
  let may_claim_complete () =
    options.Options.search.Options.strategy = Strategy.Dfs && !all_linear
    && !all_locs_definite
  in
  (* Outer loop (Figure 2): repeat until the directed search terminates
     with completeness flags intact, or the budget runs out. *)
  let complete = ref false in
  let restart () =
    incr restarts;
    if tracing then Telemetry.emit sink (Telemetry.Restart { restarts = !restarts })
  in
  let rec outer () =
    Inputs.clear im;
    match directed_search () with
    | `Bug -> ()
    | `Budget -> ()
    | `Restart ->
      if budget_left () then begin
        restart ();
        outer ()
      end
    | `Exhausted ->
      if may_claim_complete () then complete := true
      else if budget_left () then begin
        restart ();
        outer ()
      end
  in
  outer ();
  if tracing then begin
    Telemetry.emit_phase_totals sink metrics;
    Telemetry.flush sink
  end;
  let verdict =
    match !first_bug with
    | Some bug -> Bug_found bug
    | None -> if !complete then Complete else Budget_exhausted
  in
  { verdict;
    runs = !runs;
    restarts = !restarts;
    total_steps = !total_steps;
    branches_covered = Hashtbl.length coverage;
    coverage_sites = Hashtbl.fold (fun site () acc -> site :: acc) coverage [];
    paths_explored = !paths;
    all_linear = !all_linear;
    all_locs_definite = !all_locs_definite;
    solver_stats = stats;
    metrics;
    bugs = List.rev !bugs }

let run ?(options = Options.default) (prog : Ram.Instr.program) : report =
  let ctx =
    make_ctx ~seed:options.Options.search.Options.seed
      ~max_runs:options.Options.budget.Options.max_runs ()
  in
  search ~ctx ~options prog

let test_source ?(options = Options.default) ?(library_sigs = []) ~toplevel src =
  let ast = Minic.Parser.parse_program src in
  let metrics = Telemetry.create_metrics () in
  let prog =
    prepare ~metrics ~library_sigs ~toplevel
      ~depth:options.Options.search.Options.depth ast
  in
  let ctx =
    make_ctx ~metrics ~seed:options.Options.search.Options.seed
      ~max_runs:options.Options.budget.Options.max_runs ()
  in
  search ~ctx ~options prog

let verdict_to_string = function
  | Bug_found b ->
    Printf.sprintf "BUG FOUND: %s in %s (line %d) (run %d)"
      (Machine.fault_to_string b.bug_fault)
      b.bug_site.Machine.site_fn b.bug_site.Machine.site_loc.Minic.Loc.line b.bug_run
  | Complete -> "COMPLETE: all feasible paths explored, no bug"
  | Budget_exhausted -> "BUDGET EXHAUSTED: no bug found within the run budget"

let report_to_string r =
  (* Counters go through the abstract-stats assoc view; the key set is
     fixed by [Solver.to_assoc], so a missing key is a programming
     error. *)
  let a = Solver.to_assoc r.solver_stats in
  let g k = match List.assoc_opt k a with Some v -> v | None -> 0 in
  Printf.sprintf
    "%s\n\
     runs: %d  restarts: %d  paths: %d  steps: %d  branch-dirs covered: %d\n\
     all_linear: %b  all_locs_definite: %b\n\
     solver: %d queries (%d sat, %d unsat, %d unknown), %d fast-path, %d simplex, %d \
     ne-splits\n\
     accel: %d cache hits, %d cache misses, %d constraints sliced away\n\
     distinct bugs: %d"
    (verdict_to_string r.verdict) r.runs r.restarts r.paths_explored r.total_steps
    r.branches_covered r.all_linear r.all_locs_definite (g "queries") (g "sat")
    (g "unsat") (g "unknown") (g "fast_path") (g "simplex_queries") (g "ne_splits")
    (g "cache_hits") (g "cache_misses") (g "constraints_sliced_away")
    (List.length r.bugs)
