module Options = struct
  type budget = {
    max_runs : int;
    stop_on_first_bug : bool;
    time_budget_ns : int64 option;
    solver_deadline_ns : int64 option;
  }

  type search = {
    seed : int;
    depth : int;
    strategy : Strategy.t;
  }

  type accel = {
    use_slicing : bool;
    use_cache : bool;
    use_incremental : bool;
    use_shared_cache : bool;
    use_breaker : bool;
  }

  type priority =
    | Frontier_first
    | Declaration_order

  type campaign = {
    per_function_runs : int;
    priority : priority;
    retire_after : int;
    retry_limit : int; (* consecutive slice faults before quarantine *)
  }

  type t = {
    budget : budget;
    search : search;
    accel : accel;
    campaign : campaign;
    exec : Concolic.exec_options;
    telemetry : Telemetry.config;
    fault : Dart_util.Faultsim.t; (* fault injection; Faultsim.off in production *)
  }

  let default =
    { budget =
        { max_runs = 10_000;
          stop_on_first_bug = true;
          time_budget_ns = None;
          solver_deadline_ns = None };
      search = { seed = 42; depth = 1; strategy = Strategy.Dfs };
      accel =
        { use_slicing = true;
          use_cache = true;
          use_incremental = true;
          use_shared_cache = true;
          use_breaker = true };
      campaign =
        { per_function_runs = 200;
          priority = Frontier_first;
          retire_after = 2;
          retry_limit = 3 };
      exec = Concolic.default_exec_options;
      telemetry = Telemetry.default_config;
      fault = Dart_util.Faultsim.off }

  let make ?(seed = default.search.seed) ?(depth = default.search.depth)
      ?(max_runs = default.budget.max_runs) ?(strategy = default.search.strategy)
      ?(stop_on_first_bug = default.budget.stop_on_first_bug) ?time_budget_ns
      ?solver_deadline_ns ?(use_slicing = default.accel.use_slicing)
      ?(use_cache = default.accel.use_cache)
      ?(use_incremental = default.accel.use_incremental)
      ?(use_shared_cache = default.accel.use_shared_cache)
      ?(use_breaker = default.accel.use_breaker)
      ?(per_function_runs = default.campaign.per_function_runs)
      ?(priority = default.campaign.priority)
      ?(retire_after = default.campaign.retire_after)
      ?(retry_limit = default.campaign.retry_limit) ?(exec = default.exec)
      ?(telemetry = default.telemetry) ?(faultsim = Dart_util.Faultsim.off) () =
    { budget = { max_runs; stop_on_first_bug; time_budget_ns; solver_deadline_ns };
      search = { seed; depth; strategy };
      accel = { use_slicing; use_cache; use_incremental; use_shared_cache; use_breaker };
      campaign = { per_function_runs; priority; retire_after; retry_limit };
      exec;
      telemetry;
      fault = faultsim }

  let priority_to_string = function
    | Frontier_first -> "frontier"
    | Declaration_order -> "order"

  let priority_of_string = function
    | "frontier" -> Some Frontier_first
    | "order" -> Some Declaration_order
    | _ -> None
end

type options = Options.t

type bug = {
  bug_fault : Machine.fault;
  bug_site : Machine.site;
  bug_run : int;
  bug_inputs : (int * int) list;
}

let bug_key b = (b.bug_site.Machine.site_fn, b.bug_site.Machine.site_pc, b.bug_fault)

type verdict =
  | Bug_found of bug
  | Complete
  | Budget_exhausted
  | Time_exhausted
  | Interrupted

type report = {
  verdict : verdict;
  runs : int;
  restarts : int;
  total_steps : int;
  branches_covered : int;
  coverage_sites : (string * int * bool) list;
  paths_explored : int;
  resource_limited : int;
  all_linear : bool;
  all_locs_definite : bool;
  solver_stats : Solver.stats;
  metrics : Telemetry.metrics;
  bugs : bug list;
}

type snapshot = {
  sn_pending_restart : bool;
  sn_stack : Concolic.branch_record array;
  sn_im : (int * int * Inputs.kind) list;
  sn_rng : int64;
  sn_runs : int;
  sn_restarts : int;
  sn_total_steps : int;
  sn_paths : int;
  sn_resource_limited : int;
  sn_all_linear : bool;
  sn_all_locs_definite : bool;
  sn_coverage : (string * int * bool) list;
  sn_stats : (string * int) list;
  sn_bugs : bug list;
}

(* A worker's claim on the run budget: either a fixed private share
   (the classic budget sharding, and the only shape a solo search
   uses) or a reservation against a pool shared by every worker of a
   parallel search. Pooled workers claim runs one at a time with a CAS
   decrement, so a worker that drains its subtree early leaves the
   rest of the budget to its peers instead of stranding its shard. *)
type run_budget =
  | Fixed_budget of int
  | Pooled_budget of pooled_budget

and pooled_budget = { pb_pool : int Atomic.t; mutable pb_claimed : int }

let pooled_budget pool = Pooled_budget { pb_pool = pool; pb_claimed = 0 }

let rec claim_run pb =
  let avail = Atomic.get pb.pb_pool in
  if avail <= 0 then false
  else if Atomic.compare_and_set pb.pb_pool avail (avail - 1) then begin
    pb.pb_claimed <- pb.pb_claimed + 1;
    true
  end
  else claim_run pb

type search_ctx = {
  sc_rng : Dart_util.Prng.t;
  sc_im : Inputs.t;
  sc_stats : Solver.stats;
  sc_cache : Solver.Cache.t;
  sc_store : (Solver.Store.t * int) option;
  sc_incr : Solver.Incr.t option;
  sc_metrics : Telemetry.metrics;
  sc_budget : run_budget;
  sc_deadline : int64 option;
  sc_should_stop : unit -> bool;
  sc_breaker : Solver.Breaker.t option;
}

let make_ctx ?(should_stop = fun () -> false)
    ?(metrics = Telemetry.create_metrics ()) ?deadline ?pool ?store
    ?(incremental = true) ?(use_breaker = true) ?breaker ~seed ~max_runs () =
  { sc_rng = Dart_util.Prng.create seed;
    sc_im = Inputs.create ();
    sc_stats = Solver.create_stats ();
    sc_cache = Solver.Cache.create ();
    sc_store = store;
    sc_incr = (if incremental then Some (Solver.Incr.create ()) else None);
    sc_metrics = metrics;
    sc_budget =
      (match pool with Some p -> pooled_budget p | None -> Fixed_budget max_runs);
    sc_deadline = deadline;
    sc_should_stop = should_stop;
    sc_breaker =
      (* An explicit [breaker] survives across calls (campaign slices of
         one target share it); otherwise each context gets a fresh one. *)
      (match breaker with
       | Some _ as b -> b
       | None -> if use_breaker then Some (Solver.Breaker.create ()) else None) }

let deadline_of_options (options : Options.t) =
  Option.map
    (fun ns -> Int64.add (Telemetry.now ()) ns)
    options.Options.budget.Options.time_budget_ns

let prepare ?metrics ?(library_sigs = []) ~toplevel ~depth (ast : Minic.Ast.program) =
  let lower () =
    let ast = Driver_gen.generate ast ~toplevel ~depth in
    let tp = Minic.Typecheck.check ~library:library_sigs ast in
    Ram.Lower.lower_program tp
  in
  match metrics with
  | None -> lower ()
  | Some m -> Telemetry.timed m Telemetry.Lower lower

let outcome_to_string = function
  | Concolic.Run_fault _ -> "fault"
  | Concolic.Run_prediction_failure -> "prediction_failure"
  | Concolic.Run_halted -> "halted"

let search ?resume ?on_checkpoint ?(checkpoint_every = 256) ~ctx ~(options : options)
    (prog : Ram.Instr.program) : report =
  let rng = ctx.sc_rng in
  let stats = ctx.sc_stats in
  let im = ctx.sc_im in
  let metrics = ctx.sc_metrics in
  let sink = options.Options.telemetry.Telemetry.sink in
  let fs = options.Options.fault in
  let tracing = Telemetry.enabled sink in
  let status_path = options.Options.telemetry.Telemetry.status_path in
  let status_every = max 1 options.Options.telemetry.Telemetry.status_every in
  let search_start = Telemetry.now () in
  let coverage : (string * int * bool, unit) Hashtbl.t = Hashtbl.create 256 in
  let bug_sites : (string * int * Machine.fault, unit) Hashtbl.t = Hashtbl.create 16 in
  let runs = ref 0 in
  let restarts = ref 0 in
  let total_steps = ref 0 in
  let paths = ref 0 in
  let resource_limited = ref 0 in
  let all_linear = ref true in
  let all_locs_definite = ref true in
  let bugs = ref [] in
  let first_bug = ref None in
  (* Why the search drained, decided by the first [budget_left] poll
     that said stop; the verdict and the final checkpoint depend on
     it. *)
  let stop = ref `Running in
  let final_snapshot = ref None in
  let entry = Driver_gen.wrapper_name in
  (* Everything the run boundary determines, as a serializable value:
     writing this at run boundary b and replaying it later continues
     the exact sequence of runs an uninterrupted search would have
     performed (same RNG stream, same IM, same pending stack). *)
  let take_snapshot ~pending_restart ~stack =
    { sn_pending_restart = pending_restart;
      sn_stack = stack;
      sn_im = Inputs.to_full_alist im;
      sn_rng = Dart_util.Prng.state rng;
      sn_runs = !runs;
      sn_restarts = !restarts;
      sn_total_steps = !total_steps;
      sn_paths = !paths;
      sn_resource_limited = !resource_limited;
      sn_all_linear = !all_linear;
      sn_all_locs_definite = !all_locs_definite;
      sn_coverage =
        List.sort compare (Hashtbl.fold (fun site () acc -> site :: acc) coverage []);
      sn_stats = Solver.to_assoc stats;
      sn_bugs = List.rev !bugs }
  in
  (match resume with
   | None -> ()
   | Some s ->
     runs := s.sn_runs;
     restarts := s.sn_restarts;
     total_steps := s.sn_total_steps;
     paths := s.sn_paths;
     resource_limited := s.sn_resource_limited;
     all_linear := s.sn_all_linear;
     all_locs_definite := s.sn_all_locs_definite;
     Dart_util.Prng.set_state rng s.sn_rng;
     Inputs.restore im s.sn_im;
     List.iter (fun site -> Hashtbl.replace coverage site ()) s.sn_coverage;
     (* ctx stats start zeroed, so adding the checkpointed counters is
        a restore. *)
     Solver.add_stats ~into:stats (Solver.of_assoc s.sn_stats);
     List.iter (fun b -> Hashtbl.replace bug_sites (bug_key b) ()) s.sn_bugs;
     bugs := List.rev s.sn_bugs;
     first_bug := (match s.sn_bugs with b :: _ -> Some b | [] -> None));
  (* Frontier size for status snapshots: branch sites (harness sites
     already excluded from [coverage]) with exactly one direction
     seen. Only computed when a status file was requested. *)
  let frontier_size () =
    let dirs : (string * int, bool * bool) Hashtbl.t = Hashtbl.create 64 in
    Hashtbl.iter
      (fun (fn, pc, dir) () ->
        let taken, fallthrough =
          Option.value ~default:(false, false) (Hashtbl.find_opt dirs (fn, pc))
        in
        Hashtbl.replace dirs (fn, pc)
          (if dir then (true, fallthrough) else (taken, true)))
      coverage;
    Hashtbl.fold
      (fun _ (taken, fallthrough) acc -> if taken <> fallthrough then acc + 1 else acc)
      dirs 0
  in
  let status_write_failed = ref false in
  let write_status ~final path =
    let elapsed = Int64.sub (Telemetry.now ()) search_start in
    let execs_per_sec =
      if Int64.compare elapsed 0L <= 0 then 0
      else int_of_float (float_of_int !runs /. (Int64.to_float elapsed /. 1e9))
    in
    let h = metrics.Telemetry.solve_hist in
    (* Status is observability output: a full disk or revoked permission
       must degrade to a warning, never abort the search. Warn once. *)
    try
      if Dart_util.Faultsim.fire fs Dart_util.Faultsim.Io_error then
        raise (Sys_error (path ^ ": injected io_error (faultsim)"));
      Status.write ~path
      { Status.st_mode = Status.Run;
        st_elapsed_ns = elapsed;
        st_budget_ns = options.Options.budget.Options.time_budget_ns;
        st_runs = !runs;
        st_max_runs = options.Options.budget.Options.max_runs;
        st_execs_per_sec = execs_per_sec;
        st_bugs = List.length !bugs;
        st_covered = Hashtbl.length coverage;
        st_frontier = frontier_size ();
        st_done = (if final then 1 else 0);
        st_active = (if final then 0 else 1);
        st_remaining = 0;
        st_round = 0;
        st_solve_p50_ns = Telemetry.Hist.p50 h;
        st_solve_p99_ns = Telemetry.Hist.p99 h }
    with Sys_error msg ->
      if not !status_write_failed then begin
        status_write_failed := true;
        Printf.eprintf "dart: warning: status write failed: %s\n%!" msg
      end
  in
  let record_run (data : Concolic.run_data) =
    incr runs;
    total_steps := !total_steps + data.Concolic.steps;
    if not data.Concolic.all_linear then all_linear := false;
    if not data.Concolic.all_locs_definite then all_locs_definite := false;
    (* Harness-internal branch sites ([__dart_*] and synthetic [__coin]
       coins) are excluded, keeping [branches_covered] consistent with
       [Coverage.compute] and [Telemetry.summarize] for the same run. *)
    List.iter
      (fun ((fn, _, _) as site) ->
        if not (Driver_gen.is_harness_site fn) then Hashtbl.replace coverage site ())
      data.Concolic.branch_sites;
    (* One coverage-over-time sample per run: cumulative distinct user
       branch directions (the same set [branches_covered] reports) and
       wall clock since the search started. *)
    if tracing then
      Telemetry.emit sink
        (Telemetry.Cover_point
           { run = !runs;
             covered = Hashtbl.length coverage;
             elapsed_ns = Int64.sub (Telemetry.now ()) search_start });
    match status_path with
    | Some path when !runs mod status_every = 0 -> write_status ~final:false path
    | _ -> ()
  in
  let record_bug fault site (data : Concolic.run_data) =
    let bug =
      { bug_fault = fault;
        bug_site = site;
        bug_run = !runs;
        (* Only the inputs the faulting run actually read: IM may hold
           values set by earlier solver iterations along paths this run
           never took, and including them would make [bug_inputs] a
           non-minimal (and misleading) witness. *)
        bug_inputs =
          List.filter
            (fun (id, _) -> id < data.Concolic.inputs_read)
            (Inputs.to_alist im) }
    in
    if tracing then
      Telemetry.emit sink
        (Telemetry.Bug_found
           { fn = site.Machine.site_fn;
             pc = site.Machine.site_pc;
             fault = Machine.fault_to_string fault;
             run = !runs });
    let key = bug_key bug in
    if not (Hashtbl.mem bug_sites key) then begin
      Hashtbl.replace bug_sites key ();
      bugs := bug :: !bugs
    end;
    if !first_bug = None then first_bug := Some bug
  in
  (* One instrumented run, bracketed with Run_start/Run_end and timed
     into the Execute phase. *)
  let instrumented_run prev_stack =
    if tracing then Telemetry.emit sink (Telemetry.Run_start { run = !runs + 1 });
    let t0 = Telemetry.now () in
    let data = Concolic.run_once ~opts:options.Options.exec ~rng ~im ~prev_stack ~entry prog in
    let dur = Int64.sub (Telemetry.now ()) t0 in
    Telemetry.add_phase metrics Telemetry.Execute dur;
    Telemetry.Hist.add metrics.Telemetry.run_hist dur;
    if tracing then begin
      Array.iteri
        (fun i (fn, pc) ->
          Telemetry.emit sink
            (Telemetry.Branch_taken
               { fn; pc; dir = data.Concolic.stack.(i).Concolic.br_branch }))
        data.Concolic.cond_sites;
      Telemetry.emit sink
        (Telemetry.Run_end
           { run = !runs + 1;
             outcome = outcome_to_string data.Concolic.outcome;
             steps = data.Concolic.steps;
             dur_ns = dur })
    end;
    data
  in
  (* Run boundary: stop on process-wide interrupt (SIGINT/SIGTERM),
     global time budget, sharded run budget, or external cancellation
     (another worker found a bug) — in all cases the search drains
     cleanly and the first cause that fired names the verdict. *)
  let budget_left () =
    match !stop with
    | `Interrupt | `Time | `Budget | `Cancel -> false
    | `Running ->
      if Cancel.requested () then begin
        stop := `Interrupt;
        false
      end
      else if
        match ctx.sc_deadline with
        | None -> false
        | Some d -> Int64.compare (Telemetry.now ()) d >= 0
      then begin
        stop := `Time;
        false
      end
      else if
        match ctx.sc_budget with
        | Fixed_budget m -> !runs >= m
        | Pooled_budget pb ->
          (* Claim until we hold a reservation for the next run or the
             shared pool runs dry. *)
          let rec need () =
            if !runs < pb.pb_claimed then false
            else if claim_run pb then need ()
            else true
          in
          need ()
      then begin
        stop := `Budget;
        false
      end
      else if ctx.sc_should_stop () then begin
        stop := `Cancel;
        false
      end
      else true
  in
  (* Inner loop: directed search from a fresh random seed point. Returns
     [`Bug], [`Exhausted] (directed search over) or [`Restart].
     [prev_stack] is threaded so every boundary can snapshot the state
     the next run would consume. *)
  let directed_search init_stack =
    let rec loop prev_stack =
      if not (budget_left ()) then begin
        final_snapshot := Some (take_snapshot ~pending_restart:false ~stack:prev_stack);
        `Budget
      end
      else begin
        (match on_checkpoint with
         | Some save when !runs > 0 && !runs mod checkpoint_every = 0 ->
           save (take_snapshot ~pending_restart:false ~stack:prev_stack);
           if tracing then Telemetry.emit sink (Telemetry.Checkpoint_saved { run = !runs })
         | _ -> ());
        let data = instrumented_run prev_stack in
        let data =
          (* Injected machine fault: rewrite the finished run's outcome,
             exercising the classification below without a genuinely
             non-terminating workload. *)
          if
            Dart_util.Faultsim.is_on fs
            && Dart_util.Faultsim.fire fs Dart_util.Faultsim.Machine_step_limit
          then
            { data with
              Concolic.outcome =
                Concolic.Run_fault
                  ( Machine.Step_limit,
                    { Machine.site_fn = "__faultsim";
                      site_pc = 0;
                      site_loc = { Minic.Loc.file = "<faultsim>"; line = 0; col = 0 } } ) }
          else data
        in
        record_run data;
        match data.Concolic.outcome with
        | Concolic.Run_fault ((Machine.Step_limit | Machine.Call_depth), _) ->
          (* A run that exhausted its step budget or call stack is a
             resource-limited run, the paper's §3 treatment of
             non-termination: count it and restart with fresh random
             inputs — it is not a program bug, and its truncated path
             must not poison the directed state. *)
          incr resource_limited;
          `Restart
        | Concolic.Run_fault (fault, site) ->
          record_bug fault site data;
          if options.Options.budget.Options.stop_on_first_bug then `Bug
          else begin
            (* Keep searching: treat the faulting path as fully
               explored and force the next branch. *)
            incr paths;
            continue_solving data
          end
        | Concolic.Run_prediction_failure ->
          (* forcing_ok = 0: caused by an earlier incompleteness; the
             outer loop restarts with fresh random inputs. *)
          all_linear := false;
          `Restart
        | Concolic.Run_halted ->
          incr paths;
          continue_solving data
      end
    and continue_solving data =
      let t0 = Telemetry.now () in
      let next =
        Solve_pc.solve
          ?cache:
            (if options.Options.accel.Options.use_cache && Option.is_none ctx.sc_store then
               Some ctx.sc_cache
             else None)
          ?store:(if options.Options.accel.Options.use_cache then ctx.sc_store else None)
          ?incr:ctx.sc_incr ?breaker:ctx.sc_breaker
          ?deadline_ns:options.Options.budget.Options.solver_deadline_ns ~faultsim:fs
          ~slicing:options.Options.accel.Options.use_slicing ~telemetry:sink
          ~hist:metrics.Telemetry.solve_hist
          ~sites:data.Concolic.cond_sites ~strategy:options.Options.search.Options.strategy
          ~rng ~stats ~im ~stack:data.Concolic.stack
          ~path_constraint:data.Concolic.path_constraint ()
      in
      Telemetry.add_phase metrics Telemetry.Solve (Int64.sub (Telemetry.now ()) t0);
      match next with
      | Solve_pc.Next_run stack' -> loop stack'
      | Solve_pc.Exhausted { solver_incomplete } ->
        if solver_incomplete then all_linear := false;
        `Exhausted
    in
    loop init_stack
  in
  (* Theorem 1(b)'s completeness argument relies on the depth-first
     discipline: flipping a shallow branch discards the pending work
     beneath it, so BFS/random exhaustion does not imply full path
     coverage and only triggers a restart. *)
  let may_claim_complete () =
    options.Options.search.Options.strategy = Strategy.Dfs && !all_linear
    && !all_locs_definite
    (* A resource-limited run was truncated, not explored: its suffix
       paths are unvisited, so completeness cannot be claimed. *)
    && !resource_limited = 0
  in
  (* Outer loop (Figure 2): repeat until the directed search terminates
     with completeness flags intact, or the budget runs out. *)
  let complete = ref false in
  let restart () =
    incr restarts;
    (* In a single run the breaker's cooldown unit is the restart (a
       campaign ticks once per slice instead). *)
    Option.iter Solver.Breaker.tick ctx.sc_breaker;
    if tracing then Telemetry.emit sink (Telemetry.Restart { restarts = !restarts })
  in
  let rec outer stack =
    match directed_search stack with
    | `Bug -> ()
    | `Budget -> ()
    | `Restart -> try_restart ()
    | `Exhausted -> if may_claim_complete () then complete := true else try_restart ()
  and try_restart () =
    if budget_left () then begin
      restart ();
      Inputs.clear im;
      outer [||]
    end
    else
      (* The budget denied the restart itself: remember that the next
         action on resume is the restart, not a run from this stack. *)
      final_snapshot := Some (take_snapshot ~pending_restart:true ~stack:[||])
  in
  (match resume with
   | Some s when s.sn_pending_restart -> try_restart ()
   | Some s ->
     (* IM and RNG were restored above; re-run from the checkpointed
        pending stack exactly as the uninterrupted search would have. *)
     outer s.sn_stack
   | None ->
     Inputs.clear im;
     outer [||]);
  let verdict =
    match !first_bug with
    | Some bug -> Bug_found bug
    | None ->
      if !complete then Complete
      else begin
        match !stop with
        | `Interrupt -> Interrupted
        | `Time -> Time_exhausted
        | `Running | `Budget | `Cancel -> Budget_exhausted
      end
  in
  (* Partial verdicts get a final checkpoint, so an interrupted or
     timed-out search can be resumed without losing the tail since the
     last periodic save. *)
  (match verdict, on_checkpoint, !final_snapshot with
   | (Budget_exhausted | Time_exhausted | Interrupted), Some save, Some s ->
     save s;
     if tracing then Telemetry.emit sink (Telemetry.Checkpoint_saved { run = !runs })
   | _ -> ());
  if tracing then begin
    Telemetry.emit_phase_totals sink metrics;
    Telemetry.flush sink
  end;
  Option.iter (fun path -> write_status ~final:true path) status_path;
  { verdict;
    runs = !runs;
    restarts = !restarts;
    total_steps = !total_steps;
    branches_covered = Hashtbl.length coverage;
    coverage_sites = Hashtbl.fold (fun site () acc -> site :: acc) coverage [];
    paths_explored = !paths;
    resource_limited = !resource_limited;
    all_linear = !all_linear;
    all_locs_definite = !all_locs_definite;
    solver_stats = stats;
    metrics;
    bugs = List.rev !bugs }

let run ?resume ?on_checkpoint ?checkpoint_every ?(options = Options.default)
    (prog : Ram.Instr.program) : report =
  let ctx =
    make_ctx ?deadline:(deadline_of_options options)
      ~incremental:options.Options.accel.Options.use_incremental
      ~use_breaker:options.Options.accel.Options.use_breaker
      ~seed:options.Options.search.Options.seed
      ~max_runs:options.Options.budget.Options.max_runs ()
  in
  search ?resume ?on_checkpoint ?checkpoint_every ~ctx ~options prog

let test_source ?(options = Options.default) ?(library_sigs = []) ~toplevel src =
  let ast = Minic.Parser.parse_program src in
  let metrics = Telemetry.create_metrics () in
  let prog =
    prepare ~metrics ~library_sigs ~toplevel
      ~depth:options.Options.search.Options.depth ast
  in
  let ctx =
    make_ctx ~metrics ?deadline:(deadline_of_options options)
      ~incremental:options.Options.accel.Options.use_incremental
      ~use_breaker:options.Options.accel.Options.use_breaker
      ~seed:options.Options.search.Options.seed
      ~max_runs:options.Options.budget.Options.max_runs ()
  in
  search ~ctx ~options prog

let verdict_to_string = function
  | Bug_found b ->
    Printf.sprintf "BUG FOUND: %s in %s (line %d) (run %d)"
      (Machine.fault_to_string b.bug_fault)
      b.bug_site.Machine.site_fn b.bug_site.Machine.site_loc.Minic.Loc.line b.bug_run
  | Complete -> "COMPLETE: all feasible paths explored, no bug"
  | Budget_exhausted -> "BUDGET EXHAUSTED: no bug found within the run budget"
  | Time_exhausted -> "TIME EXHAUSTED: no bug found within the time budget"
  | Interrupted -> "INTERRUPTED: search stopped at a run boundary"

let report_to_string r =
  (* Counters go through the abstract-stats assoc view; the key set is
     fixed by [Solver.to_assoc], so a missing key is a programming
     error. *)
  let a = Solver.to_assoc r.solver_stats in
  let g k = match List.assoc_opt k a with Some v -> v | None -> 0 in
  let base =
    Printf.sprintf
      "%s\n\
       runs: %d  restarts: %d  paths: %d  steps: %d  branch-dirs covered: %d\n\
       all_linear: %b  all_locs_definite: %b\n\
       solver: %d queries (%d sat, %d unsat, %d unknown), %d fast-path, %d simplex, %d \
       ne-splits\n\
       accel: %d cache hits, %d cache misses, %d constraints sliced away\n\
       distinct bugs: %d"
      (verdict_to_string r.verdict) r.runs r.restarts r.paths_explored r.total_steps
      r.branches_covered r.all_linear r.all_locs_definite (g "queries") (g "sat")
      (g "unsat") (g "unknown") (g "fast_path") (g "simplex_queries") (g "ne_splits")
      (g "cache_hits") (g "cache_misses") (g "constraints_sliced_away")
      (List.length r.bugs)
  in
  (* Resilience counters are printed only when nonzero, keeping default
     runs byte-identical to builds that predate them. *)
  let b = Buffer.create (String.length base + 64) in
  Buffer.add_string b base;
  if r.resource_limited > 0 then
    Buffer.add_string b
      (Printf.sprintf "\nresource-limited runs: %d" r.resource_limited);
  if g "deadline_overruns" > 0 then
    Buffer.add_string b
      (Printf.sprintf "\nsolver deadline overruns: %d" (g "deadline_overruns"));
  (* The breaker only acts when deadlines overrun, so on a default run
     these stay zero and the report stays byte-identical. *)
  if Solver.breaker_opens r.solver_stats > 0 || Solver.breaker_skips r.solver_stats > 0
  then
    Buffer.add_string b
      (Printf.sprintf "\nbreaker: %d opens, %d queries short-circuited"
         (Solver.breaker_opens r.solver_stats)
         (Solver.breaker_skips r.solver_stats));
  Buffer.contents b
