(** The pure random-testing baseline every experiment in the paper
    compares against: the same generated test driver and random
    initialization (Figure 8), but fresh random inputs on every run and
    no symbolic execution, no constraint solving, no direction. *)

type report = {
  verdict : [ `Bug_found of Driver.bug | `No_bug | `Time_exhausted | `Interrupted ];
  runs : int;
  total_steps : int;
  branches_covered : int;
  resource_limited : int;
      (* runs that died on Step_limit/Call_depth: counted, not bugs *)
  coverage_sites : (string * int * bool) list;
}

val run :
  ?seed:int ->
  ?max_runs:int ->
  ?deadline:int64 ->
  ?exec:Concolic.exec_options ->
  ?telemetry:Telemetry.sink ->
  ?metrics:Telemetry.metrics ->
  Ram.Instr.program ->
  report
(** Entry point is {!Driver_gen.wrapper_name}, i.e. the program must
    have been prepared with {!Driver.prepare}. When [telemetry] is an
    enabled sink, each run emits [Run_start]/[Run_end] plus a
    [Cover_point] coverage-over-time sample (and [Bug_found] on a
    fault); [metrics] accumulates Execute-phase wall clock.

    The same run-boundary stop discipline as {!Driver.search}:
    {!Cancel.request} yields [`Interrupted], an expired [deadline]
    (absolute, {!Telemetry.now} scale) yields [`Time_exhausted], and
    runs that die on [Step_limit]/[Call_depth] are counted in
    [resource_limited] rather than reported as bugs. *)

val test_source :
  ?seed:int ->
  ?max_runs:int ->
  ?deadline:int64 ->
  ?depth:int ->
  ?library_sigs:Minic.Tast.fsig list ->
  ?telemetry:Telemetry.sink ->
  ?metrics:Telemetry.metrics ->
  toplevel:string ->
  string ->
  report

val report_to_string : report -> string
