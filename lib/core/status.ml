(* Live status snapshots: a single flat JSON object, atomically
   rewritten (write-then-rename, like Checkpoint.save) so a concurrent
   [dartc watch] always reads a complete object. Schema v1 is
   intentionally integer-only — it reuses the flat-object parser of the
   trace codec, which has no float production. *)

type mode =
  | Run
  | Campaign

let mode_to_string = function
  | Run -> "run"
  | Campaign -> "campaign"

let mode_of_string = function
  | "run" -> Some Run
  | "campaign" -> Some Campaign
  | _ -> None

type t = {
  st_mode : mode;
  st_elapsed_ns : int64;
  st_budget_ns : int64 option; (* global time budget; omitted when none *)
  st_runs : int;
  st_max_runs : int;
  st_execs_per_sec : int;
  st_bugs : int;
  st_covered : int; (* distinct user branch directions *)
  st_frontier : int; (* sites with exactly one direction seen *)
  st_done : int; (* retired targets (0/1 in single-target runs) *)
  st_active : int;
  st_remaining : int;
  st_round : int;
  st_solve_p50_ns : int64;
  st_solve_p99_ns : int64;
}

let schema = "dart-status"
let version = 1

let to_json st =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '{';
  let first = ref true in
  let raw k v =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_char buf '"';
    Buffer.add_string buf k;
    Buffer.add_string buf "\":";
    Buffer.add_string buf v
  in
  let str k v = raw k (Printf.sprintf "%S" v) in
  let int k v = raw k (string_of_int v) in
  let i64 k v = raw k (Int64.to_string v) in
  str "schema" schema;
  int "version" version;
  str "mode" (mode_to_string st.st_mode);
  i64 "elapsed_ns" st.st_elapsed_ns;
  (match st.st_budget_ns with None -> () | Some ns -> i64 "budget_ns" ns);
  int "runs" st.st_runs;
  int "max_runs" st.st_max_runs;
  int "execs_per_sec" st.st_execs_per_sec;
  int "bugs" st.st_bugs;
  int "covered" st.st_covered;
  int "frontier" st.st_frontier;
  int "done" st.st_done;
  int "active" st.st_active;
  int "remaining" st.st_remaining;
  int "round" st.st_round;
  i64 "solve_p50_ns" st.st_solve_p50_ns;
  i64 "solve_p99_ns" st.st_solve_p99_ns;
  Buffer.add_char buf '}';
  Buffer.contents buf

let of_json line =
  match Telemetry.parse_flat line with
  | Error msg -> Error msg
  | Ok fields ->
    let str k =
      match List.assoc_opt k fields with
      | Some (Telemetry.Jstr s) -> Ok s
      | _ -> Error (Printf.sprintf "missing string field %S" k)
    in
    let i64 k =
      match List.assoc_opt k fields with
      | Some (Telemetry.Jint v) -> Ok v
      | _ -> Error (Printf.sprintf "missing integer field %S" k)
    in
    let int k = Result.map Int64.to_int (i64 k) in
    let ( let* ) = Result.bind in
    let* s = str "schema" in
    if s <> schema then Error (Printf.sprintf "not a %s file (schema %S)" schema s)
    else
      let* v = int "version" in
      if v <> version then Error (Printf.sprintf "unsupported status version %d" v)
      else
        let* mode_s = str "mode" in
        let* mode =
          match mode_of_string mode_s with
          | Some m -> Ok m
          | None -> Error (Printf.sprintf "bad mode %S" mode_s)
        in
        let* elapsed_ns = i64 "elapsed_ns" in
        let budget_ns =
          match List.assoc_opt "budget_ns" fields with
          | Some (Telemetry.Jint v) -> Some v
          | _ -> None
        in
        let* runs = int "runs" in
        let* max_runs = int "max_runs" in
        let* execs_per_sec = int "execs_per_sec" in
        let* bugs = int "bugs" in
        let* covered = int "covered" in
        let* frontier = int "frontier" in
        let* done_ = int "done" in
        let* active = int "active" in
        let* remaining = int "remaining" in
        let* round = int "round" in
        let* solve_p50_ns = i64 "solve_p50_ns" in
        let* solve_p99_ns = i64 "solve_p99_ns" in
        Ok
          { st_mode = mode;
            st_elapsed_ns = elapsed_ns;
            st_budget_ns = budget_ns;
            st_runs = runs;
            st_max_runs = max_runs;
            st_execs_per_sec = execs_per_sec;
            st_bugs = bugs;
            st_covered = covered;
            st_frontier = frontier;
            st_done = done_;
            st_active = active;
            st_remaining = remaining;
            st_round = round;
            st_solve_p50_ns = solve_p50_ns;
            st_solve_p99_ns = solve_p99_ns }

let write ~path st =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_json st);
      output_char oc '\n';
      flush oc);
  Sys.rename tmp path

(* Transient conditions resolve by waiting for the writer's next atomic
   rename: the file is momentarily absent (deleted, not yet created) or
   empty. Malformed content never self-heals — renames are atomic, so a
   complete read that fails to parse means the file is not (or is no
   longer) a status file. *)
let read_classified ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error (`Transient msg)
  | exception End_of_file -> Error (`Transient "truncated status file")
  | contents ->
    let contents = String.trim contents in
    if contents = "" then Error (`Transient "empty status file")
    else (
      match of_json contents with
      | Ok st -> Ok st
      | Error msg -> Error (`Malformed msg))

let read ~path =
  match read_classified ~path with
  | Ok st -> Ok st
  | Error (`Transient msg) | Error (`Malformed msg) -> Error msg

(* Deterministic terminal rendering: every line is a pure function of
   the snapshot, so [dartc watch --once] output can be golden-tested. *)
let render st =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let pct a b = if b <= 0 then 0 else 100 * a / b in
  line "DART %s status" (mode_to_string st.st_mode);
  (match st.st_budget_ns with
   | Some budget ->
     line "  elapsed    %s / %s (%d%%)"
       (Telemetry.ns_to_string st.st_elapsed_ns)
       (Telemetry.ns_to_string budget)
       (pct (Int64.to_int (Int64.div st.st_elapsed_ns 1_000_000L))
          (Int64.to_int (Int64.div budget 1_000_000L)))
   | None -> line "  elapsed    %s" (Telemetry.ns_to_string st.st_elapsed_ns));
  line "  runs       %d / %d (%d%%), %d execs/sec" st.st_runs st.st_max_runs
    (pct st.st_runs st.st_max_runs)
    st.st_execs_per_sec;
  (match st.st_mode with
   | Campaign ->
     line "  targets    %d done, %d active, %d remaining (round %d)" st.st_done
       st.st_active st.st_remaining st.st_round
   | Run -> ());
  line "  coverage   %d branch directions, %d frontier sites" st.st_covered st.st_frontier;
  line "  bugs       %d" st.st_bugs;
  line "  solve      p50 <=%s  p99 <=%s"
    (Telemetry.ns_to_string st.st_solve_p50_ns)
    (Telemetry.ns_to_string st.st_solve_p99_ns);
  Buffer.contents buf
