(** Post-hoc wall-clock attribution over a recorded trace
    ([dartc profile TRACE.jsonl]).

    Answers "where did the time go" from the trace alone: per-phase
    totals (from [Phase_total]), run- and solve-latency histograms
    (rebuilt from per-event durations), the hottest solver sites by
    total query time, and — for campaign traces — a per-target table
    from the [Slice_end]/[Target_retired] stream. A pure function of
    the event list: same trace, same output. *)

type site_prof = {
  sp_fn : string;
  sp_pc : int;
  sp_queries : int;
  sp_total_ns : int64;
  sp_mean_ns : int64;
}

type target_prof = {
  tp_name : string;
  tp_slices : int;
  tp_runs : int; (* summed Slice_end runs *)
  tp_total_ns : int64; (* summed slice wall clock *)
  tp_retired : string option; (* retire reason; None = never retired *)
}

type t = {
  p_events : int;
  p_phase_ns : (Telemetry.phase * int64) list; (* all four phases *)
  p_run_hist : Telemetry.Hist.t;
  p_solve_hist : Telemetry.Hist.t;
  p_sites : site_prof list; (* total time descending, site ascending on ties *)
  p_targets : target_prof list; (* total time descending; empty for single-target traces *)
  p_rounds : int;
}

val of_events : Telemetry.event list -> t

val to_string : ?top:int -> t -> string
(** Render the attribution: phase table, both histogram dumps, the
    [top] (default 10) hottest solver sites, and the per-target table
    when the trace carries campaign events. *)
