(** Process-wide cooperative cancellation.

    One atomic flag, set from signal handlers (dartc installs
    SIGINT/SIGTERM handlers that call {!request}) and polled by every
    search loop at its run boundaries — the same drain discipline as
    {!Parallel}'s per-run early-cancel atomic, lifted to the whole
    process. A cancelled search finishes its current instrumented run,
    then stops with the [Interrupted] verdict and a complete partial
    report, so traces are flushed and checkpoints written instead of
    the process dying mid-write. *)

val request : unit -> unit
(** Ask every running search to stop at its next run boundary.
    Async-signal-safe: one atomic store. *)

val requested : unit -> bool

val reset : unit -> unit
(** Clear the flag (tests, and before starting a fresh search). *)
