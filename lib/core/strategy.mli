(** Branch-selection strategies for the directed search (paper
    footnote 4).

    Only {!Dfs} supports the completeness claim of Theorem 1(b): the
    single-stack bookkeeping discards pending sibling subtrees when a
    shallow branch is flipped, so {!Bfs} and {!Random_branch} are
    bug-finding heuristics whose exhaustion proves nothing (the driver
    restarts instead of claiming completeness). *)

type t =
  | Dfs (* deepest pending branch: the paper's default *)
  | Bfs (* shallowest pending branch *)
  | Random_branch

val to_string : t -> string

val of_string : string -> t option
(** Accepts ["dfs"], ["bfs"], ["random"] / ["random-branch"]. *)

type candidates
(** A mutable set of pending branch indices, supporting O(1) [choose]
    and O(1) [remove_failed] for every strategy (the directed search
    probes candidates until one solves, which was quadratic in stack
    depth with a list representation). *)

val candidates : int array -> candidates
(** The array must be in ascending order and is owned by the set
    afterwards. *)

val candidates_of_list : int list -> candidates
(** Same, from an ascending list. *)

val cardinal : candidates -> int
val to_list : candidates -> int list
(** Remaining candidates; ascending for {!Dfs}/{!Bfs}, unordered after
    {!Random_branch} removals. *)

val choose : t -> Dart_util.Prng.t -> candidates -> int option
(** Pick the next pending branch index; [None] when the set is
    empty. Does not remove the pick. *)

val remove_failed : t -> candidates -> unit
(** Drop candidates after the solver failed on the branch last
    returned by {!choose}: {!Dfs} discards it and every deeper
    candidate (Figure 5's ktry = j recursion); the other strategies
    drop just that one.
    @raise Invalid_argument without a preceding successful {!choose}. *)
