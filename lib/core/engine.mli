(** The one search entry point: [run session target].

    Every caller that used to plumb options, deadlines, contexts and
    telemetry by hand — single-shot [dartc], [dartc campaign], the
    bench harness — now builds a {!Session.t} once, describes what to
    test as a {!Target.t}, and calls {!run}. The engine picks the
    execution shape from the session ([jobs = 1] → one sequential
    {!Driver.search}; [jobs <> 1] → {!Parallel.run}; [`Random] mode →
    {!Random_search.run}) and reproduces the exact plumbing the
    callers used to do inline, so reports and traces are byte-for-byte
    what they were before the API existed. *)

(** What {!run} produced, shaped by the session and mode: a sequential
    directed report, a plain random-testing report, or a parallel
    report carrying the merged view plus per-worker detail. *)
type outcome =
  | Directed_report of Driver.report
  | Random_report of Random_search.report
  | Parallel_report of Parallel.report

val effective_options : Session.t -> Target.t -> Driver.options
(** The session's base options with the target's overrides applied:
    [tg_max_runs] replaces [budget.max_runs], [tg_time_budget_ns]
    replaces [budget.time_budget_ns]. ([tg_depth] acts earlier, at
    {!Session.prepare} time.) This is exactly the options record {!run}
    searches under — campaign checkpointing derives its metadata from
    it. *)

val run :
  ?mode:[ `Directed | `Random ] ->
  ?resume:Driver.snapshot ->
  ?on_checkpoint:(Driver.snapshot -> unit) ->
  ?checkpoint_every:int ->
  ?metrics:Telemetry.metrics ->
  Session.t ->
  Target.t ->
  outcome
(** Prepare the target through the session's cache (a hit adds no
    [Lower] time; pass [metrics] to fold preparation cost into the
    run's phase totals) and search it under {!effective_options}.

    Telemetry flows into the session options' sink, with the same
    end-of-run bookkeeping the inline callers performed: the random
    path emits its phase totals and flushes; the parallel path folds
    the preparation metrics into the merged report, emits the [Lower]
    phase total and flushes; the sequential path leaves flushing to
    the caller (its sink writes are synchronous), exactly as before.

    [resume] / [on_checkpoint] / [checkpoint_every] thread through to
    {!Driver.search}; they describe one sequential search's state.
    @raise Invalid_argument when they are combined with [`Random] mode
    or a session with [jobs <> 1]. *)

val exit_code : outcome -> int
(** The documented dartc exit status of an outcome: 1 bug found, 0
    clean (complete or budget-exhausted), 3 time-exhausted or
    interrupted. *)
