type source =
  | Text of { file : string option; text : string }
  | Parsed of Minic.Ast.program
  | Prepared of Ram.Instr.program

type t = {
  tg_source : source;
  tg_toplevel : string;
  tg_library_sigs : Minic.Tast.fsig list;
  tg_depth : int option;
  tg_max_runs : int option;
  tg_time_budget_ns : int64 option;
  tg_priority : int;
  tg_sink : Telemetry.sink option;
  tg_breaker : Solver.Breaker.t option;
  tg_key : string;
}

(* Cache identity of the source. Text sources hash their bytes; parsed
   ASTs hash their marshalled form (immutable, no closures), so two
   targets over the same library AST share every prepared program the
   session caches. Prepared programs are never cached (there is
   nothing left to prepare), so any unique key works. *)
let source_key = function
  | Text { text; _ } -> "text:" ^ Digest.to_hex (Digest.string text)
  | Parsed ast -> "ast:" ^ Digest.to_hex (Digest.string (Marshal.to_string ast []))
  | Prepared _ -> "prepared"

let make ?depth ?max_runs ?time_budget_ns ?(priority = 0) ?(library_sigs = []) ?sink
    ?breaker ~toplevel source =
  { tg_source = source;
    tg_toplevel = toplevel;
    tg_library_sigs = library_sigs;
    tg_depth = depth;
    tg_max_runs = max_runs;
    tg_time_budget_ns = time_budget_ns;
    tg_priority = priority;
    tg_sink = sink;
    tg_breaker = breaker;
    tg_key = source_key source }

let of_text ?file ~toplevel text = make ~toplevel (Text { file; text })
let of_ast ~toplevel ast = make ~toplevel (Parsed ast)
let of_prepared prog = make ~toplevel:Driver_gen.wrapper_name (Prepared prog)

let describe t =
  Printf.sprintf "%s (%s)" t.tg_toplevel
    (match t.tg_source with
     | Text _ -> "text"
     | Parsed _ -> "ast"
     | Prepared _ -> "prepared")
