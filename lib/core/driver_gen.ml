(** Test-driver generation (paper §3.2, technique 2).

    Synthesizes, at the AST level, the nondeterministic driver the
    paper generates as C code: a [__dart_main] function that calls the
    toplevel function [depth] times, each argument supplied by a fresh
    per-position external function — so every argument value is an
    input DART controls. External variables are initialized by the
    engine directly in memory (the host-side [random_init]), and
    external functions declared by the program are simulated by the
    engine at call time; both follow Figure 8's recursive rules. *)

open Minic

let wrapper_name = "__dart_main"

let arg_fn_name i = Printf.sprintf "__dart_arg%d" i

let is_driver_function name =
  name = wrapper_name
  || String.length name >= 7 && String.sub name 0 7 = "__dart_"

let coin_site = "__coin"

let is_harness_site name = is_driver_function name || name = coin_site

exception No_toplevel of string

let find_toplevel (prog : Ast.program) name =
  let found =
    List.find_opt
      (fun g ->
        match g with
        | Ast.Gfun f -> f.Ast.fname = name && f.Ast.fbody <> None
        | Ast.Gstruct _ | Ast.Gvar _ | Ast.Genum _ -> false)
      prog
  in
  match found with
  | Some (Ast.Gfun f) -> f
  | _ -> raise (No_toplevel name)

(** Extend [prog] with the generated driver. The result's entry point
    is {!wrapper_name}. *)
let generate (prog : Ast.program) ~toplevel ~depth : Ast.program =
  let f = find_toplevel prog toplevel in
  let protos =
    List.mapi
      (fun i (ty, _) ->
        Ast.Gfun
          { Ast.fname = arg_fn_name i;
            fret = ty;
            fparams = [];
            fbody = None;
            floc = Loc.dummy })
      f.Ast.fparams
  in
  let e d = Ast.mk_expr d in
  let s d = Ast.mk_stmt d in
  let counter = "__dart_i" in
  let call_args = List.mapi (fun i _ -> e (Ast.Ecall (arg_fn_name i, []))) f.Ast.fparams in
  let call = s (Ast.Sexpr (e (Ast.Ecall (toplevel, call_args)))) in
  let loop =
    s
      (Ast.Sfor
         ( Some (s (Ast.Sdecl (Ctype.Tint, counter, Some (Ast.Init_expr (e (Ast.Eint 0)))))),
           Some (e (Ast.Ebinop (Ast.Lt, e (Ast.Evar counter), e (Ast.Eint depth)))),
           Some
             (s
                (Ast.Sassign
                   ( e (Ast.Evar counter),
                     e (Ast.Ebinop (Ast.Add, e (Ast.Evar counter), e (Ast.Eint 1))) ))),
           [ call ] ))
  in
  let main =
    Ast.Gfun
      { Ast.fname = wrapper_name;
        fret = Ctype.Tvoid;
        fparams = [];
        fbody = Some [ loop ];
        floc = Loc.dummy }
  in
  prog @ protos @ [ main ]

(** The generated driver rendered as MiniC source (what the paper's
    Figure 7 shows for the AC-controller). *)
let driver_source (prog : Ast.program) ~toplevel ~depth =
  let full = generate prog ~toplevel ~depth in
  let added =
    List.filteri (fun i _ -> i >= List.length prog) full
  in
  Pretty.program_to_string added
