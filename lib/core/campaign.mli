(** Campaign mode: test every discoverable function of a MiniC library
    in one invocation (the paper's oSIP experiment, §4.3, as a
    first-class workflow).

    {2 Discovery}

    A campaign target is any function with a body whose parameters are
    all scalar ([int]/[char]/pointer — exactly what the generated
    driver can feed), excluding the harness's own helpers
    ({!Driver_gen.is_harness_site} is the single source of truth, so
    [__dart_*] wrappers and the [__coin] site can never appear as
    targets or in aggregate coverage denominators). Functions skipped
    for non-scalar parameters are reported with the offending type.

    {2 Scheduling}

    Targets are tested in budget slices of
    [options.campaign.per_function_runs] instrumented runs, scheduled
    in rounds: each round runs one slice for every still-active target
    (across [jobs] worker domains), then settles retirements. A target
    retires when its slice verdict is terminal ([Bug_found] /
    [Complete]), when it hits the per-target [budget.max_runs] cap, or
    as saturated after [options.campaign.retire_after] consecutive
    slices without a new branch direction. Active targets re-enter the
    next round — a budget refill — ordered by
    [options.campaign.priority]: [Frontier_first] ranks them by
    frontier-site count (sites with exactly one direction exercised)
    from their latest coverage, so refills flow to the functions where
    the directed search still has branches to flip.

    Slices resume each other through in-memory {!Driver.snapshot}s:
    target results are a deterministic function of (options, target)
    alone, independent of [jobs] and of scheduling order — the same
    seed yields the same retired set, deduped crash list and aggregate
    coverage at [--jobs 1] and [--jobs 8].

    {2 Crash dedup and aggregation}

    Crashes are deduped library-wide by {!Driver.bug_key} — the same
    defect reached from two entry points is one crash, attributed to
    the first target (in declaration order) that exposed it. Aggregate
    coverage is the union of per-target coverage sites over the whole
    library.

    {2 Checkpoint/resume}

    A campaign checkpoint ([dart-campaign v2], same line discipline and
    %-escaping as {!Checkpoint}, plus a CRC-32 trailer per record block)
    records the campaign meta and the finished targets with their
    results. Resuming re-runs unfinished targets from scratch; because
    per-target results are deterministic, the resumed campaign's
    aggregate report equals the uninterrupted one's. Self-healing: with
    salvage enabled a damaged checkpoint restores its longest valid
    prefix instead of refusing. *)

type retire =
  | Bug (* slice verdict Bug_found *)
  | Complete (* directed search proved the target exhausted (within depth) *)
  | Saturated (* retire_after consecutive slices with no new direction *)
  | Budget_capped (* per-target max_runs cap reached *)
  | Quarantined of string
      (* [options.campaign.retry_limit] consecutive slice faults
         (worker exception, injected crash); the payload is the last
         fault's description. The target keeps the runs, coverage and
         bugs its successful slices earned. *)

type target_result = {
  tr_name : string;
  tr_index : int; (* declaration order, 0-based *)
  tr_runs : int; (* instrumented runs over all slices *)
  tr_slices : int;
  tr_retired : retire;
  tr_coverage : (string * int * bool) list; (* sorted (fn, pc, dir) triples *)
  tr_bugs : Driver.bug list; (* distinct bugs this target exposed *)
  tr_overruns : int; (* solver deadline overruns over all slices *)
  tr_bopens : int; (* circuit-breaker opens over all slices *)
}

(** [Stopped_early reason]: {!Cancel} or the campaign time budget fired;
    the results cover the targets finished by then and [cam_unfinished]
    names the rest (a checkpoint written at that point resumes them). *)
type status = Finished | Stopped_early of string

type report = {
  cam_targets : string list; (* discovered, declaration order *)
  cam_skipped : (string * string) list; (* (function, reason), declaration order *)
  cam_results : target_result list; (* finished targets, declaration order *)
  cam_unfinished : string list; (* empty when [cam_status = Finished] *)
  cam_crashes : (string * Driver.bug) list;
      (* (target, bug) deduped by {!Driver.bug_key}, sorted by key *)
  cam_status : status;
  cam_resumed : int; (* finished targets restored from --resume *)
  cam_metrics : Telemetry.metrics;
      (* phase totals and latency histograms summed over every slice of
         the session (restored targets contribute nothing — their
         slices ran in the checkpointed process) *)
  cam_times : (string * int64) list;
      (* per-target cumulative slice wall clock this session,
         declaration order; feeds the report heatmap and [dartc
         profile]'s per-target table. Wall-clock content: excluded from
         determinism diffs, like the "phases" JSON line. *)
}

val discover : Minic.Ast.program -> string list * (string * string) list
(** [(targets, skipped)]: testable functions and the (name, reason)
    pairs rejected, both in declaration order. *)

val frontier_count : (string * int * bool) list -> int
(** Sites with exactly one direction in the list — the priority signal
    {!run} feeds from each slice's coverage. *)

val run :
  ?jobs:int ->
  ?options:Driver.options ->
  ?time_budget_ns:int64 ->
  ?checkpoint:string ->
  ?resume:string ->
  ?salvage:bool ->
  ?file:string ->
  ?progress:(string -> unit) ->
  string ->
  (report, string) result
(** Run a campaign over MiniC source text. [jobs] (default 1, 0 = one
    per core) bounds the worker domains; [options] carries the
    per-target budgets and the [campaign] sub-group; [time_budget_ns]
    is the campaign-wide wall clock (checked between slices and at
    every run boundary inside them); [checkpoint] persists finished
    targets after every round; [resume] restores a prior checkpoint
    (its meta — seed, depth, budgets, strategy, library digest — must
    match); [salvage] (default false) makes a corrupted or truncated
    [resume] file degrade to its longest CRC-valid prefix plus a
    progress warning instead of an [Error]. [progress] receives one
    human-readable line per round and per retirement (dartc points it
    at stderr, keeping stdout deterministic).

    Fault tolerance: a slice that escapes with an exception (worker
    crash, injected fault) does not kill the campaign — the target
    backs off for a deterministic, exponentially growing number of
    rounds and is retried; after [options.campaign.retry_limit]
    consecutive faults it retires as [Quarantined]. Status-file and
    checkpoint write failures ([Sys_error]: disk full, permissions)
    degrade to a one-time progress warning; the search continues.

    [Error] covers usage-level failures: zero targets discovered, an
    unreadable or mismatched [resume] file. Parse/typecheck errors
    raise as they do in {!Driver.test_source}.

    Observability: when [options.telemetry.sink] is enabled, each slice
    traces into a private ring replayed into the main sink at settle,
    bracketed by campaign-scope events (Target_scheduled / Slice_end /
    Target_retired, one Round_end per round), with the sink flushed per
    round and phase totals emitted at the end — so the trace order is
    deterministic (declaration order within each round) and independent
    of [jobs]. When [options.telemetry.status_path] is set, a
    {!Status} snapshot is atomically rewritten at every round boundary
    and at exit. Slices themselves never touch the main sink or the
    status file.
    @raise Invalid_argument if [jobs < 0]. *)

val aggregate_sites : report -> (string * int * bool) list
(** Union of every finished target's coverage, sorted — feed it to
    {!Cover_report.compute} over any one prepared program of the
    library for the aggregate lcov/HTML view. *)

val no_lost_targets : report -> bool
(** Ledger invariant: every discovered target appears exactly once
    across results, skipped and unfinished. The chaos soak (and its CI
    leg) asserts this — injected faults may quarantine a target but
    must never lose it. *)

val report_to_string : report -> string
(** Deterministic aggregate text report (no wall-clock content): totals,
    retirement histogram (plus a quarantine list when any target was
    quarantined), deduped crash list, aggregate coverage. *)

val to_json : report -> string
(** Machine-readable aggregate (one JSON object, 2-space indented,
    trailing newline): campaign counters, per-target results, deduped
    crashes, aggregate coverage totals. Deterministic except for the
    single ["phases"] line (wall-clock phase totals and latency
    percentiles from [cam_metrics]) — byte-diffs across runs must
    filter it, like the ["resumed"] counter. *)

(** {1 Checkpoint codec} *)

val save : path:string -> options:Driver.options -> library:string -> report -> unit
(** Atomic write of the campaign checkpoint: meta derived from
    [options] plus [Digest.string library], then one record block per
    finished target. *)

val load :
  ?salvage:(string -> unit) ->
  path:string ->
  options:Driver.options ->
  library:string ->
  unit ->
  (target_result list, string) result
(** Parse and validate a checkpoint against the current campaign
    configuration; [Error] names the first mismatch (including "this is
    a single-shot checkpoint — resume it with plain [dartc --resume]").

    With [salvage], corruption (CRC mismatch, truncation, unparseable
    content) no longer errors: the longest valid record prefix is
    restored, and [salvage] receives one warning line describing what
    was lost. A campaign-configuration mismatch still returns [Error]
    even in salvage mode — a healthy checkpoint of a different campaign
    is not corruption. *)

val meta_line : options:Driver.options -> library:string -> string
(** The one-line campaign meta record: seed, depth, per-target and
    per-slice budgets, retire threshold, strategy and the library
    source digest — everything per-target determinism depends on.
    {!load} refuses a checkpoint whose meta line differs. *)

val to_string : options:Driver.options -> library:string -> report -> string
val of_string : string -> (string * target_result list, string) result
(** The codec itself, exposed for tests: [of_string] returns the raw
    meta line and the finished-target results; [load] adds the meta
    equality check. Each record block carries a CRC-32 trailer line
    ([crc <8 hex digits>] over the block's raw bytes); [of_string]
    rejects any mismatch, salvage recovers the prefix before it. *)
