(** Live status snapshots ([--status FILE] / [dartc watch]).

    A running search (or campaign) periodically rewrites a small flat
    JSON object — schema v1, integer fields only — using the same
    write-then-rename discipline as {!Checkpoint.save}, so a concurrent
    reader always sees a complete snapshot. [dartc watch FILE] renders
    it as a terminal status view. *)

type mode =
  | Run (* single-target dartc run *)
  | Campaign (* whole-library campaign *)

val mode_to_string : mode -> string
val mode_of_string : string -> mode option

type t = {
  st_mode : mode;
  st_elapsed_ns : int64; (* wall clock since the search started *)
  st_budget_ns : int64 option; (* --time-budget, when set *)
  st_runs : int; (* cumulative concolic/random runs *)
  st_max_runs : int; (* total run budget *)
  st_execs_per_sec : int; (* cumulative, elapsed-averaged *)
  st_bugs : int; (* distinct bugs so far *)
  st_covered : int; (* distinct user branch directions *)
  st_frontier : int; (* branch sites with one direction missing *)
  st_done : int; (* campaign: retired targets; run: 0 until final *)
  st_active : int; (* campaign: live targets; run: 1 until final *)
  st_remaining : int; (* campaign: never scheduled / dropped *)
  st_round : int; (* campaign scheduling round; 0 in run mode *)
  st_solve_p50_ns : int64; (* solve-latency percentiles (upper bounds) *)
  st_solve_p99_ns : int64;
}

val schema : string
(** ["dart-status"], the value of the ["schema"] field. *)

val version : int
(** Current schema version (1). *)

val to_json : t -> string
(** One flat JSON object (no trailing newline); [budget_ns] is omitted
    when [st_budget_ns] is [None]. *)

val of_json : string -> (t, string) result

val write : path:string -> t -> unit
(** Atomic snapshot write: [path ^ ".tmp"] then rename. *)

val read : path:string -> (t, string) result
(** Read and parse a status file; [Error] carries a one-line reason
    (I/O failure, truncation, or schema violation). *)

val read_classified : path:string -> (t, [ `Transient of string | `Malformed of string ]) result
(** Like {!read}, but splits failures by whether waiting can fix them.
    [`Transient]: the file is missing, unreadable or empty — the writer
    may simply not have renamed its next snapshot into place yet, so a
    follower should keep polling. [`Malformed]: a complete read that is
    not a valid status object — atomic renames mean this never
    self-heals, so a follower should stop. [dartc watch] follow mode
    waits on the former and exits 2 on the latter. *)

val render : t -> string
(** Deterministic multi-line terminal view of a snapshot — a pure
    function of [t], so [dartc watch --once] can be golden-tested. *)
