(** Test-driver generation (paper §3.2, technique 2).

    Synthesizes, at the AST level, the nondeterministic driver the
    paper generates as C code: a [__dart_main] that calls the toplevel
    function [depth] times, each argument supplied by a fresh
    per-position external function — so every argument value is an
    input DART controls. External variables are initialized by the
    engine directly in memory, and declared external functions are
    simulated at call time; both follow Figure 8. *)

val wrapper_name : string
(** The generated entry point, ["__dart_main"]. *)

val arg_fn_name : int -> string
(** The external function supplying the i-th toplevel argument. *)

val is_driver_function : string -> bool
(** Whether [name] is part of the synthesized test driver (the
    [__dart_*] wrapper and argument functions). The single source of
    truth for the predicate {!Coverage.is_driver_function} re-exports,
    {!Telemetry.summarize} uses to split trace branch counts, and
    {!Campaign} discovery uses to keep harness helpers out of the
    target list. *)

val coin_site : string
(** The synthetic function name ["__coin"] that {!Concolic} attributes
    symbolic pointer-shape coin tosses to: coins have no machine branch
    site, so traces key them by input id under this name. *)

val is_harness_site : string -> bool
(** [is_driver_function name || name = coin_site]: every branch site
    the harness itself introduces, as opposed to the program under
    test. Coverage accounting, telemetry summaries and campaign target
    discovery all route through this one predicate. *)

exception No_toplevel of string

val generate : Minic.Ast.program -> toplevel:string -> depth:int -> Minic.Ast.program
(** Extend the program with the generated driver.
    @raise No_toplevel if [toplevel] is not a defined function. *)

val driver_source : Minic.Ast.program -> toplevel:string -> depth:int -> string
(** Only the generated part, pretty-printed (the paper's Figure 7). *)
