open Zarith_lite
open Symbolic

type next =
  | Next_run of Concolic.branch_record array
  | Exhausted of { solver_incomplete : bool }

(* Domain constraints from input kinds: chars live in 0..255, pointer
   coins in 0..1 (ints already carry the solver's 32-bit box). *)
let domain_constraints im vars =
  List.concat_map
    (fun v ->
      let range lo hi =
        [ Constr.make (Linexpr.sub (Linexpr.of_int lo) (Linexpr.var v)) Constr.Le0;
          Constr.make (Linexpr.sub (Linexpr.var v) (Linexpr.of_int hi)) Constr.Le0 ]
      in
      match Inputs.kind_of im v with
      | Some Inputs.Kchar -> range 0 255
      | Some Inputs.Kcoin -> range 0 1
      | Some Inputs.Kint | None -> [])
    vars

let solve ~strategy ~rng ~stats ~im ~stack ~path_constraint =
  let n = Array.length stack in
  assert (Array.length path_constraint = n);
  let candidates =
    Strategy.candidates_of_list
      (List.filter
         (fun j -> (not stack.(j).Concolic.br_done) && path_constraint.(j) <> None)
         (List.init n Fun.id))
  in
  let solver_incomplete = ref false in
  let rec go () =
    match Strategy.choose strategy rng candidates with
    | None -> Exhausted { solver_incomplete = !solver_incomplete }
    | Some j ->
      let pivot =
        match path_constraint.(j) with
        | Some c -> Constr.negate c
        | None -> assert false
      in
      let prefix =
        List.filter_map (fun h -> path_constraint.(h)) (List.init j Fun.id)
      in
      let base_cs = pivot :: prefix in
      let vars =
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun c -> List.iter (fun v -> Hashtbl.replace tbl v ()) (Constr.vars c))
          base_cs;
        Hashtbl.fold (fun v () acc -> v :: acc) tbl []
      in
      let cs = base_cs @ domain_constraints im vars in
      let prefer v = Option.map Zint.of_int (Inputs.value_of im v) in
      (match Solver.solve ~stats ~prefer cs with
       | Solver.Sat model ->
         (* IM + IM': overwrite solved inputs, keep the rest. *)
         List.iter
           (fun (v, z) -> Inputs.set im ~id:v (Dart_util.Word32.of_zint_trunc z))
           model;
         let next_stack =
           Array.init (j + 1) (fun i ->
               if i = j then
                 { Concolic.br_branch = not stack.(j).Concolic.br_branch; br_done = false }
               else stack.(i))
         in
         Next_run next_stack
       | Solver.Unsat ->
         (* Figure 5 recurses with ktry = j: depth-first discards all
            deeper candidates; other strategies just drop this one. *)
         Strategy.remove_failed strategy candidates;
         go ()
       | Solver.Unknown ->
         solver_incomplete := true;
         Strategy.remove_failed strategy candidates;
         go ())
  in
  go ()
