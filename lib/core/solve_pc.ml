open Zarith_lite
open Symbolic

type next =
  | Next_run of Concolic.branch_record array
  | Exhausted of { solver_incomplete : bool }

(* Domain constraints from input kinds: chars live in 0..255, pointer
   coins in 0..1 (ints already carry the solver's 32-bit box). *)
let domain_constraints im vars =
  List.concat_map
    (fun v ->
      let range lo hi =
        [ Constr.make (Linexpr.sub (Linexpr.of_int lo) (Linexpr.var v)) Constr.Le0;
          Constr.make (Linexpr.sub (Linexpr.var v) (Linexpr.of_int hi)) Constr.Le0 ]
      in
      match Inputs.kind_of im v with
      | Some Inputs.Kchar -> range 0 255
      | Some Inputs.Kcoin -> range 0 1
      | Some Inputs.Kint | None -> [])
    vars

(* Unrelated-constraint elimination (paper §2.6; the "independent
   constraint" optimisation of the concolic line): partition
   [pivot :: prefix] into variable-connected components with a
   union-find over [Constr.vars], and keep only the pivot's component.

   Dropping the other components is exact, not an approximation: the
   previous run's inputs satisfy every prefix constraint (they *were*
   the executed path), so each component disjoint from the pivot is
   independently satisfiable by the current IM, and the solver's
   [prefer] completion would reproduce those values anyway. Solving
   only the pivot's component and leaving the untouched inputs at their
   IM values is therefore the same IM + IM' update as solving the whole
   conjunction (paper Fig. 5). *)
let slice ~pivot ~prefix =
  let parent : (Linexpr.var, Linexpr.var) Hashtbl.t = Hashtbl.create 32 in
  let rec find v =
    match Hashtbl.find_opt parent v with
    | None ->
      Hashtbl.replace parent v v;
      v
    | Some p when p = v -> v
    | Some p ->
      let r = find p in
      Hashtbl.replace parent v r;
      r
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  let connect c =
    match Constr.vars c with
    | [] -> ()
    | v :: rest -> List.iter (union v) rest
  in
  connect pivot;
  List.iter connect prefix;
  match Constr.vars pivot with
  | [] ->
    (* A variable-free pivot cannot be forced by any input; keep the
       full conjunction and let the solver report Unsat. *)
    (pivot :: prefix, 0)
  | pv :: _ ->
    let proot = find pv in
    let kept, dropped =
      List.partition
        (fun c ->
          match Constr.vars c with
          | [] -> true
          | v :: _ -> find v = proot)
        prefix
    in
    (pivot :: kept, List.length dropped)

let solve ?cache ?store ?incr ?breaker ?(slicing = true) ?deadline_ns
    ?(faultsim = Dart_util.Faultsim.off) ?(telemetry = Telemetry.null) ?hist
    ?(sites = [||]) ~strategy ~rng ~stats ~im ~stack ~path_constraint () =
  let n = Array.length stack in
  assert (Array.length path_constraint = n);
  let tracing = Telemetry.enabled telemetry in
  (* Per-query deadline predicate, built fresh at each real solver call
     (cache hits never consume deadline budget or injection shots). An
     injected overrun is a predicate that is constantly true: it rides
     the same degradation path as a genuine timeout, so the test
     exercises exactly the production behaviour. *)
  let solver_deadline () =
    if
      Dart_util.Faultsim.is_on faultsim
      && Dart_util.Faultsim.fire faultsim Dart_util.Faultsim.Solver_deadline
    then Some (fun () -> true)
    else
      match deadline_ns with
      | None -> None
      | Some ns ->
        let dl = Int64.add (Telemetry.now ()) ns in
        Some (fun () -> Int64.compare (Telemetry.now ()) dl >= 0)
  in
  let site_of j =
    if j >= 0 && j < Array.length sites then sites.(j) else ("?", j)
  in
  let candidates =
    Strategy.candidates_of_list
      (List.filter
         (fun j -> (not stack.(j).Concolic.br_done) && path_constraint.(j) <> None)
         (List.init n Fun.id))
  in
  let solver_incomplete = ref false in
  (* One pivot-solve attempt. [j] is the flipped branch (for trace
     attribution), [sliced] how many prefix constraints independence
     slicing already dropped; [cs] is [pivot :: kept @ domains]. *)
  let solve_query ~j ~sliced ~pivot ~kept ~domains cs =
    match breaker with
    | Some b when Solver.Breaker.skip b (site_of j) ->
      (* Open breaker: the site has burned [threshold] consecutive
         deadlines in a row, so the query would almost surely overrun
         again. Short-circuit to the answer it would have produced —
         Unknown — at zero cost. Not a real query: no [queries] count,
         no histogram sample, no Solve_query event, and never cached. *)
      Solver.record_breaker_skip stats;
      Solver.Unknown
    | _ ->
    let prefer v = Option.map Zint.of_int (Inputs.value_of im v) in
    (* Timed unconditionally: the clock read is noise next to a solver
       call, and the latency histogram wants every query (cache hits
       included) even when event tracing is off. *)
    let t0 = Telemetry.now () in
    (* The real solver call, through the incremental context when one
       is attached (results are identical; the context only reuses
       prepared pipeline stages across the shared prefix). *)
    let run_solver () =
      match incr with
      | Some ictx ->
        Solver.Incr.solve ictx ~stats ~prefer ?deadline:(solver_deadline ()) ~pivot
          ~prefix:kept ~domains ()
      | None -> Solver.solve ~stats ~prefer ?deadline:(solver_deadline ()) cs
    in
    (* Breaker accounting wraps only real solver calls (cache hits are
       free and prove nothing about the site). A query "fails" the site
       when it returns Unknown *because the deadline overran*; the
       structural Unknowns of solver incompleteness never trip the
       breaker, which keeps default output byte-identical to
       --no-breaker on nonlinear workloads. *)
    let run_solver () =
      match breaker with
      | None -> run_solver ()
      | Some b ->
        let overruns_before = Solver.deadline_overruns stats in
        let r = run_solver () in
        let failed =
          match r with
          | Solver.Unknown -> Solver.deadline_overruns stats > overruns_before
          | Solver.Sat _ | Solver.Unsat -> false
        in
        (match Solver.Breaker.record b (site_of j) ~failed with
         | `Opened ->
           Solver.record_breaker_open stats;
           if tracing then begin
             let fn, pc = site_of j in
             Telemetry.emit telemetry (Telemetry.Breaker_open { fn; pc })
           end
         | `Closed ->
           if tracing then begin
             let fn, pc = site_of j in
             Telemetry.emit telemetry (Telemetry.Breaker_close { fn; pc })
           end
         | `None -> ());
        r
    in
    let result, cache_hit =
      match (store, cache) with
      | Some (st, worker), _ ->
        (* Shared cross-worker store: a hit may have been published by
           any worker; a miss doubles as a frontier claim. *)
        let keyed = Solver.Cache.canonical cs in
        (match Solver.Store.acquire st ~worker keyed with
         | Solver.Store.Hit (v, publisher) ->
           Solver.record_cache_hit stats;
           if publisher <> worker then Solver.record_shared_hit stats;
           ((match v with
             | Solver.Cache.Sat model -> Solver.Sat model
             | Solver.Cache.Unsat -> Solver.Unsat),
            true)
         | Solver.Store.Claimed | Solver.Store.Busy _ ->
           Solver.record_cache_miss stats;
           let r = run_solver () in
           (match r with
            | Solver.Sat model ->
              Solver.Store.publish st ~worker keyed (Solver.Cache.Sat model)
            | Solver.Unsat -> Solver.Store.publish st ~worker keyed Solver.Cache.Unsat
            | Solver.Unknown -> ());
           (r, false))
      | None, Some cache ->
        let key = Solver.Cache.canonical cs in
        (match Solver.Cache.find cache key with
         | Some (Solver.Cache.Sat model) ->
           Solver.record_cache_hit stats;
           (Solver.Sat model, true)
         | Some Solver.Cache.Unsat ->
           Solver.record_cache_hit stats;
           (Solver.Unsat, true)
         | None ->
           Solver.record_cache_miss stats;
           let r = run_solver () in
           (match r with
            | Solver.Sat model -> Solver.Cache.add cache key (Solver.Cache.Sat model)
            | Solver.Unsat -> Solver.Cache.add cache key Solver.Cache.Unsat
            | Solver.Unknown -> ());
           (r, false))
      | None, None -> (run_solver (), false)
    in
    let dur_ns = Int64.sub (Telemetry.now ()) t0 in
    (match hist with None -> () | Some h -> Telemetry.Hist.add h dur_ns);
    if tracing then begin
      let fn, pc = site_of j in
      Telemetry.emit telemetry
        (Telemetry.Solve_query
           { fn;
             pc;
             result =
               (match result with
                | Solver.Sat _ -> Telemetry.R_sat
                | Solver.Unsat -> Telemetry.R_unsat
                | Solver.Unknown -> Telemetry.R_unknown);
             dur_ns;
             cache_hit;
             sliced })
    end;
    result
  in
  let rec go () =
    match Strategy.choose strategy rng candidates with
    | None -> Exhausted { solver_incomplete = !solver_incomplete }
    | Some j ->
      let pivot =
        match path_constraint.(j) with
        | Some c -> Constr.negate c
        | None -> assert false
      in
      let prefix =
        List.filter_map (fun h -> path_constraint.(h)) (List.init j Fun.id)
      in
      let kept, sliced =
        if slicing then begin
          let kept_with_pivot, dropped = slice ~pivot ~prefix in
          Solver.record_sliced stats dropped;
          (List.tl kept_with_pivot, dropped)
        end
        else (prefix, 0)
      in
      let base_cs = pivot :: kept in
      let vars =
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun c -> List.iter (fun v -> Hashtbl.replace tbl v ()) (Constr.vars c))
          base_cs;
        Hashtbl.fold (fun v () acc -> v :: acc) tbl []
      in
      let domains = domain_constraints im vars in
      let cs = base_cs @ domains in
      (match solve_query ~j ~sliced ~pivot ~kept ~domains cs with
       | Solver.Sat model ->
         (* IM + IM': overwrite solved inputs, keep the rest (with
            slicing, inputs outside the pivot's component are never in
            the model and keep their current values). *)
         List.iter
           (fun (v, z) ->
             let w = Dart_util.Word32.of_zint_trunc z in
             Inputs.set im ~id:v w;
             if tracing then
               Telemetry.emit telemetry (Telemetry.Input_update { id = v; value = w }))
           model;
         let next_stack =
           Array.init (j + 1) (fun i ->
               if i = j then
                 { Concolic.br_branch = not stack.(j).Concolic.br_branch; br_done = false }
               else stack.(i))
         in
         Next_run next_stack
       | Solver.Unsat ->
         (* Figure 5 recurses with ktry = j: depth-first discards all
            deeper candidates; other strategies just drop this one. *)
         Strategy.remove_failed strategy candidates;
         go ()
       | Solver.Unknown ->
         solver_incomplete := true;
         Strategy.remove_failed strategy candidates;
         go ())
  in
  go ()
