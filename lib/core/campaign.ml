(* Whole-library campaign mode. See campaign.mli for the contract; the
   load-bearing invariant throughout is that a target's result is a
   deterministic function of (options, target) alone — slices resume
   each other through in-memory snapshots, every slice starts with a
   cold solve cache, and nothing a worker computes depends on what the
   other workers are doing — so jobs and scheduling order can only
   change wall clock, never the report. *)

module O = Driver.Options

type retire = Bug | Complete | Saturated | Budget_capped | Quarantined of string

type target_result = {
  tr_name : string;
  tr_index : int;
  tr_runs : int;
  tr_slices : int;
  tr_retired : retire;
  tr_coverage : (string * int * bool) list;
  tr_bugs : Driver.bug list;
  tr_overruns : int; (* cumulative solver deadline overruns across slices *)
  tr_bopens : int; (* cumulative circuit-breaker opens across slices *)
}

type status = Finished | Stopped_early of string

type report = {
  cam_targets : string list;
  cam_skipped : (string * string) list;
  cam_results : target_result list;
  cam_unfinished : string list;
  cam_crashes : (string * Driver.bug) list;
  cam_status : status;
  cam_resumed : int;
  cam_metrics : Telemetry.metrics;
  cam_times : (string * int64) list;
}

(* ---- discovery ------------------------------------------------------------------- *)

let discover (ast : Minic.Ast.program) =
  let targets = ref [] in
  let skipped = ref [] in
  List.iter
    (function
      | Minic.Ast.Gfun f when f.Minic.Ast.fbody <> None ->
        let name = f.Minic.Ast.fname in
        (* Driver_gen.is_harness_site is the single source of truth:
           __dart_* helpers (from a source file that embeds a generated
           driver) and the __coin site can never become targets. *)
        if not (Driver_gen.is_harness_site name) then begin
          match
            List.find_opt
              (fun (ty, _) -> not (Minic.Ctype.is_scalar ty))
              f.Minic.Ast.fparams
          with
          | Some (ty, p) ->
            skipped :=
              ( name,
                Printf.sprintf "parameter %s has non-scalar type %s" p
                  (Minic.Ctype.to_string ty) )
              :: !skipped
          | None -> targets := name :: !targets
        end
      | _ -> ())
    ast;
  (List.rev !targets, List.rev !skipped)

(* ---- frontier signal ------------------------------------------------------------- *)

let frontier_count sites =
  let tbl : (string * int, bool * bool) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (fn, pc, dir) ->
      let taken, fall = Option.value ~default:(false, false) (Hashtbl.find_opt tbl (fn, pc)) in
      Hashtbl.replace tbl (fn, pc) (taken || dir, fall || not dir))
    sites;
  Hashtbl.fold (fun _ (taken, fall) acc -> if taken <> fall then acc + 1 else acc) tbl 0

(* ---- checkpoint codec ------------------------------------------------------------ *)

let magic = "dart-campaign"
let version = 2

let retire_tag = function
  | Bug -> "bug"
  | Complete -> "complete"
  | Saturated -> "saturated"
  | Budget_capped -> "capped"
  | Quarantined _ -> "quarantined"

let bool_tag b = if b then "1" else "0"

(* Everything a target's deterministic result depends on, one line;
   [load] insists on byte equality, so a resumed campaign can only ever
   continue the run it checkpointed. The priority policy is absent on
   purpose: it reorders work without changing any result. *)
let meta_line ~(options : Driver.options) ~library =
  Printf.sprintf
    "meta seed=%d depth=%d max_runs=%d per_function_runs=%d retire_after=%d \
     retry_limit=%d strategy=%s all_bugs=%s library=%s"
    options.O.search.O.seed options.O.search.O.depth options.O.budget.O.max_runs
    options.O.campaign.O.per_function_runs options.O.campaign.O.retire_after
    options.O.campaign.O.retry_limit
    (Strategy.to_string options.O.search.O.strategy)
    (bool_tag (not options.O.budget.O.stop_on_first_bug))
    (Digest.to_hex (Digest.string library))

(* One target = one block of lines followed by a "crc" trailer over the
   block's exact bytes, so a truncated or bit-flipped record is
   detectable on its own and everything before it stays loadable (the
   salvage path below). A quarantined target carries its reason as a
   trailing escaped token — {!Checkpoint.escape} makes it space-free. *)
let target_block tr =
  let buf = Buffer.create 256 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let esc = Checkpoint.escape in
  (match tr.tr_retired with
   | Quarantined reason ->
     line "target %s %d %d %d %s %d %d %s" (esc tr.tr_name) tr.tr_index tr.tr_runs
       tr.tr_slices (retire_tag tr.tr_retired) tr.tr_overruns tr.tr_bopens (esc reason)
   | _ ->
     line "target %s %d %d %d %s %d %d" (esc tr.tr_name) tr.tr_index tr.tr_runs
       tr.tr_slices (retire_tag tr.tr_retired) tr.tr_overruns tr.tr_bopens);
  line "cover %d" (List.length tr.tr_coverage);
  List.iter
    (fun (fn, pc, dir) -> line "c %s %d %s" (esc fn) pc (bool_tag dir))
    tr.tr_coverage;
  line "bugs %d" (List.length tr.tr_bugs);
  List.iter
    (fun (b : Driver.bug) ->
      let loc = b.Driver.bug_site.Machine.site_loc in
      Buffer.add_string buf
        (Printf.sprintf "bug %s %s %d %s %d %d %d %d"
           (Machine.fault_tag b.Driver.bug_fault)
           (esc b.Driver.bug_site.Machine.site_fn)
           b.Driver.bug_site.Machine.site_pc (esc loc.Minic.Loc.file)
           loc.Minic.Loc.line loc.Minic.Loc.col b.Driver.bug_run
           (List.length b.Driver.bug_inputs));
      List.iter
        (fun (id, v) -> Buffer.add_string buf (Printf.sprintf " %d:%d" id v))
        b.Driver.bug_inputs;
      Buffer.add_char buf '\n')
    tr.tr_bugs;
  Buffer.contents buf

let to_string ~options ~library report =
  let buf = Buffer.create 4096 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  line "%s v%d" magic version;
  line "%s" (meta_line ~options ~library);
  line "finished %d" (List.length report.cam_results);
  List.iter
    (fun tr ->
      let block = target_block tr in
      Buffer.add_string buf block;
      line "crc %s" (Dart_util.Crc32.to_hex (Dart_util.Crc32.string block)))
    report.cam_results;
  line "end";
  Buffer.contents buf

exception Bad of string

(* Shared parser. In strict mode any defect rejects the whole file; in
   salvage mode a defect inside the target blocks keeps the records
   already parsed (the longest valid prefix — every block is
   CRC-verified, so a truncated or corrupted record never survives).
   Header defects reject the file in both modes: there is nothing to
   salvage without a trusted meta line. *)
let parse ~salvage text =
  let lines = ref (List.filter (fun l -> l <> "") (String.split_on_char '\n' text)) in
  let next what =
    match !lines with
    | [] -> raise (Bad (Printf.sprintf "unexpected end of file, wanted %s" what))
    | l :: rest ->
      lines := rest;
      l
  in
  (* Raw bytes of the block being parsed, rebuilt line by line for the
     CRC check ([to_string] never emits empty lines, so the rebuild is
     byte-exact). *)
  let block = Buffer.create 256 in
  let next_b what =
    let l = next what in
    Buffer.add_string block l;
    Buffer.add_char block '\n';
    l
  in
  let tokens l = String.split_on_char ' ' l in
  let int_tok what t =
    match int_of_string_opt t with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "bad integer in %s: %S" what t))
  in
  let bool_tok what = function
    | "0" -> false
    | "1" -> true
    | t -> raise (Bad (Printf.sprintf "bad boolean in %s: %S" what t))
  in
  let unesc what t =
    match Checkpoint.unescape t with
    | Ok s -> s
    | Error msg -> raise (Bad (Printf.sprintf "%s in %s" msg what))
  in
  let expect_counted what =
    match tokens (next_b what) with
    | [ tag; count ] when tag = what -> int_tok what count
    | _ -> raise (Bad (Printf.sprintf "expected %S record" what))
  in
  let parse_block () =
    Buffer.clear block;
    let tr_name, tr_index, tr_runs, tr_slices, tr_retired, tr_overruns, tr_bopens =
      match tokens (next_b "target") with
      | "target" :: name :: index :: runs :: slices :: tag :: overruns :: bopens :: rest ->
        let retired =
          match (tag, rest) with
          | "bug", [] -> Bug
          | "complete", [] -> Complete
          | "saturated", [] -> Saturated
          | "capped", [] -> Budget_capped
          | "quarantined", [ reason ] -> Quarantined (unesc "target" reason)
          | _ -> raise (Bad (Printf.sprintf "unknown retire reason %S" tag))
        in
        ( unesc "target" name,
          int_tok "target" index,
          int_tok "target" runs,
          int_tok "target" slices,
          retired,
          int_tok "target" overruns,
          int_tok "target" bopens )
      | _ -> raise (Bad "expected \"target\" record")
    in
    let n_cov = expect_counted "cover" in
    let tr_coverage =
      List.init n_cov (fun _ ->
          match tokens (next_b "c") with
          | [ "c"; fn; pc; dir ] ->
            (unesc "c" fn, int_tok "c" pc, bool_tok "c" dir)
          | _ -> raise (Bad "expected \"c\" record"))
    in
    let n_bugs = expect_counted "bugs" in
    let tr_bugs =
      List.init n_bugs (fun _ ->
          match tokens (next_b "bug") with
          | "bug" :: fault :: fn :: pc :: file :: lno :: col :: run :: n_inputs
            :: inputs ->
            let bug_fault =
              match Machine.fault_of_tag fault with
              | Some f -> f
              | None -> raise (Bad (Printf.sprintf "unknown fault %S" fault))
            in
            let n_inputs = int_tok "bug" n_inputs in
            if List.length inputs <> n_inputs then
              raise (Bad "bug input count mismatch");
            { Driver.bug_fault;
              bug_site =
                { Machine.site_fn = unesc "bug" fn;
                  site_pc = int_tok "bug" pc;
                  site_loc =
                    { Minic.Loc.file = unesc "bug" file;
                      line = int_tok "bug" lno;
                      col = int_tok "bug" col } };
              bug_run = int_tok "bug" run;
              bug_inputs =
                List.map
                  (fun e ->
                    match String.split_on_char ':' e with
                    | [ id; v ] -> (int_tok "bug" id, int_tok "bug" v)
                    | _ -> raise (Bad (Printf.sprintf "bad bug input %S" e)))
                  inputs }
          | _ -> raise (Bad "expected \"bug\" record"))
    in
    (* The CRC trailer is outside the checksummed bytes. *)
    (match tokens (next "crc") with
     | [ "crc"; hex ] ->
       (match Dart_util.Crc32.of_hex hex with
        | None -> raise (Bad (Printf.sprintf "bad crc %S" hex))
        | Some expected ->
          let actual = Dart_util.Crc32.string (Buffer.contents block) in
          if actual <> expected then
            raise
              (Bad
                 (Printf.sprintf "checksum mismatch in record for %s (corrupted checkpoint)"
                    tr_name)))
     | _ -> raise (Bad "expected \"crc\" record"));
    { tr_name; tr_index; tr_runs; tr_slices; tr_retired; tr_coverage; tr_bugs;
      tr_overruns; tr_bopens }
  in
  try
    (match tokens (next "magic") with
     | [ m; v ] when m = magic ->
       if v <> Printf.sprintf "v%d" version then
         raise
           (Bad
              (Printf.sprintf "unsupported campaign checkpoint version %s (this build reads v%d)"
                 v version))
     | m :: _ when m = "dart-checkpoint" ->
       raise
         (Bad "this is a single-shot search checkpoint; resume it with plain `dartc --resume`")
     | _ -> raise (Bad "not a dart campaign checkpoint file"));
    let meta = next "meta" in
    if not (String.length meta >= 5 && String.sub meta 0 5 = "meta ") then
      raise (Bad "expected \"meta\" record");
    let n_finished = expect_counted "finished" in
    let results, defect =
      if salvage then begin
        let acc = ref [] in
        let defect = ref None in
        (try
           for _ = 1 to n_finished do
             acc := parse_block () :: !acc
           done;
           match tokens (next "end") with
           | [ "end" ] -> ()
           | _ -> raise (Bad "expected \"end\" record")
         with Bad msg -> defect := Some msg);
        (List.rev !acc, !defect)
      end
      else begin
        let results = List.init n_finished (fun _ -> parse_block ()) in
        (match tokens (next "end") with
         | [ "end" ] -> ()
         | _ -> raise (Bad "expected \"end\" record"));
        (results, None)
      end
    in
    Ok (meta, n_finished, results, defect)
  with Bad msg -> Error msg

let of_string text =
  match parse ~salvage:false text with
  | Ok (meta, _, results, _) -> Ok (meta, results)
  | Error _ as e -> e

let save ~path ~options ~library report =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string ~options ~library report);
      flush oc);
  Sys.rename tmp path

let check_meta ~options ~library found_meta =
  let expected = meta_line ~options ~library in
  if found_meta <> expected then
    Error
      (Printf.sprintf
         "checkpoint was taken under a different campaign configuration\n\
         \  expected: %s\n\
         \  found:    %s" expected found_meta)
  else Ok ()

let load ?salvage ~path ~options ~library () =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> (
    match salvage with
    | None -> (
      match of_string text with
      | Error msg -> Error msg
      | Ok (found_meta, results) ->
        (match check_meta ~options ~library found_meta with
         | Error _ as e -> e
         | Ok () -> Ok results))
    | Some warn -> (
      (* Salvage mode: corruption degrades to the longest valid prefix
         (CRC-verified per record) plus a warning; an unreadable header
         degrades to an empty restore. A configuration mismatch is NOT
         corruption and still refuses — silently dropping a healthy
         checkpoint of a different campaign would destroy real work. *)
      match parse ~salvage:true text with
      | Error msg ->
        warn
          (Printf.sprintf
             "checkpoint unusable (%s); salvaged 0 records, restarting from scratch" msg);
        Ok []
      | Ok (found_meta, n_finished, results, defect) ->
        (match check_meta ~options ~library found_meta with
         | Error _ as e -> e
         | Ok () ->
           (match defect with
            | None -> ()
            | Some msg ->
              warn
                (Printf.sprintf
                   "checkpoint damaged (%s); salvaged %d of %d finished targets, the rest \
                    will be re-run"
                   msg (List.length results) n_finished));
           Ok results)))

(* ---- aggregation ----------------------------------------------------------------- *)

let dedup_crashes results =
  let seen : (string * int * Machine.fault, unit) Hashtbl.t = Hashtbl.create 32 in
  let acc = ref [] in
  (* Results arrive in declaration order, so the first target (in that
     order) to expose a defect gets the attribution. *)
  List.iter
    (fun tr ->
      List.iter
        (fun (b : Driver.bug) ->
          let key = Driver.bug_key b in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            acc := (key, (tr.tr_name, b)) :: !acc
          end)
        tr.tr_bugs)
    results;
  List.sort (fun (k1, _) (k2, _) -> compare k1 k2) (List.rev !acc) |> List.map snd

let aggregate_sites report =
  let tbl : (string * int * bool, unit) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun tr ->
      List.iter
        (fun ((fn, _, _) as site) ->
          if not (Driver_gen.is_harness_site fn) then Hashtbl.replace tbl site ())
        tr.tr_coverage)
    report.cam_results;
  List.sort compare (Hashtbl.fold (fun site () acc -> site :: acc) tbl [])

(* ---- the scheduler --------------------------------------------------------------- *)

type tstate = {
  st_name : string;
  st_index : int;
  mutable st_runs : int;
  mutable st_slices : int;
  mutable st_stale : int; (* consecutive slices without a new direction *)
  mutable st_covered : int;
  mutable st_frontier : int;
  mutable st_ns : int64; (* cumulative slice wall clock this session *)
  mutable st_sites : (string * int * bool) list; (* latest slice coverage *)
  mutable st_snapshot : Driver.snapshot option;
  mutable st_result : target_result option;
  mutable st_failed : string option; (* a slice raised: dropped with the reason *)
  mutable st_faults : int; (* consecutive faulted slices (quarantine counter) *)
  mutable st_backoff : int; (* rounds to sit out before the next retry *)
  mutable st_bugs : Driver.bug list; (* last successful slice's cumulative bugs *)
  mutable st_overruns : int; (* cumulative solver deadline overruns *)
  mutable st_breaker : Solver.Breaker.t option; (* shared across this target's slices *)
}

type slice_outcome =
  | Sliced of Driver.report * Driver.snapshot option
  | Slice_failed of string (* front-end rejection: permanent, target dropped *)
  | Slice_faulted of string (* escaped exception: retried, then quarantined *)

let verdict_tag = function
  | Driver.Bug_found _ -> "bug"
  | Driver.Complete -> "complete"
  | Driver.Budget_exhausted -> "budget"
  | Driver.Time_exhausted -> "time"
  | Driver.Interrupted -> "interrupted"

let run ?(jobs = 1) ?(options = Driver.Options.default) ?time_budget_ns ?checkpoint
    ?resume ?(salvage = false) ?file ?(progress = fun _ -> ()) text =
  if jobs < 0 then invalid_arg "Campaign.run: jobs must be >= 0";
  let jobs = if jobs = 0 then Domain.recommended_domain_count () else jobs in
  let ast = Minic.Parser.parse_program ?file text in
  let targets, skipped = discover ast in
  if targets = [] then
    Error
      "no testable targets discovered (every function is a prototype, a harness helper, \
       or takes non-scalar parameters)"
  else begin
    (* Surface library-level type errors once, up front, instead of as
       one identical slice failure per target. *)
    ignore (Minic.Typecheck.check ast);
    match
      match resume with
      | None -> Ok []
      | Some path -> (
        let salvage =
          if salvage then Some (fun msg -> progress (Printf.sprintf "salvage: %s" msg))
          else None
        in
        match load ?salvage ~path ~options ~library:text () with
        | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
        | Ok results -> Ok results)
    with
    | Error msg -> Error msg
    | Ok restored ->
      let restored_tbl = Hashtbl.create 16 in
      List.iter (fun tr -> Hashtbl.replace restored_tbl tr.tr_name tr) restored;
      let states =
        List.mapi
          (fun i name ->
            { st_name = name;
              st_index = i;
              st_runs = 0;
              st_slices = 0;
              st_stale = 0;
              st_covered = 0;
              st_frontier = 0;
              st_ns = 0L;
              st_sites = [];
              st_snapshot = None;
              st_result = Hashtbl.find_opt restored_tbl name;
              st_failed = None;
              st_faults = 0;
              st_backoff = 0;
              st_bugs = [];
              st_overruns = 0;
              st_breaker = None })
          targets
      in
      let resumed_count = List.length (List.filter (fun st -> st.st_result <> None) states) in
      let deadline =
        Option.map (fun ns -> Int64.add (Telemetry.now ()) ns) time_budget_ns
      in
      let over_deadline () =
        match deadline with
        | None -> false
        | Some d -> Int64.compare (Telemetry.now ()) d >= 0
      in
      let stop () = Cancel.requested () || over_deadline () in
      (* The campaign is the sole writer of the main sink and the status
         file: slices trace into private per-target rings (tg_sink)
         replayed at settle, so worker domains never touch either. *)
      let msink = options.O.telemetry.Telemetry.sink in
      let tracing = Telemetry.enabled msink in
      let status_path = options.O.telemetry.Telemetry.status_path in
      let session_options =
        { options with
          O.telemetry =
            { options.O.telemetry with
              Telemetry.sink = Telemetry.null;
              status_path = None } }
      in
      let session =
        Session.create ~jobs:1 ~should_stop:over_deadline ~options:session_options ()
      in
      let cam_metrics = Telemetry.create_metrics () in
      let dropped_events = ref 0 in
      let campaign_start = Telemetry.now () in
      let per_slice = max 1 options.O.campaign.O.per_function_runs in
      let cap_total = options.O.budget.O.max_runs in
      let fault = options.O.fault in
      let retry_limit = max 1 options.O.campaign.O.retry_limit in
      let run_slice st =
        let cap = min cap_total (st.st_runs + per_slice) in
        let ring =
          if tracing then
            Telemetry.ring ~capacity:options.O.telemetry.Telemetry.worker_buffer
          else Telemetry.null
        in
        (* One breaker per target for the whole campaign: a site opened
           in slice k is still open (or cooling down) in slice k+1, and
           every slice boundary is one cooldown tick. *)
        let breaker =
          if options.O.accel.O.use_breaker then begin
            (match st.st_breaker with
             | Some _ -> ()
             | None -> st.st_breaker <- Some (Solver.Breaker.create ()));
            st.st_breaker
          end
          else None
        in
        let target =
          Target.make ~max_runs:cap
            ?sink:(if tracing then Some ring else None)
            ?breaker ~toplevel:st.st_name
            (Target.Text { file; text })
        in
        let latest = ref None in
        let t0 = Telemetry.now () in
        let outcome =
          try
            (* Chaos worker-crash probe at the slice boundary, keyed by
               target index: models a slice's worker dying anywhere in
               the slice (the parallel layer injects the same fault
               mid-search inside single-shot workers). *)
            if
              Dart_util.Faultsim.is_on fault
              && Dart_util.Faultsim.fire ~key:st.st_index fault Dart_util.Faultsim.Worker_crash
            then Dart_util.Faultsim.inject_crash Dart_util.Faultsim.Worker_crash;
            match
              Engine.run ?resume:st.st_snapshot
                ~on_checkpoint:(fun sn -> latest := Some sn)
                session target
            with
            | Engine.Directed_report r -> Sliced (r, !latest)
            | Engine.Random_report _ | Engine.Parallel_report _ -> assert false
          with
          | Minic.Typecheck.Error (loc, msg) ->
            Slice_failed (Printf.sprintf "%s: %s" (Minic.Loc.to_string loc) msg)
          | Driver_gen.No_toplevel name ->
            Slice_failed (Printf.sprintf "no function named %s with a body" name)
          | e ->
            (* Anything else that escapes a slice — an injected worker
               crash, a defect in the search stack, Stack_overflow — is
               a fault: the target is retried with backoff and
               eventually quarantined, never the campaign's problem. *)
            Slice_faulted (Printexc.to_string e)
        in
        (outcome, ring, Int64.sub (Telemetry.now ()) t0)
      in
      let active () = List.filter (fun st -> st.st_result = None && st.st_failed = None) states in
      let order_round sts =
        match options.O.campaign.O.priority with
        | O.Declaration_order -> sts
        | O.Frontier_first ->
          (* Most frontier sites first — ties (round 1: everybody at 0)
             fall back to declaration order. *)
          List.stable_sort
            (fun a b ->
              match compare b.st_frontier a.st_frontier with
              | 0 -> compare a.st_index b.st_index
              | c -> c)
            sts
      in
      let interim () =
        let results =
          List.filter_map (fun st -> st.st_result) states
          |> List.sort (fun a b -> compare a.tr_index b.tr_index)
        in
        let failed =
          List.filter_map
            (fun st -> Option.map (fun r -> (st.st_name, r)) st.st_failed)
            states
        in
        let unfinished =
          List.filter_map
            (fun st -> if st.st_result = None && st.st_failed = None then Some st.st_name else None)
            states
        in
        { cam_targets = targets;
          cam_skipped = skipped @ failed;
          cam_results = results;
          cam_unfinished = unfinished;
          cam_crashes = dedup_crashes results;
          cam_status = Finished; (* patched by the caller *)
          cam_resumed = resumed_count;
          cam_metrics;
          cam_times =
            List.filter_map
              (fun st ->
                if st.st_slices > 0 || st.st_result <> None then
                  Some (st.st_name, st.st_ns)
                else None)
              states }
      in
      let round = ref 0 in
      (* Observability must never kill the campaign: a status file or
         checkpoint that cannot be written (disk full, permissions,
         injected io_error) degrades to a one-time warning while the
         search carries on. *)
      let status_write_failed = ref false in
      let checkpoint_write_failed = ref false in
      let write_status ~final () =
        Option.iter
          (fun path ->
            let elapsed = Int64.sub (Telemetry.now ()) campaign_start in
            let total = List.length states in
            let done_ = List.length (List.filter (fun st -> st.st_result <> None) states) in
            let act = if final then 0 else List.length (active ()) in
            let total_runs =
              List.fold_left
                (fun acc st ->
                  acc
                  + (match st.st_result with Some tr -> tr.tr_runs | None -> st.st_runs))
                0 states
            in
            let covered =
              let tbl : (string * int * bool, unit) Hashtbl.t = Hashtbl.create 256 in
              List.iter
                (fun st ->
                  let sites =
                    match st.st_result with
                    | Some tr -> tr.tr_coverage
                    | None -> st.st_sites
                  in
                  List.iter (fun s -> Hashtbl.replace tbl s ()) sites)
                states;
              Hashtbl.length tbl
            in
            let frontier =
              List.fold_left
                (fun acc st ->
                  if st.st_result = None && st.st_failed = None then acc + st.st_frontier
                  else acc)
                0 states
            in
            let bugs =
              dedup_crashes
                (List.filter_map (fun st -> st.st_result) states
                |> List.sort (fun a b -> compare a.tr_index b.tr_index))
            in
            let h = cam_metrics.Telemetry.solve_hist in
            try
              if Dart_util.Faultsim.fire fault Dart_util.Faultsim.Io_error then
                raise (Sys_error (path ^ ": injected io_error (faultsim)"));
              Status.write ~path
                { Status.st_mode = Status.Campaign;
                st_elapsed_ns = elapsed;
                st_budget_ns = time_budget_ns;
                st_runs = total_runs;
                st_max_runs = cap_total * total;
                st_execs_per_sec =
                  (if Int64.compare elapsed 0L <= 0 then 0
                   else
                     int_of_float
                       (float_of_int total_runs /. (Int64.to_float elapsed /. 1e9)));
                st_bugs = List.length bugs;
                st_covered = covered;
                st_frontier = frontier;
                st_done = done_;
                st_active = act;
                st_remaining = total - done_ - act;
                st_round = !round;
                st_solve_p50_ns = Telemetry.Hist.p50 h;
                st_solve_p99_ns = Telemetry.Hist.p99 h }
            with Sys_error msg ->
              if not !status_write_failed then begin
                status_write_failed := true;
                progress (Printf.sprintf "warning: status write failed: %s" msg)
              end)
          status_path
      in
      progress
        (Printf.sprintf "campaign: %d targets (%d skipped), %d restored from checkpoint, jobs=%d"
           (List.length targets) (List.length skipped) resumed_count jobs);
      let finished_at_last_save = ref (-1) in
      let maybe_checkpoint () =
        Option.iter
          (fun path ->
            let r = interim () in
            let n = List.length r.cam_results in
            if n <> !finished_at_last_save then begin
              try
                if Dart_util.Faultsim.fire fault Dart_util.Faultsim.Io_error then
                  raise (Sys_error (path ^ ": injected io_error (faultsim)"));
                save ~path ~options ~library:text r;
                (* Only advance on success, so the next settle retries
                   the write instead of silently skipping it. *)
                finished_at_last_save := n;
                progress (Printf.sprintf "checkpoint: wrote %s (%d finished)" path n)
              with Sys_error msg ->
                if not !checkpoint_write_failed then begin
                  checkpoint_write_failed := true;
                  progress (Printf.sprintf "warning: checkpoint write failed: %s" msg)
                end
            end)
          checkpoint
      in
      while active () <> [] && not (stop ()) do
        incr round;
        let round_t0 = Telemetry.now () in
        (* Faulted targets back off in whole rounds: ready targets run,
           the others sit this one out and count it against their
           backoff. A round where everyone is backing off still ticks
           (the backoffs strictly decrease, so the loop always makes
           progress). *)
        let ready, backing_off =
          List.partition (fun st -> st.st_backoff = 0) (active ())
        in
        List.iter (fun st -> st.st_backoff <- st.st_backoff - 1) backing_off;
        let tasks = Array.of_list (order_round ready) in
        progress
          (Printf.sprintf "round %d: %d active%s" !round (Array.length tasks)
             (match backing_off with
              | [] -> ""
              | l -> Printf.sprintf ", %d backing off" (List.length l)));
        write_status ~final:false ();
        let outcomes = Array.make (Array.length tasks) None in
        let next = Atomic.make 0 in
        let worker () =
          let continue = ref true in
          while !continue do
            let i = Atomic.fetch_and_add next 1 in
            if i >= Array.length tasks || stop () then continue := false
            else outcomes.(i) <- Some (run_slice tasks.(i))
          done
        in
        (if jobs = 1 || Array.length tasks = 1 then worker ()
         else begin
           let n = min jobs (Array.length tasks) in
           let domains = Array.init n (fun _ -> Domain.spawn worker) in
           Array.iter Domain.join domains
         end);
        (* Settle the round in declaration order, so crash attribution,
           progress lines and the replayed trace are deterministic: the
           event order per settled slice is Target_scheduled, the
           slice's ring, Slice_end, then Target_retired when the slice
           retired the target. *)
        let settle st (outcome, ring, dur) =
          st.st_ns <- Int64.add st.st_ns dur;
          let prev_runs = st.st_runs in
          if tracing then begin
            Telemetry.emit msink
              (Telemetry.Target_scheduled { target = st.st_name; round = !round });
            Telemetry.replay ring ~into:msink;
            dropped_events := !dropped_events + Telemetry.dropped ring
          end;
          match outcome with
          | Slice_failed reason ->
            st.st_failed <- Some reason;
            if tracing then begin
              Telemetry.emit msink
                (Telemetry.Slice_end
                   { target = st.st_name;
                     round = !round;
                     outcome = "failed";
                     runs = 0;
                     dur_ns = dur });
              Telemetry.emit msink
                (Telemetry.Target_retired { target = st.st_name; reason = "failed" })
            end;
            progress (Printf.sprintf "dropped %s: %s" st.st_name reason)
          | Slice_faulted reason ->
            st.st_slices <- st.st_slices + 1;
            st.st_faults <- st.st_faults + 1;
            let quarantined = st.st_faults >= retry_limit in
            if quarantined then
              (* The target keeps everything its successful slices
                 earned (runs, coverage, bugs) — quarantine retires it,
                 it never loses it. *)
              st.st_result <-
                Some
                  { tr_name = st.st_name;
                    tr_index = st.st_index;
                    tr_runs = st.st_runs;
                    tr_slices = st.st_slices;
                    tr_retired = Quarantined reason;
                    tr_coverage = List.sort compare st.st_sites;
                    tr_bugs = st.st_bugs;
                    tr_overruns = st.st_overruns;
                    tr_bopens =
                      Option.fold ~none:0 ~some:Solver.Breaker.opens st.st_breaker }
            else begin
              (* Exponential backoff in whole rounds, deterministic from
                 the campaign seed so a replayed campaign retries at the
                 same rounds; capped at 16 rounds. *)
              let rng =
                Dart_util.Prng.create
                  (options.O.search.O.seed lxor ((st.st_index * 65599) + st.st_faults))
              in
              st.st_backoff <-
                Dart_util.Prng.int_range rng 1 (1 lsl min st.st_faults 4)
            end;
            if tracing then begin
              Telemetry.emit msink
                (Telemetry.Slice_end
                   { target = st.st_name;
                     round = !round;
                     outcome = "fault";
                     runs = 0;
                     dur_ns = dur });
              if quarantined then
                Telemetry.emit msink
                  (Telemetry.Target_retired { target = st.st_name; reason = "quarantined" })
            end;
            if quarantined then
              progress
                (Printf.sprintf "quarantined %s after %d consecutive faults: %s" st.st_name
                   st.st_faults reason)
            else
              progress
                (Printf.sprintf "fault on %s (%d/%d): %s; backing off %d round%s" st.st_name
                   st.st_faults retry_limit reason st.st_backoff
                   (if st.st_backoff = 1 then "" else "s"))
          | Sliced (r, snap) ->
            Telemetry.add_metrics ~into:cam_metrics r.Driver.metrics;
            st.st_slices <- st.st_slices + 1;
            st.st_faults <- 0; (* quarantine counts *consecutive* faults *)
            st.st_runs <- r.Driver.runs;
            st.st_sites <- r.Driver.coverage_sites;
            st.st_bugs <- r.Driver.bugs;
            (* Snapshot restore makes the slice's solver stats cumulative
               across this target's slices, so the latest reading is the
               target's total. *)
            st.st_overruns <- Solver.deadline_overruns r.Driver.solver_stats;
            (* One cooldown tick per slice: a breaker opened in this
               slice may half-open in a later one. *)
            Option.iter Solver.Breaker.tick st.st_breaker;
            let covered = List.length r.Driver.coverage_sites in
            if covered > st.st_covered then st.st_stale <- 0
            else st.st_stale <- st.st_stale + 1;
            st.st_covered <- covered;
            st.st_frontier <- frontier_count r.Driver.coverage_sites;
            let retired = ref None in
            let retire reason =
              retired := Some reason;
              st.st_result <-
                Some
                  { tr_name = st.st_name;
                    tr_index = st.st_index;
                    tr_runs = r.Driver.runs;
                    tr_slices = st.st_slices;
                    tr_retired = reason;
                    tr_coverage = List.sort compare r.Driver.coverage_sites;
                    tr_bugs = r.Driver.bugs;
                    tr_overruns = st.st_overruns;
                    tr_bopens =
                      Option.fold ~none:0 ~some:Solver.Breaker.opens st.st_breaker };
              progress
                (Printf.sprintf "retired %s: %s after %d runs (%d slices, %d dirs)"
                   st.st_name (retire_tag reason) r.Driver.runs st.st_slices covered)
            in
            (match r.Driver.verdict with
             | Driver.Bug_found _ -> retire Bug
             | Driver.Complete -> retire Complete
             | Driver.Budget_exhausted when stop () ->
               (* The campaign-level stop cuts slices at a run boundary,
                  and the driver folds that cancellation into the budget
                  check — so a cut slice still surfaces as
                  [Budget_exhausted], with a runs count no uninterrupted
                  campaign would reproduce. Retiring from it would
                  checkpoint the tainted count as finished; leave the
                  target unfinished instead, like an interrupt. (A slice
                  that genuinely filled its cap just before the deadline
                  is also left unfinished — the re-run on resume is pure,
                  so correctness only costs the repeated slice.) *)
               ()
             | Driver.Budget_exhausted ->
               if st.st_runs >= cap_total then retire Budget_capped
               else if st.st_stale >= options.O.campaign.O.retire_after then
                 retire Saturated
               else begin
                 match snap with
                 | Some sn -> st.st_snapshot <- Some sn
                 | None ->
                   (* The search stopped making progress without leaving
                      a resumable snapshot; refilling would re-run the
                      same slice forever. *)
                   retire Saturated
               end
             | Driver.Time_exhausted | Driver.Interrupted ->
               (* Campaign-level stop observed mid-slice: the target
                  stays unfinished; a checkpointed campaign re-runs it
                  from scratch on resume. *)
               ());
            if tracing then begin
              Telemetry.emit msink
                (Telemetry.Slice_end
                   { target = st.st_name;
                     round = !round;
                     outcome = verdict_tag r.Driver.verdict;
                     runs = r.Driver.runs - prev_runs;
                     dur_ns = dur });
              Option.iter
                (fun reason ->
                  Telemetry.emit msink
                    (Telemetry.Target_retired
                       { target = st.st_name; reason = retire_tag reason }))
                !retired
            end
        in
        let indexed = Array.to_list (Array.mapi (fun i st -> (st, outcomes.(i))) tasks) in
        List.iter
          (fun (st, outcome) -> Option.iter (settle st) outcome)
          (List.stable_sort (fun ((a : tstate), _) (b, _) -> compare a.st_index b.st_index) indexed);
        if tracing then begin
          Telemetry.emit msink
            (Telemetry.Round_end
               { round = !round;
                 active = List.length (active ());
                 dur_ns = Int64.sub (Telemetry.now ()) round_t0 });
          (* Per-round flush: an interrupted or time-capped campaign
             still leaves a trace ending on a complete line. *)
          Telemetry.flush msink
        end;
        write_status ~final:false ();
        maybe_checkpoint ()
      done;
      if tracing then begin
        Telemetry.emit_phase_totals msink cam_metrics;
        Telemetry.flush msink
      end;
      if !dropped_events > 0 then
        progress
          (Printf.sprintf
             "trace: per-slice rings overflowed, %d oldest events dropped (raise the \
              worker buffer)"
             !dropped_events);
      let report = interim () in
      let report =
        if report.cam_unfinished = [] then report
        else
          { report with
            cam_status =
              Stopped_early
                (if Cancel.requested () then "interrupted" else "time budget exhausted") }
      in
      maybe_checkpoint ();
      write_status ~final:true ();
      Ok report
  end

(* ---- reports --------------------------------------------------------------------- *)

let retire_histogram results =
  let count p = List.length (List.filter (fun tr -> p tr.tr_retired) results) in
  ( count (fun r -> r = Bug),
    count (fun r -> r = Complete),
    count (fun r -> r = Saturated),
    count (fun r -> r = Budget_capped),
    count (function Quarantined _ -> true | _ -> false) )

let no_lost_targets r =
  (* Every discovered target is accounted for exactly once: tested,
     skipped, or unfinished. The chaos soak asserts this — faults may
     quarantine a target but must never drop it from the ledger. *)
  let tbl = Hashtbl.create 64 in
  let bump name = Hashtbl.replace tbl name (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name)) in
  List.iter (fun tr -> bump tr.tr_name) r.cam_results;
  List.iter (fun (name, _) -> bump name) r.cam_skipped;
  List.iter bump r.cam_unfinished;
  List.for_all (fun name -> Hashtbl.find_opt tbl name = Some 1) r.cam_targets
  && Hashtbl.length tbl = List.length r.cam_targets

let report_to_string r =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "campaign: %d targets discovered, %d tested, %d skipped"
    (List.length r.cam_targets) (List.length r.cam_results) (List.length r.cam_skipped);
  (match r.cam_status with
   | Finished -> ()
   | Stopped_early reason ->
     line "stopped early (%s): %d targets unfinished" reason (List.length r.cam_unfinished));
  let bug, complete, saturated, capped, quarantined = retire_histogram r.cam_results in
  line "retired: %d bug, %d complete, %d saturated, %d budget-capped%s" bug complete
    saturated capped
    (if quarantined > 0 then Printf.sprintf ", %d quarantined" quarantined else "");
  if quarantined > 0 then begin
    line "quarantined:";
    List.iter
      (fun tr ->
        match tr.tr_retired with
        | Quarantined reason -> line "  - %s: %s" tr.tr_name reason
        | _ -> ())
      r.cam_results
  end;
  line "distinct crashes: %d" (List.length r.cam_crashes);
  List.iter
    (fun (target, (b : Driver.bug)) ->
      line "  - %s in %s at %s (target %s, run %d)"
        (Machine.fault_to_string b.Driver.bug_fault)
        b.Driver.bug_site.Machine.site_fn
        (Minic.Loc.to_string b.Driver.bug_site.Machine.site_loc)
        target b.Driver.bug_run)
    r.cam_crashes;
  line "aggregate coverage: %d branch directions" (List.length (aggregate_sites r));
  (match r.cam_skipped with
   | [] -> ()
   | sk ->
     line "skipped:";
     List.iter (fun (name, reason) -> line "  - %s: %s" name reason) sk);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json r =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let str s = "\"" ^ json_escape s ^ "\"" in
  let bug_json target (b : Driver.bug) =
    let loc = b.Driver.bug_site.Machine.site_loc in
    Printf.sprintf
      "{\"fault\": %s, \"fn\": %s, \"pc\": %d, \"file\": %s, \"line\": %d, \"col\": %d, \
       \"target\": %s, \"run\": %d}"
      (str (Machine.fault_tag b.Driver.bug_fault))
      (str b.Driver.bug_site.Machine.site_fn)
      b.Driver.bug_site.Machine.site_pc (str loc.Minic.Loc.file) loc.Minic.Loc.line
      loc.Minic.Loc.col (str target) b.Driver.bug_run
  in
  let bug, complete, saturated, capped, quarantined = retire_histogram r.cam_results in
  add "{\n";
  add "  \"targets\": %d,\n" (List.length r.cam_targets);
  add "  \"tested\": %d,\n" (List.length r.cam_results);
  add "  \"skipped\": %d,\n" (List.length r.cam_skipped);
  add "  \"status\": %s,\n"
    (str
       (match r.cam_status with
        | Finished -> "finished"
        | Stopped_early reason -> "stopped early: " ^ reason));
  add "  \"resumed\": %d,\n" r.cam_resumed;
  (* "quarantined" appears only when nonzero, so chaos-off aggregate
     JSON stays byte-identical to pre-quarantine campaigns. *)
  add "  \"retired\": {\"bug\": %d, \"complete\": %d, \"saturated\": %d, \"capped\": %d%s},\n"
    bug complete saturated capped
    (if quarantined > 0 then Printf.sprintf ", \"quarantined\": %d" quarantined else "");
  add "  \"coverage_directions\": %d,\n" (List.length (aggregate_sites r));
  (* Wall-clock attribution on one filterable line: determinism diffs
     (jobs=1 vs jobs=N, resume) must drop it with [grep -v '"phases"'],
     exactly like the "resumed" line. *)
  let m = r.cam_metrics in
  add
    "  \"phases\": {\"execute_ns\": %Ld, \"solve_ns\": %Ld, \"lower_ns\": %Ld, \
     \"merge_ns\": %Ld, \"total_ns\": %Ld, \"solve_p50_ns\": %Ld, \"solve_p99_ns\": %Ld, \
     \"run_p50_ns\": %Ld, \"run_p99_ns\": %Ld},\n"
    m.Telemetry.execute_ns m.Telemetry.solve_ns m.Telemetry.lower_ns m.Telemetry.merge_ns
    (Telemetry.total_ns m)
    (Telemetry.Hist.p50 m.Telemetry.solve_hist)
    (Telemetry.Hist.p99 m.Telemetry.solve_hist)
    (Telemetry.Hist.p50 m.Telemetry.run_hist)
    (Telemetry.Hist.p99 m.Telemetry.run_hist);
  add "  \"crashes\": [";
  List.iteri
    (fun i (target, b) ->
      if i > 0 then add ",";
      add "\n    %s" (bug_json target b))
    r.cam_crashes;
  if r.cam_crashes <> [] then add "\n  ";
  add "],\n";
  add "  \"results\": [";
  List.iteri
    (fun i tr ->
      if i > 0 then add ",";
      add
        "\n    {\"name\": %s, \"runs\": %d, \"slices\": %d, \"retired\": %s, \
         \"covered\": %d, \"bugs\": %d%s%s%s}"
        (str tr.tr_name) tr.tr_runs tr.tr_slices
        (str (retire_tag tr.tr_retired))
        (List.length tr.tr_coverage) (List.length tr.tr_bugs)
        (* Fault-tolerance fields are nonzero-gated for the same
           byte-identity reason as "quarantined" above. *)
        (if tr.tr_overruns > 0 then
           Printf.sprintf ", \"deadline_overruns\": %d" tr.tr_overruns
         else "")
        (if tr.tr_bopens > 0 then Printf.sprintf ", \"breaker_opens\": %d" tr.tr_bopens
         else "")
        (match tr.tr_retired with
         | Quarantined reason -> Printf.sprintf ", \"reason\": %s" (str reason)
         | _ -> ""))
    r.cam_results;
  if r.cam_results <> [] then add "\n  ";
  add "],\n";
  add "  \"unfinished\": [%s]\n"
    (String.concat ", " (List.map str r.cam_unfinished));
  add "}\n";
  Buffer.contents buf
