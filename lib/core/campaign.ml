(* Whole-library campaign mode. See campaign.mli for the contract; the
   load-bearing invariant throughout is that a target's result is a
   deterministic function of (options, target) alone — slices resume
   each other through in-memory snapshots, every slice starts with a
   cold solve cache, and nothing a worker computes depends on what the
   other workers are doing — so jobs and scheduling order can only
   change wall clock, never the report. *)

module O = Driver.Options

type retire = Bug | Complete | Saturated | Budget_capped

type target_result = {
  tr_name : string;
  tr_index : int;
  tr_runs : int;
  tr_slices : int;
  tr_retired : retire;
  tr_coverage : (string * int * bool) list;
  tr_bugs : Driver.bug list;
}

type status = Finished | Stopped_early of string

type report = {
  cam_targets : string list;
  cam_skipped : (string * string) list;
  cam_results : target_result list;
  cam_unfinished : string list;
  cam_crashes : (string * Driver.bug) list;
  cam_status : status;
  cam_resumed : int;
  cam_metrics : Telemetry.metrics;
  cam_times : (string * int64) list;
}

(* ---- discovery ------------------------------------------------------------------- *)

let discover (ast : Minic.Ast.program) =
  let targets = ref [] in
  let skipped = ref [] in
  List.iter
    (function
      | Minic.Ast.Gfun f when f.Minic.Ast.fbody <> None ->
        let name = f.Minic.Ast.fname in
        (* Driver_gen.is_harness_site is the single source of truth:
           __dart_* helpers (from a source file that embeds a generated
           driver) and the __coin site can never become targets. *)
        if not (Driver_gen.is_harness_site name) then begin
          match
            List.find_opt
              (fun (ty, _) -> not (Minic.Ctype.is_scalar ty))
              f.Minic.Ast.fparams
          with
          | Some (ty, p) ->
            skipped :=
              ( name,
                Printf.sprintf "parameter %s has non-scalar type %s" p
                  (Minic.Ctype.to_string ty) )
              :: !skipped
          | None -> targets := name :: !targets
        end
      | _ -> ())
    ast;
  (List.rev !targets, List.rev !skipped)

(* ---- frontier signal ------------------------------------------------------------- *)

let frontier_count sites =
  let tbl : (string * int, bool * bool) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (fn, pc, dir) ->
      let taken, fall = Option.value ~default:(false, false) (Hashtbl.find_opt tbl (fn, pc)) in
      Hashtbl.replace tbl (fn, pc) (taken || dir, fall || not dir))
    sites;
  Hashtbl.fold (fun _ (taken, fall) acc -> if taken <> fall then acc + 1 else acc) tbl 0

(* ---- checkpoint codec ------------------------------------------------------------ *)

let magic = "dart-campaign"
let version = 1

let retire_tag = function
  | Bug -> "bug"
  | Complete -> "complete"
  | Saturated -> "saturated"
  | Budget_capped -> "capped"

let retire_of_tag = function
  | "bug" -> Some Bug
  | "complete" -> Some Complete
  | "saturated" -> Some Saturated
  | "capped" -> Some Budget_capped
  | _ -> None

let bool_tag b = if b then "1" else "0"

(* Everything a target's deterministic result depends on, one line;
   [load] insists on byte equality, so a resumed campaign can only ever
   continue the run it checkpointed. The priority policy is absent on
   purpose: it reorders work without changing any result. *)
let meta_line ~(options : Driver.options) ~library =
  Printf.sprintf
    "meta seed=%d depth=%d max_runs=%d per_function_runs=%d retire_after=%d \
     strategy=%s all_bugs=%s library=%s"
    options.O.search.O.seed options.O.search.O.depth options.O.budget.O.max_runs
    options.O.campaign.O.per_function_runs options.O.campaign.O.retire_after
    (Strategy.to_string options.O.search.O.strategy)
    (bool_tag (not options.O.budget.O.stop_on_first_bug))
    (Digest.to_hex (Digest.string library))

let to_string ~options ~library report =
  let buf = Buffer.create 4096 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let esc = Checkpoint.escape in
  line "%s v%d" magic version;
  line "%s" (meta_line ~options ~library);
  line "finished %d" (List.length report.cam_results);
  List.iter
    (fun tr ->
      line "target %s %d %d %d %s" (esc tr.tr_name) tr.tr_index tr.tr_runs tr.tr_slices
        (retire_tag tr.tr_retired);
      line "cover %d" (List.length tr.tr_coverage);
      List.iter
        (fun (fn, pc, dir) -> line "c %s %d %s" (esc fn) pc (bool_tag dir))
        tr.tr_coverage;
      line "bugs %d" (List.length tr.tr_bugs);
      List.iter
        (fun (b : Driver.bug) ->
          let loc = b.Driver.bug_site.Machine.site_loc in
          Buffer.add_string buf
            (Printf.sprintf "bug %s %s %d %s %d %d %d %d"
               (Machine.fault_tag b.Driver.bug_fault)
               (esc b.Driver.bug_site.Machine.site_fn)
               b.Driver.bug_site.Machine.site_pc (esc loc.Minic.Loc.file)
               loc.Minic.Loc.line loc.Minic.Loc.col b.Driver.bug_run
               (List.length b.Driver.bug_inputs));
          List.iter
            (fun (id, v) -> Buffer.add_string buf (Printf.sprintf " %d:%d" id v))
            b.Driver.bug_inputs;
          Buffer.add_char buf '\n')
        tr.tr_bugs)
    report.cam_results;
  line "end";
  Buffer.contents buf

exception Bad of string

let of_string text =
  let lines = ref (List.filter (fun l -> l <> "") (String.split_on_char '\n' text)) in
  let next what =
    match !lines with
    | [] -> raise (Bad (Printf.sprintf "unexpected end of file, wanted %s" what))
    | l :: rest ->
      lines := rest;
      l
  in
  let tokens l = String.split_on_char ' ' l in
  let int_tok what t =
    match int_of_string_opt t with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "bad integer in %s: %S" what t))
  in
  let bool_tok what = function
    | "0" -> false
    | "1" -> true
    | t -> raise (Bad (Printf.sprintf "bad boolean in %s: %S" what t))
  in
  let unesc what t =
    match Checkpoint.unescape t with
    | Ok s -> s
    | Error msg -> raise (Bad (Printf.sprintf "%s in %s" msg what))
  in
  let expect_counted what =
    match tokens (next what) with
    | [ tag; count ] when tag = what -> int_tok what count
    | _ -> raise (Bad (Printf.sprintf "expected %S record" what))
  in
  try
    (match tokens (next "magic") with
     | [ m; v ] when m = magic ->
       if v <> Printf.sprintf "v%d" version then
         raise
           (Bad
              (Printf.sprintf "unsupported campaign checkpoint version %s (this build reads v%d)"
                 v version))
     | m :: _ when m = "dart-checkpoint" ->
       raise
         (Bad "this is a single-shot search checkpoint; resume it with plain `dartc --resume`")
     | _ -> raise (Bad "not a dart campaign checkpoint file"));
    let meta = next "meta" in
    if not (String.length meta >= 5 && String.sub meta 0 5 = "meta ") then
      raise (Bad "expected \"meta\" record");
    let n_finished = expect_counted "finished" in
    let results =
      List.init n_finished (fun _ ->
          let tr_name, tr_index, tr_runs, tr_slices, tr_retired =
            match tokens (next "target") with
            | [ "target"; name; index; runs; slices; tag ] ->
              let retired =
                match retire_of_tag tag with
                | Some r -> r
                | None -> raise (Bad (Printf.sprintf "unknown retire reason %S" tag))
              in
              ( unesc "target" name,
                int_tok "target" index,
                int_tok "target" runs,
                int_tok "target" slices,
                retired )
            | _ -> raise (Bad "expected \"target\" record")
          in
          let n_cov = expect_counted "cover" in
          let tr_coverage =
            List.init n_cov (fun _ ->
                match tokens (next "c") with
                | [ "c"; fn; pc; dir ] ->
                  (unesc "c" fn, int_tok "c" pc, bool_tok "c" dir)
                | _ -> raise (Bad "expected \"c\" record"))
          in
          let n_bugs = expect_counted "bugs" in
          let tr_bugs =
            List.init n_bugs (fun _ ->
                match tokens (next "bug") with
                | "bug" :: fault :: fn :: pc :: file :: lno :: col :: run :: n_inputs
                  :: inputs ->
                  let bug_fault =
                    match Machine.fault_of_tag fault with
                    | Some f -> f
                    | None -> raise (Bad (Printf.sprintf "unknown fault %S" fault))
                  in
                  let n_inputs = int_tok "bug" n_inputs in
                  if List.length inputs <> n_inputs then
                    raise (Bad "bug input count mismatch");
                  { Driver.bug_fault;
                    bug_site =
                      { Machine.site_fn = unesc "bug" fn;
                        site_pc = int_tok "bug" pc;
                        site_loc =
                          { Minic.Loc.file = unesc "bug" file;
                            line = int_tok "bug" lno;
                            col = int_tok "bug" col } };
                    bug_run = int_tok "bug" run;
                    bug_inputs =
                      List.map
                        (fun e ->
                          match String.split_on_char ':' e with
                          | [ id; v ] -> (int_tok "bug" id, int_tok "bug" v)
                          | _ -> raise (Bad (Printf.sprintf "bad bug input %S" e)))
                        inputs }
                | _ -> raise (Bad "expected \"bug\" record"))
          in
          { tr_name; tr_index; tr_runs; tr_slices; tr_retired; tr_coverage; tr_bugs })
    in
    (match tokens (next "end") with
     | [ "end" ] -> ()
     | _ -> raise (Bad "expected \"end\" record"));
    Ok (meta, results)
  with Bad msg -> Error msg

let save ~path ~options ~library report =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string ~options ~library report);
      flush oc);
  Sys.rename tmp path

let load ~path ~options ~library =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> (
    match of_string text with
    | Error msg -> Error msg
    | Ok (found_meta, results) ->
      let expected = meta_line ~options ~library in
      if found_meta <> expected then
        Error
          (Printf.sprintf
             "checkpoint was taken under a different campaign configuration\n\
             \  expected: %s\n\
             \  found:    %s" expected found_meta)
      else Ok results)

(* ---- aggregation ----------------------------------------------------------------- *)

let dedup_crashes results =
  let seen : (string * int * Machine.fault, unit) Hashtbl.t = Hashtbl.create 32 in
  let acc = ref [] in
  (* Results arrive in declaration order, so the first target (in that
     order) to expose a defect gets the attribution. *)
  List.iter
    (fun tr ->
      List.iter
        (fun (b : Driver.bug) ->
          let key = Driver.bug_key b in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            acc := (key, (tr.tr_name, b)) :: !acc
          end)
        tr.tr_bugs)
    results;
  List.sort (fun (k1, _) (k2, _) -> compare k1 k2) (List.rev !acc) |> List.map snd

let aggregate_sites report =
  let tbl : (string * int * bool, unit) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun tr ->
      List.iter
        (fun ((fn, _, _) as site) ->
          if not (Driver_gen.is_harness_site fn) then Hashtbl.replace tbl site ())
        tr.tr_coverage)
    report.cam_results;
  List.sort compare (Hashtbl.fold (fun site () acc -> site :: acc) tbl [])

(* ---- the scheduler --------------------------------------------------------------- *)

type tstate = {
  st_name : string;
  st_index : int;
  mutable st_runs : int;
  mutable st_slices : int;
  mutable st_stale : int; (* consecutive slices without a new direction *)
  mutable st_covered : int;
  mutable st_frontier : int;
  mutable st_ns : int64; (* cumulative slice wall clock this session *)
  mutable st_sites : (string * int * bool) list; (* latest slice coverage *)
  mutable st_snapshot : Driver.snapshot option;
  mutable st_result : target_result option;
  mutable st_failed : string option; (* a slice raised: dropped with the reason *)
}

type slice_outcome =
  | Sliced of Driver.report * Driver.snapshot option
  | Slice_failed of string

let verdict_tag = function
  | Driver.Bug_found _ -> "bug"
  | Driver.Complete -> "complete"
  | Driver.Budget_exhausted -> "budget"
  | Driver.Time_exhausted -> "time"
  | Driver.Interrupted -> "interrupted"

let run ?(jobs = 1) ?(options = Driver.Options.default) ?time_budget_ns ?checkpoint
    ?resume ?file ?(progress = fun _ -> ()) text =
  if jobs < 0 then invalid_arg "Campaign.run: jobs must be >= 0";
  let jobs = if jobs = 0 then Domain.recommended_domain_count () else jobs in
  let ast = Minic.Parser.parse_program ?file text in
  let targets, skipped = discover ast in
  if targets = [] then
    Error
      "no testable targets discovered (every function is a prototype, a harness helper, \
       or takes non-scalar parameters)"
  else begin
    (* Surface library-level type errors once, up front, instead of as
       one identical slice failure per target. *)
    ignore (Minic.Typecheck.check ast);
    match
      match resume with
      | None -> Ok []
      | Some path -> (
        match load ~path ~options ~library:text with
        | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
        | Ok results -> Ok results)
    with
    | Error msg -> Error msg
    | Ok restored ->
      let restored_tbl = Hashtbl.create 16 in
      List.iter (fun tr -> Hashtbl.replace restored_tbl tr.tr_name tr) restored;
      let states =
        List.mapi
          (fun i name ->
            { st_name = name;
              st_index = i;
              st_runs = 0;
              st_slices = 0;
              st_stale = 0;
              st_covered = 0;
              st_frontier = 0;
              st_ns = 0L;
              st_sites = [];
              st_snapshot = None;
              st_result = Hashtbl.find_opt restored_tbl name;
              st_failed = None })
          targets
      in
      let resumed_count = List.length (List.filter (fun st -> st.st_result <> None) states) in
      let deadline =
        Option.map (fun ns -> Int64.add (Telemetry.now ()) ns) time_budget_ns
      in
      let over_deadline () =
        match deadline with
        | None -> false
        | Some d -> Int64.compare (Telemetry.now ()) d >= 0
      in
      let stop () = Cancel.requested () || over_deadline () in
      (* The campaign is the sole writer of the main sink and the status
         file: slices trace into private per-target rings (tg_sink)
         replayed at settle, so worker domains never touch either. *)
      let msink = options.O.telemetry.Telemetry.sink in
      let tracing = Telemetry.enabled msink in
      let status_path = options.O.telemetry.Telemetry.status_path in
      let session_options =
        { options with
          O.telemetry =
            { options.O.telemetry with
              Telemetry.sink = Telemetry.null;
              status_path = None } }
      in
      let session =
        Session.create ~jobs:1 ~should_stop:over_deadline ~options:session_options ()
      in
      let cam_metrics = Telemetry.create_metrics () in
      let dropped_events = ref 0 in
      let campaign_start = Telemetry.now () in
      let per_slice = max 1 options.O.campaign.O.per_function_runs in
      let cap_total = options.O.budget.O.max_runs in
      let run_slice st =
        let cap = min cap_total (st.st_runs + per_slice) in
        let ring =
          if tracing then
            Telemetry.ring ~capacity:options.O.telemetry.Telemetry.worker_buffer
          else Telemetry.null
        in
        let target =
          Target.make ~max_runs:cap
            ?sink:(if tracing then Some ring else None)
            ~toplevel:st.st_name
            (Target.Text { file; text })
        in
        let latest = ref None in
        let t0 = Telemetry.now () in
        let outcome =
          try
            match
              Engine.run ?resume:st.st_snapshot
                ~on_checkpoint:(fun sn -> latest := Some sn)
                session target
            with
            | Engine.Directed_report r -> Sliced (r, !latest)
            | Engine.Random_report _ | Engine.Parallel_report _ -> assert false
          with
          | Minic.Typecheck.Error (loc, msg) ->
            Slice_failed (Printf.sprintf "%s: %s" (Minic.Loc.to_string loc) msg)
          | Driver_gen.No_toplevel name ->
            Slice_failed (Printf.sprintf "no function named %s with a body" name)
        in
        (outcome, ring, Int64.sub (Telemetry.now ()) t0)
      in
      let active () = List.filter (fun st -> st.st_result = None && st.st_failed = None) states in
      let order_round sts =
        match options.O.campaign.O.priority with
        | O.Declaration_order -> sts
        | O.Frontier_first ->
          (* Most frontier sites first — ties (round 1: everybody at 0)
             fall back to declaration order. *)
          List.stable_sort
            (fun a b ->
              match compare b.st_frontier a.st_frontier with
              | 0 -> compare a.st_index b.st_index
              | c -> c)
            sts
      in
      let interim () =
        let results =
          List.filter_map (fun st -> st.st_result) states
          |> List.sort (fun a b -> compare a.tr_index b.tr_index)
        in
        let failed =
          List.filter_map
            (fun st -> Option.map (fun r -> (st.st_name, r)) st.st_failed)
            states
        in
        let unfinished =
          List.filter_map
            (fun st -> if st.st_result = None && st.st_failed = None then Some st.st_name else None)
            states
        in
        { cam_targets = targets;
          cam_skipped = skipped @ failed;
          cam_results = results;
          cam_unfinished = unfinished;
          cam_crashes = dedup_crashes results;
          cam_status = Finished; (* patched by the caller *)
          cam_resumed = resumed_count;
          cam_metrics;
          cam_times =
            List.filter_map
              (fun st ->
                if st.st_slices > 0 || st.st_result <> None then
                  Some (st.st_name, st.st_ns)
                else None)
              states }
      in
      let round = ref 0 in
      let write_status ~final () =
        Option.iter
          (fun path ->
            let elapsed = Int64.sub (Telemetry.now ()) campaign_start in
            let total = List.length states in
            let done_ = List.length (List.filter (fun st -> st.st_result <> None) states) in
            let act = if final then 0 else List.length (active ()) in
            let total_runs =
              List.fold_left
                (fun acc st ->
                  acc
                  + (match st.st_result with Some tr -> tr.tr_runs | None -> st.st_runs))
                0 states
            in
            let covered =
              let tbl : (string * int * bool, unit) Hashtbl.t = Hashtbl.create 256 in
              List.iter
                (fun st ->
                  let sites =
                    match st.st_result with
                    | Some tr -> tr.tr_coverage
                    | None -> st.st_sites
                  in
                  List.iter (fun s -> Hashtbl.replace tbl s ()) sites)
                states;
              Hashtbl.length tbl
            in
            let frontier =
              List.fold_left
                (fun acc st ->
                  if st.st_result = None && st.st_failed = None then acc + st.st_frontier
                  else acc)
                0 states
            in
            let bugs =
              dedup_crashes
                (List.filter_map (fun st -> st.st_result) states
                |> List.sort (fun a b -> compare a.tr_index b.tr_index))
            in
            let h = cam_metrics.Telemetry.solve_hist in
            Status.write ~path
              { Status.st_mode = Status.Campaign;
                st_elapsed_ns = elapsed;
                st_budget_ns = time_budget_ns;
                st_runs = total_runs;
                st_max_runs = cap_total * total;
                st_execs_per_sec =
                  (if Int64.compare elapsed 0L <= 0 then 0
                   else
                     int_of_float
                       (float_of_int total_runs /. (Int64.to_float elapsed /. 1e9)));
                st_bugs = List.length bugs;
                st_covered = covered;
                st_frontier = frontier;
                st_done = done_;
                st_active = act;
                st_remaining = total - done_ - act;
                st_round = !round;
                st_solve_p50_ns = Telemetry.Hist.p50 h;
                st_solve_p99_ns = Telemetry.Hist.p99 h })
          status_path
      in
      progress
        (Printf.sprintf "campaign: %d targets (%d skipped), %d restored from checkpoint, jobs=%d"
           (List.length targets) (List.length skipped) resumed_count jobs);
      let finished_at_last_save = ref (-1) in
      let maybe_checkpoint () =
        Option.iter
          (fun path ->
            let r = interim () in
            let n = List.length r.cam_results in
            if n <> !finished_at_last_save then begin
              save ~path ~options ~library:text r;
              finished_at_last_save := n;
              progress (Printf.sprintf "checkpoint: wrote %s (%d finished)" path n)
            end)
          checkpoint
      in
      while active () <> [] && not (stop ()) do
        incr round;
        let round_t0 = Telemetry.now () in
        let tasks = Array.of_list (order_round (active ())) in
        progress (Printf.sprintf "round %d: %d active" !round (Array.length tasks));
        write_status ~final:false ();
        let outcomes = Array.make (Array.length tasks) None in
        let next = Atomic.make 0 in
        let worker () =
          let continue = ref true in
          while !continue do
            let i = Atomic.fetch_and_add next 1 in
            if i >= Array.length tasks || stop () then continue := false
            else outcomes.(i) <- Some (run_slice tasks.(i))
          done
        in
        (if jobs = 1 || Array.length tasks = 1 then worker ()
         else begin
           let n = min jobs (Array.length tasks) in
           let domains = Array.init n (fun _ -> Domain.spawn worker) in
           Array.iter Domain.join domains
         end);
        (* Settle the round in declaration order, so crash attribution,
           progress lines and the replayed trace are deterministic: the
           event order per settled slice is Target_scheduled, the
           slice's ring, Slice_end, then Target_retired when the slice
           retired the target. *)
        let settle st (outcome, ring, dur) =
          st.st_ns <- Int64.add st.st_ns dur;
          let prev_runs = st.st_runs in
          if tracing then begin
            Telemetry.emit msink
              (Telemetry.Target_scheduled { target = st.st_name; round = !round });
            Telemetry.replay ring ~into:msink;
            dropped_events := !dropped_events + Telemetry.dropped ring
          end;
          match outcome with
          | Slice_failed reason ->
            st.st_failed <- Some reason;
            if tracing then begin
              Telemetry.emit msink
                (Telemetry.Slice_end
                   { target = st.st_name;
                     round = !round;
                     outcome = "failed";
                     runs = 0;
                     dur_ns = dur });
              Telemetry.emit msink
                (Telemetry.Target_retired { target = st.st_name; reason = "failed" })
            end;
            progress (Printf.sprintf "dropped %s: %s" st.st_name reason)
          | Sliced (r, snap) ->
            Telemetry.add_metrics ~into:cam_metrics r.Driver.metrics;
            st.st_slices <- st.st_slices + 1;
            st.st_runs <- r.Driver.runs;
            st.st_sites <- r.Driver.coverage_sites;
            let covered = List.length r.Driver.coverage_sites in
            if covered > st.st_covered then st.st_stale <- 0
            else st.st_stale <- st.st_stale + 1;
            st.st_covered <- covered;
            st.st_frontier <- frontier_count r.Driver.coverage_sites;
            let retired = ref None in
            let retire reason =
              retired := Some reason;
              st.st_result <-
                Some
                  { tr_name = st.st_name;
                    tr_index = st.st_index;
                    tr_runs = r.Driver.runs;
                    tr_slices = st.st_slices;
                    tr_retired = reason;
                    tr_coverage = List.sort compare r.Driver.coverage_sites;
                    tr_bugs = r.Driver.bugs };
              progress
                (Printf.sprintf "retired %s: %s after %d runs (%d slices, %d dirs)"
                   st.st_name (retire_tag reason) r.Driver.runs st.st_slices covered)
            in
            (match r.Driver.verdict with
             | Driver.Bug_found _ -> retire Bug
             | Driver.Complete -> retire Complete
             | Driver.Budget_exhausted ->
               if st.st_runs >= cap_total then retire Budget_capped
               else if st.st_stale >= options.O.campaign.O.retire_after then
                 retire Saturated
               else begin
                 match snap with
                 | Some sn -> st.st_snapshot <- Some sn
                 | None ->
                   (* The search stopped making progress without leaving
                      a resumable snapshot; refilling would re-run the
                      same slice forever. *)
                   retire Saturated
               end
             | Driver.Time_exhausted | Driver.Interrupted ->
               (* Campaign-level stop observed mid-slice: the target
                  stays unfinished; a checkpointed campaign re-runs it
                  from scratch on resume. *)
               ());
            if tracing then begin
              Telemetry.emit msink
                (Telemetry.Slice_end
                   { target = st.st_name;
                     round = !round;
                     outcome = verdict_tag r.Driver.verdict;
                     runs = r.Driver.runs - prev_runs;
                     dur_ns = dur });
              Option.iter
                (fun reason ->
                  Telemetry.emit msink
                    (Telemetry.Target_retired
                       { target = st.st_name; reason = retire_tag reason }))
                !retired
            end
        in
        let indexed = Array.to_list (Array.mapi (fun i st -> (st, outcomes.(i))) tasks) in
        List.iter
          (fun (st, outcome) -> Option.iter (settle st) outcome)
          (List.stable_sort (fun ((a : tstate), _) (b, _) -> compare a.st_index b.st_index) indexed);
        if tracing then begin
          Telemetry.emit msink
            (Telemetry.Round_end
               { round = !round;
                 active = List.length (active ());
                 dur_ns = Int64.sub (Telemetry.now ()) round_t0 });
          (* Per-round flush: an interrupted or time-capped campaign
             still leaves a trace ending on a complete line. *)
          Telemetry.flush msink
        end;
        write_status ~final:false ();
        maybe_checkpoint ()
      done;
      if tracing then begin
        Telemetry.emit_phase_totals msink cam_metrics;
        Telemetry.flush msink
      end;
      if !dropped_events > 0 then
        progress
          (Printf.sprintf
             "trace: per-slice rings overflowed, %d oldest events dropped (raise the \
              worker buffer)"
             !dropped_events);
      let report = interim () in
      let report =
        if report.cam_unfinished = [] then report
        else
          { report with
            cam_status =
              Stopped_early
                (if Cancel.requested () then "interrupted" else "time budget exhausted") }
      in
      maybe_checkpoint ();
      write_status ~final:true ();
      Ok report
  end

(* ---- reports --------------------------------------------------------------------- *)

let retire_histogram results =
  let count r = List.length (List.filter (fun tr -> tr.tr_retired = r) results) in
  (count Bug, count Complete, count Saturated, count Budget_capped)

let report_to_string r =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "campaign: %d targets discovered, %d tested, %d skipped"
    (List.length r.cam_targets) (List.length r.cam_results) (List.length r.cam_skipped);
  (match r.cam_status with
   | Finished -> ()
   | Stopped_early reason ->
     line "stopped early (%s): %d targets unfinished" reason (List.length r.cam_unfinished));
  let bug, complete, saturated, capped = retire_histogram r.cam_results in
  line "retired: %d bug, %d complete, %d saturated, %d budget-capped" bug complete
    saturated capped;
  line "distinct crashes: %d" (List.length r.cam_crashes);
  List.iter
    (fun (target, (b : Driver.bug)) ->
      line "  - %s in %s at %s (target %s, run %d)"
        (Machine.fault_to_string b.Driver.bug_fault)
        b.Driver.bug_site.Machine.site_fn
        (Minic.Loc.to_string b.Driver.bug_site.Machine.site_loc)
        target b.Driver.bug_run)
    r.cam_crashes;
  line "aggregate coverage: %d branch directions" (List.length (aggregate_sites r));
  (match r.cam_skipped with
   | [] -> ()
   | sk ->
     line "skipped:";
     List.iter (fun (name, reason) -> line "  - %s: %s" name reason) sk);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json r =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let str s = "\"" ^ json_escape s ^ "\"" in
  let bug_json target (b : Driver.bug) =
    let loc = b.Driver.bug_site.Machine.site_loc in
    Printf.sprintf
      "{\"fault\": %s, \"fn\": %s, \"pc\": %d, \"file\": %s, \"line\": %d, \"col\": %d, \
       \"target\": %s, \"run\": %d}"
      (str (Machine.fault_tag b.Driver.bug_fault))
      (str b.Driver.bug_site.Machine.site_fn)
      b.Driver.bug_site.Machine.site_pc (str loc.Minic.Loc.file) loc.Minic.Loc.line
      loc.Minic.Loc.col (str target) b.Driver.bug_run
  in
  let bug, complete, saturated, capped = retire_histogram r.cam_results in
  add "{\n";
  add "  \"targets\": %d,\n" (List.length r.cam_targets);
  add "  \"tested\": %d,\n" (List.length r.cam_results);
  add "  \"skipped\": %d,\n" (List.length r.cam_skipped);
  add "  \"status\": %s,\n"
    (str
       (match r.cam_status with
        | Finished -> "finished"
        | Stopped_early reason -> "stopped early: " ^ reason));
  add "  \"resumed\": %d,\n" r.cam_resumed;
  add "  \"retired\": {\"bug\": %d, \"complete\": %d, \"saturated\": %d, \"capped\": %d},\n"
    bug complete saturated capped;
  add "  \"coverage_directions\": %d,\n" (List.length (aggregate_sites r));
  (* Wall-clock attribution on one filterable line: determinism diffs
     (jobs=1 vs jobs=N, resume) must drop it with [grep -v '"phases"'],
     exactly like the "resumed" line. *)
  let m = r.cam_metrics in
  add
    "  \"phases\": {\"execute_ns\": %Ld, \"solve_ns\": %Ld, \"lower_ns\": %Ld, \
     \"merge_ns\": %Ld, \"total_ns\": %Ld, \"solve_p50_ns\": %Ld, \"solve_p99_ns\": %Ld, \
     \"run_p50_ns\": %Ld, \"run_p99_ns\": %Ld},\n"
    m.Telemetry.execute_ns m.Telemetry.solve_ns m.Telemetry.lower_ns m.Telemetry.merge_ns
    (Telemetry.total_ns m)
    (Telemetry.Hist.p50 m.Telemetry.solve_hist)
    (Telemetry.Hist.p99 m.Telemetry.solve_hist)
    (Telemetry.Hist.p50 m.Telemetry.run_hist)
    (Telemetry.Hist.p99 m.Telemetry.run_hist);
  add "  \"crashes\": [";
  List.iteri
    (fun i (target, b) ->
      if i > 0 then add ",";
      add "\n    %s" (bug_json target b))
    r.cam_crashes;
  if r.cam_crashes <> [] then add "\n  ";
  add "],\n";
  add "  \"results\": [";
  List.iteri
    (fun i tr ->
      if i > 0 then add ",";
      add
        "\n    {\"name\": %s, \"runs\": %d, \"slices\": %d, \"retired\": %s, \
         \"covered\": %d, \"bugs\": %d}"
        (str tr.tr_name) tr.tr_runs tr.tr_slices
        (str (retire_tag tr.tr_retired))
        (List.length tr.tr_coverage) (List.length tr.tr_bugs))
    r.cam_results;
  if r.cam_results <> [] then add "\n  ";
  add "],\n";
  add "  \"unfinished\": [%s]\n"
    (String.concat ", " (List.map str r.cam_unfinished));
  add "}\n";
  Buffer.contents buf
