(** The input vector IM (paper §2.2): a persistent map from input
    identifiers to 32-bit values, carried from one run to the next
    ([IM + IM'] in Figure 5).

    Inputs are identified by creation order within a run — the stable
    analogue of the paper's by-address keying when heap addresses vary
    across runs. Each input has a kind fixing its random distribution
    and its solver domain. *)

type kind =
  | Kint (* full 32-bit signed range *)
  | Kchar (* 0..255 *)
  | Kcoin (* pointer-shape coin: 0 = NULL, 1 = fresh object *)

type t

val create : unit -> t

val clear : t -> unit
(** Fresh random restart: forget all recorded inputs. *)

val get : t -> id:int -> kind:kind -> rng:Dart_util.Prng.t -> int
(** The value of input [id]: the persisted one if present, else a fresh
    draw of the right [kind] (recorded for subsequent runs). *)

val set : t -> id:int -> int -> unit
(** Overwrite one input (the solver's [IM'] update). *)

val kind_of : t -> int -> kind option
val value_of : t -> int -> int option

val to_alist : t -> (int * int) list
(** All recorded inputs, sorted by id (the bug-witness vector). *)

val kind_tag : kind -> string
(** Stable name ([int]/[char]/[coin]) for the checkpoint codec. *)

val kind_of_tag : string -> kind option

val to_full_alist : t -> (int * int * kind) list
(** All recorded inputs with their kinds, sorted by id — the
    checkpointable image of IM. *)

val restore : t -> (int * int * kind) list -> unit
(** Replace the whole vector with a checkpointed image (values and
    kinds), clearing anything recorded before. *)
