(** Structured event tracing and phase timing for the directed search.

    Every interesting step of the concolic loop — instrumented runs,
    branches, solver queries, input updates, restarts, bugs, worker
    lifecycle — can be emitted as a typed {!event} into a {!sink}.
    Three sink implementations are provided:

    - {!null}: tracing off. [enabled] is [false], so instrumented code
      guards event construction behind it and the hot path allocates
      nothing.
    - {!ring}: a bounded in-memory buffer keeping the most recent
      [capacity] events. Used both for tests and as the per-domain
      buffer of {!Parallel} workers, whose events are replayed into the
      main sink in worker order at join.
    - {!jsonl}: one JSON object per line on an output channel, the
      stable on-disk trace format consumed by [dartc trace-stats].

    Orthogonally, {!metrics} accumulates monotonic per-phase wall-clock
    time (execute / solve / lower / merge); a metrics record rides in
    every {!Driver.report} so bench rows and [dartc --metrics] can
    attribute where a search spent its time. *)

(** {1 Phases and events} *)

type phase =
  | Execute (* instrumented runs on the RAM machine *)
  | Solve (* solve_path_constraint: slicing, cache, solver *)
  | Lower (* driver generation, typechecking, lowering *)
  | Merge (* parallel report + trace merging at join *)

val phases : phase list
(** All four phases, declaration order. *)

val phase_to_string : phase -> string
val phase_of_string : string -> phase option

type solve_result =
  | R_sat
  | R_unsat
  | R_unknown

val solve_result_to_string : solve_result -> string

type event =
  | Run_start of { run : int } (* 1-based, before the run executes *)
  | Run_end of { run : int; outcome : string; steps : int; dur_ns : int64 }
  | Branch_taken of { fn : string; pc : int; dir : bool }
  | Solve_query of {
      fn : string; (* site of the pivot branch being forced *)
      pc : int;
      result : solve_result;
      dur_ns : int64;
      cache_hit : bool; (* answered from the per-worker solve cache *)
      sliced : int; (* prefix constraints dropped by independence slicing *)
    }
  | Input_update of { id : int; value : int } (* IM + IM' write *)
  | Restart of { restarts : int } (* fresh random restart of the outer loop *)
  | Bug_found of { fn : string; pc : int; fault : string; run : int }
  | Worker_spawn of { worker : int; seed : int }
  | Worker_drain of { worker : int; runs : int }
  | Worker_crash of { worker : int; reason : string; respawned : bool }
      (* a parallel worker's search raised: [reason] is the printed
         exception, [respawned] whether the supervisor restarted it
         with a fresh seed (at most once per worker slot) *)
  | Checkpoint_saved of { run : int }
      (* a search snapshot was handed to the checkpoint writer after
         that many runs *)
  | Phase_total of { phase : phase; dur_ns : int64 }
      (* summary record flushed at the end of a search / merge *)
  | Cover_point of { run : int; covered : int; elapsed_ns : int64 }
      (* emitted after each concolic run: cumulative user branch
         directions covered so far and wall clock since the search
         started. The sequence of these is the coverage-over-time
         curve [dartc cover --timeline] plots. *)
  | Target_scheduled of { target : string; round : int }
      (* campaign: a per-target budget slice is about to run *)
  | Slice_end of {
      target : string;
      round : int;
      outcome : string; (* slice verdict tag, or "failed" *)
      runs : int; (* concolic runs consumed by the slice *)
      dur_ns : int64; (* slice wall clock *)
    }
  | Target_retired of { target : string; reason : string }
      (* campaign: the target left the schedule — reason is one of
         bug / complete / saturated / capped / quarantined / failed *)
  | Round_end of { round : int; active : int; dur_ns : int64 }
      (* campaign: a scheduling round settled with [active] targets
         still live *)
  | Breaker_open of { fn : string; pc : int }
      (* the solver circuit breaker opened at a branch site: further
         queries there short-circuit to Unknown until a cooldown
         elapses *)
  | Breaker_close of { fn : string; pc : int }
      (* a half-open probe succeeded and the site's breaker closed *)

(** {1 Sinks} *)

type sink

val null : sink
(** The no-op sink: [enabled] is [false], [emit] does nothing. *)

val ring : capacity:int -> sink
(** Bounded in-memory buffer holding the most recent [capacity] events
    (older events are overwritten). Raises [Invalid_argument] when
    [capacity < 1]. *)

val jsonl : out_channel -> sink
(** Writes one {!event_to_json} line per event. The caller owns the
    channel ([flush] flushes it; closing is the caller's business). *)

val enabled : sink -> bool
(** [false] only for {!null}: instrumentation points check this before
    constructing an event, so a disabled trace costs one branch. *)

val emit : sink -> event -> unit
val emitted : sink -> int
(** Events accepted so far (including ring events since overwritten). *)

val dropped : sink -> int
(** Events a full {!ring} overwrote (oldest-first) rather than keep.
    Always [0] for {!null} and {!jsonl}. Consumers that replay a ring
    (trace merge at join) surface this instead of silently presenting a
    truncated trace as complete. *)

val events : sink -> event list
(** Buffered events, oldest first. [[]] for {!null} and {!jsonl}. *)

val replay : sink -> into:sink -> unit
(** Re-emit every buffered event of the first sink into [into], in
    order. Used by {!Parallel} to splice per-worker buffers into the
    main trace at join. *)

val flush : sink -> unit

(** {1 JSONL codec} *)

val event_to_json : event -> string
(** One flat JSON object, no trailing newline. Schema (the [ev] field
    selects the variant): [run_start], [run_end], [branch], [solve],
    [input], [restart], [bug], [worker_spawn], [worker_drain],
    [worker_crash], [checkpoint], [phase], [cover], [target_scheduled],
    [slice_end], [target_retired], [round_end]. *)

val event_of_json : string -> (event, string) result
(** Inverse of {!event_to_json}; [Error] explains the first schema
    violation found. *)

(** Flat JSON values as produced by the codec above: strings, integers
    and booleans only, no nesting. Shared with the status-file schema
    ({!Status}). *)
type jval =
  | Jstr of string
  | Jint of int64
  | Jbool of bool

val parse_flat : string -> ((string * jval) list, string) result
(** Parse one flat JSON object into its fields, in source order.
    [Error] explains the first syntax violation. *)

(** {1 Latency histograms}

    Log2-bucketed duration histograms: cheap constant-size accumulation
    on the hot path, deterministic bucketwise merge across workers, and
    upper-bound percentile queries ("p99 of solve queries took at most
    X"). Bucket [b] covers [2^b, 2^(b+1)) nanoseconds; bucket 0 also
    absorbs 0-1ns. *)
module Hist : sig
  type t

  val create : unit -> t
  val add : t -> int64 -> unit
  (** Record one duration (negative values clamp to 0). *)

  val count : t -> int
  val sum_ns : t -> int64
  val max_ns : t -> int64
  val mean_ns : t -> int64

  val merge : into:t -> t -> unit
  (** Bucketwise addition — commutative and associative, so merging
      per-worker histograms in any join order yields identical bucket
      counts and percentiles. *)

  val percentile : t -> float -> int64
  (** Upper bound of the first bucket at which the cumulative count
      reaches the given percent of samples, clamped to [max_ns]. [0] on
      an empty histogram. Deterministic given the bucket counts. *)

  val p50 : t -> int64
  val p90 : t -> int64
  val p99 : t -> int64

  val buckets : t -> (int64 * int64 * int) list
  (** Non-empty buckets as [(lo_ns, hi_ns, count)] with [hi] exclusive,
      ascending. *)

  val bucket_of_ns : int64 -> int
  val bucket_bounds : int -> int64 * int64
end

val ns_to_string : int64 -> string
(** Compact human rendering of a duration ("743ns", "1.2us", "3.45ms",
    "2.10s"). *)

(** {1 Phase metrics} *)

type metrics = {
  mutable execute_ns : int64;
  mutable solve_ns : int64;
  mutable lower_ns : int64;
  mutable merge_ns : int64;
  solve_hist : Hist.t;
      (* latency of every [Solve_pc] query, cache hits included — the
         same durations the [Solve_query] trace events carry *)
  run_hist : Hist.t; (* latency of every instrumented (or random) run *)
}

val create_metrics : unit -> metrics

(** Adds phase totals and merges both histograms, so the parallel and
    campaign joins aggregate latency distributions for free. *)
val add_metrics : into:metrics -> metrics -> unit
val add_phase : metrics -> phase -> int64 -> unit
val total_ns : metrics -> int64

val timed : metrics -> phase -> (unit -> 'a) -> 'a
(** Run the thunk, attributing its wall-clock time to the phase. *)

val now : unit -> int64
(** Monotonic clock, nanoseconds (CLOCK_MONOTONIC via bechamel's
    noalloc stub). Differences are meaningful; absolute values are
    not. *)

val metrics_to_assoc : metrics -> (string * float) list
(** Per-phase seconds plus a ["total_s"] entry, stable key order. *)

val metrics_to_string : metrics -> string

val latency_to_string : metrics -> string
(** Two lines — solve and run latency percentiles — for
    [dartc --metrics]. *)

val emit_phase_totals : sink -> metrics -> unit
(** One {!Phase_total} event per phase, in declaration order. *)

(** {1 Trace summaries ([dartc trace-stats])} *)

type site_agg = {
  s_count : int;
  s_sat : int;
  s_unsat : int;
  s_unknown : int;
  s_hits : int;
  s_sliced : int;
  s_ns : int64;
}

type summary = {
  total_events : int;
  runs : int; (* Run_start events *)
  branches : int;
      (* Branch_taken events at sites of the program under test. Driver
         wrapper ([__dart_*]) and synthetic pointer-coin ([__coin])
         sites are counted separately in [driver_branches], keeping
         this consistent with what {!Coverage.compute} (and
         [Driver.report.branches_covered]) count. *)
  driver_branches : int; (* Branch_taken at driver-internal/coin sites *)
  solves : int; (* all Solve_query events *)
  solve_hits : int; (* ... of which answered from the cache *)
  solve_sat : int;
  solve_unsat : int;
  solve_unknown : int;
  solve_site_ns : int64; (* summed per-query durations *)
  exec_run_ns : int64; (* summed Run_end durations *)
  inputs_updated : int;
  restarts : int;
  bugs : int;
  workers : int; (* Worker_spawn events *)
  crashes : int; (* Worker_crash events *)
  phase_ns : (phase * int64) list; (* summed Phase_total, all four phases *)
  sites : ((string * int) * site_agg) list; (* sorted by s_ns descending *)
  timeline : cover_point list; (* Cover_point events, trace order *)
  site_dirs : ((string * int) * (bool * bool)) list;
      (* per user branch site, (then seen, else seen) across every
         Branch_taken event; sorted by site. The distinct-direction
         count [2*both + one-directional] equals
         [Driver.report.branches_covered] for a trace of the same
         search. *)
}

and cover_point = {
  cp_run : int;
  cp_covered : int; (* cumulative branch directions after that run *)
  cp_ns : int64; (* elapsed since the search started *)
}

val summarize : event list -> summary
val summary_to_string : summary -> string

(** {1 Coverage-over-time}

    Derived views of the {!Cover_point} stream used by
    [dartc cover --timeline], [dartc trace-stats] and the bench
    trajectory artifact. In a multi-worker trace the points appear in
    worker-replay order: each worker's segment is monotone, the
    concatenation is not a single global curve. *)

val timeline : event list -> cover_point list
(** The Cover_point events, in trace order. *)

val plateau : summary -> (int * int) option
(** [(last_run, stale_runs)]: the run number of the last cover point
    and how many runs have passed since coverage last increased. [None]
    when the trace has no cover points. *)

val frontier_sites : summary -> ((string * int) * bool * int) list
(** User branch sites with exactly one direction seen — the candidates
    a directed search can still force. Each entry is
    [(site, missing_dir, solve_attempts)] where [missing_dir] is the
    machine direction not yet exercised ([true] = jump taken), ranked
    by solver attempts at that site (descending), i.e. by how hard the
    search is already trying: a high-attempt frontier site is where the
    search plateaued. *)

val distinct_branch_dirs : summary -> int
(** Distinct (site, direction) pairs over user branch sites — the
    trace-side counterpart of [Driver.report.branches_covered]. *)

(** {1 Configuration} *)

type config = {
  sink : sink;
  worker_buffer : int;
      (* per-domain ring capacity used by Parallel when tracing a
         multi-worker search *)
  status_path : string option;
      (* when set, the search (or campaign) atomically rewrites this
         file with a {!Status} snapshot as it progresses *)
  status_every : int;
      (* single-shot runs refresh the status file every this many runs
         (campaigns refresh per round) *)
}

val default_config : config
(** Null sink, 2^20-event worker buffers, no status file,
    status_every 100. *)

val with_sink : sink -> config
