(** The input vector IM (paper §2.2): a persistent map from input
    identifiers to 32-bit values, carried from one run to the next.

    Inputs are identified by creation order within a run (the paper
    keys them by memory address; creation order is the stable analogue
    when heap addresses vary). Each input has a kind that fixes its
    random distribution and its solver domain. *)

type kind =
  | Kint (* full 32-bit signed range *)
  | Kchar (* 0..255 *)
  | Kcoin (* pointer-shape coin: 0 = NULL, 1 = fresh object *)

type t = {
  values : (int, int) Hashtbl.t;
  kinds : (int, kind) Hashtbl.t;
}

let create () = { values = Hashtbl.create 32; kinds = Hashtbl.create 32 }

let clear t =
  Hashtbl.reset t.values;
  Hashtbl.reset t.kinds

let random_of_kind rng = function
  | Kint -> Dart_util.Prng.bits32 rng
  | Kchar -> Dart_util.Prng.int_range rng 0 255
  | Kcoin -> if Dart_util.Prng.bool rng then 1 else 0

(** Value of input [id]: the persisted one if present, else a fresh
    random draw (recorded for the next run). *)
let get t ~id ~kind ~rng =
  Hashtbl.replace t.kinds id kind;
  match Hashtbl.find_opt t.values id with
  | Some v -> v
  | None ->
    let v = random_of_kind rng kind in
    Hashtbl.replace t.values id v;
    v

let set t ~id v = Hashtbl.replace t.values id v

let kind_of t id = Hashtbl.find_opt t.kinds id
let value_of t id = Hashtbl.find_opt t.values id

let to_alist t =
  Hashtbl.fold (fun id v acc -> (id, v) :: acc) t.values []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let kind_tag = function
  | Kint -> "int"
  | Kchar -> "char"
  | Kcoin -> "coin"

let kind_of_tag = function
  | "int" -> Some Kint
  | "char" -> Some Kchar
  | "coin" -> Some Kcoin
  | _ -> None

(* Checkpoint views: the kind table matters too — [kind_of] drives the
   solver's domain constraints, so a resumed IM without kinds would
   solve chars over the full 32-bit range. Inputs whose kind was
   recorded but whose value was since dropped do not occur (get always
   writes both), so pairing by id over [values] is complete. *)
let to_full_alist t =
  Hashtbl.fold
    (fun id v acc ->
      let kind = Option.value ~default:Kint (Hashtbl.find_opt t.kinds id) in
      (id, v, kind) :: acc)
    t.values []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let restore t entries =
  clear t;
  List.iter
    (fun (id, v, kind) ->
      Hashtbl.replace t.values id v;
      Hashtbl.replace t.kinds id kind)
    entries
