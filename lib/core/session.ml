type t = {
  s_options : Driver.options;
  s_jobs : int;
  s_portfolio : Strategy.t list;
  s_should_stop : unit -> bool;
  s_cache : (string * string * int, Ram.Instr.program) Hashtbl.t;
      (* (source key, toplevel, depth) -> prepared program *)
  s_lock : Mutex.t;
  mutable s_prepared : int;
  mutable s_hits : int;
}

let create ?(jobs = 1) ?(portfolio = []) ?(should_stop = fun () -> false)
    ?(options = Driver.Options.default) () =
  if jobs < 0 then invalid_arg "Session.create: jobs must be >= 0";
  { s_options = options;
    s_jobs = jobs;
    s_portfolio = portfolio;
    s_should_stop = should_stop;
    s_cache = Hashtbl.create 64;
    s_lock = Mutex.create ();
    s_prepared = 0;
    s_hits = 0 }

let options t = t.s_options
let jobs t = t.s_jobs
let portfolio t = t.s_portfolio
let should_stop t = t.s_should_stop

let locked t f =
  Mutex.lock t.s_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.s_lock) f

let depth_of t (target : Target.t) =
  match target.Target.tg_depth with
  | Some d -> d
  | None -> t.s_options.Driver.Options.search.Driver.Options.depth

let prepare ?metrics t (target : Target.t) =
  match target.Target.tg_source with
  | Target.Prepared prog -> prog
  | Target.Text _ | Target.Parsed _ ->
    let depth = depth_of t target in
    let key = (target.Target.tg_key, target.Target.tg_toplevel, depth) in
    (match locked t (fun () -> Hashtbl.find_opt t.s_cache key) with
     | Some prog ->
       locked t (fun () -> t.s_hits <- t.s_hits + 1);
       prog
     | None ->
       (* Prepared outside the lock: concurrent campaign workers
          always prepare *different* targets (a target's slices are
          sequential), so no two domains ever race on one key — and a
          benign double-prepare of the same key would only waste work,
          both results being equal. *)
       let ast =
         match target.Target.tg_source with
         | Target.Text { file; text } -> Minic.Parser.parse_program ?file text
         | Target.Parsed ast -> ast
         | Target.Prepared _ -> assert false
       in
       let prog =
         Driver.prepare ?metrics ~library_sigs:target.Target.tg_library_sigs
           ~toplevel:target.Target.tg_toplevel ~depth ast
       in
       locked t (fun () ->
           t.s_prepared <- t.s_prepared + 1;
           Hashtbl.replace t.s_cache key prog);
       prog)

let prepared t = locked t (fun () -> t.s_prepared)
let prepare_hits t = locked t (fun () -> t.s_hits)
