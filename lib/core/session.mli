(** Long-lived engine state, created once and reused across targets.

    A session bundles everything the search engine keeps warm between
    entry points: the base {!Driver.Options.t}, the parallelism
    configuration, a compiled-program cache (driver generation +
    typecheck + lowering happen once per [(source, toplevel, depth)]
    triple), and the cooperative cancel token. {!Engine.run} consumes
    a session plus a {!Target.t}; single-shot [dartc], the bench
    harness and the campaign orchestrator all go through that one
    entry instead of re-plumbing options, deadlines and contexts per
    call site.

    The preparation cache is guarded by a mutex: campaign workers on
    separate domains prepare different targets concurrently. Cached
    programs are shared read-only (the RAM program and its compiled
    closures are immutable after lowering; {!Parallel} already shares
    them across worker domains). *)

type t

val create :
  ?jobs:int ->
  ?portfolio:Strategy.t list ->
  ?should_stop:(unit -> bool) ->
  ?options:Driver.options ->
  unit ->
  t
(** [jobs] defaults to 1 (sequential); [portfolio] to none;
    [should_stop] to never (process-wide {!Cancel} is always polled by
    the search itself); [options] to {!Driver.Options.default}.
    @raise Invalid_argument if [jobs < 0]. *)

val options : t -> Driver.options
val jobs : t -> int
val portfolio : t -> Strategy.t list
val should_stop : t -> unit -> bool

val prepare : ?metrics:Telemetry.metrics -> t -> Target.t -> Ram.Instr.program
(** The target's program, prepared for its entry function: cached per
    [(source, toplevel, depth)], so a campaign preparing hundreds of
    targets over one library parses and lowers each combination
    exactly once across all rounds and domains. A cache miss's wall
    clock is attributed to [metrics]'s [Lower] phase; a hit costs a
    table lookup and no [Lower] time.
    @raise Minic.Typecheck.Error (etc.) as {!Driver.prepare} does. *)

val prepared : t -> int
(** Preparations performed (cache misses) since [create]. *)

val prepare_hits : t -> int
(** Preparations answered from the cache. *)
