(** Source-level coverage explorer.

    {!Coverage} answers "how much" (per-function direction counts);
    this module answers "where" and "why": every [Iif] branch site of
    the program under test is mapped through the lowering's [locs]
    table back to its MiniC source line and classified per direction,
    from which three reports are rendered —

    - {!annotate}: the source listing with a per-line coverage gutter,
    - {!to_lcov}: an lcov [.info] file ([BRDA]/[DA] records) for
      standard tooling ([genhtml], CI coverage diffing),
    - {!to_html}: a self-contained single-file HTML report (inline
      CSS, no external dependencies).

    Directions are the machine's: a site [Iif (e, l)] has a {e taken}
    direction (the jump, [e] non-zero) and a {e fall-through} one.
    Source-level [if]/[while] compile through negated tests, so taken
    does not uniformly mean the source's then-branch; reports say
    taken/fall rather than then/else for this reason.

    A site both of whose directions ran is {e full}; a {e frontier}
    site has run in exactly one direction — it sits on an executed
    path, so it is a candidate the directed search can still try to
    force — while an {e unreached} site has never executed at all:
    getting there needs a new path prefix, not just one more flip. *)

type status =
  | Full (* both directions exercised *)
  | Taken_only (* fall-through direction missing: frontier *)
  | Fall_only (* taken direction missing: frontier *)
  | Unreached (* site never executed *)

type site = {
  cs_fn : string;
  cs_pc : int;
  cs_loc : Minic.Loc.t;
  cs_status : status;
}

type t = {
  sites : site list;
      (* every [Iif] site of every non-driver function, sorted by
         (file, line, column, function, pc) *)
  coverage : Coverage.t; (* the aggregate view of the same data *)
}

val compute : Ram.Instr.program -> covered:(string * int * bool) list -> t
(** [covered] is the (function, pc, direction) list a search reports
    ({!Driver.report.coverage_sites}); driver-internal functions are
    excluded exactly as {!Coverage.compute} excludes them, so
    [t.coverage] totals always agree with a direct
    {!Coverage.compute}. *)

val frontier : t -> site list
(** Sites with exactly one direction exercised, in site order. *)

val unreached : t -> site list

val marker : status -> string
(** Two glyphs, taken direction first: ["✓✓"], ["✓·"], ["·✓"],
    ["··"]. *)

(** {1 Reports} *)

val annotate : t -> source:string -> string
(** The source text with a coverage gutter: each line shows the
    markers of its branch sites (several when one line holds several
    sites, e.g. [a && b]), followed by frontier/unreached site lists
    and the {!Coverage.to_string} totals block byte-for-byte. *)

val to_lcov : t -> string
(** lcov tracefile records, one [SF:…end_of_record] block per distinct
    source file: [FN]/[FNDA] per function, [DA] per line bearing a
    site, two [BRDA] records per site (block = pc, branch 0 = taken,
    branch 1 = fall-through; ["-"] when the site never executed), and
    [BRF]/[BRH] totals equal to [2 * total_sites] /
    [total_directions]. *)

val to_html : ?extra:string -> t -> source:string -> title:string -> string
(** Self-contained single-file HTML: summary tiles, a per-function
    table, and the annotated source with per-line highlighting.
    [extra] (default empty) is an already-rendered HTML fragment
    spliced in before [</body>] — the campaign report passes
    {!campaign_heatmap} here. *)

val campaign_heatmap : (string * string * int64 * int * int) list -> string
(** HTML fragment for the campaign report's per-target panel: one cell
    per [(target, retire_tag, total_ns, runs, deadline_overruns)]
    entry, cell intensity proportional to the target's share of total
    slice wall clock and border color keyed to the retirement tag
    ([bug] / [complete] / [saturated] / [capped] / [quarantined]).
    Nonzero overrun counts ride in the cell tooltip. Deterministic for
    a fixed input list. *)

(** {1 lcov re-parser}

    A validating parser for the record grammar {!to_lcov} emits, used
    by the round-trip tests (and usable on any lcov tracefile that
    sticks to TN/SF/FN/FNDA/FNF/FNH/DA/BRDA/BRF/BRH/LF/LH records). *)

type lcov_totals = {
  lt_files : int; (* SF blocks *)
  lt_functions : int; (* FN records *)
  lt_brda : int; (* BRDA records *)
  lt_branches_hit : int; (* BRDA records with a positive taken count *)
  lt_brf : int; (* summed BRF *)
  lt_brh : int; (* summed BRH *)
  lt_da : int; (* DA records *)
  lt_lines_hit : int; (* DA records with a positive count *)
}

val parse_lcov : string -> (lcov_totals, string) result
(** [Error] names the first offending line. *)
