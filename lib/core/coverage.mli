(** Branch-coverage accounting.

    The paper motivates automated unit testing by coverage ("its role
    is precisely to ... check all corner cases, and provide 100% code
    coverage", §1). A coverage report relates the branch directions a
    search exercised to the program's totals, per function. *)

type entry = {
  cov_fn : string;
  cov_sites : int; (* conditional instructions in the function *)
  cov_directions : int; (* of the 2 * cov_sites possible outcomes, how many ran *)
  cov_full : int; (* sites with both directions exercised *)
}

type t = {
  entries : entry list; (* sorted by function name; driver-internal
                           functions excluded *)
  total_sites : int;
  total_directions : int;
}

val is_driver_function : string -> bool
(** Whether [name] is part of the synthesized test driver (the
    [__dart_*] wrapper and argument functions). Driver-internal branch
    sites are excluded from every coverage number — both here and in
    {!Driver.report.branches_covered} — so the two stay consistent. *)

val compute : Ram.Instr.program -> covered:(string * int * bool) list -> t
(** [covered] is the list of (function, pc, direction) triples a search
    reports. *)

val percent : t -> float
(** Covered directions over all possible ones, 0..100. *)

val to_string : t -> string
