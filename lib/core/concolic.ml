open Zarith_lite
open Symbolic

type branch_record = {
  br_branch : bool;
  br_done : bool;
}

type run_outcome =
  | Run_fault of Machine.fault * Machine.site
  | Run_prediction_failure
  | Run_halted

type run_data = {
  outcome : run_outcome;
  stack : branch_record array;
  path_constraint : Constr.t option array;
  cond_sites : (string * int) array;
  conditionals : int;
  steps : int;
  inputs_read : int;
  all_linear : bool;
  all_locs_definite : bool;
  branch_sites : (string * int * bool) list;
}

type exec_options = {
  machine_config : Machine.config;
  library : (string * Machine.library_impl) list;
  symbolic_pointers : bool;
  max_ptr_depth : int;
  symbolic : bool;
  compile : bool;
}

let default_exec_options =
  { machine_config = Machine.default_config;
    library = [];
    symbolic_pointers = false;
    max_ptr_depth = 16;
    symbolic = true;
    compile = true }

exception Prediction_failure_exn

type ctx = {
  opts : exec_options;
  rng : Dart_util.Prng.t;
  im : Inputs.t;
  prev_stack : branch_record array;
  sym : Symmem.t;
  structs : Minic.Ctype.struct_env;
  mutable k : int; (* conditionals executed *)
  mutable next_input : int;
  mutable new_branches : bool list; (* beyond the prefix, reversed *)
  mutable pc_rev : Constr.t option list;
  mutable sites_rev : (string * int) list; (* per conditional, same indexing *)
  mutable flip_confirmed : bool;
  mutable all_linear : bool;
  mutable all_locs_definite : bool;
  coverage : (string * int * bool, unit) Hashtbl.t;
}

(* ---- evaluate_symbolic (Figure 1) ----------------------------------------- *)

(* The symbolic counterpart of the machine's concrete evaluation.
   Returns a linear expression over input variables; whenever the
   expression leaves the linear theory (products of two symbolic
   values, bit operations, symbolic addresses...), it falls back on the
   concrete value and clears the corresponding completeness flag, as in
   Figure 1. *)
let rec eval_sym ctx m ~base (e : Ram.Instr.rexpr) : Linexpr.t =
  let concrete () = Linexpr.of_int (Machine.eval_concrete m ~base e) in
  match e with
  | Ram.Instr.Const n -> Linexpr.of_int n
  | Ram.Instr.Addr_global _ | Ram.Instr.Addr_local _ | Ram.Instr.Addr_string _ ->
    concrete ()
  | Ram.Instr.Load a ->
    let sa = eval_sym ctx m ~base a in
    (match Linexpr.is_const sa with
     | Some _ ->
       let addr = Machine.eval_concrete m ~base a in
       (match Symmem.lookup ctx.sym ~addr with
        | Some se -> se
        | None -> concrete ())
     | None ->
       (* Dereference through an input-dependent address: the paper's
          all_locs_definite case. *)
       ctx.all_locs_definite <- false;
       concrete ())
  | Ram.Instr.Unop (op, e1) ->
    let s1 = eval_sym ctx m ~base e1 in
    (match op with
     | Minic.Ast.Neg -> Linexpr.neg s1
     | Minic.Ast.Bitnot ->
       (* Two's complement: ~x = -x - 1, still linear. *)
       Linexpr.add_const Zint.minus_one (Linexpr.neg s1)
     | Minic.Ast.Lognot ->
       (match Linexpr.is_const s1 with
        | Some _ -> concrete ()
        | None ->
          ctx.all_linear <- false;
          concrete ()))
  | Ram.Instr.Binop (op, a, b) ->
    let sa = eval_sym ctx m ~base a in
    let sb = eval_sym ctx m ~base b in
    let ca = Linexpr.is_const sa and cb = Linexpr.is_const sb in
    let nonlinear () =
      match (ca, cb) with
      | Some _, Some _ -> concrete ()
      | _ ->
        ctx.all_linear <- false;
        concrete ()
    in
    (match op with
     | Minic.Ast.Add -> Linexpr.add sa sb
     | Minic.Ast.Sub -> Linexpr.sub sa sb
     | Minic.Ast.Mul ->
       (match (ca, cb) with
        | Some x, _ -> Linexpr.scale x sb
        | _, Some y -> Linexpr.scale y sa
        | None, None ->
          ctx.all_linear <- false;
          concrete ())
     | Minic.Ast.Shl ->
       (* x << c with constant c is a scale by 2^c. *)
       (match cb with
        | Some c when Zint.sign c >= 0 && Zint.compare c (Zint.of_int 31) <= 0 ->
          Linexpr.scale (Zint.pow Zint.two (Zint.to_int c)) sa
        | _ -> nonlinear ())
     | Minic.Ast.Div | Minic.Ast.Mod | Minic.Ast.Band | Minic.Ast.Bor | Minic.Ast.Bxor
     | Minic.Ast.Shr ->
       nonlinear ()
     | Minic.Ast.Eq | Minic.Ast.Ne | Minic.Ast.Lt | Minic.Ast.Le | Minic.Ast.Gt
     | Minic.Ast.Ge ->
       (* A comparison used as an arithmetic value (not as a branch
          condition) is outside the linear fragment. *)
       nonlinear ())

let is_comparison (op : Minic.Ast.binop) =
  match op with
  | Minic.Ast.Eq | Minic.Ast.Ne | Minic.Ast.Lt | Minic.Ast.Le | Minic.Ast.Gt | Minic.Ast.Ge
    ->
    true
  | Minic.Ast.Add | Minic.Ast.Sub | Minic.Ast.Mul | Minic.Ast.Div | Minic.Ast.Mod
  | Minic.Ast.Band | Minic.Ast.Bor | Minic.Ast.Bxor | Minic.Ast.Shl | Minic.Ast.Shr ->
    false

(* The predicate recorded in the path constraint for a conditional.
   [None] when the condition carries no (linear) symbolic content — it
   then cannot be flipped, exactly the paper's foobar line-2 case. *)
let rec cond_constraint ctx m ~base (e : Ram.Instr.rexpr) ~taken : Constr.t option =
  match e with
  | Ram.Instr.Unop (Minic.Ast.Lognot, e1) -> cond_constraint ctx m ~base e1 ~taken:(not taken)
  | Ram.Instr.Binop (op, a, b) when is_comparison op ->
    let sa = eval_sym ctx m ~base a in
    let sb = eval_sym ctx m ~base b in
    if Linexpr.is_const sa <> None && Linexpr.is_const sb <> None then None
    else begin
      match Constr.of_comparison op sa sb with
      | Some c -> Some (if taken then c else Constr.negate c)
      | None -> None
    end
  | _ ->
    let sv = eval_sym ctx m ~base e in
    (match Linexpr.is_const sv with
     | Some _ -> None
     | None -> Some (Constr.truth sv taken))

(* ---- compare_and_update_stack (Figure 4) ----------------------------------- *)

let record_branch ctx ~site ~taken ~constraint_opt =
  ctx.pc_rev <- constraint_opt :: ctx.pc_rev;
  ctx.sites_rev <- site :: ctx.sites_rev;
  let k = ctx.k in
  ctx.k <- k + 1;
  let plen = Array.length ctx.prev_stack in
  if k < plen then begin
    if ctx.prev_stack.(k).br_branch <> taken then raise Prediction_failure_exn
    else if k = plen - 1 then ctx.flip_confirmed <- true
  end
  else ctx.new_branches <- taken :: ctx.new_branches

(* ---- random initialization (Figure 8) -------------------------------------- *)

let fresh_scalar ctx m ~addr ~kind =
  let id = ctx.next_input in
  ctx.next_input <- id + 1;
  let v = Inputs.get ctx.im ~id ~kind ~rng:ctx.rng in
  Machine.write_word m addr v;
  if ctx.opts.symbolic then Symmem.bind ctx.sym ~addr (Linexpr.var id);
  v

let rec rand_init ctx m ~addr ~ty ~depth =
  match (ty : Minic.Ctype.t) with
  | Minic.Ctype.Tint -> ignore (fresh_scalar ctx m ~addr ~kind:Inputs.Kint)
  | Minic.Ctype.Tchar -> ignore (fresh_scalar ctx m ~addr ~kind:Inputs.Kchar)
  | Minic.Ctype.Tvoid -> ()
  | Minic.Ctype.Tptr pointee -> rand_init_pointer ctx m ~addr ~pointee ~depth
  | Minic.Ctype.Tstruct sname ->
    let def = Minic.Ctype.find_struct ctx.structs sname in
    List.iter
      (fun (fname, fty) ->
        let off, _ = Minic.Ctype.field_offset ctx.structs sname fname in
        rand_init ctx m ~addr:(addr + off) ~ty:fty ~depth)
      def.Minic.Ctype.sfields
  | Minic.Ctype.Tarray (elem, n) ->
    let sz = Minic.Ctype.sizeof ctx.structs elem in
    for i = 0 to n - 1 do
      rand_init ctx m ~addr:(addr + (i * sz)) ~ty:elem ~depth
    done

and rand_init_pointer ctx m ~addr ~pointee ~depth =
  if depth >= ctx.opts.max_ptr_depth then begin
    (* Depth cap: force NULL without consuming an input, keeping input
       numbering deterministic along a path. *)
    Machine.write_word m addr 0;
    if ctx.opts.symbolic then Symmem.erase ctx.sym ~addr
  end
  else begin
    let id = ctx.next_input in
    ctx.next_input <- id + 1;
    let coin = Inputs.get ctx.im ~id ~kind:Inputs.Kcoin ~rng:ctx.rng in
    let non_null = coin <> 0 in
    if ctx.opts.symbolic then begin
      if ctx.opts.symbolic_pointers then begin
        (* Extension: the coin toss becomes a directable pseudo-branch
           with constraint coin <> 0 (or = 0). *)
        let c = Constr.truth (Linexpr.var id) non_null in
        (* No machine site backs the coin: attribute it to a synthetic
           one keyed by the input id so traces stay unambiguous. *)
        record_branch ctx ~site:(Driver_gen.coin_site, id) ~taken:non_null
          ~constraint_opt:(Some c)
      end
      else
        (* Paper semantics: the pointer shape is pure randomization the
           directed search cannot flip, so exhausting the value-directed
           search does not cover all behaviours — completeness is lost
           and the outer loop must keep restarting with fresh shapes
           ("randomization takes over", §6). *)
        ctx.all_locs_definite <- false
    end;
    if non_null then begin
      let size =
        match pointee with
        | Minic.Ctype.Tvoid -> 1
        | _ -> Minic.Ctype.sizeof ctx.structs pointee
      in
      let target = Machine.alloc_heap m size in
      (match pointee with
       | Minic.Ctype.Tvoid ->
         (* void*: a single opaque int cell. *)
         rand_init ctx m ~addr:target ~ty:Minic.Ctype.Tint ~depth:(depth + 1)
       | _ -> rand_init ctx m ~addr:target ~ty:pointee ~depth:(depth + 1));
      Machine.write_word m addr target
    end
    else Machine.write_word m addr 0;
    if ctx.opts.symbolic then Symmem.erase ctx.sym ~addr
  end

(* ---- the instrumented run (Figure 3) ---------------------------------------- *)

let run_once ~opts ~rng ~im ~prev_stack ~entry (prog : Ram.Instr.program) : run_data =
  let m =
    Machine.load ~config:opts.machine_config ~library:opts.library ~compile:opts.compile prog
  in
  let ctx =
    { opts;
      rng;
      im;
      prev_stack;
      sym = Symmem.create ();
      structs = prog.Ram.Instr.structs;
      k = 0;
      next_input = 0;
      new_branches = [];
      pc_rev = [];
      sites_rev = [];
      flip_confirmed = false;
      all_linear = true;
      all_locs_definite = true;
      coverage = Hashtbl.create 64 }
  in
  let listener =
    { Machine.on_store =
        (fun m ~dst ~src ~base ->
          if opts.symbolic then Symmem.bind ctx.sym ~addr:dst (eval_sym ctx m ~base src));
      on_branch =
        (fun m ~cond ~base ~taken ~site ->
          Hashtbl.replace ctx.coverage (site.Machine.site_fn, site.Machine.site_pc, taken) ();
          let constraint_opt =
            if opts.symbolic then cond_constraint ctx m ~base cond ~taken else None
          in
          record_branch ctx
            ~site:(site.Machine.site_fn, site.Machine.site_pc)
            ~taken ~constraint_opt);
      on_external =
        (fun m signature ~dst ->
          match dst with
          | None -> ()
          | Some addr -> rand_init ctx m ~addr ~ty:signature.Minic.Tast.sig_ret ~depth:0);
      on_library =
        (fun m ~callee:_ ~args ~base ->
          if opts.symbolic then begin
            (* A black box consuming symbolic data: its behaviour is
               unknown to the theory, so completeness is lost. *)
            let symbolic_arg =
              List.exists
                (fun a -> Linexpr.is_const (eval_sym ctx m ~base a) = None)
                args
            in
            if symbolic_arg then ctx.all_linear <- false
          end);
      on_entry =
        (fun m ~entry:_ ~base:_ ->
          (* random_init of all external variables (paper §3.2). *)
          List.iter
            (fun (g : Minic.Tast.tglobal) ->
              if g.gl_extern then
                rand_init ctx m ~addr:(Machine.global_addr m g.gl_name) ~ty:g.gl_ty ~depth:0)
            prog.Ram.Instr.globals) }
  in
  let outcome =
    match Machine.run ~listener m ~entry with
    | Machine.Halted -> Run_halted
    | Machine.Faulted (f, site) -> Run_fault (f, site)
    | exception Prediction_failure_exn -> Run_prediction_failure
  in
  (* Assemble the final stack: validated prefix (with the flipped entry
     marked done when its branch was confirmed) plus new entries. *)
  let plen = Array.length prev_stack in
  let matched = min ctx.k plen in
  let prefix =
    Array.init matched (fun i ->
        let r = prev_stack.(i) in
        if i = plen - 1 && ctx.flip_confirmed then { r with br_done = true } else r)
  in
  let fresh =
    Array.of_list
      (List.rev_map (fun b -> { br_branch = b; br_done = false }) ctx.new_branches)
  in
  { outcome;
    stack = Array.append prefix fresh;
    path_constraint = Array.of_list (List.rev ctx.pc_rev);
    cond_sites = Array.of_list (List.rev ctx.sites_rev);
    conditionals = ctx.k;
    steps = Machine.steps m;
    inputs_read = ctx.next_input;
    all_linear = ctx.all_linear;
    all_locs_definite = ctx.all_locs_definite;
    branch_sites = Hashtbl.fold (fun key () acc -> key :: acc) ctx.coverage [] }
