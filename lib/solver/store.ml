(* Lock-free cross-worker solve store.

   One instance is shared by every worker domain of a parallel search
   (it replaces the per-worker [Cache] when shared caching is on). Two
   jobs in one structure:

   - a solved-key memo: Sat/Unsat verdicts keyed on [Cache.canonical]
     keys, published by whichever worker solves them first and visible
     to all — global constraint caching instead of per-worker private
     tables (Unknown is never published: it reflects resource limits);

   - frontier-claim slots: acquiring an unsolved key installs an
     [In_flight] marker, so the key doubles as a claim on that branch
     of the shared frontier. A worker that finds another's claim keeps
     solving locally rather than blocking — DART's depth-first
     discipline never waits on a peer — but the claim lets the merge
     layer count duplicated work and lets workers steal solved
     branches instead of re-deriving them.

   The structure is a fixed array of CAS'd cons-list buckets; cells are
   never removed, and each cell's state only ever moves [In_flight ->
   Done] (first publisher wins). With a single worker the acquire /
   publish sequence is observationally identical to [Cache.find] /
   [Cache.add], which keeps jobs=1 searches byte-identical. *)

type state =
  | In_flight of int (* worker id holding the claim *)
  | Done of Cache.verdict * int (* verdict in canonical space + publisher *)

type cell = { c_key : Cache.Key.t; c_state : state Atomic.t }

type t = { buckets : cell list Atomic.t array; mask : int }

let create ?(size_bits = 12) () =
  let n = 1 lsl size_bits in
  { buckets = Array.init n (fun _ -> Atomic.make []); mask = n - 1 }

let bucket t key = t.buckets.(Cache.Key.hash key land t.mask)

let rec find_cell cells key =
  match cells with
  | [] -> None
  | c :: rest -> if Cache.Key.equal c.c_key key then Some c else find_cell rest key

type outcome =
  | Hit of Cache.verdict * int
      (** Already solved; verdict (mapped to the query's variables) and
          the worker that published it. *)
  | Claimed  (** We now hold the claim slot: solve and {!publish}. *)
  | Busy of int
      (** Another worker holds the claim; solve locally, do not block. *)

let rec acquire t ~worker (keyed : Cache.keyed) =
  let b = bucket t keyed.Cache.key in
  let cells = Atomic.get b in
  match find_cell cells keyed.Cache.key with
  | Some c -> (
    match Atomic.get c.c_state with
    | Done (v, w) -> Hit (Cache.of_canonical keyed v, w)
    | In_flight w when w = worker ->
      (* Our own stale claim: the earlier solve came back Unknown (never
         published). Retry it. *)
      Claimed
    | In_flight w -> Busy w)
  | None ->
    let cell = { c_key = keyed.Cache.key; c_state = Atomic.make (In_flight worker) } in
    if Atomic.compare_and_set b cells (cell :: cells) then Claimed
    else acquire t ~worker keyed (* lost an insertion race; rescan *)

let publish t ~worker (keyed : Cache.keyed) verdict =
  let v = Cache.to_canonical keyed verdict in
  let rec upgrade cell =
    match Atomic.get cell.c_state with
    | Done _ -> () (* first publisher wins; later verdicts agree anyway *)
    | In_flight _ as old ->
      if not (Atomic.compare_and_set cell.c_state old (Done (v, worker))) then
        upgrade cell
  in
  let rec insert () =
    let b = bucket t keyed.Cache.key in
    let cells = Atomic.get b in
    match find_cell cells keyed.Cache.key with
    | Some cell -> upgrade cell
    | None ->
      let cell = { c_key = keyed.Cache.key; c_state = Atomic.make (Done (v, worker)) } in
      if not (Atomic.compare_and_set b cells (cell :: cells)) then insert ()
  in
  insert ()

let length t =
  Array.fold_left (fun acc b -> acc + List.length (Atomic.get b)) 0 t.buckets

let solved t =
  Array.fold_left
    (fun acc b ->
      List.fold_left
        (fun acc c -> match Atomic.get c.c_state with Done _ -> acc + 1 | In_flight _ -> acc)
        acc (Atomic.get b))
    0 t.buckets
