(** Per-site circuit breaker for solver queries.

    A site is a branch location [(fn, pc)]. After [threshold]
    {e consecutive} deadline-overrun Unknowns at one site the breaker
    opens and {!skip} short-circuits further queries there to an
    immediate Unknown. After [cooldown] calls to {!tick} (one per
    campaign slice, or per restart in a single run) the site half-opens:
    one probe query is let through, and {!record} on its outcome either
    closes the breaker or re-opens it for another cooldown.

    Structural (non-overrun) Unknowns never trip the breaker, which
    keeps default output byte-identical to the [--no-breaker] ablation
    on workloads the solver is merely incomplete for.

    Not thread-safe: one breaker per search context. *)

type t

val create : ?threshold:int -> ?cooldown:int -> unit -> t
(** [threshold] (default 3) consecutive overrun-Unknowns open a site;
    the breaker half-opens after [cooldown] (default 2) ticks. Raises
    [Invalid_argument] when either is < 1. *)

val skip : t -> string * int -> bool
(** [skip t site] is [true] when the site is open; the query must then
    be short-circuited to Unknown. Counts the skip (see {!skips}). *)

val record : t -> string * int -> failed:bool -> [ `Opened | `Closed | `None ]
(** Record the outcome of a real (non-skipped) query at [site].
    [failed] means the query returned Unknown because the deadline
    overran. Returns the transition taken, for telemetry. *)

val tick : t -> unit
(** Advance cooldowns by one unit (slice or restart). Open sites whose
    cooldown expires become half-open. *)

val opens : t -> int
(** Cumulative transitions into the open state. *)

val skips : t -> int
(** Cumulative queries short-circuited. *)

val open_sites : t -> (string * int) list
(** Sites currently open or half-open, in no particular order. *)
