(** Integer feasibility by branch-and-bound over the rational
    relaxation. Branching tightens the per-variable box around a
    fractional coordinate of the simplex sample point; the 32-bit box
    bounds make the search finite. *)

open Zarith_lite
open Symbolic

type result =
  | Sat of (Linexpr.var * Zint.t) list
  | Unsat
  | Unknown

let solve ?(node_limit = 400) ?(deadline = fun () -> false) ~(intervals : Intervals.t)
    ~les ~vars () =
  let budget = ref node_limit in
  let rec bb (box : Intervals.t) =
    (* The deadline is the per-query wall-clock guard: checked once per
       node, the same granularity as the node budget, so an overrun
       costs at most one more simplex call. *)
    if !budget <= 0 || deadline () then Unknown
    else begin
      decr budget;
      if not (Intervals.consistent box) then Unsat
      else begin
        match
          Simplex.feasible ~vars ~lo:(Intervals.lo box) ~hi:(Intervals.hi box) ~les ()
        with
        | Simplex.Unsat -> Unsat
        | Simplex.Aborted -> Unknown
        | Simplex.Sat q_assignment ->
          let fractional =
            List.find_opt (fun (_, q) -> not (Qnum.is_integer q)) q_assignment
          in
          (match fractional with
           | None -> Sat (List.map (fun (v, q) -> (v, Qnum.to_zint q)) q_assignment)
           | Some (v, q) ->
             let fl = Qnum.floor q in
             (* Left branch: v <= floor(q). *)
             let left = Intervals.copy box in
             Intervals.tighten_hi left v fl;
             (match bb left with
              | Sat _ as s -> s
              | Unknown -> Unknown
              | Unsat ->
                let right = Intervals.copy box in
                Intervals.tighten_lo right v (Zint.succ fl);
                bb right))
      end
    end
  in
  bb intervals
