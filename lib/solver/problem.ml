(** Normalized constraint problems.

    A conjunction of {!Symbolic.Constr.t} atoms is normalized into
    - equalities [e = 0],
    - non-strict inequalities [e <= 0] (strict [e < 0] becomes
      [e + 1 <= 0], exact over the integers), and
    - disequalities [e <> 0], handled by case splitting downstream.

    Every variable is additionally bounded to the signed 32-bit range,
    the domain of C [int] inputs, which keeps integer feasibility
    decidable and generated inputs representable. *)

open Zarith_lite
open Symbolic

type t = {
  eqs : Linexpr.t list;
  les : Linexpr.t list;
  nes : Linexpr.t list;
}

let empty = { eqs = []; les = []; nes = [] }

let add_constr p (c : Constr.t) =
  match c.rel with
  | Constr.Eq0 -> { p with eqs = c.lhs :: p.eqs }
  | Constr.Ne0 -> { p with nes = c.lhs :: p.nes }
  | Constr.Le0 -> { p with les = c.lhs :: p.les }
  | Constr.Lt0 -> { p with les = Linexpr.add_const Zint.one c.lhs :: p.les }

let of_constrs cs = List.fold_left add_constr empty cs

let vars p =
  let tbl = Hashtbl.create 16 in
  let add e = List.iter (fun v -> Hashtbl.replace tbl v ()) (Linexpr.vars e) in
  List.iter add p.eqs;
  List.iter add p.les;
  List.iter add p.nes;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) tbl [])

let word_min = Zint.of_int Dart_util.Word32.min_value
let word_max = Zint.of_int Dart_util.Word32.max_value

let coeff_gcd e =
  List.fold_left (fun g (_, c) -> Zint.gcd g c) Zint.zero (Linexpr.terms e)

let divide_terms g e =
  List.fold_left
    (fun acc (v, c) -> Linexpr.add acc (Linexpr.scale (Zint.div c g) (Linexpr.var v)))
    Linexpr.zero (Linexpr.terms e)

(** Per-atom integer tightening: divide the atom by the gcd of its
    variable coefficients. An equality [g*t + c = 0] with [g] not
    dividing [c] is unsatisfiable ([None]); an inequality
    [g*t + c <= 0] tightens to [t - floor(-c/g) <= 0]. Exposed
    atom-wise so the incremental assertion stack and the cache's key
    canonicalization normalize exactly like {!tighten}. *)
let tighten_eq_atom e =
  let g = coeff_gcd e in
  if Zint.is_zero g || Zint.is_one g then Some e
  else begin
    let c = Linexpr.constant_part e in
    if not (Zint.is_zero (Zint.rem c g)) then None
    else Some (Linexpr.add_const (Zint.div c g) (divide_terms g e))
  end

let tighten_le_atom e =
  let g = coeff_gcd e in
  if Zint.is_zero g || Zint.is_one g then e
  else begin
    let c = Linexpr.constant_part e in
    (* g*t <= -c  <=>  t <= floor(-c / g) *)
    let bound = Zint.fdiv (Zint.neg c) g in
    Linexpr.add_const (Zint.neg bound) (divide_terms g e)
  end

(** Integer tightening of every atom; returns [None] on direct unsat. *)
let tighten p =
  let exception Unsat_exn in
  let tighten_eq e =
    match tighten_eq_atom e with Some e' -> e' | None -> raise Unsat_exn
  in
  match
    { eqs = List.map tighten_eq p.eqs; les = List.map tighten_le_atom p.les; nes = p.nes }
  with
  | p' -> Some p'
  | exception Unsat_exn -> None

(** Check a full assignment against the problem (used by tests and by
    the solver's internal sanity check). *)
let satisfied_by env p =
  let holds_eq e = Zint.is_zero (Linexpr.eval env e) in
  let holds_le e = Zint.sign (Linexpr.eval env e) <= 0 in
  let holds_ne e = not (Zint.is_zero (Linexpr.eval env e)) in
  List.for_all holds_eq p.eqs && List.for_all holds_le p.les && List.for_all holds_ne p.nes

let to_string p =
  let line rel e = Printf.sprintf "  %s %s" (Linexpr.to_string e) rel in
  String.concat "\n"
    (List.map (line "= 0") p.eqs @ List.map (line "<= 0") p.les
    @ List.map (line "!= 0") p.nes)
