open Zarith_lite
open Symbolic

module Cache = Cache
(** Re-export: the per-worker solve cache ([lib/solver/cache.ml]),
    reachable as [Solver.Cache] from outside the library. *)

type result =
  | Sat of (Linexpr.var * Zint.t) list
  | Unsat
  | Unknown

type stats = {
  mutable queries : int;
  mutable sat : int;
  mutable unsat : int;
  mutable unknown : int;
  mutable fast_path : int;
  mutable simplex_queries : int;
  mutable ne_splits : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable constraints_sliced_away : int;
  mutable deadline_overruns : int;
}

let create_stats () =
  { queries = 0; sat = 0; unsat = 0; unknown = 0; fast_path = 0; simplex_queries = 0;
    ne_splits = 0; cache_hits = 0; cache_misses = 0; constraints_sliced_away = 0;
    deadline_overruns = 0 }

(* The record stays private to this module: outside consumers go
   through the accessors / [to_assoc], so widening the record (as the
   acceleration PR did) is a local change. *)

let queries s = s.queries
let sat_count s = s.sat
let unsat_count s = s.unsat
let unknown_count s = s.unknown
let fast_path s = s.fast_path
let simplex_queries s = s.simplex_queries
let ne_splits s = s.ne_splits
let cache_hits s = s.cache_hits
let cache_misses s = s.cache_misses
let constraints_sliced_away s = s.constraints_sliced_away
let deadline_overruns s = s.deadline_overruns

let to_assoc s =
  [ ("queries", s.queries); ("sat", s.sat); ("unsat", s.unsat); ("unknown", s.unknown);
    ("fast_path", s.fast_path); ("simplex_queries", s.simplex_queries);
    ("ne_splits", s.ne_splits); ("cache_hits", s.cache_hits);
    ("cache_misses", s.cache_misses);
    ("constraints_sliced_away", s.constraints_sliced_away);
    ("deadline_overruns", s.deadline_overruns) ]

let of_assoc alist =
  let s = create_stats () in
  List.iter
    (fun (k, v) ->
      match k with
      | "queries" -> s.queries <- v
      | "sat" -> s.sat <- v
      | "unsat" -> s.unsat <- v
      | "unknown" -> s.unknown <- v
      | "fast_path" -> s.fast_path <- v
      | "simplex_queries" -> s.simplex_queries <- v
      | "ne_splits" -> s.ne_splits <- v
      | "cache_hits" -> s.cache_hits <- v
      | "cache_misses" -> s.cache_misses <- v
      | "constraints_sliced_away" -> s.constraints_sliced_away <- v
      | "deadline_overruns" -> s.deadline_overruns <- v
      | k -> invalid_arg (Printf.sprintf "Solver.of_assoc: unknown counter %S" k))
    alist;
  s

let add_stats ~into w =
  into.queries <- into.queries + w.queries;
  into.sat <- into.sat + w.sat;
  into.unsat <- into.unsat + w.unsat;
  into.unknown <- into.unknown + w.unknown;
  into.fast_path <- into.fast_path + w.fast_path;
  into.simplex_queries <- into.simplex_queries + w.simplex_queries;
  into.ne_splits <- into.ne_splits + w.ne_splits;
  into.cache_hits <- into.cache_hits + w.cache_hits;
  into.cache_misses <- into.cache_misses + w.cache_misses;
  into.constraints_sliced_away <- into.constraints_sliced_away + w.constraints_sliced_away;
  into.deadline_overruns <- into.deadline_overruns + w.deadline_overruns

let record_cache_hit s = s.cache_hits <- s.cache_hits + 1
let record_cache_miss s = s.cache_misses <- s.cache_misses + 1
let record_sliced s n = s.constraints_sliced_away <- s.constraints_sliced_away + n

let dummy_stats = create_stats ()

let check_model cs model =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (v, z) -> Hashtbl.replace tbl v z) model;
  let env v = match Hashtbl.find_opt tbl v with Some z -> z | None -> Zint.zero in
  List.for_all (Constr.holds env) cs

(* Choose an integer in [lo, hi] avoiding [forbidden], preferring
   [pref] (clamped into the interval), then walking up, then down. The
   forbidden list is tiny in practice (one entry per != atom on the
   variable). *)
let choose_value ~lo ~hi ~forbidden ~pref =
  if Zint.compare lo hi > 0 then None
  else begin
    let clamp z = Zint.max lo (Zint.min hi z) in
    let start = clamp pref in
    let is_ok z = not (List.exists (Zint.equal z) forbidden) in
    let rec up z = if Zint.compare z hi > 0 then None else if is_ok z then Some z else up (Zint.succ z) in
    let rec down z = if Zint.compare z lo < 0 then None else if is_ok z then Some z else down (Zint.pred z) in
    match up start with
    | Some z -> Some z
    | None -> down (Zint.pred start)
  end

(* Univariate disequality [a*v + c <> 0] forbids a single value when a
   divides -c, and is vacuous otherwise. *)
let univariate_forbidden nes =
  let tbl : (Linexpr.var, Zint.t list) Hashtbl.t = Hashtbl.create 8 in
  let rest = ref [] in
  let contradiction = ref false in
  List.iter
    (fun e ->
      match Linexpr.terms e with
      | [] -> if Zint.is_zero (Linexpr.constant_part e) then contradiction := true
      | [ (v, a) ] ->
        let c = Linexpr.constant_part e in
        let q, r = Zint.div_rem (Zint.neg c) a in
        if Zint.is_zero r then begin
          let prev = Option.value ~default:[] (Hashtbl.find_opt tbl v) in
          Hashtbl.replace tbl v (q :: prev)
        end
      | _ -> rest := e :: !rest)
    nes;
  (!contradiction, tbl, List.rev !rest)

let max_ne_split_depth = 24

let solve ?(stats = dummy_stats) ?(prefer = fun _ -> None) ?(use_simplex = true)
    ?(deadline = fun () -> false) cs =
  stats.queries <- stats.queries + 1;
  let overran = ref false in
  let expired () =
    if deadline () then begin
      overran := true;
      true
    end
    else false
  in
  let all_vars =
    let tbl = Hashtbl.create 16 in
    List.iter (fun c -> List.iter (fun v -> Hashtbl.replace tbl v ()) (Constr.vars c)) cs;
    Hashtbl.fold (fun v () acc -> v :: acc) tbl []
  in
  let pref v = match prefer v with Some z -> z | None -> Zint.zero in
  let rec attempt depth cs =
    (* One deadline poll per (sub-)query: ne-splits recurse through
       here, so a deep split tree cannot outlive its budget either. *)
    if expired () then Unknown
    else attempt_checked depth cs
  and attempt_checked depth cs =
    let p = Problem.of_constrs cs in
    match Problem.tighten p with
    | None -> Unsat
    | Some p ->
      attempt_tightened depth cs p
  and attempt_tightened depth cs p =
    match Gauss.eliminate p with
    | Gauss.Unsat -> Unsat
    | Gauss.Reduced (p', subst) ->
      (* Keep eliminated variables inside the 32-bit word range by
         constraining their defining expressions. *)
      let range_les =
        List.concat_map
          (fun (_, def) ->
            [ Linexpr.add_const (Zint.neg Problem.word_max) def;
              (* def - max <= 0 *)
              Linexpr.add_const Problem.word_min (Linexpr.neg def) (* min - def <= 0 *) ])
          subst
      in
      let box = Intervals.create () in
      let all_les =
        (* Post-elimination expressions can pick up common factors;
           tighten again so the interval fast path sees exact bounds. *)
        match Problem.tighten { Problem.eqs = []; les = range_les @ p'.Problem.les; nes = [] } with
        | None -> None
        | Some tp -> Some tp.Problem.les
      in
      (match Option.bind all_les (Intervals.absorb_univariate box) with
       | None -> Unsat
       | Some multi_les ->
         (* Multivariate disequalities need no special handling here:
            the final model check below catches any violation and the
            caller splits on it. *)
         let contradiction, forbidden_tbl, _multi_nes = univariate_forbidden p'.Problem.nes in
         if contradiction then Unsat
         else begin
           let assignment : (Linexpr.var, Zint.t) Hashtbl.t = Hashtbl.create 16 in
           let les_vars =
             let tbl = Hashtbl.create 8 in
             List.iter
               (fun e -> List.iter (fun v -> Hashtbl.replace tbl v ()) (Linexpr.vars e))
               multi_les;
             Hashtbl.fold (fun v () acc -> v :: acc) tbl []
           in
           (* Before falling back to simplex, try the preferred values
              (the previous run's inputs, clamped into their intervals):
              when they already satisfy the residual system — the common
              case after Gaussian elimination pivoted the constrained
              variable away — the solution stays close to the previous
              run instead of jumping to a polytope corner. Corner
              solutions are not wrong, but they are deterministic, which
              starves randomness-dependent branches (e.g. parity checks)
              across restarts. *)
           let preferred_satisfies () =
             let candidate = Hashtbl.create 8 in
             List.iter
               (fun v ->
                 let lo = Intervals.lo box v and hi = Intervals.hi box v in
                 let clamped = Zint.max lo (Zint.min hi (pref v)) in
                 Hashtbl.replace candidate v clamped)
               les_vars;
             let env v =
               match Hashtbl.find_opt candidate v with
               | Some z -> z
               | None -> Zint.zero
             in
             if List.for_all (fun e -> Zint.sign (Linexpr.eval env e) <= 0) multi_les
             then begin
               Hashtbl.iter (fun v z -> Hashtbl.replace assignment v z) candidate;
               true
             end
             else false
           in
           let core_result =
             if multi_les = [] then begin
               stats.fast_path <- stats.fast_path + 1;
               `Ok
             end
             else if preferred_satisfies () then begin
               stats.fast_path <- stats.fast_path + 1;
               `Ok
             end
             else if not use_simplex then `Unknown
             else begin
               stats.simplex_queries <- stats.simplex_queries + 1;
               match
                 Branch_bound.solve ~deadline:expired ~intervals:box ~les:multi_les
                   ~vars:les_vars ()
               with
               | Branch_bound.Unsat -> `Unsat
               | Branch_bound.Unknown -> `Unknown
               | Branch_bound.Sat model ->
                 List.iter (fun (v, z) -> Hashtbl.replace assignment v z) model;
                 `Ok
             end
           in
           match core_result with
           | `Unsat -> Unsat
           | `Unknown -> Unknown
           | `Ok ->
             (* Free variables: pick a value in their interval avoiding
                univariate-forbidden values. *)
             let unsat_free = ref false in
             let surviving_vars =
               (* every var of the reduced problem plus all original
                  vars not eliminated *)
               let eliminated = List.map fst subst in
               List.filter (fun v -> not (List.mem v eliminated)) all_vars
             in
             List.iter
               (fun v ->
                 if not (Hashtbl.mem assignment v) then begin
                   let forbidden =
                     Option.value ~default:[] (Hashtbl.find_opt forbidden_tbl v)
                   in
                   match
                     choose_value ~lo:(Intervals.lo box v) ~hi:(Intervals.hi box v)
                       ~forbidden ~pref:(pref v)
                   with
                   | Some z -> Hashtbl.replace assignment v z
                   | None -> unsat_free := true
                 end)
               surviving_vars;
             if !unsat_free then Unsat
             else begin
               (* Variables fixed by branch-and-bound may still violate a
                  univariate disequality (the box knows bounds, not
                  holes) — re-check every remaining atom and split. *)
               Gauss.back_substitute subst assignment;
               let env v =
                 match Hashtbl.find_opt assignment v with
                 | Some z -> z
                 | None -> Zint.zero
               in
               let violated =
                 List.find_opt (fun c -> not (Constr.holds env c)) cs
               in
               match violated with
               | None -> Sat (List.map (fun v -> (v, env v)) all_vars)
               | Some c when depth < max_ne_split_depth ->
                 (match c.Constr.rel with
                  | Constr.Ne0 ->
                    stats.ne_splits <- stats.ne_splits + 1;
                    (* e <> 0: try e <= -1, then e >= 1. *)
                    let below =
                      Constr.make (Linexpr.add_const Zint.one c.Constr.lhs) Constr.Le0
                    in
                    let above =
                      Constr.make
                        (Linexpr.add_const Zint.one (Linexpr.neg c.Constr.lhs))
                        Constr.Le0
                    in
                    (match attempt (depth + 1) (below :: cs) with
                     | Sat m -> Sat m
                     | Unsat -> attempt (depth + 1) (above :: cs)
                     | Unknown ->
                       (match attempt (depth + 1) (above :: cs) with
                        | Sat m -> Sat m
                        | Unsat | Unknown -> Unknown))
                  | Constr.Eq0 | Constr.Le0 | Constr.Lt0 ->
                    (* A violated core atom after a successful solve is
                       a solver bug; stay sound and give up. *)
                    Unknown)
               | Some _ -> Unknown
             end
         end)
  in
  let r = attempt 0 cs in
  if !overran then stats.deadline_overruns <- stats.deadline_overruns + 1;
  (match r with
   | Sat model ->
     if check_model cs model then stats.sat <- stats.sat + 1
     else stats.unknown <- stats.unknown + 1
   | Unsat -> stats.unsat <- stats.unsat + 1
   | Unknown -> stats.unknown <- stats.unknown + 1);
  match r with
  | Sat model when not (check_model cs model) -> Unknown
  | r -> r
