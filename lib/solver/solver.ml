open Zarith_lite
open Symbolic

module Cache = Cache
(** Re-export: the per-worker solve cache ([lib/solver/cache.ml]),
    reachable as [Solver.Cache] from outside the library. *)

module Store = Store
(** Re-export: the lock-free cross-worker solve store
    ([lib/solver/store.ml]), reachable as [Solver.Store]. *)

module Breaker = Breaker
(** Re-export: the per-site circuit breaker ([lib/solver/breaker.ml]),
    reachable as [Solver.Breaker]. *)

type result =
  | Sat of (Linexpr.var * Zint.t) list
  | Unsat
  | Unknown

type stats = {
  mutable queries : int;
  mutable sat : int;
  mutable unsat : int;
  mutable unknown : int;
  mutable fast_path : int;
  mutable simplex_queries : int;
  mutable ne_splits : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable constraints_sliced_away : int;
  mutable deadline_overruns : int;
  (* Acceleration-only counters: deliberately absent from
     [to_assoc]/[of_assoc] (and hence from reports, checkpoints and
     resume-identity comparisons) because they measure *work avoided*,
     which a resumed or replayed search legitimately repeats
     differently. Read through [incremental_hits]/[pops_saved]/
     [shared_hits]; summed by [add_stats] like every other counter.
     The breaker counters below live in the same bucket: a skipped
     query is work avoided, and breaker state is rebuilt from scratch
     on resume. *)
  mutable incremental_hits : int;
  mutable pops_saved : int;
  mutable shared_hits : int;
  mutable breaker_opens : int;
  mutable breaker_skips : int;
}

let create_stats () =
  { queries = 0; sat = 0; unsat = 0; unknown = 0; fast_path = 0; simplex_queries = 0;
    ne_splits = 0; cache_hits = 0; cache_misses = 0; constraints_sliced_away = 0;
    deadline_overruns = 0; incremental_hits = 0; pops_saved = 0; shared_hits = 0;
    breaker_opens = 0; breaker_skips = 0 }

(* The record stays private to this module: outside consumers go
   through the accessors / [to_assoc], so widening the record (as the
   acceleration PRs did) is a local change. *)

let queries s = s.queries
let sat_count s = s.sat
let unsat_count s = s.unsat
let unknown_count s = s.unknown
let fast_path s = s.fast_path
let simplex_queries s = s.simplex_queries
let ne_splits s = s.ne_splits
let cache_hits s = s.cache_hits
let cache_misses s = s.cache_misses
let constraints_sliced_away s = s.constraints_sliced_away
let deadline_overruns s = s.deadline_overruns
let incremental_hits s = s.incremental_hits
let pops_saved s = s.pops_saved
let shared_hits s = s.shared_hits
let breaker_opens s = s.breaker_opens
let breaker_skips s = s.breaker_skips

let to_assoc s =
  [ ("queries", s.queries); ("sat", s.sat); ("unsat", s.unsat); ("unknown", s.unknown);
    ("fast_path", s.fast_path); ("simplex_queries", s.simplex_queries);
    ("ne_splits", s.ne_splits); ("cache_hits", s.cache_hits);
    ("cache_misses", s.cache_misses);
    ("constraints_sliced_away", s.constraints_sliced_away);
    ("deadline_overruns", s.deadline_overruns) ]

let of_assoc alist =
  let s = create_stats () in
  List.iter
    (fun (k, v) ->
      match k with
      | "queries" -> s.queries <- v
      | "sat" -> s.sat <- v
      | "unsat" -> s.unsat <- v
      | "unknown" -> s.unknown <- v
      | "fast_path" -> s.fast_path <- v
      | "simplex_queries" -> s.simplex_queries <- v
      | "ne_splits" -> s.ne_splits <- v
      | "cache_hits" -> s.cache_hits <- v
      | "cache_misses" -> s.cache_misses <- v
      | "constraints_sliced_away" -> s.constraints_sliced_away <- v
      | "deadline_overruns" -> s.deadline_overruns <- v
      | k -> invalid_arg (Printf.sprintf "Solver.of_assoc: unknown counter %S" k))
    alist;
  s

let add_stats ~into w =
  into.queries <- into.queries + w.queries;
  into.sat <- into.sat + w.sat;
  into.unsat <- into.unsat + w.unsat;
  into.unknown <- into.unknown + w.unknown;
  into.fast_path <- into.fast_path + w.fast_path;
  into.simplex_queries <- into.simplex_queries + w.simplex_queries;
  into.ne_splits <- into.ne_splits + w.ne_splits;
  into.cache_hits <- into.cache_hits + w.cache_hits;
  into.cache_misses <- into.cache_misses + w.cache_misses;
  into.constraints_sliced_away <- into.constraints_sliced_away + w.constraints_sliced_away;
  into.deadline_overruns <- into.deadline_overruns + w.deadline_overruns;
  into.incremental_hits <- into.incremental_hits + w.incremental_hits;
  into.pops_saved <- into.pops_saved + w.pops_saved;
  into.shared_hits <- into.shared_hits + w.shared_hits;
  into.breaker_opens <- into.breaker_opens + w.breaker_opens;
  into.breaker_skips <- into.breaker_skips + w.breaker_skips

let record_cache_hit s = s.cache_hits <- s.cache_hits + 1
let record_cache_miss s = s.cache_misses <- s.cache_misses + 1
let record_sliced s n = s.constraints_sliced_away <- s.constraints_sliced_away + n
let record_shared_hit s = s.shared_hits <- s.shared_hits + 1
let record_breaker_open s = s.breaker_opens <- s.breaker_opens + 1
let record_breaker_skip s = s.breaker_skips <- s.breaker_skips + 1

let dummy_stats = create_stats ()

let check_model cs model =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (v, z) -> Hashtbl.replace tbl v z) model;
  let env v = match Hashtbl.find_opt tbl v with Some z -> z | None -> Zint.zero in
  List.for_all (Constr.holds env) cs

(* Choose an integer in [lo, hi] avoiding [forbidden], preferring
   [pref] (clamped into the interval), then walking up, then down. The
   forbidden list is tiny in practice (one entry per != atom on the
   variable). *)
let choose_value ~lo ~hi ~forbidden ~pref =
  if Zint.compare lo hi > 0 then None
  else begin
    let clamp z = Zint.max lo (Zint.min hi z) in
    let start = clamp pref in
    let is_ok z = not (List.exists (Zint.equal z) forbidden) in
    let rec up z = if Zint.compare z hi > 0 then None else if is_ok z then Some z else up (Zint.succ z) in
    let rec down z = if Zint.compare z lo < 0 then None else if is_ok z then Some z else down (Zint.pred z) in
    match up start with
    | Some z -> Some z
    | None -> down (Zint.pred start)
  end

(* Univariate disequality [a*v + c <> 0] forbids a single value when a
   divides -c, and is vacuous otherwise. *)
let univariate_forbidden nes =
  let tbl : (Linexpr.var, Zint.t list) Hashtbl.t = Hashtbl.create 8 in
  let rest = ref [] in
  let contradiction = ref false in
  List.iter
    (fun e ->
      match Linexpr.terms e with
      | [] -> if Zint.is_zero (Linexpr.constant_part e) then contradiction := true
      | [ (v, a) ] ->
        let c = Linexpr.constant_part e in
        let q, r = Zint.div_rem (Zint.neg c) a in
        if Zint.is_zero r then begin
          let prev = Option.value ~default:[] (Hashtbl.find_opt tbl v) in
          Hashtbl.replace tbl v (q :: prev)
        end
      | _ -> rest := e :: !rest)
    nes;
  (!contradiction, tbl, List.rev !rest)

(* ---- prepared problems ------------------------------------------------------

   The solver pipeline splits at the tightened problem: everything up
   to (and including) Gaussian elimination, interval absorption and
   the disequality tables depends only on the constraint *set*, not on
   the preferred values or the deadline of the particular query. That
   stage output is a [prepared] value; an incremental context memoises
   prepared states keyed on the exact tightened bucket lists, so a
   re-issued (or pivot-extended) path constraint replays only the
   per-query tail: preference check, value choice, back-substitution
   and the final model check. Correctness is structural — both the
   fresh and the memoised route run the same code on the same lists —
   so results are identical by construction. *)

module P_key = struct
  type t = Problem.t

  let equal (a : Problem.t) (b : Problem.t) =
    List.equal Linexpr.equal a.Problem.eqs b.Problem.eqs
    && List.equal Linexpr.equal a.Problem.les b.Problem.les
    && List.equal Linexpr.equal a.Problem.nes b.Problem.nes

  let hash (p : Problem.t) =
    let h acc e = (acc * 31) + Linexpr.hash e in
    let hl acc l = List.fold_left h ((acc * 7) + 3) l in
    hl (hl (hl 17 p.Problem.eqs) p.Problem.les) p.Problem.nes
end

module P_tbl = Hashtbl.Make (P_key)

type prepared =
  | P_unsat (* elimination / absorption / disequalities found a contradiction *)
  | P_go of {
      g_subst : (Linexpr.var * Linexpr.t) list; (* Gauss substitution *)
      g_box : Intervals.t; (* absorbed univariate bounds (read-only after prepare) *)
      g_multi_les : Linexpr.t list; (* residual multivariate inequalities *)
      g_les_vars : Linexpr.var list;
      g_forbidden : (Linexpr.var, Zint.t list) Hashtbl.t;
      mutable g_bb : Branch_bound.result option;
          (* Memoised branch-and-bound verdict; only written when the
             computation ran to completion (no deadline overrun), so a
             memo hit replays exactly the deadline-free result. *)
    }

(* Run the query-independent pipeline stages on a tightened problem. *)
let prepare (p : Problem.t) : prepared =
  match Gauss.eliminate p with
  | Gauss.Unsat -> P_unsat
  | Gauss.Reduced (p', subst) ->
    (* Keep eliminated variables inside the 32-bit word range by
       constraining their defining expressions. *)
    let range_les =
      List.concat_map
        (fun (_, def) ->
          [ Linexpr.add_const (Zint.neg Problem.word_max) def;
            (* def - max <= 0 *)
            Linexpr.add_const Problem.word_min (Linexpr.neg def) (* min - def <= 0 *) ])
        subst
    in
    let box = Intervals.create () in
    let all_les =
      (* Post-elimination expressions can pick up common factors;
         tighten again so the interval fast path sees exact bounds. *)
      match Problem.tighten { Problem.eqs = []; les = range_les @ p'.Problem.les; nes = [] } with
      | None -> None
      | Some tp -> Some tp.Problem.les
    in
    (match Option.bind all_les (Intervals.absorb_univariate box) with
     | None -> P_unsat
     | Some multi_les ->
       (* Multivariate disequalities need no special handling here:
          the final model check catches any violation and the solver
          splits on it. *)
       let contradiction, forbidden_tbl, _multi_nes = univariate_forbidden p'.Problem.nes in
       if contradiction then P_unsat
       else begin
         let les_vars =
           let tbl = Hashtbl.create 8 in
           List.iter
             (fun e -> List.iter (fun v -> Hashtbl.replace tbl v ()) (Linexpr.vars e))
             multi_les;
           Hashtbl.fold (fun v () acc -> v :: acc) tbl []
         in
         P_go
           { g_subst = subst; g_box = box; g_multi_les = multi_les;
             g_les_vars = les_vars; g_forbidden = forbidden_tbl; g_bb = None }
       end)

(* ---- incremental contexts ---------------------------------------------------

   An assertion stack over the query's shared prefix. Each level holds
   one asserted constraint plus the cumulative normalized bucket lists
   of everything below it; [Solve_pc] pops only the suffix that
   differs from the previous query and pushes the new atoms, so the
   per-atom tightening of a shared prefix is done once, not per query.
   The bucket lists are built to be *list-equal* to what
   [Problem.of_constrs] + [Problem.tighten] produce on the assembled
   constraint list (cons-only folds commute with concatenation), which
   is what lets them key the prepared-state memo soundly. *)

type level = {
  l_constr : Constr.t;
  l_cum : Problem.t option; (* None: some atom below is directly unsat *)
}

type incr = {
  ic_prepared : prepared P_tbl.t;
  mutable ic_stack : level list; (* bottom first: stack.(i) asserts prefix.(i) *)
}

(* Normalize one atom into cons'd bucket lists, mirroring
   [Problem.add_constr] followed by [Problem.tighten] atom-wise. *)
let add_norm (p : Problem.t option) (c : Constr.t) : Problem.t option =
  match p with
  | None -> None
  | Some p -> (
    match c.Constr.rel with
    | Constr.Eq0 -> (
      match Problem.tighten_eq_atom c.Constr.lhs with
      | None -> None
      | Some e -> Some { p with Problem.eqs = e :: p.Problem.eqs })
    | Constr.Ne0 -> Some { p with Problem.nes = c.Constr.lhs :: p.Problem.nes }
    | Constr.Le0 ->
      Some { p with Problem.les = Problem.tighten_le_atom c.Constr.lhs :: p.Problem.les }
    | Constr.Lt0 ->
      Some
        { p with
          Problem.les =
            Problem.tighten_le_atom (Linexpr.add_const Zint.one c.Constr.lhs)
            :: p.Problem.les })

let norm_fold cs = List.fold_left add_norm (Some Problem.empty) cs

(* Bucket-wise concatenation: [glue a b] is the normalized problem of
   b's atoms processed after a's (cons-only state threading). *)
let glue (a : Problem.t option) (b : Problem.t option) =
  match (a, b) with
  | None, _ | _, None -> None
  | Some a, Some b ->
    Some
      { Problem.eqs = b.Problem.eqs @ a.Problem.eqs;
        les = b.Problem.les @ a.Problem.les;
        nes = b.Problem.nes @ a.Problem.nes }

let max_ne_split_depth = 24

(* The solver core, shared by the one-shot and the incremental entry
   points. [top] optionally supplies the already-normalized tightened
   problem for the outermost constraint list (the incremental stack
   assembles it); sub-queries from disequality splits always normalize
   their own. [memo] optionally supplies the prepared-state table. *)
let solve_core ~stats ~prefer ~use_simplex ~deadline ~memo ~top cs =
  stats.queries <- stats.queries + 1;
  let overran = ref false in
  let expired () =
    if deadline () then begin
      overran := true;
      true
    end
    else false
  in
  let all_vars =
    let tbl = Hashtbl.create 16 in
    List.iter (fun c -> List.iter (fun v -> Hashtbl.replace tbl v ()) (Constr.vars c)) cs;
    Hashtbl.fold (fun v () acc -> v :: acc) tbl []
  in
  let pref v = match prefer v with Some z -> z | None -> Zint.zero in
  let lookup (p : Problem.t) : prepared =
    match memo with
    | None -> prepare p
    | Some tbl -> (
      match P_tbl.find_opt tbl p with
      | Some prep ->
        stats.incremental_hits <- stats.incremental_hits + 1;
        prep
      | None ->
        let prep = prepare p in
        P_tbl.replace tbl p prep;
        prep)
  in
  let rec attempt depth ~top cs =
    (* One deadline poll per (sub-)query: ne-splits recurse through
       here, so a deep split tree cannot outlive its budget either. *)
    if expired () then Unknown
    else begin
      let tightened =
        match top with
        | Some t -> t
        | None -> Problem.tighten (Problem.of_constrs cs)
      in
      match tightened with
      | None -> Unsat
      | Some p -> attempt_prepared depth cs (lookup p)
    end
  and attempt_prepared depth cs prep =
    match prep with
    | P_unsat -> Unsat
    | P_go g ->
      let assignment : (Linexpr.var, Zint.t) Hashtbl.t = Hashtbl.create 16 in
      (* Before falling back to simplex, try the preferred values
         (the previous run's inputs, clamped into their intervals):
         when they already satisfy the residual system — the common
         case after Gaussian elimination pivoted the constrained
         variable away — the solution stays close to the previous
         run instead of jumping to a polytope corner. Corner
         solutions are not wrong, but they are deterministic, which
         starves randomness-dependent branches (e.g. parity checks)
         across restarts. *)
      let preferred_satisfies () =
        let candidate = Hashtbl.create 8 in
        List.iter
          (fun v ->
            let lo = Intervals.lo g.g_box v and hi = Intervals.hi g.g_box v in
            let clamped = Zint.max lo (Zint.min hi (pref v)) in
            Hashtbl.replace candidate v clamped)
          g.g_les_vars;
        let env v =
          match Hashtbl.find_opt candidate v with
          | Some z -> z
          | None -> Zint.zero
        in
        if List.for_all (fun e -> Zint.sign (Linexpr.eval env e) <= 0) g.g_multi_les
        then begin
          Hashtbl.iter (fun v z -> Hashtbl.replace assignment v z) candidate;
          true
        end
        else false
      in
      let core_result =
        if g.g_multi_les = [] then begin
          stats.fast_path <- stats.fast_path + 1;
          `Ok
        end
        else if preferred_satisfies () then begin
          stats.fast_path <- stats.fast_path + 1;
          `Ok
        end
        else if not use_simplex then `Unknown
        else begin
          stats.simplex_queries <- stats.simplex_queries + 1;
          let bb =
            match g.g_bb with
            | Some r -> r
            | None ->
              let r =
                Branch_bound.solve ~deadline:expired ~intervals:g.g_box
                  ~les:g.g_multi_les ~vars:g.g_les_vars ()
              in
              (* Memoise only complete computations: a result reached
                 under an expired deadline must stay retriable. *)
              if not !overran then g.g_bb <- Some r;
              r
          in
          match bb with
          | Branch_bound.Unsat -> `Unsat
          | Branch_bound.Unknown -> `Unknown
          | Branch_bound.Sat model ->
            List.iter (fun (v, z) -> Hashtbl.replace assignment v z) model;
            `Ok
        end
      in
      (match core_result with
       | `Unsat -> Unsat
       | `Unknown -> Unknown
       | `Ok ->
         (* Free variables: pick a value in their interval avoiding
            univariate-forbidden values. *)
         let unsat_free = ref false in
         let surviving_vars =
           (* every var of the reduced problem plus all original
              vars not eliminated *)
           let eliminated = List.map fst g.g_subst in
           List.filter (fun v -> not (List.mem v eliminated)) all_vars
         in
         List.iter
           (fun v ->
             if not (Hashtbl.mem assignment v) then begin
               let forbidden =
                 Option.value ~default:[] (Hashtbl.find_opt g.g_forbidden v)
               in
               match
                 choose_value ~lo:(Intervals.lo g.g_box v) ~hi:(Intervals.hi g.g_box v)
                   ~forbidden ~pref:(pref v)
               with
               | Some z -> Hashtbl.replace assignment v z
               | None -> unsat_free := true
             end)
           surviving_vars;
         if !unsat_free then Unsat
         else begin
           (* Variables fixed by branch-and-bound may still violate a
              univariate disequality (the box knows bounds, not
              holes) — re-check every remaining atom and split. *)
           Gauss.back_substitute g.g_subst assignment;
           let env v =
             match Hashtbl.find_opt assignment v with
             | Some z -> z
             | None -> Zint.zero
           in
           let violated =
             List.find_opt (fun c -> not (Constr.holds env c)) cs
           in
           match violated with
           | None -> Sat (List.map (fun v -> (v, env v)) all_vars)
           | Some c when depth < max_ne_split_depth ->
             (match c.Constr.rel with
              | Constr.Ne0 ->
                stats.ne_splits <- stats.ne_splits + 1;
                (* e <> 0: try e <= -1, then e >= 1. *)
                let below =
                  Constr.make (Linexpr.add_const Zint.one c.Constr.lhs) Constr.Le0
                in
                let above =
                  Constr.make
                    (Linexpr.add_const Zint.one (Linexpr.neg c.Constr.lhs))
                    Constr.Le0
                in
                (match attempt (depth + 1) ~top:None (below :: cs) with
                 | Sat m -> Sat m
                 | Unsat -> attempt (depth + 1) ~top:None (above :: cs)
                 | Unknown ->
                   (match attempt (depth + 1) ~top:None (above :: cs) with
                    | Sat m -> Sat m
                    | Unsat | Unknown -> Unknown))
              | Constr.Eq0 | Constr.Le0 | Constr.Lt0 ->
                (* A violated core atom after a successful solve is
                   a solver bug; stay sound and give up. *)
                Unknown)
           | Some _ -> Unknown
         end)
  in
  let r = attempt 0 ~top cs in
  if !overran then stats.deadline_overruns <- stats.deadline_overruns + 1;
  (match r with
   | Sat model ->
     if check_model cs model then stats.sat <- stats.sat + 1
     else stats.unknown <- stats.unknown + 1
   | Unsat -> stats.unsat <- stats.unsat + 1
   | Unknown -> stats.unknown <- stats.unknown + 1);
  match r with
  | Sat model when not (check_model cs model) -> Unknown
  | r -> r

let solve ?(stats = dummy_stats) ?(prefer = fun _ -> None) ?(use_simplex = true)
    ?(deadline = fun () -> false) cs =
  solve_core ~stats ~prefer ~use_simplex ~deadline ~memo:None ~top:None cs

module Incr = struct
  type t = incr

  let create () = { ic_prepared = P_tbl.create 256; ic_stack = [] }

  let depth t = List.length t.ic_stack
  let prepared_count t = P_tbl.length t.ic_prepared

  let reset t = t.ic_stack <- []

  (* Re-align the assertion stack with [prefix]: keep the common
     prefix of levels (their cumulative normalized lists are reused as
     is), pop everything past it, push the rest. Returns the cumulative
     problem of the full prefix and the number of levels retained. *)
  let sync t prefix =
    let rec walk levels atoms kept acc =
      match (levels, atoms) with
      | l :: ls, a :: rest when Constr.equal l.l_constr a ->
        walk ls rest (kept + 1) (l :: acc)
      | _, rest -> (List.rev acc, rest, kept)
    in
    let retained, to_push, kept = walk t.ic_stack prefix 0 [] in
    let cum =
      match retained with [] -> Some Problem.empty | _ -> (List.hd (List.rev retained)).l_cum
    in
    let stack_rev = ref (List.rev retained) in
    let cum = ref cum in
    List.iter
      (fun a ->
        cum := add_norm !cum a;
        stack_rev := { l_constr = a; l_cum = !cum } :: !stack_rev)
      to_push;
    t.ic_stack <- List.rev !stack_rev;
    (!cum, kept)

  let solve t ?(stats = dummy_stats) ?(prefer = fun _ -> None) ?(use_simplex = true)
      ?(deadline = fun () -> false) ~pivot ~prefix ~domains () =
    let cum, kept = sync t prefix in
    stats.pops_saved <- stats.pops_saved + kept;
    (* Normalized problem of [pivot :: prefix @ domains]: a cons-only
       fold threads state left to right, so the assembled bucket lists
       are the domain contributions, then the stack's cumulative
       lists, then the pivot's — list-equal to the from-scratch
       normalization of the assembled constraint list. *)
    let top = glue (add_norm (Some Problem.empty) pivot) (glue cum (norm_fold domains)) in
    let cs = pivot :: (prefix @ domains) in
    solve_core ~stats ~prefer ~use_simplex ~deadline ~memo:(Some t.ic_prepared)
      ~top:(Some top) cs
end
