(* Per-worker solve cache (constraint caching, DART §2.6's "most of
   the time is spent solving path constraints"; cf. the caching layers
   of industrial concolic engines).

   Keyed on the *canonical form* of a constraint set. Canonicalization
   works in three solution-set-preserving steps:

   1. each atom is normalized — strict [e < 0] becomes [e + 1 <= 0],
      atoms are divided by the gcd of their coefficients exactly like
      [Problem.tighten], equalities and disequalities get a positive
      leading coefficient, constant atoms collapse to a shared
      truth/falsity atom and vacuously true atoms are dropped — so
      commuted, scaled and sign-flipped spellings of one constraint
      share a key;
   2. the atom list is sorted with duplicates removed, so arrival
      order does not matter;
   3. variables are renamed to dense indices in order of first
      occurrence, so structurally identical queries over different
      input generations (the directed search re-issues the same
      filter shapes against fresh input ids every run) share an
      entry. Stored models live in the renamed space; [find] maps
      them back through the query's own variable map.

   Both Sat models and Unsat verdicts are memoised; Unknown is never
   cached (it reflects resource limits, not a semantic verdict, and
   retrying may succeed).

   The cache itself is deliberately shared-nothing: every worker domain
   owns one (it lives in the per-worker [Driver.search_ctx]), so
   parallel searches stay deterministic — a worker's sequence of hits
   and misses is a pure function of its own query sequence, never of
   another domain's progress. The cross-worker sharing variant lives in
   [Store], which reuses this module's keys and verdicts. *)

open Zarith_lite
open Symbolic

type verdict =
  | Sat of (Linexpr.var * Zint.t) list
  | Unsat

module Key = struct
  type t = Constr.t list (* canonical: normalized, sorted, deduped, renamed *)

  let equal = List.equal Constr.equal
  let hash k = List.fold_left (fun acc c -> (acc * 31) + Constr.hash c) 17 k
end

module Tbl = Hashtbl.Make (Key)

type t = verdict Tbl.t

let create () : t = Tbl.create 256

type keyed = {
  key : Key.t;
  back : Linexpr.var array; (* canonical index -> original variable *)
  fwd : (Linexpr.var, int) Hashtbl.t; (* original variable -> canonical index *)
}

(* A canonically false atom: [1 = 0]. Unsatisfiable constant atoms all
   collapse to it, so every directly-contradictory conjunction shares
   one Unsat entry. *)
let false_atom = Constr.make (Linexpr.of_int 1) Constr.Eq0

(* Sign normalization for equalities and disequalities: [e = 0] and
   [-e = 0] denote the same set, so force the leading coefficient
   positive. *)
let positive_leading e =
  match Linexpr.terms e with
  | (_, a) :: _ when Zint.sign a < 0 -> Linexpr.neg e
  | _ -> e

(* Normalize one atom; [None] means vacuously true (dropped from the
   key). Every rewrite preserves the integer solution set, so a model
   stored for the canonical form is a model of any spelling of it. *)
let norm_atom (c : Constr.t) : Constr.t option =
  let le lhs =
    match Linexpr.terms lhs with
    | [] ->
      if Zint.sign (Linexpr.constant_part lhs) <= 0 then None else Some false_atom
    | _ -> Some (Constr.make (Problem.tighten_le_atom lhs) Constr.Le0)
  in
  match c.Constr.rel with
  | Constr.Le0 -> le c.Constr.lhs
  | Constr.Lt0 -> le (Linexpr.add_const Zint.one c.Constr.lhs)
  | Constr.Eq0 -> (
    match Linexpr.terms c.Constr.lhs with
    | [] ->
      if Zint.is_zero (Linexpr.constant_part c.Constr.lhs) then None else Some false_atom
    | _ -> (
      match Problem.tighten_eq_atom c.Constr.lhs with
      | None -> Some false_atom (* g*t + c = 0 with g not dividing c *)
      | Some e -> Some (Constr.make (positive_leading e) Constr.Eq0)))
  | Constr.Ne0 -> (
    match Linexpr.terms c.Constr.lhs with
    | [] ->
      if Zint.is_zero (Linexpr.constant_part c.Constr.lhs) then Some false_atom else None
    | _ -> (
      match Problem.tighten_eq_atom c.Constr.lhs with
      | None -> None (* g*t + c = 0 impossible, so <> 0 always holds *)
      | Some e -> Some (Constr.make (positive_leading e) Constr.Ne0)))

let rename_atom fwd (c : Constr.t) =
  let lhs =
    List.fold_left
      (fun acc (v, a) ->
        Linexpr.add acc (Linexpr.scale a (Linexpr.var (Hashtbl.find fwd v))))
      (Linexpr.const (Linexpr.constant_part c.Constr.lhs))
      (Linexpr.terms c.Constr.lhs)
  in
  Constr.make lhs c.Constr.rel

(** Canonical cache key of a conjunction: normalization-, order-,
    duplicate- and variable-naming-insensitive, so [a && b], [b && a]
    and the same filter re-issued over the next run's input ids all
    share an entry. *)
let canonical (cs : Constr.t list) : keyed =
  let atoms = List.sort_uniq Constr.compare (List.filter_map norm_atom cs) in
  let fwd = Hashtbl.create 16 in
  let back = ref [] in
  let n = ref 0 in
  List.iter
    (fun c ->
      List.iter
        (fun v ->
          if not (Hashtbl.mem fwd v) then begin
            Hashtbl.replace fwd v !n;
            back := v :: !back;
            incr n
          end)
        (Constr.vars c))
    atoms;
  let key = List.sort Constr.compare (List.map (rename_atom fwd) atoms) in
  { key; back = Array.of_list (List.rev !back); fwd }

(* Map a verdict between the original and canonical variable spaces.
   Model variables with no canonical index come from vacuously-true
   atoms the key dropped; they are unconstrained, so omitting them is
   sound (the caller's preferred value stands). *)
let to_canonical keyed = function
  | Unsat -> Unsat
  | Sat model ->
    Sat
      (List.filter_map
         (fun (v, z) ->
           match Hashtbl.find_opt keyed.fwd v with
           | Some i -> Some (i, z)
           | None -> None)
         model)

let of_canonical keyed = function
  | Unsat -> Unsat
  | Sat model -> Sat (List.map (fun (i, z) -> (keyed.back.(i), z)) model)

let find (t : t) keyed =
  Option.map (of_canonical keyed) (Tbl.find_opt t keyed.key)

let add (t : t) keyed verdict = Tbl.replace t keyed.key (to_canonical keyed verdict)
let length (t : t) = Tbl.length t
