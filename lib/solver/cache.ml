(* Per-worker solve cache (constraint caching, DART §2.6's "most of
   the time is spent solving path constraints"; cf. the caching layers
   of industrial concolic engines).

   Keyed on the *canonical form* of a constraint set — sorted with
   duplicates removed — so syntactically different arrival orders of
   the same conjunction share one entry. Both Sat models and Unsat
   verdicts are memoised; Unknown is never cached (it reflects resource
   limits, not a semantic verdict, and retrying may succeed).

   The cache is deliberately shared-nothing: every worker domain owns
   one (it lives in the per-worker [Driver.search_ctx]), so parallel
   searches stay deterministic — a worker's sequence of hits and misses
   is a pure function of its own query sequence, never of another
   domain's progress. *)

open Zarith_lite
open Symbolic

type verdict =
  | Sat of (Linexpr.var * Zint.t) list
  | Unsat

module Key = struct
  type t = Constr.t list (* canonical: sorted by Constr.compare, deduped *)

  let equal = List.equal Constr.equal
  let hash k = List.fold_left (fun acc c -> (acc * 31) + Constr.hash c) 17 k
end

module Tbl = Hashtbl.Make (Key)

type t = verdict Tbl.t

let create () : t = Tbl.create 256

(** Canonical cache key of a conjunction: order-insensitive and
    duplicate-free, so [a && b] and [b && a && b] share an entry. *)
let canonical (cs : Constr.t list) : Key.t = List.sort_uniq Constr.compare cs

let find (t : t) key = Tbl.find_opt t key
let add (t : t) key verdict = Tbl.replace t key verdict
let length (t : t) = Tbl.length t
