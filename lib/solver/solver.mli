(** Front door of the linear integer constraint solver (the role
    lp_solve plays in the paper, §3.3).

    Decides satisfiability of a conjunction of {!Symbolic.Constr.t}
    atoms over 32-bit-bounded integer variables and produces a model.
    Pipeline: unit-pivot Gaussian elimination of equalities, interval
    absorption of univariate inequalities (fast path), then rational
    simplex with branch-and-bound for anything multivariate, with
    case-splitting for disequalities. Every model returned is verified
    against the input constraints before being handed back. *)

module Cache : sig
  (** Per-worker memoisation of solver verdicts, keyed on the canonical
      form of a constraint set. Never shared across domains: each
      worker's hit/miss sequence depends only on its own queries, which
      keeps parallel search deterministic. *)

  type verdict =
    | Sat of (Symbolic.Linexpr.var * Zarith_lite.Zint.t) list
    | Unsat

  module Key : sig
    type t = Symbolic.Constr.t list

    val equal : t -> t -> bool
    val hash : t -> int
  end

  type t

  val create : unit -> t

  val canonical : Symbolic.Constr.t list -> Key.t
  (** Order-insensitive, duplicate-free key of a conjunction. *)

  val find : t -> Key.t -> verdict option
  val add : t -> Key.t -> verdict -> unit
  val length : t -> int
end

type result =
  | Sat of (Symbolic.Linexpr.var * Zarith_lite.Zint.t) list
      (** Model covering every variable occurring in the input. *)
  | Unsat
  | Unknown (* resource limits hit; callers must treat conservatively *)

type stats = {
  mutable queries : int;
  mutable sat : int;
  mutable unsat : int;
  mutable unknown : int;
  mutable fast_path : int; (* queries discharged without simplex *)
  mutable simplex_queries : int;
  mutable ne_splits : int;
  mutable cache_hits : int; (* queries answered from the solve cache *)
  mutable cache_misses : int; (* cache-enabled queries that hit the solver *)
  mutable constraints_sliced_away : int;
      (* prefix constraints dropped by independence slicing before the
         query reached the solver *)
}

val create_stats : unit -> stats

val solve :
  ?stats:stats ->
  ?prefer:(Symbolic.Linexpr.var -> Zarith_lite.Zint.t option) ->
  ?use_simplex:bool ->
  Symbolic.Constr.t list ->
  result
(** [solve cs] finds an integer model of the conjunction [cs].
    [prefer] suggests values for under-constrained variables (the
    directed search passes the previous run's inputs, matching the
    paper's [IM + IM'] update). [use_simplex:false] disables the
    simplex/branch-and-bound stage (ablation A2): multivariate systems
    then come back [Unknown]. *)

val check_model : Symbolic.Constr.t list -> (Symbolic.Linexpr.var * Zarith_lite.Zint.t) list -> bool
(** [check_model cs model] verifies that [model] satisfies [cs]. *)
