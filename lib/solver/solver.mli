(** Front door of the linear integer constraint solver (the role
    lp_solve plays in the paper, §3.3).

    Decides satisfiability of a conjunction of {!Symbolic.Constr.t}
    atoms over 32-bit-bounded integer variables and produces a model.
    Pipeline: unit-pivot Gaussian elimination of equalities, interval
    absorption of univariate inequalities (fast path), then rational
    simplex with branch-and-bound for anything multivariate, with
    case-splitting for disequalities. Every model returned is verified
    against the input constraints before being handed back. *)

module Cache : sig
  (** Per-worker memoisation of solver verdicts, keyed on the canonical
      form of a constraint set. Never shared across domains: each
      worker's hit/miss sequence depends only on its own queries, which
      keeps parallel search deterministic. *)

  type verdict =
    | Sat of (Symbolic.Linexpr.var * Zarith_lite.Zint.t) list
    | Unsat

  module Key : sig
    type t = Symbolic.Constr.t list

    val equal : t -> t -> bool
    val hash : t -> int
  end

  type t

  val create : unit -> t

  val canonical : Symbolic.Constr.t list -> Key.t
  (** Order-insensitive, duplicate-free key of a conjunction. *)

  val find : t -> Key.t -> verdict option
  val add : t -> Key.t -> verdict -> unit
  val length : t -> int
end

type result =
  | Sat of (Symbolic.Linexpr.var * Zarith_lite.Zint.t) list
      (** Model covering every variable occurring in the input. *)
  | Unsat
  | Unknown (* resource limits hit; callers must treat conservatively *)

type stats
(** Mutable solver counters. Abstract so new counters can be added
    without breaking every consumer: read through the named accessors
    or {!to_assoc}, fabricate/serialise through {!of_assoc}, merge with
    {!add_stats}. *)

val create_stats : unit -> stats

(** {2 Accessors} *)

val queries : stats -> int
val sat_count : stats -> int
val unsat_count : stats -> int
val unknown_count : stats -> int
val fast_path : stats -> int (* queries discharged without simplex *)
val simplex_queries : stats -> int
val ne_splits : stats -> int
val cache_hits : stats -> int (* queries answered from the solve cache *)
val cache_misses : stats -> int (* cache-enabled queries that hit the solver *)
val constraints_sliced_away : stats -> int
(** Prefix constraints dropped by independence slicing before the query
    reached the solver. *)

val deadline_overruns : stats -> int
(** Queries aborted to [Unknown] because their per-query deadline
    expired (see [solve]'s [deadline]). *)

val to_assoc : stats -> (string * int) list
(** Every counter as [(name, value)], stable declaration order; the
    single source of truth for report printing, bench JSON and merge
    code, so a new counter shows up everywhere at once. *)

val of_assoc : (string * int) list -> stats
(** Inverse of {!to_assoc}; missing keys default to 0, unknown keys are
    rejected with [Invalid_argument]. *)

val add_stats : into:stats -> stats -> unit
(** Counter-wise accumulation (used by [Parallel.sum_stats]). *)

(** {2 Recorders for the acceleration layer (see [Solve_pc])} *)

val record_cache_hit : stats -> unit
val record_cache_miss : stats -> unit
val record_sliced : stats -> int -> unit

val solve :
  ?stats:stats ->
  ?prefer:(Symbolic.Linexpr.var -> Zarith_lite.Zint.t option) ->
  ?use_simplex:bool ->
  ?deadline:(unit -> bool) ->
  Symbolic.Constr.t list ->
  result
(** [solve cs] finds an integer model of the conjunction [cs].
    [prefer] suggests values for under-constrained variables (the
    directed search passes the previous run's inputs, matching the
    paper's [IM + IM'] update). [use_simplex:false] disables the
    simplex/branch-and-bound stage (ablation A2): multivariate systems
    then come back [Unknown]. [deadline] is polled at every sub-query
    and branch-and-bound node; once it returns [true] the query
    degrades to [Unknown] (counted in {!deadline_overruns}) instead of
    running unbounded simplex work — callers already treat [Unknown]
    conservatively, so an overrun can never unsoundly prune a path. *)

val check_model : Symbolic.Constr.t list -> (Symbolic.Linexpr.var * Zarith_lite.Zint.t) list -> bool
(** [check_model cs model] verifies that [model] satisfies [cs]. *)
