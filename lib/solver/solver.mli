(** Front door of the linear integer constraint solver (the role
    lp_solve plays in the paper, §3.3).

    Decides satisfiability of a conjunction of {!Symbolic.Constr.t}
    atoms over 32-bit-bounded integer variables and produces a model.
    Pipeline: unit-pivot Gaussian elimination of equalities, interval
    absorption of univariate inequalities (fast path), then rational
    simplex with branch-and-bound for anything multivariate, with
    case-splitting for disequalities. Every model returned is verified
    against the input constraints before being handed back. *)

module Cache : sig
  (** Per-worker memoisation of solver verdicts, keyed on the canonical
      form of a constraint set. Never shared across domains: each
      worker's hit/miss sequence depends only on its own queries, which
      keeps parallel search deterministic. The cross-worker variant is
      {!Store}. *)

  type verdict =
    | Sat of (Symbolic.Linexpr.var * Zarith_lite.Zint.t) list
    | Unsat

  module Key : sig
    type t = Symbolic.Constr.t list

    val equal : t -> t -> bool
    val hash : t -> int
  end

  type keyed = {
    key : Key.t;
    back : Symbolic.Linexpr.var array; (* canonical index -> original variable *)
    fwd : (Symbolic.Linexpr.var, int) Hashtbl.t; (* original variable -> index *)
  }
  (** A canonical key together with the variable renaming that produced
      it, needed to map stored models back to the query's variables. *)

  type t

  val create : unit -> t

  val canonical : Symbolic.Constr.t list -> keyed
  (** Canonical key of a conjunction: insensitive to atom order,
      duplicates, scaling, sign and strict/non-strict spelling
      (normalized like [Problem.tighten]) and to variable naming
      (renamed to first-occurrence indices), so re-issues of one filter
      shape across runs and input generations share an entry. Every
      rewrite preserves the solution set, so cached models remain valid
      for any spelling. *)

  val find : t -> keyed -> verdict option
  (** Stored verdict, with Sat models mapped back to the query's own
      variables. Model variables that only occurred in vacuously-true
      atoms are omitted (they are unconstrained). *)

  val add : t -> keyed -> verdict -> unit
  val length : t -> int

  (**/**)

  val to_canonical : keyed -> verdict -> verdict
  val of_canonical : keyed -> verdict -> verdict
end

module Store : sig
  (** Lock-free cross-worker solve store: one instance is shared by all
      worker domains of a parallel search, replacing the per-worker
      {!Cache} when shared caching is on. Verdicts are published under
      {!Cache.canonical} keys; acquiring an unsolved key installs an
      in-flight claim on that branch of the shared frontier, so workers
      steal solved branches instead of re-deriving them. Cells move
      [In_flight -> Done] exactly once (first publisher wins) and are
      never removed. With a single worker the acquire/publish protocol
      is observationally identical to [Cache.find]/[Cache.add]. *)

  type t

  val create : ?size_bits:int -> unit -> t

  type outcome =
    | Hit of Cache.verdict * int
        (** Solved already: verdict mapped to the query's variables,
            plus the publishing worker's id. *)
    | Claimed  (** We hold the claim slot now: solve, then {!publish}. *)
    | Busy of int
        (** Another worker holds the claim; solve locally, never block
            (the depth-first discipline cannot wait on a peer). *)

  val acquire : t -> worker:int -> Cache.keyed -> outcome

  val publish : t -> worker:int -> Cache.keyed -> Cache.verdict -> unit
  (** Publish a Sat/Unsat verdict (never call with Unknown — leave the
      claim in flight so the key stays retriable). *)

  val length : t -> int
  (** Total cells (claims + solved). *)

  val solved : t -> int
  (** Published verdicts only. *)
end

module Breaker = Breaker
(** Re-export of the per-site circuit breaker (see [breaker.mli]),
    reachable as [Solver.Breaker]. *)

type result =
  | Sat of (Symbolic.Linexpr.var * Zarith_lite.Zint.t) list
      (** Model covering every variable occurring in the input. *)
  | Unsat
  | Unknown (* resource limits hit; callers must treat conservatively *)

type stats
(** Mutable solver counters. Abstract so new counters can be added
    without breaking every consumer: read through the named accessors
    or {!to_assoc}, fabricate/serialise through {!of_assoc}, merge with
    {!add_stats}. *)

val create_stats : unit -> stats

(** {2 Accessors} *)

val queries : stats -> int
val sat_count : stats -> int
val unsat_count : stats -> int
val unknown_count : stats -> int
val fast_path : stats -> int (* queries discharged without simplex *)
val simplex_queries : stats -> int
val ne_splits : stats -> int
val cache_hits : stats -> int (* queries answered from the solve cache *)
val cache_misses : stats -> int (* cache-enabled queries that hit the solver *)
val constraints_sliced_away : stats -> int
(** Prefix constraints dropped by independence slicing before the query
    reached the solver. *)

val deadline_overruns : stats -> int
(** Queries aborted to [Unknown] because their per-query deadline
    expired (see [solve]'s [deadline]). *)

val incremental_hits : stats -> int
(** Prepared-state reuses inside an incremental context: queries whose
    tightened problem was already eliminated/absorbed and skipped
    straight to the per-query stages. *)

val pops_saved : stats -> int
(** Assertion-stack levels retained across consecutive incremental
    queries (prefix atoms not re-normalized). *)

val shared_hits : stats -> int
(** Cache hits answered by an entry another worker published in the
    shared {!Store} (a subset of {!cache_hits}). *)

val breaker_opens : stats -> int
(** Circuit-breaker transitions into the open state (see {!Breaker}). *)

val breaker_skips : stats -> int
(** Queries short-circuited to Unknown by an open circuit breaker;
    these never reach the solver and are not counted in {!queries}. *)

val to_assoc : stats -> (string * int) list
(** Every report-visible counter as [(name, value)], stable declaration
    order; the single source of truth for report printing, bench JSON
    and merge code, so a new counter shows up everywhere at once. The
    acceleration meters ({!incremental_hits}, {!pops_saved},
    {!shared_hits}) and the breaker meters ({!breaker_opens},
    {!breaker_skips}) are deliberately excluded: they measure work
    avoided, which resumed or replayed searches legitimately repeat
    differently, so they must not feed resume-identity comparisons. *)

val of_assoc : (string * int) list -> stats
(** Inverse of {!to_assoc}; missing keys default to 0, unknown keys are
    rejected with [Invalid_argument]. *)

val add_stats : into:stats -> stats -> unit
(** Counter-wise accumulation (used by [Parallel.sum_stats]). *)

(** {2 Recorders for the acceleration layer (see [Solve_pc])} *)

val record_cache_hit : stats -> unit
val record_cache_miss : stats -> unit
val record_sliced : stats -> int -> unit
val record_shared_hit : stats -> unit
val record_breaker_open : stats -> unit
val record_breaker_skip : stats -> unit

val solve :
  ?stats:stats ->
  ?prefer:(Symbolic.Linexpr.var -> Zarith_lite.Zint.t option) ->
  ?use_simplex:bool ->
  ?deadline:(unit -> bool) ->
  Symbolic.Constr.t list ->
  result
(** [solve cs] finds an integer model of the conjunction [cs].
    [prefer] suggests values for under-constrained variables (the
    directed search passes the previous run's inputs, matching the
    paper's [IM + IM'] update). [use_simplex:false] disables the
    simplex/branch-and-bound stage (ablation A2): multivariate systems
    then come back [Unknown]. [deadline] is polled at every sub-query
    and branch-and-bound node; once it returns [true] the query
    degrades to [Unknown] (counted in {!deadline_overruns}) instead of
    running unbounded simplex work — callers already treat [Unknown]
    conservatively, so an overrun can never unsoundly prune a path. *)

module Incr : sig
  (** Incremental push/pop solving. A context keeps an assertion stack
      over the query's shared prefix plus a memo of prepared solver
      states (Gaussian elimination, interval absorption, learned
      disequality tables, completed branch-and-bound verdicts) keyed on
      the exact normalized constraint lists. {!solve} pops only the
      stack suffix that differs from the previous query and pushes the
      new atoms; results are identical to the one-shot {!val:solve} by
      construction, because both routes run the same core on the same
      lists — the context only skips recomputing stages whose inputs
      are unchanged. Nothing derived from an aborted (deadline-overrun)
      computation is ever retained, so a timeout cannot leak stale
      state into the next query. One context per worker: contexts are
      not thread-safe and never cross domains. *)

  type t

  val create : unit -> t

  val solve :
    t ->
    ?stats:stats ->
    ?prefer:(Symbolic.Linexpr.var -> Zarith_lite.Zint.t option) ->
    ?use_simplex:bool ->
    ?deadline:(unit -> bool) ->
    pivot:Symbolic.Constr.t ->
    prefix:Symbolic.Constr.t list ->
    domains:Symbolic.Constr.t list ->
    unit ->
    result
  (** Solve [pivot :: prefix @ domains] — the negated branch pivot, the
      kept path-constraint prefix, and the input-domain bounds — with
      the prefix asserted through the stack. Equivalent to
      [solve (pivot :: prefix @ domains)]. *)

  val depth : t -> int
  (** Current assertion-stack depth. *)

  val prepared_count : t -> int
  (** Memoised prepared states (diagnostics). *)

  val reset : t -> unit
  (** Drop the assertion stack (the prepared memo survives: its entries
      are keyed structurally and remain valid). *)
end

val check_model : Symbolic.Constr.t list -> (Symbolic.Linexpr.var * Zarith_lite.Zint.t) list -> bool
(** [check_model cs model] verifies that [model] satisfies [cs]. *)
