(* A per-site circuit breaker for solver queries.

   A "site" is a branch location [(fn, pc)]. When consecutive queries at
   one site come back Unknown because the per-query deadline overran, the
   site is almost certainly a constraint family the solver cannot decide
   within budget — every further query there burns a full deadline for no
   information. The breaker opens after [threshold] consecutive such
   failures and short-circuits subsequent queries at that site to an
   immediate Unknown, which costs nothing and is exactly what the search
   would have concluded anyway. After [cooldown] ticks (slices in a
   campaign, restarts in a single run) the breaker half-opens: the next
   query is let through as a probe, and its outcome decides between
   closing again and re-opening for another cooldown.

   Structural Unknowns (e.g. nonlinear constraints rejected without a
   deadline overrun) never trip the breaker: they are cheap and their
   pattern is not time-dependent, and keeping them out is what makes the
   default run byte-identical to --no-breaker on solver-incomplete
   workloads.

   Not thread-safe: each search context owns its breaker. Parallel
   workers each get their own, like their stats. *)

type status =
  | Closed
  | Open of int (* cooldown ticks remaining *)
  | Half_open

type site_state = {
  mutable consecutive : int; (* consecutive overrun-Unknowns while closed *)
  mutable status : status;
}

type t = {
  tbl : (string * int, site_state) Hashtbl.t;
  threshold : int;
  cooldown : int;
  mutable opens : int; (* transitions into Open, cumulative *)
  mutable skips : int; (* queries short-circuited, cumulative *)
}

let create ?(threshold = 3) ?(cooldown = 2) () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold must be >= 1";
  if cooldown < 1 then invalid_arg "Breaker.create: cooldown must be >= 1";
  { tbl = Hashtbl.create 16; threshold; cooldown; opens = 0; skips = 0 }

let skip t site =
  match Hashtbl.find_opt t.tbl site with
  | Some { status = Open _; _ } ->
    t.skips <- t.skips + 1;
    true
  | _ -> false

let get t site =
  match Hashtbl.find_opt t.tbl site with
  | Some s -> s
  | None ->
    let s = { consecutive = 0; status = Closed } in
    Hashtbl.add t.tbl site s;
    s

let record t site ~failed =
  let s = get t site in
  match s.status with
  | Open _ -> `None (* skipped queries are not recorded; ignore stragglers *)
  | Half_open ->
    if failed then begin
      s.status <- Open t.cooldown;
      t.opens <- t.opens + 1;
      `Opened
    end
    else begin
      s.status <- Closed;
      s.consecutive <- 0;
      `Closed
    end
  | Closed ->
    if failed then begin
      s.consecutive <- s.consecutive + 1;
      if s.consecutive >= t.threshold then begin
        s.status <- Open t.cooldown;
        t.opens <- t.opens + 1;
        `Opened
      end
      else `None
    end
    else begin
      s.consecutive <- 0;
      `None
    end

let tick t =
  Hashtbl.iter
    (fun _ s ->
      match s.status with
      | Open n when n <= 1 -> s.status <- Half_open
      | Open n -> s.status <- Open (n - 1)
      | Closed | Half_open -> ())
    t.tbl

let opens t = t.opens
let skips t = t.skips
let open_sites t =
  Hashtbl.fold
    (fun site s acc ->
      match s.status with
      | Open _ | Half_open -> site :: acc
      | Closed -> acc)
    t.tbl []
