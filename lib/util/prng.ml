(* Splitmix64: tiny, fast, and passes BigCrush; more than enough for
   test-input generation, and trivially reproducible. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }
let state t = t.state
let of_state s = { state = s }
let set_state t s = t.state <- s

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

let bits32 t = Int64.to_int (Int64.of_int32 (Int64.to_int32 (next_int64 t)))

let int_below t n =
  if n <= 0 then invalid_arg "Prng.int_below";
  (* Rejection-free modulo is fine here: bias is negligible for the
     small ranges used (menus of branches, list lengths). Keep 62 bits
     so the value is non-negative as a native 63-bit int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod n

let int_range t lo hi =
  if lo > hi then invalid_arg "Prng.int_range";
  lo + int_below t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let choose t = function
  | [] -> invalid_arg "Prng.choose: empty list"
  | l -> List.nth l (int_below t (List.length l))
