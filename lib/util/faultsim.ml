(* Deterministic fault injection. See faultsim.mli for the contract;
   the implementation is a tiny rule table behind a mutex. The disabled
   plan is the [Off] constructor, so the production probe
   ([fire _ Off = false]) is one branch and no allocation. *)

type point =
  | Solver_deadline
  | Worker_crash
  | Machine_step_limit

let point_to_string = function
  | Solver_deadline -> "solver_deadline"
  | Worker_crash -> "worker_crash"
  | Machine_step_limit -> "machine_step_limit"

let point_of_string = function
  | "solver_deadline" -> Some Solver_deadline
  | "worker_crash" -> Some Worker_crash
  | "machine_step_limit" -> Some Machine_step_limit
  | _ -> None

type rule = {
  r_point : point;
  r_key : int option; (* None matches any probe key *)
  r_nth : int; (* fire on this occurrence (1-based) *)
  mutable r_seen : int; (* occurrences counted so far *)
  mutable r_fired : bool; (* armed rules fire exactly once *)
}

type t =
  | Off
  | On of {
      rules : rule list;
      lock : Mutex.t; (* probes may come from several domains *)
    }

let off = Off

let is_on = function
  | Off -> false
  | On _ -> true

let make rules =
  let rules =
    List.map
      (fun (p, key, nth) ->
        if nth < 1 then invalid_arg "Faultsim.make: occurrence must be >= 1";
        { r_point = p; r_key = key; r_nth = nth; r_seen = 0; r_fired = false })
      rules
  in
  On { rules; lock = Mutex.create () }

let fire ?key t point =
  match t with
  | Off -> false
  | On { rules; lock } ->
    Mutex.lock lock;
    (* Every matching rule counts the occurrence (no short-circuit), so
       several rules on one point each see the full probe stream. *)
    let hit =
      List.fold_left
        (fun hit r ->
          if
            r.r_point = point
            && (match (r.r_key, key) with
                | None, _ -> true
                | Some k, Some k' -> k = k'
                | Some _, None -> false)
          then begin
            r.r_seen <- r.r_seen + 1;
            if (not r.r_fired) && r.r_seen = r.r_nth then begin
              r.r_fired <- true;
              true
            end
            else hit
          end
          else hit)
        false rules
    in
    Mutex.unlock lock;
    hit

(* ---- spec parsing ----------------------------------------------------------- *)

(* [:?] occurrences come from a splitmix64 stream over the seed, so a
   spec + seed pair names one deterministic injection schedule. *)
let of_spec ?(seed = 0) spec =
  let rng = Prng.create seed in
  let parse_entry entry =
    let entry = String.trim entry in
    let name, rest =
      match String.index_opt entry '@' with
      | Some i ->
        (String.sub entry 0 i, `Keyed (String.sub entry (i + 1) (String.length entry - i - 1)))
      | None ->
        (match String.index_opt entry ':' with
         | Some i ->
           (String.sub entry 0 i, `Nth (String.sub entry (i + 1) (String.length entry - i - 1)))
         | None -> (entry, `Plain))
    in
    let parse_nth s =
      if s = "?" then Ok (Prng.int_range rng 1 8)
      else
        match int_of_string_opt s with
        | Some n when n >= 1 -> Ok n
        | _ -> Error (Printf.sprintf "bad occurrence %S (positive integer or ?)" s)
    in
    match point_of_string name with
    | None ->
      Error
        (Printf.sprintf
           "unknown injection point %S (solver_deadline|worker_crash|machine_step_limit)"
           name)
    | Some p ->
      (match rest with
       | `Plain -> Ok (p, None, 1)
       | `Nth s -> Result.map (fun n -> (p, None, n)) (parse_nth s)
       | `Keyed s ->
         let key_s, nth_s =
           match String.index_opt s ':' with
           | Some i ->
             (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
           | None -> (s, None)
         in
         (match int_of_string_opt key_s with
          | None -> Error (Printf.sprintf "bad probe key %S (integer)" key_s)
          | Some k ->
            (match nth_s with
             | None -> Ok (p, Some k, 1)
             | Some s -> Result.map (fun n -> (p, Some k, n)) (parse_nth s))))
  in
  if String.trim spec = "" then Error "empty faultsim spec"
  else begin
    let entries = String.split_on_char ',' spec in
    let rec go acc = function
      | [] -> Ok (make (List.rev acc))
      | e :: rest ->
        (match parse_entry e with
         | Ok r -> go (r :: acc) rest
         | Error _ as e -> e)
    in
    go [] entries
  end

exception Injected of string

let inject_crash point =
  raise (Injected (Printf.sprintf "faultsim: injected %s" (point_to_string point)))
