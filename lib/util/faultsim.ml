(* Deterministic fault injection. See faultsim.mli for the contract;
   the implementation is a tiny rule table behind a mutex. The disabled
   plan is the [Off] constructor, so the production probe
   ([fire _ Off = false]) is one branch and no allocation.

   Two kinds of rules share one plan: one-shot rules (fire exactly once,
   on a chosen occurrence of a probe) and chaos rules (fire recurringly,
   each probe drawing against a per-rule probability from its own
   splitmix stream, so a chaos schedule is a pure function of the spec
   and the seed). *)

type point =
  | Solver_deadline
  | Worker_crash
  | Machine_step_limit
  | Io_error

let point_to_string = function
  | Solver_deadline -> "solver_deadline"
  | Worker_crash -> "worker_crash"
  | Machine_step_limit -> "machine_step_limit"
  | Io_error -> "io_error"

let point_of_string = function
  | "solver_deadline" -> Some Solver_deadline
  | "worker_crash" -> Some Worker_crash
  | "machine_step_limit" -> Some Machine_step_limit
  | "io_error" -> Some Io_error
  | _ -> None

let points_help = "(solver_deadline|worker_crash|machine_step_limit|io_error)"

type rule = {
  r_point : point;
  r_key : int option; (* None matches any probe key *)
  r_nth : int; (* fire on this occurrence (1-based) *)
  mutable r_seen : int; (* occurrences counted so far *)
  mutable r_fired : bool; (* armed rules fire exactly once *)
}

type chaos_rule = {
  c_point : point;
  c_bp : int; (* firing probability in basis points, 1..10000 *)
  c_rng : Prng.t; (* private stream: one draw per probe of the point *)
}

type t =
  | Off
  | On of {
      rules : rule list;
      chaos : chaos_rule list;
      lock : Mutex.t; (* probes may come from several domains *)
    }

let off = Off

let is_on = function
  | Off -> false
  | On _ -> true

let make rules =
  let rules =
    List.map
      (fun (p, key, nth) ->
        if nth < 1 then invalid_arg "Faultsim.make: occurrence must be >= 1";
        { r_point = p; r_key = key; r_nth = nth; r_seen = 0; r_fired = false })
      rules
  in
  On { rules; chaos = []; lock = Mutex.create () }

let chaos ?(seed = 0) rates =
  (* Each rule gets its own stream, seeded from a master stream over
     [seed], so adding a rule never perturbs the draws of the others. *)
  let master = Prng.create seed in
  let chaos =
    List.map
      (fun (p, bp) ->
        if bp < 1 || bp > 10000 then
          invalid_arg "Faultsim.chaos: rate must be in 1..10000 basis points";
        { c_point = p; c_bp = bp; c_rng = Prng.create (Prng.int_below master max_int) })
      rates
  in
  On { rules = []; chaos; lock = Mutex.create () }

let fire ?key t point =
  match t with
  | Off -> false
  | On { rules; chaos; lock } ->
    Mutex.lock lock;
    (* Every matching rule counts the occurrence (no short-circuit), so
       several rules on one point each see the full probe stream. *)
    let hit =
      List.fold_left
        (fun hit r ->
          if
            r.r_point = point
            && (match (r.r_key, key) with
                | None, _ -> true
                | Some k, Some k' -> k = k'
                | Some _, None -> false)
          then begin
            r.r_seen <- r.r_seen + 1;
            if (not r.r_fired) && r.r_seen = r.r_nth then begin
              r.r_fired <- true;
              true
            end
            else hit
          end
          else hit)
        false rules
    in
    (* Chaos rules ignore the probe key: every probe of the point is one
       Bernoulli draw from the rule's private stream. *)
    let hit =
      List.fold_left
        (fun hit c ->
          if c.c_point = point then
            Prng.int_range c.c_rng 1 10000 <= c.c_bp || hit
          else hit)
        hit chaos
    in
    Mutex.unlock lock;
    hit

(* ---- spec parsing ----------------------------------------------------------- *)

(* [:?] occurrences come from a splitmix64 stream over the seed, so a
   spec + seed pair names one deterministic injection schedule. *)
let of_spec ?(seed = 0) spec =
  let rng = Prng.create seed in
  let parse_entry entry =
    let entry = String.trim entry in
    let name, rest =
      match String.index_opt entry '@' with
      | Some i ->
        (String.sub entry 0 i, `Keyed (String.sub entry (i + 1) (String.length entry - i - 1)))
      | None ->
        (match String.index_opt entry ':' with
         | Some i ->
           (String.sub entry 0 i, `Nth (String.sub entry (i + 1) (String.length entry - i - 1)))
         | None -> (entry, `Plain))
    in
    let parse_nth s =
      if s = "?" then Ok (Prng.int_range rng 1 8)
      else
        match int_of_string_opt s with
        | Some n when n >= 1 -> Ok n
        | _ -> Error (Printf.sprintf "bad occurrence %S (positive integer or ?)" s)
    in
    match point_of_string name with
    | None ->
      Error (Printf.sprintf "unknown injection point %S %s" name points_help)
    | Some p ->
      (match rest with
       | `Plain -> Ok (p, None, 1)
       | `Nth s -> Result.map (fun n -> (p, None, n)) (parse_nth s)
       | `Keyed s ->
         let key_s, nth_s =
           match String.index_opt s ':' with
           | Some i ->
             (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
           | None -> (s, None)
         in
         (match int_of_string_opt key_s with
          | None -> Error (Printf.sprintf "bad probe key %S (integer)" key_s)
          | Some k ->
            (match nth_s with
             | None -> Ok (p, Some k, 1)
             | Some s -> Result.map (fun n -> (p, Some k, n)) (parse_nth s))))
  in
  if String.trim spec = "" then Error "empty faultsim spec"
  else begin
    let entries = String.split_on_char ',' spec in
    let rec go acc = function
      | [] -> Ok (make (List.rev acc))
      | e :: rest ->
        (match parse_entry e with
         | Ok r -> go (r :: acc) rest
         | Error _ as e -> e)
    in
    go [] entries
  end

let chaos_of_spec ?(seed = 0) spec =
  let parse_entry entry =
    let entry = String.trim entry in
    match String.index_opt entry '=' with
    | None ->
      Error
        (Printf.sprintf "bad chaos entry %S (expected point=RATE, e.g. worker_crash=0.05)"
           entry)
    | Some i ->
      let name = String.sub entry 0 i in
      let rate_s = String.sub entry (i + 1) (String.length entry - i - 1) in
      (match point_of_string name with
       | None -> Error (Printf.sprintf "unknown injection point %S %s" name points_help)
       | Some p ->
         (match float_of_string_opt rate_s with
          | Some rate when rate > 0. && rate <= 1. ->
            let bp = int_of_float (Float.round (rate *. 10000.)) in
            if bp < 1 then
              Error (Printf.sprintf "chaos rate %s is below 0.0001 (one basis point)" rate_s)
            else Ok (p, bp)
          | Some _ -> Error (Printf.sprintf "chaos rate %s out of range (0, 1]" rate_s)
          | None -> Error (Printf.sprintf "bad chaos rate %S (decimal probability)" rate_s)))
  in
  if String.trim spec = "" then Error "empty chaos spec"
  else begin
    let entries = String.split_on_char ',' spec in
    let rec go acc = function
      | [] -> Ok (chaos ~seed (List.rev acc))
      | e :: rest ->
        (match parse_entry e with
         | Ok r -> go (r :: acc) rest
         | Error _ as e -> e)
    in
    go [] entries
  end

exception Injected of string

let inject_crash point =
  raise (Injected (Printf.sprintf "faultsim: injected %s" (point_to_string point)))
