(** CRC-32 (IEEE 802.3 polynomial), as used by zlib and PNG.

    Backs the per-record checksums in the campaign checkpoint codec. *)

val string : string -> int32
(** [string s] is the CRC-32 of [s]. *)

val update : int32 -> string -> int32
(** [update crc s] extends a running checksum with the bytes of [s].
    [update 0l s = string s]. *)

val to_hex : int32 -> string
(** Fixed-width lowercase hex rendering, always 8 characters. *)

val of_hex : string -> int32 option
(** Parses exactly 8 hex characters; [None] on anything else. *)
