(** Deterministic fault injection for resilience testing.

    A plan arms a set of injection {e points} scattered through the
    search stack (solver deadlines, parallel workers, the machine's
    step budget). Each armed point fires {e exactly once}, on a chosen
    occurrence of its probe, so the failure paths of the supervisor can
    be exercised by ordinary unit tests instead of flaky
    timing-dependent ones.

    The disabled plan ({!off}, the default everywhere) is a constant:
    probing it is a single pattern match and allocates nothing, keeping
    the production hot path at zero cost. *)

type point =
  | Solver_deadline  (** force a per-query solver deadline overrun (=> [Unknown]) *)
  | Worker_crash  (** raise inside a parallel worker body *)
  | Machine_step_limit  (** force a [Step_limit] fault on a finished run *)
  | Io_error  (** fail an observability write (status/checkpoint/report) *)

val point_to_string : point -> string
val point_of_string : string -> point option

type t

val off : t
(** The disabled plan: {!fire} is always [false], at zero cost. *)

val is_on : t -> bool

val make : (point * int option * int) list -> t
(** [make rules] arms one rule per triple [(point, key, nth)]: the
    point fires on the [nth] (1-based) occurrence of a probe for that
    [(point, key)] pair, exactly once. [key] narrows the rule to probes
    carrying the same [~key] (e.g. a worker id); [None] matches any
    probe of the point. Probing is serialized by a mutex, so plans are
    safe to share across domains. *)

val chaos : ?seed:int -> (point * int) list -> t
(** [chaos ~seed rates] arms a recurring fault {e schedule}: each
    [(point, bp)] pair fires on any given probe of [point] with
    probability [bp] basis points (1..10000, so 500 = 5%). Each rule
    draws from its own splitmix stream seeded from [seed], so the
    schedule is deterministic and adding a rule never perturbs the
    others. Chaos rules ignore probe keys and never exhaust.

    Raises [Invalid_argument] on a rate outside 1..10000. *)

val of_spec : ?seed:int -> string -> (t, string) result
(** Parse a plan from a comma-separated spec, one rule per entry:

    {v point[@key][:nth]  e.g.  solver_deadline:3,worker_crash@1:2 v}

    [point] is [solver_deadline], [worker_crash], [machine_step_limit]
    or [io_error]; [@key] narrows to a probe key; [:nth] picks
    the firing occurrence (default 1). [:?] draws the occurrence
    deterministically from [seed] (uniform in 1..8), so the same seed
    always injects at the same place and two seeds exercise two
    schedules. *)

val chaos_of_spec : ?seed:int -> string -> (t, string) result
(** Parse a chaos schedule from a comma-separated spec, one rate per
    entry:

    {v point=RATE  e.g.  worker_crash=0.05,solver_deadline=0.05 v}

    [RATE] is a decimal probability in (0, 1], resolved to basis points
    (so the finest grain is 0.0001). See {!chaos} for the firing
    semantics. *)

val fire : ?key:int -> t -> point -> bool
(** Record one occurrence of [point] (with optional [key]) and report
    whether an armed rule fires now. A rule that has already fired
    never fires again. *)

exception Injected of string
(** The exception raised by injected crashes, so supervisors (and
    tests) can tell an injected fault from a real one in messages. *)

val inject_crash : point -> 'a
(** Raise {!Injected} attributed to [point]. *)
