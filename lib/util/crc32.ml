(* CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.

   Used by the campaign checkpoint codec to give every target record an
   integrity check, so a truncated or bit-flipped checkpoint can be salvaged
   up to the last intact record instead of being rejected wholesale. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xedb88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let update crc s =
  let table = Lazy.force table in
  let crc = ref (Int32.lognot crc) in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code ch))) 0xffl)
      in
      crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8))
    s;
  Int32.lognot !crc

let string s = update 0l s
let to_hex crc = Printf.sprintf "%08lx" crc

let of_hex s =
  if String.length s <> 8 then None
  else
    match Int64.of_string_opt ("0x" ^ s) with
    | Some v when Int64.logand v 0xffffffffL = v -> Some (Int64.to_int32 v)
    | _ -> None
