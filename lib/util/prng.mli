(** Deterministic pseudo-random number generator (splitmix64).

    Every random decision in the system (random test inputs, pointer
    coin tosses, randomized search strategies) flows through a value of
    type {!t}, so whole experiments are reproducible from a single
    integer seed. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t

val state : t -> int64
(** The full internal state, for checkpointing. *)

val of_state : int64 -> t
(** Rebuild a generator from {!state}'s value: the stream continues
    exactly where the checkpointed one left off. *)

val set_state : t -> int64 -> unit
(** Overwrite the state in place (checkpoint resume into an existing
    generator). *)

val split : t -> t
(** [split t] advances [t] and returns an independent generator, for
    handing a private stream to a sub-component. *)

val next_int64 : t -> int64
(** Uniform over all 64-bit values. *)

val bits32 : t -> int
(** Uniform signed 32-bit value, in [-2{^31}, 2{^31}). *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] is uniform in the inclusive range [lo..hi].
    @raise Invalid_argument if [lo > hi]. *)

val int_below : t -> int -> int
(** [int_below t n] is uniform in [0..n-1]. @raise Invalid_argument if
    [n <= 0]. *)

val bool : t -> bool
(** Fair coin toss. *)

val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list.
    @raise Invalid_argument on the empty list. *)
