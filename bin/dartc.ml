(* dartc: run DART on a MiniC source file.

     dune exec bin/dartc.exe -- program.mc --toplevel f --depth 2

   Exit status (all subcommands):
     0  search finished clean, no bug found
     1  a bug was found
     2  usage or front-end error
     3  interrupted (SIGINT/SIGTERM) or the --time-budget expired;
        the partial report (and --checkpoint file, when given) was
        still written

   Subcommands: `dartc campaign library.mc` tests every discoverable
   function of a library in one invocation (see run_campaign below for
   its exit codes); `dartc trace-stats trace.jsonl` inspects traces
   written with --trace; `dartc profile trace.jsonl` attributes wall
   clock across phases/targets/solver sites; `dartc watch status.json`
   follows a --status snapshot; `dartc cover` explores coverage. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let strategy_conv =
  let parse = function
    | "dfs" -> Ok Dart.Strategy.Dfs
    | "bfs" -> Ok Dart.Strategy.Bfs
    | "random" -> Ok Dart.Strategy.Random_branch
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S (dfs|bfs|random)" s))
  in
  let print fmt s = Format.pp_print_string fmt (Dart.Strategy.to_string s) in
  Arg.conv (parse, print)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file.")

let toplevel_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "t"; "toplevel" ] ~docv:"FUNC"
        ~doc:"Function under test; its arguments become DART-controlled inputs.")

let depth_arg =
  Arg.(
    value & opt int 1
    & info [ "d"; "depth" ]
        ~doc:"Number of iterative calls to the toplevel function per run (paper \u{00a7}3.2).")

let max_runs_arg =
  Arg.(value & opt int 10_000 & info [ "max-runs" ] ~doc:"Budget of instrumented runs.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed (reproducible).")

let strategy_arg =
  Arg.(
    value
    & opt (some strategy_conv) None
    & info [ "strategy" ] ~docv:"STRAT"
        ~doc:"Branch-selection strategy: dfs (default), bfs or random.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Parallel search workers: shard the run budget across N domains (0 = one per \
           core). The deduped bug set and verdict match --jobs 1.")

let portfolio_arg =
  Arg.(
    value & flag
    & info [ "portfolio" ]
        ~doc:"With --jobs > 1, cycle workers through the dfs/random/bfs strategy portfolio.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Ablation: disable the solve cache (every query hits the solver; \
              also disables the shared cross-worker store, which reuses its entries).")

let no_incremental_arg =
  Arg.(
    value & flag
    & info [ "no-incremental" ]
        ~doc:
          "Ablation: disable push/pop incremental solving (every query rebuilds the solver \
           pipeline from scratch). Results are identical; only solve time changes.")

let no_shared_cache_arg =
  Arg.(
    value & flag
    & info [ "no-shared-cache" ]
        ~doc:
          "Ablation: with --jobs > 1, give every worker a private solve cache and a fixed \
           budget shard instead of the shared cross-worker store and pooled budget. No \
           effect at --jobs 1.")

let no_slicing_arg =
  Arg.(
    value & flag
    & info [ "no-slicing" ]
        ~doc:
          "Ablation: disable independence slicing (send the whole constraint prefix to the \
           solver instead of the flipped branch's dependency closure).")

let no_breaker_arg =
  Arg.(
    value & flag
    & info [ "no-breaker" ]
        ~doc:
          "Ablation: disable the solver circuit breaker (every query reaches the solver \
           even at a site that keeps overrunning its $(b,--solver-timeout) deadline). \
           Reports are byte-identical on healthy workloads; only behavior under sustained \
           solver timeouts changes.")

let no_compile_arg =
  Arg.(
    value & flag
    & info [ "no-compile" ]
        ~doc:
          "Ablation: execute RAM code on the tree-walking interpreter instead of the \
           compiled closure engine. Reports are byte-identical; only throughput changes.")

let random_mode_arg =
  Arg.(
    value & flag
    & info [ "random-testing" ]
        ~doc:"Disable the directed search: plain random testing with the same driver.")

let symbolic_ptrs_arg =
  Arg.(
    value & flag
    & info [ "symbolic-pointers" ]
        ~doc:"Extension: make NULL/non-NULL pointer-shape coins directable branches.")

let all_bugs_arg =
  Arg.(
    value & flag
    & info [ "all-bugs" ] ~doc:"Keep searching after the first bug; report all distinct ones.")

let show_interface_arg =
  Arg.(value & flag & info [ "show-interface" ] ~doc:"Print the extracted interface and exit.")

let show_driver_arg =
  Arg.(
    value & flag
    & info [ "show-driver" ] ~doc:"Print the generated test driver (MiniC) and exit.")

let dump_ram_arg =
  Arg.(value & flag & info [ "dump-ram" ] ~doc:"Print the lowered RAM-machine code and exit.")

let coverage_arg =
  Arg.(
    value & flag
    & info [ "coverage" ] ~doc:"Print a per-function branch-coverage report after the search.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a structured event trace (one JSON object per line) of the whole search \
           to $(docv); inspect it with $(b,dartc trace-stats).")

let status_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "status" ] ~docv:"FILE"
        ~doc:
          "Maintain a live status snapshot in $(docv): one small JSON object, atomically \
           rewritten (write-then-rename) as the search progresses. Follow it with \
           $(b,dartc watch).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print per-phase wall-clock timings (execute/solve/lower/merge) after the run.")

let time_budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "time-budget" ] ~docv:"SEC"
        ~doc:
          "Wall-clock budget for the whole search, in seconds. Checked at run boundaries: \
           an over-budget search stops cleanly with a complete partial report and exit \
           code 3.")

let solver_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "solver-timeout" ] ~docv:"MS"
        ~doc:
          "Per-solver-query deadline in milliseconds; an overrunning query degrades to \
           unknown (counted in the report) instead of stalling the search.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Periodically write a resumable search checkpoint to $(docv) (atomic \
           write-then-rename), plus a final one when the search stops early; resume with \
           $(b,--resume).")

let checkpoint_every_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Checkpoint every $(docv) instrumented runs (default 256).")

let resume_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Resume a search from a checkpoint written by $(b,--checkpoint). The seed, \
           depth, strategy and run budget must match the checkpointed search; the resumed \
           search continues the exact run sequence of the uninterrupted one.")

let faultsim_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faultsim" ] ~docv:"SPEC"
        ~doc:
          "Deterministic fault injection for resilience testing: comma-separated rules \
           $(i,point[@key][:nth]) with points solver_deadline, worker_crash and \
           machine_step_limit (\":?\" draws the occurrence from $(b,--faultsim-seed)).")

let faultsim_seed_arg =
  Arg.(
    value & opt int 0
    & info [ "faultsim-seed" ] ~docv:"N"
        ~doc:"Seed for the \":?\" occurrence draws in $(b,--faultsim) rules.")

let usage_error msg =
  Printf.eprintf "dartc: %s\n" msg;
  2

(* Conflicting-flag validation, as one declarative table: first row
   whose predicate fires wins, its message goes out with exit 2. Add
   new conflicts here, not as ad-hoc if/else chains in the driver. *)
let validate ~jobs ~portfolio ~strategy ~random_mode ~all_bugs ~no_cache ~no_slicing
    ~no_incremental ~no_shared_cache ~no_breaker ~time_budget ~solver_timeout ~checkpoint
    ~checkpoint_every ~resume ~faultsim ~status =
  let table =
    [ (jobs < 0, "--jobs must be >= 0");
      ( portfolio && strategy <> None,
        (* A portfolio cycles workers through its own strategy list: an
           explicit --strategy would be silently overridden. *)
        "--portfolio conflicts with an explicit --strategy" );
      ( portfolio && (random_mode || jobs = 1),
        "--portfolio requires a directed search with --jobs > 1 (or 0)" );
      (* Random testing is a single undirected worker with no
         branch-selection: reject flags that would silently be
         ignored. *)
      (random_mode && strategy <> None, "--strategy has no effect with --random-testing");
      (random_mode && all_bugs, "--all-bugs is not supported with --random-testing");
      (random_mode && jobs <> 1, "--jobs is not supported with --random-testing");
      ( random_mode && (no_cache || no_slicing),
        "--no-cache/--no-slicing have no effect with --random-testing" );
      ( random_mode && (no_incremental || no_shared_cache),
        "--no-incremental/--no-shared-cache have no effect with --random-testing" );
      ( random_mode && no_breaker,
        "--no-breaker has no effect with --random-testing (no solver)" );
      ( (match time_budget with Some s -> s <= 0.0 | None -> false),
        "--time-budget must be positive" );
      ( (match solver_timeout with Some ms -> ms <= 0.0 | None -> false),
        "--solver-timeout must be positive" );
      ( (match checkpoint_every with Some n -> n <= 0 | None -> false),
        "--checkpoint-every must be positive" );
      ( checkpoint_every <> None && checkpoint = None,
        "--checkpoint-every requires --checkpoint" );
      (* Checkpoints serialize one sequential search's state; the
         parallel and random paths have no resumable single stream. *)
      ( random_mode && (checkpoint <> None || resume <> None),
        "--checkpoint/--resume are not supported with --random-testing" );
      ( jobs <> 1 && (checkpoint <> None || resume <> None),
        "--checkpoint/--resume require --jobs 1" );
      ( random_mode && solver_timeout <> None,
        "--solver-timeout has no effect with --random-testing (no solver)" );
      ( random_mode && faultsim <> None,
        "--faultsim is not supported with --random-testing" );
      (* The status file has one writer: the sequential directed
         search. Parallel workers each run their own search loop, and
         the undirected loop does not snapshot. *)
      (random_mode && status <> None, "--status is not supported with --random-testing");
      (status <> None && jobs <> 1, "--status requires --jobs 1") ]
  in
  List.find_opt fst table |> Option.map snd

let print_coverage prog covered =
  print_string (Dart.Coverage.to_string (Dart.Coverage.compute prog ~covered))

(* Run [f] with a telemetry sink for --trace: the null sink when
   tracing is off, else a JSONL writer whose channel is closed (after a
   final flush) whatever [f] does. The flush is explicit and the close
   is [close_out_noerr]: [close_out] raising from the [finally] (full
   disk, dropped pipe) would mask [f]'s outcome, and the
   interrupted/over-budget exits must still deliver every buffered
   event rather than a truncated trace. *)
let with_trace_sink trace f =
  match trace with
  | None -> f Dart.Telemetry.null
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () ->
        (try flush oc with Sys_error _ -> ());
        close_out_noerr oc)
      (fun () -> f (Dart.Telemetry.jsonl oc))

let ns_of_seconds s = Int64.of_float (s *. 1e9)
let ns_of_ms ms = Int64.of_float (ms *. 1e6)

(* SIGINT/SIGTERM flip the cooperative cancellation flag: the search
   drains at its next run boundary, prints the partial report, writes
   its artifacts (trace, checkpoint) and dartc exits 3 — instead of the
   process dying mid-write. The handler stays installed, so repeated
   signals are idempotent requests rather than a hard kill. *)
let install_signal_handlers () =
  let handle = Sys.Signal_handle (fun _ -> Dart.Cancel.request ()) in
  (try Sys.set_signal Sys.sigint handle with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigterm handle with Invalid_argument _ | Sys_error _ -> ()

let run_dartc file toplevel depth max_runs seed strategy random_mode symbolic_ptrs all_bugs
    jobs portfolio no_cache no_slicing no_incremental no_shared_cache no_breaker no_compile
    time_budget solver_timeout checkpoint checkpoint_every resume faultsim faultsim_seed
    trace status metrics_flag show_interface show_driver dump_ram coverage =
  try
    let src = read_file file in
    let ast = Minic.Parser.parse_program ~file src in
    if show_interface then begin
      let typed = Minic.Typecheck.check ast in
      print_string (Dart.Interface.to_string (Dart.Interface.extract typed ~toplevel));
      0
    end
    else if show_driver then begin
      print_string (Dart.Driver_gen.driver_source ast ~toplevel ~depth);
      0
    end
    else begin
      match
        validate ~jobs ~portfolio ~strategy ~random_mode ~all_bugs ~no_cache ~no_slicing
          ~no_incremental ~no_shared_cache ~no_breaker ~time_budget ~solver_timeout
          ~checkpoint ~checkpoint_every ~resume ~faultsim ~status
      with
      | Some msg -> usage_error msg
      | None ->
        if dump_ram then begin
          let prog = Dart.Driver.prepare ~toplevel ~depth ast in
          Hashtbl.iter
            (fun _ f -> print_string (Ram.Instr.func_to_string f))
            prog.Ram.Instr.funcs;
          0
        end
        else begin
          match
            match faultsim with
            | None -> Ok Dart_util.Faultsim.off
            | Some spec -> Dart_util.Faultsim.of_spec ~seed:faultsim_seed spec
          with
          | Error msg -> usage_error (Printf.sprintf "--faultsim: %s" msg)
          | Ok fs ->
            with_trace_sink trace @@ fun sink ->
            install_signal_handlers ();
            (* Preparation (driver generation, typecheck, lowering) is
               timed into the Lower phase of the same metrics record the
               search will use, so --metrics accounts for the whole
               pipeline. The Session/Target/Engine API does the rest of
               the plumbing this driver used to do inline. *)
            let prep = Dart.Telemetry.create_metrics () in
            let print_metrics m =
              if metrics_flag then begin
                print_endline (Dart.Telemetry.metrics_to_string m);
                (* Latency distributions ride with --metrics only: the
                   plain report stays byte-identical. *)
                print_endline (Dart.Telemetry.latency_to_string m)
              end
            in
            let options =
              Dart.Driver.Options.make ~seed ~depth ~max_runs
                ~strategy:(Option.value ~default:Dart.Strategy.Dfs strategy)
                ~stop_on_first_bug:(not all_bugs) ~use_cache:(not no_cache)
                ~use_slicing:(not no_slicing) ~use_incremental:(not no_incremental)
                ~use_shared_cache:(not no_shared_cache) ~use_breaker:(not no_breaker)
                ?time_budget_ns:(Option.map ns_of_seconds time_budget)
                ?solver_deadline_ns:(Option.map ns_of_ms solver_timeout)
                ~exec:
                  { Dart.Concolic.default_exec_options with
                    symbolic_pointers = symbolic_ptrs;
                    compile = not no_compile }
                ~telemetry:
                  { (Dart.Telemetry.with_sink sink) with
                    Dart.Telemetry.status_path = status }
                ~faultsim:fs ()
            in
            let portfolio =
              if portfolio then
                [ Dart.Strategy.Dfs; Dart.Strategy.Random_branch; Dart.Strategy.Bfs ]
              else []
            in
            let session = Dart.Session.create ~jobs ~portfolio ~options () in
            let target = Dart.Target.of_ast ~toplevel ast in
            if random_mode then begin
              match Dart.Engine.run ~mode:`Random ~metrics:prep session target with
              | Dart.Engine.Directed_report _ | Dart.Engine.Parallel_report _ ->
                assert false
              | Dart.Engine.Random_report report as outcome ->
                print_endline (Dart.Random_search.report_to_string report);
                print_metrics prep;
                if coverage then
                  print_coverage
                    (Dart.Session.prepare session target)
                    report.Dart.Random_search.coverage_sites;
                Dart.Engine.exit_code outcome
            end
            else begin
              let meta = Dart.Checkpoint.meta_of_options options in
              let resume_snapshot =
                match resume with
                | None -> Ok None
                | Some path ->
                  (match Dart.Checkpoint.load ~path with
                   | Error msg -> Error (Printf.sprintf "--resume %s: %s" path msg)
                   | Ok (found, snap) ->
                     (match Dart.Checkpoint.check_meta ~expected:meta ~found with
                      | Error msg -> Error (Printf.sprintf "--resume %s: %s" path msg)
                      | Ok () -> Ok (Some snap)))
              in
              match resume_snapshot with
              | Error msg -> usage_error msg
              | Ok resume_snapshot ->
                let on_checkpoint =
                  Option.map
                    (fun path snapshot -> Dart.Checkpoint.save ~path ~meta snapshot)
                    checkpoint
                in
                let outcome =
                  Dart.Engine.run ?resume:resume_snapshot ?on_checkpoint
                    ?checkpoint_every ~metrics:prep session target
                in
                let report =
                  match outcome with
                  | Dart.Engine.Random_report _ -> assert false
                  | Dart.Engine.Directed_report report ->
                    print_endline (Dart.Driver.report_to_string report);
                    report
                  | Dart.Engine.Parallel_report r ->
                    print_endline (Dart.Parallel.report_to_string r);
                    r.Dart.Parallel.merged
                in
                print_metrics report.Dart.Driver.metrics;
                (* Incremental/shared-store counters ride with --metrics:
                   the plain report stays byte-identical across the
                   --no-incremental/--no-shared-cache ablations. *)
                if metrics_flag then begin
                  let st = report.Dart.Driver.solver_stats in
                  Printf.printf
                    "incremental: %d prepared-state hits, %d pops saved, %d shared-store hits\n"
                    (Solver.incremental_hits st) (Solver.pops_saved st)
                    (Solver.shared_hits st)
                end;
                if coverage then
                  print_coverage
                    (Dart.Session.prepare session target)
                    report.Dart.Driver.coverage_sites;
                List.iter
                  (fun (b : Dart.Driver.bug) ->
                    Printf.printf "  - %s in %s at %s (run %d)\n"
                      (Machine.fault_to_string b.bug_fault)
                      b.bug_site.Machine.site_fn
                      (Minic.Loc.to_string b.bug_site.Machine.site_loc)
                      b.bug_run)
                  report.Dart.Driver.bugs;
                Dart.Engine.exit_code outcome
            end
        end
    end
  with
  | Minic.Lexer.Error (loc, msg) | Minic.Parser.Error (loc, msg)
  | Minic.Typecheck.Error (loc, msg) ->
    Printf.eprintf "%s: error: %s\n" (Minic.Loc.to_string loc) msg;
    2
  | Dart.Driver_gen.No_toplevel name ->
    Printf.eprintf "error: no function named %s with a body\n" name;
    2
  | Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    2

(* ---- trace-stats ----------------------------------------------------------------- *)

exception Malformed of string

let trace_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRACE" ~doc:"JSONL trace file produced by $(b,--trace).")

(* Parse a JSONL trace back into events, oldest first. Raises
   [Malformed] on the first line that is not a known event. *)
let read_trace_events file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let events = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           if String.trim line <> "" then
             match Dart.Telemetry.event_of_json line with
             | Ok e -> events := e :: !events
             | Error msg -> raise (Malformed (Printf.sprintf "%s:%d: %s" file !lineno msg))
         done
       with End_of_file -> ());
      List.rev !events)

let run_trace_stats file =
  try
    print_string
      (Dart.Telemetry.summary_to_string
         (Dart.Telemetry.summarize (read_trace_events file)));
    0
  with
  | Malformed msg ->
    Printf.eprintf "dartc trace-stats: %s\n" msg;
    2
  | Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    2

(* ---- cover ----------------------------------------------------------------------- *)

(* The coverage explorer: run a directed search (or replay a recorded
   trace) and render where the branch coverage actually landed —
   annotated source, lcov tracefile, single-file HTML, and the
   coverage-over-time curve with a plateau diagnosis. *)

let cover_from_trace_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "from-trace" ] ~docv:"TRACE"
        ~doc:
          "Derive coverage from a recorded JSONL trace (written with $(b,--trace)) instead \
           of running a live search.")

let cover_annotate_arg =
  Arg.(
    value & flag
    & info [ "annotate" ]
        ~doc:
          "Print the annotated source listing (the default when no other output is \
           selected).")

let cover_lcov_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "lcov" ] ~docv:"FILE" ~doc:"Write an lcov tracefile (BRDA/DA records) to $(docv).")

let cover_html_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "html" ] ~docv:"FILE"
        ~doc:"Write a self-contained single-file HTML report to $(docv).")

let cover_timeline_arg =
  Arg.(
    value & flag
    & info [ "timeline" ]
        ~doc:
          "Print the coverage-over-time curve (one cover point per run) with a plateau \
           diagnosis and the frontier sites ranked by solver attempts.")

let print_timeline summary =
  match summary.Dart.Telemetry.timeline with
  | [] ->
    print_endline
      "no cover points (trace predates coverage sampling, or tracing was disabled)"
  | points ->
    print_endline "coverage over time (cumulative branch directions per run):";
    List.iter
      (fun (p : Dart.Telemetry.cover_point) ->
        Printf.printf "  run %6d  %4d dirs  %10.2f ms\n" p.Dart.Telemetry.cp_run
          p.Dart.Telemetry.cp_covered
          (Int64.to_float p.Dart.Telemetry.cp_ns /. 1e6))
      points;
    (match Dart.Telemetry.plateau summary with
     | Some (last_run, stale) ->
       Printf.printf "plateau: %d runs total, %d since the last new direction\n" last_run
         stale
     | None -> ());
    (match Dart.Telemetry.frontier_sites summary with
     | [] -> ()
     | fs ->
       print_endline "frontier sites (one direction missing, by solver attempts):";
       List.iter
         (fun ((fn, pc), missing_taken, attempts) ->
           Printf.printf "  %s:%d  missing %s  %d solve attempts\n" fn pc
             (if missing_taken then "taken-dir" else "fall-dir")
             attempts)
         fs)

let run_cover file toplevel depth max_runs seed from_trace annotate lcov_out html_out
    timeline =
  try
    let src = read_file file in
    let ast = Minic.Parser.parse_program ~file src in
    let prog = Dart.Driver.prepare ~toplevel ~depth ast in
    let events, covered =
      match from_trace with
      | Some trace ->
        (* A recorded trace carries both the per-site directions (from
           Branch_taken, user sites only) and the cover-point curve. *)
        let events = read_trace_events trace in
        let summary = Dart.Telemetry.summarize events in
        let covered =
          List.concat_map
            (fun ((fn, pc), (taken, fall)) ->
              (if taken then [ (fn, pc, true) ] else [])
              @ if fall then [ (fn, pc, false) ] else [])
            summary.Dart.Telemetry.site_dirs
        in
        (* Random-testing traces run uninstrumented: they carry the
           Cover_point curve but no per-site Branch_taken events, so
           site classification would be vacuously "unreached". *)
        if covered = [] && summary.Dart.Telemetry.timeline <> [] then
          prerr_endline
            "dartc cover: warning: trace has no per-site branch events (recorded with \
             --random-testing?); only --timeline reflects its coverage";
        (events, covered)
      | None ->
        install_signal_handlers ();
        let sink = Dart.Telemetry.ring ~capacity:(1 lsl 20) in
        let options =
          Dart.Driver.Options.make ~seed ~depth ~max_runs ~stop_on_first_bug:false
            ~telemetry:(Dart.Telemetry.with_sink sink) ()
        in
        let ctx = Dart.Driver.make_ctx ~seed ~max_runs () in
        let report = Dart.Driver.search ~ctx ~options prog in
        (Dart.Telemetry.events sink, report.Dart.Driver.coverage_sites)
    in
    let t = Dart.Cover_report.compute prog ~covered in
    let explicit_output = annotate || timeline || lcov_out <> None || html_out <> None in
    if annotate || not explicit_output then
      print_string (Dart.Cover_report.annotate t ~source:src);
    Option.iter
      (fun path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Dart.Cover_report.to_lcov t));
        Printf.eprintf "dartc cover: wrote %s\n" path)
      lcov_out;
    Option.iter
      (fun path ->
        let title = Printf.sprintf "%s \u{2014} %s" (Filename.basename file) toplevel in
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Dart.Cover_report.to_html t ~source:src ~title));
        Printf.eprintf "dartc cover: wrote %s\n" path)
      html_out;
    if timeline then print_timeline (Dart.Telemetry.summarize events);
    0
  with
  | Minic.Lexer.Error (loc, msg) | Minic.Parser.Error (loc, msg)
  | Minic.Typecheck.Error (loc, msg) ->
    Printf.eprintf "%s: error: %s\n" (Minic.Loc.to_string loc) msg;
    2
  | Dart.Driver_gen.No_toplevel name ->
    Printf.eprintf "error: no function named %s with a body\n" name;
    2
  | Malformed msg ->
    Printf.eprintf "dartc cover: %s\n" msg;
    2
  | Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    2

(* ---- campaign -------------------------------------------------------------------- *)

(* Whole-library testing: discover every testable function, schedule
   budget slices across worker domains, dedup crashes library-wide,
   emit one aggregate report. Exit status: 2 usage (including zero
   targets), 3 stopped early (resume with --resume), 1 crashes found,
   0 clean. *)

let priority_conv =
  let parse s =
    match Dart.Driver.Options.priority_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown priority %S (frontier|order)" s))
  in
  let print fmt p =
    Format.pp_print_string fmt (Dart.Driver.Options.priority_to_string p)
  in
  Arg.conv (parse, print)

let per_function_runs_arg =
  Arg.(
    value & opt int 200
    & info [ "per-function-runs" ] ~docv:"N"
        ~doc:
          "Budget slice per target and scheduler round; active targets get refills, one \
           slice per round, until they retire.")

let retire_after_arg =
  Arg.(
    value & opt int 2
    & info [ "retire-after" ] ~docv:"N"
        ~doc:
          "Retire a target as saturated after $(docv) consecutive slices without a new \
           branch direction.")

let priority_arg =
  Arg.(
    value
    & opt priority_conv Dart.Driver.Options.Frontier_first
    & info [ "priority" ] ~docv:"POLICY"
        ~doc:
          "Round ordering: $(b,frontier) (most frontier sites first — where a refill is \
           most likely to buy coverage) or $(b,order) (library declaration order). \
           Results are identical either way; only wall-clock priority changes.")

let campaign_max_runs_arg =
  Arg.(
    value & opt int 10_000
    & info [ "max-runs" ] ~docv:"N" ~doc:"Per-target total budget of instrumented runs.")

let campaign_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the machine-readable aggregate report (deterministic JSON) to $(docv).")

let campaign_lcov_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "lcov" ] ~docv:"FILE"
        ~doc:"Write the aggregate library coverage as an lcov tracefile to $(docv).")

let campaign_html_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "html" ] ~docv:"FILE"
        ~doc:"Write the aggregate library coverage as a single-file HTML report to $(docv).")

let campaign_checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "After every scheduler round, persist the finished targets to $(docv) (atomic \
           write-then-rename); resume with $(b,--resume).")

let campaign_resume_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Resume a campaign from a checkpoint written by $(b,--checkpoint): finished \
           targets are restored, unfinished ones re-run from scratch (per-target results \
           are deterministic, so the aggregate matches the uninterrupted campaign). The \
           seed, budgets and library source must match.")

let campaign_list_arg =
  Arg.(
    value & flag
    & info [ "list" ] ~doc:"Only discover and print the campaign targets, one per line.")

let campaign_resume_salvage_arg =
  Arg.(
    value & flag
    & info [ "resume-salvage" ]
        ~doc:
          "With $(b,--resume): if the checkpoint is corrupted or truncated, restore the \
           longest CRC-valid prefix of its records (with a warning) instead of refusing. \
           A checkpoint of a different campaign configuration still refuses — that is a \
           mismatch, not corruption.")

let retry_limit_arg =
  Arg.(
    value & opt int 3
    & info [ "retry-limit" ] ~docv:"N"
        ~doc:
          "Quarantine a target after $(docv) consecutive faulted slices (worker crash or \
           injected fault); between faults it retries with deterministic exponential \
           backoff. Default 3.")

let chaos_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ] ~docv:"SPEC"
        ~doc:
          "Chaos soak: inject faults at the given rates, as comma-separated \
           $(i,point=rate) pairs with rate in (0,1] and points solver_deadline, \
           worker_crash, machine_step_limit and io_error — e.g. \
           $(b,worker_crash=0.05,io_error=0.01). Draws are deterministic from \
           $(b,--chaos-seed). The campaign must degrade, never fail: faulted targets are \
           retried then quarantined, and the run asserts no target is lost.")

let chaos_seed_arg =
  Arg.(
    value & opt int 0
    & info [ "chaos-seed" ] ~docv:"N"
        ~doc:"Seed for the $(b,--chaos) fault draws (default 0).")

let no_breaker_campaign_arg =
  Arg.(
    value & flag
    & info [ "no-breaker" ]
        ~doc:
          "Ablation: disable the per-target solver circuit breaker (every query reaches \
           the solver even at a site that keeps overrunning its deadline).")

let validate_campaign ~jobs ~per_function_runs ~retire_after ~retry_limit ~max_runs
    ~time_budget ~solver_timeout ~list_only ~checkpoint ~resume ~resume_salvage ~chaos
    ~json ~lcov ~html ~trace ~status =
  let table =
    [ (jobs < 0, "--jobs must be >= 0");
      (per_function_runs <= 0, "--per-function-runs must be positive");
      (retire_after <= 0, "--retire-after must be positive");
      (retry_limit <= 0, "--retry-limit must be positive");
      (max_runs <= 0, "--max-runs must be positive");
      (resume_salvage && resume = None, "--resume-salvage requires --resume");
      ( (match chaos with Some s -> String.trim s = "" | None -> false),
        "--chaos needs a non-empty point=rate list" );
      ( (match time_budget with Some s -> s <= 0.0 | None -> false),
        "--time-budget must be positive" );
      ( (match solver_timeout with Some ms -> ms <= 0.0 | None -> false),
        "--solver-timeout must be positive" );
      ( list_only
        && (checkpoint <> None || resume <> None || json <> None || lcov <> None
           || html <> None || trace <> None || status <> None),
        "--list only discovers targets; it conflicts with --checkpoint/--resume and the \
         report outputs" ) ]
  in
  List.find_opt fst table |> Option.map snd

(* Report outputs are observability, not the verdict: a full disk or a
   read-only directory (or an injected io_error under --chaos) must not
   turn a finished campaign into a crash. The write is atomic
   (tmp-then-rename, Fun.protect-guarded) and any Sys_error degrades to
   a warning on stderr. *)
let write_file_with_note ?(fault = Dart_util.Faultsim.off) ~what path content =
  try
    if Dart_util.Faultsim.fire fault Dart_util.Faultsim.Io_error then
      raise (Sys_error (path ^ ": injected io_error (faultsim)"));
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc content);
    Sys.rename tmp path;
    Printf.eprintf "dartc campaign: wrote %s %s\n" what path
  with Sys_error msg ->
    Printf.eprintf "dartc campaign: warning: could not write %s: %s\n" what msg

exception Chaos_oracle_violation

(* Retire constructor → the short tag shared by the trace codec, the
   status schema and the heatmap CSS classes. *)
let retire_tag = function
  | Dart.Campaign.Bug -> "bug"
  | Dart.Campaign.Complete -> "complete"
  | Dart.Campaign.Saturated -> "saturated"
  | Dart.Campaign.Budget_capped -> "capped"
  | Dart.Campaign.Quarantined _ -> "quarantined"

let run_campaign file jobs seed depth max_runs per_function_runs retire_after retry_limit
    priority all_bugs time_budget solver_timeout json lcov html checkpoint resume
    resume_salvage chaos chaos_seed no_breaker trace status list_only =
  try
    let src = read_file file in
    match
      validate_campaign ~jobs ~per_function_runs ~retire_after ~retry_limit ~max_runs
        ~time_budget ~solver_timeout ~list_only ~checkpoint ~resume ~resume_salvage ~chaos
        ~json ~lcov ~html ~trace ~status
    with
    | Some msg -> usage_error msg
    | None ->
      if list_only then begin
        let ast = Minic.Parser.parse_program ~file src in
        let targets, skipped = Dart.Campaign.discover ast in
        List.iter print_endline targets;
        List.iter
          (fun (name, reason) ->
            Printf.eprintf "dartc campaign: skipped %s: %s\n" name reason)
          skipped;
        if targets = [] then usage_error "no testable targets discovered" else 0
      end
      else begin
        match
          match chaos with
          | None -> Ok Dart_util.Faultsim.off
          | Some spec -> Dart_util.Faultsim.chaos_of_spec ~seed:chaos_seed spec
        with
        | Error msg -> usage_error (Printf.sprintf "--chaos: %s" msg)
        | Ok fault ->
        with_trace_sink trace @@ fun sink ->
        install_signal_handlers ();
        let options =
          Dart.Driver.Options.make ~seed ~depth ~max_runs ~per_function_runs
            ~retire_after ~retry_limit ~priority ~stop_on_first_bug:(not all_bugs)
            ~use_breaker:(not no_breaker)
            ?solver_deadline_ns:(Option.map ns_of_ms solver_timeout)
            ~telemetry:
              { (Dart.Telemetry.with_sink sink) with
                Dart.Telemetry.status_path = status }
            ~faultsim:fault ()
        in
        match
          Dart.Campaign.run ~jobs ~options
            ?time_budget_ns:(Option.map ns_of_seconds time_budget) ?checkpoint ?resume
            ~salvage:resume_salvage ~file
            ~progress:(fun line -> Printf.eprintf "dartc campaign: %s\n%!" line)
            src
        with
        | Error msg -> usage_error msg
        | Ok report ->
          (* Chaos oracle: whatever was injected, the ledger must
             balance — a fault may quarantine a target but can never
             lose one. A violation is a harness bug, reported loudly. *)
          if chaos <> None && not (Dart.Campaign.no_lost_targets report) then begin
            Printf.eprintf
              "dartc campaign: CHAOS ORACLE VIOLATION: a discovered target is missing \
               from the results/skipped/unfinished ledger\n";
            raise Chaos_oracle_violation
          end;
          print_string (Dart.Campaign.report_to_string report);
          Option.iter
            (fun path ->
              write_file_with_note ~fault ~what:"JSON" path (Dart.Campaign.to_json report))
            json;
          if lcov <> None || html <> None then begin
            (* Any one prepared program of the library carries every
               non-driver function, so the first target's program is the
               site universe for the aggregate view. *)
            match report.Dart.Campaign.cam_targets with
            | [] -> ()
            | first :: _ ->
              let ast = Minic.Parser.parse_program ~file src in
              let prog = Dart.Driver.prepare ~toplevel:first ~depth ast in
              let t =
                Dart.Cover_report.compute prog
                  ~covered:(Dart.Campaign.aggregate_sites report)
              in
              Option.iter
                (fun path ->
                  write_file_with_note ~fault ~what:"lcov" path
                    (Dart.Cover_report.to_lcov t))
                lcov;
              Option.iter
                (fun path ->
                  let title =
                    Printf.sprintf "%s \u{2014} campaign" (Filename.basename file)
                  in
                  (* The per-target time/outcome heatmap: cumulative
                     slice wall clock from cam_times, outcome and run
                     count joined from the finished results (a target
                     the campaign stopped before retiring shows as
                     "unfinished"). *)
                  let heatmap =
                    Dart.Cover_report.campaign_heatmap
                      (List.map
                         (fun (name, ns) ->
                           match
                             List.find_opt
                               (fun (r : Dart.Campaign.target_result) ->
                                 r.Dart.Campaign.tr_name = name)
                               report.Dart.Campaign.cam_results
                           with
                           | Some r ->
                             ( name,
                               retire_tag r.Dart.Campaign.tr_retired,
                               ns,
                               r.Dart.Campaign.tr_runs,
                               r.Dart.Campaign.tr_overruns )
                           | None -> (name, "unfinished", ns, 0, 0))
                         report.Dart.Campaign.cam_times)
                  in
                  write_file_with_note ~fault ~what:"HTML" path
                    (Dart.Cover_report.to_html ~extra:heatmap t ~source:src ~title))
                html
          end;
          (match report.Dart.Campaign.cam_status with
           | Dart.Campaign.Stopped_early _ -> 3
           | Dart.Campaign.Finished ->
             if report.Dart.Campaign.cam_crashes <> [] then 1 else 0)
      end
  with
  | Minic.Lexer.Error (loc, msg) | Minic.Parser.Error (loc, msg)
  | Minic.Typecheck.Error (loc, msg) ->
    Printf.eprintf "%s: error: %s\n" (Minic.Loc.to_string loc) msg;
    2
  | Chaos_oracle_violation -> 2
  | Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    2

let campaign_cmd =
  let doc =
    "test every discoverable function of a MiniC library: budget slices with \
     frontier-driven refills, library-wide crash dedup, one aggregate report"
  in
  Cmd.v
    (Cmd.info "dartc campaign" ~doc)
    Term.(
      const run_campaign $ file_arg $ jobs_arg $ seed_arg $ depth_arg
      $ campaign_max_runs_arg $ per_function_runs_arg $ retire_after_arg $ retry_limit_arg
      $ priority_arg $ all_bugs_arg $ time_budget_arg $ solver_timeout_arg
      $ campaign_json_arg $ campaign_lcov_arg $ campaign_html_arg
      $ campaign_checkpoint_arg $ campaign_resume_arg $ campaign_resume_salvage_arg
      $ chaos_arg $ chaos_seed_arg $ no_breaker_campaign_arg $ trace_arg $ status_arg
      $ campaign_list_arg)

(* ---- watch / profile ------------------------------------------------------------- *)

(* `dartc watch STATUS` renders the --status snapshot; `dartc profile
   TRACE` attributes wall clock over a recorded trace. Both are pure
   readers: they never touch the file beyond reading it. *)

let status_file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"STATUS" ~doc:"Status file maintained by $(b,--status).")

let watch_once_arg =
  Arg.(
    value & flag
    & info [ "once" ]
        ~doc:
          "Render the current snapshot once and exit instead of following the file \
           (deterministic output; used by the tests).")

let watch_interval_arg =
  Arg.(
    value & opt float 1.0
    & info [ "interval" ] ~docv:"SEC" ~doc:"Refresh period in seconds (default 1).")

let run_watch file once interval =
  if interval <= 0.0 then usage_error "--interval must be positive"
  else if once then begin
    match Dart.Status.read ~path:file with
    | Error msg ->
      Printf.eprintf "dartc watch: %s: %s\n" file msg;
      2
    | Ok st ->
      print_string (Dart.Status.render st);
      0
  end
  else begin
    (* Follow mode: clear-and-redraw until the user interrupts. The
       writer rewrites the file atomically, so a missing, unreadable or
       empty file is transient — it was deleted or not yet renamed into
       place — and the loop keeps polling through it. Malformed content
       never self-heals (reads are all-or-nothing); that is the one
       follow-mode condition that exits 2, like --once. *)
    let rec loop () =
      match Dart.Status.read_classified ~path:file with
      | Ok st ->
        print_string "\027[H\027[2J";
        print_string (Dart.Status.render st);
        flush stdout;
        Unix.sleepf interval;
        loop ()
      | Error (`Transient msg) ->
        Printf.eprintf "dartc watch: %s: %s (waiting)\n%!" file msg;
        Unix.sleepf interval;
        loop ()
      | Error (`Malformed msg) ->
        Printf.eprintf "dartc watch: %s: %s\n" file msg;
        2
    in
    loop ()
  end

let profile_top_arg =
  Arg.(
    value & opt int 10
    & info [ "top" ] ~docv:"K"
        ~doc:"How many hottest solver sites to list (default 10).")

let run_profile file top =
  try
    if top <= 0 then usage_error "--top must be positive"
    else begin
      let events = read_trace_events file in
      print_string (Dart.Profile.to_string ~top (Dart.Profile.of_events events));
      0
    end
  with
  | Malformed msg ->
    Printf.eprintf "dartc profile: %s\n" msg;
    2
  | Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    2

let watch_cmd =
  let doc = "render a live status snapshot maintained with --status" in
  Cmd.v
    (Cmd.info "dartc watch" ~doc)
    Term.(const run_watch $ status_file_arg $ watch_once_arg $ watch_interval_arg)

let profile_cmd =
  let doc =
    "attribute wall clock across phases, campaign targets and solver sites from a JSONL \
     trace"
  in
  Cmd.v
    (Cmd.info "dartc profile" ~doc)
    Term.(const run_profile $ trace_file_arg $ profile_top_arg)

let run_term =
  Term.(
    const run_dartc $ file_arg $ toplevel_arg $ depth_arg $ max_runs_arg $ seed_arg
    $ strategy_arg $ random_mode_arg $ symbolic_ptrs_arg $ all_bugs_arg $ jobs_arg
    $ portfolio_arg $ no_cache_arg $ no_slicing_arg $ no_incremental_arg
    $ no_shared_cache_arg $ no_breaker_arg $ no_compile_arg $ time_budget_arg
    $ solver_timeout_arg
    $ checkpoint_arg $ checkpoint_every_arg $ resume_arg $ faultsim_arg
    $ faultsim_seed_arg $ trace_arg $ status_arg $ metrics_arg $ show_interface_arg
    $ show_driver_arg $ dump_ram_arg $ coverage_arg)

let trace_stats_cmd =
  let doc = "summarize a JSONL trace written with --trace" in
  Cmd.v (Cmd.info "dartc trace-stats" ~doc) Term.(const run_trace_stats $ trace_file_arg)

let cover_cmd =
  let doc =
    "explore branch coverage at the source level: annotated listing, lcov/HTML export, \
     coverage-over-time"
  in
  Cmd.v
    (Cmd.info "dartc cover" ~doc)
    Term.(
      const run_cover $ file_arg $ toplevel_arg $ depth_arg $ max_runs_arg $ seed_arg
      $ cover_from_trace_arg $ cover_annotate_arg $ cover_lcov_arg $ cover_html_arg
      $ cover_timeline_arg)

let run_cmd =
  let doc = "directed automated random testing for MiniC programs" in
  Cmd.v (Cmd.info "dartc" ~doc) run_term

(* Manual subcommand dispatch: Cmd.group would treat the positional
   source FILE of the default command as a (mis-spelled) command name,
   so the plain `dartc FILE …` invocation must bypass it. *)

(* Cmdliner reports its own parse errors (unknown flag, missing FILE)
   with its default cli_error status; fold those into the documented
   exit 2 so every usage error looks the same to callers. *)
let eval ?argv cmd =
  let code = Cmd.eval' ?argv cmd in
  exit (if code = Cmd.Exit.cli_error then 2 else code)

let () =
  let argv = Sys.argv in
  if Array.length argv > 1 && argv.(1) = "campaign" then
    eval
      ~argv:
        (Array.append [| "dartc campaign" |] (Array.sub argv 2 (Array.length argv - 2)))
      campaign_cmd
  else if Array.length argv > 1 && argv.(1) = "trace-stats" then
    eval
      ~argv:
        (Array.append [| "dartc trace-stats" |] (Array.sub argv 2 (Array.length argv - 2)))
      trace_stats_cmd
  else if Array.length argv > 1 && argv.(1) = "cover" then
    eval
      ~argv:(Array.append [| "dartc cover" |] (Array.sub argv 2 (Array.length argv - 2)))
      cover_cmd
  else if Array.length argv > 1 && argv.(1) = "watch" then
    eval
      ~argv:(Array.append [| "dartc watch" |] (Array.sub argv 2 (Array.length argv - 2)))
      watch_cmd
  else if Array.length argv > 1 && argv.(1) = "profile" then
    eval
      ~argv:(Array.append [| "dartc profile" |] (Array.sub argv 2 (Array.length argv - 2)))
      profile_cmd
  else eval run_cmd
