(* Quickstart: the paper's introductory example (§2.1), end to end.

   DART needs no test driver or harness: point it at a program and a
   toplevel function. This example shows the three techniques in
   order: interface extraction, test-driver generation, and the
   directed search.

   Run with: dune exec examples/quickstart.exe *)

let source =
  {|
int f(int x) { return 2 * x; }

int h(int x, int y) {
  if (x != y)
    if (f(x) == x + 10)
      abort();
  return 0;
}
|}

let () =
  print_endline "=== Program under test ===";
  print_string source;
  (* Technique 1: interface extraction by static parsing. *)
  let ast = Minic.Parser.parse_program source in
  let typed = Minic.Typecheck.check ast in
  let interface = Dart.Interface.extract typed ~toplevel:"h" in
  print_endline "=== Extracted interface ===";
  print_string (Dart.Interface.to_string interface);
  (* Technique 2: the generated random test driver. *)
  print_endline "=== Generated test driver ===";
  print_string (Dart.Driver_gen.driver_source ast ~toplevel:"h" ~depth:1);
  (* Technique 3: directed automated random testing. *)
  print_endline "\n=== Directed search ===";
  let report = Dart.Driver.test_source ~toplevel:"h" source in
  print_endline (Dart.Driver.report_to_string report);
  (match report.Dart.Driver.verdict with
   | Dart.Driver.Bug_found bug ->
     print_endline "\nWitness input vector:";
     List.iter
       (fun (id, v) -> Printf.printf "  x%d = %d%s\n" id v (if v = 10 then "   (the solver forced f(x) = x + 10, i.e. x = 10)" else ""))
       bug.Dart.Driver.bug_inputs
   | Dart.Driver.Complete | Dart.Driver.Budget_exhausted
   | Dart.Driver.Time_exhausted | Dart.Driver.Interrupted -> ());
  (* Contrast with plain random testing: 2^-32 chance per run of
     hitting x = 10 after x != y. *)
  print_endline "\n=== Random-testing baseline (10,000 runs) ===";
  let r = Dart.Random_search.test_source ~max_runs:10_000 ~toplevel:"h" source in
  print_endline (Dart.Random_search.report_to_string r)
