(* Finding Lowe's attack on the Needham-Schroeder public-key protocol
   (paper §4.2), with the Dolev-Yao intruder model as input filter.

   The attack needs a precise 4-step choreography; DART discovers it by
   systematically enumerating intruder action sequences, where random
   testing has essentially no chance.

   Run with: dune exec examples/protocol_attack.exe *)

let decode_actions inputs =
  (* Inputs come in (action, x, y) triples per protocol step. *)
  let v id = Option.value ~default:0 (List.assoc_opt id inputs) in
  let describe step =
    let base = step * 3 in
    let action = v base and x = v (base + 1) and y = v (base + 2) in
    match action with
    | 0 ->
      Printf.sprintf "step %d: instruct A to start a session with %s" (step + 1)
        (match x with 2 -> "B" | 3 -> "the intruder I" | _ -> "nobody (filtered)")
    | 1 ->
      Printf.sprintf
        "step %d: I composes msg1 {known-nonce #%d, claimed sender %s} under B's key"
        (step + 1) x
        (match y with 1 -> "A" | 3 -> "I" | _ -> "invalid")
    | 2 -> Printf.sprintf "step %d: I forwards wire message #%d to its addressee" (step + 1) x
    | 3 ->
      Printf.sprintf "step %d: I composes msg3 {known-nonce #%d} under B's key" (step + 1) x
    | a -> Printf.sprintf "step %d: no-op (action %d filtered)" (step + 1) a
  in
  List.init 4 describe

let () =
  let src = Workloads.Needham_schroeder.dolev_yao ~fix:`None in
  let toplevel = Workloads.Needham_schroeder.dolev_yao_toplevel in
  print_endline "Needham-Schroeder under a Dolev-Yao intruder; searching depth 4...";
  let options = Dart.Driver.Options.make ~depth:4 ~max_runs:400_000 () in
  let report = Dart.Driver.test_source ~options ~toplevel src in
  print_endline (Dart.Driver.report_to_string report);
  (match report.Dart.Driver.verdict with
   | Dart.Driver.Bug_found bug ->
     print_endline "\nLowe's attack, as discovered:";
     List.iter print_endline (decode_actions bug.Dart.Driver.bug_inputs)
   | Dart.Driver.Complete | Dart.Driver.Budget_exhausted
   | Dart.Driver.Time_exhausted | Dart.Driver.Interrupted ->
     print_endline "no attack found (unexpected)");
  (* Lowe's fix closes the protocol: the directed search proves it by
     exhausting every action sequence up to depth 4. *)
  print_endline "\nWith Lowe's fix applied (responder identity in msg2):";
  let fixed = Workloads.Needham_schroeder.dolev_yao ~fix:`Correct in
  let report = Dart.Driver.test_source ~options ~toplevel fixed in
  print_endline (Dart.Driver.report_to_string report)
