(* Directed construction of a protocol packet, character by character.

   The SIP parser under test validates its input with string routines
   (strncmp against "INVITE ", atoi on the dialog id). Every character
   comparison inside those routines is a branch the directed search can
   flip, so DART literally synthesizes a valid packet — and then an id
   that overflows the dialog table. Random testing has one chance in
   256^7 of even passing the method check.

   Run with: dune exec examples/packet_construction.exe *)

let show_packet inputs =
  let chars = List.filteri (fun i _ -> i < 11) inputs in
  String.concat ""
    (List.map
       (fun (_, v) ->
         if v >= 32 && v < 127 then String.make 1 (Char.chr v)
         else Printf.sprintf "\\x%02x" (v land 255))
       chars)

let () =
  print_endline "Searching for a crashing SIP packet (vulnerable parser)...";
  let options = Dart.Driver.Options.make ~max_runs:50_000 () in
  let report =
    Dart.Driver.test_source ~options ~toplevel:Workloads.Sip_parser.toplevel
      Workloads.Sip_parser.vulnerable
  in
  print_endline (Dart.Driver.report_to_string report);
  (match report.Dart.Driver.verdict with
   | Dart.Driver.Bug_found bug ->
     Printf.printf "\nconstructed packet: %S\n" (show_packet bug.Dart.Driver.bug_inputs);
     print_endline
       "(the method token was synthesized by flipping mc_strncmp's comparisons;\n\
        \ the dialog id by flipping mc_atoi's digit checks)"
   | Dart.Driver.Complete | Dart.Driver.Budget_exhausted
   | Dart.Driver.Time_exhausted | Dart.Driver.Interrupted ->
     print_endline "no bug found (unexpected)");
  print_endline "\nSame budget of plain random testing:";
  let r =
    Dart.Random_search.test_source ~seed:9 ~max_runs:50_000
      ~toplevel:Workloads.Sip_parser.toplevel Workloads.Sip_parser.vulnerable
  in
  print_endline (Dart.Random_search.report_to_string r);
  print_endline "\nBounds-checked parser, same search budget:";
  let report =
    Dart.Driver.test_source ~options ~toplevel:Workloads.Sip_parser.toplevel
      Workloads.Sip_parser.fixed
  in
  print_endline (Dart.Driver.report_to_string report)
