(* Unit-testing a library's externally visible functions, one by one,
   as the paper does for oSIP (§4.3): each function becomes the
   toplevel, its pointer arguments are randomly NULL or fresh objects,
   and DART reports every way to crash it.

   Run with: dune exec examples/library_fuzzing.exe *)

let () =
  let n = 30 in
  let src, funcs = Workloads.Osip_sim.generate ~seed:2026 ~n in
  Printf.printf "Generated oSIP-simulacrum library: %d externally visible functions\n\n" n;
  let crashed = ref 0 in
  List.iter
    (fun (f : Workloads.Osip_sim.gen_func) ->
      let options = Dart.Driver.Options.make ~max_runs:500 () in
      let report = Dart.Driver.test_source ~options ~toplevel:f.gf_toplevel src in
      (match report.Dart.Driver.verdict with
       | Dart.Driver.Bug_found bug ->
         incr crashed;
         Printf.printf "%-38s CRASH  %s (run %d, line %d)\n" f.gf_name
           (Machine.fault_to_string bug.Dart.Driver.bug_fault)
           bug.Dart.Driver.bug_run bug.Dart.Driver.bug_site.Machine.site_loc.Minic.Loc.line
       | Dart.Driver.Complete | Dart.Driver.Budget_exhausted
   | Dart.Driver.Time_exhausted | Dart.Driver.Interrupted ->
         Printf.printf "%-38s ok     (%d runs)\n" f.gf_name report.Dart.Driver.runs))
    funcs;
  Printf.printf "\n%d of %d functions crashed (paper: 65%% of ~600 oSIP functions)\n\n"
    !crashed n;
  (* The parser attack: an externally controllable crash through an
     unchecked alloca of an attacker-supplied Content-Length. *)
  print_endline "=== osip_message_parse attack ===";
  let options = Dart.Driver.Options.make ~max_runs:2_000 () in
  let report =
    Dart.Driver.test_source ~options ~toplevel:Workloads.Osip_sim.parser_toplevel
      Workloads.Osip_sim.parser_vulnerable
  in
  (match report.Dart.Driver.verdict with
   | Dart.Driver.Bug_found bug ->
     let len = Option.value ~default:0 (List.assoc_opt 0 bug.Dart.Driver.bug_inputs) in
     Printf.printf
       "crash found on run %d: %s\nattacker-controlled Content-Length = %d %s\n"
       bug.Dart.Driver.bug_run
       (Machine.fault_to_string bug.Dart.Driver.bug_fault)
       len
       (if len > 4096 || len < 0 then "(alloca fails, NULL never checked)"
        else "(alloca undersized, copy overflows)")
   | _ -> print_endline "no crash (unexpected)");
  print_endline "\n=== fixed parser (as of oSIP 2.2.0) ===";
  let report =
    Dart.Driver.test_source ~options ~toplevel:Workloads.Osip_sim.parser_toplevel
      Workloads.Osip_sim.parser_fixed
  in
  print_endline (Dart.Driver.report_to_string report)
