(* Testing code over recursive data structures (paper §3.2): the
   random initializer builds lists of unbounded size by tossing a coin
   per pointer, and the directed search solves for the payloads.

   Also demonstrates the symbolic-pointers extension, which turns the
   coin tosses themselves into directable branches.

   Run with: dune exec examples/data_structures.exe *)

let source =
  {|
struct cell { int value; struct cell *next; };

/* Aborts only for a list of length exactly 3 whose values sum to 300
   and whose head is even: three coins and three linear constraints
   must line up. */
int scan(struct cell *l) {
  int n = 0;
  int sum = 0;
  int head = 0;
  if (l != NULL) head = l->value;
  while (l != NULL) {
    n = n + 1;
    sum = sum + l->value;
    l = l->next;
  }
  if (n == 3)
    if (sum == 300)
      if (head % 2 == 0)
        abort();
  return sum;
}
|}

let describe name (report : Dart.Driver.report) =
  Printf.printf "%s:\n%s\n" name (Dart.Driver.report_to_string report);
  (match report.Dart.Driver.verdict with
   | Dart.Driver.Bug_found bug ->
     print_endline "witness inputs (coins fix the list shape, the rest are payloads):";
     List.iter (fun (id, v) -> Printf.printf "  x%d = %d\n" id v) bug.Dart.Driver.bug_inputs
   | Dart.Driver.Complete | Dart.Driver.Budget_exhausted
   | Dart.Driver.Time_exhausted | Dart.Driver.Interrupted -> ());
  print_newline ()

let () =
  (* Paper semantics: shapes come from random restarts, payloads from
     the solver. *)
  let options = Dart.Driver.Options.make ~max_runs:200_000 () in
  describe "paper semantics (random shapes + directed values)"
    (Dart.Driver.test_source ~options ~toplevel:"scan" source);
  (* Extension: pointer coins become symbolic, so the shape search is
     directed too. *)
  let options =
    Dart.Driver.Options.make ~max_runs:200_000
      ~exec:{ Dart.Concolic.default_exec_options with symbolic_pointers = true } ()
  in
  describe "symbolic-pointers extension (directed shapes)"
    (Dart.Driver.test_source ~options ~toplevel:"scan" source)
