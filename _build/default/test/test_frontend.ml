(* Lexer, parser, pretty-printer round-trips, and typechecker
   acceptance/rejection. *)

open Minic

let toks src = Array.to_list (Lexer.tokenize src) |> List.map fst

let test_lexer_basics () =
  Alcotest.(check int) "eof only" 1 (List.length (toks ""));
  (match toks "int x = 42;" with
   | [ Token.KW_INT; Token.IDENT "x"; Token.ASSIGN; Token.INT_LIT 42; Token.SEMI; Token.EOF ]
     ->
     ()
   | _ -> Alcotest.fail "unexpected tokens");
  (match toks "0x1F" with
   | [ Token.INT_LIT 31; Token.EOF ] -> ()
   | _ -> Alcotest.fail "hex literal");
  (match toks "'a' '\\n' '\\0'" with
   | [ Token.CHAR_LIT 'a'; Token.CHAR_LIT '\n'; Token.CHAR_LIT '\000'; Token.EOF ] -> ()
   | _ -> Alcotest.fail "char literals");
  (match toks {|"hi\n"|} with
   | [ Token.STRING_LIT "hi\n"; Token.EOF ] -> ()
   | _ -> Alcotest.fail "string literal")

let test_lexer_operators () =
  (match toks "a->b && c || d == e != f <= g >= h << i >> j += 1" with
   | [ Token.IDENT "a"; Token.ARROW; Token.IDENT "b"; Token.AMPAMP; Token.IDENT "c";
       Token.PIPEPIPE; Token.IDENT "d"; Token.EQEQ; Token.IDENT "e"; Token.NEQ;
       Token.IDENT "f"; Token.LE; Token.IDENT "g"; Token.GE; Token.IDENT "h"; Token.SHL;
       Token.IDENT "i"; Token.SHR; Token.IDENT "j"; Token.PLUSEQ; Token.INT_LIT 1;
       Token.EOF ] ->
     ()
   | _ -> Alcotest.fail "operator stream")

let test_lexer_comments () =
  (match toks "1 /* multi \n line */ 2 // rest\n 3" with
   | [ Token.INT_LIT 1; Token.INT_LIT 2; Token.INT_LIT 3; Token.EOF ] -> ()
   | _ -> Alcotest.fail "comments skipped");
  Alcotest.(check bool) "unterminated comment raises" true
    (try
       ignore (Lexer.tokenize "/* oops");
       false
     with Lexer.Error _ -> true)

let test_lexer_positions () =
  let arr = Lexer.tokenize ~file:"f.c" "int\n  x;" in
  let _, loc = arr.(1) in
  Alcotest.(check int) "line" 2 loc.Loc.line;
  Alcotest.(check int) "col" 3 loc.Loc.col

let test_lexer_errors () =
  Alcotest.(check bool) "bad char" true
    (try
       ignore (Lexer.tokenize "int @ x");
       false
     with Lexer.Error _ -> true)

(* ---- parser ---------------------------------------------------------------- *)

let parse_ok src = ignore (Parser.parse_program src)

let parse_fails src =
  match Parser.parse_program src with
  | _ -> Alcotest.failf "expected parse error for: %s" src
  | exception Parser.Error _ -> ()

let test_parser_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3" in
  (match e.Ast.edesc with
   | Ast.Ebinop (Ast.Add, { edesc = Ast.Eint 1; _ }, { edesc = Ast.Ebinop (Ast.Mul, _, _); _ })
     ->
     ()
   | _ -> Alcotest.fail "mul binds tighter than add");
  let e = Parser.parse_expr "a == b && c || d" in
  (match e.Ast.edesc with
   | Ast.Eor ({ edesc = Ast.Eand ({ edesc = Ast.Ebinop (Ast.Eq, _, _); _ }, _); _ }, _) -> ()
   | _ -> Alcotest.fail "|| above && above ==");
  let e = Parser.parse_expr "-x * y" in
  (match e.Ast.edesc with
   | Ast.Ebinop (Ast.Mul, { edesc = Ast.Eunop (Ast.Neg, _); _ }, _) -> ()
   | _ -> Alcotest.fail "unary binds tighter than mul");
  let e = Parser.parse_expr "*p + 1" in
  (match e.Ast.edesc with
   | Ast.Ebinop (Ast.Add, { edesc = Ast.Ederef _; _ }, _) -> ()
   | _ -> Alcotest.fail "deref binds tighter than add")

let test_parser_postfix () =
  let e = Parser.parse_expr "a->b.c[3]" in
  (match e.Ast.edesc with
   | Ast.Eindex ({ edesc = Ast.Efield ({ edesc = Ast.Earrow _; _ }, "c"); _ }, _) -> ()
   | _ -> Alcotest.fail "postfix chains left to right")

let test_parser_cast_vs_paren () =
  let e = Parser.parse_expr "(int)x" in
  (match e.Ast.edesc with
   | Ast.Ecast (Ctype.Tint, _) -> ()
   | _ -> Alcotest.fail "cast");
  let e = Parser.parse_expr "(x)" in
  (match e.Ast.edesc with
   | Ast.Evar "x" -> ()
   | _ -> Alcotest.fail "paren");
  let e = Parser.parse_expr "(struct foo *)p" in
  (match e.Ast.edesc with
   | Ast.Ecast (Ctype.Tptr (Ctype.Tstruct "foo"), _) -> ()
   | _ -> Alcotest.fail "struct pointer cast")

let test_parser_declarators () =
  let prog = Parser.parse_program "int *a[3]; int **b; char c[2][4];" in
  (match prog with
   | [ Ast.Gvar { gty = Ctype.Tarray (Ctype.Tptr Ctype.Tint, 3); _ };
       Ast.Gvar { gty = Ctype.Tptr (Ctype.Tptr Ctype.Tint); _ };
       Ast.Gvar { gty = Ctype.Tarray (Ctype.Tarray (Ctype.Tchar, 4), 2); _ } ] ->
     ()
   | _ -> Alcotest.fail "declarator types")

let test_parser_statements () =
  parse_ok
    {|
void f(int n) {
  int i;
  for (i = 0; i < n; i++) { }
  while (n > 0) { n--; if (n == 3) break; else continue; }
  do { n += 2; } while (n < 10);
  ;
  { int shadow; shadow = 1; }
  return;
}
|};
  parse_ok "int g(void) { return 1 ? 2 : 3; }";
  parse_ok "struct s { int a; struct s *next; }; struct s *mk();";
  parse_fails "int f( { }";
  parse_fails "void f() { if }";
  parse_fails "void f() { x = ; }";
  parse_fails "extern int bad() { return 1; }";
  parse_ok
    {|
int f(int x) {
  switch (x) {
  case 1: return 10;
  case 2:
  case 3: return 20;
  default: return 0;
  }
}
|};
  parse_fails "void f(int x) { switch (x) { case : } }";
  parse_fails "void f(int x) { switch (x) case 1: ; }";
  parse_ok "enum color { RED, GREEN = 5, BLUE, };";
  parse_ok "enum { A, B }; int f() { return A + B; }";
  parse_ok "enum tag { T1 }; enum tag f(enum tag t) { return t; }";
  parse_fails "enum color { };";
  parse_fails "enum color { RED GREEN };"

let test_pretty_roundtrip () =
  (* Parse, print, re-parse, print again: the two prints must agree. *)
  let check_src src =
    let p1 = Parser.parse_program src in
    let s1 = Pretty.program_to_string p1 in
    let p2 = Parser.parse_program s1 in
    let s2 = Pretty.program_to_string p2 in
    Alcotest.(check string) "print/parse/print fixpoint" s1 s2
  in
  check_src (fst Workloads.Paper_examples.section_2_1);
  check_src (fst Workloads.Paper_examples.section_2_5_cast);
  check_src (fst Workloads.Paper_examples.ac_controller);
  check_src (Workloads.Needham_schroeder.possibilistic ~fix:`None);
  check_src (Workloads.Needham_schroeder.dolev_yao ~fix:`Correct);
  check_src Workloads.Osip_sim.parser_vulnerable;
  check_src Workloads.Sip_parser.vulnerable;
  check_src (fst (Workloads.Osip_sim.generate ~seed:5 ~n:40));
  check_src
    {|
enum color { RED, GREEN = 5, BLUE };
int pick(int c) {
  switch (c) {
  case RED: return 1;
  case GREEN:
  case BLUE: return 2;
  default: return 0;
  }
}
|}

(* ---- typechecker ----------------------------------------------------------- *)

let tc src = Typecheck.check (Parser.parse_program src)

let tc_ok src = ignore (tc src)

let tc_fails src =
  match tc src with
  | _ -> Alcotest.failf "expected type error for: %s" src
  | exception Typecheck.Error _ -> ()

let test_typecheck_accepts () =
  tc_ok "int f(int x) { return x + 1; }";
  tc_ok "struct s { int a; }; int f(struct s *p) { return p->a; }";
  tc_ok "int f(char c) { return c + 1; }";
  tc_ok "int g; int f() { g = 3; return g; }";
  tc_ok "int f(int *p) { return *p; }";
  tc_ok "int f() { int a[3]; a[0] = 1; return a[0]; }";
  tc_ok "int f(int *p) { return p == NULL; }";
  tc_ok "int f(void *p) { int *q; q = (int *)p; return *q; }";
  tc_ok "void f() { int *p; p = (int *)malloc(sizeof(int)); *p = 3; free(p); }";
  tc_ok "int f(int x) { assert(x > 0); assume(x < 10); return x; }";
  tc_ok "int f(int *p, int *q) { return p - q; }";
  tc_ok "extern int e; int f() { return e; }"

let test_typecheck_rejects () =
  tc_fails "int f() { return y; }" (* undeclared *);
  tc_fails "int f(int x) { int x; return x; }" (* redeclaration *);
  tc_fails "int f() { break; return 0; }";
  tc_fails "int f() { continue; return 0; }";
  tc_fails "void f() { return 1; }";
  tc_fails "int f() { return; }";
  tc_fails "struct s { int a; }; int f(struct s p) { return 0; }" (* struct by value *);
  tc_fails "struct s { int a; }; struct s g; struct s h; void f() { g = h; }";
  tc_fails "int f(int x) { x(); return 0; }" (* call non-function *);
  tc_fails "int f() { return f(1); }" (* arity *);
  tc_fails "struct s { int a; }; int f(struct s *p) { return p->b; }" (* no field *);
  tc_fails "int f(int x) { return x->a; }" (* arrow on int *);
  tc_fails "int f(int x) { return *x; }" (* deref int *);
  tc_fails "int f() { return *(void *)0; }" (* deref void ptr *);
  tc_fails "int f(int *p, char *q) { p = q; return 0; }" (* ptr mismatch *);
  tc_fails "struct s { struct s inner; };" (* infinite struct *);
  tc_fails "int f() { 1 = 2; return 0; }" (* assign to rvalue *);
  tc_fails "int f() { &3; return 0; }" (* address of rvalue *);
  tc_fails "int x; int x;" (* duplicate global *);
  tc_fails "int f() { return 0; } int f() { return 1; }" (* duplicate function *);
  tc_fails "int g = 1 / 0;" (* bad const init *);
  tc_fails "int g = h;" (* non-constant global init *);
  tc_fails "void f(int x) { switch (x) { case 1: break; case 1: break; } }" (* dup case *);
  tc_fails "void f(int x) { switch (x) { default: break; default: break; } }" (* dup default *);
  tc_fails "void f(int x) { switch (x) { case x: break; } }" (* non-constant case *);
  tc_fails "struct s { int a; }; void f(struct s *p) { switch (p) { case 1: break; } }";
  tc_ok "void f(int x) { switch (x) { case 1: break; default: break; } }";
  tc_ok "void f(int x) { while (x > 0) { switch (x) { case 1: continue; } x = x - 1; } }";
  (* enums *)
  tc_ok "enum e { A, B = 7, C }; int f() { return A + B + C; }";
  tc_ok "enum e { A }; int g = A;";
  tc_ok "enum e { A, B }; void f(int x) { switch (x) { case A: break; case B: break; } }";
  tc_ok "enum e { A }; int f() { int A = 3; return A; }" (* locals shadow members *);
  tc_fails "enum e { A, B = A };  enum e2 { A };" (* duplicate member *);
  tc_fails "int A; enum e { A };" (* clashes with a global *);
  tc_fails "enum e { A }; void f() { A = 3; }" (* members are not lvalues *);
  (* initializer lists *)
  tc_ok "int a[3] = { 1, 2, 3 };";
  tc_ok "void f() { int a[2] = { 1 }; }";
  tc_fails "int a[2] = { 1, 2, 3 };" (* too many *);
  tc_fails "int x = { 1 };" (* brace list on a scalar *);
  tc_fails "struct s { int a; }; struct s v = { 1 };" (* structs unsupported *)

let test_enum_values () =
  let tp = tc "enum e { A, B = 7, C, D = C + 10 }; int f() { return D; }" in
  match Tast.find_func tp "f" with
  | Some { Tast.tbody = [ Tast.TSreturn (Some { tdesc = Tast.Tconst v; _ }) ]; _ } ->
    (* A=0, B=7, C=8, D=18 *)
    Alcotest.(check int) "D = C + 10 = 18" 18 v
  | _ -> Alcotest.fail "enum member not folded to a constant"

let test_typecheck_desugar () =
  (* NULL becomes const 0 with pointer type; sizeof becomes a constant
     in cells; e->f becomes deref+field. *)
  let tp = tc "struct s { int a; char b; int c; }; int f(struct s *p) { return p->c + sizeof(struct s); }" in
  match Tast.find_func tp "f" with
  | None -> Alcotest.fail "no f"
  | Some f ->
    (match f.Tast.tbody with
     | [ Tast.TSreturn (Some { tdesc = Tast.Tbinop (Ast.Add, lhs, rhs); _ }) ] ->
       (match (lhs.Tast.tdesc, rhs.Tast.tdesc) with
        | Tast.Tfield ({ tdesc = Tast.Tderef _; _ }, "c", 2), Tast.Tconst 3 -> ()
        | _ -> Alcotest.fail "expected field offset 2 and sizeof 3")
     | _ -> Alcotest.fail "unexpected body shape")

let test_typecheck_call_kinds () =
  let lib = [ Workloads.Paper_examples.lib_hash_sig ] in
  let tp =
    Typecheck.check ~library:lib
      (Parser.parse_program
         {|
int lib_hash(int x);
int ext_fn(int x);
int defined(int x) { return x; }
int top(int x) { return lib_hash(x) + ext_fn(x) + defined(x) + (int)malloc(1); }
|})
  in
  match Tast.find_func tp "top" with
  | None -> Alcotest.fail "no top"
  | Some f ->
    let kinds = ref [] in
    let rec walk (e : Tast.texpr) =
      match e.Tast.tdesc with
      | Tast.Tcall (kind, name, args) ->
        kinds := (name, kind) :: !kinds;
        List.iter walk args
      | Tast.Tbinop (_, a, b) ->
        walk a;
        walk b
      | Tast.Tcast (_, a) -> walk a
      | _ -> ()
    in
    (match f.Tast.tbody with
     | [ Tast.TSreturn (Some e) ] -> walk e
     | _ -> Alcotest.fail "body");
    let kind name = List.assoc name !kinds in
    Alcotest.(check bool) "library" true (kind "lib_hash" = Tast.Clibrary);
    Alcotest.(check bool) "external" true (kind "ext_fn" = Tast.Cexternal);
    Alcotest.(check bool) "program" true (kind "defined" = Tast.Cprogram);
    Alcotest.(check bool) "builtin" true (kind "malloc" = Tast.Cbuiltin Tast.Bmalloc)

let test_interface_extraction () =
  let tp =
    tc
      {|
extern int config;
int helper(int x);
struct msg { int a; };
int process(struct msg *m, int flags) { return helper(flags); }
|}
  in
  let itf = Dart.Interface.extract tp ~toplevel:"process" in
  Alcotest.(check (list string)) "params" [ "m"; "flags" ]
    (List.map fst itf.Dart.Interface.params);
  Alcotest.(check (list string)) "extern vars" [ "config" ]
    (List.map fst itf.Dart.Interface.external_vars);
  Alcotest.(check (list string)) "extern funcs" [ "helper" ]
    (List.map (fun (s : Tast.fsig) -> s.sig_name) itf.Dart.Interface.external_funcs);
  Alcotest.(check bool) "no toplevel" true
    (try
       ignore (Dart.Interface.extract tp ~toplevel:"absent");
       false
     with Dart.Interface.No_toplevel _ -> true)

let test_driver_gen () =
  let ast = Parser.parse_program (fst Workloads.Paper_examples.ac_controller) in
  let src = Dart.Driver_gen.driver_source ast ~toplevel:"ac_controller" ~depth:2 in
  Alcotest.(check bool) "declares arg fn" true (Str_contains.contains src "__dart_arg0");
  Alcotest.(check bool) "loops to depth" true (Str_contains.contains src "< 2");
  (* And the generated program must typecheck and lower. *)
  let full = Dart.Driver_gen.generate ast ~toplevel:"ac_controller" ~depth:2 in
  ignore (Ram.Lower.lower_program (Typecheck.check full))

let suite =
  [ Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer operators" `Quick test_lexer_operators;
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser postfix" `Quick test_parser_postfix;
    Alcotest.test_case "parser cast vs paren" `Quick test_parser_cast_vs_paren;
    Alcotest.test_case "parser declarators" `Quick test_parser_declarators;
    Alcotest.test_case "parser statements" `Quick test_parser_statements;
    Alcotest.test_case "pretty roundtrip" `Quick test_pretty_roundtrip;
    Alcotest.test_case "typecheck accepts" `Quick test_typecheck_accepts;
    Alcotest.test_case "typecheck rejects" `Quick test_typecheck_rejects;
    Alcotest.test_case "enum values" `Quick test_enum_values;
    Alcotest.test_case "typecheck desugaring" `Quick test_typecheck_desugar;
    Alcotest.test_case "call classification" `Quick test_typecheck_call_kinds;
    Alcotest.test_case "interface extraction" `Quick test_interface_extraction;
    Alcotest.test_case "driver generation" `Quick test_driver_gen ]
