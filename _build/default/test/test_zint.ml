(* Unit and property tests for the bignum substrate. The properties
   compare against native [int] arithmetic on ranges where it is exact,
   and against string-level identities for values beyond it. *)

open Zarith_lite

let zint = Alcotest.testable Zint.pp Zint.equal

let check_z = Alcotest.check zint

(* qcheck generator for ints that exercise sign and magnitude mixes
   without overflowing native multiplication. *)
let small_int = QCheck2.Gen.int_range (-1_000_000) 1_000_000
let any_int = QCheck2.Gen.int_range (-0x3FFF_FFFF_FFFF) 0x3FFF_FFFF_FFFF

let test_constants () =
  check_z "zero" (Zint.of_int 0) Zint.zero;
  check_z "one" (Zint.of_int 1) Zint.one;
  check_z "minus_one" (Zint.of_int (-1)) Zint.minus_one;
  Alcotest.(check int) "sign zero" 0 (Zint.sign Zint.zero);
  Alcotest.(check int) "sign pos" 1 (Zint.sign (Zint.of_int 17));
  Alcotest.(check int) "sign neg" (-1) (Zint.sign (Zint.of_int (-17)))

let test_to_string () =
  Alcotest.(check string) "zero" "0" (Zint.to_string Zint.zero);
  Alcotest.(check string) "small" "12345" (Zint.to_string (Zint.of_int 12345));
  Alcotest.(check string) "negative" "-987654321" (Zint.to_string (Zint.of_int (-987654321)));
  (* Chunked decimal printing must pad interior chunks. *)
  Alcotest.(check string) "padding" "1000000007" (Zint.to_string (Zint.of_int 1000000007))

let test_of_string () =
  check_z "roundtrip" (Zint.of_int 424242) (Zint.of_string "424242");
  check_z "negative" (Zint.of_int (-5)) (Zint.of_string "-5");
  check_z "plus sign" (Zint.of_int 5) (Zint.of_string "+5");
  Alcotest.check_raises "empty" (Invalid_argument "Zint.of_string: empty string") (fun () ->
      ignore (Zint.of_string ""));
  Alcotest.check_raises "junk" (Invalid_argument "Zint.of_string: bad digit") (fun () ->
      ignore (Zint.of_string "12a3"))

let test_big_values () =
  (* 2^100, computed two ways. *)
  let a = Zint.pow Zint.two 100 in
  let b = Zint.mul (Zint.pow Zint.two 60) (Zint.pow Zint.two 40) in
  check_z "2^100" a b;
  Alcotest.(check string) "2^100 decimal" "1267650600228229401496703205376" (Zint.to_string a);
  let big = Zint.of_string "123456789012345678901234567890" in
  Alcotest.(check string) "string roundtrip" "123456789012345678901234567890"
    (Zint.to_string big);
  Alcotest.(check bool) "doesn't fit" false (Zint.fits_int big);
  Alcotest.(check (option int)) "to_int_opt" None (Zint.to_int_opt big)

let test_min_int () =
  let m = Zint.of_int min_int in
  check_z "neg(neg(min))" m (Zint.neg (Zint.neg m));
  Alcotest.(check int) "back to int" min_int (Zint.to_int m)

let test_division () =
  let q, r = Zint.div_rem (Zint.of_int 7) (Zint.of_int 2) in
  check_z "7/2" (Zint.of_int 3) q;
  check_z "7%2" (Zint.of_int 1) r;
  (* Truncated division: remainder has the dividend's sign. *)
  let q, r = Zint.div_rem (Zint.of_int (-7)) (Zint.of_int 2) in
  check_z "-7/2" (Zint.of_int (-3)) q;
  check_z "-7%2" (Zint.of_int (-1)) r;
  check_z "fdiv -7 2" (Zint.of_int (-4)) (Zint.fdiv (Zint.of_int (-7)) (Zint.of_int 2));
  check_z "cdiv 7 2" (Zint.of_int 4) (Zint.cdiv (Zint.of_int 7) (Zint.of_int 2));
  check_z "cdiv -7 2" (Zint.of_int (-3)) (Zint.cdiv (Zint.of_int (-7)) (Zint.of_int 2));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Zint.div Zint.one Zint.zero))

let test_gcd_lcm () =
  check_z "gcd 12 18" (Zint.of_int 6) (Zint.gcd (Zint.of_int 12) (Zint.of_int 18));
  check_z "gcd neg" (Zint.of_int 6) (Zint.gcd (Zint.of_int (-12)) (Zint.of_int 18));
  check_z "gcd zero" (Zint.of_int 7) (Zint.gcd Zint.zero (Zint.of_int 7));
  check_z "lcm 4 6" (Zint.of_int 12) (Zint.lcm (Zint.of_int 4) (Zint.of_int 6));
  check_z "lcm zero" Zint.zero (Zint.lcm Zint.zero (Zint.of_int 5))

let test_pow () =
  check_z "x^0" Zint.one (Zint.pow (Zint.of_int 9) 0);
  check_z "3^4" (Zint.of_int 81) (Zint.pow (Zint.of_int 3) 4);
  check_z "(-2)^3" (Zint.of_int (-8)) (Zint.pow (Zint.of_int (-2)) 3);
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Zint.pow: negative exponent") (fun () ->
      ignore (Zint.pow Zint.two (-1)))

(* ---- properties ----------------------------------------------------------- *)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:500 ~name gen f)

let properties =
  [ prop "add agrees with int" (QCheck2.Gen.pair any_int any_int) (fun (a, b) ->
        Zint.to_int (Zint.add (Zint.of_int a) (Zint.of_int b)) = a + b);
    prop "sub agrees with int" (QCheck2.Gen.pair any_int any_int) (fun (a, b) ->
        Zint.to_int (Zint.sub (Zint.of_int a) (Zint.of_int b)) = a - b);
    prop "mul agrees with int" (QCheck2.Gen.pair small_int small_int) (fun (a, b) ->
        Zint.to_int (Zint.mul (Zint.of_int a) (Zint.of_int b)) = a * b);
    prop "div_rem reconstructs" (QCheck2.Gen.pair any_int any_int) (fun (a, b) ->
        QCheck2.assume (b <> 0);
        let za = Zint.of_int a and zb = Zint.of_int b in
        let q, r = Zint.div_rem za zb in
        Zint.equal za (Zint.add (Zint.mul q zb) r)
        && Zint.compare (Zint.abs r) (Zint.abs zb) < 0);
    prop "fdiv lower bound" (QCheck2.Gen.pair any_int any_int) (fun (a, b) ->
        QCheck2.assume (b <> 0);
        let za = Zint.of_int a and zb = Zint.of_int b in
        let q = Zint.fdiv za zb in
        (* q*b <= a < (q+1)*b for b > 0; mirrored for b < 0 *)
        let lo = Zint.mul q zb and hi = Zint.mul (Zint.succ q) zb in
        if b > 0 then Zint.compare lo za <= 0 && Zint.compare za hi < 0
        else Zint.compare hi za < 0 || Zint.compare za lo <= 0);
    prop "string roundtrip" any_int (fun a ->
        Zint.equal (Zint.of_int a) (Zint.of_string (Zint.to_string (Zint.of_int a))));
    prop "compare agrees with int" (QCheck2.Gen.pair any_int any_int) (fun (a, b) ->
        compare a b = Zint.compare (Zint.of_int a) (Zint.of_int b));
    prop "gcd divides both" (QCheck2.Gen.pair small_int small_int) (fun (a, b) ->
        QCheck2.assume (a <> 0 || b <> 0);
        let g = Zint.gcd (Zint.of_int a) (Zint.of_int b) in
        Zint.is_zero (Zint.rem (Zint.of_int a) g)
        && Zint.is_zero (Zint.rem (Zint.of_int b) g));
    prop "mul big associativity" (QCheck2.Gen.triple any_int any_int any_int)
      (fun (a, b, c) ->
        let za = Zint.of_int a and zb = Zint.of_int b and zc = Zint.of_int c in
        Zint.equal (Zint.mul (Zint.mul za zb) zc) (Zint.mul za (Zint.mul zb zc)));
    prop "add_int/mul_int shortcuts" (QCheck2.Gen.pair any_int small_int) (fun (a, k) ->
        let za = Zint.of_int a in
        Zint.equal (Zint.add_int za k) (Zint.add za (Zint.of_int k))
        && Zint.equal (Zint.mul_int za k) (Zint.mul za (Zint.of_int k))) ]

let suite =
  [ Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "of_string" `Quick test_of_string;
    Alcotest.test_case "big values" `Quick test_big_values;
    Alcotest.test_case "min_int" `Quick test_min_int;
    Alcotest.test_case "division" `Quick test_division;
    Alcotest.test_case "gcd/lcm" `Quick test_gcd_lcm;
    Alcotest.test_case "pow" `Quick test_pow ]
  @ properties
