test/test_concolic.ml: Alcotest Array Constr Dart Dart_util List Machine Minic Option Str_contains Symbolic Workloads
