test/test_qnum.ml: Alcotest QCheck2 QCheck_alcotest Qnum Zarith_lite Zint
