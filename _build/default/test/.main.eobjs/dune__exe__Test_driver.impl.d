test/test_driver.ml: Alcotest Dart Dart_util List Machine Minic Printf Str_contains String Workloads
