test/test_lower.ml: Alcotest Array Ast List Loc Minic Ram Str_contains
