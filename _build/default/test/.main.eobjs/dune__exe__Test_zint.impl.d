test/test_zint.ml: Alcotest QCheck2 QCheck_alcotest Zarith_lite Zint
