test/test_util.ml: Alcotest Array Dart_util Int32 Prng QCheck2 QCheck_alcotest Word32 Zarith_lite Zint
