test/test_workloads.ml: Alcotest Char Dart List Machine Minic Option Ram String Workloads
