test/test_progen.ml: Alcotest Array Dart Dart_util Hashtbl List Machine Minic Printexc Printf Progen Ram
