test/test_frontend.ml: Alcotest Array Ast Ctype Dart Lexer List Loc Minic Parser Pretty Ram Str_contains Tast Token Typecheck Workloads
