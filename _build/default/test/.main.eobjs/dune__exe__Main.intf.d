test/main.mli:
