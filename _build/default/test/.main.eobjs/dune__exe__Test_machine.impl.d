test/test_machine.ml: Alcotest Machine Minic Ram
