test/test_solver.ml: Alcotest Array Constr Dart_util Linexpr List QCheck2 QCheck_alcotest Solver Symbolic Zarith_lite Zint
