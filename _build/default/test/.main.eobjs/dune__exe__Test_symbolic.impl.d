test/test_symbolic.ml: Alcotest Array Constr Linexpr List Minic Option QCheck2 QCheck_alcotest Symbolic Symmem Zarith_lite Zint
