(* Lowering to the RAM machine: shapes of emitted code, short-circuit
   expansion, assert/assume desugaring, frame layout. *)

open Minic

let lower src = Ram.Lower.lower_source src

let func prog name =
  match Ram.Instr.find_func prog name with
  | Some f -> f
  | None -> Alcotest.failf "no function %s" name

let count_instr f pred = Array.to_list f.Ram.Instr.code |> List.filter pred |> List.length

let is_if = function Ram.Instr.Iif _ -> true | _ -> false
let is_abort = function Ram.Instr.Iabort -> true | _ -> false
let is_halt = function Ram.Instr.Ihalt -> true | _ -> false
let is_call = function Ram.Instr.Icall _ -> true | _ -> false

let test_simple_function () =
  let prog = lower "int f(int x) { return x + 1; }" in
  let f = func prog "f" in
  Alcotest.(check int) "params" 1 f.Ram.Instr.nparams;
  (match f.Ram.Instr.code with
   | [| Ram.Instr.Ireturn (Some _); Ram.Instr.Ireturn None |] -> ()
   | _ -> Alcotest.failf "unexpected code:\n%s" (Ram.Instr.func_to_string f))

let test_if_lowering () =
  let prog = lower "int f(int x) { if (x > 0) return 1; return 0; }" in
  let f = func prog "f" in
  Alcotest.(check int) "one conditional" 1 (count_instr f is_if)

let test_short_circuit_expansion () =
  (* Each atomic condition becomes its own RAM conditional, so DART can
     direct them independently (crucial: this is how CIL lowers C). *)
  let prog = lower "int f(int a, int b, int c) { if (a > 0 && b > 0 && c > 0) return 1; return 0; }" in
  let f = func prog "f" in
  Alcotest.(check int) "three conditionals" 3 (count_instr f is_if);
  let prog = lower "int f(int a, int b) { if (a > 0 || b > 0) return 1; return 0; }" in
  let f = func prog "f" in
  Alcotest.(check int) "two conditionals" 2 (count_instr f is_if)

let test_assert_lowering () =
  let prog = lower "void f(int x) { assert(x > 0); }" in
  let f = func prog "f" in
  Alcotest.(check int) "assert has branch" 1 (count_instr f is_if);
  Alcotest.(check int) "assert has abort" 1 (count_instr f is_abort)

let test_assume_lowering () =
  let prog = lower "void f(int x) { assume(x > 0); }" in
  let f = func prog "f" in
  Alcotest.(check int) "assume has branch" 1 (count_instr f is_if);
  Alcotest.(check int) "assume has halt" 1 (count_instr f is_halt);
  Alcotest.(check int) "assume has no abort" 0 (count_instr f is_abort)

let test_abort_lowering () =
  let prog = lower "void f() { abort(); }" in
  let f = func prog "f" in
  Alcotest.(check int) "abort instr" 1 (count_instr f is_abort);
  Alcotest.(check int) "no call" 0 (count_instr f is_call)

let test_call_flattening () =
  (* Nested calls become sequenced Icall instructions with temps. *)
  let prog = lower "int g(int x) { return x; } int f(int x) { return g(g(x)); }" in
  let f = func prog "f" in
  Alcotest.(check int) "two calls" 2 (count_instr f is_call)

let test_loop_shape () =
  let prog = lower "int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i; return s; }" in
  let f = func prog "f" in
  Alcotest.(check int) "loop conditional" 1 (count_instr f is_if);
  let gotos = count_instr f (function Ram.Instr.Igoto _ -> true | _ -> false) in
  Alcotest.(check bool) "back edge present" true (gotos >= 1)

let test_field_offsets_in_code () =
  let prog =
    lower "struct s { int a; int b; int c; }; int f(struct s *p) { return p->c; }"
  in
  let f = func prog "f" in
  (* p->c is Load (p + 2). *)
  (match f.Ram.Instr.code.(0) with
   | Ram.Instr.Ireturn
       (Some (Ram.Instr.Load (Ram.Instr.Binop (Ast.Add, _, Ram.Instr.Const 2)))) ->
     ()
   | i -> Alcotest.failf "unexpected instr %s" (Ram.Instr.instr_to_string i))

let test_array_scaling () =
  let prog =
    lower "struct s { int a; int b; }; int f(struct s *p, int i) { return p[i].b; }"
  in
  let f = func prog "f" in
  let str = Ram.Instr.func_to_string f in
  (* The element size 2 must appear as a multiplication. *)
  Alcotest.(check bool) "scale by 2" true (Str_contains.contains str "* 2")

let test_string_interning () =
  let prog = lower {|char *f() { return "abc"; } char *g() { return "abc"; } char *h() { return "xyz"; }|} in
  Alcotest.(check int) "two distinct strings" 2 (Array.length prog.Ram.Instr.strings)

let test_frame_layout () =
  let prog = lower "int f(int a, int b) { int c[3]; int d; c[0] = a; d = b; return d; }" in
  let f = func prog "f" in
  (* params at 0,1; c at 2..4; d at 5; temps beyond. *)
  Alcotest.(check (list int)) "param offsets" [ 0; 1 ]
    (Array.to_list f.Ram.Instr.param_offsets);
  Alcotest.(check bool) "frame covers locals" true (f.Ram.Instr.frame_size >= 6)

let test_break_continue_targets () =
  let prog =
    lower
      {|
int f(int n) {
  int s = 0;
  while (n > 0) {
    n = n - 1;
    if (n == 5) continue;
    if (n == 2) break;
    s = s + 1;
  }
  return s;
}
|}
  in
  (* Executing semantics are checked in machine tests; here we just
     require that lowering resolved every label in range. *)
  let f = func prog "f" in
  Array.iter
    (fun i ->
      match i with
      | Ram.Instr.Igoto l | Ram.Instr.Iif (_, l) ->
        if l < 0 || l > Array.length f.Ram.Instr.code then
          Alcotest.failf "label out of range: %d" l
      | _ -> ())
    f.Ram.Instr.code

let test_locs_attached () =
  let prog = lower "int f(int x) {\n  if (x > 0)\n    abort();\n  return 0;\n}" in
  let f = func prog "f" in
  Alcotest.(check int) "locs parallel to code" (Array.length f.Ram.Instr.code)
    (Array.length f.Ram.Instr.locs);
  (* The conditional came from line 2. *)
  let found = ref false in
  Array.iteri
    (fun i instr ->
      match instr with
      | Ram.Instr.Iif _ -> if f.Ram.Instr.locs.(i).Loc.line = 2 then found := true
      | _ -> ())
    f.Ram.Instr.code;
  Alcotest.(check bool) "if on line 2" true !found

let suite =
  [ Alcotest.test_case "simple function" `Quick test_simple_function;
    Alcotest.test_case "if lowering" `Quick test_if_lowering;
    Alcotest.test_case "short-circuit expansion" `Quick test_short_circuit_expansion;
    Alcotest.test_case "assert lowering" `Quick test_assert_lowering;
    Alcotest.test_case "assume lowering" `Quick test_assume_lowering;
    Alcotest.test_case "abort lowering" `Quick test_abort_lowering;
    Alcotest.test_case "call flattening" `Quick test_call_flattening;
    Alcotest.test_case "loop shape" `Quick test_loop_shape;
    Alcotest.test_case "field offsets" `Quick test_field_offsets_in_code;
    Alcotest.test_case "array scaling" `Quick test_array_scaling;
    Alcotest.test_case "string interning" `Quick test_string_interning;
    Alcotest.test_case "frame layout" `Quick test_frame_layout;
    Alcotest.test_case "break/continue labels" `Quick test_break_continue_targets;
    Alcotest.test_case "source locations" `Quick test_locs_attached ]
