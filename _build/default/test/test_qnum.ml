open Zarith_lite

let qnum = Alcotest.testable Qnum.pp Qnum.equal
let check_q = Alcotest.check qnum

let test_canonical_form () =
  (* 4/8 normalizes to 1/2; sign lives on the numerator. *)
  let q = Qnum.of_ints 4 8 in
  Alcotest.(check string) "4/8" "1/2" (Qnum.to_string q);
  let q = Qnum.of_ints 3 (-6) in
  Alcotest.(check string) "3/-6" "-1/2" (Qnum.to_string q);
  Alcotest.(check int) "den positive" 1 (Zint.sign (Qnum.den q));
  Alcotest.(check string) "integer prints bare" "7" (Qnum.to_string (Qnum.of_int 7));
  Alcotest.check_raises "zero denominator" Division_by_zero (fun () ->
      ignore (Qnum.make Zint.one Zint.zero))

let test_arith () =
  check_q "1/2 + 1/3" (Qnum.of_ints 5 6) (Qnum.add (Qnum.of_ints 1 2) (Qnum.of_ints 1 3));
  check_q "1/2 - 1/2" Qnum.zero (Qnum.sub (Qnum.of_ints 1 2) (Qnum.of_ints 1 2));
  check_q "2/3 * 3/4" (Qnum.of_ints 1 2) (Qnum.mul (Qnum.of_ints 2 3) (Qnum.of_ints 3 4));
  check_q "(1/2) / (1/4)" (Qnum.of_int 2) (Qnum.div (Qnum.of_ints 1 2) (Qnum.of_ints 1 4));
  check_q "inv" (Qnum.of_ints 3 2) (Qnum.inv (Qnum.of_ints 2 3))

let test_floor_ceil () =
  let f q = Zint.to_int (Qnum.floor q) and c q = Zint.to_int (Qnum.ceil q) in
  Alcotest.(check int) "floor 7/2" 3 (f (Qnum.of_ints 7 2));
  Alcotest.(check int) "ceil 7/2" 4 (c (Qnum.of_ints 7 2));
  Alcotest.(check int) "floor -7/2" (-4) (f (Qnum.of_ints (-7) 2));
  Alcotest.(check int) "ceil -7/2" (-3) (c (Qnum.of_ints (-7) 2));
  Alcotest.(check int) "floor integer" 5 (f (Qnum.of_int 5));
  Alcotest.(check int) "ceil integer" 5 (c (Qnum.of_int 5))

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true (Qnum.compare (Qnum.of_ints 1 3) (Qnum.of_ints 1 2) < 0);
  Alcotest.(check bool) "-1/3 > -1/2" true
    (Qnum.compare (Qnum.of_ints (-1) 3) (Qnum.of_ints (-1) 2) > 0);
  check_q "min" (Qnum.of_ints 1 3) (Qnum.min (Qnum.of_ints 1 3) (Qnum.of_ints 1 2));
  check_q "max" (Qnum.of_ints 1 2) (Qnum.max (Qnum.of_ints 1 3) (Qnum.of_ints 1 2))

let test_integrality () =
  Alcotest.(check bool) "6/3 integer" true (Qnum.is_integer (Qnum.of_ints 6 3));
  Alcotest.(check bool) "5/3 not" false (Qnum.is_integer (Qnum.of_ints 5 3));
  Alcotest.(check int) "to_zint" 2 (Zint.to_int (Qnum.to_zint (Qnum.of_ints 6 3)))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:300 ~name gen f)

let frac_gen =
  QCheck2.Gen.map
    (fun (n, d) -> Qnum.of_ints n (if d = 0 then 1 else d))
    (QCheck2.Gen.pair (QCheck2.Gen.int_range (-10000) 10000)
       (QCheck2.Gen.int_range (-500) 500))

let properties =
  [ prop "add commutative" (QCheck2.Gen.pair frac_gen frac_gen) (fun (a, b) ->
        Qnum.equal (Qnum.add a b) (Qnum.add b a));
    prop "mul distributes" (QCheck2.Gen.triple frac_gen frac_gen frac_gen) (fun (a, b, c) ->
        Qnum.equal (Qnum.mul a (Qnum.add b c)) (Qnum.add (Qnum.mul a b) (Qnum.mul a c)));
    prop "sub then add" (QCheck2.Gen.pair frac_gen frac_gen) (fun (a, b) ->
        Qnum.equal a (Qnum.add (Qnum.sub a b) b));
    prop "div inverse" (QCheck2.Gen.pair frac_gen frac_gen) (fun (a, b) ->
        QCheck2.assume (not (Qnum.is_zero b));
        Qnum.equal a (Qnum.mul (Qnum.div a b) b));
    prop "floor <= q < floor+1" frac_gen (fun q ->
        let fl = Qnum.of_zint (Qnum.floor q) in
        Qnum.compare fl q <= 0 && Qnum.compare q (Qnum.add fl Qnum.one) < 0);
    prop "ceil = -floor(-q)" frac_gen (fun q ->
        Zint.equal (Qnum.ceil q) (Zint.neg (Qnum.floor (Qnum.neg q)))) ]

let suite =
  [ Alcotest.test_case "canonical form" `Quick test_canonical_form;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "floor/ceil" `Quick test_floor_ceil;
    Alcotest.test_case "compare" `Quick test_compare;
    Alcotest.test_case "integrality" `Quick test_integrality ]
  @ properties
