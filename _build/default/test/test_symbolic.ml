(* Linear expressions, constraints, symbolic memory. *)

open Zarith_lite
open Symbolic

let z = Zint.of_int

let lin = Alcotest.testable Linexpr.pp Linexpr.equal

(* c0 + c1*x1 + c2*x2 builder for tests *)
let mk c0 terms =
  List.fold_left
    (fun acc (v, c) -> Linexpr.add acc (Linexpr.scale (z c) (Linexpr.var v)))
    (Linexpr.of_int c0) terms

let test_linexpr_basics () =
  Alcotest.check lin "x + x = 2x" (mk 0 [ (1, 2) ]) (Linexpr.add (Linexpr.var 1) (Linexpr.var 1));
  Alcotest.check lin "x - x = 0" Linexpr.zero (Linexpr.sub (Linexpr.var 1) (Linexpr.var 1));
  Alcotest.(check (option int)) "const detection" (Some 5)
    (Option.map Zint.to_int (Linexpr.is_const (Linexpr.of_int 5)));
  Alcotest.(check (option int)) "nonconst" None
    (Option.map Zint.to_int (Linexpr.is_const (Linexpr.var 3)));
  Alcotest.(check (option int)) "as_var" (Some 3) (Linexpr.as_var (Linexpr.var 3));
  Alcotest.(check (option int)) "as_var scaled" None
    (Linexpr.as_var (Linexpr.scale Zint.two (Linexpr.var 3)));
  Alcotest.check lin "scale by zero" Linexpr.zero (Linexpr.scale Zint.zero (mk 7 [ (1, 3) ]))

let test_linexpr_eval () =
  let e = mk 10 [ (0, 2); (1, -3) ] in
  let env v = if v = 0 then z 4 else z 5 in
  Alcotest.(check int) "10 + 2*4 - 3*5" 3 (Zint.to_int (Linexpr.eval env e))

let test_linexpr_vars_sorted () =
  let e = Linexpr.add (Linexpr.var 5) (Linexpr.add (Linexpr.var 1) (Linexpr.var 3)) in
  Alcotest.(check (list int)) "sorted vars" [ 1; 3; 5 ] (Linexpr.vars e)

let test_constr_negate_involution () =
  let e = mk 3 [ (0, 1) ] in
  List.iter
    (fun rel ->
      let c = Constr.make e rel in
      Alcotest.(check bool) "negate twice" true (Constr.equal c (Constr.negate (Constr.negate c))))
    [ Constr.Eq0; Constr.Ne0; Constr.Le0; Constr.Lt0 ]

let test_constr_negate_exact () =
  (* For every integer assignment, exactly one of c / negate c holds. *)
  let e = mk (-2) [ (0, 3) ] in
  List.iter
    (fun rel ->
      let c = Constr.make e rel in
      let nc = Constr.negate c in
      for v = -5 to 5 do
        let env _ = z v in
        if Constr.holds env c = Constr.holds env nc then
          Alcotest.failf "negation not exclusive at %d" v
      done)
    [ Constr.Eq0; Constr.Ne0; Constr.Le0; Constr.Lt0 ]

let test_constr_of_comparison () =
  let a = Linexpr.var 0 and b = Linexpr.of_int 10 in
  let check op v expected =
    match Constr.of_comparison op a b with
    | None -> Alcotest.fail "comparison gave no constraint"
    | Some c -> Alcotest.(check bool) (Minic.Pretty.binop_to_string op) expected
                  (Constr.holds (fun _ -> z v) c)
  in
  check Minic.Ast.Eq 10 true;
  check Minic.Ast.Eq 9 false;
  check Minic.Ast.Ne 9 true;
  check Minic.Ast.Lt 9 true;
  check Minic.Ast.Lt 10 false;
  check Minic.Ast.Le 10 true;
  check Minic.Ast.Gt 11 true;
  check Minic.Ast.Gt 10 false;
  check Minic.Ast.Ge 10 true;
  Alcotest.(check bool) "non-comparison" true (Constr.of_comparison Minic.Ast.Add a b = None)

let test_symmem () =
  let s = Symmem.create () in
  Symmem.bind s ~addr:100 (Linexpr.var 0);
  Alcotest.(check bool) "bound" true (Symmem.lookup s ~addr:100 <> None);
  (* Binding a constant erases. *)
  Symmem.bind s ~addr:100 (Linexpr.of_int 7);
  Alcotest.(check bool) "constant erases" true (Symmem.lookup s ~addr:100 = None);
  Symmem.bind s ~addr:1 (mk 1 [ (2, 2) ]);
  Alcotest.(check int) "count" 1 (Symmem.symbolic_count s);
  Symmem.erase s ~addr:1;
  Alcotest.(check int) "erased" 0 (Symmem.symbolic_count s)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:300 ~name gen f)

let lin_gen =
  let open QCheck2.Gen in
  let term = pair (int_range 0 5) (int_range (-20) 20) in
  map
    (fun (c, terms) -> mk c terms)
    (pair (int_range (-50) 50) (list_size (int_range 0 4) term))

let env_gen = QCheck2.Gen.array_size (QCheck2.Gen.return 6) (QCheck2.Gen.int_range (-100) 100)

let eval_with arr e = Linexpr.eval (fun v -> z arr.(v)) e

let properties =
  [ prop "add is pointwise" (QCheck2.Gen.triple lin_gen lin_gen env_gen) (fun (a, b, env) ->
        Zint.equal (eval_with env (Linexpr.add a b))
          (Zint.add (eval_with env a) (eval_with env b)));
    prop "sub is pointwise" (QCheck2.Gen.triple lin_gen lin_gen env_gen) (fun (a, b, env) ->
        Zint.equal (eval_with env (Linexpr.sub a b))
          (Zint.sub (eval_with env a) (eval_with env b)));
    prop "neg is pointwise" (QCheck2.Gen.pair lin_gen env_gen) (fun (a, env) ->
        Zint.equal (eval_with env (Linexpr.neg a)) (Zint.neg (eval_with env a)));
    prop "scale is pointwise" (QCheck2.Gen.triple (QCheck2.Gen.int_range (-30) 30) lin_gen env_gen)
      (fun (k, a, env) ->
        Zint.equal (eval_with env (Linexpr.scale (z k) a)) (Zint.mul (z k) (eval_with env a)));
    prop "negate flips truth" (QCheck2.Gen.pair lin_gen env_gen) (fun (a, env) ->
        List.for_all
          (fun rel ->
            let c = Constr.make a rel in
            Constr.holds (fun v -> z env.(v)) c
            <> Constr.holds (fun v -> z env.(v)) (Constr.negate c))
          [ Constr.Eq0; Constr.Ne0; Constr.Le0; Constr.Lt0 ]) ]

let suite =
  [ Alcotest.test_case "linexpr basics" `Quick test_linexpr_basics;
    Alcotest.test_case "linexpr eval" `Quick test_linexpr_eval;
    Alcotest.test_case "linexpr vars sorted" `Quick test_linexpr_vars_sorted;
    Alcotest.test_case "negate involution" `Quick test_constr_negate_involution;
    Alcotest.test_case "negate exact" `Quick test_constr_negate_exact;
    Alcotest.test_case "of_comparison" `Quick test_constr_of_comparison;
    Alcotest.test_case "symbolic memory" `Quick test_symmem ]
  @ properties
