examples/protocol_attack.ml: Dart List Option Printf Workloads
