examples/library_fuzzing.ml: Dart List Machine Minic Option Printf Workloads
