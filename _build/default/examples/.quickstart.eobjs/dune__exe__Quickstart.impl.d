examples/quickstart.ml: Dart List Minic Printf
