examples/data_structures.mli:
