examples/library_fuzzing.mli:
