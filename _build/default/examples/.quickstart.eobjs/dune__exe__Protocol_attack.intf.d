examples/protocol_attack.mli:
