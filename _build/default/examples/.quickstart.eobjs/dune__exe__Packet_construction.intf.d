examples/packet_construction.mli:
