examples/packet_construction.ml: Char Dart List Printf String Workloads
