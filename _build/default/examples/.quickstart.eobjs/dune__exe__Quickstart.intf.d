examples/quickstart.mli:
