examples/data_structures.ml: Dart List Printf
