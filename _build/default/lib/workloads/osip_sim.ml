(** The oSIP simulacrum (paper §4.3).

    The paper's oSIP experiment is statistical: out of ~600 externally
    visible library functions, DART crashed 65% within 1,000 runs each,
    almost all by passing NULL for a pointer argument that some path
    dereferences unguarded; a handful of functions check their
    arguments consistently and survive. Since the original 30 kLoC C
    library cannot be vendored here, this module *generates* a MiniC
    library with the same API shape and defect distribution:

    - SIP-flavoured data types (uris, headers as linked lists,
      messages);
    - a seeded mix of function patterns: plain getters/setters
      (guarded or not), list walkers (the [while (h != NULL)] pattern
      is inherently guarded; the [while (h->name != k)] pattern is
      not), condition-gated dereferences that random testing rarely
      reaches (equality against a 32-bit constant) but the directed
      search reaches in a handful of runs, and wrappers that pass
      unchecked pointers down to other generated functions;
    - ground truth: the generator records, per function, whether a
      NULL dereference is reachable by construction, so the experiment
      can report DART's detection rate against truth.

    The parser attack of §4.3 (alloca of an attacker-controlled size,
    missing NULL check) is a separate hand-written program below. *)

type pattern =
  | Getter_unguarded
  | Getter_guarded
  | Setter_gated (* unguarded deref behind a value filter *)
  | Walker_safe (* while (h != NULL) *)
  | Walker_unsafe (* while (h->name != k) *)
  | Deep_gated (* deref of m->from behind an equality filter on m->status *)
  | Wrapper (* passes m->from (m unchecked) to a guarded helper *)
  | Lenfield_unchecked (* trusts an attacker-controlled length field *)
  | Lenfield_checked (* validates the length field first *)

type gen_func = {
  gf_name : string;
  gf_toplevel : string; (* name to hand to DART as toplevel *)
  gf_vulnerable : bool; (* ground truth: reachable NULL deref exists *)
  gf_pattern : pattern;
}

let prelude =
  {|
struct osip_buf { char data[8]; int len; };
struct osip_uri { int scheme; int user; int host; int port; };
struct osip_header { int name; int value; struct osip_header *next; };
struct osip_message {
  int status;
  struct osip_uri *from;
  struct osip_uri *to;
  struct osip_header *headers;
  int content_length;
};
|}

(* Each generated function gets a distinct "interesting constant" so
   that gated patterns need directed search, not luck. *)
let magic rng = Dart_util.Prng.int_range rng 1000 1_000_000

let render_function rng idx pattern =
  let n = idx in
  let name, body, vulnerable =
    match pattern with
    | Getter_unguarded ->
      let field = Dart_util.Prng.choose rng [ "status"; "content_length" ] in
      ( Printf.sprintf "osip_message_get_%s_%d" field n,
        Printf.sprintf
          {|
int osip_message_get_%s_%d(struct osip_message *m) {
  return m->%s;
}
|}
          field n field,
        true )
    | Getter_guarded ->
      let field = Dart_util.Prng.choose rng [ "status"; "content_length" ] in
      ( Printf.sprintf "osip_message_check_get_%s_%d" field n,
        Printf.sprintf
          {|
int osip_message_check_get_%s_%d(struct osip_message *m) {
  if (m == NULL) return -1;
  return m->%s;
}
|}
          field n field,
        false )
    | Setter_gated ->
      let c = magic rng in
      ( Printf.sprintf "osip_uri_set_port_%d" n,
        Printf.sprintf
          {|
int osip_uri_set_port_%d(struct osip_uri *u, int port) {
  if (port > 0) {
    if (port < 65536) {
      u->port = port;
      return 0;
    }
  }
  if (port == %d) {
    u->scheme = 1;
  }
  return -1;
}
|}
          n c,
        true )
    | Walker_safe ->
      ( Printf.sprintf "osip_list_length_%d" n,
        Printf.sprintf
          {|
int osip_list_length_%d(struct osip_header *h) {
  int count = 0;
  while (h != NULL) {
    count = count + 1;
    h = h->next;
  }
  return count;
}
|}
          n,
        false )
    | Walker_unsafe ->
      ( Printf.sprintf "osip_list_find_%d" n,
        Printf.sprintf
          {|
int osip_list_find_%d(struct osip_header *h, int key) {
  while (h->name != key) {
    h = h->next;
  }
  return h->value;
}
|}
          n,
        true )
    | Deep_gated ->
      let c = magic rng in
      ( Printf.sprintf "osip_message_route_%d" n,
        Printf.sprintf
          {|
int osip_message_route_%d(struct osip_message *m) {
  if (m == NULL) return -1;
  if (m->status == %d) {
    /* fast path added for status %d; from is not validated here */
    return m->from->host;
  }
  return 0;
}
|}
          n c c,
        true )
    | Lenfield_unchecked ->
      ( Printf.sprintf "osip_buf_checksum_%d" n,
        Printf.sprintf
          {|
int osip_buf_checksum_%d(struct osip_buf *b) {
  int sum = 0;
  int i;
  if (b == NULL) return -1;
  for (i = 0; i < b->len; i++) {
    sum = sum + b->data[i];   /* len is never validated against the buffer */
  }
  return sum;
}
|}
          n,
        true )
    | Lenfield_checked ->
      ( Printf.sprintf "osip_buf_safe_checksum_%d" n,
        Printf.sprintf
          {|
int osip_buf_safe_checksum_%d(struct osip_buf *b) {
  int sum = 0;
  int i;
  if (b == NULL) return -1;
  if (b->len < 0) return -1;
  if (b->len > 8) return -1;
  for (i = 0; i < b->len; i++) {
    sum = sum + b->data[i];
  }
  return sum;
}
|}
          n,
        false )
    | Wrapper ->
      ( Printf.sprintf "osip_message_from_scheme_%d" n,
        Printf.sprintf
          {|
int osip_uri_scheme_of_%d(struct osip_uri *u) {
  if (u == NULL) return -1;
  return u->scheme;
}

int osip_message_from_scheme_%d(struct osip_message *m) {
  /* m itself is never checked */
  if (m->status > 0)
    return osip_uri_scheme_of_%d(m->from);
  return -1;
}
|}
          n n n,
        true )
  in
  (name, body, vulnerable)

(* The paper observed 65% of functions crashable. The pattern mix is
   weighted to put the constructed vulnerable fraction in that
   region. *)
let pattern_mix =
  [ (Getter_unguarded, 20);
    (Getter_guarded, 18);
    (Setter_gated, 11);
    (Walker_safe, 13);
    (Walker_unsafe, 11);
    (Deep_gated, 10);
    (Wrapper, 7);
    (Lenfield_unchecked, 6);
    (Lenfield_checked, 4) ]

let pick_pattern rng =
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 pattern_mix in
  let r = Dart_util.Prng.int_below rng total in
  let rec go acc = function
    | [] -> assert false
    | (p, w) :: rest -> if r < acc + w then p else go (acc + w) rest
  in
  go 0 pattern_mix

(** Generate a library of [n] externally visible functions. Returns the
    full source (one translation unit) and the per-function records. *)
let generate ~seed ~n =
  let rng = Dart_util.Prng.create seed in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf prelude;
  let funcs = ref [] in
  for idx = 0 to n - 1 do
    let pattern = pick_pattern rng in
    let name, body, vulnerable = render_function rng idx pattern in
    Buffer.add_string buf body;
    funcs :=
      { gf_name = name; gf_toplevel = name; gf_vulnerable = vulnerable; gf_pattern = pattern }
      :: !funcs
  done;
  (Buffer.contents buf, List.rev !funcs)

(* ---- the parser attack (paper §4.3, the security vulnerability) ---- *)

(** The vulnerable parser: [content_length] is attacker-controlled;
    the copy buffer is [alloca]'d without checking for failure (the
    cygwin behaviour the paper describes) and without validating the
    length against the actual message, so either a NULL write (huge
    length: alloca fails) or a buffer overflow (length smaller than
    the message) follows. The driver builds the incoming message from
    environment characters, as the paper's attack does from an ASCII
    SIP packet. *)
let parser_vulnerable =
  {|
char env_char();

int osip_message_parse(char *buf, int content_length) {
  char *copy;
  int i;
  int checksum = 0;
  if (buf == NULL) return -1;
  copy = (char *) alloca(content_length + 1);
  /* BUG: alloca may have returned NULL (request too large) and
     content_length may be smaller than the actual message. */
  i = 0;
  while (buf[i] != 0) {
    copy[i] = buf[i];
    i = i + 1;
  }
  copy[i] = 0;
  i = 0;
  while (copy[i] != 0) {
    checksum = checksum + copy[i];
    i = i + 1;
  }
  return checksum;
}

int parse_entry(int content_length) {
  char buf[64];
  int i;
  for (i = 0; i < 63; i++) {
    buf[i] = env_char();
  }
  buf[63] = 0;
  return osip_message_parse(buf, content_length);
}
|}

(** The fixed parser (as of oSIP 2.2.0 per the paper's note): the
    length is validated and the allocation checked. *)
let parser_fixed =
  {|
char env_char();

int osip_message_parse(char *buf, int content_length) {
  char *copy;
  int i;
  int checksum = 0;
  if (buf == NULL) return -1;
  if (content_length < 0) return -1;
  if (content_length > 4096) return -1;
  copy = (char *) alloca(content_length + 1);
  if (copy == NULL) return -1;
  i = 0;
  while (buf[i] != 0 && i < content_length) {
    copy[i] = buf[i];
    i = i + 1;
  }
  copy[i] = 0;
  i = 0;
  while (copy[i] != 0) {
    checksum = checksum + copy[i];
    i = i + 1;
  }
  return checksum;
}

int parse_entry(int content_length) {
  char buf[64];
  int i;
  for (i = 0; i < 63; i++) {
    buf[i] = env_char();
  }
  buf[63] = 0;
  return osip_message_parse(buf, content_length);
}
|}

let parser_toplevel = "parse_entry"
