(** The example programs of the paper's Sections 1–2 and 4.1, verbatim
    in MiniC. Each value is a pair of (source, toplevel function). *)

(** §2.1: the introductory h/f example. DART guesses random x, y,
    takes the then branch of the outer conditional, records
    [2*x0 != x0 + 10], negates it, solves [x0 = 10] and aborts on the
    second run. *)
let section_2_1 =
  ( {|
int f(int x) { return 2 * x; }

int h(int x, int y) {
  if (x != y)
    if (f(x) == x + 10)
      abort();
  return 0;
}
|},
    "h" )

(** §2.4: the worked example whose directed search terminates after
    proving [x = y /\ y = x + 10] unsatisfiable. *)
let section_2_4 =
  ( {|
int f(int x, int y) {
  int z;
  z = y;
  if (x == z)
    if (y == x + 10)
      abort();
  return 0;
}
|},
    "f" )

(** §2.5: dynamic data — the char-cast aliasing example static
    analyses cannot decide. The write through the char-cast pointer
    plus [sizeof(int)] lands on [a->c]; in our word-addressed machine
    [sizeof(int)] is one cell, which is exactly the offset of [c]. *)
let section_2_5_cast =
  ( {|
struct foo { int i; char c; };

void bar(struct foo *a) {
  if (a->c == 0) {
    *((char *)a + sizeof(int)) = 1;
    if (a->c != 0)
      abort();
  }
}
|},
    "bar" )

(** §2.5: the non-linear example. The condition [x*x*x > 0] is outside
    the linear theory, so DART falls back on its concrete value (and
    gives up completeness); the abort at the end of the then-branch is
    still found with ~0.5 probability per random restart, while the
    abort in the else-branch is unreachable and never reported. *)
let section_2_5_foobar =
  ( {|
void foobar(int x, int y) {
  if (x*x*x > 0) {
    if (x > 0 && y == 10)
      abort();       /* reachable */
  } else {
    if (x > 0 && y == 20)
      abort();       /* unreachable: x>0 implies x*x*x>0 */
  }
}
|},
    "foobar" )

(** §1: the input-filter motivation — random testing has a 2^-32
    chance per run, the directed search needs exactly two runs. *)
let eq_filter =
  ( {|
void check(int x) {
  if (x == 10)
    abort();
}
|},
    "check" )

(** Figure 6: the AC-controller. With depth 1 there is no reachable
    abort; with depth 2 the input sequence (3, 0) violates the check
    (hot room, closed door, AC off). *)
let ac_controller =
  ( {|
/* initially, */
int is_room_hot = 0;    /* room is not hot */
int is_door_closed = 0; /* and door is open */
int ac = 0;             /* so, ac is off */

void ac_controller(int message) {
  if (message == 0) is_room_hot = 1;
  if (message == 1) is_room_hot = 0;
  if (message == 2) {
    is_door_closed = 0;
    ac = 0;
  }
  if (message == 3) {
    is_door_closed = 1;
    if (is_room_hot) ac = 1;
  }
  /* check correctness */
  if (is_room_hot && is_door_closed && !ac)
    abort();
}
|},
    "ac_controller" )

(** A library-function example (paper §3.1): [lib_hash] is a black box
    executed concretely; the branch on its output is not directable,
    but the input-filtering branch before it is. Used by tests for the
    Clibrary machinery. *)
let library_example =
  ( {|
int lib_hash(int x);

void lib_user(int x, int y) {
  if (x > 100) {
    if (lib_hash(x) == 7) {
      if (y == 42)
        abort();
    }
  }
}
|},
    "lib_user" )

let lib_hash_sig =
  { Minic.Tast.sig_name = "lib_hash"; sig_ret = Minic.Ctype.Tint; sig_params = [ Minic.Ctype.Tint ] }

(* A deterministic but opaque host implementation. *)
let lib_hash_impl : Machine.library_impl =
 fun _ args ->
  match args with
  | [ x ] -> (x * 31) land 0xFF
  | _ -> invalid_arg "lib_hash"

(** A recursive-data-structure example: the paper's random
    initialization generates lists of unbounded size (§3.2). The bug
    requires a list of length exactly 3 with specific payloads. *)
let list_example =
  ( {|
struct cell { int value; struct cell *next; };

int sum3(struct cell *l) {
  int n = 0;
  int sum = 0;
  while (l != NULL) {
    n = n + 1;
    sum = sum + l->value;
    l = l->next;
  }
  if (n == 3)
    if (sum == 300)
      abort();
  return sum;
}
|},
    "sum3" )
