(** A small C standard library written in MiniC itself.

    The paper notes that real C code calls a library function "every 10
    lines or so"; these are the *program-function* versions (defined,
    hence traced through by the symbolic execution) of the classics.
    Workloads prepend {!source} and call them; DART tracks inputs
    through them interprocedurally, e.g. a branch on [mc_strlen(s)]
    constrains the characters of [s]. *)

let source =
  {|
/* ---- MiniC prelude: string and memory helpers ---- */

int mc_strlen(char *s) {
  int n = 0;
  while (s[n] != 0) {
    n = n + 1;
  }
  return n;
}

int mc_strcmp(char *a, char *b) {
  int i = 0;
  while (a[i] != 0 && a[i] == b[i]) {
    i = i + 1;
  }
  return a[i] - b[i];
}

int mc_strncmp(char *a, char *b, int n) {
  int i = 0;
  while (i < n) {
    if (a[i] != b[i]) return a[i] - b[i];
    if (a[i] == 0) return 0;
    i = i + 1;
  }
  return 0;
}

void mc_strcpy(char *dst, char *src) {
  int i = 0;
  while (src[i] != 0) {
    dst[i] = src[i];
    i = i + 1;
  }
  dst[i] = 0;
}

void mc_memset(char *p, int value, int n) {
  int i;
  for (i = 0; i < n; i++) {
    p[i] = value;
  }
}

void mc_memcpy(char *dst, char *src, int n) {
  int i;
  for (i = 0; i < n; i++) {
    dst[i] = src[i];
  }
}

/* Find the first occurrence of c in s; -1 if absent. */
int mc_strchr(char *s, int c) {
  int i = 0;
  while (s[i] != 0) {
    if (s[i] == c) return i;
    i = i + 1;
  }
  return -1;
}

/* Parse a non-negative decimal integer prefix; -1 on no digits. */
int mc_atoi(char *s) {
  int i = 0;
  int acc = 0;
  int any = 0;
  while (s[i] >= '0' && s[i] <= '9') {
    acc = acc * 10 + (s[i] - '0');
    any = 1;
    i = i + 1;
  }
  if (any == 0) return -1;
  return acc;
}

int mc_isspace(int c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

int mc_isdigit(int c) { return c >= '0' && c <= '9'; }

int mc_isalpha(int c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}
|}

(** Prepend the prelude to a workload source. *)
let with_prelude body = source ^ "\n" ^ body
