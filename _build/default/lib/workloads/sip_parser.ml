(** A string-processing SIP request parser on top of the MiniC libc
    prelude — the kind of input-filtering code the paper argues
    directed search shines on (§4.1: "a directed search can learn
    through trial and error how to generate inputs that satisfy
    filtering tests").

    The parser only misbehaves on messages that begin with a valid
    method token ("INVITE "), continue with a decimal dialog id, and
    use an id outside the dialog table — so the search must *construct
    the packet character by character* by flipping the comparison
    branches inside [mc_strncmp] and [mc_atoi]. Random testing needs
    one chance in 256^7 just to get past the method check. *)

let vulnerable =
  Libc_prelude.with_prelude
    {|
char env_char();

int dialogs[8];

/* Method codes, or -1 for an unknown method. */
int parse_method(char *line) {
  if (mc_strncmp(line, "INVITE ", 7) == 0) return 1;
  if (mc_strncmp(line, "ACK ", 4) == 0) return 2;
  if (mc_strncmp(line, "BYE ", 4) == 0) return 3;
  return -1;
}

int sip_handle(char *msg) {
  int method = parse_method(msg);
  if (method == -1) return -1;
  if (method == 1) {
    /* INVITE <dialog-id>: register the dialog. */
    int skip = mc_strchr(msg, ' ');
    int id = mc_atoi(msg + skip + 1);
    if (id < 0) return -1;
    dialogs[id] = 1;   /* BUG: id is attacker-controlled, no bound check */
    return id;
  }
  return 0;
}

int sip_entry() {
  char buf[12];
  int i;
  for (i = 0; i < 11; i++) {
    buf[i] = env_char();
  }
  buf[11] = 0;
  return sip_handle(buf);
}
|}

let fixed =
  Libc_prelude.with_prelude
    {|
char env_char();

int dialogs[8];

int parse_method(char *line) {
  if (mc_strncmp(line, "INVITE ", 7) == 0) return 1;
  if (mc_strncmp(line, "ACK ", 4) == 0) return 2;
  if (mc_strncmp(line, "BYE ", 4) == 0) return 3;
  return -1;
}

int sip_handle(char *msg) {
  int method = parse_method(msg);
  if (method == -1) return -1;
  if (method == 1) {
    int skip = mc_strchr(msg, ' ');
    int id = mc_atoi(msg + skip + 1);
    if (id < 0) return -1;
    if (id >= 8) return -1;   /* the fix */
    dialogs[id] = 1;
    return id;
  }
  return 0;
}

int sip_entry() {
  char buf[12];
  int i;
  for (i = 0; i < 11; i++) {
    buf[i] = env_char();
  }
  buf[11] = 0;
  return sip_handle(buf);
}
|}

let toplevel = "sip_entry"
