(** A MiniC implementation of the Needham–Schroeder public-key
    protocol (paper §4.2).

    The program simulates the interleaved behaviour of initiator A and
    responder B in a single process, driven by input messages; an
    assertion fires whenever B completes a session apparently with A
    while A never initiated a session with B — i.e. whenever Lowe's
    man-in-the-middle attack has succeeded.

    Modelling conventions (documented in DESIGN.md):
    - agents are integers (A=1, B=2, intruder I=3); the public key of
      agent [x] is [10 + x];
    - an "encrypted" message is a tuple (type, d1, d2, d3) plus the key
      it is encrypted under; decryption succeeds iff the receiver owns
      the key — the standard Dolev–Yao black-box cipher;
    - nonces are the constants Na=101, Nb=102.

    Two environments:
    - {!possibilistic}: the most general environment (paper Figure 9) —
      every field of every delivered message is an unconstrained input,
      so the "intruder" can guess secrets; DART finds the projection of
      Lowe's attack (steps 2 and 6) at depth 2.
    - {!dolev_yao}: a realistic intruder (paper Figure 10) acting as an
      input filter: it can only decrypt messages for key Ki, compose
      messages from nonces it has learned, and forward messages it has
      seen. The full 4-step attack appears at depth 4.

    Three fix levels reproduce §4.2's anecdote: [`None] (original
    protocol), [`Buggy] (Lowe's fix implemented incompletely: B sends
    its identity but A computes the check and forgets to enforce it),
    and [`Correct]. *)

type fix =
  [ `None
  | `Buggy
  | `Correct
  ]

(* Shared protocol core: agents A and B, message emission, and the
   attack assertion. The [a_check] hole receives the acceptance test A
   runs on the responder identity field of message 2. *)
let core ~(fix : fix) =
  let b_identity = match fix with `None -> "0" | `Buggy | `Correct -> "2" in
  let a_accept =
    match fix with
    | `None ->
      (* Original protocol: no identity check at all. *)
      {|
      a_state = 2;
      emit_msg(3, d2, 0, 0, 10 + a_peer);
|}
    | `Buggy ->
      (* Lowe's fix, implemented incompletely: the check is computed
         but the failure path forgets to bail out. *)
      {|
      int check_ok = 0;
      if (d3 == a_peer) check_ok = 1;
      /* BUG: missing "if (!check_ok) return;" */
      a_state = 2;
      emit_msg(3, d2, 0, 0, 10 + a_peer);
|}
    | `Correct ->
      {|
      if (d3 == a_peer) {
        a_state = 2;
        emit_msg(3, d2, 0, 0, 10 + a_peer);
      }
|}
  in
  Printf.sprintf
    {|
/* ---- protocol state ---- */
int a_state = 0;           /* 0 idle, 1 waiting for msg2, 2 complete */
int a_peer = 0;            /* whom A believes it talks to */
int a_started_with_b = 0;  /* ground truth for the attack assertion */
int b_state = 0;           /* 0 idle, 1 sent msg2, 2 complete */
int b_peer = 0;            /* whom B believes it talks to */

/* ---- the wire: every message any agent sends ---- */
int out_count = 0;
int out_type[16];
int out_d1[16];
int out_d2[16];
int out_d3[16];
int out_key[16];

void emit_msg(int type, int d1, int d2, int d3, int key) {
  if (out_count < 16) {
    out_type[out_count] = type;
    out_d1[out_count] = d1;
    out_d2[out_count] = d2;
    out_d3[out_count] = d3;
    out_key[out_count] = key;
    out_count = out_count + 1;
  }
}

/* A starts a session with peer (2 = B, 3 = I):
   sends msg1 = {Na, A} under the peer's key. */
void a_start(int peer) {
  if (a_state == 0) {
    a_state = 1;
    a_peer = peer;
    if (peer == 2) a_started_with_b = 1;
    emit_msg(1, 101, 1, 0, 10 + peer);
  }
}

/* A receives a message encrypted under key. Only msg2 = {Na, Nb, id}
   matters to A, and only if it is encrypted with A's key (11). */
void a_receive(int type, int d1, int d2, int d3, int key) {
  if (key != 11) return;   /* A cannot decrypt */
  if (type != 2) return;
  if (a_state == 1) {
    if (d1 == 101) {       /* contains A's nonce: looks like a response */
%s    }
  }
}

/* B receives a message encrypted under its key (12). */
void b_receive(int type, int d1, int d2, int d3, int key) {
  if (key != 12) return;   /* B cannot decrypt */
  if (type == 1) {
    /* msg1 = {nonce, claimed-sender} */
    if (b_state == 0) {
      b_peer = d2;
      b_state = 1;
      /* msg2 = {nonce, Nb, B?} under the claimed sender's key */
      emit_msg(2, d1, 102, %s, 10 + d2);
    }
  }
  if (type == 3) {
    /* msg3 = {Nb} */
    if (b_state == 1) {
      if (d1 == 102) {
        b_state = 2;
        /* B now believes it completed a session with b_peer. */
        if (b_peer == 1) {
          if (a_started_with_b == 0)
            abort();   /* Lowe's attack: B authenticated a phantom A */
        }
      }
    }
  }
}
|}
    a_accept b_identity

(** The most general environment (Figure 9 setup): each protocol step
    consumes one raw message whose every field is an input. *)
let possibilistic ~fix =
  core ~fix
  ^ {|
/* target 0: instruct A to start with agent d1 (only 2 or 3 are agents);
   target 1: deliver (type,d1,d2,d3) under key to A;
   target 2: same, to B. */
void ns_step(int target, int type, int d1, int d2, int d3, int key) {
  if (target == 0) {
    if (d1 == 2 || d1 == 3) a_start(d1);
  }
  if (target == 1) a_receive(type, d1, d2, d3, key);
  if (target == 2) b_receive(type, d1, d2, d3, key);
}
|}

(** The Dolev–Yao intruder (Figure 10 setup), acting as an input
    filter between the environment and the protocol entities. The
    intruder observes every emitted message, learns nonces from
    messages under its own key (13), and the environment can only
    select legal intruder actions. *)
let dolev_yao ~fix =
  core ~fix
  ^ {|
/* ---- intruder state ---- */
int known[8];          /* nonces the intruder knows */
int known_count = 0;
int obs_next = 0;      /* next wire message to observe */

void learn(int nonce) {
  int i;
  int present = 0;
  if (nonce < 100) return;  /* only nonces are worth learning */
  for (i = 0; i < known_count; i++) {
    if (known[i] == nonce) present = 1;
  }
  if (present == 0) {
    if (known_count < 8) {
      known[known_count] = nonce;
      known_count = known_count + 1;
    }
  }
}

/* The intruder sees everything on the wire and decrypts what it can. */
void intruder_observe() {
  while (obs_next < out_count) {
    if (out_key[obs_next] == 13) {
      learn(out_d1[obs_next]);
      learn(out_d2[obs_next]);
    }
    obs_next = obs_next + 1;
  }
}

/* action 0: tell A to start a session with agent x (2 or 3)
   action 1: compose msg1 {known[x], claimed y} to B (y in {1,3})
   action 2: forward wire message x to its addressee
   action 3: compose msg3 {known[x]} to B */
void ns_dy_step(int action, int x, int y) {
  intruder_observe();
  if (action == 0) {
    if (x == 2 || x == 3) a_start(x);
  }
  if (action == 1) {
    int i;
    for (i = 0; i < known_count; i++) {
      if (i == x) {
        if (y == 1 || y == 3) b_receive(1, known[i], y, 0, 12);
      }
    }
  }
  if (action == 2) {
    int i;
    for (i = 0; i < out_count; i++) {
      if (i == x) {
        if (out_key[i] == 11)
          a_receive(out_type[i], out_d1[i], out_d2[i], out_d3[i], 11);
        if (out_key[i] == 12)
          b_receive(out_type[i], out_d1[i], out_d2[i], out_d3[i], 12);
      }
    }
  }
  if (action == 3) {
    int i;
    for (i = 0; i < known_count; i++) {
      if (i == x) b_receive(3, known[i], 0, 0, 12);
    }
  }
  intruder_observe();
}
|}

let possibilistic_toplevel = "ns_step"
let dolev_yao_toplevel = "ns_dy_step"
