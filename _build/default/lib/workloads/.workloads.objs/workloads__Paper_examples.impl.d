lib/workloads/paper_examples.ml: Machine Minic
