lib/workloads/libc_prelude.ml:
