lib/workloads/osip_sim.ml: Buffer Dart_util List Printf
