lib/workloads/sip_parser.ml: Libc_prelude
