lib/workloads/needham_schroeder.ml: Printf
