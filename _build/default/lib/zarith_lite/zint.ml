(* Sign-magnitude bignums in base 2^15 (little-endian limb array).

   The base is small enough that a limb product (30 bits) plus carries
   never approaches the native-int range, so schoolbook multiplication
   needs no special carry handling. Invariants: [sign] is -1, 0 or 1;
   [sign = 0] iff [mag] is empty; the top limb of [mag] is non-zero. *)

let base_bits = 15
let base = 1 lsl base_bits
let base_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* ---- magnitude helpers -------------------------------------------------- *)

let mag_is_zero m = Array.length m = 0

let trim m =
  let n = ref (Array.length m) in
  while !n > 0 && m.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length m then m else Array.sub m 0 !n

let mag_of_abs_int v =
  (* [v] must be non-negative. *)
  if v = 0 then [||]
  else begin
    let rec limbs acc v = if v = 0 then acc else limbs (v land base_mask :: acc) (v lsr base_bits) in
    let l = List.rev (limbs [] v) in
    Array.of_list l
  end

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  trim r

(* Requires [cmp_mag a b >= 0]. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let db = if i < lb then b.(i) else 0 in
    let s = a.(i) - db - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  trim r

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- s land base_mask;
        carry := s lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land base_mask;
        carry := s lsr base_bits;
        incr k
      done
    done;
    trim r
  end

let mul_mag_small m d =
  (* [0 <= d < base] *)
  if d = 0 || mag_is_zero m then [||]
  else begin
    let l = Array.length m in
    let r = Array.make (l + 1) 0 in
    let carry = ref 0 in
    for i = 0 to l - 1 do
      let s = (m.(i) * d) + !carry in
      r.(i) <- s land base_mask;
      carry := s lsr base_bits
    done;
    r.(l) <- !carry;
    trim r
  end

(* Shift left by [k] whole limbs. *)
let shl_limbs m k =
  if mag_is_zero m then [||]
  else begin
    let l = Array.length m in
    let r = Array.make (l + k) 0 in
    Array.blit m 0 r k l;
    r
  end

(* Long division of magnitudes: returns (quotient, remainder).
   Quotient digits are found by binary search, which keeps the code
   simple and obviously correct; operand sizes in this project are
   small (solver coefficients), so the extra log(base) factor is
   irrelevant. *)
let divmod_mag a b =
  if mag_is_zero b then raise Division_by_zero;
  if cmp_mag a b < 0 then ([||], a)
  else begin
    let la = Array.length a and lb = Array.length b in
    let qlen = la - lb + 1 in
    let q = Array.make qlen 0 in
    let rem = ref a in
    for pos = qlen - 1 downto 0 do
      let shifted = shl_limbs b pos in
      (* Largest digit d with d * shifted <= rem. *)
      let lo = ref 0 and hi = ref (base - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if cmp_mag (mul_mag_small shifted mid) !rem <= 0 then lo := mid else hi := mid - 1
      done;
      q.(pos) <- !lo;
      if !lo > 0 then rem := sub_mag !rem (mul_mag_small shifted !lo)
    done;
    (trim q, !rem)
  end

(* ---- signed interface ---------------------------------------------------- *)

let make sign mag = if mag_is_zero mag then zero else { sign; mag }

let of_int v =
  if v = 0 then zero
  else if v > 0 then { sign = 1; mag = mag_of_abs_int v }
  else if v = min_int then
    (* [-min_int] overflows; build from halves. *)
    let half = { sign = -1; mag = mag_of_abs_int (-(min_int / 2)) } in
    let twice = { sign = -1; mag = add_mag half.mag half.mag } in
    twice
  else { sign = -1; mag = mag_of_abs_int (-v) }

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let sign z = z.sign
let is_zero z = z.sign = 0
let neg z = make (-z.sign) z.mag
let abs z = make (abs z.sign) z.mag

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then cmp_mag a.mag b.mag
  else cmp_mag b.mag a.mag

let equal a b = compare a b = 0
let is_one z = equal z one
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let hash z =
  Array.fold_left (fun acc d -> (acc * 31) + d) (z.sign + 7) z.mag

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (add_mag a.mag b.mag)
  else begin
    let c = cmp_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (sub_mag a.mag b.mag)
    else make b.sign (sub_mag b.mag a.mag)
  end

let sub a b = add a (neg b)
let succ a = add a one
let pred a = sub a one

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (mul_mag a.mag b.mag)

let div_rem a b =
  if b.sign = 0 then raise Division_by_zero;
  let qm, rm = divmod_mag a.mag b.mag in
  let q = make (a.sign * b.sign) qm in
  let r = make a.sign rm in
  (q, r)

let div a b = fst (div_rem a b)
let rem a b = snd (div_rem a b)

let fdiv a b =
  let q, r = div_rem a b in
  if is_zero r || sign r = sign b then q else pred q

let cdiv a b =
  let q, r = div_rem a b in
  if is_zero r || sign r <> sign b then q else succ q

let rec gcd a b = if is_zero b then abs a else gcd b (rem a b)

let lcm a b =
  if is_zero a || is_zero b then zero
  else abs (mul (div a (gcd a b)) b)

let mul_int a k = mul a (of_int k)
let add_int a k = add a (of_int k)

let pow b n =
  if n < 0 then invalid_arg "Zint.pow: negative exponent";
  let rec go acc b n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc b) (mul b b) (n lsr 1)
    else go acc (mul b b) (n lsr 1)
  in
  go one b n

let fits_int z =
  (* Conservative: up to 4 limbs is at most 60 bits, always fits. *)
  let l = Array.length z.mag in
  if l <= 4 then true
  else begin
    let lo = of_int Stdlib.min_int and hi = of_int Stdlib.max_int in
    compare lo z <= 0 && compare z hi <= 0
  end

let to_int_opt z =
  if not (fits_int z) then None
  else begin
    let v = Array.fold_right (fun d acc -> (acc lsl base_bits) lor d) z.mag 0 in
    Some (if z.sign < 0 then -v else v)
  end

let to_int z =
  match to_int_opt z with
  | Some v -> v
  | None -> failwith "Zint.to_int: overflow"

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Zint.of_string: empty string";
  let neg_sign, start =
    match s.[0] with
    | '-' -> (true, 1)
    | '+' -> (false, 1)
    | _ -> (false, 0)
  in
  if start >= n then invalid_arg "Zint.of_string: no digits";
  let acc = ref zero in
  let ten = of_int 10 in
  for i = start to n - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Zint.of_string: bad digit";
    acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
  done;
  if neg_sign then neg !acc else !acc

let to_string z =
  if is_zero z then "0"
  else begin
    let chunk = of_int 10000 in
    let buf = Buffer.create 16 in
    let rec go m acc =
      if is_zero m then acc
      else begin
        let q, r = div_rem m chunk in
        go q (to_int r :: acc)
      end
    in
    let chunks = go (abs z) [] in
    if z.sign < 0 then Buffer.add_char buf '-';
    (match chunks with
     | [] -> assert false
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%04d" c)) rest);
    Buffer.contents buf
  end

let pp fmt z = Format.pp_print_string fmt (to_string z)
