(** Arbitrary-precision signed integers.

    A small, dependency-free bignum implementation used by the linear
    constraint solver, where intermediate simplex coefficients can
    exceed the native integer range. Values are immutable. *)

type t

val zero : t
val one : t
val two : t
val minus_one : t

val of_int : int -> t

val to_int : t -> int
(** [to_int z] is the native integer equal to [z].
    @raise Failure if [z] does not fit in a native [int]. *)

val to_int_opt : t -> int option
val fits_int : t -> bool

val of_string : string -> t
(** Parses an optional sign followed by decimal digits.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

val div_rem : t -> t -> t * t
(** Truncated division: [div_rem a b = (q, r)] with [a = q*b + r],
    [|r| < |b|] and [r] having the sign of [a].
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val fdiv : t -> t -> t
(** Floor division: rounds toward negative infinity. *)

val cdiv : t -> t -> t
(** Ceiling division: rounds toward positive infinity. *)

val gcd : t -> t -> t
(** Greatest common divisor; always non-negative. [gcd zero zero = zero]. *)

val lcm : t -> t -> t

val mul_int : t -> int -> t
val add_int : t -> int -> t

val sign : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val is_one : t -> bool
val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int

val pow : t -> int -> t
(** [pow b n] is [b] raised to the non-negative power [n].
    @raise Invalid_argument if [n < 0]. *)

val pp : Format.formatter -> t -> unit
