(** Exact rational numbers over {!Zint}.

    Values are kept in canonical form: the denominator is positive and
    the numerator and denominator are coprime. Used by the simplex
    solver, where pivoting must be exact. *)

type t

val zero : t
val one : t
val minus_one : t

val make : Zint.t -> Zint.t -> t
(** [make num den] is the rational [num/den] in canonical form.
    @raise Division_by_zero if [den] is zero. *)

val of_zint : Zint.t -> t
val of_int : int -> t
val of_ints : int -> int -> t

val num : t -> Zint.t
val den : t -> Zint.t

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val inv : t -> t

val sign : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val min : t -> t -> t
val max : t -> t -> t

val is_integer : t -> bool
val floor : t -> Zint.t
val ceil : t -> Zint.t

val to_zint : t -> Zint.t
(** @raise Failure if the value is not an integer. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
