type t = { num : Zint.t; den : Zint.t }

let make num den =
  if Zint.is_zero den then raise Division_by_zero;
  if Zint.is_zero num then { num = Zint.zero; den = Zint.one }
  else begin
    let g = Zint.gcd num den in
    let num = Zint.div num g and den = Zint.div den g in
    if Zint.sign den < 0 then { num = Zint.neg num; den = Zint.neg den }
    else { num; den }
  end

let of_zint z = { num = z; den = Zint.one }
let of_int i = of_zint (Zint.of_int i)
let of_ints n d = make (Zint.of_int n) (Zint.of_int d)

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let num q = q.num
let den q = q.den

let neg q = { q with num = Zint.neg q.num }
let abs q = { q with num = Zint.abs q.num }

let add a b =
  make (Zint.add (Zint.mul a.num b.den) (Zint.mul b.num a.den)) (Zint.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = make (Zint.mul a.num b.num) (Zint.mul a.den b.den)
let div a b = make (Zint.mul a.num b.den) (Zint.mul a.den b.num)
let inv a = make a.den a.num

let sign q = Zint.sign q.num
let compare a b = Zint.compare (Zint.mul a.num b.den) (Zint.mul b.num a.den)
let equal a b = compare a b = 0
let is_zero q = Zint.is_zero q.num
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let is_integer q = Zint.is_one q.den
let floor q = Zint.fdiv q.num q.den
let ceil q = Zint.cdiv q.num q.den

let to_zint q =
  if is_integer q then q.num else failwith "Qnum.to_zint: not an integer"

let to_string q =
  if is_integer q then Zint.to_string q.num
  else Zint.to_string q.num ^ "/" ^ Zint.to_string q.den

let pp fmt q = Format.pp_print_string fmt (to_string q)
