lib/zarith_lite/qnum.ml: Format Zint
