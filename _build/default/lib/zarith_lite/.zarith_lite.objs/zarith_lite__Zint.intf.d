lib/zarith_lite/zint.mli: Format
