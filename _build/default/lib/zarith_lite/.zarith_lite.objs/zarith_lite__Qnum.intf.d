lib/zarith_lite/qnum.mli: Format Zint
