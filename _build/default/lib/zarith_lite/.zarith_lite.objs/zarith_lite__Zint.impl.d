lib/zarith_lite/zint.ml: Array Buffer Char Format List Printf Stdlib String
