lib/machine/memory.ml: Hashtbl
