lib/machine/memory.mli:
