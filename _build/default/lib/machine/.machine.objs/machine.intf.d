lib/machine/machine.mli: Memory Minic Ram
