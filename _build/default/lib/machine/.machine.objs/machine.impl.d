lib/machine/machine.ml: Array Char Dart_util Hashtbl Instr List Memory Minic Option Printf Ram String
