(** Word-addressed memory for the RAM machine.

    Cells are 32-bit words. The map distinguishes unmapped addresses
    (never allocated — reads and writes fault), allocated-but-undefined
    cells (reads fault, catching uninitialized and use-after-free
    accesses), and defined cells. *)

type t

type read_error =
  | Unmapped
  | Undefined

val create : unit -> t

val alloc : t -> addr:int -> size:int -> unit
(** Mark [size] cells starting at [addr] as allocated and undefined. *)

val dealloc : t -> addr:int -> size:int -> unit
(** Unmap cells, so later access faults (dangling pointers). *)

val is_mapped : t -> int -> bool

val read : t -> int -> (int, read_error) result

val write : t -> int -> int -> (unit, read_error) result
(** [write mem addr v] stores [v]; fails with [Unmapped] if [addr] was
    never allocated. *)

val write_init : t -> int -> int -> unit
(** Allocate-and-write in one step (used for loading globals, strings,
    and machine-internal cells). *)

val defined_count : t -> int
(** Number of cells currently holding a defined value (statistics). *)
