type cell =
  | Undef
  | Val of int

type read_error =
  | Unmapped
  | Undefined

type t = { cells : (int, cell) Hashtbl.t }

let create () = { cells = Hashtbl.create 1024 }

let alloc t ~addr ~size =
  for a = addr to addr + size - 1 do
    Hashtbl.replace t.cells a Undef
  done

let dealloc t ~addr ~size =
  for a = addr to addr + size - 1 do
    Hashtbl.remove t.cells a
  done

let is_mapped t a = Hashtbl.mem t.cells a

let read t a =
  match Hashtbl.find_opt t.cells a with
  | None -> Error Unmapped
  | Some Undef -> Error Undefined
  | Some (Val v) -> Ok v

let write t a v =
  if Hashtbl.mem t.cells a then begin
    Hashtbl.replace t.cells a (Val v);
    Ok ()
  end
  else Error Unmapped

let write_init t a v = Hashtbl.replace t.cells a (Val v)

let defined_count t =
  Hashtbl.fold (fun _ c acc -> match c with Val _ -> acc + 1 | Undef -> acc) t.cells 0
