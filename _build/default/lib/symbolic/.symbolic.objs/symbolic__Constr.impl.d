lib/symbolic/constr.ml: Format Linexpr Minic Printf Zarith_lite Zint
