lib/symbolic/symmem.ml: Hashtbl Linexpr
