lib/symbolic/symmem.mli: Linexpr
