lib/symbolic/linexpr.mli: Format Zarith_lite
