lib/symbolic/linexpr.ml: Format Fun List Printf Stdlib String Zarith_lite Zint
