lib/symbolic/constr.mli: Format Linexpr Minic Zarith_lite
