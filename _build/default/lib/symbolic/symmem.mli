(** The symbolic memory S of paper §2.2: a map from concrete cell
    addresses to the linear expression currently stored there.

    Addresses bound to a non-constant expression are "symbolic"; all
    other cells are implicitly the constant in concrete memory. Storing
    a constant therefore just removes the binding. *)

type t

val create : unit -> t
val clear : t -> unit

val bind : t -> addr:int -> Linexpr.t -> unit
(** Bind an address; a constant expression erases instead. *)

val erase : t -> addr:int -> unit

val lookup : t -> addr:int -> Linexpr.t option
(** [None] means the cell is concrete-only. *)

val symbolic_count : t -> int
val iter : (int -> Linexpr.t -> unit) -> t -> unit
