type t = { tbl : (int, Linexpr.t) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }
let clear t = Hashtbl.reset t.tbl

let erase t ~addr = Hashtbl.remove t.tbl addr

let bind t ~addr e =
  match Linexpr.is_const e with
  | Some _ -> erase t ~addr
  | None -> Hashtbl.replace t.tbl addr e

let lookup t ~addr = Hashtbl.find_opt t.tbl addr

let symbolic_count t = Hashtbl.length t.tbl
let iter f t = Hashtbl.iter f t.tbl
