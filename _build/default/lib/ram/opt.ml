open Minic

(* An expression that can neither trap nor read memory; only such
   subexpressions may be discarded by algebraic identities. *)
let rec is_effect_free (e : Instr.rexpr) =
  match e with
  | Instr.Const _ | Instr.Addr_global _ | Instr.Addr_local _ | Instr.Addr_string _ -> true
  | Instr.Load _ -> false (* may fault *)
  | Instr.Unop (_, e1) -> is_effect_free e1
  | Instr.Binop ((Ast.Div | Ast.Mod), _, _) -> false (* may trap *)
  | Instr.Binop (_, a, b) -> is_effect_free a && is_effect_free b

let rec fold_rexpr (e : Instr.rexpr) : Instr.rexpr =
  let module W = Dart_util.Word32 in
  match e with
  | Instr.Const _ | Instr.Addr_global _ | Instr.Addr_local _ | Instr.Addr_string _ -> e
  | Instr.Load a -> Instr.Load (fold_rexpr a)
  | Instr.Unop (op, e1) ->
    let f1 = fold_rexpr e1 in
    (match (op, f1) with
     | Ast.Neg, Instr.Const v -> Instr.Const (W.neg v)
     | Ast.Bitnot, Instr.Const v -> Instr.Const (W.lognot v)
     | Ast.Lognot, Instr.Const v -> Instr.Const (W.of_bool (not (W.to_bool v)))
     (* double negations *)
     | Ast.Neg, Instr.Unop (Ast.Neg, inner) -> inner
     | Ast.Bitnot, Instr.Unop (Ast.Bitnot, inner) -> inner
     | _ -> Instr.Unop (op, f1))
  | Instr.Binop (op, a, b) ->
    let fa = fold_rexpr a and fb = fold_rexpr b in
    (match (op, fa, fb) with
     (* Full constant folding; division by a constant zero is kept so
        the machine faults exactly as the original would. *)
     | _, Instr.Const x, Instr.Const y ->
       (match op with
        | Ast.Add -> Instr.Const (W.add x y)
        | Ast.Sub -> Instr.Const (W.sub x y)
        | Ast.Mul -> Instr.Const (W.mul x y)
        | Ast.Div -> if y = 0 then Instr.Binop (op, fa, fb) else Instr.Const (W.div x y)
        | Ast.Mod -> if y = 0 then Instr.Binop (op, fa, fb) else Instr.Const (W.rem x y)
        | Ast.Eq -> Instr.Const (W.of_bool (x = y))
        | Ast.Ne -> Instr.Const (W.of_bool (x <> y))
        | Ast.Lt -> Instr.Const (W.of_bool (x < y))
        | Ast.Le -> Instr.Const (W.of_bool (x <= y))
        | Ast.Gt -> Instr.Const (W.of_bool (x > y))
        | Ast.Ge -> Instr.Const (W.of_bool (x >= y))
        | Ast.Band -> Instr.Const (W.logand x y)
        | Ast.Bor -> Instr.Const (W.logor x y)
        | Ast.Bxor -> Instr.Const (W.logxor x y)
        | Ast.Shl -> Instr.Const (W.shift_left x y)
        | Ast.Shr -> Instr.Const (W.shift_right x y))
     (* Identities on a trap-free other operand. *)
     | Ast.Add, e1, Instr.Const 0 | Ast.Add, Instr.Const 0, e1 -> e1
     | Ast.Sub, e1, Instr.Const 0 -> e1
     | Ast.Mul, e1, Instr.Const 1 | Ast.Mul, Instr.Const 1, e1 -> e1
     | Ast.Mul, e1, Instr.Const 0 when is_effect_free e1 -> Instr.Const 0
     | Ast.Mul, Instr.Const 0, e1 when is_effect_free e1 -> Instr.Const 0
     | Ast.Band, e1, Instr.Const 0 when is_effect_free e1 -> Instr.Const 0
     | Ast.Band, Instr.Const 0, e1 when is_effect_free e1 -> Instr.Const 0
     | Ast.Bor, e1, Instr.Const 0 | Ast.Bor, Instr.Const 0, e1 -> e1
     | Ast.Bxor, e1, Instr.Const 0 | Ast.Bxor, Instr.Const 0, e1 -> e1
     | Ast.Div, e1, Instr.Const 1 -> e1
     | Ast.Shl, e1, Instr.Const 0 | Ast.Shr, e1, Instr.Const 0 -> e1
     | _ -> Instr.Binop (op, fa, fb))

(* Follow chains of unconditional gotos (cycle-safe). *)
let thread_target code l =
  let rec follow seen l =
    if List.mem l seen then l
    else begin
      match code.(l) with
      | Instr.Igoto l' -> follow (l :: seen) l'
      | _ -> l
    end
  in
  follow [] l

let optimize_func (f : Instr.func) : Instr.func =
  let code = Array.copy f.Instr.code in
  (* Pass 1: fold expressions. *)
  Array.iteri
    (fun i instr ->
      code.(i) <-
        (match instr with
         | Instr.Iassign (d, s) -> Instr.Iassign (fold_rexpr d, fold_rexpr s)
         | Instr.Iif (c, l) -> Instr.Iif (fold_rexpr c, l)
         | Instr.Icall { dst; kind; callee; args } ->
           Instr.Icall
             { dst = Option.map fold_rexpr dst;
               kind;
               callee;
               args = List.map fold_rexpr args }
         | Instr.Ireturn e -> Instr.Ireturn (Option.map fold_rexpr e)
         | Instr.Igoto _ | Instr.Iabort | Instr.Ihalt -> instr))
    code;
  (* Pass 2: constant branches become gotos (or fall-throughs). *)
  Array.iteri
    (fun i instr ->
      match instr with
      | Instr.Iif (Instr.Const c, l) ->
        code.(i) <- Instr.Igoto (if Dart_util.Word32.to_bool c then l else i + 1)
      | _ -> ())
    code;
  (* Pass 3: jump threading through goto chains. *)
  Array.iteri
    (fun i instr ->
      match instr with
      | Instr.Igoto l -> code.(i) <- Instr.Igoto (thread_target code l)
      | Instr.Iif (c, l) -> code.(i) <- Instr.Iif (c, thread_target code l)
      | _ -> ())
    code;
  { f with Instr.code }

let optimize_program (p : Instr.program) : Instr.program =
  let funcs = Hashtbl.create (Hashtbl.length p.Instr.funcs) in
  Hashtbl.iter (fun name f -> Hashtbl.replace funcs name (optimize_func f)) p.Instr.funcs;
  { p with Instr.funcs }
