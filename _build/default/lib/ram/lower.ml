exception Error of Minic.Loc.t * string

open Minic

(* Instructions are emitted with symbolic label ids, then resolved to
   positions in a final pass. *)
type semi =
  | Splain of Instr.instr (* no label operand *)
  | Sif of Instr.rexpr * int (* label id *)
  | Sgoto of int
  | Slabel of int (* marks a position; emits nothing *)

type emitter = {
  mutable rev_code : (semi * Minic.Loc.t) list;
  mutable cur_loc : Minic.Loc.t;
  mutable next_label : int;
  mutable next_temp : int; (* next free temp cell offset *)
  slot_off : (int, int) Hashtbl.t; (* typechecker slot id -> frame offset *)
  intern : string -> int;
  mutable break_labels : int list;
  mutable continue_labels : int list;
}

let emit em s = em.rev_code <- (s, em.cur_loc) :: em.rev_code

let fresh_label em =
  let l = em.next_label in
  em.next_label <- l + 1;
  l

let place_label em l = emit em (Slabel l)

let fresh_temp em =
  let off = em.next_temp in
  em.next_temp <- off + 1;
  off

let slot_offset em loc slot =
  match Hashtbl.find_opt em.slot_off slot with
  | Some off -> off
  | None -> raise (Error (loc, Printf.sprintf "internal: unknown slot %d" slot))

(* Smart constructors fold constants so that address arithmetic for
   fixed offsets stays readable in dumps. *)
let add_rexpr a b =
  match (a, b) with
  | Instr.Const 0, e | e, Instr.Const 0 -> e
  | Instr.Const x, Instr.Const y -> Instr.Const (Dart_util.Word32.add x y)
  | _ -> Instr.Binop (Ast.Add, a, b)

let mul_rexpr a b =
  match (a, b) with
  | Instr.Const 1, e | e, Instr.Const 1 -> e
  | Instr.Const x, Instr.Const y -> Instr.Const (Dart_util.Word32.mul x y)
  | _ -> Instr.Binop (Ast.Mul, a, b)

let rec addr_of em (e : Tast.texpr) : Instr.rexpr =
  match e.tdesc with
  | Tast.Tvar (Tast.Vglobal g, _) -> Instr.Addr_global g
  | Tast.Tvar (Tast.Vlocal slot, _) -> Instr.Addr_local (slot_offset em e.tloc slot)
  | Tast.Tderef p -> lower_expr em p
  | Tast.Tfield (lv, _, off) -> add_rexpr (addr_of em lv) (Instr.Const off)
  | Tast.Tindex (lv, idx, elem_size) ->
    let i = lower_expr em idx in
    add_rexpr (addr_of em lv) (mul_rexpr i (Instr.Const elem_size))
  | Tast.Tdecay lv -> addr_of em lv
  | Tast.Tconst _ | Tast.Tstring _ | Tast.Tunop _ | Tast.Tbinop _ | Tast.Tptradd _
  | Tast.Tand _ | Tast.Tor _ | Tast.Tcond _ | Tast.Tcall _ | Tast.Taddr _ | Tast.Tcast _ ->
    raise (Error (e.tloc, "internal: not an lvalue"))

and lower_expr em (e : Tast.texpr) : Instr.rexpr =
  match e.tdesc with
  | Tast.Tconst n -> Instr.Const (Dart_util.Word32.norm n)
  | Tast.Tstring s -> Instr.Addr_string (em.intern s)
  | Tast.Tvar _ | Tast.Tderef _ | Tast.Tfield _ | Tast.Tindex _ ->
    Instr.Load (addr_of em e)
  | Tast.Tdecay lv | Tast.Taddr lv -> addr_of em lv
  | Tast.Tptradd (p, i, scale) ->
    add_rexpr (lower_expr em p) (mul_rexpr (lower_expr em i) (Instr.Const scale))
  | Tast.Tcast (Ctype.Tchar, e1) ->
    Instr.Binop (Ast.Band, lower_expr em e1, Instr.Const 255)
  | Tast.Tcast (_, e1) -> lower_expr em e1
  | Tast.Tunop (op, e1) -> Instr.Unop (op, lower_expr em e1)
  | Tast.Tbinop (op, a, b) -> Instr.Binop (op, lower_expr em a, lower_expr em b)
  | Tast.Tand (a, b) ->
    (* t <- 0; if !a goto end; if !b goto end; t <- 1; end: *)
    let t = Instr.Addr_local (fresh_temp em) in
    let l_end = fresh_label em in
    emit em (Splain (Instr.Iassign (t, Instr.Const 0)));
    lower_branch_false em a l_end;
    lower_branch_false em b l_end;
    emit em (Splain (Instr.Iassign (t, Instr.Const 1)));
    place_label em l_end;
    Instr.Load t
  | Tast.Tor (a, b) ->
    let t = Instr.Addr_local (fresh_temp em) in
    let l_end = fresh_label em in
    emit em (Splain (Instr.Iassign (t, Instr.Const 1)));
    lower_branch_true em a l_end;
    lower_branch_true em b l_end;
    emit em (Splain (Instr.Iassign (t, Instr.Const 0)));
    place_label em l_end;
    Instr.Load t
  | Tast.Tcond (c, a, b) ->
    let t = Instr.Addr_local (fresh_temp em) in
    let l_else = fresh_label em and l_end = fresh_label em in
    lower_branch_false em c l_else;
    let va = lower_expr em a in
    emit em (Splain (Instr.Iassign (t, va)));
    emit em (Sgoto l_end);
    place_label em l_else;
    let vb = lower_expr em b in
    emit em (Splain (Instr.Iassign (t, vb)));
    place_label em l_end;
    Instr.Load t
  | Tast.Tcall (kind, callee, args) -> lower_call em ~want_value:true kind callee args e.tloc

(* Jump to [l] when [e] is false; fall through when true. Short-circuit
   operators expand into one RAM conditional per atomic condition, as a
   CIL-based instrumentation would. *)
and lower_branch_false em (e : Tast.texpr) l =
  match e.tdesc with
  | Tast.Tand (a, b) ->
    lower_branch_false em a l;
    lower_branch_false em b l
  | Tast.Tor (a, b) ->
    let l_true = fresh_label em in
    lower_branch_true em a l_true;
    lower_branch_false em b l;
    place_label em l_true
  | Tast.Tunop (Ast.Lognot, e1) -> lower_branch_true em e1 l
  | _ ->
    let v = lower_expr em e in
    emit em (Sif (Instr.Unop (Ast.Lognot, v), l))

and lower_branch_true em (e : Tast.texpr) l =
  match e.tdesc with
  | Tast.Tand (a, b) ->
    let l_false = fresh_label em in
    lower_branch_false em a l_false;
    lower_branch_true em b l;
    place_label em l_false
  | Tast.Tor (a, b) ->
    lower_branch_true em a l;
    lower_branch_true em b l
  | Tast.Tunop (Ast.Lognot, e1) -> lower_branch_false em e1 l
  | _ ->
    let v = lower_expr em e in
    emit em (Sif (v, l))

and lower_call em ~want_value kind callee args loc : Instr.rexpr =
  let targs = List.map (lower_expr em) args in
  match kind with
  | Tast.Cbuiltin Tast.Babort ->
    emit em (Splain Instr.Iabort);
    Instr.Const 0
  | Tast.Cbuiltin Tast.Bassert ->
    (* if e goto ok; abort; ok: — the condition becomes a directable
       branch, so the directed search can steer toward violations. *)
    let l_ok = fresh_label em in
    (match targs with
     | [ v ] ->
       emit em (Sif (v, l_ok));
       emit em (Splain Instr.Iabort);
       place_label em l_ok
     | _ -> raise (Error (loc, "assert takes one argument")));
    Instr.Const 0
  | Tast.Cbuiltin Tast.Bassume ->
    let l_ok = fresh_label em in
    (match targs with
     | [ v ] ->
       emit em (Sif (v, l_ok));
       emit em (Splain Instr.Ihalt);
       place_label em l_ok
     | _ -> raise (Error (loc, "assume takes one argument")));
    Instr.Const 0
  | Tast.Cbuiltin (Tast.Bmalloc | Tast.Balloca | Tast.Bfree)
  | Tast.Cprogram | Tast.Cexternal | Tast.Clibrary ->
    let dst =
      if want_value then Some (Instr.Addr_local (fresh_temp em)) else None
    in
    emit em (Splain (Instr.Icall { dst; kind; callee; args = targs }));
    (match dst with
     | Some d -> Instr.Load d
     | None -> Instr.Const 0)

(* Best-effort source position for a statement (locations live on
   expressions in the typed AST). *)
let stmt_loc (s : Tast.tstmt) =
  match s with
  | Tast.TSexpr e
  | Tast.TSassign (e, _)
  | Tast.TSif (e, _, _)
  | Tast.TSwhile (e, _)
  | Tast.TSdowhile (_, e)
  | Tast.TSreturn (Some e)
  | Tast.TSfor (_, Some e, _, _)
  | Tast.TSdecl (_, _, Some e)
  | Tast.TSswitch (e, _) ->
    Some e.Tast.tloc
  | Tast.TSreturn None | Tast.TSfor (_, None, _, _) | Tast.TSdecl (_, _, None)
  | Tast.TSbreak | Tast.TScontinue | Tast.TSblock _ ->
    None

let rec lower_stmt em (s : Tast.tstmt) : unit =
  (match stmt_loc s with
   | Some l when l != Loc.dummy -> em.cur_loc <- l
   | Some _ | None -> ());
  match s with
  | Tast.TSexpr e ->
    (match e.tdesc with
     | Tast.Tcall (kind, callee, args) ->
       ignore (lower_call em ~want_value:false kind callee args e.tloc)
     | _ ->
       (* Pure expressions still get evaluated, so faults inside them
          (e.g. division by zero) surface at the right point. *)
       let v = lower_expr em e in
       let t = Instr.Addr_local (fresh_temp em) in
       emit em (Splain (Instr.Iassign (t, v))))
  | Tast.TSassign (lv, rv) ->
    let v = lower_expr em rv in
    let addr = addr_of em lv in
    emit em (Splain (Instr.Iassign (addr, v)))
  | Tast.TSif (c, b1, b2) ->
    let l_else = fresh_label em and l_end = fresh_label em in
    lower_branch_false em c l_else;
    List.iter (lower_stmt em) b1;
    emit em (Sgoto l_end);
    place_label em l_else;
    List.iter (lower_stmt em) b2;
    place_label em l_end
  | Tast.TSwhile (c, body) ->
    let l_cond = fresh_label em and l_end = fresh_label em in
    place_label em l_cond;
    lower_branch_false em c l_end;
    em.break_labels <- l_end :: em.break_labels;
    em.continue_labels <- l_cond :: em.continue_labels;
    List.iter (lower_stmt em) body;
    em.break_labels <- List.tl em.break_labels;
    em.continue_labels <- List.tl em.continue_labels;
    emit em (Sgoto l_cond);
    place_label em l_end
  | Tast.TSdowhile (body, c) ->
    let l_start = fresh_label em and l_cond = fresh_label em and l_end = fresh_label em in
    place_label em l_start;
    em.break_labels <- l_end :: em.break_labels;
    em.continue_labels <- l_cond :: em.continue_labels;
    List.iter (lower_stmt em) body;
    em.break_labels <- List.tl em.break_labels;
    em.continue_labels <- List.tl em.continue_labels;
    place_label em l_cond;
    lower_branch_true em c l_start;
    place_label em l_end
  | Tast.TSfor (init, cond, step, body) ->
    let l_cond = fresh_label em
    and l_step = fresh_label em
    and l_end = fresh_label em in
    List.iter (lower_stmt em) init;
    place_label em l_cond;
    (match cond with None -> () | Some c -> lower_branch_false em c l_end);
    em.break_labels <- l_end :: em.break_labels;
    em.continue_labels <- l_step :: em.continue_labels;
    List.iter (lower_stmt em) body;
    em.break_labels <- List.tl em.break_labels;
    em.continue_labels <- List.tl em.continue_labels;
    place_label em l_step;
    List.iter (lower_stmt em) step;
    emit em (Sgoto l_cond);
    place_label em l_end
  | Tast.TSreturn None -> emit em (Splain (Instr.Ireturn None))
  | Tast.TSreturn (Some e) ->
    let v = lower_expr em e in
    emit em (Splain (Instr.Ireturn (Some v)))
  | Tast.TSbreak ->
    (match em.break_labels with
     | l :: _ -> emit em (Sgoto l)
     | [] -> raise (Error (Loc.dummy, "internal: break outside loop")))
  | Tast.TScontinue ->
    (match em.continue_labels with
     | l :: _ -> emit em (Sgoto l)
     | [] -> raise (Error (Loc.dummy, "internal: continue outside loop")))
  | Tast.TSdecl (slot, _, init) ->
    (match init with
     | None -> ()
     | Some e ->
       let v = lower_expr em e in
       let off = slot_offset em Loc.dummy slot in
       emit em (Splain (Instr.Iassign (Instr.Addr_local off, v))))
  | Tast.TSswitch (scrutinee, groups) ->
    (* Dispatch: one conditional per case value (each individually
       directable by the search), then default or exit. Bodies are laid
       out in order so fallthrough is just fallthrough. *)
    let v = lower_expr em scrutinee in
    let t = Instr.Addr_local (fresh_temp em) in
    emit em (Splain (Instr.Iassign (t, v)));
    let l_end = fresh_label em in
    let group_labels = List.map (fun _ -> fresh_label em) groups in
    let default_label = ref l_end in
    List.iter2
      (fun (g : Tast.tswitch_case) lbl ->
        List.iter
          (fun value ->
            emit em
              (Sif (Instr.Binop (Ast.Eq, Instr.Load t, Instr.Const value), lbl)))
          g.Tast.tcase_values;
        if g.Tast.tcase_default then default_label := lbl)
      groups group_labels;
    emit em (Sgoto !default_label);
    em.break_labels <- l_end :: em.break_labels;
    List.iter2
      (fun (g : Tast.tswitch_case) lbl ->
        place_label em lbl;
        List.iter (lower_stmt em) g.Tast.tcase_body)
      groups group_labels;
    em.break_labels <- List.tl em.break_labels;
    place_label em l_end
  | Tast.TSblock b -> List.iter (lower_stmt em) b

(* Resolve symbolic labels to instruction indices. *)
let assemble rev_code =
  let semis = List.rev rev_code in
  let positions : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let pos = ref 0 in
  List.iter
    (fun (s, _) ->
      match s with
      | Slabel l -> Hashtbl.replace positions l !pos
      | Splain _ | Sif _ | Sgoto _ -> incr pos)
    semis;
  let resolve l =
    match Hashtbl.find_opt positions l with
    | Some p -> p
    | None -> raise (Error (Loc.dummy, Printf.sprintf "internal: unplaced label %d" l))
  in
  let resolved =
    List.filter_map
      (fun (s, loc) ->
        match s with
        | Slabel _ -> None
        | Splain i -> Some (i, loc)
        | Sif (e, l) -> Some (Instr.Iif (e, resolve l), loc)
        | Sgoto l -> Some (Instr.Igoto (resolve l), loc))
      semis
  in
  (Array.of_list (List.map fst resolved), Array.of_list (List.map snd resolved))

let lower_func structs intern (f : Tast.tfunc) : Instr.func =
  let slot_off : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let frame = ref 0 in
  List.iter
    (fun (slot, _, ty) ->
      Hashtbl.replace slot_off slot !frame;
      frame := !frame + Ctype.sizeof structs ty)
    f.Tast.tlocals;
  let em =
    { rev_code = [];
      cur_loc = f.Tast.tfloc;
      next_label = 0;
      next_temp = !frame;
      slot_off;
      intern;
      break_labels = [];
      continue_labels = [] }
  in
  List.iter (lower_stmt em) f.Tast.tbody;
  emit em (Splain (Instr.Ireturn None));
  let code, locs = assemble em.rev_code in
  let param_offsets =
    Array.of_list
      (List.map (fun (slot, _, _) -> Hashtbl.find slot_off slot) f.Tast.tparams)
  in
  { Instr.fname = f.Tast.tfname;
    nparams = List.length f.Tast.tparams;
    param_offsets;
    frame_size = em.next_temp;
    code;
    locs;
    slot_offsets = Array.of_seq (Hashtbl.to_seq slot_off);
    ret_ty = f.Tast.tret }

let lower_program (tp : Tast.tprogram) : Instr.program =
  let string_ids : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let rev_strings = ref [] in
  let count = ref 0 in
  let intern s =
    match Hashtbl.find_opt string_ids s with
    | Some i -> i
    | None ->
      let i = !count in
      incr count;
      Hashtbl.replace string_ids s i;
      rev_strings := s :: !rev_strings;
      i
  in
  let funcs : (string, Instr.func) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun f -> Hashtbl.replace funcs f.Tast.tfname (lower_func tp.Tast.structs intern f))
    tp.Tast.tfuncs;
  { Instr.funcs;
    globals = tp.Tast.tglobals;
    structs = tp.Tast.structs;
    strings = Array.of_list (List.rev !rev_strings);
    externals = tp.Tast.texternals;
    library = tp.Tast.tlibrary }

let lower_source ?(file = "<input>") ?(library = []) src =
  let ast = Parser.parse_program ~file src in
  let tp = Typecheck.check ~library ast in
  lower_program tp
