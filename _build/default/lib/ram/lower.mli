(** Lowering from the typed AST to the RAM-machine IR.

    Flattens nested calls, [&&], [||] and [?:] into statements with
    fresh frame temporaries; lowers [assert(e)] to
    [if e goto ok; abort] and [assume(e)] to [if e goto ok; halt], so
    both conditions become regular directable branches; resolves
    struct field and array offsets into address arithmetic. *)

exception Error of Minic.Loc.t * string

val lower_program : Minic.Tast.tprogram -> Instr.program

val lower_source : ?file:string -> ?library:Minic.Tast.fsig list -> string -> Instr.program
(** Parse, typecheck and lower in one step. Raises {!Minic.Parser.Error},
    {!Minic.Typecheck.Error} or {!Error}. *)
