lib/ram/lower.ml: Array Ast Ctype Dart_util Hashtbl Instr List Loc Minic Parser Printf Tast Typecheck
