lib/ram/opt.ml: Array Ast Dart_util Hashtbl Instr List Minic Option
