lib/ram/opt.mli: Instr
