lib/ram/instr.ml: Array Buffer Hashtbl List Minic Printf String
