lib/ram/lower.mli: Instr Minic
