(** The RAM-machine intermediate representation (paper §2.2).

    A program is a set of functions, each an array of labelled
    statements: assignments [m <- e], conditionals [if e goto l],
    calls, returns, [abort] and [halt]. Expressions are side-effect
    free; the lowering pass flattens calls, [&&]/[||] and [?:] into
    statements, so every conditional the machine executes corresponds
    to exactly one branch DART can direct. *)

type label = int (* index into the enclosing function's [code] array *)

(** Side-effect-free expressions. Addresses and values share one word
    type; [Load] reads the cell at the given address. *)
type rexpr =
  | Const of int
  | Load of rexpr
  | Addr_global of string
  | Addr_local of int (* cell offset within the current frame *)
  | Addr_string of int (* index into the program's interned strings *)
  | Unop of Minic.Ast.unop * rexpr
  | Binop of Minic.Ast.binop * rexpr * rexpr

type instr =
  | Iassign of rexpr * rexpr (* destination address, value *)
  | Iif of rexpr * label (* jump when the value is non-zero; else fall through *)
  | Igoto of label
  | Icall of {
      dst : rexpr option; (* address receiving the return value *)
      kind : Minic.Tast.call_kind;
      callee : string;
      args : rexpr list;
    }
  | Ireturn of rexpr option
  | Iabort (* program error (abort / failed assert) *)
  | Ihalt (* normal termination of the whole run (failed assume) *)

type func = {
  fname : string;
  nparams : int;
  param_offsets : int array; (* cell offset of each parameter in the frame *)
  frame_size : int; (* cells: parameters, locals, then lowering temporaries *)
  code : instr array;
  locs : Minic.Loc.t array; (* source location of each instruction *)
  slot_offsets : (int * int) array; (* typechecker slot id -> frame offset *)
  ret_ty : Minic.Ctype.t;
}

type program = {
  funcs : (string, func) Hashtbl.t;
  globals : Minic.Tast.tglobal list;
  structs : Minic.Ctype.struct_env;
  strings : string array;
  externals : Minic.Tast.fsig list;
  library : Minic.Tast.fsig list;
}

let find_func p name = Hashtbl.find_opt p.funcs name

(* ---- printing (for tests and debugging) ---------------------------------- *)

let rec rexpr_to_string = function
  | Const n -> string_of_int n
  | Load e -> Printf.sprintf "[%s]" (rexpr_to_string e)
  | Addr_global g -> "&" ^ g
  | Addr_local off -> Printf.sprintf "local+%d" off
  | Addr_string i -> Printf.sprintf "str#%d" i
  | Unop (op, e) -> Printf.sprintf "%s(%s)" (Minic.Pretty.unop_to_string op) (rexpr_to_string e)
  | Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (rexpr_to_string a)
      (Minic.Pretty.binop_to_string op)
      (rexpr_to_string b)

let instr_to_string = function
  | Iassign (dst, v) -> Printf.sprintf "[%s] <- %s" (rexpr_to_string dst) (rexpr_to_string v)
  | Iif (e, l) -> Printf.sprintf "if %s goto %d" (rexpr_to_string e) l
  | Igoto l -> Printf.sprintf "goto %d" l
  | Icall { dst; callee; args; _ } ->
    let dst_str =
      match dst with None -> "" | Some d -> Printf.sprintf "[%s] <- " (rexpr_to_string d)
    in
    Printf.sprintf "%scall %s(%s)" dst_str callee
      (String.concat ", " (List.map rexpr_to_string args))
  | Ireturn None -> "return"
  | Ireturn (Some e) -> Printf.sprintf "return %s" (rexpr_to_string e)
  | Iabort -> "abort"
  | Ihalt -> "halt"

let func_to_string f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s (params=%d, frame=%d):\n" f.fname f.nparams f.frame_size);
  Array.iteri
    (fun i ins -> Buffer.add_string buf (Printf.sprintf "  %3d: %s\n" i (instr_to_string ins)))
    f.code;
  Buffer.contents buf
