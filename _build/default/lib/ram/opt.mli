(** Optimization passes over RAM-machine code.

    Fault-preserving by construction: folds never erase a subexpression
    that could trap (loads, division), and division by a constant zero
    is left for the machine to fault on. Verified against the
    unoptimized semantics by differential testing on random programs. *)

val fold_rexpr : Instr.rexpr -> Instr.rexpr
(** Constant folding with exact 32-bit semantics, plus the algebraic
    identities that are safe on potentially-trapping operands
    ([e+0], [e*1], [e&&-style] branches are handled at the instruction
    level). *)

val optimize_func : Instr.func -> Instr.func
(** Constant folding, branch simplification ([if const goto]) and jump
    threading. Instruction positions are preserved (no deletion), so
    labels and the [locs] table stay valid. *)

val optimize_program : Instr.program -> Instr.program
