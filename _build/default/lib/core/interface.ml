(** Interface extraction (paper §3.1, technique 1).

    The external interface of a MiniC program is (a) its [extern]
    variables, (b) its external functions — prototypes without bodies
    that are not registered as host library functions — and (c) the
    parameters of the user-chosen toplevel function. All three are
    obtained by a static traversal of the typed program, with no alias
    analysis. *)

open Minic

type t = {
  toplevel : string;
  params : (string * Ctype.t) list;
  external_vars : (string * Ctype.t) list;
  external_funcs : Tast.fsig list;
}

exception No_toplevel of string

let extract (tp : Tast.tprogram) ~toplevel =
  let f =
    match Tast.find_func tp toplevel with
    | Some f -> f
    | None -> raise (No_toplevel toplevel)
  in
  let params = List.map (fun (_, name, ty) -> (name, ty)) f.Tast.tparams in
  let external_vars =
    List.filter_map
      (fun (g : Tast.tglobal) -> if g.gl_extern then Some (g.gl_name, g.gl_ty) else None)
      tp.Tast.tglobals
  in
  { toplevel; params; external_vars; external_funcs = tp.Tast.texternals }

let to_string t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "toplevel: %s\n" t.toplevel);
  List.iter
    (fun (n, ty) ->
      Buffer.add_string buf (Printf.sprintf "  arg %s : %s\n" n (Ctype.to_string ty)))
    t.params;
  List.iter
    (fun (n, ty) ->
      Buffer.add_string buf (Printf.sprintf "  extern var %s : %s\n" n (Ctype.to_string ty)))
    t.external_vars;
  List.iter
    (fun (s : Tast.fsig) ->
      Buffer.add_string buf
        (Printf.sprintf "  extern fun %s : (%s) -> %s\n" s.sig_name
           (String.concat ", " (List.map Ctype.to_string s.sig_params))
           (Ctype.to_string s.sig_ret)))
    t.external_funcs;
  Buffer.contents buf
