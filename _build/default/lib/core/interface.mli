(** Interface extraction (paper §3.1, technique 1).

    The external interface of a MiniC program is (a) its [extern]
    variables, (b) its external functions — body-less prototypes not
    registered as host library functions — and (c) the parameters of
    the chosen toplevel function. All three come from a static
    traversal of the typed program; no alias analysis is involved. *)

type t = {
  toplevel : string;
  params : (string * Minic.Ctype.t) list;
  external_vars : (string * Minic.Ctype.t) list;
  external_funcs : Minic.Tast.fsig list;
}

exception No_toplevel of string

val extract : Minic.Tast.tprogram -> toplevel:string -> t
(** @raise No_toplevel if no defined function has that name. *)

val to_string : t -> string
