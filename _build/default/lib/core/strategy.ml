(** Which pending branch the directed search flips next (paper
    footnote 4: "a depth-first search is used for exposition, but the
    next branch to be forced could be selected using a different
    strategy, e.g., randomly or in a breadth-first manner"). *)

type t =
  | Dfs (* deepest pending branch: the paper's default *)
  | Bfs (* shallowest pending branch *)
  | Random_branch

let to_string = function
  | Dfs -> "dfs"
  | Bfs -> "bfs"
  | Random_branch -> "random-branch"

(** Pick the next candidate index from a non-empty ascending list. *)
let choose t rng candidates =
  match candidates with
  | [] -> None
  | _ ->
    (match t with
     | Dfs -> Some (List.nth candidates (List.length candidates - 1))
     | Bfs -> Some (List.hd candidates)
     | Random_branch -> Some (Dart_util.Prng.choose rng candidates))
