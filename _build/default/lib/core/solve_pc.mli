(** solve_path_constraint (paper Figure 5).

    Given the stack and path constraint of a completed run, pick the
    next pending branch according to the search strategy, negate its
    predicate, and solve the resulting constraint prefix. On success
    the input vector is updated in place ([IM + IM']) and the truncated
    stack for the next run is returned; on UNSAT the search backtracks
    to an earlier pending branch. *)

type next =
  | Next_run of Concolic.branch_record array
      (** Stack to pass to the next instrumented run (prefix up to and
          including the flipped branch). *)
  | Exhausted of { solver_incomplete : bool }
      (** No pending branch can be forced. [solver_incomplete] reports
          whether any solver query came back unknown, which voids the
          completeness claim (Theorem 1(b)). *)

val solve :
  strategy:Strategy.t ->
  rng:Dart_util.Prng.t ->
  stats:Solver.stats ->
  im:Inputs.t ->
  stack:Concolic.branch_record array ->
  path_constraint:Symbolic.Constr.t option array ->
  next
