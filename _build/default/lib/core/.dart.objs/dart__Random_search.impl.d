lib/core/random_search.ml: Concolic Dart_util Driver Driver_gen Hashtbl Inputs List Machine Minic Printf
