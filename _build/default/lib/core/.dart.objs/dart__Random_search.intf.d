lib/core/random_search.mli: Concolic Driver Minic Ram
