lib/core/interface.mli: Minic
