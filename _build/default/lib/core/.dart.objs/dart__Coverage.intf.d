lib/core/coverage.mli: Ram
