lib/core/driver.ml: Concolic Dart_util Driver_gen Hashtbl Inputs List Machine Minic Printf Ram Solve_pc Solver Strategy
