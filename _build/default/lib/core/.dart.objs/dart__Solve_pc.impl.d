lib/core/solve_pc.ml: Array Concolic Constr Dart_util Fun Hashtbl Inputs Linexpr List Option Solver Strategy Symbolic Zarith_lite Zint
