lib/core/inputs.ml: Dart_util Hashtbl List
