lib/core/strategy.mli: Dart_util
