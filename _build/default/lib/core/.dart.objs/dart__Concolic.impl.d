lib/core/concolic.ml: Array Constr Dart_util Hashtbl Inputs Linexpr List Machine Minic Ram Symbolic Symmem Zarith_lite Zint
