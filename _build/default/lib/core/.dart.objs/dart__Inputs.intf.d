lib/core/inputs.mli: Dart_util
