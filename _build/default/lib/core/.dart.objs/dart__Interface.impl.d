lib/core/interface.ml: Buffer Ctype List Minic Printf String Tast
