lib/core/concolic.mli: Dart_util Inputs Machine Ram Symbolic
