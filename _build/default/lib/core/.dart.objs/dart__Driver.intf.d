lib/core/driver.mli: Concolic Machine Minic Ram Solver Strategy
