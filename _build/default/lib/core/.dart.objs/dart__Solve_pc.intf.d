lib/core/solve_pc.mli: Concolic Dart_util Inputs Solver Strategy Symbolic
