lib/core/driver_gen.mli: Minic
