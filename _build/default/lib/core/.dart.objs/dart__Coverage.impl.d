lib/core/coverage.ml: Array Buffer Driver_gen Hashtbl List Option Printf Ram String
