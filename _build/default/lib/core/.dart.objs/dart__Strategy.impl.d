lib/core/strategy.ml: Dart_util List
