lib/core/driver_gen.ml: Ast Ctype List Loc Minic Pretty Printf
