(** Branch-selection strategies for the directed search (paper
    footnote 4).

    Only {!Dfs} supports the completeness claim of Theorem 1(b): the
    single-stack bookkeeping discards pending sibling subtrees when a
    shallow branch is flipped, so {!Bfs} and {!Random_branch} are
    bug-finding heuristics whose exhaustion proves nothing (the driver
    restarts instead of claiming completeness). *)

type t =
  | Dfs (* deepest pending branch: the paper's default *)
  | Bfs (* shallowest pending branch *)
  | Random_branch

val to_string : t -> string

val choose : t -> Dart_util.Prng.t -> int list -> int option
(** Pick the next candidate from an ascending list of pending branch
    indices; [None] on the empty list. *)
