(** Hand-written lexer for MiniC. *)

exception Error of Loc.t * string

val tokenize : ?file:string -> string -> (Token.t * Loc.t) array
(** Tokenize a whole source buffer; the result always ends with
    {!Token.EOF}.
    @raise Error on an invalid character or malformed literal. *)
