(** Lexical tokens of MiniC. *)

type t =
  | IDENT of string
  | INT_LIT of int
  | CHAR_LIT of char
  | STRING_LIT of string
  (* keywords *)
  | KW_INT
  | KW_CHAR
  | KW_VOID
  | KW_STRUCT
  | KW_EXTERN
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_DO
  | KW_FOR
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | KW_SIZEOF
  | KW_NULL
  | KW_SWITCH
  | KW_CASE
  | KW_DEFAULT
  | KW_ENUM
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | DOT
  | ARROW
  | QUESTION
  | COLON
  (* operators *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | AMPAMP
  | PIPE
  | PIPEPIPE
  | CARET
  | TILDE
  | BANG
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NEQ
  | ASSIGN
  | SHL
  | SHR
  | PLUSEQ
  | MINUSEQ
  | STAREQ
  | SLASHEQ
  | PLUSPLUS
  | MINUSMINUS
  | EOF

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT_LIT i -> Printf.sprintf "integer %d" i
  | CHAR_LIT c -> Printf.sprintf "char %C" c
  | STRING_LIT s -> Printf.sprintf "string %S" s
  | KW_INT -> "'int'"
  | KW_CHAR -> "'char'"
  | KW_VOID -> "'void'"
  | KW_STRUCT -> "'struct'"
  | KW_EXTERN -> "'extern'"
  | KW_IF -> "'if'"
  | KW_ELSE -> "'else'"
  | KW_WHILE -> "'while'"
  | KW_DO -> "'do'"
  | KW_FOR -> "'for'"
  | KW_RETURN -> "'return'"
  | KW_BREAK -> "'break'"
  | KW_CONTINUE -> "'continue'"
  | KW_SIZEOF -> "'sizeof'"
  | KW_NULL -> "'NULL'"
  | KW_SWITCH -> "'switch'"
  | KW_CASE -> "'case'"
  | KW_DEFAULT -> "'default'"
  | KW_ENUM -> "'enum'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | ARROW -> "'->'"
  | QUESTION -> "'?'"
  | COLON -> "':'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | AMP -> "'&'"
  | AMPAMP -> "'&&'"
  | PIPE -> "'|'"
  | PIPEPIPE -> "'||'"
  | CARET -> "'^'"
  | TILDE -> "'~'"
  | BANG -> "'!'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | EQEQ -> "'=='"
  | NEQ -> "'!='"
  | ASSIGN -> "'='"
  | SHL -> "'<<'"
  | SHR -> "'>>'"
  | PLUSEQ -> "'+='"
  | MINUSEQ -> "'-='"
  | STAREQ -> "'*='"
  | SLASHEQ -> "'/='"
  | PLUSPLUS -> "'++'"
  | MINUSMINUS -> "'--'"
  | EOF -> "end of input"
