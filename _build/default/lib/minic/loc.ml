(** Source locations for error reporting. *)

type t = { file : string; line : int; col : int }

let dummy = { file = "<none>"; line = 0; col = 0 }

let make ~file ~line ~col = { file; line; col }

let to_string { file; line; col } = Printf.sprintf "%s:%d:%d" file line col

let pp fmt l = Format.pp_print_string fmt (to_string l)
