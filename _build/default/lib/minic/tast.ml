(** Typed abstract syntax, produced by {!Typecheck}.

    Compared to {!Ast}: every expression carries its type, variables
    are resolved (globals by name, locals by slot id), [e->f] is
    desugared to dereference-then-field, [NULL] to the constant 0, [sizeof] to a
    constant, array-typed expressions in rvalue position decay to
    pointers, and pointer arithmetic carries its element-size scale. *)

type var_kind =
  | Vglobal of string
  | Vlocal of int (* unique slot id within the enclosing function *)

type call_kind =
  | Cprogram (* function defined in the program: traced through *)
  | Cexternal (* part of the interface: returns a fresh input *)
  | Clibrary (* black box executed concretely (paper §3.1) *)
  | Cbuiltin of builtin

and builtin =
  | Bmalloc
  | Balloca
  | Bfree
  | Babort
  | Bassert
  | Bassume

type texpr = { tdesc : tdesc; ty : Ctype.t; tloc : Loc.t }

and tdesc =
  | Tconst of int
  | Tstring of string (* evaluates to the address of an interned char array *)
  | Tvar of var_kind * string
  | Tunop of Ast.unop * texpr
  | Tbinop of Ast.binop * texpr * texpr
  | Tptradd of texpr * texpr * int (* pointer + index, scaled by cell count *)
  | Tand of texpr * texpr
  | Tor of texpr * texpr
  | Tcond of texpr * texpr * texpr
  | Tcall of call_kind * string * texpr list
  | Tderef of texpr
  | Taddr of texpr (* operand is an lvalue *)
  | Tfield of texpr * string * int (* struct lvalue, field name, cell offset *)
  | Tindex of texpr * texpr * int (* array lvalue, index, element size *)
  | Tcast of Ctype.t * texpr
  | Tdecay of texpr (* array lvalue used as a pointer rvalue *)

type tstmt =
  | TSexpr of texpr
  | TSassign of texpr * texpr (* lhs is an lvalue *)
  | TSif of texpr * tstmt list * tstmt list
  | TSwhile of texpr * tstmt list
  | TSdowhile of tstmt list * texpr
  | TSfor of tstmt list * texpr option * tstmt list * tstmt list
  | TSreturn of texpr option
  | TSbreak
  | TScontinue
  | TSdecl of int * Ctype.t * texpr option
  | TSswitch of texpr * tswitch_case list
  | TSblock of tstmt list

and tswitch_case = {
  tcase_values : int list; (* constant labels of this group *)
  tcase_default : bool;
  tcase_body : tstmt list;
}

type tfunc = {
  tfname : string;
  tret : Ctype.t;
  tparams : (int * string * Ctype.t) list;
  tlocals : (int * string * Ctype.t) list; (* every slot, params included *)
  tbody : tstmt list;
  tfloc : Loc.t;
}

(** An external (interface) or library function signature. *)
type fsig = { sig_name : string; sig_ret : Ctype.t; sig_params : Ctype.t list }

type tglobal = {
  gl_name : string;
  gl_ty : Ctype.t;
  gl_init : int list option;
      (* constant initializer cells, zero-filled beyond the list;
         [None] for extern *)
  gl_extern : bool;
}

type tprogram = {
  structs : Ctype.struct_env;
  tglobals : tglobal list;
  tfuncs : tfunc list;
  texternals : fsig list; (* prototypes without bodies, minus library *)
  tlibrary : fsig list; (* black-box functions implemented by the host *)
}

let find_func p name = List.find_opt (fun f -> f.tfname = name) p.tfuncs

let mk ?(loc = Loc.dummy) ty tdesc = { tdesc; ty; tloc = loc }
