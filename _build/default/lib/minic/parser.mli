(** Recursive-descent parser for MiniC.

    Assignment is a statement form (not an expression), which keeps
    side effects out of expressions — the property the RAM-machine
    lowering relies on. *)

exception Error of Loc.t * string

val parse_program : ?file:string -> string -> Ast.program
(** Parse a full translation unit. @raise Error on syntax errors and
    {!Lexer.Error} on lexical errors. *)

val parse_expr : ?file:string -> string -> Ast.expr
(** Parse a single expression (used by tests). *)
