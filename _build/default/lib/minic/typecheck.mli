(** Type checker and elaborator: {!Ast.program} -> {!Tast.tprogram}.

    Resolves variables to globals or local slots, desugars [e->f],
    [NULL] and [sizeof], inserts array-to-pointer decay, scales pointer
    arithmetic, classifies calls (program / external / library /
    builtin) and enforces MiniC's typing rules (no struct assignment,
    scalar conditions, lvalue checks, etc.). *)

exception Error of Loc.t * string

val check : ?library:Tast.fsig list -> Ast.program -> Tast.tprogram
(** [check ~library prog] elaborates [prog]. Functions whose name
    appears in [library] must be declared as body-less prototypes with
    a matching signature; they are classified {!Tast.Clibrary}
    (black-box, executed concretely). All other body-less prototypes
    and all [extern] variables form the program's external interface
    (paper §3.1).
    @raise Error on any type or scope violation. *)
