(** Pretty-printer for the untyped AST.

    The output re-parses to an equal AST (modulo locations), a property
    exercised by the round-trip tests. *)

val unop_to_string : Ast.unop -> string
val binop_to_string : Ast.binop -> string
val expr_to_string : Ast.expr -> string
val stmt_to_string : ?indent:int -> Ast.stmt -> string
val program_to_string : Ast.program -> string
val pp_program : Format.formatter -> Ast.program -> unit
