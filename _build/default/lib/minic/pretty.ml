(* Subexpressions are fully parenthesized, which makes the printer
   trivially correct w.r.t. precedence and keeps the parse/print
   round-trip exact. *)

let escape_char c =
  match c with
  | '\n' -> "\\n"
  | '\t' -> "\\t"
  | '\r' -> "\\r"
  | '\000' -> "\\0"
  | '\\' -> "\\\\"
  | '\'' -> "\\'"
  | c -> String.make 1 c

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\'' -> Buffer.add_char buf '\''
      | c -> Buffer.add_string buf (escape_char c))
    s;
  Buffer.contents buf

let unop_to_string = function
  | Ast.Neg -> "-"
  | Ast.Lognot -> "!"
  | Ast.Bitnot -> "~"

let binop_to_string = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.Band -> "&"
  | Ast.Bor -> "|"
  | Ast.Bxor -> "^"
  | Ast.Shl -> "<<"
  | Ast.Shr -> ">>"

(* Split an array type into its element type and dimension list, for C
   declarator syntax. *)
let split_arrays ty =
  let rec go acc = function
    | Ctype.Tarray (t, n) -> go (n :: acc) t
    | t -> (t, List.rev acc)
  in
  go [] ty

let declarator ty name =
  let base, dims = split_arrays ty in
  let dims_str = String.concat "" (List.map (Printf.sprintf "[%d]") dims) in
  Printf.sprintf "%s %s%s" (Ctype.to_string base) name dims_str

let rec expr_to_string (e : Ast.expr) =
  match e.edesc with
  | Ast.Eint n -> string_of_int n
  | Ast.Echar c -> Printf.sprintf "'%s'" (escape_char c)
  | Ast.Estring s -> Printf.sprintf "\"%s\"" (escape_string s)
  | Ast.Enull -> "NULL"
  | Ast.Evar name -> name
  | Ast.Eunop (Ast.Neg, { edesc = Ast.Eint n; _ }) ->
    (* Mirror the parser's literal folding, keeping printing a fixpoint. *)
    string_of_int (-n)
  | Ast.Eunop (op, e1) -> Printf.sprintf "%s(%s)" (unop_to_string op) (expr_to_string e1)
  | Ast.Ebinop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_to_string op) (expr_to_string b)
  | Ast.Eand (a, b) -> Printf.sprintf "(%s && %s)" (expr_to_string a) (expr_to_string b)
  | Ast.Eor (a, b) -> Printf.sprintf "(%s || %s)" (expr_to_string a) (expr_to_string b)
  | Ast.Econd (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (expr_to_string c) (expr_to_string a) (expr_to_string b)
  | Ast.Ecall (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_to_string args))
  | Ast.Ederef e1 -> Printf.sprintf "*(%s)" (expr_to_string e1)
  | Ast.Eaddr e1 -> Printf.sprintf "&(%s)" (expr_to_string e1)
  | Ast.Efield (e1, f) -> Printf.sprintf "(%s).%s" (expr_to_string e1) f
  | Ast.Earrow (e1, f) -> Printf.sprintf "(%s)->%s" (expr_to_string e1) f
  | Ast.Eindex (e1, i) -> Printf.sprintf "(%s)[%s]" (expr_to_string e1) (expr_to_string i)
  | Ast.Ecast (ty, e1) -> Printf.sprintf "(%s)(%s)" (Ctype.to_string ty) (expr_to_string e1)
  | Ast.Esizeof ty -> Printf.sprintf "sizeof(%s)" (Ctype.to_string ty)

let init_to_string = function
  | Ast.Init_expr e -> expr_to_string e
  | Ast.Init_list es ->
    Printf.sprintf "{ %s }" (String.concat ", " (List.map expr_to_string es))

let rec stmt_to_string ?(indent = 0) (s : Ast.stmt) =
  let pad = String.make (indent * 2) ' ' in
  match s.sdesc with
  | Ast.Sexpr e -> Printf.sprintf "%s%s;" pad (expr_to_string e)
  | Ast.Sassign (lhs, rhs) ->
    Printf.sprintf "%s%s = %s;" pad (expr_to_string lhs) (expr_to_string rhs)
  | Ast.Sif (c, b1, []) ->
    Printf.sprintf "%sif (%s) %s" pad (expr_to_string c) (block_to_string ~indent b1)
  | Ast.Sif (c, b1, b2) ->
    Printf.sprintf "%sif (%s) %s else %s" pad (expr_to_string c)
      (block_to_string ~indent b1) (block_to_string ~indent b2)
  | Ast.Swhile (c, b) ->
    Printf.sprintf "%swhile (%s) %s" pad (expr_to_string c) (block_to_string ~indent b)
  | Ast.Sdowhile (b, c) ->
    Printf.sprintf "%sdo %s while (%s);" pad (block_to_string ~indent b) (expr_to_string c)
  | Ast.Sfor (init, cond, step, b) ->
    let init_str =
      match init with None -> "" | Some s -> String.trim (inline_simple s)
    in
    let cond_str = match cond with None -> "" | Some e -> expr_to_string e in
    let step_str =
      match step with None -> "" | Some s -> String.trim (inline_simple s)
    in
    Printf.sprintf "%sfor (%s; %s; %s) %s" pad init_str cond_str step_str
      (block_to_string ~indent b)
  | Ast.Sreturn None -> pad ^ "return;"
  | Ast.Sreturn (Some e) -> Printf.sprintf "%sreturn %s;" pad (expr_to_string e)
  | Ast.Sbreak -> pad ^ "break;"
  | Ast.Scontinue -> pad ^ "continue;"
  | Ast.Sdecl (ty, name, None) -> Printf.sprintf "%s%s;" pad (declarator ty name)
  | Ast.Sdecl (ty, name, Some init) ->
    Printf.sprintf "%s%s = %s;" pad (declarator ty name) (init_to_string init)
  | Ast.Sswitch (scrutinee, groups) ->
    let group_str (g : Ast.switch_case) =
      let labels =
        List.map
          (fun l ->
            match l with
            | Ast.Case e -> Printf.sprintf "%s  case %s:" pad (expr_to_string e)
            | Ast.Default -> Printf.sprintf "%s  default:" pad)
          g.Ast.case_labels
      in
      let body = List.map (stmt_to_string ~indent:(indent + 2)) g.Ast.case_body in
      String.concat "\n" (labels @ body)
    in
    Printf.sprintf "%sswitch (%s) {\n%s\n%s}" pad (expr_to_string scrutinee)
      (String.concat "\n" (List.map group_str groups))
      pad
  | Ast.Sblock b -> pad ^ block_to_string ~indent b

(* A statement rendered without trailing ';', for 'for' headers. *)
and inline_simple (s : Ast.stmt) =
  let str = stmt_to_string ~indent:0 s in
  if String.length str > 0 && str.[String.length str - 1] = ';' then
    String.sub str 0 (String.length str - 1)
  else str

and block_to_string ~indent (b : Ast.block) =
  let pad = String.make (indent * 2) ' ' in
  let inner = List.map (stmt_to_string ~indent:(indent + 1)) b in
  Printf.sprintf "{\n%s\n%s}" (String.concat "\n" inner) pad

let global_to_string = function
  | Ast.Genum { ename; emembers } ->
    let member (n, v) =
      match v with
      | None -> Printf.sprintf "  %s" n
      | Some e -> Printf.sprintf "  %s = %s" n (expr_to_string e)
    in
    Printf.sprintf "enum%s {\n%s\n};"
      (match ename with None -> "" | Some n -> " " ^ n)
      (String.concat ",\n" (List.map member emembers))
  | Ast.Gstruct def ->
    let fields =
      List.map (fun (f, ty) -> Printf.sprintf "  %s;" (declarator ty f)) def.Ctype.sfields
    in
    Printf.sprintf "struct %s {\n%s\n};" def.Ctype.sname (String.concat "\n" fields)
  | Ast.Gvar { gty; gname; ginit; gextern; _ } ->
    let prefix = if gextern then "extern " else "" in
    (match ginit with
     | None -> Printf.sprintf "%s%s;" prefix (declarator gty gname)
     | Some init ->
       Printf.sprintf "%s%s = %s;" prefix (declarator gty gname) (init_to_string init))
  | Ast.Gfun f ->
    let params =
      match f.fparams with
      | [] -> "void"
      | ps -> String.concat ", " (List.map (fun (ty, n) -> declarator ty n) ps)
    in
    let header = Printf.sprintf "%s %s(%s)" (Ctype.to_string f.fret) f.fname params in
    (match f.fbody with
     | None -> header ^ ";"
     | Some b -> header ^ " " ^ block_to_string ~indent:0 b)

let program_to_string (p : Ast.program) =
  String.concat "\n\n" (List.map global_to_string p) ^ "\n"

let pp_program fmt p = Format.pp_print_string fmt (program_to_string p)
