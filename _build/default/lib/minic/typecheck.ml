exception Error of Loc.t * string

let err loc fmt = Printf.ksprintf (fun msg -> raise (Error (loc, msg))) fmt

type fentry = {
  fe_ret : Ctype.t;
  fe_params : Ctype.t list;
  fe_kind : Tast.call_kind;
}

type env = {
  structs : Ctype.struct_env;
  funcs : (string, fentry) Hashtbl.t;
  globals : (string, Ctype.t) Hashtbl.t;
  constants : (string, int) Hashtbl.t; (* enum members *)
  (* Per-function state: *)
  mutable scopes : (string * int * Ctype.t) list list;
  mutable locals : (int * string * Ctype.t) list; (* reverse order *)
  mutable next_slot : int;
  mutable break_depth : int; (* enclosing loops and switches *)
  mutable continue_depth : int; (* enclosing loops only *)
  ret_ty : Ctype.t;
}

let sizeof env ty = Ctype.sizeof env.structs ty

(* ---- type utilities ------------------------------------------------------ *)

let rec check_wf env loc ty =
  match ty with
  | Ctype.Tint | Ctype.Tchar | Ctype.Tvoid -> ()
  | Ctype.Tptr t -> check_wf env loc t
  | Ctype.Tarray (t, n) ->
    if n <= 0 then err loc "array size must be positive";
    if not (Ctype.is_scalar t || (match t with Ctype.Tstruct _ | Ctype.Tarray _ -> true | _ -> false))
    then err loc "invalid array element type %s" (Ctype.to_string t);
    check_wf env loc t
  | Ctype.Tstruct name ->
    if not (Hashtbl.mem env.structs name) then err loc "unknown struct '%s'" name

let is_null_const (e : Tast.texpr) =
  match (e.tdesc, e.ty) with
  | Tast.Tconst 0, (Ctype.Tint | Ctype.Tptr _) -> true
  | _ -> false

(* Implicit conversion for assignment / argument passing / return. *)
let assignable ~from ~into =
  match (from, into) with
  | (Ctype.Tint | Ctype.Tchar), (Ctype.Tint | Ctype.Tchar) -> true
  | Ctype.Tptr a, Ctype.Tptr b -> Ctype.equal a b || a = Ctype.Tvoid || b = Ctype.Tvoid
  | _ -> false

let check_assignable loc (rhs : Tast.texpr) into =
  if assignable ~from:rhs.ty ~into || (is_null_const rhs && Ctype.is_pointer into) then ()
  else
    err loc "incompatible types: cannot use %s where %s is expected"
      (Ctype.to_string rhs.ty) (Ctype.to_string into)

let scalar_or_err loc (e : Tast.texpr) what =
  if not (Ctype.is_scalar e.ty) then
    err loc "%s must have scalar type, found %s" what (Ctype.to_string e.ty)

(* ---- constant evaluation (global initializers) --------------------------- *)

let rec const_eval ?(constants : (string, int) Hashtbl.t option) structs (e : Ast.expr) : int =
  let const_eval structs e = const_eval ?constants structs e in
  match e.edesc with
  | Ast.Evar name when Option.is_some constants
                       && Hashtbl.mem (Option.get constants) name ->
    Hashtbl.find (Option.get constants) name
  | Ast.Eint n -> n
  | Ast.Echar c -> Char.code c
  | Ast.Enull -> 0
  | Ast.Esizeof ty -> Ctype.sizeof structs ty
  | Ast.Eunop (Ast.Neg, e1) -> -const_eval structs e1
  | Ast.Eunop (Ast.Bitnot, e1) -> lnot (const_eval structs e1)
  | Ast.Eunop (Ast.Lognot, e1) -> if const_eval structs e1 = 0 then 1 else 0
  | Ast.Ebinop (op, a, b) ->
    let va = const_eval structs a and vb = const_eval structs b in
    (match op with
     | Ast.Add -> va + vb
     | Ast.Sub -> va - vb
     | Ast.Mul -> va * vb
     | Ast.Div ->
       if vb = 0 then err e.eloc "division by zero in constant initializer";
       va / vb
     | Ast.Mod ->
       if vb = 0 then err e.eloc "division by zero in constant initializer";
       va mod vb
     | Ast.Eq -> if va = vb then 1 else 0
     | Ast.Ne -> if va <> vb then 1 else 0
     | Ast.Lt -> if va < vb then 1 else 0
     | Ast.Le -> if va <= vb then 1 else 0
     | Ast.Gt -> if va > vb then 1 else 0
     | Ast.Ge -> if va >= vb then 1 else 0
     | Ast.Band -> va land vb
     | Ast.Bor -> va lor vb
     | Ast.Bxor -> va lxor vb
     | Ast.Shl -> va lsl (vb land 31)
     | Ast.Shr -> va asr (vb land 31))
  | Ast.Estring _ | Ast.Evar _ | Ast.Eand _ | Ast.Eor _ | Ast.Econd _ | Ast.Ecall _
  | Ast.Ederef _ | Ast.Eaddr _ | Ast.Efield _ | Ast.Earrow _ | Ast.Eindex _ | Ast.Ecast _ ->
    err e.eloc "global initializers must be constant expressions"

(* ---- variable lookup ------------------------------------------------------ *)

let lookup_var env loc name =
  let rec in_scopes = function
    | [] -> None
    | scope :: rest ->
      (match List.find_opt (fun (n, _, _) -> n = name) scope with
       | Some (_, slot, ty) -> Some (Tast.Vlocal slot, ty)
       | None -> in_scopes rest)
  in
  match in_scopes env.scopes with
  | Some r -> r
  | None ->
    (match Hashtbl.find_opt env.globals name with
     | Some ty -> (Tast.Vglobal name, ty)
     | None -> err loc "undeclared variable '%s'" name)

let declare_local env loc name ty =
  (match env.scopes with
   | scope :: _ when List.exists (fun (n, _, _) -> n = name) scope ->
     err loc "redeclaration of '%s'" name
   | _ -> ());
  let slot = env.next_slot in
  env.next_slot <- slot + 1;
  env.locals <- (slot, name, ty) :: env.locals;
  (match env.scopes with
   | scope :: rest -> env.scopes <- ((name, slot, ty) :: scope) :: rest
   | [] -> env.scopes <- [ [ (name, slot, ty) ] ]);
  slot

(* ---- expressions ----------------------------------------------------------- *)

let var_in_scope env name =
  List.exists (List.exists (fun (n, _, _) -> n = name)) env.scopes
  || Hashtbl.mem env.globals name

let rec check_lvalue env (e : Ast.expr) : Tast.texpr =
  let loc = e.eloc in
  match e.edesc with
  | Ast.Evar name ->
    let kind, ty = lookup_var env loc name in
    Tast.mk ~loc ty (Tast.Tvar (kind, name))
  | Ast.Ederef e1 ->
    let p = check_rvalue env e1 in
    (match p.ty with
     | Ctype.Tptr Ctype.Tvoid -> err loc "cannot dereference a void pointer"
     | Ctype.Tptr t -> Tast.mk ~loc t (Tast.Tderef p)
     | t -> err loc "cannot dereference a value of type %s" (Ctype.to_string t))
  | Ast.Efield (e1, f) ->
    let base = check_lvalue env e1 in
    (match base.ty with
     | Ctype.Tstruct sname ->
       (match Ctype.field_offset env.structs sname f with
        | off, fty -> Tast.mk ~loc fty (Tast.Tfield (base, f, off))
        | exception Not_found -> err loc "struct %s has no field '%s'" sname f)
     | t -> err loc "field access on non-struct type %s" (Ctype.to_string t))
  | Ast.Earrow (e1, f) ->
    (* e->f is sugar for dereference-then-field *)
    let deref = Ast.mk_expr ~loc (Ast.Ederef e1) in
    check_lvalue env (Ast.mk_expr ~loc (Ast.Efield (deref, f)))
  | Ast.Eindex (e1, idx) ->
    let i = check_rvalue env idx in
    scalar_or_err loc i "an array index";
    (* Indexing works both on arrays (in place) and on pointers. *)
    let as_array =
      match e1.edesc with
      | Ast.Evar _ | Ast.Ederef _ | Ast.Efield _ | Ast.Earrow _ | Ast.Eindex _ ->
        (try
           let lv = check_lvalue env e1 in
           match lv.ty with
           | Ctype.Tarray (elem, _) -> Some (lv, elem)
           | _ -> None
         with Error _ -> None)
      | _ -> None
    in
    (match as_array with
     | Some (lv, elem) ->
       Tast.mk ~loc elem (Tast.Tindex (lv, i, sizeof env elem))
     | None ->
       let p = check_rvalue env e1 in
       (match p.ty with
        | Ctype.Tptr Ctype.Tvoid -> err loc "cannot index a void pointer"
        | Ctype.Tptr elem ->
          let addr =
            Tast.mk ~loc p.ty (Tast.Tptradd (p, i, sizeof env elem))
          in
          Tast.mk ~loc elem (Tast.Tderef addr)
        | t -> err loc "cannot index a value of type %s" (Ctype.to_string t)))
  | Ast.Eint _ | Ast.Echar _ | Ast.Estring _ | Ast.Enull | Ast.Eunop _ | Ast.Ebinop _
  | Ast.Eand _ | Ast.Eor _ | Ast.Econd _ | Ast.Ecall _ | Ast.Eaddr _ | Ast.Ecast _
  | Ast.Esizeof _ ->
    err loc "expression is not an lvalue"

and check_rvalue env (e : Ast.expr) : Tast.texpr =
  let loc = e.eloc in
  match e.edesc with
  | Ast.Evar name
    when (not (var_in_scope env name)) && Hashtbl.mem env.constants name ->
    (* enum member: a plain integer constant *)
    Tast.mk ~loc Ctype.Tint (Tast.Tconst (Hashtbl.find env.constants name))
  | Ast.Eint n -> Tast.mk ~loc Ctype.Tint (Tast.Tconst n)
  | Ast.Echar c -> Tast.mk ~loc Ctype.Tchar (Tast.Tconst (Char.code c))
  | Ast.Enull -> Tast.mk ~loc (Ctype.Tptr Ctype.Tvoid) (Tast.Tconst 0)
  | Ast.Estring s -> Tast.mk ~loc (Ctype.Tptr Ctype.Tchar) (Tast.Tstring s)
  | Ast.Esizeof ty -> Tast.mk ~loc Ctype.Tint (Tast.Tconst (sizeof env ty))
  | Ast.Evar _ | Ast.Ederef _ | Ast.Efield _ | Ast.Earrow _ | Ast.Eindex _ ->
    let lv = check_lvalue env e in
    (match lv.ty with
     | Ctype.Tarray (elem, _) -> Tast.mk ~loc (Ctype.Tptr elem) (Tast.Tdecay lv)
     | Ctype.Tstruct _ -> err loc "struct values cannot be used directly; take a field or an address"
     | Ctype.Tvoid -> err loc "void value"
     | Ctype.Tint | Ctype.Tchar | Ctype.Tptr _ -> lv)
  | Ast.Eaddr e1 ->
    let lv = check_lvalue env e1 in
    (match lv.ty with
     | Ctype.Tarray (elem, _) ->
       (* &arr has the same value as arr decayed; give it pointer type. *)
       Tast.mk ~loc (Ctype.Tptr elem) (Tast.Tdecay lv)
     | t -> Tast.mk ~loc (Ctype.Tptr t) (Tast.Taddr lv))
  | Ast.Eunop (op, e1) ->
    let a = check_rvalue env e1 in
    (match op with
     | Ast.Neg | Ast.Bitnot ->
       if not (Ctype.is_arith a.ty) then
         err loc "arithmetic operator on non-arithmetic type %s" (Ctype.to_string a.ty);
       Tast.mk ~loc Ctype.Tint (Tast.Tunop (op, a))
     | Ast.Lognot ->
       scalar_or_err loc a "operand of '!'";
       Tast.mk ~loc Ctype.Tint (Tast.Tunop (op, a)))
  | Ast.Ebinop (op, e1, e2) -> check_binop env loc op e1 e2
  | Ast.Eand (e1, e2) ->
    let a = check_rvalue env e1 and b = check_rvalue env e2 in
    scalar_or_err loc a "operand of '&&'";
    scalar_or_err loc b "operand of '&&'";
    Tast.mk ~loc Ctype.Tint (Tast.Tand (a, b))
  | Ast.Eor (e1, e2) ->
    let a = check_rvalue env e1 and b = check_rvalue env e2 in
    scalar_or_err loc a "operand of '||'";
    scalar_or_err loc b "operand of '||'";
    Tast.mk ~loc Ctype.Tint (Tast.Tor (a, b))
  | Ast.Econd (c, e1, e2) ->
    let tc = check_rvalue env c in
    scalar_or_err loc tc "a condition";
    let a = check_rvalue env e1 and b = check_rvalue env e2 in
    let ty =
      if Ctype.is_arith a.ty && Ctype.is_arith b.ty then Ctype.Tint
      else if is_null_const a && Ctype.is_pointer b.ty then b.ty
      else if is_null_const b && Ctype.is_pointer a.ty then a.ty
      else if Ctype.equal a.ty b.ty then a.ty
      else
        err loc "branches of '?:' have incompatible types %s and %s"
          (Ctype.to_string a.ty) (Ctype.to_string b.ty)
    in
    Tast.mk ~loc ty (Tast.Tcond (tc, a, b))
  | Ast.Ecast (ty, e1) ->
    check_wf env loc ty;
    let a = check_rvalue env e1 in
    if not (Ctype.is_scalar ty || ty = Ctype.Tvoid) then
      err loc "cast to non-scalar type %s" (Ctype.to_string ty);
    if not (Ctype.is_scalar a.ty) then
      err loc "cast of non-scalar value of type %s" (Ctype.to_string a.ty);
    Tast.mk ~loc ty (Tast.Tcast (ty, a))
  | Ast.Ecall (name, args) -> check_call env loc name args

and check_binop env loc op e1 e2 =
  let a = check_rvalue env e1 and b = check_rvalue env e2 in
  let arith () =
    if not (Ctype.is_arith a.ty && Ctype.is_arith b.ty) then
      err loc "arithmetic operator on types %s and %s" (Ctype.to_string a.ty)
        (Ctype.to_string b.ty);
    Tast.mk ~loc Ctype.Tint (Tast.Tbinop (op, a, b))
  in
  match op with
  | Ast.Add ->
    (match (a.ty, b.ty) with
     | Ctype.Tptr t, _ when Ctype.is_arith b.ty ->
       Tast.mk ~loc a.ty (Tast.Tptradd (a, b, sizeof env t))
     | _, Ctype.Tptr t when Ctype.is_arith a.ty ->
       Tast.mk ~loc b.ty (Tast.Tptradd (b, a, sizeof env t))
     | _ -> arith ())
  | Ast.Sub ->
    (match (a.ty, b.ty) with
     | Ctype.Tptr t, _ when Ctype.is_arith b.ty ->
       let neg = Tast.mk ~loc Ctype.Tint (Tast.Tunop (Ast.Neg, b)) in
       Tast.mk ~loc a.ty (Tast.Tptradd (a, neg, sizeof env t))
     | Ctype.Tptr ta, Ctype.Tptr tb when Ctype.equal ta tb ->
       let diff = Tast.mk ~loc Ctype.Tint (Tast.Tbinop (Ast.Sub, a, b)) in
       let scale = sizeof env ta in
       if scale = 1 then diff
       else
         Tast.mk ~loc Ctype.Tint
           (Tast.Tbinop (Ast.Div, diff, Tast.mk ~loc Ctype.Tint (Tast.Tconst scale)))
     | _ -> arith ())
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    let ok =
      (Ctype.is_arith a.ty && Ctype.is_arith b.ty)
      || (Ctype.is_pointer a.ty && Ctype.is_pointer b.ty)
      || (Ctype.is_pointer a.ty && is_null_const b)
      || (is_null_const a && Ctype.is_pointer b.ty)
    in
    if not ok then
      err loc "comparison between incompatible types %s and %s" (Ctype.to_string a.ty)
        (Ctype.to_string b.ty);
    Tast.mk ~loc Ctype.Tint (Tast.Tbinop (op, a, b))
  | Ast.Mul | Ast.Div | Ast.Mod | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr ->
    arith ()

and check_call env loc name args =
  match Hashtbl.find_opt env.funcs name with
  | None -> err loc "call to undeclared function '%s'" name
  | Some fe ->
    let targs = List.map (check_rvalue env) args in
    let expected = List.length fe.fe_params and got = List.length targs in
    if expected <> got then
      err loc "function '%s' expects %d argument(s) but got %d" name expected got;
    List.iteri
      (fun i (arg, pty) ->
        try check_assignable loc arg pty
        with Error (l, m) -> err l "argument %d of '%s': %s" (i + 1) name m)
      (List.combine targs fe.fe_params);
    Tast.mk ~loc fe.fe_ret (Tast.Tcall (fe.fe_kind, name, targs))

(* ---- statements ------------------------------------------------------------ *)

let in_loop env f =
  env.break_depth <- env.break_depth + 1;
  env.continue_depth <- env.continue_depth + 1;
  let r = f () in
  env.break_depth <- env.break_depth - 1;
  env.continue_depth <- env.continue_depth - 1;
  r

let rec check_stmt env (s : Ast.stmt) : Tast.tstmt =
  let loc = s.sloc in
  match s.sdesc with
  | Ast.Sexpr e ->
    let te = check_rvalue_or_void env e in
    Tast.TSexpr te
  | Ast.Sassign (lhs, rhs) ->
    let lv = check_lvalue env lhs in
    (match lv.ty with
     | Ctype.Tstruct _ | Ctype.Tarray _ ->
       err loc "cannot assign whole %s values" (Ctype.to_string lv.ty)
     | Ctype.Tvoid -> err loc "cannot assign to void"
     | Ctype.Tint | Ctype.Tchar | Ctype.Tptr _ -> ());
    let rv = check_rvalue env rhs in
    check_assignable loc rv lv.ty;
    Tast.TSassign (lv, rv)
  | Ast.Sif (cond, b1, b2) ->
    let tc = check_rvalue env cond in
    scalar_or_err loc tc "an if condition";
    Tast.TSif (tc, check_block env b1, check_block env b2)
  | Ast.Swhile (cond, body) ->
    let tc = check_rvalue env cond in
    scalar_or_err loc tc "a while condition";
    let tb = in_loop env (fun () -> check_block env body) in
    Tast.TSwhile (tc, tb)
  | Ast.Sdowhile (body, cond) ->
    let tb = in_loop env (fun () -> check_block env body) in
    let tc = check_rvalue env cond in
    scalar_or_err loc tc "a do-while condition";
    Tast.TSdowhile (tb, tc)
  | Ast.Sfor (init, cond, step, body) ->
    (* The init declaration scopes over the whole loop. *)
    env.scopes <- [] :: env.scopes;
    let tinit = match init with None -> [] | Some s -> [ check_stmt env s ] in
    let tcond =
      match cond with
      | None -> None
      | Some c ->
        let tc = check_rvalue env c in
        scalar_or_err loc tc "a for condition";
        Some tc
    in
    let tstep = match step with None -> [] | Some s -> [ check_stmt env s ] in
    let tb = in_loop env (fun () -> check_block env body) in
    env.scopes <- List.tl env.scopes;
    Tast.TSfor (tinit, tcond, tstep, tb)
  | Ast.Sreturn None ->
    if env.ret_ty <> Ctype.Tvoid then
      err loc "return without a value in a function returning %s" (Ctype.to_string env.ret_ty);
    Tast.TSreturn None
  | Ast.Sreturn (Some e) ->
    if env.ret_ty = Ctype.Tvoid then err loc "return with a value in a void function";
    let te = check_rvalue env e in
    check_assignable loc te env.ret_ty;
    Tast.TSreturn (Some te)
  | Ast.Sbreak ->
    if env.break_depth = 0 then err loc "'break' outside of a loop or switch";
    Tast.TSbreak
  | Ast.Scontinue ->
    if env.continue_depth = 0 then err loc "'continue' outside of a loop";
    Tast.TScontinue
  | Ast.Sdecl (ty, name, init) ->
    check_wf env loc ty;
    if ty = Ctype.Tvoid then err loc "cannot declare a void variable";
    (match init with
     | None ->
       let slot = declare_local env loc name ty in
       Tast.TSdecl (slot, ty, None)
     | Some (Ast.Init_expr e) ->
       let te = check_rvalue env e in
       if not (Ctype.is_scalar ty) then
         err loc "a brace list is required to initialize %s" (Ctype.to_string ty);
       check_assignable loc te ty;
       let slot = declare_local env loc name ty in
       Tast.TSdecl (slot, ty, Some te)
     | Some (Ast.Init_list es) ->
       (match ty with
        | Ctype.Tarray (elem, n) when Ctype.is_scalar elem ->
          if List.length es > n then
            err loc "too many initializers (%d) for %s" (List.length es)
              (Ctype.to_string ty);
          let elems =
            List.map
              (fun e ->
                let te = check_rvalue env e in
                check_assignable loc te elem;
                te)
              es
          in
          let slot = declare_local env loc name ty in
          (* Expand to per-element stores; C zero-fills the rest. *)
          let elem_size = sizeof env elem in
          let arr = Tast.mk ~loc ty (Tast.Tvar (Tast.Vlocal slot, name)) in
          let store i te =
            Tast.TSassign
              ( Tast.mk ~loc elem
                  (Tast.Tindex (arr, Tast.mk ~loc Ctype.Tint (Tast.Tconst i), elem_size)),
                te )
          in
          let explicit = List.mapi store elems in
          let zero_fill =
            List.init (n - List.length elems) (fun k ->
                store (List.length elems + k) (Tast.mk ~loc Ctype.Tint (Tast.Tconst 0)))
          in
          Tast.TSblock (Tast.TSdecl (slot, ty, None) :: explicit @ zero_fill)
        | _ ->
          err loc "brace initializers only apply to arrays of scalars, not %s"
            (Ctype.to_string ty)))
  | Ast.Sswitch (scrutinee, groups) ->
    let ts = check_rvalue env scrutinee in
    if not (Ctype.is_arith ts.ty) then
      err loc "switch scrutinee must be arithmetic, found %s" (Ctype.to_string ts.ty);
    let seen_values = Hashtbl.create 8 in
    let seen_default = ref false in
    let tgroups =
      List.map
        (fun (g : Ast.switch_case) ->
          let values = ref [] in
          let default = ref false in
          List.iter
            (fun label ->
              match label with
              | Ast.Case e ->
                let v = const_eval ~constants:env.constants env.structs e in
                if Hashtbl.mem seen_values v then err e.eloc "duplicate case value %d" v;
                Hashtbl.replace seen_values v ();
                values := v :: !values
              | Ast.Default ->
                if !seen_default then err loc "duplicate default label";
                seen_default := true;
                default := true)
            g.Ast.case_labels;
          let body =
            env.break_depth <- env.break_depth + 1;
            let b = check_block env g.Ast.case_body in
            env.break_depth <- env.break_depth - 1;
            b
          in
          { Tast.tcase_values = List.rev !values; tcase_default = !default; tcase_body = body })
        groups
    in
    Tast.TSswitch (ts, tgroups)
  | Ast.Sblock b -> Tast.TSblock (check_block env b)

and check_rvalue_or_void env (e : Ast.expr) : Tast.texpr =
  (* A void-returning call is a valid expression statement. *)
  match e.edesc with
  | Ast.Ecall (name, args) -> check_call env e.eloc name args
  | _ -> check_rvalue env e

and check_block env (b : Ast.block) : Tast.tstmt list =
  env.scopes <- [] :: env.scopes;
  let r = List.map (check_stmt env) b in
  env.scopes <- List.tl env.scopes;
  r

(* ---- program --------------------------------------------------------------- *)

let builtin_sigs =
  [ ("malloc", (Ctype.Tptr Ctype.Tvoid, [ Ctype.Tint ], Tast.Bmalloc));
    ("alloca", (Ctype.Tptr Ctype.Tvoid, [ Ctype.Tint ], Tast.Balloca));
    ("free", (Ctype.Tvoid, [ Ctype.Tptr Ctype.Tvoid ], Tast.Bfree));
    ("abort", (Ctype.Tvoid, [], Tast.Babort));
    ("assert", (Ctype.Tvoid, [ Ctype.Tint ], Tast.Bassert));
    ("assume", (Ctype.Tvoid, [ Ctype.Tint ], Tast.Bassume)) ]

let check ?(library = []) (prog : Ast.program) : Tast.tprogram =
  let structs : Ctype.struct_env = Hashtbl.create 16 in
  let funcs : (string, fentry) Hashtbl.t = Hashtbl.create 16 in
  let globals : (string, Ctype.t) Hashtbl.t = Hashtbl.create 16 in
  let constants : (string, int) Hashtbl.t = Hashtbl.create 16 in
  (* Builtins are always in scope. *)
  List.iter
    (fun (name, (ret, params, b)) ->
      Hashtbl.replace funcs name { fe_ret = ret; fe_params = params; fe_kind = Tast.Cbuiltin b })
    builtin_sigs;
  (* Pass 1: collect structs, globals and function signatures. *)
  let protos : (string, Tast.fsig * Loc.t) Hashtbl.t = Hashtbl.create 16 in
  let defined : (string, Ast.func) Hashtbl.t = Hashtbl.create 16 in
  let global_order = ref [] in
  let func_order = ref [] in
  List.iter
    (fun g ->
      match g with
      | Ast.Gstruct def ->
        if Hashtbl.mem structs def.Ctype.sname then
          raise (Error (Loc.dummy, Printf.sprintf "duplicate struct '%s'" def.Ctype.sname));
        Hashtbl.replace structs def.Ctype.sname def
      | Ast.Genum { ename = _; emembers } ->
        let next = ref 0 in
        List.iter
          (fun (name, value) ->
            if Hashtbl.mem constants name || Hashtbl.mem globals name then
              raise (Error (Loc.dummy, Printf.sprintf "duplicate enum member '%s'" name));
            let v =
              match value with
              | None -> !next
              | Some e -> const_eval ~constants structs e
            in
            Hashtbl.replace constants name v;
            next := v + 1)
          emembers
      | Ast.Gvar { gty; gname; ginit; gextern; gloc } ->
        if Hashtbl.mem globals gname || Hashtbl.mem constants gname then
          err gloc "duplicate global '%s'" gname;
        if gty = Ctype.Tvoid then err gloc "cannot declare a void variable";
        Hashtbl.replace globals gname gty;
        let init =
          if gextern then None
          else
            Some
              (match ginit with
               | None -> [ 0 ]
               | Some (Ast.Init_expr e) ->
                 if not (Ctype.is_scalar gty) then
                   err gloc "a brace list is required to initialize %s"
                     (Ctype.to_string gty);
                 [ const_eval ~constants structs e ]
               | Some (Ast.Init_list es) ->
                 (match gty with
                  | Ctype.Tarray (elem, n) when Ctype.is_arith elem ->
                    if List.length es > n then
                      err gloc "too many initializers for '%s'" gname;
                    List.map (const_eval ~constants structs) es
                  | _ ->
                    err gloc "brace initializers only apply to arrays of scalars"))
        in
        global_order :=
          { Tast.gl_name = gname; gl_ty = gty; gl_init = init; gl_extern = gextern }
          :: !global_order
      | Ast.Gfun f ->
        let signature =
          { Tast.sig_name = f.fname;
            sig_ret = f.fret;
            sig_params = List.map fst f.fparams }
        in
        (match f.fbody with
         | None ->
           (match Hashtbl.find_opt protos f.fname with
            | Some (prev, _) when prev <> signature ->
              err f.floc "conflicting declarations for '%s'" f.fname
            | _ -> Hashtbl.replace protos f.fname (signature, f.floc))
         | Some _ ->
           if Hashtbl.mem defined f.fname then err f.floc "duplicate function '%s'" f.fname;
           Hashtbl.replace defined f.fname f;
           func_order := f :: !func_order);
        let kind =
          if f.fbody <> None then Tast.Cprogram
          else if List.exists (fun (l : Tast.fsig) -> l.sig_name = f.fname) library then
            Tast.Clibrary
          else Tast.Cexternal
        in
        (match Hashtbl.find_opt funcs f.fname with
         | Some prev when prev.fe_kind = Tast.Cprogram && kind <> Tast.Cprogram ->
           () (* definition seen first; keep it *)
         | _ ->
           Hashtbl.replace funcs f.fname
             { fe_ret = f.fret; fe_params = List.map fst f.fparams; fe_kind = kind }))
    prog;
  (* Library functions must have a matching prototype (or we add one). *)
  List.iter
    (fun (l : Tast.fsig) ->
      match Hashtbl.find_opt funcs l.sig_name with
      | Some fe when fe.fe_kind = Tast.Cprogram ->
        raise
          (Error
             ( Loc.dummy,
               Printf.sprintf "library function '%s' is also defined in the program" l.sig_name ))
      | Some _ -> ()
      | None ->
        Hashtbl.replace funcs l.sig_name
          { fe_ret = l.sig_ret; fe_params = l.sig_params; fe_kind = Tast.Clibrary })
    library;
  (* Validate struct field types (now that all structs are known). *)
  Hashtbl.iter
    (fun _ (def : Ctype.struct_def) ->
      List.iter
        (fun (fname, fty) ->
          let dummy_env =
            { structs; funcs; globals; constants; scopes = []; locals = [];
              next_slot = 0; break_depth = 0; continue_depth = 0; ret_ty = Ctype.Tvoid }
          in
          check_wf dummy_env Loc.dummy fty;
          (* Reject infinitely sized types (struct containing itself by value). *)
          match fty with
          | Ctype.Tstruct inner when inner = def.Ctype.sname ->
            raise
              (Error
                 ( Loc.dummy,
                   Printf.sprintf "struct %s contains itself (field '%s')" def.Ctype.sname
                     fname ))
          | _ -> ())
        def.Ctype.sfields)
    structs;
  (* Pass 2: check function bodies. *)
  let tfuncs =
    List.rev_map
      (fun (f : Ast.func) ->
        let env =
          { structs; funcs; globals; constants; scopes = [ [] ]; locals = [];
            next_slot = 0; break_depth = 0; continue_depth = 0; ret_ty = f.fret }
        in
        let tparams =
          List.map
            (fun (ty, name) ->
              check_wf env f.floc ty;
              if not (Ctype.is_scalar ty) then
                err f.floc "parameter '%s' of '%s' must be scalar (use a pointer)" name
                  f.fname;
              let slot = declare_local env f.floc name ty in
              (slot, name, ty))
            f.fparams
        in
        let body = match f.fbody with Some b -> b | None -> assert false in
        (* C scoping: the function's top-level block shares the
           parameter scope, so a local cannot redeclare a parameter. *)
        let tbody = List.map (check_stmt env) body in
        { Tast.tfname = f.fname;
          tret = f.fret;
          tparams;
          tlocals = List.rev env.locals;
          tbody;
          tfloc = f.floc })
      !func_order
  in
  let texternals =
    Hashtbl.fold
      (fun name (signature, _) acc ->
        if Hashtbl.mem defined name then acc
        else if List.exists (fun (l : Tast.fsig) -> l.sig_name = name) library then acc
        else signature :: acc)
      protos []
    |> List.sort (fun (a : Tast.fsig) b -> compare a.sig_name b.sig_name)
  in
  { Tast.structs;
    tglobals = List.rev !global_order;
    tfuncs;
    texternals;
    tlibrary = library }
