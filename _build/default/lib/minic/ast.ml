(** Untyped abstract syntax of MiniC, as produced by the parser. *)

type unop =
  | Neg (* -e *)
  | Lognot (* !e *)
  | Bitnot (* ~e *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr

type expr = { edesc : expr_desc; eloc : Loc.t }

and expr_desc =
  | Eint of int
  | Echar of char
  | Estring of string
  | Enull
  | Evar of string
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Eand of expr * expr (* short-circuit && *)
  | Eor of expr * expr (* short-circuit || *)
  | Econd of expr * expr * expr (* e ? e : e *)
  | Ecall of string * expr list
  | Ederef of expr
  | Eaddr of expr
  | Efield of expr * string (* e.f *)
  | Earrow of expr * string (* e->f *)
  | Eindex of expr * expr (* e[e] *)
  | Ecast of Ctype.t * expr
  | Esizeof of Ctype.t

(* Initializers: a plain expression, or a brace list for arrays (as in
   C, a short list zero-fills the remainder). *)
type initializer_ =
  | Init_expr of expr
  | Init_list of expr list

type stmt = { sdesc : stmt_desc; sloc : Loc.t }

and stmt_desc =
  | Sexpr of expr
  | Sassign of expr * expr (* lhs = rhs *)
  | Sif of expr * block * block
  | Swhile of expr * block
  | Sdowhile of block * expr
  | Sfor of stmt option * expr option * stmt option * block
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sdecl of Ctype.t * string * initializer_ option
  | Sswitch of expr * switch_case list
  | Sblock of block

and block = stmt list

(* One 'case k:'/'default:' group; fallthrough runs into the next
   group unless the body breaks. *)
and switch_case = { case_labels : case_label list; case_body : block }

and case_label =
  | Case of expr (* must be a constant expression *)
  | Default

type func = {
  fname : string;
  fret : Ctype.t;
  fparams : (Ctype.t * string) list;
  fbody : block option; (* [None] for a prototype (external function) *)
  floc : Loc.t;
}

type global =
  | Gstruct of Ctype.struct_def
  | Genum of { ename : string option; emembers : (string * expr option) list }
  | Gvar of { gty : Ctype.t; gname : string; ginit : initializer_ option; gextern : bool; gloc : Loc.t }
  | Gfun of func

type program = global list

let mk_expr ?(loc = Loc.dummy) edesc = { edesc; eloc = loc }
let mk_stmt ?(loc = Loc.dummy) sdesc = { sdesc; sloc = loc }
