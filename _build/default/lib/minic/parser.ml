exception Error of Loc.t * string

type state = { toks : (Token.t * Loc.t) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let peek_loc st = snd st.toks.(st.pos)

let peek_ahead st n =
  let i = st.pos + n in
  if i < Array.length st.toks then fst st.toks.(i) else Token.EOF

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let error st msg = raise (Error (peek_loc st, msg))

let expect st tok =
  if peek st = tok then advance st
  else
    error st
      (Printf.sprintf "expected %s but found %s" (Token.to_string tok)
         (Token.to_string (peek st)))

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

let expect_ident st =
  match peek st with
  | Token.IDENT s ->
    advance st;
    s
  | t -> error st (Printf.sprintf "expected identifier but found %s" (Token.to_string t))

let expect_int st =
  match peek st with
  | Token.INT_LIT n ->
    advance st;
    n
  | t -> error st (Printf.sprintf "expected integer but found %s" (Token.to_string t))

(* ---- types --------------------------------------------------------------- *)

let starts_type st =
  match peek st with
  | Token.KW_INT | Token.KW_CHAR | Token.KW_VOID | Token.KW_STRUCT | Token.KW_ENUM -> true
  | _ -> false

(* Base type possibly followed by stars: [int], [char], [void],
   [struct name], each with any number of ['*']. *)
let parse_base_type st =
  let base =
    match peek st with
    | Token.KW_INT ->
      advance st;
      Ctype.Tint
    | Token.KW_CHAR ->
      advance st;
      Ctype.Tchar
    | Token.KW_VOID ->
      advance st;
      Ctype.Tvoid
    | Token.KW_STRUCT ->
      advance st;
      let name = expect_ident st in
      Ctype.Tstruct name
    | Token.KW_ENUM ->
      (* Enums are plain ints in MiniC; 'enum X' in type position is an
         int alias. *)
      advance st;
      ignore (expect_ident st);
      Ctype.Tint
    | t -> error st (Printf.sprintf "expected a type but found %s" (Token.to_string t))
  in
  let rec stars ty = if accept st Token.STAR then stars (Ctype.Tptr ty) else ty in
  stars base

(* A declarator after a base type: more stars, a name, then array
   suffixes: [t **name[3][4]]. *)
let parse_declarator st base =
  let rec stars ty = if accept st Token.STAR then stars (Ctype.Tptr ty) else ty in
  let ty = stars base in
  let name = expect_ident st in
  let rec suffixes ty =
    if accept st Token.LBRACKET then begin
      let n = expect_int st in
      expect st Token.RBRACKET;
      (* Innermost suffix binds closest: recurse first. *)
      Ctype.Tarray (suffixes ty, n)
    end
    else ty
  in
  (suffixes ty, name)

(* ---- expressions ---------------------------------------------------------- *)

let rec parse_expr_prec st =
  let loc = peek_loc st in
  let cond = parse_or st in
  if accept st Token.QUESTION then begin
    let e1 = parse_expr_prec st in
    expect st Token.COLON;
    let e2 = parse_expr_prec st in
    Ast.mk_expr ~loc (Ast.Econd (cond, e1, e2))
  end
  else cond

and parse_or st =
  let rec go lhs =
    let loc = peek_loc st in
    if accept st Token.PIPEPIPE then begin
      let rhs = parse_and st in
      go (Ast.mk_expr ~loc (Ast.Eor (lhs, rhs)))
    end
    else lhs
  in
  go (parse_and st)

and parse_and st =
  let rec go lhs =
    let loc = peek_loc st in
    if accept st Token.AMPAMP then begin
      let rhs = parse_bitor st in
      go (Ast.mk_expr ~loc (Ast.Eand (lhs, rhs)))
    end
    else lhs
  in
  go (parse_bitor st)

and parse_binop_level st next ops =
  let rec go lhs =
    let loc = peek_loc st in
    match List.assoc_opt (peek st) ops with
    | Some op ->
      advance st;
      let rhs = next st in
      go (Ast.mk_expr ~loc (Ast.Ebinop (op, lhs, rhs)))
    | None -> lhs
  in
  go (next st)

and parse_bitor st = parse_binop_level st parse_bitxor [ (Token.PIPE, Ast.Bor) ]
and parse_bitxor st = parse_binop_level st parse_bitand [ (Token.CARET, Ast.Bxor) ]
and parse_bitand st = parse_binop_level st parse_equality [ (Token.AMP, Ast.Band) ]

and parse_equality st =
  parse_binop_level st parse_relational [ (Token.EQEQ, Ast.Eq); (Token.NEQ, Ast.Ne) ]

and parse_relational st =
  parse_binop_level st parse_shift
    [ (Token.LT, Ast.Lt); (Token.LE, Ast.Le); (Token.GT, Ast.Gt); (Token.GE, Ast.Ge) ]

and parse_shift st =
  parse_binop_level st parse_additive [ (Token.SHL, Ast.Shl); (Token.SHR, Ast.Shr) ]

and parse_additive st =
  parse_binop_level st parse_multiplicative [ (Token.PLUS, Ast.Add); (Token.MINUS, Ast.Sub) ]

and parse_multiplicative st =
  parse_binop_level st parse_unary
    [ (Token.STAR, Ast.Mul); (Token.SLASH, Ast.Div); (Token.PERCENT, Ast.Mod) ]

and parse_unary st =
  let loc = peek_loc st in
  match peek st with
  | Token.MINUS ->
    advance st;
    let operand = parse_unary st in
    (* Fold negation of literals so negative constants round-trip. *)
    (match operand.Ast.edesc with
     | Ast.Eint n -> Ast.mk_expr ~loc (Ast.Eint (-n))
     | _ -> Ast.mk_expr ~loc (Ast.Eunop (Ast.Neg, operand)))
  | Token.BANG ->
    advance st;
    Ast.mk_expr ~loc (Ast.Eunop (Ast.Lognot, parse_unary st))
  | Token.TILDE ->
    advance st;
    Ast.mk_expr ~loc (Ast.Eunop (Ast.Bitnot, parse_unary st))
  | Token.STAR ->
    advance st;
    Ast.mk_expr ~loc (Ast.Ederef (parse_unary st))
  | Token.AMP ->
    advance st;
    Ast.mk_expr ~loc (Ast.Eaddr (parse_unary st))
  | Token.KW_SIZEOF ->
    advance st;
    expect st Token.LPAREN;
    let ty = parse_base_type st in
    expect st Token.RPAREN;
    Ast.mk_expr ~loc (Ast.Esizeof ty)
  | Token.LPAREN when starts_type_at st 1 ->
    (* A cast: '(' type ')' unary. *)
    advance st;
    let ty = parse_base_type st in
    expect st Token.RPAREN;
    Ast.mk_expr ~loc (Ast.Ecast (ty, parse_unary st))
  | _ -> parse_postfix st

and starts_type_at st n =
  match peek_ahead st n with
  | Token.KW_INT | Token.KW_CHAR | Token.KW_VOID | Token.KW_STRUCT | Token.KW_ENUM -> true
  | _ -> false

and parse_postfix st =
  let e = parse_primary st in
  let rec go e =
    let loc = peek_loc st in
    match peek st with
    | Token.LBRACKET ->
      advance st;
      let idx = parse_expr_prec st in
      expect st Token.RBRACKET;
      go (Ast.mk_expr ~loc (Ast.Eindex (e, idx)))
    | Token.DOT ->
      advance st;
      let f = expect_ident st in
      go (Ast.mk_expr ~loc (Ast.Efield (e, f)))
    | Token.ARROW ->
      advance st;
      let f = expect_ident st in
      go (Ast.mk_expr ~loc (Ast.Earrow (e, f)))
    | _ -> e
  in
  go e

and parse_primary st =
  let loc = peek_loc st in
  match peek st with
  | Token.INT_LIT n ->
    advance st;
    Ast.mk_expr ~loc (Ast.Eint n)
  | Token.CHAR_LIT c ->
    advance st;
    Ast.mk_expr ~loc (Ast.Echar c)
  | Token.STRING_LIT s ->
    advance st;
    Ast.mk_expr ~loc (Ast.Estring s)
  | Token.KW_NULL ->
    advance st;
    Ast.mk_expr ~loc Ast.Enull
  | Token.IDENT name ->
    advance st;
    if accept st Token.LPAREN then begin
      let args = parse_args st in
      Ast.mk_expr ~loc (Ast.Ecall (name, args))
    end
    else Ast.mk_expr ~loc (Ast.Evar name)
  | Token.LPAREN ->
    advance st;
    let e = parse_expr_prec st in
    expect st Token.RPAREN;
    e
  | t -> error st (Printf.sprintf "expected an expression but found %s" (Token.to_string t))

and parse_args st =
  if accept st Token.RPAREN then []
  else begin
    let rec go acc =
      let e = parse_expr_prec st in
      if accept st Token.COMMA then go (e :: acc)
      else begin
        expect st Token.RPAREN;
        List.rev (e :: acc)
      end
    in
    go []
  end

(* ---- statements ----------------------------------------------------------- *)

let desugar_opassign loc lhs op rhs =
  Ast.mk_stmt ~loc (Ast.Sassign (lhs, Ast.mk_expr ~loc (Ast.Ebinop (op, lhs, rhs))))

(* An initializer: a brace list or a plain expression. *)
let parse_initializer st =
  if accept st Token.LBRACE then begin
    let rec elems acc =
      let e = parse_expr_prec st in
      if accept st Token.COMMA then begin
        if accept st Token.RBRACE then List.rev (e :: acc) (* trailing comma *)
        else elems (e :: acc)
      end
      else begin
        expect st Token.RBRACE;
        List.rev (e :: acc)
      end
    in
    Ast.Init_list (elems [])
  end
  else Ast.Init_expr (parse_expr_prec st)

(* A "simple" statement: assignment, op-assignment, increment, or a
   bare expression (typically a call). Used for statement positions
   and for the init/step slots of [for]. Does not consume ';'. *)
let rec parse_simple st =
  let loc = peek_loc st in
  let lhs = parse_expr_prec st in
  match peek st with
  | Token.ASSIGN ->
    advance st;
    let rhs = parse_expr_prec st in
    Ast.mk_stmt ~loc (Ast.Sassign (lhs, rhs))
  | Token.PLUSEQ ->
    advance st;
    desugar_opassign loc lhs Ast.Add (parse_expr_prec st)
  | Token.MINUSEQ ->
    advance st;
    desugar_opassign loc lhs Ast.Sub (parse_expr_prec st)
  | Token.STAREQ ->
    advance st;
    desugar_opassign loc lhs Ast.Mul (parse_expr_prec st)
  | Token.SLASHEQ ->
    advance st;
    desugar_opassign loc lhs Ast.Div (parse_expr_prec st)
  | Token.PLUSPLUS ->
    advance st;
    desugar_opassign loc lhs Ast.Add (Ast.mk_expr ~loc (Ast.Eint 1))
  | Token.MINUSMINUS ->
    advance st;
    desugar_opassign loc lhs Ast.Sub (Ast.mk_expr ~loc (Ast.Eint 1))
  | _ -> Ast.mk_stmt ~loc (Ast.Sexpr lhs)

and parse_stmt st =
  let loc = peek_loc st in
  match peek st with
  | Token.SEMI ->
    advance st;
    Ast.mk_stmt ~loc (Ast.Sblock [])
  | Token.LBRACE -> Ast.mk_stmt ~loc (Ast.Sblock (parse_block st))
  | Token.KW_IF ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expr_prec st in
    expect st Token.RPAREN;
    let then_b = parse_stmt_as_block st in
    let else_b = if accept st Token.KW_ELSE then parse_stmt_as_block st else [] in
    Ast.mk_stmt ~loc (Ast.Sif (cond, then_b, else_b))
  | Token.KW_WHILE ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expr_prec st in
    expect st Token.RPAREN;
    let body = parse_stmt_as_block st in
    Ast.mk_stmt ~loc (Ast.Swhile (cond, body))
  | Token.KW_DO ->
    advance st;
    let body = parse_stmt_as_block st in
    expect st Token.KW_WHILE;
    expect st Token.LPAREN;
    let cond = parse_expr_prec st in
    expect st Token.RPAREN;
    expect st Token.SEMI;
    Ast.mk_stmt ~loc (Ast.Sdowhile (body, cond))
  | Token.KW_FOR ->
    advance st;
    expect st Token.LPAREN;
    let init =
      if peek st = Token.SEMI then None
      else if starts_type st then Some (parse_decl_stmt st ~consume_semi:false)
      else Some (parse_simple st)
    in
    expect st Token.SEMI;
    let cond = if peek st = Token.SEMI then None else Some (parse_expr_prec st) in
    expect st Token.SEMI;
    let step = if peek st = Token.RPAREN then None else Some (parse_simple st) in
    expect st Token.RPAREN;
    let body = parse_stmt_as_block st in
    Ast.mk_stmt ~loc (Ast.Sfor (init, cond, step, body))
  | Token.KW_SWITCH ->
    advance st;
    expect st Token.LPAREN;
    let scrutinee = parse_expr_prec st in
    expect st Token.RPAREN;
    expect st Token.LBRACE;
    let parse_label () =
      if accept st Token.KW_CASE then begin
        let e = parse_expr_prec st in
        expect st Token.COLON;
        Some (Ast.Case e)
      end
      else if accept st Token.KW_DEFAULT then begin
        expect st Token.COLON;
        Some Ast.Default
      end
      else None
    in
    let rec parse_groups acc =
      match parse_label () with
      | None ->
        expect st Token.RBRACE;
        List.rev acc
      | Some first ->
        let rec more_labels labels =
          match parse_label () with
          | Some l -> more_labels (l :: labels)
          | None -> List.rev labels
        in
        let labels = more_labels [ first ] in
        let rec body acc =
          match peek st with
          | Token.KW_CASE | Token.KW_DEFAULT | Token.RBRACE -> List.rev acc
          | _ -> body (parse_stmt st :: acc)
        in
        let case_body = body [] in
        parse_groups ({ Ast.case_labels = labels; case_body } :: acc)
    in
    let groups = parse_groups [] in
    Ast.mk_stmt ~loc (Ast.Sswitch (scrutinee, groups))
  | Token.KW_RETURN ->
    advance st;
    let e = if peek st = Token.SEMI then None else Some (parse_expr_prec st) in
    expect st Token.SEMI;
    Ast.mk_stmt ~loc (Ast.Sreturn e)
  | Token.KW_BREAK ->
    advance st;
    expect st Token.SEMI;
    Ast.mk_stmt ~loc Ast.Sbreak
  | Token.KW_CONTINUE ->
    advance st;
    expect st Token.SEMI;
    Ast.mk_stmt ~loc Ast.Scontinue
  | _ when starts_type st ->
    let s = parse_decl_stmt st ~consume_semi:true in
    s
  | _ ->
    let s = parse_simple st in
    expect st Token.SEMI;
    s

and parse_decl_stmt st ~consume_semi =
  let loc = peek_loc st in
  let base = parse_base_type st in
  let ty, name = parse_declarator st base in
  let init = if accept st Token.ASSIGN then Some (parse_initializer st) else None in
  if consume_semi then expect st Token.SEMI;
  Ast.mk_stmt ~loc (Ast.Sdecl (ty, name, init))

and parse_stmt_as_block st =
  match parse_stmt st with
  | { Ast.sdesc = Ast.Sblock b; _ } -> b
  | s -> [ s ]

and parse_block st =
  expect st Token.LBRACE;
  let rec go acc =
    if accept st Token.RBRACE then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

(* ---- globals -------------------------------------------------------------- *)

let parse_params st =
  expect st Token.LPAREN;
  if accept st Token.RPAREN then []
  else if peek st = Token.KW_VOID && peek_ahead st 1 = Token.RPAREN then begin
    advance st;
    advance st;
    []
  end
  else begin
    let rec go acc =
      let base = parse_base_type st in
      let ty, name = parse_declarator st base in
      if accept st Token.COMMA then go ((ty, name) :: acc)
      else begin
        expect st Token.RPAREN;
        List.rev ((ty, name) :: acc)
      end
    in
    go []
  end

let parse_struct_def st =
  expect st Token.KW_STRUCT;
  let name = expect_ident st in
  expect st Token.LBRACE;
  let rec fields acc =
    if accept st Token.RBRACE then List.rev acc
    else begin
      let base = parse_base_type st in
      let ty, fname = parse_declarator st base in
      expect st Token.SEMI;
      fields ((fname, ty) :: acc)
    end
  in
  let sfields = fields [] in
  expect st Token.SEMI;
  { Ctype.sname = name; sfields }

let parse_enum_def st =
  expect st Token.KW_ENUM;
  let ename =
    match peek st with
    | Token.IDENT n ->
      advance st;
      Some n
    | _ -> None
  in
  expect st Token.LBRACE;
  let rec members acc =
    let name = expect_ident st in
    let value = if accept st Token.ASSIGN then Some (parse_expr_prec st) else None in
    let acc = (name, value) :: acc in
    if accept st Token.COMMA then begin
      (* allow a trailing comma *)
      if peek st = Token.RBRACE then begin
        advance st;
        List.rev acc
      end
      else members acc
    end
    else begin
      expect st Token.RBRACE;
      List.rev acc
    end
  in
  let emembers = members [] in
  expect st Token.SEMI;
  Ast.Genum { ename; emembers }

let parse_global st =
  let loc = peek_loc st in
  (* A struct *definition* is 'struct' IDENT '{'; otherwise 'struct'
     begins a type as usual. An enum definition is 'enum' [IDENT] '{'. *)
  if peek st = Token.KW_ENUM
     && (peek_ahead st 1 = Token.LBRACE || peek_ahead st 2 = Token.LBRACE)
  then parse_enum_def st
  else if peek st = Token.KW_STRUCT && peek_ahead st 2 = Token.LBRACE then
    Ast.Gstruct (parse_struct_def st)
  else begin
    let extern = accept st Token.KW_EXTERN in
    let base = parse_base_type st in
    let ty, name = parse_declarator st base in
    if peek st = Token.LPAREN then begin
      let fparams = parse_params st in
      if accept st Token.SEMI then
        Ast.Gfun { fname = name; fret = ty; fparams; fbody = None; floc = loc }
      else begin
        if extern then error st "an extern function cannot have a body";
        let body = parse_block st in
        Ast.Gfun { fname = name; fret = ty; fparams; fbody = Some body; floc = loc }
      end
    end
    else begin
      let ginit = if accept st Token.ASSIGN then Some (parse_initializer st) else None in
      expect st Token.SEMI;
      if extern && ginit <> None then error st "an extern variable cannot have an initializer";
      Ast.Gvar { gty = ty; gname = name; ginit; gextern = extern; gloc = loc }
    end
  end

let parse_program ?(file = "<input>") src =
  let toks = Lexer.tokenize ~file src in
  let st = { toks; pos = 0 } in
  let rec go acc = if peek st = Token.EOF then List.rev acc else go (parse_global st :: acc) in
  go []

let parse_expr ?(file = "<input>") src =
  let toks = Lexer.tokenize ~file src in
  let st = { toks; pos = 0 } in
  let e = parse_expr_prec st in
  expect st Token.EOF;
  e
