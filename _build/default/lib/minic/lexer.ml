exception Error of Loc.t * string

let keyword_table =
  [ ("int", Token.KW_INT);
    ("char", Token.KW_CHAR);
    ("void", Token.KW_VOID);
    ("struct", Token.KW_STRUCT);
    ("extern", Token.KW_EXTERN);
    ("if", Token.KW_IF);
    ("else", Token.KW_ELSE);
    ("while", Token.KW_WHILE);
    ("do", Token.KW_DO);
    ("for", Token.KW_FOR);
    ("return", Token.KW_RETURN);
    ("break", Token.KW_BREAK);
    ("continue", Token.KW_CONTINUE);
    ("sizeof", Token.KW_SIZEOF);
    ("NULL", Token.KW_NULL);
    ("switch", Token.KW_SWITCH);
    ("case", Token.KW_CASE);
    ("default", Token.KW_DEFAULT);
    ("enum", Token.KW_ENUM) ]

let is_digit c = c >= '0' && c <= '9'
let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of the beginning of the current line *)
}

let loc st = Loc.make ~file:st.file ~line:st.line ~col:(st.pos - st.bol + 1)

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
   | Some '\n' ->
     st.line <- st.line + 1;
     st.bol <- st.pos + 1
   | Some _ | None -> ());
  st.pos <- st.pos + 1

let error st msg = raise (Error (loc st, msg))

let rec skip_blank_and_comments st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_blank_and_comments st
  | Some '/' when peek2 st = Some '/' ->
    while peek st <> None && peek st <> Some '\n' do
      advance st
    done;
    skip_blank_and_comments st
  | Some '/' when peek2 st = Some '*' ->
    let start = loc st in
    advance st;
    advance st;
    let rec eat () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | Some _, _ ->
        advance st;
        eat ()
      | None, _ -> raise (Error (start, "unterminated comment"))
    in
    eat ();
    skip_blank_and_comments st
  | Some _ | None -> ()

let lex_number st =
  let start = st.pos in
  if peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X') then begin
    advance st;
    advance st;
    let hstart = st.pos in
    while (match peek st with Some c -> is_hex_digit c | None -> false) do
      advance st
    done;
    if st.pos = hstart then error st "expected hexadecimal digits after 0x";
    Token.INT_LIT (int_of_string (String.sub st.src start (st.pos - start)))
  end
  else begin
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    Token.INT_LIT (int_of_string (String.sub st.src start (st.pos - start)))
  end

let lex_escaped st =
  (* Called after the backslash has been consumed. *)
  match peek st with
  | Some 'n' -> advance st; '\n'
  | Some 't' -> advance st; '\t'
  | Some 'r' -> advance st; '\r'
  | Some '0' -> advance st; '\000'
  | Some '\\' -> advance st; '\\'
  | Some '\'' -> advance st; '\''
  | Some '"' -> advance st; '"'
  | Some c -> error st (Printf.sprintf "unknown escape '\\%c'" c)
  | None -> error st "unterminated escape"

let lex_char_lit st =
  advance st; (* opening quote *)
  let c =
    match peek st with
    | Some '\\' ->
      advance st;
      lex_escaped st
    | Some c when c <> '\'' ->
      advance st;
      c
    | Some _ | None -> error st "empty character literal"
  in
  (match peek st with
   | Some '\'' -> advance st
   | Some _ | None -> error st "unterminated character literal");
  Token.CHAR_LIT c

let lex_string_lit st =
  advance st; (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      Buffer.add_char buf (lex_escaped st);
      go ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
    | None -> error st "unterminated string literal"
  in
  go ();
  Token.STRING_LIT (Buffer.contents buf)

let lex_ident_or_keyword st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match List.assoc_opt s keyword_table with
  | Some kw -> kw
  | None -> Token.IDENT s

(* Multi-character operators must be tried longest-first. *)
let lex_operator st =
  let two a b tok =
    if peek st = Some a && peek2 st = Some b then begin
      advance st;
      advance st;
      Some tok
    end
    else None
  in
  let candidates =
    [ lazy (two '-' '>' Token.ARROW);
      lazy (two '&' '&' Token.AMPAMP);
      lazy (two '|' '|' Token.PIPEPIPE);
      lazy (two '=' '=' Token.EQEQ);
      lazy (two '!' '=' Token.NEQ);
      lazy (two '<' '=' Token.LE);
      lazy (two '>' '=' Token.GE);
      lazy (two '<' '<' Token.SHL);
      lazy (two '>' '>' Token.SHR);
      lazy (two '+' '=' Token.PLUSEQ);
      lazy (two '-' '=' Token.MINUSEQ);
      lazy (two '*' '=' Token.STAREQ);
      lazy (two '/' '=' Token.SLASHEQ);
      lazy (two '+' '+' Token.PLUSPLUS);
      lazy (two '-' '-' Token.MINUSMINUS) ]
  in
  let rec try_two = function
    | [] -> None
    | c :: rest -> (match Lazy.force c with Some t -> Some t | None -> try_two rest)
  in
  match try_two candidates with
  | Some t -> Some t
  | None ->
    let one tok =
      advance st;
      Some tok
    in
    (match peek st with
     | Some '(' -> one Token.LPAREN
     | Some ')' -> one Token.RPAREN
     | Some '{' -> one Token.LBRACE
     | Some '}' -> one Token.RBRACE
     | Some '[' -> one Token.LBRACKET
     | Some ']' -> one Token.RBRACKET
     | Some ';' -> one Token.SEMI
     | Some ',' -> one Token.COMMA
     | Some '.' -> one Token.DOT
     | Some '?' -> one Token.QUESTION
     | Some ':' -> one Token.COLON
     | Some '+' -> one Token.PLUS
     | Some '-' -> one Token.MINUS
     | Some '*' -> one Token.STAR
     | Some '/' -> one Token.SLASH
     | Some '%' -> one Token.PERCENT
     | Some '&' -> one Token.AMP
     | Some '|' -> one Token.PIPE
     | Some '^' -> one Token.CARET
     | Some '~' -> one Token.TILDE
     | Some '!' -> one Token.BANG
     | Some '<' -> one Token.LT
     | Some '>' -> one Token.GT
     | Some '=' -> one Token.ASSIGN
     | Some _ | None -> None)

let tokenize ?(file = "<input>") src =
  let st = { src; file; pos = 0; line = 1; bol = 0 } in
  let toks = ref [] in
  let emit tok l = toks := (tok, l) :: !toks in
  let rec go () =
    skip_blank_and_comments st;
    let l = loc st in
    match peek st with
    | None -> emit Token.EOF l
    | Some c when is_digit c ->
      emit (lex_number st) l;
      go ()
    | Some c when is_ident_start c ->
      emit (lex_ident_or_keyword st) l;
      go ()
    | Some '\'' ->
      emit (lex_char_lit st) l;
      go ()
    | Some '"' ->
      emit (lex_string_lit st) l;
      go ()
    | Some c ->
      (match lex_operator st with
       | Some tok ->
         emit tok l;
         go ()
       | None -> error st (Printf.sprintf "unexpected character %C" c))
  in
  go ();
  Array.of_list (List.rev !toks)
