lib/minic/loc.ml: Format Printf
