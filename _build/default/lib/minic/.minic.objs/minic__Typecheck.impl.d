lib/minic/typecheck.ml: Ast Char Ctype Hashtbl List Loc Option Printf Tast
