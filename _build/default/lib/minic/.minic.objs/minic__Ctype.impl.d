lib/minic/ctype.ml: Format Hashtbl List Printf
