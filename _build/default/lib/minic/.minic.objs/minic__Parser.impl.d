lib/minic/parser.ml: Array Ast Ctype Lexer List Loc Printf Token
