lib/minic/tast.ml: Ast Ctype List Loc
