lib/minic/pretty.ml: Ast Buffer Ctype Format List Printf String
