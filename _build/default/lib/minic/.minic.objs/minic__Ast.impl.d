lib/minic/ast.ml: Ctype Loc
