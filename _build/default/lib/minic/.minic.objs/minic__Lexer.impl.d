lib/minic/lexer.ml: Array Buffer Lazy List Loc Printf String Token
