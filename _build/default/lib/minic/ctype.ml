(** MiniC types.

    The RAM machine is word-addressed: every scalar (including [char])
    occupies exactly one memory cell, so [sizeof] counts cells rather
    than bytes. Struct and array layout is consecutive cells. *)

type t =
  | Tint
  | Tchar
  | Tvoid
  | Tptr of t
  | Tarray of t * int
  | Tstruct of string

type struct_def = { sname : string; sfields : (string * t) list }

type struct_env = (string, struct_def) Hashtbl.t

let rec to_string = function
  | Tint -> "int"
  | Tchar -> "char"
  | Tvoid -> "void"
  | Tptr t -> to_string t ^ "*"
  | Tarray (t, n) -> Printf.sprintf "%s[%d]" (to_string t) n
  | Tstruct s -> "struct " ^ s

let pp fmt t = Format.pp_print_string fmt (to_string t)

let equal (a : t) (b : t) = a = b

let is_scalar = function
  | Tint | Tchar | Tptr _ -> true
  | Tvoid | Tarray _ | Tstruct _ -> false

let is_pointer = function Tptr _ -> true | _ -> false
let is_arith = function Tint | Tchar -> true | _ -> false

exception Unknown_struct of string

let find_struct env name =
  match Hashtbl.find_opt env name with
  | Some def -> def
  | None -> raise (Unknown_struct name)

(** Size in cells. *)
let rec sizeof env = function
  | Tint | Tchar | Tptr _ -> 1
  | Tvoid -> 0
  | Tarray (t, n) -> n * sizeof env t
  | Tstruct name ->
    let def = find_struct env name in
    List.fold_left (fun acc (_, ft) -> acc + sizeof env ft) 0 def.sfields

(** Offset of a field within a struct, in cells, together with its
    type. @raise Not_found if the field is absent. *)
let field_offset env sname fname =
  let def = find_struct env sname in
  let rec go off = function
    | [] -> raise Not_found
    | (f, ft) :: rest -> if f = fname then (off, ft) else go (off + sizeof env ft) rest
  in
  go 0 def.sfields
