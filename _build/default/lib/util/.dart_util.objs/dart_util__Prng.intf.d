lib/util/prng.mli:
