lib/util/word32.ml: Int64 Zarith_lite Zint
