lib/util/prng.ml: Int64 List
