lib/util/word32.mli: Zarith_lite
