(** 32-bit two's-complement machine words, the scalar type of the RAM
    machine (paper §2.2: "memory addresses m to, say, 32-bit words").

    Words are carried as native OCaml [int]s normalized to the signed
    range [-2{^31}, 2{^31}); all arithmetic wraps around exactly as C
    [int] arithmetic does on a 32-bit machine. *)

type t = int

val min_value : t
val max_value : t

val norm : int -> t
(** Wrap an arbitrary native integer into the signed 32-bit range. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t

val div : t -> t -> t
(** C semantics: truncation toward zero.
    @raise Division_by_zero on zero divisor. *)

val rem : t -> t -> t

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val shift_left : t -> t -> t
val shift_right : t -> t -> t
(** Arithmetic right shift. Shift amounts are masked to 5 bits, as on
    x86. *)

val of_bool : bool -> t
val to_bool : t -> bool
(** C truthiness: non-zero is true. *)

val to_zint : t -> Zarith_lite.Zint.t
val of_zint_trunc : Zarith_lite.Zint.t -> t
(** Truncate a bignum to 32 bits (two's complement), as a C cast
    would. *)
