type t = int

let width = 32
let modulus = 1 lsl width (* 2^32 fits comfortably in a 63-bit int *)
let max_value = (1 lsl (width - 1)) - 1
let min_value = -(1 lsl (width - 1))

let norm v =
  let m = v land (modulus - 1) in
  if m > max_value then m - modulus else m

let add a b = norm (a + b)
let sub a b = norm (a - b)

let mul a b =
  (* Products of two 32-bit values need 64 bits; native ints only hold
     63, so go through Int64 for the wraparound. *)
  norm (Int64.to_int (Int64.logand (Int64.mul (Int64.of_int a) (Int64.of_int b)) 0xFFFFFFFFL))

let neg a = norm (-a)

let div a b = if b = 0 then raise Division_by_zero else norm (a / b)
let rem a b = if b = 0 then raise Division_by_zero else norm (a mod b)

let to_unsigned a = a land (modulus - 1)

let logand a b = norm (to_unsigned a land to_unsigned b)
let logor a b = norm (to_unsigned a lor to_unsigned b)
let logxor a b = norm (to_unsigned a lxor to_unsigned b)
let lognot a = norm (lnot (to_unsigned a))
let shift_left a k = norm (to_unsigned a lsl (k land 31))

let shift_right a k =
  (* Arithmetic shift on the signed value. *)
  norm (a asr (k land 31))

let of_bool b = if b then 1 else 0
let to_bool v = v <> 0

let to_zint = Zarith_lite.Zint.of_int

let of_zint_trunc z =
  let open Zarith_lite in
  let m = Zint.of_int modulus in
  let r = Zint.rem z m in
  (* [Zint.rem] truncates toward zero; fold into [0, 2^32) first. *)
  let r = if Zint.sign r < 0 then Zint.add r m else r in
  norm (Zint.to_int r)
