open Minic

type cfg = {
  max_functions : int;
  max_params : int;
  max_statements : int;
  max_expr_depth : int;
  max_block_depth : int;
  abort_probability_pct : int;
}

let default_cfg =
  { max_functions = 3;
    max_params = 3;
    max_statements = 5;
    max_expr_depth = 3;
    max_block_depth = 3;
    abort_probability_pct = 10 }

let toplevel_name = "top"

type scope = {
  rng : Dart_util.Prng.t;
  cfg : cfg;
  globals : string list;
  funcs : (string * int) list; (* callable earlier functions: name, arity *)
  mutable vars : string list; (* in-scope int variables *)
  mutable arrays : (string * int) list; (* in-scope arrays: name, power-of-2 size *)
  mutable fresh : int;
}

let e d = Ast.mk_expr d
let s d = Ast.mk_stmt d

let fresh_name sc prefix =
  let n = sc.fresh in
  sc.fresh <- n + 1;
  Printf.sprintf "%s%d" prefix n

let pick_var sc =
  match sc.vars @ sc.globals with
  | [] -> e (Ast.Eint (Dart_util.Prng.int_range sc.rng (-8) 8))
  | vars -> e (Ast.Evar (Dart_util.Prng.choose sc.rng vars))

(* Array reads are kept in bounds by masking the index with size-1
   (sizes are powers of two and [&] of any two's-complement values is
   non-negative when the right operand is). *)
let pick_array_read sc depth gen_expr =
  match sc.arrays with
  | [] -> pick_var sc
  | arrays ->
    let name, size = Dart_util.Prng.choose sc.rng arrays in
    let idx = e (Ast.Ebinop (Ast.Band, gen_expr sc (depth - 1), e (Ast.Eint (size - 1)))) in
    e (Ast.Eindex (e (Ast.Evar name), idx))

let rec gen_expr sc depth =
  if depth <= 0 then begin
    match Dart_util.Prng.int_below sc.rng 3 with
    | 0 -> e (Ast.Eint (Dart_util.Prng.int_range sc.rng (-100) 100))
    | 1 ->
      (* occasionally interesting extremes *)
      e (Ast.Eint (Dart_util.Prng.choose sc.rng [ 0; 1; -1; 1 lsl 20; -(1 lsl 20); 2147483647; -2147483647 ]))
    | _ -> pick_var sc
  end
  else begin
    match Dart_util.Prng.int_below sc.rng 10 with
    | 0 | 1 -> pick_var sc
    | 2 -> e (Ast.Eint (Dart_util.Prng.int_range sc.rng (-1000) 1000))
    | 3 ->
      let op = Dart_util.Prng.choose sc.rng [ Ast.Neg; Ast.Bitnot; Ast.Lognot ] in
      e (Ast.Eunop (op, gen_expr sc (depth - 1)))
    | 4 -> pick_array_read sc depth gen_expr
    | 5 ->
      let c = gen_expr sc (depth - 1) in
      e (Ast.Econd (c, gen_expr sc (depth - 1), gen_expr sc (depth - 1)))
    | 6 ->
      e (Ast.Eand (gen_expr sc (depth - 1), gen_expr sc (depth - 1)))
    | 7 ->
      e (Ast.Eor (gen_expr sc (depth - 1), gen_expr sc (depth - 1)))
    | _ ->
      let op =
        Dart_util.Prng.choose sc.rng
          [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le;
            Ast.Gt; Ast.Ge; Ast.Band; Ast.Bor; Ast.Bxor; Ast.Shl; Ast.Shr ]
      in
      e (Ast.Ebinop (op, gen_expr sc (depth - 1), gen_expr sc (depth - 1)))
  end

let gen_call sc =
  match sc.funcs with
  | [] -> None
  | funcs ->
    let name, arity = Dart_util.Prng.choose sc.rng funcs in
    let args = List.init arity (fun _ -> gen_expr sc (sc.cfg.max_expr_depth - 1)) in
    Some (e (Ast.Ecall (name, args)))

let assignable sc ~excluded =
  List.filter (fun v -> not (List.mem v excluded)) (sc.vars @ sc.globals)

let rec gen_stmt sc ~excluded ~block_depth : Ast.stmt =
  let choice = Dart_util.Prng.int_below sc.rng 12 in
  let depth = sc.cfg.max_expr_depth in
  match choice with
  | 0 | 1 ->
    (* fresh local *)
    let name = fresh_name sc "v" in
    let init = gen_expr sc depth in
    sc.vars <- name :: sc.vars;
    s (Ast.Sdecl (Ctype.Tint, name, Some (Ast.Init_expr init)))
  | 2 | 3 | 4 ->
    (match assignable sc ~excluded with
     | [] -> s (Ast.Sblock [])
     | vars ->
       let v = Dart_util.Prng.choose sc.rng vars in
       s (Ast.Sassign (e (Ast.Evar v), gen_expr sc depth)))
  | 5 when block_depth < sc.cfg.max_block_depth ->
    let cond = gen_expr sc depth in
    let then_b = gen_block sc ~excluded ~block_depth:(block_depth + 1) in
    let else_b =
      if Dart_util.Prng.bool sc.rng then
        gen_block sc ~excluded ~block_depth:(block_depth + 1)
      else []
    in
    s (Ast.Sif (cond, then_b, else_b))
  | 6 when block_depth < sc.cfg.max_block_depth ->
    (* Bounded loop: the counter is fresh and never assigned inside, so
       termination is structural. *)
    let i = fresh_name sc "i" in
    let bound = Dart_util.Prng.int_range sc.rng 1 4 in
    let saved_vars = sc.vars in
    sc.vars <- i :: sc.vars;
    let body = gen_block sc ~excluded:(i :: excluded) ~block_depth:(block_depth + 1) in
    sc.vars <- saved_vars;
    s
      (Ast.Sfor
         ( Some (s (Ast.Sdecl (Ctype.Tint, i, Some (Ast.Init_expr (e (Ast.Eint 0)))))),
           Some (e (Ast.Ebinop (Ast.Lt, e (Ast.Evar i), e (Ast.Eint bound)))),
           Some
             (s
                (Ast.Sassign
                   (e (Ast.Evar i), e (Ast.Ebinop (Ast.Add, e (Ast.Evar i), e (Ast.Eint 1)))))),
           body ))
  | 7 ->
    (match gen_call sc with
     | Some call ->
       (match assignable sc ~excluded with
        | [] -> s (Ast.Sexpr call)
        | vars ->
          let v = Dart_util.Prng.choose sc.rng vars in
          s (Ast.Sassign (e (Ast.Evar v), call)))
     | None -> s (Ast.Sblock []))
  | 8 ->
    (* array write, masked index *)
    (match sc.arrays with
     | [] -> s (Ast.Sblock [])
     | arrays ->
       let name, size = Dart_util.Prng.choose sc.rng arrays in
       let idx = e (Ast.Ebinop (Ast.Band, gen_expr sc (depth - 1), e (Ast.Eint (size - 1)))) in
       s (Ast.Sassign (e (Ast.Eindex (e (Ast.Evar name), idx)), gen_expr sc depth)))
  | 9 when block_depth < sc.cfg.max_block_depth ->
    (* switch with distinct constant cases, random fallthrough *)
    let scrutinee = gen_expr sc depth in
    let n_cases = Dart_util.Prng.int_range sc.rng 1 3 in
    let base = Dart_util.Prng.int_range sc.rng (-3) 3 in
    let rec build_cases acc i =
      if i >= n_cases then List.rev acc
      else begin
        let body = gen_block sc ~excluded ~block_depth:(block_depth + 1) in
        let body = if Dart_util.Prng.bool sc.rng then body @ [ s Ast.Sbreak ] else body in
        let g = { Ast.case_labels = [ Ast.Case (e (Ast.Eint (base + i))) ]; case_body = body } in
        build_cases (g :: acc) (i + 1)
      end
    in
    let cases = build_cases [] 0 in
    let groups =
      if Dart_util.Prng.bool sc.rng then
        cases
        @ [ { Ast.case_labels = [ Ast.Default ];
              case_body = gen_block sc ~excluded ~block_depth:(block_depth + 1) } ]
      else cases
    in
    s (Ast.Sswitch (scrutinee, groups))
  | 10 when Dart_util.Prng.int_below sc.rng 100 < sc.cfg.abort_probability_pct ->
    (* a guarded abort: the bug the search is meant to find *)
    let cond = gen_expr sc depth in
    s (Ast.Sif (cond, [ s (Ast.Sexpr (e (Ast.Ecall ("abort", [])))) ], []))
  | _ ->
    (* a local capturing a possibly-faulting computation *)
    let init = gen_expr sc depth in
    let name = fresh_name sc "t" in
    sc.vars <- name :: sc.vars;
    s (Ast.Sdecl (Ctype.Tint, name, Some (Ast.Init_expr init)))

and gen_block sc ~excluded ~block_depth : Ast.block =
  let n = Dart_util.Prng.int_range sc.rng 1 sc.cfg.max_statements in
  let saved_vars = sc.vars in
  let saved_arrays = sc.arrays in
  (* Statements must be generated in order: later ones may reference
     locals declared by earlier ones. *)
  let rec build acc k =
    if k = 0 then List.rev acc else build (gen_stmt sc ~excluded ~block_depth :: acc) (k - 1)
  in
  let stmts = build [] n in
  sc.vars <- saved_vars;
  sc.arrays <- saved_arrays;
  stmts

let gen_function rng cfg ~globals ~funcs ~name ~nparams =
  let sc =
    { rng; cfg; globals; funcs; vars = []; arrays = []; fresh = 0 }
  in
  let params = List.init nparams (fun i -> (Ctype.Tint, Printf.sprintf "p%d" i)) in
  sc.vars <- List.map snd params;
  (* Give every function a small local array to exercise indexing. *)
  let arr_name = fresh_name sc "a" in
  let arr_size = Dart_util.Prng.choose rng [ 2; 4; 8 ] in
  let arr_decl = s (Ast.Sdecl (Ctype.Tarray (Ctype.Tint, arr_size), arr_name, None)) in
  let arr_init =
    List.init arr_size (fun i ->
        s
          (Ast.Sassign
             ( e (Ast.Eindex (e (Ast.Evar arr_name), e (Ast.Eint i))),
               e (Ast.Eint (Dart_util.Prng.int_range rng (-50) 50)) )))
  in
  sc.arrays <- [ (arr_name, arr_size) ];
  let body = gen_block sc ~excluded:[] ~block_depth:0 in
  let ret = s (Ast.Sreturn (Some (gen_expr sc cfg.max_expr_depth))) in
  { Ast.fname = name;
    fret = Ctype.Tint;
    fparams = params;
    fbody = Some ((arr_decl :: arr_init) @ body @ [ ret ]);
    floc = Loc.dummy }

let generate ?(cfg = default_cfg) rng : Ast.program =
  let n_globals = Dart_util.Prng.int_range rng 0 3 in
  let globals =
    List.init n_globals (fun i ->
        Ast.Gvar
          { gty = Ctype.Tint;
            gname = Printf.sprintf "g%d" i;
            ginit = Some (Ast.Init_expr (e (Ast.Eint (Dart_util.Prng.int_range rng (-100) 100))));
            gextern = false;
            gloc = Loc.dummy })
  in
  let global_names = List.init n_globals (Printf.sprintf "g%d") in
  let n_funcs = Dart_util.Prng.int_below rng (cfg.max_functions + 1) in
  let rec build i acc_funcs acc_sigs =
    if i >= n_funcs then (List.rev acc_funcs, acc_sigs)
    else begin
      let name = Printf.sprintf "callee%d" i in
      let nparams = Dart_util.Prng.int_below rng (cfg.max_params + 1) in
      let f = gen_function rng cfg ~globals:global_names ~funcs:acc_sigs ~name ~nparams in
      build (i + 1) (Ast.Gfun f :: acc_funcs) ((name, nparams) :: acc_sigs)
    end
  in
  let callees, sigs = build 0 [] [] in
  let nparams = Dart_util.Prng.int_range rng 1 cfg.max_params in
  let top =
    gen_function rng cfg ~globals:global_names ~funcs:sigs ~name:toplevel_name ~nparams
  in
  globals @ callees @ [ Ast.Gfun top ]

let generate_source ?cfg rng = Pretty.program_to_string (generate ?cfg rng)
