(** Random well-typed MiniC program generator.

    Produces closed programs (integer and in-bounds array operations
    only) whose executions are deterministic given their inputs, for
    differential and robustness testing: pretty/parse round-trips,
    optimizer equivalence, concolic replay of bug witnesses. Programs
    may abort, divide by zero or loop past the step budget — those are
    legitimate, comparable outcomes, not generator bugs. *)

type cfg = {
  max_functions : int; (* callees generated before the toplevel *)
  max_params : int;
  max_statements : int; (* per block *)
  max_expr_depth : int;
  max_block_depth : int;
  abort_probability_pct : int; (* chance per statement slot of an abort guard *)
}

val default_cfg : cfg

val toplevel_name : string
(** Name of the generated entry function ("top"). *)

val generate : ?cfg:cfg -> Dart_util.Prng.t -> Minic.Ast.program
(** Generate a program; always typechecks (property-tested). *)

val generate_source : ?cfg:cfg -> Dart_util.Prng.t -> string
(** The same, pretty-printed. *)
