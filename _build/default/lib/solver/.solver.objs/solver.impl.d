lib/solver/solver.ml: Branch_bound Constr Gauss Hashtbl Intervals Linexpr List Option Problem Symbolic Zarith_lite Zint
