lib/solver/gauss.ml: Hashtbl Linexpr List Problem Symbolic Zarith_lite Zint
