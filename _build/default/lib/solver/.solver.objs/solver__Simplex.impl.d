lib/solver/simplex.ml: Array Fun Hashtbl Linexpr List Qnum Symbolic Zarith_lite Zint
