lib/solver/problem.ml: Constr Dart_util Hashtbl Linexpr List Printf String Symbolic Zarith_lite Zint
