lib/solver/intervals.ml: Hashtbl Linexpr List Problem Symbolic Zarith_lite Zint
