lib/solver/branch_bound.ml: Intervals Linexpr List Qnum Simplex Symbolic Zarith_lite Zint
