lib/solver/solver.mli: Symbolic Zarith_lite
