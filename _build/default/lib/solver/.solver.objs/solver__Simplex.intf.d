lib/solver/simplex.mli: Symbolic Zarith_lite
