open Zarith_lite
open Symbolic

type result =
  | Sat of (Linexpr.var * Qnum.t) list
  | Unsat
  | Aborted

(* The tableau holds rows of [Sum coef_j * col_j = rhs] with a
   designated basic column per row. Columns: 0..n-1 shifted original
   variables (y = x - lo, so y >= 0), n..n+m-1 slacks, then
   artificials. The phase-1 objective (sum of artificials) is kept as
   an extra row updated by the same pivots. *)
let feasible ?(max_pivots = 20_000) ~vars ~lo ~hi ~les () =
  let vars = Array.of_list vars in
  let n = Array.length vars in
  let var_index = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace var_index v i) vars;
  (* Build raw rows: coefficients over y, and rhs. *)
  let raw_rows =
    (* Inequalities: sum a_v x_v + c <= 0 becomes sum a_v y_v <= -c - sum a_v lo_v. *)
    List.map
      (fun e ->
        let coefs = Array.make n Qnum.zero in
        let shift = ref (Linexpr.constant_part e) in
        List.iter
          (fun (v, a) ->
            let i = Hashtbl.find var_index v in
            coefs.(i) <- Qnum.add coefs.(i) (Qnum.of_zint a);
            shift := Zint.add !shift (Zint.mul a (lo v)))
          (Linexpr.terms e);
        (coefs, Qnum.of_zint (Zint.neg !shift)))
      les
    (* Box upper bounds: y_v <= hi_v - lo_v. *)
    @ (Array.to_list vars
      |> List.map (fun v ->
             let coefs = Array.make n Qnum.zero in
             coefs.(Hashtbl.find var_index v) <- Qnum.one;
             (coefs, Qnum.of_zint (Zint.sub (hi v) (lo v)))))
  in
  let m = List.length raw_rows in
  (* Count artificials: rows with negative rhs (after slack insertion
     and sign flip). *)
  let needs_art = List.map (fun (_, b) -> Qnum.sign b < 0) raw_rows in
  let nart = List.length (List.filter Fun.id needs_art) in
  let ncols = n + m + nart in
  let tableau = Array.make_matrix m (ncols + 1) Qnum.zero in
  let basis = Array.make m 0 in
  let art_cols = ref [] in
  let next_art = ref (n + m) in
  List.iteri
    (fun i ((coefs, b), neg) ->
      let flip = if neg then Qnum.neg else Fun.id in
      for j = 0 to n - 1 do
        tableau.(i).(j) <- flip coefs.(j)
      done;
      (* Slack for this row. *)
      tableau.(i).(n + i) <- flip Qnum.one;
      tableau.(i).(ncols) <- flip b;
      if neg then begin
        let a = !next_art in
        incr next_art;
        art_cols := a :: !art_cols;
        tableau.(i).(a) <- Qnum.one;
        basis.(i) <- a
      end
      else basis.(i) <- n + i)
    (List.combine raw_rows needs_art);
  let is_art = Array.make (ncols + 1) false in
  List.iter (fun a -> is_art.(a) <- true) !art_cols;
  (* Phase-1 objective: minimize w = sum artificials. Expressed over
     nonbasic columns by subtracting each artificial's row; obj.(ncols)
     holds -w. *)
  let obj = Array.make (ncols + 1) Qnum.zero in
  List.iter (fun a -> obj.(a) <- Qnum.one) !art_cols;
  for i = 0 to m - 1 do
    if is_art.(basis.(i)) then
      for j = 0 to ncols do
        obj.(j) <- Qnum.sub obj.(j) tableau.(i).(j)
      done
  done;
  let pivot row col =
    let p = tableau.(row).(col) in
    for j = 0 to ncols do
      tableau.(row).(j) <- Qnum.div tableau.(row).(j) p
    done;
    for i = 0 to m - 1 do
      if i <> row then begin
        let f = tableau.(i).(col) in
        if not (Qnum.is_zero f) then
          for j = 0 to ncols do
            tableau.(i).(j) <- Qnum.sub tableau.(i).(j) (Qnum.mul f tableau.(row).(j))
          done
      end
    done;
    let f = obj.(col) in
    if not (Qnum.is_zero f) then
      for j = 0 to ncols do
        obj.(j) <- Qnum.sub obj.(j) (Qnum.mul f tableau.(row).(j))
      done;
    basis.(row) <- col
  in
  (* Bland's rule: entering column = smallest index with negative
     reduced cost; leaving row = ratio test with smallest basis index
     tie-break. *)
  let rec iterate k =
    if k > max_pivots then `Aborted
    else begin
      let entering = ref (-1) in
      (try
         for j = 0 to ncols - 1 do
           if Qnum.sign obj.(j) < 0 then begin
             entering := j;
             raise Exit
           end
         done
       with Exit -> ());
      if !entering < 0 then `Optimal
      else begin
        let col = !entering in
        let best = ref None in
        for i = 0 to m - 1 do
          if Qnum.sign tableau.(i).(col) > 0 then begin
            let ratio = Qnum.div tableau.(i).(ncols) tableau.(i).(col) in
            match !best with
            | None -> best := Some (i, ratio)
            | Some (bi, br) ->
              let c = Qnum.compare ratio br in
              if c < 0 || (c = 0 && basis.(i) < basis.(bi)) then best := Some (i, ratio)
          end
        done;
        match !best with
        | None -> `Unbounded (* cannot happen: w is bounded below by 0 *)
        | Some (row, _) ->
          pivot row col;
          iterate (k + 1)
      end
    end
  in
  match iterate 0 with
  | `Aborted -> Aborted
  | `Unbounded -> Unsat
  | `Optimal ->
    let w = Qnum.neg obj.(ncols) in
    if Qnum.sign w > 0 then Unsat
    else begin
      (* Sample point: basic y variables take their row's rhs. *)
      let y = Array.make n Qnum.zero in
      for i = 0 to m - 1 do
        if basis.(i) < n then y.(basis.(i)) <- tableau.(i).(ncols)
      done;
      let assignment =
        Array.to_list
          (Array.mapi (fun i v -> (v, Qnum.add (Qnum.of_zint (lo v)) y.(i))) vars)
      in
      Sat assignment
    end
