(** Equality elimination with unit pivots.

    Each equality [... + x + rest = 0] whose pivot variable has
    coefficient +-1 defines [x] as an integer-coefficient expression of
    the other variables; substituting it everywhere shrinks the
    problem while preserving integer solutions exactly. Equalities
    without a unit-coefficient variable are conservatively rewritten as
    a pair of inequalities and left to branch-and-bound. *)

open Zarith_lite
open Symbolic

type subst = (Linexpr.var * Linexpr.t) list
(** [x := e] definitions whose right-hand sides only mention surviving
    variables, so back-substitution is order-independent. *)

type result =
  | Unsat
  | Reduced of Problem.t * subst

let substitute_var x def e =
  let c = Linexpr.coeff e x in
  if Zint.is_zero c then e
  else begin
    (* e - c*x + c*def *)
    let without = Linexpr.sub e (Linexpr.scale c (Linexpr.var x)) in
    Linexpr.add without (Linexpr.scale c def)
  end

let find_unit_pivot e =
  List.find_opt (fun (_, c) -> Zint.is_one c || Zint.equal c Zint.minus_one) (Linexpr.terms e)

let eliminate (p : Problem.t) : result =
  let subst : subst ref = ref [] in
  let les = ref p.les in
  let nes = ref p.nes in
  let kept_eqs = ref [] in
  let apply_everywhere x def =
    les := List.map (substitute_var x def) !les;
    nes := List.map (substitute_var x def) !nes;
    kept_eqs := List.map (substitute_var x def) !kept_eqs;
    subst := List.map (fun (v, e) -> (v, substitute_var x def e)) !subst;
    subst := (x, def) :: !subst
  in
  let unsat = ref false in
  let rec process eqs =
    match eqs with
    | [] -> ()
    | e :: rest ->
      let e = List.fold_left (fun e (x, def) -> substitute_var x def e) e !subst in
      (match Linexpr.is_const e with
       | Some c -> if not (Zint.is_zero c) then unsat := true else process rest
       | None ->
         (match find_unit_pivot e with
          | Some (x, c) ->
            (* c*x + rest = 0  =>  x = -rest/c with c = +-1. *)
            let rest_expr = Linexpr.sub e (Linexpr.scale c (Linexpr.var x)) in
            let def =
              if Zint.is_one c then Linexpr.neg rest_expr else rest_expr
            in
            apply_everywhere x def;
            if not !unsat then process rest
          | None ->
            kept_eqs := e :: !kept_eqs;
            process rest))
  in
  process p.eqs;
  if !unsat then Unsat
  else begin
    (* Equalities without unit pivot become e <= 0 and -e <= 0; the
       reduced problem carries no equalities at all. *)
    let extra_les = List.concat_map (fun e -> [ e; Linexpr.neg e ]) !kept_eqs in
    Reduced ({ Problem.eqs = []; les = extra_les @ !les; nes = !nes }, !subst)
  end

(** Extend an assignment of the surviving variables to the eliminated
    ones. *)
let back_substitute (subst : subst) env_tbl =
  List.iter
    (fun (x, def) ->
      let value =
        Linexpr.eval
          (fun v ->
            match Hashtbl.find_opt env_tbl v with
            | Some z -> z
            | None -> Zint.zero)
          def
      in
      Hashtbl.replace env_tbl x value)
    subst
