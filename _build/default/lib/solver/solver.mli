(** Front door of the linear integer constraint solver (the role
    lp_solve plays in the paper, §3.3).

    Decides satisfiability of a conjunction of {!Symbolic.Constr.t}
    atoms over 32-bit-bounded integer variables and produces a model.
    Pipeline: unit-pivot Gaussian elimination of equalities, interval
    absorption of univariate inequalities (fast path), then rational
    simplex with branch-and-bound for anything multivariate, with
    case-splitting for disequalities. Every model returned is verified
    against the input constraints before being handed back. *)

type result =
  | Sat of (Symbolic.Linexpr.var * Zarith_lite.Zint.t) list
      (** Model covering every variable occurring in the input. *)
  | Unsat
  | Unknown (* resource limits hit; callers must treat conservatively *)

type stats = {
  mutable queries : int;
  mutable sat : int;
  mutable unsat : int;
  mutable unknown : int;
  mutable fast_path : int; (* queries discharged without simplex *)
  mutable simplex_queries : int;
  mutable ne_splits : int;
}

val create_stats : unit -> stats

val solve :
  ?stats:stats ->
  ?prefer:(Symbolic.Linexpr.var -> Zarith_lite.Zint.t option) ->
  ?use_simplex:bool ->
  Symbolic.Constr.t list ->
  result
(** [solve cs] finds an integer model of the conjunction [cs].
    [prefer] suggests values for under-constrained variables (the
    directed search passes the previous run's inputs, matching the
    paper's [IM + IM'] update). [use_simplex:false] disables the
    simplex/branch-and-bound stage (ablation A2): multivariate systems
    then come back [Unknown]. *)

val check_model : Symbolic.Constr.t list -> (Symbolic.Linexpr.var * Zarith_lite.Zint.t) list -> bool
(** [check_model cs model] verifies that [model] satisfies [cs]. *)
