(** Exact rational phase-1 simplex (feasibility only).

    Decides whether a conjunction of linear inequalities [e <= 0] has a
    rational solution within the per-variable box bounds, and produces
    a sample point. Pivoting uses Bland's rule, so it terminates; all
    arithmetic is exact over {!Zarith_lite.Qnum}. *)

type result =
  | Sat of (Symbolic.Linexpr.var * Zarith_lite.Qnum.t) list
  | Unsat
  | Aborted (* pivot budget exhausted; caller must treat as unknown *)

val feasible :
  ?max_pivots:int ->
  vars:Symbolic.Linexpr.var list ->
  lo:(Symbolic.Linexpr.var -> Zarith_lite.Zint.t) ->
  hi:(Symbolic.Linexpr.var -> Zarith_lite.Zint.t) ->
  les:Symbolic.Linexpr.t list ->
  unit ->
  result
(** Variables not in [vars] must not occur in [les]. Box bounds must
    satisfy [lo <= hi] for every variable. *)
