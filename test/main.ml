let () =
  Alcotest.run "dart"
    [ ("zint", Test_zint.suite);
      ("qnum", Test_qnum.suite);
      ("util", Test_util.suite);
      ("frontend", Test_frontend.suite);
      ("lower", Test_lower.suite);
      ("machine", Test_machine.suite);
      ("compile", Test_compile.suite);
      ("symbolic", Test_symbolic.suite);
      ("solver", Test_solver.suite);
      ("incremental", Diff_solver.suite);
      ("concolic", Test_concolic.suite);
      ("telemetry", Test_telemetry.suite);
      ("status", Test_status.suite);
      ("profile", Test_profile.suite);
      ("cover", Test_cover.suite);
      ("driver", Test_driver.suite);
      ("strategy", Test_strategy.suite);
      ("accel", Test_accel.suite);
      ("parallel", Test_parallel.suite);
      ("campaign", Test_campaign.suite);
      ("resilience", Test_resilience.suite);
      ("workloads", Test_workloads.suite);
      ("progen", Test_progen.suite) ]
