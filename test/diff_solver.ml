(* Differential harness for incremental solving: drive one persistent
   Solver.Incr context and fresh from-scratch solves through the same
   query script and require identical observable results — verdict and
   model alike. Mirrors diff_engines.ml, which plays the same game for
   the two execution engines: the incremental context claims to be an
   optimisation, so any divergence is a bug in it. *)

open Zarith_lite
open Symbolic

let z = Zint.of_int

let mk c0 terms =
  List.fold_left
    (fun acc (x, c) -> Linexpr.add acc (Linexpr.scale (z c) (Linexpr.var x)))
    (Linexpr.of_int c0) terms

type query = {
  q_pivot : Constr.t;
  q_prefix : Constr.t list; (* outermost-first, like the kept PC prefix *)
  q_domains : Constr.t list;
}

type observation = { verdict : string; model : (Linexpr.var * Zint.t) list }

let observe = function
  | Solver.Sat model -> { verdict = "sat"; model }
  | Solver.Unsat -> { verdict = "unsat"; model = [] }
  | Solver.Unknown -> { verdict = "unknown"; model = [] }

(* The IM-preference the directed search always passes: under-constrained
   variables must come back at their preferred values on both routes. *)
let im = [ (0, 1); (1, 5); (2, -3); (3, 7) ]
let prefer v = Option.map z (List.assoc_opt v im)

let run_incr ictx q =
  observe
    (Solver.Incr.solve ictx ~prefer ~pivot:q.q_pivot ~prefix:q.q_prefix
       ~domains:q.q_domains ())

let run_fresh q = observe (Solver.solve ~prefer (q.q_pivot :: (q.q_prefix @ q.q_domains)))

(* Play a script through one persistent context and through one-shot
   solves; [true] iff every query agrees exactly. *)
let script_agrees queries =
  let ictx = Solver.Incr.create () in
  List.for_all
    (fun q ->
      let i = run_incr ictx q and f = run_fresh q in
      i.verdict = f.verdict && i.model = f.model)
    queries

let check_script queries =
  let ictx = Solver.Incr.create () in
  List.iteri
    (fun i q ->
      let inc = run_incr ictx q and f = run_fresh q in
      Alcotest.(check string) (Printf.sprintf "query %d verdict" i) f.verdict inc.verdict;
      Alcotest.(check bool) (Printf.sprintf "query %d model" i) true (f.model = inc.model))
    queries

let le e = Constr.make e Constr.Le0
let eq e = Constr.make e Constr.Eq0
let ne e = Constr.make e Constr.Ne0
let range v lo hi = [ le (mk lo [ (v, -1) ]); le (mk (-hi) [ (v, 1) ]) ]

(* ---- deterministic scripts --------------------------------------------------- *)

(* DFS descent: the prefix grows one level per query, exactly the
   pattern Solve_pc produces, so pops_saved accrues while results stay
   pinned to the from-scratch route. *)
let test_dfs_descent () =
  let lvl k = le (mk (-k) [ (0, 1); (1, 1) ]) in
  let prefixes = List.init 5 (fun n -> List.init n lvl) in
  check_script
    (List.map
       (fun p ->
         { q_pivot = eq (mk (-2) [ (0, 1) ]); q_prefix = p; q_domains = range 1 0 255 })
       prefixes)

(* Backtracking: shared prefixes interleaved with full retractions and
   re-descents along a different branch. *)
let test_backtracking () =
  let a = le (mk (-10) [ (0, 1) ]) in
  let b = eq (mk (-4) [ (1, 1) ]) in
  let b' = ne (mk (-4) [ (1, 1) ]) in
  check_script
    [ { q_pivot = eq (mk (-3) [ (0, 1) ]); q_prefix = [ a; b ]; q_domains = [] };
      { q_pivot = eq (mk (-5) [ (0, 1) ]); q_prefix = [ a; b ]; q_domains = [] };
      { q_pivot = eq (mk (-5) [ (0, 1) ]); q_prefix = [ a; b' ]; q_domains = [] };
      { q_pivot = eq (mk 11 [ (0, 1) ]); q_prefix = [ a ]; q_domains = [] };
      (* back to the first stack: the memoised prepared state answers *)
      { q_pivot = eq (mk (-3) [ (0, 1) ]); q_prefix = [ a; b ]; q_domains = [] } ]

(* Simplex-requiring multivariate queries through the context. *)
let test_multivariate_through_context () =
  let sum_ge_10 = le (mk 10 [ (0, -1); (1, -1) ]) in
  let diff_le_1 = le (mk (-1) [ (0, 1); (1, -1) ]) in
  check_script
    [ { q_pivot = sum_ge_10; q_prefix = []; q_domains = [] };
      { q_pivot = diff_le_1; q_prefix = [ sum_ge_10 ]; q_domains = [] };
      { q_pivot = ne (mk 0 [ (0, 1); (1, -1) ]);
        q_prefix = [ sum_ge_10; diff_le_1 ];
        q_domains = range 0 0 255 @ range 1 0 255 } ]

(* Unsat must also agree, and must not poison the next query. *)
let test_unsat_in_the_middle () =
  let a = eq (mk (-1) [ (0, 1) ]) in
  check_script
    [ { q_pivot = eq (mk (-3) [ (0, 1) ]); q_prefix = [ a ]; q_domains = [] };
      { q_pivot = eq (mk (-1) [ (0, 1) ]); q_prefix = [ a ]; q_domains = [] };
      { q_pivot = le (mk 300 [ (0, -1) ]); q_prefix = []; q_domains = range 0 0 255 } ]

(* ---- satellite: deadline overruns reset context state ------------------------ *)

(* A deadline overrun mid-incremental-solve must not leak partial state
   (stale tableau rows, half-learned bounds) into the context: the
   follow-up query through the *same* context must match a fresh-context
   solve exactly. The constantly-true deadline is the same predicate the
   faultsim solver_deadline injection installs. *)
let test_deadline_overrun_resets_context () =
  let ictx = Solver.Incr.create () in
  let sum_ge_10 = le (mk 10 [ (0, -1); (1, -1) ]) in
  let q =
    { q_pivot = ne (mk 0 [ (0, 1); (1, -1) ]);
      q_prefix = [ sum_ge_10; le (mk (-1) [ (0, 1); (1, -1) ]) ];
      q_domains = range 0 0 255 @ range 1 0 255 }
  in
  let stats = Solver.create_stats () in
  (match
     Solver.Incr.solve ictx ~stats
       ~deadline:(fun () -> true)
       ~prefer ~pivot:q.q_pivot ~prefix:q.q_prefix ~domains:q.q_domains ()
   with
   | Solver.Unknown -> ()
   | _ -> Alcotest.fail "expected Unknown under an expired deadline");
  Alcotest.(check int) "counted as overrun" 1 (Solver.deadline_overruns stats);
  (* Same query again, no deadline: must equal the fresh-context solve. *)
  let followup = run_incr ictx q and fresh = run_fresh q in
  Alcotest.(check string) "follow-up verdict matches fresh" fresh.verdict followup.verdict;
  Alcotest.(check bool) "follow-up model matches fresh" true (fresh.model = followup.model);
  (* And a different stack afterwards stays unperturbed too. *)
  let q2 = { q_pivot = eq (mk (-7) [ (0, 1) ]); q_prefix = []; q_domains = range 0 0 255 } in
  let i2 = run_incr ictx q2 and f2 = run_fresh q2 in
  Alcotest.(check string) "next stack verdict" f2.verdict i2.verdict;
  Alcotest.(check bool) "next stack model" true (f2.model = i2.model)

(* ---- property: random constraint stacks -------------------------------------- *)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:120 ~name gen f)

let atom_gen nvars =
  let open QCheck2.Gen in
  let* pinned = int_range 0 (nvars - 1) in
  let* pinned_coef = oneofl [ -3; -2; -1; 1; 2; 3 ] in
  let* coefs = array_size (return nvars) (int_range (-2) 2) in
  let* c0 = int_range (-8) 8 in
  let* rel = oneofl [ Constr.Le0; Constr.Lt0; Constr.Eq0; Constr.Ne0 ] in
  coefs.(pinned) <- pinned_coef;
  let terms =
    Array.to_list coefs |> List.mapi (fun i c -> (i, c)) |> List.filter (fun (_, c) -> c <> 0)
  in
  return (Constr.make (mk c0 terms) rel)

(* An evolving stack: every step pops a random suffix, pushes fresh
   atoms and queries a fresh pivot — the shape of a directed search
   wandering its branch tree. *)
let script_gen =
  let open QCheck2.Gen in
  let nvars = 3 in
  let* n_queries = int_range 1 7 in
  let* with_domains = bool in
  let domains = if with_domains then range 0 0 60 @ range 1 0 60 else [] in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let rec build stack n acc =
    if n = 0 then return (List.rev acc)
    else
      let* keep = int_range 0 (List.length stack) in
      let stack = take keep stack in
      let* pushed = list_size (int_range 0 2) (atom_gen nvars) in
      let stack = stack @ pushed in
      let* pivot = atom_gen nvars in
      build stack (n - 1) ({ q_pivot = pivot; q_prefix = stack; q_domains = domains } :: acc)
  in
  build [] n_queries []

let properties =
  [ prop "push/pop equals from-scratch on random stacks" script_gen script_agrees ]

let suite =
  [ Alcotest.test_case "dfs descent" `Quick test_dfs_descent;
    Alcotest.test_case "backtracking" `Quick test_backtracking;
    Alcotest.test_case "multivariate through context" `Quick
      test_multivariate_through_context;
    Alcotest.test_case "unsat mid-script" `Quick test_unsat_in_the_middle;
    Alcotest.test_case "deadline overrun resets context" `Quick
      test_deadline_overrun_resets_context ]
  @ properties
