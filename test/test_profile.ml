(* dartc profile: wall-clock attribution is a pure function of the
   event list, so both the aggregation and the rendered text can be
   pinned against a small synthetic trace. *)

module T = Dart.Telemetry
module P = Dart.Profile

(* A hand-built campaign-shaped trace: two targets over one round,
   three solver sites, phase totals at the end. *)
let events =
  [ T.Target_scheduled { target = "alpha"; round = 0 };
    T.Run_end { run = 1; outcome = "halted"; steps = 10; dur_ns = 1_000L };
    T.Solve_query
      { fn = "alpha"; pc = 3; result = T.R_sat; dur_ns = 100L; cache_hit = false;
        sliced = 0 };
    T.Solve_query
      { fn = "alpha"; pc = 3; result = T.R_unsat; dur_ns = 300L; cache_hit = false;
        sliced = 0 };
    T.Run_end { run = 2; outcome = "halted"; steps = 12; dur_ns = 3_000L };
    T.Slice_end { target = "alpha"; round = 0; outcome = "bug"; runs = 2; dur_ns = 10_000L };
    T.Target_retired { target = "alpha"; reason = "bug" };
    T.Target_scheduled { target = "beta"; round = 0 };
    T.Solve_query
      { fn = "beta"; pc = 1; result = T.R_sat; dur_ns = 500L; cache_hit = false;
        sliced = 0 };
    T.Solve_query
      { fn = "beta"; pc = 9; result = T.R_sat; dur_ns = 50L; cache_hit = true; sliced = 0 };
    T.Run_end { run = 1; outcome = "halted"; steps = 8; dur_ns = 2_000L };
    T.Slice_end { target = "beta"; round = 0; outcome = "budget"; runs = 1; dur_ns = 30_000L };
    T.Round_end { round = 0; active = 1; dur_ns = 40_000L };
    T.Phase_total { phase = T.Execute; dur_ns = 6_000L };
    T.Phase_total { phase = T.Solve; dur_ns = 950L };
    T.Phase_total { phase = T.Lower; dur_ns = 2_000L };
    T.Phase_total { phase = T.Merge; dur_ns = 0L } ]

let test_aggregation () =
  let p = P.of_events events in
  Alcotest.(check int) "event count" (List.length events) p.P.p_events;
  Alcotest.(check int) "rounds" 1 p.P.p_rounds;
  Alcotest.(check int) "run samples" 3 (T.Hist.count p.P.p_run_hist);
  Alcotest.(check int) "solve samples" 4 (T.Hist.count p.P.p_solve_hist);
  Alcotest.(check int64) "solve phase total" 950L
    (List.assoc T.Solve p.P.p_phase_ns);
  (* Sites ranked by total solve time: beta:1 (500) > alpha:3 (400) >
     beta:9 (50). *)
  (match p.P.p_sites with
   | [ s1; s2; s3 ] ->
     Alcotest.(check (pair string int)) "hottest" ("beta", 1) (s1.P.sp_fn, s1.P.sp_pc);
     Alcotest.(check int64) "hottest total" 500L s1.P.sp_total_ns;
     Alcotest.(check (pair string int)) "second" ("alpha", 3) (s2.P.sp_fn, s2.P.sp_pc);
     Alcotest.(check int) "second queries" 2 s2.P.sp_queries;
     Alcotest.(check int64) "second mean" 200L s2.P.sp_mean_ns;
     Alcotest.(check (pair string int)) "third" ("beta", 9) (s3.P.sp_fn, s3.P.sp_pc)
   | sites -> Alcotest.failf "expected 3 sites, got %d" (List.length sites));
  (* Targets ranked by total slice time: beta (30us) > alpha (10us);
     alpha retired, beta not. *)
  match p.P.p_targets with
  | [ t1; t2 ] ->
    Alcotest.(check string) "slowest target" "beta" t1.P.tp_name;
    Alcotest.(check (option string)) "beta unfinished" None t1.P.tp_retired;
    Alcotest.(check string) "other target" "alpha" t2.P.tp_name;
    Alcotest.(check (option string)) "alpha retired" (Some "bug") t2.P.tp_retired;
    Alcotest.(check int) "alpha runs" 2 t2.P.tp_runs
  | targets -> Alcotest.failf "expected 2 targets, got %d" (List.length targets)

let test_render_golden () =
  let out = P.to_string ~top:2 (P.of_events events) in
  let expect_lines =
    [ "profile: 17 events";
      "phases:";
      "  execute         6.0us  ( 67.0%)";
      "  solve           950ns  ( 10.6%)";
      "hottest solver sites (top 2 of 3, by total time):";
      "  beta:1                            1 queries  total      500ns  mean      500ns";
      "campaign targets (2, 1 rounds, by total time):";
      "  beta                           1 slices      1 runs      30.0us  ( 75.0%)  unfinished";
      "  alpha                          1 slices      2 runs      10.0us  ( 25.0%)  retired: bug" ]
  in
  List.iter
    (fun line ->
      Alcotest.(check bool) (Printf.sprintf "output has %S" line) true
        (Str_contains.contains out (line ^ "\n")))
    expect_lines;
  (* --top truncates the site list: the coldest site drops off. *)
  Alcotest.(check bool) "beta:9 truncated by top 2" false
    (Str_contains.contains out "beta:9")

(* Determinism: same events, same output, and order-insensitive inputs
   (the two partitions of a parallel trace) only differ where they
   should. *)
let test_render_deterministic () =
  let a = P.to_string (P.of_events events) in
  let b = P.to_string (P.of_events events) in
  Alcotest.(check string) "pure function of the trace" a b

let test_empty_trace () =
  let p = P.of_events [] in
  Alcotest.(check int) "no events" 0 p.P.p_events;
  let out = P.to_string p in
  Alcotest.(check bool) "renders the empty histograms" true
    (Str_contains.contains out "(empty)")

let suite =
  [ Alcotest.test_case "aggregation" `Quick test_aggregation;
    Alcotest.test_case "render golden" `Quick test_render_golden;
    Alcotest.test_case "render deterministic" `Quick test_render_deterministic;
    Alcotest.test_case "empty trace" `Quick test_empty_trace ]
