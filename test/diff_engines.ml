(* Differential harness: execute a program under both the tree-walking
   interpreter and the compiled closure engine and require identical
   observable behaviour — outcome, step count, branch trace, and the
   full final memory. [Test_machine] routes every program it runs
   through here, so each machine-semantics fixture doubles as a
   compiler-correctness fixture. *)

type observation = {
  outcome : string;
  steps : int;
  branch_count : int;
  branches : (string * int * bool) list; (* chronological (fn, pc, taken) *)
  memory : (int * int option) list;
}

let outcome_to_string = function
  | Machine.Halted -> "halted"
  | Machine.Faulted (f, s) ->
    Printf.sprintf "fault %s at %s:%d" (Machine.fault_to_string f) s.Machine.site_fn
      s.Machine.site_pc

let observe ~compile ?config ?library ?args prog ~entry =
  let m = Machine.load ?config ?library ~compile prog in
  let branches = ref [] in
  let listener =
    { Machine.null_listener with
      Machine.on_branch =
        (fun _ ~cond:_ ~base:_ ~taken ~site ->
          branches := (site.Machine.site_fn, site.Machine.site_pc, taken) :: !branches) }
  in
  let outcome = Machine.run ?args ~listener m ~entry in
  ( { outcome = outcome_to_string outcome;
      steps = Machine.steps m;
      branch_count = Machine.branch_count m;
      branches = List.rev !branches;
      memory = Machine.memory_snapshot m },
    outcome,
    m )

let check_equal (interp : observation) (compiled : observation) =
  Alcotest.(check string) "outcome (interp vs compiled)" interp.outcome compiled.outcome;
  Alcotest.(check int) "step count" interp.steps compiled.steps;
  Alcotest.(check int) "branch count" interp.branch_count compiled.branch_count;
  Alcotest.(check (list (triple string int bool))) "branch trace" interp.branches
    compiled.branches;
  Alcotest.(check bool) "final memory" true (interp.memory = compiled.memory)

(* Run under both engines, check them against each other, and return
   the compiled run's outcome and machine (so callers can inspect
   memory exactly as they would after a plain [Machine.run]). *)
let run ?config ?library ?args prog ~entry =
  let interp, _, _ = observe ~compile:false ?config ?library ?args prog ~entry in
  let compiled, outcome, m = observe ~compile:true ?config ?library ?args prog ~entry in
  check_equal interp compiled;
  (outcome, m)
