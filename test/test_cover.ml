(* The coverage explorer: source-line mapping of branch sites, the
   annotated listing, lcov export (validated by round-tripping through
   our own parser), the HTML report, and the coverage-over-time
   machinery — all pinned to agree with Coverage.compute, which is the
   single source of truth for every total. *)

module C = Dart.Cover_report
module T = Dart.Telemetry

let contains = Str_contains.contains

(* Directed search over [src], returning the prepared program, the
   report and the traced events (ring sink). *)
let search ?(depth = 1) ?(max_runs = 5_000) ~toplevel src =
  let ast = Minic.Parser.parse_program src in
  let prog = Dart.Driver.prepare ~toplevel ~depth ast in
  let sink = T.ring ~capacity:(1 lsl 18) in
  let options =
    Dart.Driver.Options.make ~depth ~max_runs ~stop_on_first_bug:false
      ~telemetry:(T.with_sink sink) ()
  in
  let report = Dart.Driver.run ~options prog in
  (prog, report, T.events sink)

(* ---- golden annotated listing ---------------------------------------------------- *)

(* Known branch lines: two sites on line 3 (the short-circuit && is two
   Iif sites), one on line 5. A full DFS search covers every
   direction. *)
let golden_src =
  "int classify(int x, int y) {\n\
  \  int r = 0;\n\
  \  if (x > 0 && y > 0)\n\
  \    r = 1;\n\
  \  if (x == 12345)\n\
  \    abort();\n\
  \  return r;\n\
   }\n"

let golden_expected =
  "annotated source (one two-glyph marker per branch site, taken direction first):\n\
  \  \u{2713}\u{2713} full   \u{2713}\u{00b7} fall-through missing (frontier)   \
   \u{00b7}\u{2713} taken missing (frontier)   \u{00b7}\u{00b7} unreached\n\n\
  \       |    1 | int classify(int x, int y) {\n\
  \       |    2 |   int r = 0;\n\
  \ \u{2713}\u{2713} \u{2713}\u{2713} |    3 |   if (x > 0 && y > 0)\n\
  \       |    4 |     r = 1;\n\
  \ \u{2713}\u{2713}    |    5 |   if (x == 12345)\n\
  \       |    6 |     abort();\n\
  \       |    7 |   return r;\n\
  \       |    8 | }\n\
   \n\
   branch coverage (directions taken / possible):\n\
  \  classify                         6/  6  (3 sites fully covered)\n\
  \  total: 100.0%\n"

let test_annotate_golden () =
  let prog, r, _ = search ~toplevel:"classify" golden_src in
  let t = C.compute prog ~covered:r.Dart.Driver.coverage_sites in
  Alcotest.(check string) "golden annotated listing" golden_expected
    (C.annotate t ~source:golden_src)

let test_status_classification () =
  let prog, r, _ = search ~toplevel:"classify" golden_src in
  let full = C.compute prog ~covered:r.Dart.Driver.coverage_sites in
  Alcotest.(check int) "three sites" 3 (List.length full.C.sites);
  Alcotest.(check bool) "all full" true
    (List.for_all (fun s -> s.C.cs_status = C.Full) full.C.sites);
  Alcotest.(check (list int)) "sites mapped to source lines" [ 3; 3; 5 ]
    (List.map (fun s -> s.C.cs_loc.Minic.Loc.line) full.C.sites);
  (* No execution at all: every site unreached, listed with its line. *)
  let empty = C.compute prog ~covered:[] in
  Alcotest.(check bool) "all unreached" true
    (List.for_all (fun s -> s.C.cs_status = C.Unreached) empty.C.sites);
  Alcotest.(check int) "no frontier when unreached" 0 (List.length (C.frontier empty));
  Alcotest.(check int) "all sites in unreached list" 3 (List.length (C.unreached empty));
  let listing = C.annotate empty ~source:golden_src in
  Alcotest.(check bool) "unreached markers rendered" true
    (contains listing " \u{00b7}\u{00b7} \u{00b7}\u{00b7} |    3 |");
  Alcotest.(check bool) "unreached section present" true
    (contains listing "unreached sites:\n");
  (* Drop every taken-direction record: covered sites degrade to the
     fall-only frontier and the listing says so. *)
  let fall_only =
    List.filter (fun (_, _, dir) -> not dir) r.Dart.Driver.coverage_sites
  in
  let frontier = C.compute prog ~covered:fall_only in
  Alcotest.(check bool) "all fall-only" true
    (List.for_all (fun s -> s.C.cs_status = C.Fall_only) frontier.C.sites);
  Alcotest.(check int) "every site on the frontier" 3 (List.length (C.frontier frontier));
  let listing = C.annotate frontier ~source:golden_src in
  Alcotest.(check bool) "frontier markers rendered" true
    (contains listing " \u{00b7}\u{2713} \u{00b7}\u{2713} |    3 |");
  Alcotest.(check bool) "frontier section present" true
    (contains listing "frontier sites (one direction missing):\n")

(* ---- every report agrees with Coverage.compute ----------------------------------- *)

let workloads =
  [ ("section2.1", fst Workloads.Paper_examples.section_2_1,
     snd Workloads.Paper_examples.section_2_1, 1);
    ("section2.4", fst Workloads.Paper_examples.section_2_4,
     snd Workloads.Paper_examples.section_2_4, 1);
    ("section2.5-cast", fst Workloads.Paper_examples.section_2_5_cast,
     snd Workloads.Paper_examples.section_2_5_cast, 1);
    ("section2.5-foobar", fst Workloads.Paper_examples.section_2_5_foobar,
     snd Workloads.Paper_examples.section_2_5_foobar, 1);
    ("eq-filter", fst Workloads.Paper_examples.eq_filter,
     snd Workloads.Paper_examples.eq_filter, 1);
    ("ac-controller", fst Workloads.Paper_examples.ac_controller,
     snd Workloads.Paper_examples.ac_controller, 2);
    ("list-example", fst Workloads.Paper_examples.list_example,
     snd Workloads.Paper_examples.list_example, 1);
    ("sip-parser", Workloads.Sip_parser.vulnerable, Workloads.Sip_parser.toplevel, 1);
    ("ns-possibilistic", Workloads.Needham_schroeder.possibilistic ~fix:`None,
     Workloads.Needham_schroeder.possibilistic_toplevel, 1) ]

let dirs_of_status = function
  | C.Full -> 2
  | C.Taken_only | C.Fall_only -> 1
  | C.Unreached -> 0

let test_reports_agree_with_coverage () =
  List.iter
    (fun (name, src, toplevel, depth) ->
      let prog, r, _ = search ~depth ~max_runs:500 ~toplevel src in
      let covered = r.Dart.Driver.coverage_sites in
      let t = C.compute prog ~covered in
      let cov = Dart.Coverage.compute prog ~covered in
      Alcotest.(check bool) (name ^ ": embedded coverage is Coverage.compute") true
        (t.C.coverage = cov);
      Alcotest.(check int) (name ^ ": one site record per site") cov.Dart.Coverage.total_sites
        (List.length t.C.sites);
      Alcotest.(check int) (name ^ ": statuses sum to total directions")
        cov.Dart.Coverage.total_directions
        (List.fold_left (fun acc s -> acc + dirs_of_status s.C.cs_status) 0 t.C.sites);
      (* The annotated listing embeds the Coverage.to_string block
         byte-for-byte. *)
      Alcotest.(check bool) (name ^ ": annotate embeds coverage block") true
        (contains (C.annotate t ~source:src) (Dart.Coverage.to_string cov));
      (* The lcov export round-trips through our own parser and its
         totals are the coverage totals. *)
      (match C.parse_lcov (C.to_lcov t) with
       | Error msg -> Alcotest.failf "%s: lcov round-trip failed: %s" name msg
       | Ok lt ->
         Alcotest.(check int) (name ^ ": BRDA records = 2 * sites")
           (2 * cov.Dart.Coverage.total_sites) lt.C.lt_brda;
         Alcotest.(check int) (name ^ ": BRDA hits = directions")
           cov.Dart.Coverage.total_directions lt.C.lt_branches_hit;
         Alcotest.(check int) (name ^ ": summed BRF = 2 * sites")
           (2 * cov.Dart.Coverage.total_sites) lt.C.lt_brf;
         Alcotest.(check int) (name ^ ": summed BRH = directions")
           cov.Dart.Coverage.total_directions lt.C.lt_brh);
      (* The HTML report shows the same aggregate percent and every
         function with sites. *)
      let html = C.to_html t ~source:src ~title:name in
      Alcotest.(check bool) (name ^ ": html shows the percent") true
        (contains html (Printf.sprintf "%.1f%%" (Dart.Coverage.percent cov)));
      List.iter
        (fun (e : Dart.Coverage.entry) ->
          if e.Dart.Coverage.cov_sites > 0 then
            Alcotest.(check bool)
              (Printf.sprintf "%s: html lists %s" name e.Dart.Coverage.cov_fn)
              true
              (contains html (Printf.sprintf "<td>%s</td>" e.Dart.Coverage.cov_fn)))
        cov.Dart.Coverage.entries)
    workloads

(* ---- lcov parser rejects malformed input ----------------------------------------- *)

let test_lcov_parser_rejects () =
  let bad =
    [ "DA:1,1\n" (* record outside any SF block *);
      "SF:a.mc\nSF:b.mc\nend_of_record\n" (* nested SF *);
      "SF:a.mc\nDA:1\nend_of_record\n" (* DA missing count *);
      "SF:a.mc\nBRDA:1,0,0\nend_of_record\n" (* BRDA missing field *);
      "SF:a.mc\nBRDA:1,0,0,x\nend_of_record\n" (* non-numeric taken *);
      "SF:a.mc\nWAT:1\nend_of_record\n" (* unknown record *);
      "SF:a.mc\nDA:1,1\n" (* unterminated block *) ]
  in
  List.iter
    (fun text ->
      match C.parse_lcov text with
      | Ok _ -> Alcotest.failf "accepted malformed lcov %S" text
      | Error _ -> ())
    bad;
  match C.parse_lcov "TN:x\nSF:a.mc\nDA:3,1\nDA:4,0\nLF:2\nLH:1\nend_of_record\n" with
  | Ok lt ->
    Alcotest.(check int) "files" 1 lt.C.lt_files;
    Alcotest.(check int) "da records" 2 lt.C.lt_da;
    Alcotest.(check int) "lines hit" 1 lt.C.lt_lines_hit
  | Error msg -> Alcotest.failf "rejected valid lcov: %s" msg

(* ---- trace replay: recorded timeline == live timeline ---------------------------- *)

let test_trace_timeline_replay () =
  let src, toplevel = Workloads.Paper_examples.ac_controller in
  let _, r, events = search ~depth:2 ~toplevel src in
  (* Serialize the live events exactly as --trace writes them, parse
     them back, and the derived timeline must be identical — including
     the recorded timestamps. *)
  let parsed =
    List.map
      (fun e ->
        match T.event_of_json (T.event_to_json e) with
        | Ok e' -> e'
        | Error msg -> Alcotest.failf "event failed to round-trip: %s" msg)
      events
  in
  Alcotest.(check bool) "replayed timeline identical" true
    (T.timeline parsed = T.timeline events);
  let s = T.summarize parsed in
  Alcotest.(check int) "cover point per run" r.Dart.Driver.runs (List.length s.T.timeline);
  (match T.plateau s with
   | Some (last_run, stale) ->
     Alcotest.(check int) "plateau anchored at the last run" r.Dart.Driver.runs last_run;
     Alcotest.(check bool) "stale-run count within the run budget" true
       (stale >= 0 && stale < r.Dart.Driver.runs)
   | None -> Alcotest.fail "trace has cover points, plateau must exist");
  (* Frontier sites from the trace agree with the site classification
     from the coverage report. *)
  let s_live = T.summarize events in
  Alcotest.(check int) "trace dirs = report coverage" r.Dart.Driver.branches_covered
    (T.distinct_branch_dirs s_live)

let test_random_search_timeline () =
  let src, toplevel = Workloads.Paper_examples.ac_controller in
  let ast = Minic.Parser.parse_program src in
  let prog = Dart.Driver.prepare ~toplevel ~depth:2 ast in
  let sink = T.ring ~capacity:(1 lsl 16) in
  let r = Dart.Random_search.run ~seed:7 ~max_runs:50 ~telemetry:sink prog in
  let s = T.summarize (T.events sink) in
  Alcotest.(check int) "random search emits one cover point per run"
    r.Dart.Random_search.runs (List.length s.T.timeline);
  (match List.rev s.T.timeline with
   | last :: _ ->
     Alcotest.(check int) "random timeline ends at its coverage"
       r.Dart.Random_search.branches_covered last.T.cp_covered
   | [] -> Alcotest.fail "no cover points");
  (* Random traces carry no Branch_taken events; the summary's coverage
     line must fall back to the Cover_point curve, not print 0. *)
  Alcotest.(check int) "random trace has no branch events" 0 s.T.branches;
  Alcotest.(check bool) "summary coverage line uses the timeline" true
    (contains (T.summary_to_string s)
       (Printf.sprintf "coverage: %d branch directions"
          r.Dart.Random_search.branches_covered))

(* ---- Coverage.to_string sizes its columns from the data -------------------------- *)

let test_coverage_width () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "void tiny(int x) { if (x == 1) x = 2; }\n";
  Buffer.add_string buf "void many(int x) {\n";
  for i = 0 to 511 do
    Buffer.add_string buf (Printf.sprintf "  if (x == %d) x = x + 1;\n" i)
  done;
  Buffer.add_string buf "}\n";
  let prog =
    Dart.Driver.prepare ~toplevel:"tiny" ~depth:1
      (Minic.Parser.parse_program (Buffer.contents buf))
  in
  let cov = Dart.Coverage.compute prog ~covered:[] in
  Alcotest.(check bool) "512-site function present" true
    (List.exists
       (fun (e : Dart.Coverage.entry) -> e.Dart.Coverage.cov_sites = 512)
       cov.Dart.Coverage.entries);
  let rendered = Dart.Coverage.to_string cov in
  Alcotest.(check bool) "wide possible count rendered" true
    (contains rendered "/1024");
  (* Both entry rows must align: the '/' sits at the same column. *)
  let rows =
    List.filter
      (fun l -> contains l "tiny" || contains l "many")
      (String.split_on_char '\n' rendered)
  in
  (match rows with
   | [ a; b ] ->
     Alcotest.(check int) "columns align across magnitudes" (String.index a '/')
       (String.index b '/')
   | _ -> Alcotest.fail "expected exactly two entry rows");
  (* The historical small-report shape is untouched. *)
  let small =
    Dart.Driver.prepare ~toplevel:"tiny" ~depth:1
      (Minic.Parser.parse_program "void tiny(int x) { if (x == 1) x = 2; }")
  in
  Alcotest.(check string) "small report byte-stable"
    "branch coverage (directions taken / possible):\n\
    \  tiny                             0/  2  (0 sites fully covered)\n\
    \  total: 0.0%\n"
    (Dart.Coverage.to_string (Dart.Coverage.compute small ~covered:[]))

let suite =
  [ Alcotest.test_case "annotate golden" `Quick test_annotate_golden;
    Alcotest.test_case "status classification" `Quick test_status_classification;
    Alcotest.test_case "reports agree with Coverage.compute" `Quick
      test_reports_agree_with_coverage;
    Alcotest.test_case "lcov parser rejects malformed" `Quick test_lcov_parser_rejects;
    Alcotest.test_case "trace timeline replay" `Quick test_trace_timeline_replay;
    Alcotest.test_case "random search timeline" `Quick test_random_search_timeline;
    Alcotest.test_case "coverage column width" `Quick test_coverage_width ]
