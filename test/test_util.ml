(* PRNG determinism/ranges and 32-bit word semantics. *)

open Dart_util

let test_prng_determinism () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done;
  let c = Prng.create 124 in
  Alcotest.(check bool) "different seed differs" true
    (Prng.next_int64 (Prng.create 123) <> Prng.next_int64 c)

let test_prng_ranges () =
  let rng = Prng.create 7 in
  for _ = 1 to 10_000 do
    let v = Prng.int_range rng 0 255 in
    if v < 0 || v > 255 then Alcotest.failf "int_range out of range: %d" v;
    let w = Prng.int_below rng 3 in
    if w < 0 || w > 2 then Alcotest.failf "int_below out of range: %d" w;
    let b = Prng.bits32 rng in
    if b < Word32.min_value || b > Word32.max_value then
      Alcotest.failf "bits32 out of range: %d" b
  done

let test_prng_coverage () =
  (* All values of a small range should appear. *)
  let rng = Prng.create 99 in
  let seen = Array.make 10 false in
  for _ = 1 to 1000 do
    seen.(Prng.int_below rng 10) <- true
  done;
  Array.iteri (fun i b -> if not b then Alcotest.failf "value %d never drawn" i) seen

let test_prng_split () =
  let rng = Prng.create 5 in
  let s1 = Prng.split rng in
  let s2 = Prng.split rng in
  Alcotest.(check bool) "split streams differ" true
    (Prng.next_int64 s1 <> Prng.next_int64 s2)

let test_prng_choose () =
  let rng = Prng.create 1 in
  Alcotest.(check int) "singleton" 42 (Prng.choose rng [ 42 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Prng.choose: empty list") (fun () ->
      ignore (Prng.choose rng []))

let test_word32_wrap () =
  Alcotest.(check int) "max+1 wraps" Word32.min_value (Word32.add Word32.max_value 1);
  Alcotest.(check int) "min-1 wraps" Word32.max_value (Word32.sub Word32.min_value 1);
  Alcotest.(check int) "mul wraps" 0 (Word32.mul 65536 65536);
  Alcotest.(check int) "mul wraps signed" (-2147483648) (Word32.mul 65536 32768);
  Alcotest.(check int) "neg min wraps" Word32.min_value (Word32.neg Word32.min_value)

let test_word32_div () =
  Alcotest.(check int) "trunc toward zero" (-3) (Word32.div (-7) 2);
  Alcotest.(check int) "rem sign" (-1) (Word32.rem (-7) 2);
  Alcotest.check_raises "div zero" Division_by_zero (fun () -> ignore (Word32.div 1 0))

let test_word32_bits () =
  Alcotest.(check int) "and" 0b1000 (Word32.logand 0b1100 0b1010);
  Alcotest.(check int) "or" 0b1110 (Word32.logor 0b1100 0b1010);
  Alcotest.(check int) "xor" 0b0110 (Word32.logxor 0b1100 0b1010);
  Alcotest.(check int) "not 0" (-1) (Word32.lognot 0);
  Alcotest.(check int) "shl" 20 (Word32.shift_left 5 2);
  Alcotest.(check int) "shl wraps" Word32.min_value (Word32.shift_left 1 31);
  Alcotest.(check int) "shr arithmetic" (-1) (Word32.shift_right (-2) 1);
  Alcotest.(check int) "shift masked" 2 (Word32.shift_left 1 33)

(* Shift counts are masked to their low five bits ([k land 31], as on
   x86): the machine's expression compiler folds constant shifts, so
   these lock the masking semantics it must reproduce. *)
let test_word32_shift_edges () =
  Alcotest.(check int) "shl by 32 is shl by 0" 5 (Word32.shift_left 5 32);
  Alcotest.(check int) "shl by 33 is shl by 1" 10 (Word32.shift_left 5 33);
  Alcotest.(check int) "shl by 63 is shl by 31" Word32.min_value (Word32.shift_left 1 63);
  Alcotest.(check int) "shl by -1 is shl by 31" Word32.min_value (Word32.shift_left 1 (-1));
  Alcotest.(check int) "shr by 32 is shr by 0" (-7) (Word32.shift_right (-7) 32);
  Alcotest.(check int) "shr by 36 is shr by 4" 1 (Word32.shift_right 16 36);
  Alcotest.(check int) "shr by -28 is shr by 4" (-1) (Word32.shift_right (-16) (-28));
  Alcotest.(check int) "shr keeps sign at 31" (-1) (Word32.shift_right Word32.min_value 31)

let test_word32_zint () =
  let open Zarith_lite in
  Alcotest.(check int) "roundtrip" 12345 (Word32.of_zint_trunc (Word32.to_zint 12345));
  Alcotest.(check int) "2^32 + 5 truncates" 5
    (Word32.of_zint_trunc (Zint.add (Zint.pow Zint.two 32) (Zint.of_int 5)));
  Alcotest.(check int) "2^31 wraps negative" Word32.min_value
    (Word32.of_zint_trunc (Zint.pow Zint.two 31));
  Alcotest.(check int) "negative" (-5) (Word32.of_zint_trunc (Zint.of_int (-5)))

(* The standard IEEE 802.3 check value plus the incremental-update law
   the checkpoint codec relies on (one checksum per record block). *)
let test_crc32_vectors () =
  Alcotest.(check string) "check value" "cbf43926"
    (Crc32.to_hex (Crc32.string "123456789"));
  Alcotest.(check string) "empty string" "00000000" (Crc32.to_hex (Crc32.string ""));
  Alcotest.(check bool) "update composes" true
    (Crc32.update (Crc32.string "1234") "56789" = Crc32.string "123456789");
  Alcotest.(check bool) "one-byte sensitivity" true
    (Crc32.string "target f 0 1" <> Crc32.string "target f 0 2")

let test_crc32_hex () =
  Alcotest.(check bool) "hex roundtrip" true
    (Crc32.of_hex (Crc32.to_hex (Crc32.string "abc")) = Some (Crc32.string "abc"));
  Alcotest.(check int) "fixed width" 8 (String.length (Crc32.to_hex 0l));
  List.iter
    (fun bad ->
      Alcotest.(check bool) (Printf.sprintf "%S rejected" bad) true
        (Crc32.of_hex bad = None))
    [ ""; "cbf4392"; "cbf439260"; "cbf4392g"; " bf43926" ]

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:500 ~name gen f)

let word_gen = QCheck2.Gen.int_range Word32.min_value Word32.max_value

let properties =
  [ prop "norm idempotent" QCheck2.Gen.int (fun v -> Word32.norm (Word32.norm v) = Word32.norm v);
    prop "add in range" (QCheck2.Gen.pair word_gen word_gen) (fun (a, b) ->
        let r = Word32.add a b in
        r >= Word32.min_value && r <= Word32.max_value);
    prop "mul matches Int32" (QCheck2.Gen.pair word_gen word_gen) (fun (a, b) ->
        Word32.mul a b = Int32.to_int (Int32.mul (Int32.of_int a) (Int32.of_int b)));
    prop "add matches Int32" (QCheck2.Gen.pair word_gen word_gen) (fun (a, b) ->
        Word32.add a b = Int32.to_int (Int32.add (Int32.of_int a) (Int32.of_int b))) ]

let suite =
  [ Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng ranges" `Quick test_prng_ranges;
    Alcotest.test_case "prng coverage" `Quick test_prng_coverage;
    Alcotest.test_case "prng split" `Quick test_prng_split;
    Alcotest.test_case "prng choose" `Quick test_prng_choose;
    Alcotest.test_case "word32 wraparound" `Quick test_word32_wrap;
    Alcotest.test_case "word32 division" `Quick test_word32_div;
    Alcotest.test_case "word32 bit ops" `Quick test_word32_bits;
    Alcotest.test_case "word32 shift edge cases" `Quick test_word32_shift_edges;
    Alcotest.test_case "word32 zint bridge" `Quick test_word32_zint;
    Alcotest.test_case "crc32 vectors" `Quick test_crc32_vectors;
    Alcotest.test_case "crc32 hex codec" `Quick test_crc32_hex ]
  @ properties
