(* Random-program differential testing: the generator, the optimizer's
   semantics preservation, round-trips, and the soundness of DART's bug
   witnesses (Theorem 1(a): every reported bug replays concretely). *)

let gen_at seed =
  let rng = Dart_util.Prng.create seed in
  Progen.generate rng

(* Run [entry] with the given args on a program, returning the outcome
   kind and the final values of all globals. *)
let observe prog args =
  let m = Machine.load prog in
  let outcome = Machine.run ~args m ~entry:Progen.toplevel_name in
  let globals =
    List.map
      (fun (g : Minic.Tast.tglobal) ->
        match Machine.read_word m (Machine.global_addr m g.gl_name) with
        | Ok v -> (g.gl_name, Some v)
        | Error _ -> (g.gl_name, None))
      prog.Ram.Instr.globals
  in
  let outcome_kind =
    match outcome with
    | Machine.Halted -> "halted"
    | Machine.Faulted (f, _) -> Machine.fault_to_string f
  in
  (outcome_kind, globals)

let nparams prog =
  match Ram.Instr.find_func prog Progen.toplevel_name with
  | Some f -> f.Ram.Instr.nparams
  | None -> Alcotest.fail "no toplevel in generated program"

let test_generator_typechecks () =
  for seed = 0 to 199 do
    let ast = gen_at seed in
    match Minic.Typecheck.check ast with
    | _ -> ()
    | exception Minic.Typecheck.Error (loc, msg) ->
      Alcotest.failf "seed %d does not typecheck: %s: %s\n%s" seed
        (Minic.Loc.to_string loc) msg
        (Minic.Pretty.program_to_string ast)
  done

let test_generator_roundtrip () =
  (* The parser normalizes literal negations (it folds [-(-100)] to
     [100] even through parentheses), so the right round-trip property
     is idempotency after one normalization: parse(print(ast)) printed
     once and twice must agree. *)
  for seed = 0 to 99 do
    let ast = gen_at seed in
    let s1 = Minic.Pretty.program_to_string ast in
    let s2 = Minic.Pretty.program_to_string (Minic.Parser.parse_program s1) in
    let s3 = Minic.Pretty.program_to_string (Minic.Parser.parse_program s2) in
    if s2 <> s3 then Alcotest.failf "seed %d: print/parse not idempotent" seed
  done

let test_generator_deterministic () =
  let s1 = Progen.generate_source (Dart_util.Prng.create 5) in
  let s2 = Progen.generate_source (Dart_util.Prng.create 5) in
  Alcotest.(check string) "same seed, same program" s1 s2

let test_optimizer_equivalence () =
  (* For each generated program and several argument vectors, the
     optimized code must produce the same outcome kind and the same
     final global values. *)
  let arg_rng = Dart_util.Prng.create 999 in
  for seed = 0 to 149 do
    let ast = gen_at seed in
    let tp = Minic.Typecheck.check ast in
    let prog = Ram.Lower.lower_program tp in
    let opt = Ram.Opt.optimize_program prog in
    let n = nparams prog in
    for trial = 0 to 4 do
      let args = List.init n (fun _ -> Dart_util.Prng.bits32 arg_rng) in
      let o1 = observe prog args in
      let o2 = observe opt args in
      if o1 <> o2 then
        Alcotest.failf "seed %d trial %d: optimizer changed behaviour (%s vs %s)" seed trial
          (fst o1) (fst o2)
    done
  done

let test_optimizer_golden () =
  let fold = Ram.Opt.fold_rexpr in
  let open Ram.Instr in
  let b op a b = Binop (op, a, b) in
  Alcotest.(check string) "1+2 folds" "3" (rexpr_to_string (fold (b Minic.Ast.Add (Const 1) (Const 2))));
  Alcotest.(check string) "x+0 folds" "[local+0]"
    (rexpr_to_string (fold (b Minic.Ast.Add (Load (Addr_local 0)) (Const 0))));
  Alcotest.(check string) "x*1 folds" "[local+0]"
    (rexpr_to_string (fold (b Minic.Ast.Mul (Load (Addr_local 0)) (Const 1))));
  (* x*0 must NOT fold when x can fault. *)
  let trapping = b Minic.Ast.Div (Const 1) (Load (Addr_local 0)) in
  Alcotest.(check bool) "trapping*0 not folded" true
    (fold (b Minic.Ast.Mul trapping (Const 0)) <> Const 0);
  (* 1/0 must not fold either. *)
  Alcotest.(check bool) "1/0 kept" true (fold (b Minic.Ast.Div (Const 1) (Const 0)) <> Const 0);
  (* wraparound folding *)
  Alcotest.(check string) "max+1 wraps" (string_of_int Dart_util.Word32.min_value)
    (rexpr_to_string (fold (b Minic.Ast.Add (Const Dart_util.Word32.max_value) (Const 1))));
  (* double negation *)
  Alcotest.(check string) "neg neg x" "[local+0]"
    (rexpr_to_string (fold (Unop (Minic.Ast.Neg, Unop (Minic.Ast.Neg, Load (Addr_local 0))))))

let test_optimizer_shrinks_while_true () =
  (* while (1) { } lowers with a conditional on a constant; the
     optimizer turns it into a goto. *)
  let prog = Ram.Lower.lower_source "void f() { int n = 0; while (1) { n = n + 1; if (n > 5) break; } }" in
  let opt = Ram.Opt.optimize_program prog in
  let f = Hashtbl.find opt.Ram.Instr.funcs "f" in
  let const_ifs =
    Array.to_list f.Ram.Instr.code
    |> List.filter (fun i ->
           match i with Ram.Instr.Iif (Ram.Instr.Const _, _) -> true | _ -> false)
  in
  Alcotest.(check int) "no constant conditionals left" 0 (List.length const_ifs)

let test_witness_replay_soundness () =
  (* Theorem 1(a): when DART reports a bug, replaying the recorded
     input vector concretely (no symbolic machinery, no solver) must
     reproduce a fault of the same kind. *)
  let replayed = ref 0 in
  for seed = 0 to 79 do
    let ast = gen_at seed in
    let prog = Dart.Driver.prepare ~toplevel:Progen.toplevel_name ~depth:1 ast in
    let options = Dart.Driver.Options.make ~max_runs:300 ~seed () in
    let report = Dart.Driver.run ~options prog in
    match report.Dart.Driver.verdict with
    | Dart.Driver.Bug_found bug ->
      incr replayed;
      let im = Dart.Inputs.create () in
      List.iter (fun (id, v) -> Dart.Inputs.set im ~id v) bug.Dart.Driver.bug_inputs;
      let opts = { Dart.Concolic.default_exec_options with symbolic = false } in
      let data =
        Dart.Concolic.run_once ~opts
          ~rng:(Dart_util.Prng.create 0) (* must not matter: all inputs recorded *)
          ~im ~prev_stack:[||] ~entry:Dart.Driver_gen.wrapper_name prog
      in
      (match data.Dart.Concolic.outcome with
       | Dart.Concolic.Run_fault (fault, _) ->
         if fault <> bug.Dart.Driver.bug_fault then
           Alcotest.failf "seed %d: witness replays a different fault (%s vs %s)" seed
             (Machine.fault_to_string fault)
             (Machine.fault_to_string bug.Dart.Driver.bug_fault)
       | Dart.Concolic.Run_halted ->
         Alcotest.failf "seed %d: witness does not reproduce the bug" seed
       | Dart.Concolic.Run_prediction_failure -> assert false)
    | Dart.Driver.Complete | Dart.Driver.Budget_exhausted
    | Dart.Driver.Time_exhausted | Dart.Driver.Interrupted -> ()
  done;
  (* The abort-injection probability makes bugs common; make sure the
     property was actually exercised. *)
  Alcotest.(check bool) (Printf.sprintf "replayed %d witnesses" !replayed) true (!replayed >= 10)

let test_dart_never_crashes_on_generated () =
  for seed = 200 to 279 do
    let ast = gen_at seed in
    let prog = Dart.Driver.prepare ~toplevel:Progen.toplevel_name ~depth:1 ast in
    let options = Dart.Driver.Options.make ~max_runs:200 ~seed () in
    match Dart.Driver.run ~options prog with
    | _ -> ()
    | exception e ->
      Alcotest.failf "seed %d: engine raised %s\n%s" seed (Printexc.to_string e)
        (Minic.Pretty.program_to_string ast)
  done

let suite =
  [ Alcotest.test_case "generated programs typecheck" `Quick test_generator_typechecks;
    Alcotest.test_case "generated programs roundtrip" `Quick test_generator_roundtrip;
    Alcotest.test_case "generator determinism" `Quick test_generator_deterministic;
    Alcotest.test_case "optimizer equivalence (differential)" `Slow test_optimizer_equivalence;
    Alcotest.test_case "optimizer golden folds" `Quick test_optimizer_golden;
    Alcotest.test_case "optimizer removes constant branches" `Quick
      test_optimizer_shrinks_while_true;
    Alcotest.test_case "witness replay soundness" `Slow test_witness_replay_soundness;
    Alcotest.test_case "engine robustness" `Slow test_dart_never_crashes_on_generated ]
