(* Candidate-window semantics of Strategy.remove_failed (the Unsat /
   Unknown backtracking paths of Figure 5) and the input-kind boxing of
   Solve_pc.domain_constraints. *)

open Zarith_lite

let rng () = Dart_util.Prng.create 99

(* ---- remove_failed window semantics ---------------------------------------- *)

let test_dfs_window () =
  (* Dfs discards the failed candidate and everything deeper. *)
  let c = Dart.Strategy.candidates_of_list [ 0; 2; 5; 7; 9 ] in
  let rng = rng () in
  Alcotest.(check (option int)) "deepest first" (Some 9)
    (Dart.Strategy.choose Dart.Strategy.Dfs rng c);
  Dart.Strategy.remove_failed Dart.Strategy.Dfs c;
  Alcotest.(check (list int)) "window truncated from the top" [ 0; 2; 5; 7 ]
    (Dart.Strategy.to_list c);
  Alcotest.(check (option int)) "next deepest" (Some 7)
    (Dart.Strategy.choose Dart.Strategy.Dfs rng c);
  Dart.Strategy.remove_failed Dart.Strategy.Dfs c;
  ignore (Dart.Strategy.choose Dart.Strategy.Dfs rng c);
  Dart.Strategy.remove_failed Dart.Strategy.Dfs c;
  Alcotest.(check (list int)) "two more removals" [ 0; 2 ] (Dart.Strategy.to_list c)

let test_bfs_window () =
  (* Bfs discards the failed candidate from the bottom of the window. *)
  let c = Dart.Strategy.candidates_of_list [ 1; 3; 4 ] in
  let rng = rng () in
  Alcotest.(check (option int)) "shallowest first" (Some 1)
    (Dart.Strategy.choose Dart.Strategy.Bfs rng c);
  Dart.Strategy.remove_failed Dart.Strategy.Bfs c;
  Alcotest.(check (list int)) "window advanced from the bottom" [ 3; 4 ]
    (Dart.Strategy.to_list c);
  Alcotest.(check (option int)) "next shallowest" (Some 3)
    (Dart.Strategy.choose Dart.Strategy.Bfs rng c);
  Dart.Strategy.remove_failed Dart.Strategy.Bfs c;
  ignore (Dart.Strategy.choose Dart.Strategy.Bfs rng c);
  Dart.Strategy.remove_failed Dart.Strategy.Bfs c;
  Alcotest.(check int) "exhausted" 0 (Dart.Strategy.cardinal c);
  Alcotest.(check (option int)) "choose on empty" None
    (Dart.Strategy.choose Dart.Strategy.Bfs rng c)

let test_random_window () =
  (* Random_branch swap-removes exactly the chosen element. *)
  let c = Dart.Strategy.candidates_of_list [ 10; 20; 30; 40 ] in
  let rng = rng () in
  let chosen =
    match Dart.Strategy.choose Dart.Strategy.Random_branch rng c with
    | Some j -> j
    | None -> Alcotest.fail "choose on non-empty"
  in
  Dart.Strategy.remove_failed Dart.Strategy.Random_branch c;
  let rest = Dart.Strategy.to_list c in
  Alcotest.(check int) "one removed" 3 (List.length rest);
  Alcotest.(check bool) "chosen gone" false (List.mem chosen rest);
  List.iter
    (fun j -> Alcotest.(check bool) "survivor was a candidate" true (List.mem j [ 10; 20; 30; 40 ]))
    rest;
  (* Draining the whole set never repeats and never invalid_args. *)
  let seen = ref [ chosen ] in
  for _ = 1 to 3 do
    (match Dart.Strategy.choose Dart.Strategy.Random_branch rng c with
     | Some j ->
       Alcotest.(check bool) "no repeat" false (List.mem j !seen);
       seen := j :: !seen
     | None -> Alcotest.fail "drained too early");
    Dart.Strategy.remove_failed Dart.Strategy.Random_branch c
  done;
  Alcotest.(check int) "drained" 0 (Dart.Strategy.cardinal c)

let expect_invalid_arg name f =
  match f () with
  | () -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_remove_without_choose () =
  List.iter
    (fun strategy ->
      let name = Dart.Strategy.to_string strategy in
      (* Fresh set: no preceding choose at all. *)
      let c = Dart.Strategy.candidates_of_list [ 0; 1; 2 ] in
      expect_invalid_arg name (fun () -> Dart.Strategy.remove_failed strategy c);
      (* Double removal after a single choose. *)
      let c = Dart.Strategy.candidates_of_list [ 0; 1; 2 ] in
      ignore (Dart.Strategy.choose strategy (rng ()) c);
      Dart.Strategy.remove_failed strategy c;
      expect_invalid_arg (name ^ " double") (fun () ->
          Dart.Strategy.remove_failed strategy c))
    [ Dart.Strategy.Dfs; Dart.Strategy.Bfs; Dart.Strategy.Random_branch ]

(* ---- domain_constraints ----------------------------------------------------- *)

let kinds_im () =
  (* Register one input of each kind via the public API (get records
     the kind and draws a value). *)
  let im = Dart.Inputs.create () in
  let rng = rng () in
  ignore (Dart.Inputs.get im ~id:0 ~kind:Dart.Inputs.Kint ~rng);
  ignore (Dart.Inputs.get im ~id:1 ~kind:Dart.Inputs.Kchar ~rng);
  ignore (Dart.Inputs.get im ~id:2 ~kind:Dart.Inputs.Kcoin ~rng);
  im

let holds_at cs v value =
  let env x = if x = v then Zint.of_int value else Zint.zero in
  List.for_all (fun c -> Symbolic.Constr.holds env c) cs

let test_domain_constraints_boxing () =
  let im = kinds_im () in
  (* Kint and unknown ids produce no atoms (the solver 32-bit-boxes
     ints itself). *)
  Alcotest.(check int) "int unboxed" 0
    (List.length (Dart.Solve_pc.domain_constraints im [ 0 ]));
  Alcotest.(check int) "unknown id unboxed" 0
    (List.length (Dart.Solve_pc.domain_constraints im [ 42 ]));
  (* Kchar: two atoms pinning 0..255 exactly. *)
  let char_cs = Dart.Solve_pc.domain_constraints im [ 1 ] in
  Alcotest.(check int) "char boxed by two atoms" 2 (List.length char_cs);
  Alcotest.(check bool) "0 in char box" true (holds_at char_cs 1 0);
  Alcotest.(check bool) "255 in char box" true (holds_at char_cs 1 255);
  Alcotest.(check bool) "-1 outside char box" false (holds_at char_cs 1 (-1));
  Alcotest.(check bool) "256 outside char box" false (holds_at char_cs 1 256);
  (* Kcoin: 0..1. *)
  let coin_cs = Dart.Solve_pc.domain_constraints im [ 2 ] in
  Alcotest.(check int) "coin boxed by two atoms" 2 (List.length coin_cs);
  Alcotest.(check bool) "0 is a coin" true (holds_at coin_cs 2 0);
  Alcotest.(check bool) "1 is a coin" true (holds_at coin_cs 2 1);
  Alcotest.(check bool) "2 is not a coin" false (holds_at coin_cs 2 2);
  (* Mixed list: atoms accumulate per var. *)
  Alcotest.(check int) "mixed list" 4
    (List.length (Dart.Solve_pc.domain_constraints im [ 0; 1; 2 ]))

let test_char_box_reaches_solver () =
  (* if (c == 300) is unsatisfiable for a char: without the Kchar box
     the solver would happily answer c = 300 and the search would churn
     on prediction failures; with it, DFS proves the branch dead and
     terminates Complete. *)
  let r =
    Dart.Driver.test_source
      ~options:(Dart.Driver.Options.make ~max_runs:50 ())
      ~toplevel:"f" "void f(char c) { if (c == 300) abort(); }"
  in
  (match r.Dart.Driver.verdict with
   | Dart.Driver.Complete -> ()
   | Dart.Driver.Bug_found _ -> Alcotest.fail "char box violated: found impossible bug"
   | Dart.Driver.Budget_exhausted -> Alcotest.fail "char box missing: search churned"
   | Dart.Driver.Time_exhausted | Dart.Driver.Interrupted ->
     Alcotest.fail "no deadline or interrupt was configured");
  (* The satisfiable edge of the box is still reachable. *)
  let r =
    Dart.Driver.test_source
      ~options:(Dart.Driver.Options.make ~max_runs:50 ())
      ~toplevel:"f" "void f(char c) { if (c == 255) abort(); }"
  in
  match r.Dart.Driver.verdict with
  | Dart.Driver.Bug_found b ->
    Alcotest.(check int) "witness c = 255" 255 (List.assoc 0 b.Dart.Driver.bug_inputs)
  | _ -> Alcotest.fail "c == 255 must be reachable"

let suite =
  [ Alcotest.test_case "dfs window" `Quick test_dfs_window;
    Alcotest.test_case "bfs window" `Quick test_bfs_window;
    Alcotest.test_case "random swap-remove" `Quick test_random_window;
    Alcotest.test_case "remove without choose" `Quick test_remove_without_choose;
    Alcotest.test_case "domain constraints boxing" `Quick test_domain_constraints_boxing;
    Alcotest.test_case "char box reaches solver" `Quick test_char_box_reaches_solver ]
