(* The compiled closure engine (Machine ~compile:true, the default)
   against the tree-walking interpreter: identical concolic run data on
   the workloads, byte-identical driver reports, correct runtime
   behaviour of compile-time constant folding, and the shared compile
   cache. *)

(* Everything [run_once] observes about one execution, with path
   constraints rendered to strings so the comparison is structural. *)
let digest_run (d : Dart.Concolic.run_data) =
  ( (match d.Dart.Concolic.outcome with
    | Dart.Concolic.Run_fault (f, s) ->
      Printf.sprintf "fault %s at %s:%d" (Machine.fault_tag f) s.Machine.site_fn
        s.Machine.site_pc
    | Dart.Concolic.Run_prediction_failure -> "prediction_failure"
    | Dart.Concolic.Run_halted -> "halted"),
    Array.to_list d.Dart.Concolic.stack,
    Array.to_list d.Dart.Concolic.path_constraint
    |> List.map (Option.map Symbolic.Constr.to_string),
    Array.to_list d.Dart.Concolic.cond_sites,
    d.Dart.Concolic.conditionals,
    d.Dart.Concolic.steps,
    ( d.Dart.Concolic.inputs_read,
      d.Dart.Concolic.all_linear,
      d.Dart.Concolic.all_locs_definite,
      d.Dart.Concolic.branch_sites ) )

(* Several fresh concolic runs from one deterministic PRNG stream: the
   two engines must produce the same digests run for run. *)
let concolic_digests ~compile ~runs ?(symbolic = true) prog =
  let opts = { Dart.Concolic.default_exec_options with symbolic; compile } in
  let rng = Dart_util.Prng.create 11 in
  let im = Dart.Inputs.create () in
  List.init runs (fun _ ->
      Dart.Inputs.clear im;
      digest_run
        (Dart.Concolic.run_once ~opts ~rng ~im ~prev_stack:[||]
           ~entry:Dart.Driver_gen.wrapper_name prog))

let check_concolic_identical ~name ?(depth = 1) ?(runs = 8) ~toplevel src =
  let prog = Dart.Driver.prepare ~toplevel ~depth (Minic.Parser.parse_program src) in
  let interp = concolic_digests ~compile:false ~runs prog in
  let compiled = concolic_digests ~compile:true ~runs prog in
  Alcotest.(check bool) (name ^ ": concolic runs identical") true (interp = compiled)

let test_workload_differentials () =
  let src, toplevel = Workloads.Paper_examples.ac_controller in
  check_concolic_identical ~name:"ac_controller" ~depth:2 ~toplevel src;
  check_concolic_identical ~name:"section_2_1"
    ~toplevel:(snd Workloads.Paper_examples.section_2_1)
    (fst Workloads.Paper_examples.section_2_1);
  check_concolic_identical ~name:"oSIP parser" ~toplevel:Workloads.Osip_sim.parser_toplevel
    Workloads.Osip_sim.parser_vulnerable;
  check_concolic_identical ~name:"SIP parser" ~toplevel:Workloads.Sip_parser.toplevel
    Workloads.Sip_parser.vulnerable;
  check_concolic_identical ~name:"NS protocol"
    ~toplevel:Workloads.Needham_schroeder.possibilistic_toplevel
    (Workloads.Needham_schroeder.possibilistic ~fix:`None)

(* End to end: the printed report of a whole directed search must not
   change by a byte when the engine switches. *)
let report_identity ~name ?(depth = 1) ?(max_runs = 200) ~toplevel src =
  let report compile =
    let exec = { Dart.Concolic.default_exec_options with compile } in
    let options = Dart.Driver.Options.make ~depth ~max_runs ~exec () in
    Dart.Driver.report_to_string (Dart.Driver.test_source ~options ~toplevel src)
  in
  Alcotest.(check string) (name ^ ": report bytes") (report false) (report true)

let test_report_identity () =
  let src, toplevel = Workloads.Paper_examples.ac_controller in
  report_identity ~name:"ac_controller" ~depth:2 ~toplevel src;
  report_identity ~name:"oSIP parser" ~toplevel:Workloads.Osip_sim.parser_toplevel
    Workloads.Osip_sim.parser_vulnerable

(* A constant division by zero folds to a raising closure, not a
   compile-time crash: the fault fires only if the statement is
   reached, at the same site as the interpreter's. *)
let test_folding_faults_at_runtime () =
  let src = "void f(int x) { if (x > 0) { int r = 10 / 0; } }" in
  let prog = Ram.Lower.lower_source src in
  (match Diff_engines.run ~args:[ 0 ] prog ~entry:"f" with
   | Machine.Halted, _ -> ()
   | Machine.Faulted _, _ -> Alcotest.fail "unreached constant division faulted");
  match Diff_engines.run ~args:[ 1 ] prog ~entry:"f" with
  | Machine.Faulted (Machine.Div_by_zero, _), _ -> ()
  | _ -> Alcotest.fail "reached constant division must fault"

(* Deep recursion: exercises frame push/pop switching in the compiled
   dispatch loop (and the O(depth) call-depth counter) well past any
   fused straight-line run. *)
let test_deep_recursion () =
  let src =
    "int result = 0;\n\
     int down(int n) { if (n == 0) return 7; return down(n - 1); }\n\
     void f(int n) { result = down(n); }"
  in
  let prog = Ram.Lower.lower_source src in
  let outcome, m = Diff_engines.run ~args:[ 400 ] prog ~entry:"f" in
  Alcotest.(check bool) "halted" true (outcome = Machine.Halted);
  match Machine.read_word m (Machine.global_addr m "result") with
  | Ok v -> Alcotest.(check int) "value through 400 frames" 7 v
  | Error _ -> Alcotest.fail "result unreadable"

(* Goto fusion interacts with the step budget: an infinite loop of
   pure jumps must still exhaust the budget, identically under both
   engines (checked by Diff_engines, including the step count). *)
let test_goto_cycle_step_limit () =
  let config = { Machine.default_config with step_limit = 777 } in
  let prog = Ram.Lower.lower_source "void f() { while (1) { } }" in
  match Diff_engines.run ~config prog ~entry:"f" with
  | Machine.Faulted (Machine.Step_limit, _), _ -> ()
  | _ -> Alcotest.fail "expected step-limit fault"

let test_cache_and_flag () =
  let prog = Ram.Lower.lower_source "void f(int x) { if (x > 0) { } }" in
  Machine.precompile prog;
  let m1 = Machine.load prog in
  let m2 = Machine.load prog in
  Alcotest.(check bool) "default is compiled" true
    (Machine.is_compiled m1 && Machine.is_compiled m2);
  let m3 = Machine.load ~compile:false prog in
  Alcotest.(check bool) "--no-compile loads interpreter" false (Machine.is_compiled m3);
  (* A structurally equal but physically distinct program compiles on
     its own cache entry; behaviour stays put. *)
  let prog' = Ram.Lower.lower_source "void f(int x) { if (x > 0) { } }" in
  let outcome, _ = Diff_engines.run ~args:[ 1 ] prog' ~entry:"f" in
  Alcotest.(check bool) "fresh program runs" true (outcome = Machine.Halted)

let suite =
  [ Alcotest.test_case "workload differentials" `Quick test_workload_differentials;
    Alcotest.test_case "driver report identity" `Quick test_report_identity;
    Alcotest.test_case "folding faults at runtime" `Quick test_folding_faults_at_runtime;
    Alcotest.test_case "deep recursion" `Quick test_deep_recursion;
    Alcotest.test_case "goto cycle hits step limit" `Quick test_goto_cycle_step_limit;
    Alcotest.test_case "cache and engine flag" `Quick test_cache_and_flag ]
