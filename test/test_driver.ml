(* End-to-end directed search: every example the paper walks through,
   search strategies, solve_path_constraint behaviour, and the random
   baseline. *)

let options ?(depth = 1) ?(max_runs = 20_000) ?(strategy = Dart.Strategy.Dfs) ?seed
    ?stop_on_first_bug () =
  Dart.Driver.Options.make ~depth ~max_runs ~strategy ?seed ?stop_on_first_bug ()

let dart ?depth ?max_runs ?strategy (src, toplevel) =
  Dart.Driver.test_source ~options:(options ?depth ?max_runs ?strategy ()) ~toplevel src

let expect_bug name (r : Dart.Driver.report) =
  match r.Dart.Driver.verdict with
  | Dart.Driver.Bug_found _ -> ()
  | Dart.Driver.Complete -> Alcotest.failf "%s: expected bug, got Complete" name
  | Dart.Driver.Budget_exhausted -> Alcotest.failf "%s: expected bug, got budget" name
  | Dart.Driver.Time_exhausted | Dart.Driver.Interrupted ->
    Alcotest.failf "%s: expected bug, got a partial verdict" name

let expect_complete name (r : Dart.Driver.report) =
  match r.Dart.Driver.verdict with
  | Dart.Driver.Complete -> ()
  | Dart.Driver.Bug_found b ->
    Alcotest.failf "%s: unexpected bug %s in %s" name
      (Machine.fault_to_string b.Dart.Driver.bug_fault)
      b.Dart.Driver.bug_site.Machine.site_fn
  | Dart.Driver.Budget_exhausted -> Alcotest.failf "%s: expected Complete, got budget" name
  | Dart.Driver.Time_exhausted | Dart.Driver.Interrupted ->
    Alcotest.failf "%s: expected Complete, got a partial verdict" name

let expect_no_bug name (r : Dart.Driver.report) =
  match r.Dart.Driver.verdict with
  | Dart.Driver.Bug_found b ->
    Alcotest.failf "%s: unexpected bug %s" name (Machine.fault_to_string b.Dart.Driver.bug_fault)
  | Dart.Driver.Complete | Dart.Driver.Budget_exhausted
  | Dart.Driver.Time_exhausted | Dart.Driver.Interrupted -> ()

let test_section_2_1 () =
  let r = dart Workloads.Paper_examples.section_2_1 in
  expect_bug "2.1" r;
  (* The paper's narrative: random first run, bug on the second. *)
  (match r.Dart.Driver.verdict with
   | Dart.Driver.Bug_found b -> Alcotest.(check int) "found on run 2" 2 b.Dart.Driver.bug_run
   | _ -> assert false);
  (* The witness must satisfy f(x) = x + 10, i.e. x = 10. *)
  (match r.Dart.Driver.verdict with
   | Dart.Driver.Bug_found b ->
     let x = List.assoc 0 b.Dart.Driver.bug_inputs in
     Alcotest.(check int) "x = 10" 10 x
   | _ -> assert false)

let test_section_2_4 () =
  let r = dart Workloads.Paper_examples.section_2_4 in
  expect_complete "2.4" r;
  Alcotest.(check int) "terminates after two runs" 2 r.Dart.Driver.runs

let test_section_2_5_cast () = expect_bug "cast" (dart Workloads.Paper_examples.section_2_5_cast)

let test_section_2_5_foobar () =
  let r = dart Workloads.Paper_examples.section_2_5_foobar in
  expect_bug "foobar" r;
  Alcotest.(check bool) "non-linearity detected" false r.Dart.Driver.all_linear;
  (* The paper calls the else-branch abort (y = 20) unreachable — over
     ideal integers. Over real 32-bit C arithmetic it IS reachable:
     x = 2^21 makes x*x*x wrap to 0, taking the else branch with
     x > 0. Our machine is faithful to wraparound, so both witnesses
     are legitimate; whichever was found must be consistent. *)
  match r.Dart.Driver.verdict with
  | Dart.Driver.Bug_found b ->
    let x = List.assoc 0 b.Dart.Driver.bug_inputs in
    let y = List.assoc 1 b.Dart.Driver.bug_inputs in
    let cube = Dart_util.Word32.mul (Dart_util.Word32.mul x x) x in
    Alcotest.(check bool) "x > 0" true (x > 0);
    (match y with
     | 10 -> Alcotest.(check bool) "then-branch: cube positive" true (cube > 0)
     | 20 -> Alcotest.(check bool) "else-branch: cube wrapped" true (cube <= 0)
     | _ -> Alcotest.failf "unexpected witness y = %d" y)
  | _ -> assert false

let test_eq_filter () =
  let r = dart Workloads.Paper_examples.eq_filter in
  expect_bug "eq" r;
  (match r.Dart.Driver.verdict with
   | Dart.Driver.Bug_found b ->
     Alcotest.(check bool) "within 2 runs" true (b.Dart.Driver.bug_run <= 2)
   | _ -> assert false);
  (* Random testing virtually never finds x == 10. *)
  let rr =
    Dart.Random_search.test_source ~seed:5 ~max_runs:5_000 ~toplevel:"check"
      (fst Workloads.Paper_examples.eq_filter)
  in
  Alcotest.(check bool) "random search fails" true (rr.Dart.Random_search.verdict = `No_bug)

let test_ac_controller () =
  let r = dart ~depth:1 Workloads.Paper_examples.ac_controller in
  expect_complete "ac depth 1" r;
  Alcotest.(check bool) "few runs (paper: 6)" true (r.Dart.Driver.runs <= 10);
  let r = dart ~depth:2 Workloads.Paper_examples.ac_controller in
  expect_bug "ac depth 2" r;
  (match r.Dart.Driver.verdict with
   | Dart.Driver.Bug_found b ->
     Alcotest.(check bool) "few runs (paper: 7)" true (b.Dart.Driver.bug_run <= 12);
     (* The witness must be message sequence (3, 0). *)
     let m1 = List.assoc 0 b.Dart.Driver.bug_inputs in
     let m2 = List.assoc 1 b.Dart.Driver.bug_inputs in
     Alcotest.(check (pair int int)) "attack sequence" (3, 0) (m1, m2)
   | _ -> assert false);
  (* Random search cannot find the (3, 0) sequence in reasonable time. *)
  let ast = Minic.Parser.parse_program (fst Workloads.Paper_examples.ac_controller) in
  let prog = Dart.Driver.prepare ~toplevel:"ac_controller" ~depth:2 ast in
  let rr = Dart.Random_search.run ~seed:11 ~max_runs:5_000 prog in
  Alcotest.(check bool) "random fails at depth 2" true
    (rr.Dart.Random_search.verdict = `No_bug)

let test_strategies () =
  (* DFS and random-branch find the AC bug. Single-stack BFS cannot:
     flipping the earliest pending branch permanently constrains its
     prefix and discards the sibling subtrees — the structural reason
     the paper's search is depth-first (footnote 4 notwithstanding).
     BFS still finds bugs one shallow flip away. *)
  List.iter
    (fun strategy ->
      expect_bug
        (Dart.Strategy.to_string strategy)
        (dart ~depth:2 ~strategy Workloads.Paper_examples.ac_controller))
    [ Dart.Strategy.Dfs; Dart.Strategy.Random_branch ];
  expect_bug "bfs shallow flip"
    (dart ~strategy:Dart.Strategy.Bfs Workloads.Paper_examples.eq_filter);
  List.iter
    (fun strategy ->
      expect_no_bug
        (Dart.Strategy.to_string strategy)
        (dart ~depth:1 ~max_runs:2_000 ~strategy Workloads.Paper_examples.section_2_4))
    [ Dart.Strategy.Bfs; Dart.Strategy.Random_branch ];
  expect_complete "dfs claims completeness"
    (dart ~depth:1 ~strategy:Dart.Strategy.Dfs Workloads.Paper_examples.section_2_4);
  (match (dart ~depth:1 ~max_runs:500 ~strategy:Dart.Strategy.Bfs
            Workloads.Paper_examples.section_2_4).Dart.Driver.verdict
   with
   | Dart.Driver.Complete -> Alcotest.fail "BFS must not claim completeness"
   | Dart.Driver.Bug_found _ | Dart.Driver.Budget_exhausted
   | Dart.Driver.Time_exhausted | Dart.Driver.Interrupted -> ())

let test_library_black_box () =
  (* lib_hash is executed concretely; the y == 42 bug behind it is
     found when the concrete hash happens to be 7 on some restart; at
     minimum the search must not crash and must flag incompleteness. *)
  let src, toplevel = Workloads.Paper_examples.library_example in
  let opts =
    { (options ~max_runs:2_000 ()) with
      exec =
        { Dart.Concolic.default_exec_options with
          library = [ ("lib_hash", Workloads.Paper_examples.lib_hash_impl) ] } }
  in
  let r =
    Dart.Driver.test_source ~options:opts
      ~library_sigs:[ Workloads.Paper_examples.lib_hash_sig ] ~toplevel src
  in
  Alcotest.(check bool) "incompleteness flagged" false r.Dart.Driver.all_linear

let test_depth_semantics () =
  (* depth = number of toplevel invocations per run: a bug requiring
     two calls is invisible at depth 1. *)
  let src = {|
int phase = 0;
void step(int msg) {
  if (phase == 0 && msg == 7) { phase = 1; return; }
  if (phase == 1 && msg == 9) abort();
}
|} in
  expect_no_bug "depth 1 blind" (dart ~depth:1 (src, "step"));
  expect_bug "depth 2 sees it" (dart ~depth:2 (src, "step"))

let test_stop_on_first_bug_false () =
  (* Collect multiple distinct bugs in one search. *)
  let src = {|
void f(int x) {
  if (x == 10) abort();
  if (x == 20) { int *p = NULL; *p = 1; }
}
|} in
  let opts = options ~stop_on_first_bug:false () in
  let r = Dart.Driver.test_source ~options:opts ~toplevel:"f" src in
  Alcotest.(check int) "two distinct bugs" 2 (List.length r.Dart.Driver.bugs)

let test_random_search_finds_easy_bug () =
  let r =
    Dart.Random_search.test_source ~seed:3 ~max_runs:2_000 ~toplevel:"f"
      "void f(int x) { if (x > 0) abort(); }"
  in
  match r.Dart.Random_search.verdict with
  | `Bug_found _ -> ()
  | `No_bug | `Time_exhausted | `Interrupted ->
    Alcotest.fail "random search should find x > 0"

let test_determinism () =
  let run () = dart ~depth:2 Workloads.Paper_examples.ac_controller in
  let r1 = run () and r2 = run () in
  Alcotest.(check int) "same run count" r1.Dart.Driver.runs r2.Dart.Driver.runs;
  Alcotest.(check int) "same steps" r1.Dart.Driver.total_steps r2.Dart.Driver.total_steps

let test_seed_sensitivity () =
  (* Different seeds still find the bug (robustness of the search). *)
  List.iter
    (fun seed ->
      let opts = options ~depth:2 ~seed () in
      let r =
        Dart.Driver.test_source ~options:opts ~toplevel:"ac_controller"
          (fst Workloads.Paper_examples.ac_controller)
      in
      expect_bug (Printf.sprintf "seed %d" seed) r)
    [ 1; 7; 1234; 999983 ]

let test_report_rendering () =
  let r = dart Workloads.Paper_examples.section_2_1 in
  let s = Dart.Driver.report_to_string r in
  Alcotest.(check bool) "mentions BUG" true (Str_contains.contains s "BUG FOUND");
  Alcotest.(check bool) "mentions runs" true (Str_contains.contains s "runs:")

let test_assume_prunes () =
  (* assume() halts uninteresting runs without reporting a bug, and
     the pruned branch is still directed through. *)
  let src = {|
void f(int x) {
  assume(x > 0);
  if (x == 77) abort();
}
|} in
  expect_bug "assume + abort" (dart (src, "f"))

let test_coverage_report () =
  (* h's two conditionals are both reachable in both directions; a
     search that keeps going after the first bug covers all four. *)
  let src, toplevel = Workloads.Paper_examples.section_2_1 in
  let opts = options ~stop_on_first_bug:false () in
  let r = Dart.Driver.test_source ~options:opts ~toplevel src in
  let ast = Minic.Parser.parse_program src in
  let prog = Dart.Driver.prepare ~toplevel ~depth:1 ast in
  let cov = Dart.Coverage.compute prog ~covered:r.Dart.Driver.coverage_sites in
  Alcotest.(check (float 0.01)) "full branch coverage" 100.0 (Dart.Coverage.percent cov);
  (* The driver-internal functions are excluded from the report. *)
  List.iter
    (fun (e : Dart.Coverage.entry) ->
      if String.length e.cov_fn >= 6 && String.sub e.cov_fn 0 6 = "__dart" then
        Alcotest.fail "driver function leaked into coverage")
    cov.Dart.Coverage.entries;
  (* A single random run covers strictly less. *)
  let rr = Dart.Random_search.run ~seed:3 ~max_runs:1 prog in
  let cov1 = Dart.Coverage.compute prog ~covered:rr.Dart.Random_search.coverage_sites in
  Alcotest.(check bool) "partial coverage" true (Dart.Coverage.percent cov1 < 100.0)

let test_directed_switch () =
  (* Every arm of a switch (including fallthrough composition) is found
     by the directed search. *)
  let src = {|
int classify(int msg) {
  int r = 0;
  switch (msg) {
  case 10: r = 1; break;
  case 20: r = 2; break;
  case 30:
    r = 3;
    /* fallthrough */
  case 40: r = r + 10; break;
  default: r = -1;
  }
  return r;
}
|} in
  let r = dart (src, "classify") in
  expect_complete "switch exploration" r;
  (* paths: 10, 20, 30(+40), 40, default = 5 *)
  Alcotest.(check int) "five paths" 5 r.Dart.Driver.paths_explored

let test_coverage_count_consistency () =
  (* Regression: [branches_covered] used to count driver-wrapper sites
     that [Coverage.compute] filters out, so the headline number and
     the per-function report disagreed. They must count the same set. *)
  let src, toplevel = Workloads.Paper_examples.section_2_1 in
  let opts = options ~stop_on_first_bug:false () in
  let r = Dart.Driver.test_source ~options:opts ~toplevel src in
  let prog = Dart.Driver.prepare ~toplevel ~depth:1 (Minic.Parser.parse_program src) in
  let cov = Dart.Coverage.compute prog ~covered:r.Dart.Driver.coverage_sites in
  Alcotest.(check int) "headline = per-function total" cov.Dart.Coverage.total_directions
    r.Dart.Driver.branches_covered;
  Alcotest.(check int) "sites list has the same cardinality"
    r.Dart.Driver.branches_covered
    (List.length (List.sort_uniq compare r.Dart.Driver.coverage_sites));
  List.iter
    (fun (fn, _, _) ->
      if Dart.Coverage.is_driver_function fn then
        Alcotest.failf "driver site %s leaked into coverage_sites" fn)
    r.Dart.Driver.coverage_sites

let test_bug_witness_minimal_and_replays () =
  (* Regression: [bug_inputs] used to snapshot all of IM, including
     stale entries left behind by earlier solver iterations. Here DFS
     explores the ext() subtree (persisting an input for ext's result)
     before flipping x == 3; the faulting run reads only x, so the
     witness must be exactly [(0, 3)] — and must replay on its own. *)
  let src = {|
int ext();
void f(int x) {
  if (x == 3) abort();
  if (x == 0) {
    int t = ext();
    if (t == 5) { t = 6; }
  }
}
|} in
  let r = dart (src, "f") in
  expect_bug "ext witness" r;
  match r.Dart.Driver.verdict with
  | Dart.Driver.Bug_found b ->
    Alcotest.(check bool) "bug found after exploring the ext subtree" true
      (b.Dart.Driver.bug_run > 2);
    Alcotest.(check (list (pair int int))) "minimal witness" [ (0, 3) ]
      b.Dart.Driver.bug_inputs;
    (* Replay from the witness alone: a fresh IM holding only the
       recorded inputs reproduces the same fault at the same site. *)
    let prog = Dart.Driver.prepare ~toplevel:"f" ~depth:1 (Minic.Parser.parse_program src) in
    let im = Dart.Inputs.create () in
    List.iter (fun (id, v) -> Dart.Inputs.set im ~id v) b.Dart.Driver.bug_inputs;
    let data =
      Dart.Concolic.run_once ~opts:Dart.Concolic.default_exec_options
        ~rng:(Dart_util.Prng.create 0) ~im ~prev_stack:[||]
        ~entry:Dart.Driver_gen.wrapper_name prog
    in
    (match data.Dart.Concolic.outcome with
     | Dart.Concolic.Run_fault (fault, site) ->
       Alcotest.(check bool) "same fault" true (fault = b.Dart.Driver.bug_fault);
       Alcotest.(check string) "same function" b.Dart.Driver.bug_site.Machine.site_fn
         site.Machine.site_fn;
       Alcotest.(check int) "same pc" b.Dart.Driver.bug_site.Machine.site_pc
         site.Machine.site_pc
     | _ -> Alcotest.fail "witness did not replay the fault");
    Alcotest.(check int) "replay reads only the witness inputs" 1
      data.Dart.Concolic.inputs_read
  | _ -> assert false

let test_list_shapes_via_restarts () =
  (* The sum3 bug needs a length-3 list (shape found by restarts) with
     payloads summing to 300 (values found by the solver). *)
  let r = dart ~max_runs:100_000 Workloads.Paper_examples.list_example in
  expect_bug "list shapes" r

let test_list_shapes_symbolic_pointers () =
  let opts =
    { (options ~max_runs:100_000 ()) with
      exec = { Dart.Concolic.default_exec_options with symbolic_pointers = true } }
  in
  let src, toplevel = Workloads.Paper_examples.list_example in
  let r = Dart.Driver.test_source ~options:opts ~toplevel src in
  expect_bug "list shapes (symbolic pointers)" r

let suite =
  [ Alcotest.test_case "paper 2.1" `Quick test_section_2_1;
    Alcotest.test_case "paper 2.4" `Quick test_section_2_4;
    Alcotest.test_case "paper 2.5 cast" `Quick test_section_2_5_cast;
    Alcotest.test_case "paper 2.5 foobar" `Quick test_section_2_5_foobar;
    Alcotest.test_case "eq filter vs random" `Quick test_eq_filter;
    Alcotest.test_case "AC controller" `Quick test_ac_controller;
    Alcotest.test_case "strategies" `Quick test_strategies;
    Alcotest.test_case "library black box" `Quick test_library_black_box;
    Alcotest.test_case "depth semantics" `Quick test_depth_semantics;
    Alcotest.test_case "collect all bugs" `Quick test_stop_on_first_bug_false;
    Alcotest.test_case "random finds easy bugs" `Quick test_random_search_finds_easy_bug;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed robustness" `Quick test_seed_sensitivity;
    Alcotest.test_case "report rendering" `Quick test_report_rendering;
    Alcotest.test_case "assume pruning" `Quick test_assume_prunes;
    Alcotest.test_case "coverage report" `Quick test_coverage_report;
    Alcotest.test_case "directed switch" `Quick test_directed_switch;
    Alcotest.test_case "coverage count consistency" `Quick test_coverage_count_consistency;
    Alcotest.test_case "minimal bug witness replays" `Quick test_bug_witness_minimal_and_replays;
    Alcotest.test_case "list shapes via restarts" `Slow test_list_shapes_via_restarts;
    Alcotest.test_case "list shapes symbolic ptrs" `Slow test_list_shapes_symbolic_pointers ]
